package elastichtap

import (
	"context"
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
	"elastichtap/internal/wal"
)

// The fused kernels keep all per-morsel state in per-worker scratch and
// warmed locals, so steady-state execution must not allocate per row or
// per morsel. These tests pin that property with testing.AllocsPerRun
// (its built-in warmup run absorbs one-time group-state growth).

// fusedBlock builds one morsel-shaped block over the fact table's first
// rows for the compiled query's scan columns.
func fusedBlock(db *ch.DB, cols []int) (olap.Block, int64) {
	tab := db.OrderLine.Table()
	rows := tab.Rows()
	if rows > 16384 {
		rows = 16384 // stay inside one chunk, like an engine morsel
	}
	blk := olap.Block{N: int(rows), Cols: make([][]int64, len(cols))}
	inst := tab.Active()
	for k, c := range cols {
		blk.Cols[k] = inst.Col(c).Slice(0, rows)
	}
	return blk, rows
}

// TestFusedConsumeZeroAllocsPerMorsel drives a warmed fused local
// directly: consuming a morsel must be allocation-free for both the
// ungrouped (Q6) and dense-grouped (Q1) kernels.
func TestFusedConsumeZeroAllocsPerMorsel(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.TinySizing(), 1)
	for _, p := range []struct {
		name string
		bind func() (olap.Query, error)
	}{
		{"Q1", func() (olap.Query, error) { q, err := ch.Q1Plan(0).Bind(db); return q, err }},
		{"Q6", func() (olap.Query, error) { q, err := ch.Q6Plan(0, 0, 0, 0).Bind(db); return q, err }},
	} {
		t.Run(p.name, func(t *testing.T) {
			q, err := p.bind()
			if err != nil {
				t.Fatal(err)
			}
			exec, _ := q.Prepare()
			local := exec.NewLocal()
			blk, _ := fusedBlock(db, q.Columns())
			if avg := testing.AllocsPerRun(20, func() { local.Consume(blk) }); avg != 0 {
				t.Fatalf("fused Consume allocates %.1f times per morsel, want 0", avg)
			}
		})
	}
}

// TestPreparedExecutionAllocBudget runs warmed prepared statements end to
// end through the pool and bounds the whole-execution allocation count:
// per-execution state (task bookkeeping, per-morsel locals, the merged
// result) is allowed, anything scaling with rows is not.
func TestPreparedExecutionAllocBudget(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.TinySizing(), 1)
	tab := db.OrderLine.Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "alloc",
	}}}
	eng := olap.NewEngine(1)
	eng.SetPlacement(topology.Placement{PerSocket: []int{2}})
	defer eng.Close()

	for _, p := range []struct {
		name   string
		bind   func() (olap.Query, error)
		budget float64
	}{
		{"Q1", func() (olap.Query, error) { q, err := ch.Q1Plan(0).Bind(db); return q, err }, 64},
		{"Q6", func() (olap.Query, error) { q, err := ch.Q6Plan(0, 0, 0, 0).Bind(db); return q, err }, 64},
	} {
		t.Run(p.name, func(t *testing.T) {
			q, err := p.bind()
			if err != nil {
				t.Fatal(err)
			}
			run := func() {
				if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
					t.Fatal(err)
				}
			}
			if avg := testing.AllocsPerRun(10, run); avg > p.budget {
				t.Fatalf("warmed prepared %s execution allocates %.1f, budget %.0f", p.name, avg, p.budget)
			}
		})
	}
}

// TestGraphJoinExecutionAllocBudget bounds warmed prepared executions of
// the graph-join queries Q2/Q5/Q7. Unlike the single-table queries above,
// each execution legitimately rebuilds its dimension hash tables in
// Prepare (that cost is what BuildBytes reports and the planner costs),
// so the budgets absorb the build — but the build is sized by the
// dimension tables, never the fact scan, so a budget miss means either
// the per-row kernel path or the probe-side build started allocating
// with fact rows.
func TestGraphJoinExecutionAllocBudget(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.TinySizing(), 1)
	eng := olap.NewEngine(1)
	eng.SetPlacement(topology.Placement{PerSocket: []int{2}})
	defer eng.Close()
	srcFor := func(table string) olap.Source {
		tab := db.Handle(table).Table()
		return olap.Source{Table: tab, Parts: []olap.Part{{
			Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "alloc",
		}}}
	}
	for _, p := range []struct {
		name   string
		fact   string
		bind   func() (olap.Query, error)
		budget float64
	}{
		// Measured ~51/56/543 at tiny sizing; headroom for runner noise.
		{"Q2", ch.TStock, func() (olap.Query, error) { q, err := ch.Q2Plan(0, 0).Bind(db); return q, err }, 96},
		{"Q5", ch.TOrderLine, func() (olap.Query, error) { q, err := ch.Q5Plan(0).Bind(db); return q, err }, 96},
		{"Q7", ch.TOrderLine, func() (olap.Query, error) { q, err := ch.Q7Plan(0).Bind(db); return q, err }, 768},
	} {
		t.Run(p.name, func(t *testing.T) {
			q, err := p.bind()
			if err != nil {
				t.Fatal(err)
			}
			src := srcFor(p.fact)
			run := func() {
				if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
					t.Fatal(err)
				}
			}
			if avg := testing.AllocsPerRun(10, run); avg > p.budget {
				t.Fatalf("warmed prepared %s execution allocates %.1f, budget %.0f", p.name, avg, p.budget)
			}
		})
	}
}

// TestWALAppendAllocBudget pins the commit log's hot path: a warmed
// Append — encode buffer grown, file with capacity headroom — must not
// allocate per record beyond the filesystem's occasional slice growth
// (budget 1 absorbs an amortized doubling; the encode path itself is
// allocation-free, machine-checked by htaplint's hotalloc analyzer).
func TestWALAppendAllocBudget(t *testing.T) {
	fs := wal.NewMemFS()
	l, err := wal.Open(fs, "wal.log", wal.SyncNever, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &wal.Record{TxnID: 1, CommitTS: 2, Ops: []wal.Op{
		{Kind: wal.OpUpdate, Table: "orderline", Row: 3, Col: 4, Val: 5},
		{Kind: wal.OpInsert, Table: "orderline", NRows: 1, Width: 4, Vals: []int64{1, 2, 3, 4}},
	}}
	apply := func() {}
	// Warm: grows the encode buffer and gives the backing file capacity.
	for i := 0; i < 4096; i++ {
		if _, err := l.Append(rec, apply); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := l.Append(rec, apply); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Fatalf("warmed WAL append allocates %.2f times per record, budget 1", avg)
	}
}
