package elastichtap

import (
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
)

// The fused kernels keep all per-morsel state in per-worker scratch and
// warmed locals, so steady-state execution must not allocate per row or
// per morsel. These tests pin that property with testing.AllocsPerRun
// (its built-in warmup run absorbs one-time group-state growth).

// fusedBlock builds one morsel-shaped block over the fact table's first
// rows for the compiled query's scan columns.
func fusedBlock(db *ch.DB, cols []int) (olap.Block, int64) {
	tab := db.OrderLine.Table()
	rows := tab.Rows()
	if rows > 16384 {
		rows = 16384 // stay inside one chunk, like an engine morsel
	}
	blk := olap.Block{N: int(rows), Cols: make([][]int64, len(cols))}
	inst := tab.Active()
	for k, c := range cols {
		blk.Cols[k] = inst.Col(c).Slice(0, rows)
	}
	return blk, rows
}

// TestFusedConsumeZeroAllocsPerMorsel drives a warmed fused local
// directly: consuming a morsel must be allocation-free for both the
// ungrouped (Q6) and dense-grouped (Q1) kernels.
func TestFusedConsumeZeroAllocsPerMorsel(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.TinySizing(), 1)
	for _, p := range []struct {
		name string
		bind func() (olap.Query, error)
	}{
		{"Q1", func() (olap.Query, error) { q, err := ch.Q1Plan(0).Bind(db); return q, err }},
		{"Q6", func() (olap.Query, error) { q, err := ch.Q6Plan(0, 0, 0, 0).Bind(db); return q, err }},
	} {
		t.Run(p.name, func(t *testing.T) {
			q, err := p.bind()
			if err != nil {
				t.Fatal(err)
			}
			exec, _ := q.Prepare()
			local := exec.NewLocal()
			blk, _ := fusedBlock(db, q.Columns())
			if avg := testing.AllocsPerRun(20, func() { local.Consume(blk) }); avg != 0 {
				t.Fatalf("fused Consume allocates %.1f times per morsel, want 0", avg)
			}
		})
	}
}

// TestPreparedExecutionAllocBudget runs warmed prepared statements end to
// end through the pool and bounds the whole-execution allocation count:
// per-execution state (task bookkeeping, per-morsel locals, the merged
// result) is allowed, anything scaling with rows is not.
func TestPreparedExecutionAllocBudget(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.TinySizing(), 1)
	tab := db.OrderLine.Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "alloc",
	}}}
	eng := olap.NewEngine(1)
	eng.SetPlacement(topology.Placement{PerSocket: []int{2}})
	defer eng.Close()

	for _, p := range []struct {
		name   string
		bind   func() (olap.Query, error)
		budget float64
	}{
		{"Q1", func() (olap.Query, error) { q, err := ch.Q1Plan(0).Bind(db); return q, err }, 64},
		{"Q6", func() (olap.Query, error) { q, err := ch.Q6Plan(0, 0, 0, 0).Bind(db); return q, err }, 64},
	} {
		t.Run(p.name, func(t *testing.T) {
			q, err := p.bind()
			if err != nil {
				t.Fatal(err)
			}
			run := func() {
				if _, _, err := eng.Execute(q, src); err != nil {
					t.Fatal(err)
				}
			}
			if avg := testing.AllocsPerRun(10, run); avg > p.budget {
				t.Fatalf("warmed prepared %s execution allocates %.1f, budget %.0f", p.name, avg, p.budget)
			}
		})
	}
}
