// Package elastichtap's benchmark suite regenerates every table and figure
// of the paper's evaluation (DESIGN.md §5 maps IDs to artifacts). Each
// benchmark runs the corresponding experiment once per iteration and
// reports its headline quantity as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness. The chbench command prints the full
// row sets; EXPERIMENTS.md records paper-versus-measured values.
package elastichtap

import (
	"context"
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/ch/golden"
	"elastichtap/internal/core"
	"elastichtap/internal/experiments"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
	"elastichtap/query"
)

func benchOpt() experiments.Options {
	return experiments.Options{SF: 0.01, Seed: 42}
}

// BenchmarkFigure1 regenerates Figure 1 (ETL vs CoW motivation).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: per-query ETL cost amortizes; CoW hurts OLTP.
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(first.DataTransferSeconds, "etl-transfer-b1-s")
		b.ReportMetric(last.DataTransferSeconds, "etl-transfer-b16-s")
		cow := rows[1]
		b.ReportMetric(cow.OLTPTputMTPS, "cow-oltp-mtps")
	}
}

// BenchmarkFigure3a regenerates Figure 3(a) (S1 sensitivity).
func BenchmarkFigure3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3a(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(100*(1-last.OLTPOnlyMTPS/first.OLTPOnlyMTPS), "oltp-only-drop-pct")
		b.ReportMetric(100*(1-last.OLTPWithOLAPMTPS/first.OLTPOnlyMTPS), "oltp-with-olap-drop-pct")
		b.ReportMetric(first.OLAPRespSeconds/rows[2].OLAPRespSeconds, "olap-speedup-at-4cpus")
	}
}

// BenchmarkFigure3b regenerates Figure 3(b) (S2 batch amortization).
func BenchmarkFigure3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3b(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].DataTransferSecs, "transfer-batch1-s")
		b.ReportMetric(rows[len(rows)-1].DataTransferSecs, "transfer-batch16-s")
		b.ReportMetric(rows[0].OLTPTputMTPS, "oltp-mtps")
	}
}

// BenchmarkFigure3c regenerates Figure 3(c) (S3-NI sensitivity).
func BenchmarkFigure3c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3c(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		first := rows[0]
		best := first.OLAPRespSeconds
		for _, r := range rows {
			if r.OLAPRespSeconds < best {
				best = r.OLAPRespSeconds
			}
		}
		b.ReportMetric(100*(1-best/first.OLAPRespSeconds), "olap-improvement-pct")
	}
}

// BenchmarkFigure4 regenerates Figure 4 (response time vs freshness).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: the split/S2 crossover position (fresh %).
		cross := -1.0
		for _, r := range rows {
			if r.SplitSeconds > r.S2Seconds {
				cross = r.FreshPct
				break
			}
		}
		b.ReportMetric(cross, "split-s2-crossover-fresh-pct")
		b.ReportMetric(rows[0].FullRemoteSeconds/rows[0].S2Seconds, "full-remote-vs-s2-x")
	}
}

// fig5BenchSequences keeps the benchmark variant of Figure 5 affordable;
// chbench runs the full 100 (or more) sequences.
const fig5BenchSequences = 80

// BenchmarkFigure5a regenerates Figure 5(a) (OLAP adaptivity).
func BenchmarkFigure5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure5(benchOpt(), fig5BenchSequences, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.Fig5Gap(series, experiments.SchedS3IS, experiments.SchedAdaptiveNI),
			"adaptive-ni-vs-s3is-gap-pct")
		b.ReportMetric(experiments.Fig5Gap(series, experiments.SchedS3IS, experiments.SchedAdaptiveIS),
			"adaptive-is-vs-s3is-gap-pct")
	}
}

// BenchmarkFigure5b regenerates Figure 5(b) (OLTP throughput under the
// same schedules).
func BenchmarkFigure5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure5(benchOpt(), fig5BenchSequences,
			[]experiments.Schedule{experiments.SchedS2, experiments.SchedS3NI})
		if err != nil {
			b.Fatal(err)
		}
		last := func(s experiments.Fig5Series) float64 {
			return s.Points[len(s.Points)-1].OLTPMTPS
		}
		b.ReportMetric(last(series[0]), "s2-oltp-mtps")
		b.ReportMetric(last(series[1]), "s3ni-oltp-mtps")
	}
}

// BenchmarkSyncClaim regenerates the §3.4 ~10ms sync claim.
func BenchmarkSyncClaim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := experiments.SyncClaim(1_000_000, 1_800_000_000)
		b.ReportMetric(row.ModelSeconds*1e3, "model-sync-ms")
		b.ReportMetric(row.MeasuredSeconds*1e3, "measured-sync-ms")
	}
}

// BenchmarkConvergence regenerates the §5.3 widening-gap claim at a
// reduced horizon (chbench -fig convergence runs the full 300).
func BenchmarkConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Convergence(benchOpt(), []int{50, 100})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].GapPct, "gap-at-100-pct")
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationAlpha sweeps the ETL sensitivity α: smaller α must ETL
// more eagerly (more S2 decisions).
func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var etls [2]int
		for k, alpha := range []float64{0.3, 0.9} {
			opt := benchOpt()
			opt.Alpha = alpha
			opt.Items = 30000
			opt.PaymentPct = 30
			series, err := experiments.Figure5(opt, 20,
				[]experiments.Schedule{experiments.SchedAdaptiveNI})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range series[0].Points {
				etls[k] += p.ETLs
			}
		}
		b.ReportMetric(float64(etls[0]), "etls-alpha-0.3")
		b.ReportMetric(float64(etls[1]), "etls-alpha-0.9")
	}
}

// BenchmarkAblationSplitAccess compares split access against full-remote
// in S3-IS on the same fresh state (Figure 4's first point, isolated).
func BenchmarkAblationSplitAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].FullRemoteSeconds/rows[0].SplitSeconds, "full-remote-vs-split-x")
	}
}

// BenchmarkAblationTwinVsCow isolates the storage-design ablation from
// Figure 1: per-query cost and OLTP cost of each snapshotting mechanism at
// snapshot-per-query frequency.
func BenchmarkAblationTwinVsCow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		etl, cow := rows[0], rows[1]
		b.ReportMetric((etl.QueryExecSeconds+etl.DataTransferSeconds)/cow.QueryExecSeconds, "etl-vs-cow-query-x")
		b.ReportMetric(etl.OLTPTputMTPS/cow.OLTPTputMTPS, "etl-vs-cow-oltp-x")
	}
}

// BenchmarkAblationLockPolicy compares wait-die retries against a
// hypothetical no-retry policy under moderate contention: the sticky
// priority must keep abandonment at zero.
func BenchmarkAblationLockPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := oltp.NewEngine()
		db := ch.Load(e, ch.TinySizing(), 1)
		mix := ch.NewMix(db, 50, 7)
		e.Workers().SetWorkload(mix)
		e.Workers().SetPlacement(placementOf(8))
		e.Workers().ExecuteBatch(2000)
		b.ReportMetric(float64(e.Workers().Retried()), "wait-die-retries")
		b.ReportMetric(float64(e.Workers().Failed()), "abandoned-txns")
	}
}

// BenchmarkNewOrderThroughput measures the real (host wall-clock)
// transaction rate of the OLTP engine, as a sanity anchor for the model.
func BenchmarkNewOrderThroughput(b *testing.B) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.SizingForScale(0.01), 1)
	mix := ch.NewMix(db, 0, 3)
	e.Workers().SetWorkload(mix)
	e.Workers().SetPlacement(placementOf(8))
	b.ResetTimer()
	e.Workers().ExecuteBatch(b.N)
}

// BenchmarkQ6Execution measures the real scan rate of the OLAP engine.
func BenchmarkQ6Execution(b *testing.B) {
	sys, err := core.NewSystem(core.DefaultSystemConfig())
	if err != nil {
		b.Fatal(err)
	}
	db := ch.Load(sys.OLTPE, ch.SizingForScale(0.02), 1)
	sys.PrimeReplicas()
	q := db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.RunQueryContext(context.Background(), q, core.QueryOptions{
			ForceState: core.ForcedState(core.S2),
		}, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(db.OrderLine.Table().Rows() * 3 * 8)
}

// benchGoldenSetup loads a database and a direct single-part source over
// the OrderLine active instance for kernel-level comparisons.
func benchGoldenSetup(b *testing.B, workers int) (*ch.DB, *olap.Engine, olap.Source) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.SizingForScale(0.02), 1)
	tab := db.OrderLine.Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "bench",
	}}}
	eng := olap.NewEngine(1)
	eng.SetPlacement(placementOf(workers))
	return db, eng, src
}

// BenchmarkQ6Handcoded and BenchmarkQ6Builder compare the hand-coded Q6
// kernel against the builder-compiled plan on the same engine and source:
// the abstraction cost of the generic filter/aggregate kernels.
func BenchmarkQ6Handcoded(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	q := &golden.Q6{DB: db}
	b.SetBytes(src.Rows() * 3 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ6Builder is the builder-compiled counterpart of
// BenchmarkQ6Handcoded.
func BenchmarkQ6Builder(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	q, err := ch.Q6Plan(0, 0, 0, 0).Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(src.Rows() * 3 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ1Builder exercises the generic group-by kernel (compare with
// BenchmarkQ1Handcoded).
func BenchmarkQ1Builder(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	q, err := ch.Q1Plan(0).Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(src.Rows() * 4 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ1Handcoded is the golden-reference counterpart.
func BenchmarkQ1Handcoded(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	q := &golden.Q1{DB: db}
	b.SetBytes(src.Rows() * 4 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ19Handcoded and BenchmarkQ19Builder compare the semi-join
// probe kernels (existence-only hash join).
func BenchmarkQ19Handcoded(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	q := &golden.Q19{DB: db}
	b.SetBytes(src.Rows() * 3 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ19Builder is the builder-compiled counterpart.
func BenchmarkQ19Builder(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	q, err := ch.Q19Plan(0, 0, 0, 0).Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(src.Rows() * 3 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchJoinSetup is benchGoldenSetup plus NewOrder transactions, so Q3's
// undelivered-orders join has matches to project.
func benchJoinSetup(b *testing.B, workers int) (*ch.DB, *olap.Engine, olap.Source) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.SizingForScale(0.02), 1)
	runNewOrders(b, e, db, 200)
	tab := db.OrderLine.Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "bench",
	}}}
	eng := olap.NewEngine(1)
	eng.SetPlacement(placementOf(workers))
	return db, eng, src
}

// BenchmarkQ3Handcoded and BenchmarkQ3Builder compare the
// payload-projecting composite-key join with ordered top-k merge.
func BenchmarkQ3Handcoded(b *testing.B) {
	db, eng, src := benchJoinSetup(b, 8)
	q := &golden.Q3{DB: db}
	b.SetBytes(src.Rows() * 4 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ3Builder is the builder-compiled counterpart.
func BenchmarkQ3Builder(b *testing.B) {
	db, eng, src := benchJoinSetup(b, 8)
	q, err := ch.Q3Plan(0).Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(src.Rows() * 4 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ18Handcoded and BenchmarkQ18Builder compare the wide
// group-by/having/top-k merge path (one group per order).
func BenchmarkQ18Handcoded(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	q := &golden.Q18{DB: db}
	b.SetBytes(src.Rows() * 4 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ18Builder is the builder-compiled counterpart.
func BenchmarkQ18Builder(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	q, err := ch.Q18Plan(0, 0).Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(src.Rows() * 4 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ12Handcoded and BenchmarkQ12Builder compare the
// payload-join with conditional-count aggregation (CountIf pair over
// the probed carrier column).
func BenchmarkQ12Handcoded(b *testing.B) {
	db, eng, src := benchJoinSetup(b, 8)
	q := &golden.Q12{DB: db}
	b.SetBytes(src.Rows() * 4 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ12Builder is the builder-compiled counterpart.
func BenchmarkQ12Builder(b *testing.B) {
	db, eng, src := benchJoinSetup(b, 8)
	q, err := ch.Q12Plan(0).Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(src.Rows() * 4 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFactSource builds a one-part source over any fact table of the
// bench database — the graph queries Q2/Q5/Q7 scan stock or orderline.
func benchFactSource(db *ch.DB, table string) olap.Source {
	tab := db.Handle(table).Table()
	return olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "bench",
	}}}
}

// BenchmarkQ2Handcoded and BenchmarkQ2Builder compare the graph-join
// chain over the stock fact (supplier → nation → region, min/avg
// aggregates) against its hand-coded twin.
func BenchmarkQ2Handcoded(b *testing.B) {
	db, eng, _ := benchGoldenSetup(b, 8)
	src := benchFactSource(db, ch.TStock)
	q := &golden.Q2{DB: db}
	b.SetBytes(src.Rows() * 2 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ2Builder is the builder-compiled counterpart.
func BenchmarkQ2Builder(b *testing.B) {
	db, eng, _ := benchGoldenSetup(b, 8)
	src := benchFactSource(db, ch.TStock)
	q, err := ch.Q2Plan(0, 0).Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(src.Rows() * 2 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ5Handcoded and BenchmarkQ5Builder compare the five-relation
// graph join (stock chain plus item semi-join) against its hand-coded
// twin.
func BenchmarkQ5Handcoded(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	q := &golden.Q5{DB: db}
	b.SetBytes(src.Rows() * 3 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ5Builder is the builder-compiled counterpart.
func BenchmarkQ5Builder(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	q, err := ch.Q5Plan(0).Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(src.Rows() * 3 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ7Handcoded and BenchmarkQ7Builder compare the widest graph
// join — orders, customer (keyed partly by a projected payload), stock
// and supplier — against its hand-coded twin.
func BenchmarkQ7Handcoded(b *testing.B) {
	db, eng, src := benchJoinSetup(b, 8)
	q := &golden.Q7{DB: db}
	b.SetBytes(src.Rows() * 7 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQ7Builder is the builder-compiled counterpart.
func BenchmarkQ7Builder(b *testing.B) {
	db, eng, src := benchJoinSetup(b, 8)
	q, err := ch.Q7Plan(0).Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(src.Rows() * 7 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOrdered runs one graph plan bound under a fixed join-ordering
// mode; the Greedy/Written benchmark pairs built on it measure what the
// zero-statistics greedy order is worth against the written edge order.
func benchOrdered(b *testing.B, plan *query.Plan, words int64) {
	db, eng, _ := benchGoldenSetup(b, 8)
	q, err := plan.Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	src := benchFactSource(db, q.FactTable())
	b.SetBytes(src.Rows() * words * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQ2OrderGreedy(b *testing.B) { benchOrdered(b, ch.Q2Plan(0, 0), 2) }
func BenchmarkQ2OrderWritten(b *testing.B) {
	benchOrdered(b, ch.Q2Plan(0, 0).OrderJoins(query.OrderWritten), 2)
}
func BenchmarkQ5OrderGreedy(b *testing.B) { benchOrdered(b, ch.Q5Plan(0), 3) }
func BenchmarkQ5OrderWritten(b *testing.B) {
	benchOrdered(b, ch.Q5Plan(0).OrderJoins(query.OrderWritten), 3)
}
func BenchmarkQ7OrderGreedy(b *testing.B) { benchOrdered(b, ch.Q7Plan(0), 7) }
func BenchmarkQ7OrderWritten(b *testing.B) {
	benchOrdered(b, ch.Q7Plan(0).OrderJoins(query.OrderWritten), 7)
}

// BenchmarkPlannerGraphBind measures full compilation throughput for a
// six-relation join graph — resolution, greedy ordering, scan layout and
// kernel fusion — reported as plans per second.
func BenchmarkPlannerGraphBind(b *testing.B) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.TinySizing(), 1)
	build := func() *query.Plan {
		fact := query.Rel(ch.TOrderLine)
		stock := query.Rel(ch.TStock)
		supp := query.Rel(ch.TSupplier)
		nat := query.Rel(ch.TNation)
		reg := query.Rel(ch.TRegion).Filter(query.Eq("r_name", "EUROPE"))
		item := query.Rel(ch.TItem).Filter(query.Ge("i_price", 50.0))
		ords := query.Rel(ch.TOrders)
		return query.Scan(ch.TOrderLine).
			Named("bind6").
			JoinGraph(
				query.JoinOn(fact, stock, "ol_supply_w_id", "s_w_id", "ol_i_id", "s_i_id"),
				query.JoinOn(stock, supp, "s_su_suppkey", "su_suppkey"),
				query.JoinOn(supp, nat, "su_nationkey", "n_nationkey"),
				query.JoinOn(nat, reg, "n_regionkey", "r_regionkey"),
				query.JoinOn(fact, item, "ol_i_id", "i_id"),
				query.JoinOn(fact, ords, "ol_w_id", "o_w_id", "ol_d_id", "o_d_id", "ol_o_id", "o_id"),
			).
			GroupBy("su_nationkey").
			Agg(query.Sum("ol_amount").As("revenue"), query.Count())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build().Bind(db); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "plans/s")
}

// BenchmarkRebind and BenchmarkStmtReuse isolate what prepared
// statements save: Rebind pays the full compilation (catalog lookup,
// predicate typing, kernel selection) before every execution, StmtReuse
// binds once and stamps parameter values per execution. Both run the
// identical Q6 scan, so the delta is pure per-call session overhead.
func BenchmarkRebind(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	defer eng.Close()
	b.SetBytes(src.Rows() * 3 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := ch.Q6Plan(0, 0, 0, 0).Bind(db)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStmtReuse is the prepared-statement counterpart of
// BenchmarkRebind.
func BenchmarkStmtReuse(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	defer eng.Close()
	stmt, err := ch.Q6PlanParam().Bind(db)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(src.Rows() * 3 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := stmt.WithArgs(ch.Q6Args(0, 0, 0, 0))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiTenantTail runs the open-loop multi-tenant serving
// scenario and reports each tenant's wall-clock latency tail plus its
// measured morsel share, so benchjson lands the per-tenant serving
// profile in BENCH_ci.json next to the kernel numbers.
func BenchmarkMultiTenantTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MultiTenant(benchOpt(), 240)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Rejected == r.Submitted {
				// Zero-quota tenant: only the rejection count is meaningful.
				b.ReportMetric(float64(r.Rejected), r.Tenant+"-rejected")
				continue
			}
			b.ReportMetric(r.P50Ms, r.Tenant+"-p50-ms")
			b.ReportMetric(r.P99Ms, r.Tenant+"-p99-ms")
			b.ReportMetric(r.P999Ms, r.Tenant+"-p999-ms")
			b.ReportMetric(r.MorselShare, r.Tenant+"-morsel-share")
		}
	}
}

// BenchmarkInstanceSwitch measures the real switch+sync path latency.
func BenchmarkInstanceSwitch(b *testing.B) {
	sys, err := core.NewSystem(core.DefaultSystemConfig())
	if err != nil {
		b.Fatal(err)
	}
	db := ch.Load(sys.OLTPE, ch.TinySizing(), 1)
	sys.OLTPE.Workers().SetWorkload(ch.NewMix(db, 30, 1))
	sys.ApplyPlacements()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.InjectTransactions(50)
		sys.X.SwitchAndSync(sys.OLTPE.Tables())
	}
}

// BenchmarkCuckooVsMap compares the cuckoo index against the stdlib map
// baseline (DESIGN.md §6); see also internal/cuckoo benchmarks.
func BenchmarkCuckooVsMap(b *testing.B) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.SizingForScale(0.01), 1)
	idx := db.Stock.Index
	keys := make([]uint64, 0, 1024)
	for w := 1; w <= db.Sizing.Warehouses; w++ {
		for i := 1; i <= 64; i++ {
			keys = append(keys, ch.StockKey(int64(w), int64(i)))
		}
	}
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		if _, ok := idx.Get(keys[i%len(keys)]); ok {
			hits++
		}
	}
	if hits != b.N {
		b.Fatalf("index misses: %d/%d", b.N-hits, b.N)
	}
}

// placementOf builds a single-socket placement of n cores for benches.
func placementOf(n int) topology.Placement {
	return topology.Placement{PerSocket: []int{n}}
}

// BenchmarkPoolConcurrentQueries measures task admission on the shared
// worker pool: every parallel bench goroutine submits Q6 scans that
// interleave their morsels on the same 8 workers. Run with -race in CI as
// the pool's concurrency smoke.
func BenchmarkPoolConcurrentQueries(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	defer eng.Close()
	q := db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0))
	b.SetBytes(src.Rows() * 3 * 8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolElasticResize measures a resize round-trip against a pool
// that is concurrently scanning: the cost of shedding and re-granting
// four workers mid-query.
func BenchmarkPoolElasticResize(b *testing.B) {
	db, eng, src := benchGoldenSetup(b, 8)
	defer eng.Close()
	q := db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.SetPlacement(placementOf(4))
		eng.SetPlacement(placementOf(8))
	}
	b.StopTimer()
	close(stop)
	<-done
}
