package elastichtap

import (
	"context"
	"reflect"
	"testing"
	"time"

	"elastichtap/internal/ch"
	"elastichtap/internal/ch/golden"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
	"elastichtap/query"
)

// The hand-coded CH executors in internal/ch/golden are the golden
// references for the declarative builder: these tests assert the
// builder-compiled plans reproduce their results and scan statistics.

// goldenPairs returns (hand-coded, builder plan) pairs covering default
// and parameterized forms of Q1, Q6, Q19, the join/ordered/top-k shapes
// Q3, Q12 and Q18, and the graph-join shapes Q2, Q5 and Q7 planned by
// greedy join ordering.
func goldenPairs(db *ch.DB) []struct {
	name string
	hand olap.Query
	plan *query.Plan
} {
	day := ch.LoadDay
	return []struct {
		name string
		hand olap.Query
		plan *query.Plan
	}{
		{"Q1-default", &golden.Q1{DB: db}, ch.Q1Plan(0)},
		{"Q1-filtered", &golden.Q1{DB: db, MinDeliveryD: int64(day + 5)}, ch.Q1Plan(int64(day + 5))},
		{"Q6-default", &golden.Q6{DB: db}, ch.Q6Plan(0, 0, 0, 0)},
		{"Q6-bracketed",
			&golden.Q6{DB: db, DateLo: int64(day - 100), DateHi: int64(day + 10), QtyLo: 3, QtyHi: 7},
			ch.Q6Plan(int64(day-100), int64(day+10), 3, 7)},
		{"Q19-default", &golden.Q19{DB: db}, ch.Q19Plan(0, 0, 0, 0)},
		{"Q19-bracketed",
			&golden.Q19{DB: db, QtyLo: 2, QtyHi: 6, PriceLo: 20, PriceHi: 80},
			ch.Q19Plan(2, 6, 20, 80)},
		{"Q3-default", &golden.Q3{DB: db}, ch.Q3Plan(0)},
		{"Q3-top5", &golden.Q3{DB: db, TopN: 5}, ch.Q3Plan(5)},
		{"Q12-default", &golden.Q12{DB: db}, ch.Q12Plan(0)},
		{"Q12-since", &golden.Q12{DB: db, DeliveredSince: int64(day - 50)}, ch.Q12Plan(int64(day - 50))},
		{"Q18-default", &golden.Q18{DB: db}, ch.Q18Plan(0, 0)},
		{"Q18-tight", &golden.Q18{DB: db, MinRevenue: 3000, TopN: 7}, ch.Q18Plan(3000, 7)},
		{"Q2-default", &golden.Q2{DB: db}, ch.Q2Plan(0, 0)},
		{"Q2-bracketed", &golden.Q2{DB: db, QtyLo: 20, QtyHi: 80}, ch.Q2Plan(20, 80)},
		{"Q5-default", &golden.Q5{DB: db}, ch.Q5Plan(0)},
		{"Q5-pricey", &golden.Q5{DB: db, MinPrice: 80}, ch.Q5Plan(80)},
		{"Q7-default", &golden.Q7{DB: db}, ch.Q7Plan(0)},
		{"Q7-since", &golden.Q7{DB: db, Since: int64(day - 50)}, ch.Q7Plan(int64(day - 50))},
	}
}

// factSource builds a one-part source over a query's fact table — most
// pairs scan orderline, but Q2's fact is stock.
func factSource(db *ch.DB, table string) olap.Source {
	tab := db.Handle(table).Table()
	return olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "golden",
	}}}
}

// runNewOrders executes NewOrder transactions directly on the OLTP engine
// so a freshly generated database (all orders delivered at load) gains
// undelivered orders for Q3's join to find.
func runNewOrders(t testing.TB, e *oltp.Engine, db *ch.DB, n int) {
	t.Helper()
	e.Workers().SetWorkload(ch.NewMix(db, 0, 5))
	e.Workers().SetPlacement(topology.Placement{PerSocket: []int{2}})
	e.Workers().ExecuteBatch(n)
}

func TestBuilderPlanMetadataMatchesHandCoded(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.TinySizing(), 3)
	for _, p := range goldenPairs(db) {
		q, err := p.plan.Bind(db)
		if err != nil {
			t.Fatalf("%s: bind: %v", p.name, err)
		}
		if q.Name() != p.hand.Name() {
			t.Errorf("%s: name %q != %q", p.name, q.Name(), p.hand.Name())
		}
		if q.Class() != p.hand.Class() {
			t.Errorf("%s: class %v != %v", p.name, q.Class(), p.hand.Class())
		}
		if q.FactTable() != p.hand.FactTable() {
			t.Errorf("%s: fact %q != %q", p.name, q.FactTable(), p.hand.FactTable())
		}
		if len(q.Columns()) != len(p.hand.Columns()) {
			t.Errorf("%s: scans %d columns, hand-coded %d", p.name, len(q.Columns()), len(p.hand.Columns()))
		}
	}
}

// TestBuilderGoldenSingleWorker executes each pair on a one-worker engine,
// where morsel order is deterministic, and requires byte-identical result
// rows: the compiled kernels must perform the same float operations in the
// same order as the hand-coded executors.
func TestBuilderGoldenSingleWorker(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.SizingForScale(0.003), 11)
	runNewOrders(t, e, db, 60)
	eng := olap.NewEngine(1)
	eng.SetPlacement(topology.Placement{PerSocket: []int{1}})

	for _, p := range goldenPairs(db) {
		src := factSource(db, p.hand.FactTable())
		built, err := p.plan.Bind(db)
		if err != nil {
			t.Fatalf("%s: bind: %v", p.name, err)
		}
		want, wantSt, err := eng.ExecuteContext(context.Background(), p.hand, src)
		if err != nil {
			t.Fatalf("%s: hand-coded: %v", p.name, err)
		}
		got, gotSt, err := eng.ExecuteContext(context.Background(), built, src)
		if err != nil {
			t.Fatalf("%s: builder: %v", p.name, err)
		}
		if !reflect.DeepEqual(got.Cols, want.Cols) {
			t.Errorf("%s: cols %v != %v", p.name, got.Cols, want.Cols)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s: rows differ\n got %v\nwant %v", p.name, got.Rows, want.Rows)
		}
		if !reflect.DeepEqual(gotSt, wantSt) {
			t.Errorf("%s: stats %+v != %+v", p.name, gotSt, wantSt)
		}
	}
}

// TestGreedyOrderMatchesWrittenOrder pins the planner's core invariant:
// the written edge order carries no semantic weight. Each graph query is
// bound twice — greedy ordering (the default) and the written order —
// and both compiled forms must expose the same scan columns, produce
// byte-identical rows, and charge the same build bytes, on one worker
// and under multi-worker stealing alike.
func TestGreedyOrderMatchesWrittenOrder(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.SizingForScale(0.005), 11)
	runNewOrders(t, e, db, 80)

	one := olap.NewEngine(1)
	defer one.Close()
	one.SetPlacement(topology.Placement{PerSocket: []int{1}})
	many := olap.NewEngine(2)
	defer many.Close()
	many.SetPlacement(topology.Placement{PerSocket: []int{0, 6}})

	for _, p := range []struct {
		name            string
		greedy, written *query.Plan
	}{
		{"Q2", ch.Q2Plan(0, 0), ch.Q2Plan(0, 0).OrderJoins(query.OrderWritten)},
		{"Q5", ch.Q5Plan(0), ch.Q5Plan(0).OrderJoins(query.OrderWritten)},
		{"Q7", ch.Q7Plan(0), ch.Q7Plan(0).OrderJoins(query.OrderWritten)},
	} {
		g, err := p.greedy.Bind(db)
		if err != nil {
			t.Fatalf("%s: bind greedy: %v", p.name, err)
		}
		w, err := p.written.Bind(db)
		if err != nil {
			t.Fatalf("%s: bind written: %v", p.name, err)
		}
		if !reflect.DeepEqual(g.Columns(), w.Columns()) {
			t.Fatalf("%s: scan columns differ: greedy %v, written %v", p.name, g.Columns(), w.Columns())
		}
		src := factSource(db, g.FactTable())
		want, wantSt, err := one.ExecuteContext(context.Background(), g, src)
		if err != nil {
			t.Fatalf("%s: greedy: %v", p.name, err)
		}
		if len(want.Rows) == 0 {
			t.Fatalf("%s: no rows; the pair tests nothing", p.name)
		}
		for _, eng := range []*olap.Engine{one, many} {
			for _, q := range []olap.Query{g, w} {
				got, st, err := eng.ExecuteContext(context.Background(), q, src)
				if err != nil {
					t.Fatalf("%s: %v", p.name, err)
				}
				assertResultsIdentical(t, p.name, got, want)
				if st.BuildBytes != wantSt.BuildBytes {
					t.Errorf("%s: build bytes %d != %d", p.name, st.BuildBytes, wantSt.BuildBytes)
				}
			}
		}
	}
}

// TestBuilderGoldenAcrossStates runs each pair through the full system in
// every forced state at two scale factors. The engine merges per-morsel
// partials in morsel order, so float totals are bitwise deterministic for
// hand-coded and builder queries alike: results compare exactly, as do
// shapes, scan statistics and states. Stats.Workers reports the measured
// participant count, which legitimately varies run to run, so it is only
// bounds-checked.
func TestBuilderGoldenAcrossStates(t *testing.T) {
	for _, sf := range []float64{0.002, 0.005} {
		sys, err := New()
		if err != nil {
			t.Fatal(err)
		}
		db := sys.LoadCH(sf, 42)
		if err := sys.StartWorkload(0); err != nil {
			t.Fatal(err)
		}
		sys.Run(60)
		for _, st := range []State{S1, S2, S3IS, S3NI} {
			for _, p := range goldenPairs(db) {
				built, err := p.plan.Bind(db)
				if err != nil {
					t.Fatalf("%s: bind: %v", p.name, err)
				}
				want, err := sys.QueryInStateContext(context.Background(), p.hand, st)
				if err != nil {
					t.Fatalf("sf=%v %v %s: hand-coded: %v", sf, st, p.name, err)
				}
				got, err := sys.QueryInStateContext(context.Background(), built, st)
				if err != nil {
					t.Fatalf("sf=%v %v %s: builder: %v", sf, st, p.name, err)
				}
				if got.State != want.State {
					t.Fatalf("sf=%v %v %s: states %v != %v", sf, st, p.name, got.State, want.State)
				}
				assertResultsIdentical(t, p.name, got.Result, want.Result)
				if got.Stats.RowsScanned != want.Stats.RowsScanned ||
					got.Stats.BuildBytes != want.Stats.BuildBytes ||
					got.Stats.Morsels != want.Stats.Morsels ||
					!reflect.DeepEqual(got.Stats.BytesAt, want.Stats.BytesAt) {
					t.Errorf("sf=%v %v %s: stats %+v != %+v", sf, st, p.name, got.Stats, want.Stats)
				}
				for _, st := range []olap.Stats{got.Stats, want.Stats} {
					if st.Morsels > 0 && (st.Workers < 1 || st.Workers > st.Morsels) {
						t.Errorf("sf=%v %s: workers %d outside [1,%d]", sf, p.name, st.Workers, st.Morsels)
					}
				}
			}
		}
	}
}

// assertResultsIdentical demands bitwise equality: the worker pool's
// morsel-ordered merge removes all run-to-run float drift, so golden
// results must match to the last bit even across worker counts, work
// stealing and mid-query resizes.
func assertResultsIdentical(t *testing.T, name string, got, want olap.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Cols, want.Cols) {
		t.Fatalf("%s: cols %v != %v", name, got.Cols, want.Cols)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("%s: rows differ\n got %v\nwant %v", name, got.Rows, want.Rows)
	}
}

// TestBuilderGoldenDeterministicUnderStealing pins the determinism claim
// directly at the engine: a placement whose workers all live on the
// remote socket forces every morsel through cross-socket work stealing
// with racy claim order, yet each run must stay byte-identical to the
// single-worker hand-coded reference.
func TestBuilderGoldenDeterministicUnderStealing(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.SizingForScale(0.02), 11)
	runNewOrders(t, e, db, 150)

	ref := olap.NewEngine(2)
	defer ref.Close()
	ref.SetPlacement(topology.Placement{PerSocket: []int{1, 0}})

	thief := olap.NewEngine(2)
	defer thief.Close()
	thief.SetPlacement(topology.Placement{PerSocket: []int{0, 6}})

	for _, p := range goldenPairs(db) {
		src := factSource(db, p.hand.FactTable())
		built, err := p.plan.Bind(db)
		if err != nil {
			t.Fatalf("%s: bind: %v", p.name, err)
		}
		want, _, err := ref.ExecuteContext(context.Background(), p.hand, src)
		if err != nil {
			t.Fatalf("%s: reference: %v", p.name, err)
		}
		if len(want.Rows) == 0 {
			t.Fatalf("%s: reference produced no rows; the pair tests nothing", p.name)
		}
		for round := 0; round < 3; round++ {
			for _, q := range []olap.Query{p.hand, built} {
				got, st, err := thief.ExecuteContext(context.Background(), q, src)
				if err != nil {
					t.Fatalf("%s round %d: %v", p.name, round, err)
				}
				assertResultsIdentical(t, p.name, got, want)
				if st.StolenMorsels != int64(st.Morsels) {
					t.Fatalf("%s: %d/%d morsels stolen, expected all (workers are remote)",
						p.name, st.StolenMorsels, st.Morsels)
				}
			}
		}
	}
}

// TestGoldenStableUnderMigrationChurn queries through the full adaptive
// system while a background goroutine thrashes state migrations, resizing
// the OLAP pool mid-query. With no concurrent transactions the snapshot
// is fixed, so every repetition must return byte-identical rows.
func TestGoldenStableUnderMigrationChurn(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	db := sys.LoadCH(0.02, 7)
	if err := sys.StartWorkload(0); err != nil {
		t.Fatal(err)
	}
	sys.Run(300)

	stop := make(chan struct{})
	donech := make(chan struct{})
	go func() {
		defer close(donech)
		states := []State{S1, S3NI, S3IS, S1, S3NI}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sys.Core().Sched.MigrateTo(states[i%len(states)])
			time.Sleep(100 * time.Microsecond)
		}
	}()

	for _, q := range []Query{Q1(db), Q6(db), Q19(db), Q3(db), Q12(db), Q18(db), Q2(db), Q5(db), Q7(db)} {
		var want olap.Result
		for round := 0; round < 4; round++ {
			rep, err := sys.QueryInStateContext(context.Background(), q, S3NI)
			if err != nil {
				t.Fatal(err)
			}
			if round == 0 {
				want = rep.Result
				continue
			}
			assertResultsIdentical(t, q.Name(), rep.Result, want)
		}
	}
	close(stop)
	<-donech
}

// TestAdhocFilterGroupByEndToEnd runs a brand-new ad-hoc query — filter
// plus group-by on orderline, not one of Q1/Q6/Q19 — through the adaptive
// scheduler and cross-checks the result against a direct table scan.
func TestAdhocFilterGroupByEndToEnd(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	db := sys.LoadCH(0.005, 9)
	if err := sys.StartWorkload(0); err != nil {
		t.Fatal(err)
	}
	sys.Run(200)

	cutoff := int64(ch.LoadDay - 30)
	q, err := sys.Build(query.Scan(ch.TOrderLine).
		Named("wh-revenue").
		Filter(query.Ge("ol_delivery_d", cutoff)).
		GroupBy("ol_w_id").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("lines")))
	if err != nil {
		t.Fatal(err)
	}
	if q.Class() != ScanGroupBy {
		t.Fatalf("inferred class %v, want ScanGroupBy", q.Class())
	}
	rep, err := sys.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 2 must land in one of the four states and actually scan.
	switch rep.State {
	case S1, S2, S3IS, S3NI:
	default:
		t.Fatalf("scheduler state = %v", rep.State)
	}
	if rep.Stats.RowsScanned != db.OrderLine.Table().Rows() {
		t.Fatalf("scanned %d rows, table has %d", rep.Stats.RowsScanned, db.OrderLine.Table().Rows())
	}

	// Reference aggregation straight off the active instance. The query
	// ran over a snapshot taken before any concurrent activity, and Run
	// finished before the query, so the contents agree.
	tab := db.OrderLine.Table()
	wantLines := map[int64]int64{}
	for r := int64(0); r < tab.Rows(); r++ {
		if tab.ReadActive(r, ch.OLDeliveryD) >= cutoff {
			wantLines[tab.ReadActive(r, ch.OLWID)]++
		}
	}
	if len(rep.Result.Rows) != len(wantLines) {
		t.Fatalf("%d groups, want %d", len(rep.Result.Rows), len(wantLines))
	}
	for _, row := range rep.Result.Rows {
		w, lines, revenue := int64(row[0]), int64(row[2]), row[1]
		if wantLines[w] != lines {
			t.Errorf("warehouse %d: %d lines, want %d", w, lines, wantLines[w])
		}
		if revenue <= 0 {
			t.Errorf("warehouse %d: non-positive revenue %v", w, revenue)
		}
	}
}
