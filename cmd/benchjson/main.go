// Command benchjson converts `go test -bench` text output into a stable
// JSON document mapping each benchmark to its measured metrics, for CI to
// record as the repository's performance trajectory (BENCH_ci.json):
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_ci.json
//
// Standard units parse into fixed fields (ns/op, B/op, allocs/op, MB/s);
// any other unit — including testing.B.ReportMetric custom metrics — lands
// in the metrics map verbatim. Input defaults to stdin, output to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	N           int64              `json:"n"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document benchjson emits. GapRatios holds the
// builder-vs-handcoded abstraction cost per query (builder ns/op over
// handcoded ns/op) for every BenchmarkQ<n>Builder/BenchmarkQ<n>Handcoded
// pair found in the input. OrderRatios holds the greedy-vs-written join
// ordering cost (greedy ns/op over written ns/op) for every
// BenchmarkQ<n>OrderGreedy/BenchmarkQ<n>OrderWritten pair — below 1
// means the zero-statistics greedy order beat the written edge order.
type Report struct {
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]*Bench `json:"benchmarks"`
	// Recovery groups the durability-path benchmarks — WAL append and
	// replay, whole-database checkpointing, crash recovery — so the
	// trajectory of the recovery story reads as one unit.
	Recovery    map[string]*Bench  `json:"recovery,omitempty"`
	GapRatios   map[string]float64 `json:"gap_ratios,omitempty"`
	OrderRatios map[string]float64 `json:"order_ratios,omitempty"`
}

// recoveryBench reports whether a benchmark belongs to the durability
// metric group.
func recoveryBench(name string) bool {
	n := baseName(name)
	return n == "BenchmarkCheckpointDB" || n == "BenchmarkRecovery" ||
		strings.HasPrefix(n, "BenchmarkWAL")
}

// splitRecovery moves the durability benchmarks out of the flat map into
// the report's recovery group.
func splitRecovery(rep *Report) {
	for name, b := range rep.Benchmarks {
		if recoveryBench(name) {
			if rep.Recovery == nil {
				rep.Recovery = map[string]*Bench{}
			}
			rep.Recovery[name] = b
			delete(rep.Benchmarks, name)
		}
	}
}

// graphJoinQueries are the CH queries compiled through the n-way join
// graph (JoinGraph + greedy ordering). Their builder plans run several
// chained hash probes per row against hand-written map chains, so they
// carry their own abstraction-cost budget (-maxgapgraph) instead of the
// single-probe kernels' tighter -maxgap.
var graphJoinQueries = map[string]bool{"Q2": true, "Q5": true, "Q7": true}

// parse reads `go test -bench` output. Benchmark lines look like
//
//	BenchmarkQ6Builder-8   3   1009042 ns/op   2847.06 MB/s   276045 B/op   67 allocs/op
//
// with an arbitrary tail of "<value> <unit>" pairs. Header lines (goos,
// goarch, pkg, cpu) fill the report envelope; everything else is ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: map[string]*Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, hdr := range []struct {
			prefix string
			dst    *string
		}{
			{"goos: ", &rep.Goos},
			{"goarch: ", &rep.Goarch},
			{"pkg: ", &rep.Pkg},
			{"cpu: ", &rep.CPU},
		} {
			if strings.HasPrefix(line, hdr.prefix) {
				*hdr.dst = strings.TrimPrefix(line, hdr.prefix)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := &Bench{N: n}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			case "MB/s":
				b.MBPerSec = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		if ok {
			rep.Benchmarks[fields[0]] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// baseName strips a trailing -<GOMAXPROCS> suffix so Builder/Handcoded
// twins pair up whether or not the run set -cpu.
func baseName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// gapRatios pairs each BenchmarkQ<x>Builder with its
// BenchmarkQ<x>Handcoded twin, records the ns/op ratio both in the
// report's gap_ratios map and as a builder_vs_handcoded metric on the
// builder's entry, and returns the map.
func gapRatios(rep *Report) map[string]float64 {
	hand := map[string]*Bench{}
	build := map[string]*Bench{}
	for name, b := range rep.Benchmarks {
		n := strings.TrimPrefix(baseName(name), "Benchmark")
		if q, ok := strings.CutSuffix(n, "Handcoded"); ok {
			hand[q] = b
		} else if q, ok := strings.CutSuffix(n, "Builder"); ok {
			build[q] = b
		}
	}
	ratios := map[string]float64{}
	for q, hb := range hand {
		bb := build[q]
		if bb == nil || hb.NsPerOp <= 0 {
			continue
		}
		r := bb.NsPerOp / hb.NsPerOp
		ratios[q] = r
		if bb.Metrics == nil {
			bb.Metrics = map[string]float64{}
		}
		bb.Metrics["builder_vs_handcoded"] = r
	}
	return ratios
}

// orderRatios pairs each BenchmarkQ<x>OrderGreedy with its
// BenchmarkQ<x>OrderWritten twin, records the ns/op ratio in the
// report's order_ratios map and as a greedy_vs_written metric on the
// greedy entry, and returns the map.
func orderRatios(rep *Report) map[string]float64 {
	written := map[string]*Bench{}
	greedy := map[string]*Bench{}
	for name, b := range rep.Benchmarks {
		n := strings.TrimPrefix(baseName(name), "Benchmark")
		if q, ok := strings.CutSuffix(n, "OrderWritten"); ok {
			written[q] = b
		} else if q, ok := strings.CutSuffix(n, "OrderGreedy"); ok {
			greedy[q] = b
		}
	}
	ratios := map[string]float64{}
	for q, wb := range written {
		gb := greedy[q]
		if gb == nil || wb.NsPerOp <= 0 {
			continue
		}
		r := gb.NsPerOp / wb.NsPerOp
		ratios[q] = r
		if gb.Metrics == nil {
			gb.Metrics = map[string]float64{}
		}
		gb.Metrics["greedy_vs_written"] = r
	}
	return ratios
}

func main() {
	var (
		in           = flag.String("in", "", "bench output file (default stdin)")
		out          = flag.String("out", "", "JSON destination (default stdout)")
		maxGap       = flag.Float64("maxgap", 0, "fail when any builder-vs-handcoded ns/op ratio exceeds this (0 disables; graph-join queries use -maxgapgraph)")
		maxGapGraph  = flag.Float64("maxgapgraph", 0, "builder-vs-handcoded gate for the graph-join queries Q2/Q5/Q7 (0 disables)")
		maxOrderLoss = flag.Float64("maxorderloss", 0, "fail when any greedy-vs-written ns/op ratio exceeds this, or when greedy wins on none (0 disables)")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	rep.GapRatios = gapRatios(rep)
	rep.OrderRatios = orderRatios(rep)
	splitRecovery(rep)
	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if c, ok := dst.(io.Closer); ok {
		if err := c.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	// The gates run after the report is written: CI still records the
	// failing trajectory point it is rejecting.
	bad := false
	if *maxGap > 0 || *maxGapGraph > 0 {
		for q, r := range rep.GapRatios {
			gate := *maxGap
			if graphJoinQueries[q] {
				gate = *maxGapGraph
			}
			if gate > 0 && r > gate {
				fmt.Fprintf(os.Stderr, "benchjson: %s builder is %.2fx handcoded (gate %.2fx)\n", q, r, gate)
				bad = true
			}
		}
	}
	if *maxOrderLoss > 0 && len(rep.OrderRatios) > 0 {
		wins := 0
		for q, r := range rep.OrderRatios {
			if r > *maxOrderLoss {
				fmt.Fprintf(os.Stderr, "benchjson: %s greedy order is %.2fx written order (gate %.2fx)\n", q, r, *maxOrderLoss)
				bad = true
			}
			if r < 1 {
				wins++
			}
		}
		if wins == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: greedy ordering beat written order on no benched query")
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
