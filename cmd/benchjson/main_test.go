package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: elastichtap
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkQ6Handcoded  	       3	    409628 ns/op	7013.19 MB/s	    2426 B/op	      39 allocs/op
BenchmarkQ6Builder    	       3	   1009042 ns/op	2847.06 MB/s	  276045 B/op	      67 allocs/op
BenchmarkSyncClaim-8  	       5	   1536000 ns/op	        10.2 measured-sync-ms	        10.0 model-sync-ms
PASS
ok  	elastichtap	3.175s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "elastichtap" {
		t.Fatalf("envelope = %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks["BenchmarkQ6Builder"]
	if b == nil {
		t.Fatal("Q6Builder missing")
	}
	if b.N != 3 || b.NsPerOp != 1009042 || b.BytesPerOp != 276045 || b.AllocsPerOp != 67 || b.MBPerSec != 2847.06 {
		t.Fatalf("Q6Builder = %+v", b)
	}
	s := rep.Benchmarks["BenchmarkSyncClaim-8"]
	if s == nil || s.Metrics["measured-sync-ms"] != 10.2 || s.Metrics["model-sync-ms"] != 10.0 {
		t.Fatalf("custom metrics = %+v", s)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("hello\nBenchmarkBad abc def\nok pkg 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage", len(rep.Benchmarks))
	}
}

func TestGapRatios(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	ratios := gapRatios(rep)
	want := 1009042.0 / 409628.0
	if got := ratios["Q6"]; got != want {
		t.Fatalf("Q6 ratio = %v, want %v", got, want)
	}
	if got := rep.Benchmarks["BenchmarkQ6Builder"].Metrics["builder_vs_handcoded"]; got != want {
		t.Fatalf("builder_vs_handcoded metric = %v, want %v", got, want)
	}
	if _, ok := ratios["SyncClaim"]; ok {
		t.Fatal("unpaired benchmark produced a ratio")
	}
}

func TestOrderRatios(t *testing.T) {
	const out = `BenchmarkQ5OrderGreedy    5   100 ns/op
BenchmarkQ5OrderWritten   5   125 ns/op
BenchmarkQ7OrderGreedy-8  5   210 ns/op
BenchmarkQ7OrderWritten-8 5   200 ns/op
BenchmarkQ2OrderGreedy    5   300 ns/op
`
	rep, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	ratios := orderRatios(rep)
	if got := ratios["Q5"]; got != 0.8 {
		t.Fatalf("Q5 order ratio = %v, want 0.8", got)
	}
	if got := ratios["Q7"]; got != 1.05 {
		t.Fatalf("Q7 order ratio = %v, want 1.05", got)
	}
	if _, ok := ratios["Q2"]; ok {
		t.Fatal("unpaired OrderGreedy produced a ratio")
	}
	if got := rep.Benchmarks["BenchmarkQ5OrderGreedy"].Metrics["greedy_vs_written"]; got != 0.8 {
		t.Fatalf("greedy_vs_written metric = %v, want 0.8", got)
	}
}

// TestGraphJoinQueriesGateSeparately: the graph-join queries carry their
// own gap budget, so they must be in gap_ratios (tracked) but flagged as
// graph queries for gating.
func TestGraphJoinQueriesGateSeparately(t *testing.T) {
	const out = `BenchmarkQ7Handcoded  5   100 ns/op
BenchmarkQ7Builder    5   160 ns/op
`
	rep, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	ratios := gapRatios(rep)
	if got := ratios["Q7"]; got != 1.6 {
		t.Fatalf("Q7 gap ratio = %v, want 1.6", got)
	}
	for _, q := range []string{"Q2", "Q5", "Q7"} {
		if !graphJoinQueries[q] {
			t.Fatalf("%s missing from graphJoinQueries", q)
		}
	}
	if graphJoinQueries["Q6"] {
		t.Fatal("Q6 is a single-probe kernel, not a graph query")
	}
}

// TestGapRatiosStripsCPUSuffix: twins pair up when -cpu appends a
// GOMAXPROCS suffix to the names.
func TestGapRatiosStripsCPUSuffix(t *testing.T) {
	const out = `BenchmarkQ1Handcoded-8   10   200 ns/op
BenchmarkQ1Builder-8     10   220 ns/op
`
	rep, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	ratios := gapRatios(rep)
	if got := ratios["Q1"]; got != 1.1 {
		t.Fatalf("Q1 ratio = %v, want 1.1", got)
	}
}
