package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: elastichtap
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkQ6Handcoded  	       3	    409628 ns/op	7013.19 MB/s	    2426 B/op	      39 allocs/op
BenchmarkQ6Builder    	       3	   1009042 ns/op	2847.06 MB/s	  276045 B/op	      67 allocs/op
BenchmarkSyncClaim-8  	       5	   1536000 ns/op	        10.2 measured-sync-ms	        10.0 model-sync-ms
PASS
ok  	elastichtap	3.175s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "elastichtap" {
		t.Fatalf("envelope = %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks["BenchmarkQ6Builder"]
	if b == nil {
		t.Fatal("Q6Builder missing")
	}
	if b.N != 3 || b.NsPerOp != 1009042 || b.BytesPerOp != 276045 || b.AllocsPerOp != 67 || b.MBPerSec != 2847.06 {
		t.Fatalf("Q6Builder = %+v", b)
	}
	s := rep.Benchmarks["BenchmarkSyncClaim-8"]
	if s == nil || s.Metrics["measured-sync-ms"] != 10.2 || s.Metrics["model-sync-ms"] != 10.0 {
		t.Fatalf("custom metrics = %+v", s)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("hello\nBenchmarkBad abc def\nok pkg 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage", len(rep.Benchmarks))
	}
}

func TestGapRatios(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	ratios := gapRatios(rep)
	want := 1009042.0 / 409628.0
	if got := ratios["Q6"]; got != want {
		t.Fatalf("Q6 ratio = %v, want %v", got, want)
	}
	if got := rep.Benchmarks["BenchmarkQ6Builder"].Metrics["builder_vs_handcoded"]; got != want {
		t.Fatalf("builder_vs_handcoded metric = %v, want %v", got, want)
	}
	if _, ok := ratios["SyncClaim"]; ok {
		t.Fatal("unpaired benchmark produced a ratio")
	}
}

// TestGapRatiosStripsCPUSuffix: twins pair up when -cpu appends a
// GOMAXPROCS suffix to the names.
func TestGapRatiosStripsCPUSuffix(t *testing.T) {
	const out = `BenchmarkQ1Handcoded-8   10   200 ns/op
BenchmarkQ1Builder-8     10   220 ns/op
`
	rep, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	ratios := gapRatios(rep)
	if got := ratios["Q1"]; got != 1.1 {
		t.Fatalf("Q1 ratio = %v, want 1.1", got)
	}
}
