// Command chbench regenerates the paper's tables and figures as text.
//
// Usage:
//
//	chbench -fig all
//	chbench -fig 1|3a|3b|3c|4|5a|5b|sync|convergence -sf 0.01 -seed 42
//	chbench -table 1
//	chbench -fig 5a -sequences 100
//	chbench -fig all -timeout 10m
//
// Output is one text table per artifact; EXPERIMENTS.md records the
// expected shapes next to the paper's numbers. -timeout bounds the whole
// run: an expired deadline abandons the in-flight artifact and exits
// non-zero instead of hanging a CI job.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"elastichtap/internal/experiments"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 1, 3a, 3b, 3c, 4, 5a, 5b, alpha, tail, tenants, joinorder, sync, convergence, all")
		table     = flag.Int("table", 0, "table to regenerate (1)")
		sf        = flag.Float64("sf", 0.01, "loaded scale factor")
		seed      = flag.Int64("seed", 42, "generator seed")
		sequences = flag.Int("sequences", 100, "Figure 5 sequence count")
		alpha     = flag.Float64("alpha", 0, "override scheduler α (0 = default)")
		timeout   = flag.Duration("timeout", 0, "deadline for the whole run (0 = none)")
		mtqueries = flag.Int("mtqueries", 240, "multi-tenant scenario arrival count")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *table == 1 {
		experiments.Banner(os.Stdout, "Table 1: HTAP design classification")
		experiments.RenderTable1(os.Stdout)
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	opt := experiments.Options{SF: *sf, Seed: *seed, Alpha: *alpha}
	run := func(name string) {
		if err := runFigContext(ctx, name, opt, *sequences, *mtqueries); err != nil {
			fmt.Fprintf(os.Stderr, "chbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *fig == "all" {
		for _, name := range []string{"1", "3a", "3b", "3c", "4", "5a", "alpha", "tail", "tenants", "joinorder", "sync", "convergence"} {
			run(name)
		}
		experiments.Banner(os.Stdout, "Table 1: HTAP design classification")
		experiments.RenderTable1(os.Stdout)
		return
	}
	run(*fig)
}

// runFigContext bounds one artifact's generation by the context: the
// figure runs in its own goroutine and an expired deadline abandons the
// wait. The experiment goroutine is left to the process teardown — the
// figure drivers are synchronous sweeps with no external effects, so
// exiting under a deadline is safe.
func runFigContext(ctx context.Context, name string, opt experiments.Options, sequences, mtQueries int) error {
	if ctx.Done() == nil {
		return runFig(name, opt, sequences, mtQueries)
	}
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- runFig(name, opt, sequences, mtQueries) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return fmt.Errorf("abandoned after %v: %w", time.Since(start).Round(time.Millisecond), ctx.Err())
	}
}

func runFig(name string, opt experiments.Options, sequences, mtQueries int) error {
	switch name {
	case "1":
		experiments.Banner(os.Stdout, "Figure 1: HTAP with ETL and CoW (4-socket server)")
		rows, err := experiments.Figure1(opt)
		if err != nil {
			return err
		}
		experiments.RenderFig1(os.Stdout, rows)
	case "3a":
		experiments.Banner(os.Stdout, "Figure 3(a): S1 sensitivity — CPUs interchanged")
		rows, err := experiments.Figure3a(opt)
		if err != nil {
			return err
		}
		experiments.RenderFig3a(os.Stdout, rows, "# CPUs interchanged")
	case "3b":
		experiments.Banner(os.Stdout, "Figure 3(b): S2 sensitivity — batch size")
		rows, err := experiments.Figure3b(opt)
		if err != nil {
			return err
		}
		experiments.RenderFig3b(os.Stdout, rows)
	case "3c":
		experiments.Banner(os.Stdout, "Figure 3(c): S3-NI sensitivity — OLTP CPUs to OLAP")
		rows, err := experiments.Figure3c(opt)
		if err != nil {
			return err
		}
		experiments.RenderFig3a(os.Stdout, rows, "# OLTP CPUs to OLAP")
	case "4":
		experiments.Banner(os.Stdout, "Figure 4: OLAP response time vs data freshness")
		rows, err := experiments.Figure4(opt)
		if err != nil {
			return err
		}
		experiments.RenderFig4(os.Stdout, rows)
	case "5a", "5b":
		experiments.Banner(os.Stdout, "Figure 5: HTAP performance under different scheduling states")
		series, err := experiments.Figure5(opt, sequences, nil)
		if err != nil {
			return err
		}
		experiments.RenderFig5(os.Stdout, series, sequences/10)
		fmt.Printf("\nAdaptive-S3-NI vs S3-IS cumulative gap: %.1f%%\n",
			experiments.Fig5Gap(series, experiments.SchedS3IS, experiments.SchedAdaptiveNI))
		fmt.Printf("Adaptive-S3-IS vs S3-IS cumulative gap: %.1f%%\n",
			experiments.Fig5Gap(series, experiments.SchedS3IS, experiments.SchedAdaptiveIS))
	case "alpha":
		experiments.Banner(os.Stdout, "Ablation: ETL sensitivity α sweep (Adaptive-S3-NI)")
		rows, err := experiments.AlphaSweep(opt, sequences/2, nil)
		if err != nil {
			return err
		}
		experiments.RenderAlpha(os.Stdout, rows)
	case "tail":
		experiments.Banner(os.Stdout, "§5.2 claim: OLTP tail latency by state (S1 worst)")
		rows, err := experiments.TailLatency(opt)
		if err != nil {
			return err
		}
		experiments.RenderTail(os.Stdout, rows)
	case "joinorder":
		experiments.Banner(os.Stdout, "Join ordering: greedy vs written edge order (Q2/Q5/Q7)")
		rows, err := experiments.JoinOrderSweep(opt, 0)
		if err != nil {
			return err
		}
		experiments.RenderJoinOrder(os.Stdout, rows)
	case "tenants":
		experiments.Banner(os.Stdout, "Multi-tenant serving: weighted fair shares and latency tails")
		rows, err := experiments.MultiTenant(opt, mtQueries)
		if err != nil {
			return err
		}
		experiments.RenderTenants(os.Stdout, rows)
	case "sync":
		experiments.Banner(os.Stdout, "§3.4 claim: instance synchronization cost")
		experiments.RenderSyncClaim(os.Stdout, experiments.SyncClaim(0, 0))
	case "convergence":
		experiments.Banner(os.Stdout, "§5.3 claim: adaptive gap at 100/200/250/300 sequences")
		rows, err := experiments.Convergence(opt, nil)
		if err != nil {
			return err
		}
		experiments.RenderConvergence(os.Stdout, rows)
	default:
		return fmt.Errorf("unknown figure %q", name)
	}
	return nil
}
