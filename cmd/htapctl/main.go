// Command htapctl drives an interactive-scale HTAP scenario and prints
// the scheduler's behavior and system metrics — an operator's smoke test
// of the session API: every round executes under a context (optionally
// deadlined with -timeout), and the per-round queries are prepared
// statements stamped with fresh parameter values each round.
//
// Usage:
//
//	htapctl -sf 0.01 -rounds 10 -txns 500 -payment 20 -alpha 0.7 -query Q6
//	htapctl -state S2            # pin a static state instead of adapting
//	htapctl -query adhoc         # a prepared group-by report, stamped per round
//	htapctl -timeout 30s         # deadline the whole run
//	htapctl -tenant dashboards   # run the rounds as a registered tenant
//	htapctl -checkpoint /tmp/db  # WAL every commit, checkpoint after the rounds
//	htapctl -restore /tmp/db     # recover from the checkpoint + WAL and continue
//
// With -tenant the rounds pass the workload manager's admission gate as
// that tenant (registered up front with -tenantweight), and the final
// metrics include the per-tenant table: admissions, rejections, queue
// wait, morsels dispatched and bytes charged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"elastichtap"
	"elastichtap/query"
)

func main() {
	var (
		sf        = flag.Float64("sf", 0.01, "CH-benCHmark scale factor")
		seed      = flag.Int64("seed", 42, "generator seed")
		rounds    = flag.Int("rounds", 10, "transaction/query rounds")
		txns      = flag.Int("txns", 500, "transactions per round")
		payment   = flag.Int("payment", 0, "Payment percentage in the mix")
		alpha     = flag.Float64("alpha", 0.7, "ETL sensitivity α")
		state     = flag.String("state", "", "pin a static state: S1, S2, S3-IS, S3-NI (empty = adaptive)")
		queryName = flag.String("query", "Q6", "query per round: Q1, Q3, Q6, Q12, Q18, Q19, mix, adhoc, topk")
		emulate   = flag.Float64("emulate", 300, "report timings as if at this scale factor")
		timeout   = flag.Duration("timeout", 0, "deadline for the whole run (0 = none); expiry cancels the in-flight query at the next morsel boundary")
		tenant    = flag.String("tenant", "", "run the round queries as this workload-manager tenant (empty = default tenant)")
		weight    = flag.Int("tenantweight", 4, "fair-share weight for -tenant")
		ckptDir   = flag.String("checkpoint", "", "durability directory: log every commit to its WAL and write a whole-database checkpoint after the rounds")
		restore   = flag.String("restore", "", "recover the database from this durability directory instead of loading fresh (-sf/-seed are ignored)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []elastichtap.Option{elastichtap.WithAlpha(*alpha)}
	if *emulate > 0 && *sf > 0 {
		opts = append(opts, elastichtap.WithEmulatedScale(*sf, *emulate))
	}
	var (
		sys *elastichtap.System
		db  *elastichtap.DB
		err error
	)
	if *restore != "" {
		var info elastichtap.RecoveryInfo
		sys, info, err = elastichtap.OpenFromDir(elastichtap.DiskFS(), *restore, opts...)
		if err != nil {
			log.Fatal(err)
		}
		db = sys.DB()
		fmt.Printf("recovered from %s: checkpoint %d + %d WAL transactions (%d commits total)",
			*restore, info.Seq, info.Replayed, info.Commits)
		if info.Truncated {
			fmt.Printf("; torn log tail discarded at byte %d", info.ValidPos)
		}
		fmt.Println()
	} else {
		sys, err = elastichtap.New(opts...)
		if err != nil {
			log.Fatal(err)
		}
		db = sys.LoadCH(*sf, *seed)
	}
	defer sys.Close()
	if *ckptDir != "" {
		if err := sys.EnableWAL(elastichtap.DiskFS(), *ckptDir, elastichtap.SyncAlways, 0); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.StartWorkload(*payment); err != nil {
		log.Fatal(err)
	}
	if *tenant != "" {
		err := sys.RegisterTenant(*tenant, elastichtap.TenantConfig{
			Weight:        *weight,
			MaxConcurrent: elastichtap.UnlimitedQuota,
			MaxQueueDepth: elastichtap.UnlimitedQuota,
		})
		if err != nil {
			log.Fatal(err)
		}
		ctx = elastichtap.WithTenant(ctx, *tenant)
	}

	var forced *elastichtap.State
	if *state != "" {
		st, err := parseState(*state)
		if err != nil {
			log.Fatal(err)
		}
		forced = &st
	}

	// The ad-hoc reports are prepared once — catalog lookup, predicate
	// typing and kernel selection up front — and stamped with the moving
	// date cutoff each round.
	weekly := query.Scan("orderline").
		Filter(query.Ge("ol_delivery_d", query.Param("since"))).
		GroupBy("ol_w_id").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count())
	var stmt *elastichtap.Stmt
	switch strings.ToUpper(*queryName) {
	case "TOPK":
		stmt, err = sys.Prepare(weekly.Named("topk").OrderBy("revenue", true).Limit(5))
	case "ADHOC":
		stmt, err = sys.Prepare(weekly.Named("adhoc"))
	}
	if err != nil {
		log.Fatal(err)
	}

	mix := db.QuerySet()
	round := 0
	pick := func() elastichtap.Query {
		switch strings.ToUpper(*queryName) {
		case "Q1":
			return elastichtap.Q1(db)
		case "Q3":
			return elastichtap.Q3(db)
		case "Q12":
			return elastichtap.Q12(db)
		case "Q18":
			return elastichtap.Q18(db)
		case "Q19":
			return elastichtap.Q19(db)
		case "MIX":
			// Rotate through the full analytical mix, one query per round.
			q := mix[round%len(mix)]
			round++
			return q
		default:
			return elastichtap.Q6(db)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "round\ttenant\tstate\tmethod\tresp (s)\tetl (s)\tfreshness\tOLTP MTPS\tworkers\tstolen")
	for r := 1; r <= *rounds; r++ {
		sys.Run(*txns)
		rate, _ := sys.Freshness()
		var rep elastichtap.QueryReport
		switch {
		case stmt != nil && forced != nil:
			// Stamped prepared report, pinned to the operator's state.
			rep, err = stmt.QueryInState(ctx, elastichtap.Args{"since": db.Day() - 7}, *forced)
		case stmt != nil:
			// Stamp this round's date cutoff into the prepared report.
			rep, err = stmt.Query(ctx, elastichtap.Args{"since": db.Day() - 7})
		case forced != nil:
			rep, err = sys.QueryInStateContext(ctx, pick(), *forced)
		default:
			rep, err = sys.QueryContext(ctx, pick())
		}
		if errors.Is(err, elastichtap.ErrCancelled) {
			tw.Flush()
			log.Fatalf("htapctl: round %d: deadline expired: %v", r, err)
		}
		if err != nil {
			log.Fatal(err)
		}
		// workers: pool goroutines that actually consumed morsels this
		// round; stolen: share of morsels pulled across sockets.
		stolen := 0.0
		if rep.Stats.Morsels > 0 {
			stolen = float64(rep.Stats.StolenMorsels) / float64(rep.Stats.Morsels)
		}
		fmt.Fprintf(tw, "%d\t%s\t%v\t%v\t%.3f\t%.3f\t%.4f\t%.3f\t%d\t%.0f%%\n",
			r, rep.Tenant, rep.State, rep.Method, rep.ResponseSeconds, rep.ETLSeconds,
			rate, rep.OLTPDuringTPS/1e6, rep.Stats.Workers, stolen*100)
	}
	tw.Flush()

	if *ckptDir != "" {
		seq, err := sys.CheckpointDB(elastichtap.DiskFS(), *ckptDir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwhole-database checkpoint %d written under %s (restore with -restore %s)\n",
			seq, *ckptDir, *ckptDir)
	}

	fmt.Println("\nfinal system metrics:")
	fmt.Print(sys.Metrics())
}

func parseState(s string) (elastichtap.State, error) {
	switch strings.ToUpper(strings.ReplaceAll(s, "_", "-")) {
	case "S1":
		return elastichtap.S1, nil
	case "S2":
		return elastichtap.S2, nil
	case "S3-IS", "S3IS":
		return elastichtap.S3IS, nil
	case "S3-NI", "S3NI":
		return elastichtap.S3NI, nil
	default:
		return 0, fmt.Errorf("htapctl: unknown state %q", s)
	}
}
