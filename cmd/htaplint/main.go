// Command htaplint runs the engine's invariant checkers over the
// module and exits non-zero on any finding. It is the machine-checked
// half of the contracts the code comments promise:
//
//	hotalloc   //htap:hotpath code and its callees never heap-allocate
//	guardedby  //htap:guardedby fields are touched only under their mutex
//	detmerge   //htap:deterministic code has no iteration-order variance
//	ctxflow    blocking API takes a context; library code mints no roots
//	noshims    the deprecated linear join shims gain no new callers
//
// Usage:
//
//	go run ./cmd/htaplint ./...
//
// Patterns default to ./... relative to the current directory. CI runs
// it in the lint job, so a violation fails the build with the same
// file:line diagnostics shown locally.
package main

import (
	"fmt"
	"os"

	"elastichtap/internal/lint"
	"elastichtap/internal/lint/ctxflow"
	"elastichtap/internal/lint/detmerge"
	"elastichtap/internal/lint/guardedby"
	"elastichtap/internal/lint/hotalloc"
	"elastichtap/internal/lint/noshims"
)

var analyzers = []*lint.Analyzer{
	hotalloc.Analyzer,
	guardedby.Analyzer,
	detmerge.Analyzer,
	ctxflow.Analyzer,
	noshims.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "htaplint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htaplint:", err)
		os.Exit(2)
	}
	bad := false
	for _, pkg := range pkgs {
		findings, err := pkg.Run(analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "htaplint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			bad = true
			fmt.Println(f)
		}
	}
	if bad {
		os.Exit(1)
	}
}
