package elastichtap

import (
	"fmt"
	"time"

	"elastichtap/internal/ch"
	"elastichtap/internal/checkpoint"
	"elastichtap/internal/wal"
)

// Durability layer: a commit write-ahead log plus whole-database
// checkpoints, composing into crash recovery.
//
//	sys, _ := elastichtap.New()
//	db := sys.LoadCH(0.001, 42)
//	fs := elastichtap.DiskFS()
//	sys.EnableWAL(fs, "data", elastichtap.SyncAlways, 0)
//	sys.CheckpointDB(fs, "data")      // bootstrap image of the load
//	... workload runs, commits stream into data/wal.log ...
//	sys.CheckpointDB(fs, "data")      // later images truncate replay work
//
// After a crash:
//
//	sys2, info, _ := elastichtap.OpenFromDir(fs, "data")
//	// sys2 now holds every committed transaction: the latest complete
//	// checkpoint image plus the WAL suffix replayed above info.WALPos.

// FS is the filesystem surface the durability layer writes through.
// DiskFS returns the real one; tests and the crash harness use
// wal.NewMemFS for fault injection.
type FS = wal.FS

// SyncPolicy selects when WAL appends are made durable.
type SyncPolicy = wal.SyncPolicy

// WAL sync policies.
const (
	// SyncAlways fsyncs before a commit acknowledges (group-committed).
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs at most once per configured interval.
	SyncInterval = wal.SyncInterval
	// SyncNever leaves fsync to checkpoints and Close.
	SyncNever = wal.SyncNever
)

// DiskFS returns the operating-system filesystem.
func DiskFS() FS { return wal.OSFS{} }

// walName is the commit log's file name under the durability directory.
const walName = "wal.log"

// EnableWAL attaches a commit write-ahead log under dir: every later
// commit appends its write set to dir/wal.log before applying, per the
// sync policy (interval is only read by SyncInterval). An existing log is
// scanned, truncated at its first corrupt or torn record, and appended
// to from there. Call it after LoadCH and before the workload; the
// loaded data itself is persisted by the first CheckpointDB, not the log.
func (s *System) EnableWAL(fs FS, dir string, policy SyncPolicy, interval time.Duration) error {
	if err := fs.MkdirAll(dir); err != nil {
		return fmt.Errorf("elastichtap: EnableWAL: %w", err)
	}
	name := dir + "/" + walName
	start := int64(0)
	if f, err := fs.Open(name); err == nil {
		st, rerr := wal.Replay(f, 0, nil)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("elastichtap: EnableWAL: scanning %s: %w", name, rerr)
		}
		if st.Truncated {
			if err := fs.Truncate(name, st.ValidPos); err != nil {
				return fmt.Errorf("elastichtap: EnableWAL: %w", err)
			}
		}
		start = st.ValidPos
	}
	l, err := wal.Open(fs, name, policy, interval, start)
	if err != nil {
		return fmt.Errorf("elastichtap: EnableWAL: %w", err)
	}
	s.inner.OLTPE.Manager().SetWAL(l)
	return nil
}

// WAL returns the attached commit log, or nil.
func (s *System) WAL() *wal.Log { return s.inner.OLTPE.Manager().WAL() }

// Sizing extras keys persisted in whole-database manifests.
const (
	extraDay        = "ch.day"
	extraWarehouses = "ch.warehouses"
	extraDistricts  = "ch.districts_per_wh"
	extraCustomers  = "ch.customers_per_district"
	extraItems      = "ch.items"
	extraOrders     = "ch.orders_per_district"
	extraOrderLines = "ch.order_lines_per_order"
)

// CheckpointDB streams a whole-database checkpoint into dir (next to the
// WAL): one ckpt-<seq> directory holding every table's v2 checkpoint file
// and a manifest binding them to a WAL position, the transaction clock,
// the commit count, per-table OLAP replica watermarks and staleness bits.
// The capture is transaction consistent (commit barrier) and the
// streaming proceeds from pinned snapshot instances while transactions
// continue. Returns the checkpoint's sequence number.
func (s *System) CheckpointDB(fs FS, dir string) (uint64, error) {
	if s.db == nil {
		return 0, fmt.Errorf("elastichtap: CheckpointDB: %w", ErrNoDatabase)
	}
	sz := s.db.Sizing
	extras := map[string]int64{
		extraDay:        s.db.Day(),
		extraWarehouses: int64(sz.Warehouses),
		extraDistricts:  int64(sz.DistrictsPerWH),
		extraCustomers:  int64(sz.CustomersPerDistrict),
		extraItems:      int64(sz.Items),
		extraOrders:     int64(sz.OrdersPerDistrict),
		extraOrderLines: int64(sz.OrderLinesPerOrder),
	}
	return s.inner.CheckpointDB(fs, dir, extras)
}

// RecoveryInfo describes what OpenFromDir reconstructed.
type RecoveryInfo struct {
	// Seq is the checkpoint sequence restored from.
	Seq uint64
	// WALPos is the log offset replay started at (the manifest's).
	WALPos int64
	// ValidPos is the offset after the last intact log record; bytes
	// beyond it were a torn tail or corruption and were discarded.
	ValidPos int64
	// Replayed counts the committed transactions re-applied from the log.
	Replayed int
	// Truncated reports whether the log ended in a torn or corrupt record
	// rather than a clean end of file.
	Truncated bool
	// Commits is the restored lifetime commit count.
	Commits uint64
}

// OpenFromDir builds a fresh system and restores the database from the
// durability directory: the latest complete checkpoint image (torn
// checkpoint directories are skipped), then the WAL suffix above the
// manifest's position, truncating mentally at the first corrupt or torn
// record. Indexes are rebuilt and replica watermarks, staleness bits, the
// transaction clock and the commit count restored, so analytics,
// freshness metrics and further transactions continue exactly where the
// crashed process's durable state ended.
//
// The recovery itself is read-only — the same directory can be opened
// any number of times, concurrently or repeatedly, with identical
// results. To resume logging commits, call EnableWAL afterwards (it
// truncates the torn tail, if any, and appends from ValidPos).
func OpenFromDir(fs FS, dir string, opts ...Option) (*System, RecoveryInfo, error) {
	var info RecoveryInfo
	seq, man, ok, err := checkpoint.Latest(fs, dir)
	if err != nil {
		return nil, info, fmt.Errorf("elastichtap: OpenFromDir: %w", err)
	}
	if !ok {
		return nil, info, fmt.Errorf("elastichtap: OpenFromDir: no complete checkpoint under %s", dir)
	}
	info.Seq = seq
	info.WALPos = man.WALPos

	sizing := ch.Sizing{
		Warehouses:           int(man.Extras[extraWarehouses]),
		DistrictsPerWH:       int(man.Extras[extraDistricts]),
		CustomersPerDistrict: int(man.Extras[extraCustomers]),
		Items:                int(man.Extras[extraItems]),
		OrdersPerDistrict:    int(man.Extras[extraOrders]),
		OrderLinesPerOrder:   int(man.Extras[extraOrderLines]),
	}
	if sizing.Warehouses <= 0 {
		return nil, info, fmt.Errorf("elastichtap: OpenFromDir: manifest missing sizing extras")
	}

	s, err := New(opts...)
	if err != nil {
		return nil, info, err
	}
	db := ch.Attach(s.inner.OLTPE, sizing)
	db.SetDay(man.Extras[extraDay])
	s.db = db

	seqDir := checkpoint.SeqDir(dir, seq)
	for _, te := range man.Tables {
		h := db.Handle(te.Name)
		if h == nil {
			s.Close()
			return nil, info, fmt.Errorf("elastichtap: OpenFromDir: manifest names unknown table %q", te.Name)
		}
		path := seqDir + "/" + te.Name + ".ehcp"
		crc, err := checkpoint.FileCRC(fs, path)
		if err != nil {
			s.Close()
			return nil, info, fmt.Errorf("elastichtap: OpenFromDir: %w", err)
		}
		if crc != te.FileCRC {
			s.Close()
			return nil, info, fmt.Errorf("elastichtap: OpenFromDir: %s: file checksum %08x, manifest says %08x",
				path, crc, te.FileCRC)
		}
		f, err := fs.Open(path)
		if err != nil {
			s.Close()
			return nil, info, fmt.Errorf("elastichtap: OpenFromDir: %w", err)
		}
		err = checkpoint.ReadInto(f, h.Table())
		f.Close()
		if err != nil {
			s.Close()
			return nil, info, fmt.Errorf("elastichtap: OpenFromDir: restoring %q: %w", te.Name, err)
		}
		if h.Table().Rows() != te.Rows {
			s.Close()
			return nil, info, fmt.Errorf("elastichtap: OpenFromDir: %q restored %d rows, manifest says %d",
				te.Name, h.Table().Rows(), te.Rows)
		}
		// The restore appended every row, marking them all OLAP-stale;
		// the manifest knows which rows actually were.
		bits := h.Table().DirtyOLAP()
		bits.Reset()
		for _, row := range te.Dirty {
			bits.Set(int(row))
		}
	}

	// Replay the WAL suffix. Records apply exactly as live commits did —
	// same order, same commit timestamps — so inserts reassign identical
	// row IDs and staleness bits evolve identically.
	mgr := s.inner.OLTPE.Manager()
	clock := man.Clock
	if f, err := fs.Open(dir + "/" + walName); err == nil {
		st, rerr := wal.Replay(f, man.WALPos, func(_ int64, rec *wal.Record) error {
			if rec.CommitTS > clock {
				clock = rec.CommitTS
			}
			return applyRecord(db, rec)
		})
		f.Close()
		if rerr != nil {
			s.Close()
			return nil, info, fmt.Errorf("elastichtap: OpenFromDir: replaying log: %w", rerr)
		}
		info.ValidPos = st.ValidPos
		info.Replayed = st.Replayed
		info.Truncated = st.Truncated
	}

	db.RebuildIndexes()

	// Replica watermarks: re-copy the prefix each replica had absorbed.
	// Content for updated rows comes from the restored (fully applied)
	// table rather than the historical ETL — unobservable, because those
	// rows keep their staleness bits and are re-copied before any replica
	// read (S2 ETLs first; split access excludes updated tables).
	for _, te := range man.Tables {
		h := db.Handle(te.Name)
		rep := s.inner.X.Replica(h)
		if te.ReplicaRows > 0 {
			rep.CopyInserts(h.Table().Active(), 0, te.ReplicaRows)
		}
	}

	mgr.RestoreState(clock, man.Commits+uint64(info.Replayed))
	info.Commits = mgr.Commits()
	return s, info, nil
}

// applyRecord applies one replayed commit record to the database,
// mirroring Txn.Commit's apply step.
func applyRecord(db *ch.DB, rec *wal.Record) error {
	for i := range rec.Ops {
		op := &rec.Ops[i]
		h := db.Handle(op.Table)
		if h == nil {
			return fmt.Errorf("log names unknown table %q", op.Table)
		}
		t := h.Table()
		switch op.Kind {
		case wal.OpUpdate:
			if op.Row >= t.Rows() {
				return fmt.Errorf("log updates row %d of %q beyond %d rows", op.Row, op.Table, t.Rows())
			}
			t.BeginApply()
			t.UpdateCell(op.Row, int(op.Col), op.Val, rec.CommitTS)
			t.EndApply()
		case wal.OpInsert:
			if op.Width != len(t.Schema().Columns) {
				return fmt.Errorf("log inserts width %d into %q (width %d)", op.Width, op.Table, len(t.Schema().Columns))
			}
			rows := make([][]int64, op.NRows)
			for r := 0; r < op.NRows; r++ {
				rows[r] = op.Vals[r*op.Width : (r+1)*op.Width]
			}
			t.AppendRows(rows, rec.CommitTS)
		default:
			return fmt.Errorf("log op kind %d", op.Kind)
		}
	}
	return nil
}
