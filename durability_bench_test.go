package elastichtap

import (
	"testing"

	"elastichtap/internal/wal"
)

// benchImage builds a durable image — bootstrap checkpoint plus a WAL
// suffix of b-agnostic fixed size — for the recovery benchmarks.
func benchImage(b *testing.B, txns int) *wal.MemFS {
	b.Helper()
	fs := wal.NewMemFS()
	sys, err := New()
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	sys.LoadCH(0.005, 7)
	if err := sys.EnableWAL(fs, "data", SyncNever, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.CheckpointDB(fs, "data"); err != nil {
		b.Fatal(err)
	}
	if err := sys.StartWorkload(30); err != nil {
		b.Fatal(err)
	}
	sys.Run(txns)
	if err := sys.WAL().Sync(); err != nil {
		b.Fatal(err)
	}
	return fs
}

// BenchmarkCheckpointDB measures one whole-database checkpoint — the
// barrier capture plus streaming every table — on a loaded system.
func BenchmarkCheckpointDB(b *testing.B) {
	sys, err := New()
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	sys.LoadCH(0.005, 7)
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		fs := wal.NewMemFS()
		if _, err := sys.CheckpointDB(fs, "data"); err != nil {
			b.Fatal(err)
		}
		bytes = fs.BytesWritten()
	}
	b.SetBytes(bytes)
}

// BenchmarkRecovery measures OpenFromDir end to end — manifest read,
// checksum-verified table restore, WAL replay, index rebuild, replica
// re-copy — from an image with a 500-transaction log suffix.
func BenchmarkRecovery(b *testing.B) {
	fs := benchImage(b, 500)
	img := fs.Crash(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, info, err := OpenFromDir(img, "data")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(info.Replayed), "replayed-txns")
		}
		sys.Close()
	}
	b.SetBytes(fs.BytesWritten())
}
