package elastichtap

import (
	"reflect"
	"strings"
	"testing"

	"elastichtap/internal/wal"
)

// durableSystem builds a system over a fault-injectable filesystem with
// the WAL attached and a bootstrap checkpoint of the freshly loaded
// database, mirroring the documented durability flow.
func durableSystem(t *testing.T, fs *wal.MemFS, policy SyncPolicy) (*System, *DB) {
	t.Helper()
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	db := sys.LoadCH(0.005, 7)
	if err := sys.EnableWAL(fs, "data", policy, 0); err != nil {
		t.Fatal(err)
	}
	if seq, err := sys.CheckpointDB(fs, "data"); err != nil || seq != 1 {
		t.Fatalf("bootstrap checkpoint: seq=%d err=%v", seq, err)
	}
	if err := sys.StartWorkload(30); err != nil {
		t.Fatal(err)
	}
	return sys, db
}

func TestDurabilityRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	sys, db := durableSystem(t, fs, SyncAlways)

	sys.Run(200)
	if seq, err := sys.CheckpointDB(fs, "data"); err != nil || seq != 2 {
		t.Fatalf("second checkpoint: seq=%d err=%v", seq, err)
	}
	sys.Run(150)

	wantCommits := sys.inner.OLTPE.Manager().Commits()
	wantQ6, err := sys.Query(Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	wantQ18, err := sys.Query(Q18(db))
	if err != nil {
		t.Fatal(err)
	}

	// Queries are read-only, so the durable image still reflects every
	// commit (SyncAlways): recovery must reproduce the same answers.
	img := fs.Crash(false)
	sys2, info, err := OpenFromDir(img, "data")
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if info.Seq != 2 {
		t.Fatalf("restored from seq %d, want 2", info.Seq)
	}
	if info.Replayed == 0 || info.Truncated {
		t.Fatalf("replay info = %+v, want clean tail with replayed txns", info)
	}
	if info.Commits != wantCommits {
		t.Fatalf("recovered %d commits, live saw %d", info.Commits, wantCommits)
	}
	db2 := sys2.DB()
	gotQ6, err := sys2.Query(Q6(db2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotQ6.Result.Rows, wantQ6.Result.Rows) {
		t.Fatalf("Q6 diverged: recovered %v, live %v", gotQ6.Result.Rows, wantQ6.Result.Rows)
	}
	gotQ18, err := sys2.Query(Q18(db2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotQ18.Result.Rows, wantQ18.Result.Rows) {
		t.Fatalf("Q18 diverged: recovered %v, live %v", gotQ18.Result.Rows, wantQ18.Result.Rows)
	}

	// The recovered system resumes: WAL back on, workload continues.
	if err := sys2.EnableWAL(img, "data", SyncAlways, 0); err != nil {
		t.Fatal(err)
	}
	if err := sys2.StartWorkload(30); err != nil {
		t.Fatal(err)
	}
	sys2.Run(50)
	if got := sys2.inner.OLTPE.Manager().Commits(); got <= wantCommits {
		t.Fatalf("commits stuck at %d after resuming workload", got)
	}
}

// TestRecoveryDeterministic: recovery is read-only, so opening the same
// crashed image repeatedly yields identical state.
func TestRecoveryDeterministic(t *testing.T) {
	fs := wal.NewMemFS()
	sys, _ := durableSystem(t, fs, SyncAlways)
	sys.Run(120)
	img := fs.Crash(false)

	var commits []uint64
	var rows [][][]float64
	for i := 0; i < 2; i++ {
		s2, info, err := OpenFromDir(img, "data")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s2.Query(Q6(s2.DB()))
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, info.Commits)
		rows = append(rows, rep.Result.Rows)
		s2.Close()
	}
	if commits[0] != commits[1] || !reflect.DeepEqual(rows[0], rows[1]) {
		t.Fatalf("recovery not deterministic: commits %v", commits)
	}
}

// TestRecoveryTruncatesCorruptTail: garbage past the last valid record is
// discarded by recovery, and EnableWAL physically truncates it so the
// resumed log stays parseable.
func TestRecoveryTruncatesCorruptTail(t *testing.T) {
	fs := wal.NewMemFS()
	sys, _ := durableSystem(t, fs, SyncAlways)
	sys.Run(80)
	wantCommits := sys.inner.OLTPE.Manager().Commits()

	f, err := fs.Append("data/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0x13, 0x37}) // torn frame header
	f.Sync()
	f.Close()

	img := fs.Crash(false)
	sys2, info, err := OpenFromDir(img, "data")
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if !info.Truncated {
		t.Fatal("corrupt tail not reported")
	}
	if info.Commits != wantCommits {
		t.Fatalf("recovered %d commits, want %d", info.Commits, wantCommits)
	}
	if err := sys2.EnableWAL(img, "data", SyncAlways, 0); err != nil {
		t.Fatal(err)
	}
	if got := sys2.WAL().Pos(); got != info.ValidPos {
		t.Fatalf("resumed log at %d, want the valid watermark %d", got, info.ValidPos)
	}
}

// TestSyncNeverLosesOnlyUnsyncedTail: under SyncNever a crash that drops
// unsynced bytes falls back to the durable prefix — never a corrupt state.
func TestSyncNeverLosesOnlyUnsyncedTail(t *testing.T) {
	fs := wal.NewMemFS()
	sys, _ := durableSystem(t, fs, SyncNever)
	sys.Run(100)

	// Lose everything unsynced: only the checkpoint (whose files are
	// explicitly synced) survives.
	img := fs.Crash(false)
	sys2, info, err := OpenFromDir(img, "data")
	if err != nil {
		t.Fatal(err)
	}
	sys2.Close()
	if info.Seq != 1 || info.Replayed != 0 {
		t.Fatalf("expected bare bootstrap restore, got %+v", info)
	}

	// Keep the page cache: the full log replays.
	img2 := fs.Crash(true)
	sys3, info2, err := OpenFromDir(img2, "data")
	if err != nil {
		t.Fatal(err)
	}
	sys3.Close()
	if info2.Replayed == 0 {
		t.Fatalf("kept-cache image replayed nothing: %+v", info2)
	}
	if got := sys.inner.OLTPE.Manager().Commits(); info2.Commits != got {
		t.Fatalf("kept-cache recovery found %d commits, live saw %d", info2.Commits, got)
	}
}

func TestCheckpointRejectsEmptyTable(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.LoadCH(0.005, 1)
	var sink strings.Builder
	if _, err := sys.Checkpoint(&sink, "neworder"); err == nil ||
		!strings.Contains(err.Error(), "no rows") {
		t.Fatalf("zero-row checkpoint accepted (err=%v)", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("zero-row checkpoint wrote %d bytes", sink.Len())
	}
}
