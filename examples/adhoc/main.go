// Ad-hoc analytics: the paper's third workload class (§2.3) — dynamic
// queries mixing historical and fresh data. New questions are expressed
// declaratively with the query builder instead of hand-writing executors:
// each plan compiles onto the generic OLAP kernels with a work class
// inferred from its shape, so the adaptive scheduler times it correctly
// when choosing S1/S2/S3 per query.
package main

import (
	"context"
	"fmt"
	"log"

	"elastichtap"
	"elastichtap/query"
)

func main() {
	sys, err := elastichtap.New(elastichtap.WithAlpha(0.7))
	if err != nil {
		log.Fatal(err)
	}
	db := sys.LoadCH(0.01, 99)
	if err := sys.StartWorkload(10); err != nil {
		log.Fatal(err)
	}

	// The analyst's question stream — none of these are the built-in
	// Q1/Q6/Q19. Plans are plain values: build them once, bind per use.
	plans := []*query.Plan{
		// Revenue and volume by warehouse for recent deliveries
		// (filter + group-by: a ScanGroupBy pipeline).
		query.Scan("orderline").
			Named("wh-revenue").
			Filter(query.Ge("ol_delivery_d", db.Day()-30)).
			GroupBy("ol_w_id").
			Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("lines")),

		// Largest and smallest line amounts per order-line slot for bulk
		// orders (filter + group-by with min/max).
		query.Scan("orderline").
			Named("bulk-extremes").
			Filter(query.Ge("ol_quantity", 7)).
			GroupBy("ol_number").
			Agg(query.Min("ol_amount").As("min_amount"), query.Max("ol_amount").As("max_amount")),

		// Revenue from premium items (an existence-only graph edge
		// against the item dimension: a JoinProbe pipeline,
		// broadcast-costed).
		query.Scan("orderline").
			Named("premium-items").
			JoinGraph(query.JoinOn(
				query.Rel("orderline"),
				query.Rel("item").Filter(query.Ge("i_price", 90.0)),
				"ol_i_id", "i_id")).
			Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("matches")),

		// Average basket quantity across everything (a bare ScanReduce).
		query.Scan("orderline").
			Named("avg-basket").
			Agg(query.Avg("ol_quantity").As("avg_qty"), query.Count()),
	}

	fmt.Println("round  query           class        state  method    resp(s)  rows")
	for round := 1; round <= 8; round++ {
		sys.Run(2000)
		plan := plans[(round-1)%len(plans)]
		q, err := sys.Build(plan)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.QueryContext(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %-14s  %-11v  %-5v  %-8v  %.4f   %d\n",
			round, rep.Query, plan.Class(), rep.State, rep.Method,
			rep.ResponseSeconds, len(rep.Result.Rows))
	}

	rate, _ := sys.Freshness()
	fmt.Printf("\nfinal state %v, freshness %.4f\n", sys.CurrentState(), rate)
}
