// Ad-hoc analytics: the paper's third workload class (§2.3) — dynamic
// queries mixing historical and fresh data. The right state depends on how
// much fresh data each query touches, which is only known at runtime; this
// example contrasts the static schedules with the adaptive one on the same
// query stream and prints the scheduler's decisions.
package main

import (
	"fmt"
	"log"

	"elastichtap"
)

func main() {
	// One system per schedule, fed the same deterministic stream.
	type runner struct {
		name  string
		sys   *elastichtap.System
		query func(s *elastichtap.System, q elastichtap.Query) (elastichtap.QueryReport, error)
	}
	mk := func(name string, static *elastichtap.State) runner {
		sys, err := elastichtap.New(elastichtap.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		sys.LoadCH(0.01, 99)
		sys.StartWorkload(10)
		r := runner{name: name, sys: sys}
		if static == nil {
			r.query = func(s *elastichtap.System, q elastichtap.Query) (elastichtap.QueryReport, error) {
				return s.Query(q)
			}
		} else {
			st := *static
			r.query = func(s *elastichtap.System, q elastichtap.Query) (elastichtap.QueryReport, error) {
				return s.QueryInState(q, st)
			}
		}
		return r
	}
	s2, s3 := elastichtap.S2, elastichtap.S3IS
	runners := []runner{
		mk("static-S2", &s2),
		mk("static-S3-IS", &s3),
		mk("adaptive", nil),
	}

	totals := map[string]float64{}
	for round := 1; round <= 8; round++ {
		for i := range runners {
			runners[i].sys.Run(3000)
		}
		for i := range runners {
			r := &runners[i]
			q := elastichtap.Q19(r.sys.DB())
			if round%2 == 0 {
				q = elastichtap.Q1(r.sys.DB())
			}
			rep, err := r.query(r.sys, q)
			if err != nil {
				log.Fatal(err)
			}
			totals[r.name] += rep.ResponseSeconds
			if r.name == "adaptive" {
				fmt.Printf("round %d: adaptive chose %-5v (%v) for %s, resp %.3fs\n",
					round, rep.State, rep.Method, rep.Query, rep.ResponseSeconds)
			}
		}
	}
	fmt.Println("\ncumulative response time over the ad-hoc stream:")
	for _, r := range runners {
		fmt.Printf("  %-13s %.3fs\n", r.name, totals[r.name])
	}
}
