// Backup: durability end to end. Every commit reaches a write-ahead log
// before it applies, and whole-database checkpoints stream from the
// quiescent inactive instances while transactions keep running — the
// twin-instance design descends from checkpointing schemes (Twin Blocks,
// §3.2), and this is the payoff: no stop-the-world pause. Recovery is
// the latest checkpoint plus the WAL suffix, and the restored system
// answers queries exactly as the original did.
package main

import (
	"fmt"
	"log"
	"os"
	"reflect"

	"elastichtap"
)

func main() {
	dir, err := os.MkdirTemp("", "elastichtap-backup")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs := elastichtap.DiskFS()

	sys, err := elastichtap.New()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	db := sys.LoadCH(0.01, 5)

	// From here on every commit is logged to dir/wal.log before it
	// applies; the bootstrap checkpoint persists the loaded data itself
	// (the log holds commits, not the initial load).
	if err := sys.EnableWAL(fs, dir, elastichtap.SyncAlways, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.CheckpointDB(fs, dir); err != nil {
		log.Fatal(err)
	}
	if err := sys.StartWorkload(20); err != nil {
		log.Fatal(err)
	}

	// Keep the transactional engine busy while the checkpoint streams.
	sys.Core().OLTPE.Workers().Start()
	seq, err := sys.CheckpointDB(fs, dir)
	if err != nil {
		log.Fatal(err)
	}
	sys.Core().OLTPE.Workers().Stop()
	fmt.Printf("checkpoint %d streamed with transactions running\n", seq)

	// More commits after the checkpoint: these survive only in the WAL.
	sys.Run(500)
	commits := sys.Core().OLTPE.Manager().Commits()
	before, err := sys.Query(elastichtap.Q6(db))
	if err != nil {
		log.Fatal(err)
	}

	// "Crash": drop all process state, keep only the directory.
	sys2, info, err := elastichtap.OpenFromDir(fs, dir)
	if err != nil {
		log.Fatal(err)
	}
	defer sys2.Close()
	fmt.Printf("recovered: checkpoint %d + %d WAL transactions = %d commits (original saw %d)\n",
		info.Seq, info.Replayed, info.Commits, commits)

	after, err := sys2.Query(elastichtap.Q6(sys2.DB()))
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(before.Result.Rows, after.Result.Rows) {
		log.Fatalf("Q6 diverged after recovery:\n  before %v\n  after  %v",
			before.Result.Rows, after.Result.Rows)
	}
	fmt.Printf("Q6 before and after recovery agree: %v\n", after.Result.Rows)

	rate, fresh := sys2.Freshness()
	fmt.Printf("restored freshness: rate %.4f, %d fresh bytes outstanding\n", rate, fresh)
}
