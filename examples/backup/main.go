// Backup: checkpoint a table from the quiescent inactive instance while
// transactions keep running — the twin-instance design descends from
// checkpointing schemes (Twin Blocks, §3.2), and this is the payoff: no
// stop-the-world pause.
package main

import (
	"bytes"
	"fmt"
	"log"

	"elastichtap"
)

func main() {
	sys, err := elastichtap.New()
	if err != nil {
		log.Fatal(err)
	}
	sys.LoadCH(0.01, 5)
	if err := sys.StartWorkload(20); err != nil {
		log.Fatal(err)
	}

	// Keep the transactional engine busy in the background.
	sys.Core().OLTPE.Workers().Start()
	defer sys.Core().OLTPE.Workers().Stop()

	var buf bytes.Buffer
	rows, err := sys.Checkpoint(&buf, "orderline")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d orderline rows (%d bytes) with transactions running\n",
		rows, buf.Len())

	sys.Core().OLTPE.Workers().Stop()

	restored, err := elastichtap.RestoreTable(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored table %q: %d rows, %d columns\n",
		restored.Schema().Name, restored.Rows(), len(restored.Schema().Columns))

	// The live table moved on while we checkpointed.
	live := sys.Core().OLTPE.Table("orderline").Table().Rows()
	fmt.Printf("live table meanwhile: %d rows (%d inserted during/after backup)\n",
		live, live-restored.Rows())

	fmt.Println("\nsystem metrics:")
	fmt.Print(sys.Metrics())
}
