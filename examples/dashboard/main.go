// Dashboard: the paper's "short and fresh" workload class (§2.3) — a high
// rate of simple queries that must see the latest data. The scheduler
// stays in hybrid states (split access over the freshest snapshot), never
// paying an ETL, because each query touches only a sliver of fresh data.
// The dashboard tiles are declarative plans compiled per refresh.
package main

import (
	"fmt"
	"log"

	"elastichtap"
	"elastichtap/query"
)

func main() {
	sys, err := elastichtap.New(
		// Dashboards prefer freshness over ETL amortization.
		elastichtap.WithAlpha(0.95),
	)
	if err != nil {
		log.Fatal(err)
	}
	db := sys.LoadCH(0.01, 7)
	if err := sys.StartWorkload(20); err != nil { // NewOrder + some Payments
		log.Fatal(err)
	}

	fmt.Println("tick  state  method    resp(s)  fresh-rows  orders-today")
	for tick := 1; tick <= 10; tick++ {
		sys.Run(500)

		// "Orders placed since this morning": a filter-reduce plan over
		// the order lines delivered today, rebuilt each refresh so the
		// date predicate tracks the database's clock.
		q, err := sys.Build(query.Scan("orderline").
			Named("today").
			Filter(query.Ge("ol_delivery_d", db.Day())).
			Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("orders")))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %-5v  %-8v  %.4f   %-10d %.0f\n",
			tick, rep.State, rep.Method, rep.ResponseSeconds,
			rep.Nfq/db.OrderLine.Table().Schema().RowBytes(),
			rep.Result.Rows[0][1])
		if rep.ETLSeconds > 0 {
			fmt.Println("      (unexpected ETL for a dashboard query)")
		}
	}
}
