// Dashboard: the paper's "short and fresh" workload class (§2.3) — a high
// rate of simple queries that must see the latest data. The scheduler
// stays in hybrid states (split access over the freshest snapshot), never
// paying an ETL, because each query touches only a sliver of fresh data.
// The dashboard tile is a prepared statement: compiled once, stamped with
// the moving date cutoff at every refresh, and executed under a deadline
// so one slow refresh can never wedge the dashboard.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"elastichtap"
	"elastichtap/query"
)

func main() {
	sys, err := elastichtap.New(
		// Dashboards prefer freshness over ETL amortization.
		elastichtap.WithAlpha(0.95),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	db := sys.LoadCH(0.01, 7)
	if err := sys.StartWorkload(20); err != nil { // NewOrder + some Payments
		log.Fatal(err)
	}

	// "Orders placed since this morning": a filter-reduce plan over the
	// order lines delivered today. Prepared once — catalog lookup,
	// predicate typing and kernel selection happen here, not per refresh;
	// only the date value moves.
	today, err := sys.Prepare(query.Scan("orderline").
		Named("today").
		Filter(query.Ge("ol_delivery_d", query.Param("since"))).
		Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("orders")))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tick  state  method    resp(s)  fresh-rows  orders-today")
	for tick := 1; tick <= 10; tick++ {
		sys.Run(500)

		// Each refresh stamps the database's current day into the
		// prepared tile and bounds the wait: a refresh that cannot answer
		// in time is cancelled at the next morsel boundary, not queued
		// behind the dashboard forever.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		rep, err := today.Query(ctx, elastichtap.Args{"since": db.Day()})
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %-5v  %-8v  %.4f   %-10d %.0f\n",
			tick, rep.State, rep.Method, rep.ResponseSeconds,
			rep.Nfq/db.OrderLine.Table().Schema().RowBytes(),
			rep.Result.Rows[0][1])
		if rep.ETLSeconds > 0 {
			fmt.Println("      (unexpected ETL for a dashboard query)")
		}
	}
}
