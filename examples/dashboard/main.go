// Dashboard: the paper's "short and fresh" workload class (§2.3) — a high
// rate of simple queries that must see the latest data. The scheduler
// stays in hybrid states (split access over the freshest snapshot), never
// paying an ETL, because each query touches only a sliver of fresh data.
package main

import (
	"fmt"
	"log"

	"elastichtap"
	"elastichtap/internal/ch"
)

func main() {
	cfg := elastichtap.DefaultConfig()
	cfg.Alpha = 0.95 // dashboards prefer freshness over ETL amortization
	sys, err := elastichtap.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db := sys.LoadCH(0.01, 7)
	sys.StartWorkload(20) // NewOrder + some Payments

	fmt.Println("tick  state  method    resp(s)  fresh-rows  orders-today")
	for tick := 1; tick <= 10; tick++ {
		sys.Run(500)

		// "Orders placed since this morning": Q6 restricted to today.
		q := &ch.Q6{DB: db, DateLo: db.Day()}
		rep, err := sys.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %-5v  %-8v  %.4f   %-10d %.0f\n",
			tick, rep.State, rep.Method, rep.ResponseSeconds,
			rep.Nfq/db.OrderLine.Table().Schema().RowBytes(),
			rep.Result.Rows[0][1])
		if rep.ETLSeconds > 0 {
			fmt.Println("      (unexpected ETL for a dashboard query)")
		}
	}
}
