// Quickstart: load the CH-benCHmark, run transactions, and let the
// adaptive scheduler pick the system state for each analytical query.
package main

import (
	"context"
	"fmt"
	"log"

	"elastichtap"
)

func main() {
	sys, err := elastichtap.New(
		// Report simulated timings as if the database were at the paper's
		// SF 300 (we load SF 0.01 below; shapes depend on ratios).
		elastichtap.WithEmulatedScale(0.01, 300),
		// With whole-row freshness accounting the ratio lives in
		// ~[0.5, 0.9]; 0.7 makes the adaptive arc visible quickly.
		elastichtap.WithAlpha(0.7),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Release the persistent OLAP worker pool when done.
	defer sys.Close()

	// Load a small CH-benCHmark database and synchronize the OLAP
	// replicas (freshness-rate 1).
	db := sys.LoadCH(0.01, 42)
	fmt.Printf("loaded: %d order lines, %d items, %d warehouses\n",
		db.OrderLine.Table().Rows(), db.Item.Table().Rows(), db.Sizing.Warehouses)

	// TPC-C NewOrder only, one warehouse per worker (the paper's setup).
	if err := sys.StartWorkload(0); err != nil {
		log.Fatal(err)
	}

	// Interleave transactions and analytics; watch the scheduler adapt:
	// hybrid states while the delta is small, one ETL (S2) once the fresh
	// share crosses α, then hybrid again on the refreshed replica.
	for round := 1; round <= 10; round++ {
		sys.Run(800)
		rate, freshBytes := sys.Freshness()
		rep, err := sys.QueryContext(context.Background(), elastichtap.Q6(db))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: freshness=%.4f freshBytes=%-10d state=%-5v method=%-8v resp=%.3fs (etl %.3fs) revenue=%.2f\n",
			round, rate, freshBytes, rep.State, rep.Method,
			rep.ResponseSeconds, rep.ETLSeconds, rep.Result.Rows[0][0])
	}

	fmt.Printf("\nOLTP throughput (modeled, no interference): %.2f MTPS\n",
		sys.OLTPThroughput()/1e6)
	fmt.Printf("final state: %v\n", sys.CurrentState())
}
