// Reporting: the paper's "query batches" workload class (§2.3) — periodic
// pre-defined reports that need a uniform snapshot. Algorithm 2 routes
// batches to S2: one instance switch and one delta-ETL serve the whole
// batch, and the copy cost is amortized across its queries (Figure 3b).
package main

import (
	"context"
	"fmt"
	"log"

	"elastichtap"
)

func main() {
	sys, err := elastichtap.New()
	if err != nil {
		log.Fatal(err)
	}
	db := sys.LoadCH(0.01, 21)
	if err := sys.StartWorkload(0); err != nil {
		log.Fatal(err)
	}

	for period := 1; period <= 3; period++ {
		// Transactions accumulate between reporting periods.
		sys.Run(5000)

		// The nightly report: every query sees the same snapshot.
		batch := []elastichtap.Query{
			elastichtap.Q1(db), elastichtap.Q6(db), elastichtap.Q19(db),
			elastichtap.Q1(db), elastichtap.Q6(db), elastichtap.Q19(db),
		}
		reps, err := sys.QueryBatchContext(context.Background(), batch)
		if err != nil {
			log.Fatal(err)
		}
		var total, etl float64
		for _, rep := range reps {
			total += rep.ResponseSeconds
			etl += rep.ETLSeconds
		}
		fmt.Printf("period %d: %d queries in %.3fs (etl %.3fs, amortized %.3fs/query), state %v\n",
			period, len(reps), total, etl, etl/float64(len(reps)), reps[0].State)
		for i, rep := range reps[:3] {
			fmt.Printf("  %-3s -> %d result rows (first: %.2f)\n",
				rep.Query, len(rep.Result.Rows), rep.Result.Rows[0][0])
			_ = i
		}
	}
}
