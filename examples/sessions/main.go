// Sessions: many concurrent clients against one System — the serving
// shape the paper's elastic scheduler was built for. Analyst goroutines
// submit asynchronously and collect handles; admission serializes while
// executions interleave on the shared worker pool. One report runs under
// a deadline, one is cancelled mid-flight, and the rest complete —
// demonstrating that cancellation drains at morsel boundaries and leaves
// the system answering everyone else.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"time"

	"elastichtap"
)

func main() {
	sys, err := elastichtap.New(elastichtap.WithAlpha(0.7))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	db := sys.LoadCH(0.01, 21)
	if err := sys.StartWorkload(10); err != nil {
		log.Fatal(err)
	}
	sys.Run(2000)

	// Five analysts enqueue their reports at once. Submit returns
	// immediately with a handle; the scheduler admits one at a time
	// (switch, freshness, migration, ETL) and the scans share the pool.
	ctx := context.Background()
	queries := []elastichtap.Query{
		elastichtap.Q1(db), elastichtap.Q3(db), elastichtap.Q6(db),
		elastichtap.Q18(db), elastichtap.Q19(db),
	}
	handles := make([]*elastichtap.Handle, 0, len(queries))
	for _, q := range queries {
		h, err := sys.Submit(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
	}

	// The Q18 analyst changes their mind; their handle cancels just that
	// submission, nobody else's.
	handles[3].Cancel()

	// A sixth client runs synchronously under a tight deadline while the
	// five asynchronous reports are in flight.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if _, err := sys.QueryContext(dctx, elastichtap.Q12(db)); err != nil {
		log.Fatalf("deadlined Q12: %v", err)
	}
	cancel()

	fmt.Println("query  outcome")
	for _, h := range handles {
		rep, err := h.Wait()
		switch {
		case errors.Is(err, elastichtap.ErrCancelled):
			fmt.Printf("%-5s  cancelled\n", h.Query())
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("%-5s  %s in %.3fs, %d rows\n",
				rep.Query, rep.State, rep.ResponseSeconds, len(rep.Result.Rows))
		}
	}

	// The pool is untouched by the cancellation: a follow-up ranking of
	// the analytical mix still answers exactly.
	type timing struct {
		name string
		secs float64
	}
	var times []timing
	for _, q := range db.QuerySet() {
		rep, err := sys.QueryContext(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		times = append(times, timing{rep.Query, rep.ResponseSeconds})
	}
	sort.Slice(times, func(i, j int) bool { return times[i].secs < times[j].secs })
	fmt.Println("\nfollow-up mix, fastest first:")
	for _, tm := range times {
		fmt.Printf("  %-5s %.3fs\n", tm.name, tm.secs)
	}
}
