// Multi-tenant serving: one HTAP system shared by workloads with very
// different contracts. The workload manager gives each tenant its own
// admission gate (concurrency bound, queue depth, scanned-bytes budget)
// and a fair-share weight: under contention the elastic OLAP pool divides
// morsel throughput between backlogged tenants in proportion to their
// weights, and a tenant past its quota is told to back off with a typed
// overload error instead of being queued unboundedly.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"elastichtap"
)

func main() {
	sys, err := elastichtap.New(elastichtap.WithAlpha(0.7))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	db := sys.LoadCH(0.01, 7)
	if err := sys.StartWorkload(10); err != nil {
		log.Fatal(err)
	}
	sys.Run(2000)

	// Three contracts on one system: interactive dashboards get the
	// largest share, ad-hoc analysts half of that, and the nightly ETL
	// scavenges what is left. The batch tenant also carries a
	// scanned-bytes budget per second — the unit the cost model charges —
	// so a runaway backfill throttles itself instead of the dashboards.
	register := func(name string, cfg elastichtap.TenantConfig) {
		if err := sys.RegisterTenant(name, cfg); err != nil {
			log.Fatal(err)
		}
	}
	register("dashboards", elastichtap.TenantConfig{
		Weight: 4, MaxConcurrent: 8, MaxQueueDepth: 32,
	})
	register("analysts", elastichtap.TenantConfig{
		Weight: 2, MaxConcurrent: 4, MaxQueueDepth: 16,
	})
	register("batch", elastichtap.TenantConfig{
		Weight: 1, MaxConcurrent: 2, MaxQueueDepth: 4,
		BytesPerWindow: 256 << 30, Window: time.Second,
	})

	// Every tenant hammers the system at once; the context carries the
	// identity, so nothing else about the calls changes.
	queries := map[string]func() elastichtap.Query{
		"dashboards": func() elastichtap.Query { return elastichtap.Q1(db) },
		"analysts":   func() elastichtap.Query { return elastichtap.Q6(db) },
		"batch":      func() elastichtap.Query { return elastichtap.Q18(db) },
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	overloaded := map[string]int{}
	for tenant, q := range queries {
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func(tenant string, q func() elastichtap.Query) {
				defer wg.Done()
				ctx := elastichtap.WithTenant(context.Background(), tenant)
				_, err := sys.QueryContext(ctx, q())
				var oe *elastichtap.OverloadError
				if errors.As(err, &oe) {
					// Backpressure, not failure: the error says who, why,
					// and when to come back.
					mu.Lock()
					overloaded[tenant]++
					mu.Unlock()
					return
				}
				if err != nil {
					log.Fatal(err)
				}
			}(tenant, q)
		}
	}
	wg.Wait()

	fmt.Println("per-tenant accounting after the burst:")
	for _, ts := range sys.TenantStats() {
		fmt.Printf("  %-10s weight %d: admitted %d, rejected %d, queue wait %v\n",
			ts.Name, ts.Weight, ts.Admitted, ts.Rejected, ts.AdmissionWait.Round(time.Millisecond))
	}
	for tenant, n := range overloaded {
		fmt.Printf("  %s saw %d overload rejections (retry-after metadata attached)\n", tenant, n)
	}

	// An unregistered tenant cannot sneak in...
	_, err = sys.QueryContext(elastichtap.WithTenant(context.Background(), "stranger"), elastichtap.Q6(db))
	fmt.Printf("unknown tenant: %v\n", err != nil)
	// ...and untenanted callers still run as the implicit default tenant,
	// exactly as they did before the workload manager existed.
	if _, err := sys.QueryContext(context.Background(), elastichtap.Q6(db)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("untenanted query ran via the default tenant")
}
