// Top-k analytics: rank warehouses by revenue with the builder's ordered
// query surface — group-by, aggregate, HAVING, ORDER BY ... DESC, LIMIT —
// compiled onto the same morsel-parallel kernels as every other query.
// The ordered merge happens after the per-morsel partials combine, under
// a total order (order column, then group keys), so the ranking is
// bitwise deterministic no matter how the elastic pool schedules, steals
// or resizes mid-query.
package main

import (
	"context"
	"fmt"
	"log"

	"elastichtap"
	"elastichtap/query"
)

func main() {
	sys, err := elastichtap.New()
	if err != nil {
		log.Fatal(err)
	}
	db := sys.LoadCH(0.01, 7)
	if err := sys.StartWorkload(0); err != nil {
		log.Fatal(err)
	}
	sys.Run(3000)

	// Top five warehouses by recent revenue, busiest first; warehouses
	// below the activity floor never rank.
	plan := query.Scan("orderline").
		Named("top-warehouses").
		Filter(query.Ge("ol_delivery_d", db.Day()-90)).
		GroupBy("ol_w_id").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("lines")).
		Having(query.Gt("lines", 100)).
		OrderBy("revenue", true).
		Limit(5)

	q, err := sys.Build(plan)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.QueryContext(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("state %v, class %v, resp %.4fs\n\n", rep.State, q.Class(), rep.ResponseSeconds)
	fmt.Println("rank  warehouse  revenue      lines")
	for i, row := range rep.Result.Rows {
		fmt.Printf("%4d  %9.0f  %11.2f  %5.0f\n", i+1, row[0], row[1], row[2])
	}

	// The full CH top-k shapes ship compiled: Q3 (join + ordered revenue)
	// and Q18 (group-by + having + top-k).
	for _, built := range []elastichtap.Query{elastichtap.Q3(db), elastichtap.Q18(db)} {
		rep, err := sys.QueryContext(context.Background(), built)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d rows, top revenue %.2f (state %v)\n",
			rep.Query, len(rep.Result.Rows), topRevenue(rep.Result.Cols, rep.Result.Rows), rep.State)
	}
}

// topRevenue reads the revenue of the first (highest-ranked) row — both
// Q3 and Q18 order by revenue descending.
func topRevenue(cols []string, rows [][]float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	for i, c := range cols {
		if c == "revenue" {
			return rows[0][i]
		}
	}
	return 0
}
