module elastichtap

go 1.24
