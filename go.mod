module elastichtap

go 1.23
