// Package elastichtap is an in-memory HTAP (Hybrid Transactional/Analytical
// Processing) system with elastic resource scheduling, reproducing Raza et
// al., "Adaptive HTAP through Elastic Resource Scheduling" (SIGMOD 2020).
//
// The system couples three engines over a modeled NUMA machine:
//
//   - an OLTP engine: twin-instance columnar storage, MV2PL snapshot
//     isolation, cuckoo-hash indexes, an elastic worker pool;
//   - an OLAP engine: a persistent, elastic worker pool — one goroutine
//     per allocated core, per-socket morsel queues with socket-affine
//     dispatch and cross-socket work stealing — running morsel-parallel
//     columnar scans with pluggable access paths (contiguous, split
//     fresh/cold);
//   - an RDE (Resource and Data Exchange) engine that owns cores and
//     memory, switches the OLTP active instance, synchronizes the twins,
//     and ETLs fresh deltas into the OLAP replicas.
//
// A freshness-driven scheduler (the paper's Algorithms 1 and 2) migrates
// the system between states S1 (co-located), S2 (isolated + ETL), S3-IS
// (hybrid isolated) and S3-NI (hybrid non-isolated) per query.
//
// The public surface is a session API in the shape Go database clients
// expect — contexts everywhere, asynchronous submission, and prepared
// statements:
//
//   - QueryContext / QueryBatchContext / QueryInStateContext thread a
//     context through the whole per-query protocol. Cancellation and
//     deadlines are observed between admission phases (switch,
//     migration, ETL) and, once executing, at morsel boundaries — the
//     same granularity at which the paper's elasticity intervenes — so a
//     cancelled query returns an error wrapping ErrCancelled and the
//     context's cause within one morsel's work, with partial state
//     discarded and the pool and placement left fully consistent.
//   - Submit(ctx, q) enqueues a query asynchronously and returns a
//     Handle with Wait, Done, Report and Cancel. Many client goroutines
//     submit concurrently: admission — snapshot switch, freshness
//     measurement, migration, ETL — stays serialized, while executions
//     interleave their morsels on the shared elastic worker pool.
//   - Prepare(plan) binds a logical plan carrying query.Param
//     placeholders once — catalog lookup, predicate typing, kernel
//     selection — and returns a Stmt whose Query(ctx, Args{...}) stamps
//     values into the compiled predicate tests per execution, bitwise
//     identical to rebinding with the values inlined.
//
// The synchronous wrappers (Query, QueryBatch, QueryInState) are
// deprecated: pass a context to the Context variants instead so
// cancellation and tenant attribution flow through.
//
// A multi-tenant workload manager (internal/workload) arbitrates between
// sessions before any query reaches the scheduler. Tenants register with
// a priority weight and resource quotas, and every query runs as some
// tenant — the implicit "default" tenant (weight 1, no quotas) unless the
// context says otherwise:
//
//	sys.RegisterTenant("dashboards", elastichtap.TenantConfig{
//		Weight:         4,                 // 4x the morsel share of a weight-1 tenant
//		MaxConcurrent:  8,                 // admission gate
//		MaxQueueDepth:  32,                // waiting room; beyond it: ErrOverloaded
//		BytesPerWindow: 64 << 20,          // scanned-bytes budget
//		Window:         time.Second,
//	})
//	ctx := elastichtap.WithTenant(ctx, "dashboards")
//	rep, err := sys.QueryContext(ctx, q)
//
// Under contention the elastic pool's deficit-round-robin dispatcher
// divides morsel throughput between backlogged tenants in proportion to
// their weights; an overloaded tenant's admissions fail fast with a typed
// *OverloadError (errors.Is ErrOverloaded) carrying retry-after metadata
// instead of queueing unboundedly. Per-tenant occupancy, admission waits,
// morsel dispatch and scanned bytes appear in Metrics and TenantStats.
//
// Each migration resizes the pool mid-query: workers park or wake as the
// scheduler moves cores between the engines, and Stats.Workers reports
// how many actually participated. Results are nonetheless bitwise
// deterministic — per-morsel partials merge in morsel order, so float
// aggregates never depend on worker interleaving or work stealing.
//
// Systems are configured with functional options, which distinguish unset
// knobs from explicit zeros (WithAlpha(0) really means α=0):
//
//	sys, _ := elastichtap.New(
//		elastichtap.WithAlpha(0.7),
//		elastichtap.WithByteScale(300/0.01),
//	)
//	defer sys.Close()
//	db := sys.LoadCH(0.01, 42)          // CH-benCHmark at SF 0.01
//	sys.StartWorkload(0)                // NewOrder-only mix
//	sys.Run(1000)                       // execute 1000 transactions
//	rep, _ := sys.QueryContext(ctx, elastichtap.Q6(db))
//	fmt.Println(rep.State, rep.ResponseSeconds, rep.Result.Rows)
//
// Analytical queries beyond the built-in CH-benCHmark set are expressed
// declaratively with the query builder (package elastichtap/query): a
// logical plan — scan, filter, inner/semi hash join with payload
// projection, group-by, aggregate (including conditional counts), having,
// order-by and top-k — compiles onto the OLAP engine's generic kernels
// and flows through the adaptive scheduler with a work class inferred
// from the plan shape. Any literal position takes a query.Param
// placeholder, turning the plan into a reusable prepared statement:
//
//	plan := query.Scan("orderline").
//		Filter(query.Ge("ol_delivery_d", query.Param("since"))).
//		GroupBy("ol_w_id").
//		Agg(query.Sum("ol_amount").As("revenue"), query.Count()).
//		OrderBy("revenue", true).
//		Limit(5)
//	stmt, _ := sys.Prepare(plan)                              // bind once
//	rep, _ = stmt.Query(ctx, elastichtap.Args{"since": day})  // stamp per run
//
// The built-in Q1, Q3, Q6, Q12, Q18 and Q19 are themselves prepared
// statements, bound once per database and stamped with their default
// arguments; hand-coded executors remain in internal/ch as golden
// references for the compiler's correctness tests.
package elastichtap

import (
	"context"
	"errors"
	"fmt"
	"io"

	"elastichtap/internal/ch"
	"elastichtap/internal/checkpoint"
	"elastichtap/internal/columnar"
	"elastichtap/internal/core"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/metrics"
	"elastichtap/internal/olap"
	"elastichtap/internal/topology"
	"elastichtap/query"
)

// ErrNoDatabase is returned by workload and query entry points invoked
// before LoadCH.
var ErrNoDatabase = errors.New("elastichtap: no database loaded; call LoadCH first")

// options collects the functional-option settings. Pointer fields
// distinguish "unset" (keep the default) from an explicit zero.
type options struct {
	sockets, coresPerSocket *int
	localBW, interconnectBW *float64
	alpha                   *float64
	elasticity              *bool
	preferColocation        *bool
	elasticCores            *int
	byteScale               *float64
	splitAccess             *bool
}

// Option configures a System under construction. Options validate in New;
// an invalid value (α outside [0,1], non-positive core counts) fails New
// with a descriptive error instead of being silently ignored.
type Option func(*options)

// WithTopology sets the modeled machine: socket count and cores per
// socket. The default is the paper's 2x14-core server.
func WithTopology(sockets, coresPerSocket int) Option {
	return func(o *options) { o.sockets, o.coresPerSocket = &sockets, &coresPerSocket }
}

// WithBandwidth sets the modeled local DRAM and cross-socket interconnect
// bandwidths in bytes per second.
func WithBandwidth(localBW, interconnectBW float64) Option {
	return func(o *options) { o.localBW, o.interconnectBW = &localBW, &interconnectBW }
}

// WithAlpha sets the scheduler's ETL sensitivity α ∈ [0,1] (§4.2). Smaller
// values ETL more eagerly; 0 means every fresh byte triggers S2.
func WithAlpha(a float64) Option {
	return func(o *options) { o.alpha = &a }
}

// WithElasticity enables or disables compute exchange between the engines
// (Algorithm 2's Fel flag). Enabled by default.
func WithElasticity(on bool) Option {
	return func(o *options) { o.elasticity = &on }
}

// WithColocationPreference selects S1 over S3-NI when elasticity is
// available (Algorithm 2's Mel knob). Off by default (prefer S3-NI).
func WithColocationPreference(on bool) Option {
	return func(o *options) { o.preferColocation = &on }
}

// WithElasticCores bounds how many cores migrations move between engines.
func WithElasticCores(n int) Option {
	return func(o *options) { o.elasticCores = &n }
}

// WithByteScale multiplies measured bytes before the cost model, letting a
// small loaded database emulate a larger scale factor's timings (shapes
// depend on ratios, which the scale preserves).
func WithByteScale(x float64) Option {
	return func(o *options) { o.byteScale = &x }
}

// WithEmulatedScale is WithByteScale expressed as intent: report timings
// as if the loaded scale factor were target (e.g. the paper's SF 300).
func WithEmulatedScale(loadedSF, targetSF float64) Option {
	return func(o *options) {
		x := 0.0
		if loadedSF > 0 {
			x = targetSF / loadedSF
		}
		o.byteScale = &x
	}
}

// WithSplitAccess toggles the split access-path optimization in hybrid
// states for insert-only fact tables (§5.2). Enabled by default.
func WithSplitAccess(on bool) Option {
	return func(o *options) { o.splitAccess = &on }
}

// State re-exports the scheduler states for report inspection.
type State = core.State

// The four system states (§3.4).
const (
	S1   = core.S1
	S2   = core.S2
	S3IS = core.S3IS
	S3NI = core.S3NI
)

// QueryReport re-exports the per-query scheduling outcome.
type QueryReport = core.QueryReport

// Query is any analytical query the OLAP engine can execute.
type Query = olap.Query

// Plan re-exports the declarative builder's logical plan; construct with
// package elastichtap/query and compile with System.Build.
type Plan = query.Plan

// DB is a loaded CH-benCHmark database.
type DB = ch.DB

// System is the assembled HTAP system.
type System struct {
	inner *core.System
	db    *ch.DB
}

// New builds a system, starting from the paper's evaluation setup (a
// 2x14-core server, α=0.5, hybrid elasticity with 4 elastic cores) and
// applying the options. Invalid option values fail with an error.
func New(opts ...Option) (*System, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}

	sysCfg := core.DefaultSystemConfig()
	if o.sockets != nil {
		if *o.sockets < 1 {
			return nil, fmt.Errorf("elastichtap: WithTopology sockets %d, need >= 1", *o.sockets)
		}
		sysCfg.Topology.Sockets = *o.sockets
	}
	if o.coresPerSocket != nil {
		if *o.coresPerSocket < 1 {
			return nil, fmt.Errorf("elastichtap: WithTopology cores per socket %d, need >= 1", *o.coresPerSocket)
		}
		sysCfg.Topology.CoresPerSocket = *o.coresPerSocket
	}
	if o.localBW != nil {
		if *o.localBW <= 0 || *o.interconnectBW <= 0 {
			return nil, fmt.Errorf("elastichtap: WithBandwidth needs positive bandwidths, got %v and %v",
				*o.localBW, *o.interconnectBW)
		}
		sysCfg.Topology.LocalBW = *o.localBW
		sysCfg.Topology.InterconnectBW = *o.interconnectBW
	}
	// Scheduler defaults derive from the (possibly overridden) topology.
	sysCfg.Scheduler = core.DefaultConfig(sysCfg.Topology.Sockets, sysCfg.Topology.CoresPerSocket)
	if o.alpha != nil {
		if *o.alpha < 0 || *o.alpha > 1 {
			return nil, fmt.Errorf("elastichtap: WithAlpha %v outside [0,1]", *o.alpha)
		}
		sysCfg.Scheduler.Alpha = *o.alpha
	}
	if o.elasticity != nil {
		sysCfg.Scheduler.Elasticity = *o.elasticity
	}
	if o.preferColocation != nil && *o.preferColocation {
		sysCfg.Scheduler.Mode = core.ModeColocation
	}
	if o.elasticCores != nil {
		if *o.elasticCores < 0 {
			return nil, fmt.Errorf("elastichtap: WithElasticCores %d, need >= 0", *o.elasticCores)
		}
		sysCfg.Scheduler.ElasticCores = *o.elasticCores
	}
	if o.splitAccess != nil {
		sysCfg.Scheduler.SplitAccess = *o.splitAccess
	}
	if o.byteScale != nil {
		if *o.byteScale <= 0 {
			return nil, fmt.Errorf("elastichtap: byte scale %v, need > 0", *o.byteScale)
		}
		sysCfg.ByteScale = *o.byteScale
	}

	inner, err := core.NewSystem(sysCfg)
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

// Config configures a System for NewFromConfig.
//
// Deprecated: Config cannot distinguish unset fields from explicit zeros
// (Alpha=0 and ByteScale=0 are silently ignored). Use New with functional
// options instead.
type Config struct {
	// Sockets and CoresPerSocket describe the modeled machine.
	Sockets, CoresPerSocket int
	// LocalBW and InterconnectBW are bytes/second.
	LocalBW, InterconnectBW float64
	// Alpha is the scheduler's ETL sensitivity α ∈ [0,1].
	Alpha float64
	// Elasticity enables compute exchange between the engines (Fel).
	Elasticity bool
	// PreferColocation selects S1 over S3-NI when elastic (Mel).
	PreferColocation bool
	// ElasticCores bounds how many cores migrations move.
	ElasticCores int
	// ByteScale multiplies measured bytes before the cost model, letting a
	// small database emulate a larger scale factor's timings.
	ByteScale float64
}

// DefaultConfig mirrors the paper's evaluation setup: a 2x14-core server,
// α=0.5, hybrid elasticity with 4 elastic cores.
//
// Deprecated: use New with functional options; New() with no options is
// this setup.
func DefaultConfig() Config {
	topo := topology.DefaultConfig()
	sched := core.DefaultConfig(topo.Sockets, topo.CoresPerSocket)
	return Config{
		Sockets:        topo.Sockets,
		CoresPerSocket: topo.CoresPerSocket,
		LocalBW:        topo.LocalBW,
		InterconnectBW: topo.InterconnectBW,
		Alpha:          sched.Alpha,
		Elasticity:     sched.Elasticity,
		ElasticCores:   sched.ElasticCores,
		ByteScale:      1,
	}
}

// NewFromConfig builds a system from a legacy Config, preserving the old
// semantics exactly: zero-valued fields fall back to defaults, each field
// independently (half-set pairs keep the default for the other half).
//
// Deprecated: use New with functional options.
func NewFromConfig(cfg Config) (*System, error) {
	def := topology.DefaultConfig()
	var opts []Option
	if cfg.Sockets > 0 || cfg.CoresPerSocket > 0 {
		sockets, cores := cfg.Sockets, cfg.CoresPerSocket
		if sockets <= 0 {
			sockets = def.Sockets
		}
		if cores <= 0 {
			cores = def.CoresPerSocket
		}
		opts = append(opts, WithTopology(sockets, cores))
	}
	if cfg.LocalBW > 0 || cfg.InterconnectBW > 0 {
		local, inter := cfg.LocalBW, cfg.InterconnectBW
		if local <= 0 {
			local = def.LocalBW
		}
		if inter <= 0 {
			inter = def.InterconnectBW
		}
		opts = append(opts, WithBandwidth(local, inter))
	}
	if cfg.Alpha > 0 {
		opts = append(opts, WithAlpha(cfg.Alpha))
	}
	opts = append(opts, WithElasticity(cfg.Elasticity))
	if cfg.PreferColocation {
		opts = append(opts, WithColocationPreference(true))
	}
	if cfg.ElasticCores > 0 {
		opts = append(opts, WithElasticCores(cfg.ElasticCores))
	}
	if cfg.ByteScale > 0 {
		opts = append(opts, WithByteScale(cfg.ByteScale))
	}
	return New(opts...)
}

// Core exposes the underlying system for advanced use (experiments,
// custom workloads, direct engine access).
func (s *System) Core() *core.System { return s.inner }

// LoadCH generates and loads a CH-benCHmark database at the given scale
// factor with a deterministic seed, then synchronizes the OLAP replicas
// (freshness-rate 1).
func (s *System) LoadCH(scaleFactor float64, seed int64) *DB {
	s.db = ch.Load(s.inner.OLTPE, ch.SizingForScale(scaleFactor), seed)
	s.inner.PrimeReplicas()
	return s.db
}

// DB returns the loaded database, or nil.
func (s *System) DB() *DB { return s.db }

// StartWorkload installs the TPC-C transaction mix: paymentPct percent
// Payment, the rest NewOrder, one warehouse per worker (§5.1). It fails
// with ErrNoDatabase before LoadCH.
func (s *System) StartWorkload(paymentPct int) error {
	if s.db == nil {
		return fmt.Errorf("elastichtap: StartWorkload: %w", ErrNoDatabase)
	}
	s.inner.OLTPE.Workers().SetWorkload(ch.NewMix(s.db, paymentPct, 1))
	return nil
}

// Run synchronously executes n transactions across the OLTP worker pool.
func (s *System) Run(n int) { s.inner.InjectTransactions(n) }

// Build compiles a logical plan (package elastichtap/query) against the
// loaded database into an executable Query.
func (s *System) Build(p *Plan) (Query, error) {
	if s.db == nil {
		return nil, fmt.Errorf("elastichtap: Build: %w", ErrNoDatabase)
	}
	return p.Bind(s.db)
}

// Query schedules and executes an analytical query adaptively: the
// scheduler measures freshness, picks a state (Algorithm 2), migrates
// resources (Algorithm 1), optionally ETLs, and executes. It fails with
// ErrNoDatabase before LoadCH. Query is QueryContext with a background
// context; see also Submit for asynchronous sessions and Prepare for
// parameterized statements.
//
// Deprecated: use QueryContext so cancellation and tenant attribution
// flow in from the caller.
func (s *System) Query(q Query) (QueryReport, error) {
	return s.QueryContext(context.Background(), q)
}

// QueryInState executes the query with the system pinned to a state
// (static schedules, A/B comparisons).
//
// Deprecated: use QueryInStateContext.
func (s *System) QueryInState(q Query, st State) (QueryReport, error) {
	return s.QueryInStateContext(context.Background(), q, st)
}

// QueryBatch executes a batch of queries over one shared snapshot with a
// single ETL (the paper's query-batch class, §2.3/§4.2).
//
// Deprecated: use QueryBatchContext.
func (s *System) QueryBatch(qs []Query) ([]QueryReport, error) {
	return s.QueryBatchContext(context.Background(), qs)
}

// OLTPThroughput reports the modeled transactional throughput with the
// current placement and no analytical interference.
func (s *System) OLTPThroughput() float64 { return s.inner.OLTPThroughputNow() }

// CurrentState returns the scheduler's current state.
func (s *System) CurrentState() State { return s.inner.Sched.State() }

// Freshness reports the system-wide freshness-rate metric (1 = replicas
// fully synchronized, measured across every table) and the total
// outstanding fresh bytes an ETL of the whole database would copy. For
// the staleness of one table — the number a non-orderline workload
// actually cares about — use TableFreshness.
func (s *System) Freshness() (rate float64, freshBytes int64) {
	f := s.inner.X.MeasureFreshness(s.inner.OLTPE.Tables(), "", 0)
	return f.Rate, f.Nft
}

// Q1 through Q19 build the CH-benCHmark evaluation queries over a
// database — the paper's trio, the join/ordered/top-k mix, and the
// graph-join trio Q2/Q5/Q7 planned by greedy join ordering — with their
// default parameter values. Each is a prepared statement bound once per
// database (internal/ch parameterized plans) and stamped here with the
// defaults, so repeated construction never re-runs compilation; a nil db
// yields a query that fails with a descriptive error when run.
func Q1(db *DB) Query  { return prepared(db, "Q1", ch.Q1Args(0)) }
func Q2(db *DB) Query  { return prepared(db, "Q2", ch.Q2Args(0, 0)) }
func Q3(db *DB) Query  { return prepared(db, "Q3", ch.Q3Args(0)) }
func Q5(db *DB) Query  { return prepared(db, "Q5", ch.Q5Args(0)) }
func Q6(db *DB) Query  { return prepared(db, "Q6", ch.Q6Args(0, 0, 0, 0)) }
func Q7(db *DB) Query  { return prepared(db, "Q7", ch.Q7Args(0)) }
func Q12(db *DB) Query { return prepared(db, "Q12", ch.Q12Args(0)) }
func Q18(db *DB) Query { return prepared(db, "Q18", ch.Q18Args(0)) }
func Q19(db *DB) Query { return prepared(db, "Q19", ch.Q19Args(0, 0, 0, 0)) }

// prepared stamps a cached per-DB prepared statement with args, deferring
// errors into the returned query so constructor-style call sites stay
// one-liners.
func prepared(db *DB, name string, args Args) Query {
	if db == nil {
		return olap.Invalid{QueryName: name, Reason: fmt.Errorf("elastichtap: %s: %w", name, ErrNoDatabase)}
	}
	return db.Stamped(name, args)
}

// WorkClasses re-exported for custom queries.
type WorkClass = costmodel.WorkClass

// Work classes for custom olap.Query implementations.
const (
	ScanReduce  = costmodel.ScanReduce
	ScanGroupBy = costmodel.ScanGroupBy
	JoinProbe   = costmodel.JoinProbe
	JoinProject = costmodel.JoinProject
)

// Checkpoint writes a consistent snapshot of the named table to w: the
// active instance is switched and the quiescent twin serialized while
// transactions continue (internal/checkpoint). Returns the rows written.
func (s *System) Checkpoint(w io.Writer, table string) (int64, error) {
	h := s.inner.OLTPE.Table(table)
	if h == nil {
		return 0, fmt.Errorf("elastichtap: unknown table %q", table)
	}
	// The serialization scan reads the snapshot instance without atomics;
	// the pin keeps a concurrent query's switch from re-activating it
	// mid-write for tables that take in-place updates.
	snap, release := s.inner.PinnedSnapshot(h)
	defer release()
	if snap.Rows == 0 {
		// A zero-row image of a populated table means the caller raced
		// the load (or named a never-loaded table); it used to serialize
		// silently and restore to nothing. Whole-database images, where
		// empty tables are legitimate, go through CheckpointDB.
		return 0, fmt.Errorf("elastichtap: Checkpoint %q: table snapshot has no rows (use CheckpointDB for whole-database images)", table)
	}
	if err := checkpoint.Write(w, h.Table(), snap.Inst, snap.Rows); err != nil {
		return 0, err
	}
	return snap.Rows, nil
}

// RestoreTable reads a checkpoint produced by Checkpoint into a fresh
// standalone table (not registered with the running system).
func RestoreTable(r io.Reader) (*columnar.Table, error) {
	return checkpoint.Read(r)
}

// Metrics returns a system-wide observability snapshot.
func (s *System) Metrics() metrics.Snapshot { return s.inner.Metrics() }

// Close releases the system's worker pools: the persistent OLAP pool
// drains queued work and its goroutines exit. Close is idempotent and
// safe to call concurrently with in-flight queries — already-admitted
// work drains to completion, while queries and submissions arriving
// after Close fail with an error wrapping ErrClosed. Call it when the
// system is no longer needed (long-running processes that build many
// systems would otherwise accumulate parked pool goroutines).
func (s *System) Close() { s.inner.Close() }
