// Package elastichtap is an in-memory HTAP (Hybrid Transactional/Analytical
// Processing) system with elastic resource scheduling, reproducing Raza et
// al., "Adaptive HTAP through Elastic Resource Scheduling" (SIGMOD 2020).
//
// The system couples three engines over a modeled NUMA machine:
//
//   - an OLTP engine: twin-instance columnar storage, MV2PL snapshot
//     isolation, cuckoo-hash indexes, an elastic worker pool;
//   - an OLAP engine: morsel-parallel columnar scans with pluggable access
//     paths (contiguous, split fresh/cold);
//   - an RDE (Resource and Data Exchange) engine that owns cores and
//     memory, switches the OLTP active instance, synchronizes the twins,
//     and ETLs fresh deltas into the OLAP replicas.
//
// A freshness-driven scheduler (the paper's Algorithms 1 and 2) migrates
// the system between states S1 (co-located), S2 (isolated + ETL), S3-IS
// (hybrid isolated) and S3-NI (hybrid non-isolated) per query.
//
// Quickstart:
//
//	sys, _ := elastichtap.New(elastichtap.DefaultConfig())
//	db := sys.LoadCH(0.01, 42)          // CH-benCHmark at SF 0.01
//	sys.StartWorkload(0)                // NewOrder-only mix
//	sys.Run(1000)                       // execute 1000 transactions
//	rep, _ := sys.Query(elastichtap.Q6(db))
//	fmt.Println(rep.State, rep.ResponseSeconds, rep.Result.Rows)
package elastichtap

import (
	"fmt"
	"io"

	"elastichtap/internal/ch"
	"elastichtap/internal/checkpoint"
	"elastichtap/internal/columnar"
	"elastichtap/internal/core"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/metrics"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/rde"
	"elastichtap/internal/topology"
)

// Config configures a System. Zero value is unusable; start from
// DefaultConfig and override.
type Config struct {
	// Sockets and CoresPerSocket describe the modeled machine.
	Sockets, CoresPerSocket int
	// LocalBW and InterconnectBW are bytes/second.
	LocalBW, InterconnectBW float64
	// Alpha is the scheduler's ETL sensitivity α ∈ [0,1].
	Alpha float64
	// Elasticity enables compute exchange between the engines (Fel).
	Elasticity bool
	// PreferColocation selects S1 over S3-NI when elastic (Mel).
	PreferColocation bool
	// ElasticCores bounds how many cores migrations move.
	ElasticCores int
	// ByteScale multiplies measured bytes before the cost model, letting a
	// small database emulate a larger scale factor's timings.
	ByteScale float64
}

// DefaultConfig mirrors the paper's evaluation setup: a 2x14-core server,
// α=0.5, hybrid elasticity with 4 elastic cores.
func DefaultConfig() Config {
	topo := topology.DefaultConfig()
	sched := core.DefaultConfig(topo.Sockets, topo.CoresPerSocket)
	return Config{
		Sockets:        topo.Sockets,
		CoresPerSocket: topo.CoresPerSocket,
		LocalBW:        topo.LocalBW,
		InterconnectBW: topo.InterconnectBW,
		Alpha:          sched.Alpha,
		Elasticity:     sched.Elasticity,
		ElasticCores:   sched.ElasticCores,
		ByteScale:      1,
	}
}

// State re-exports the scheduler states for report inspection.
type State = core.State

// The four system states (§3.4).
const (
	S1   = core.S1
	S2   = core.S2
	S3IS = core.S3IS
	S3NI = core.S3NI
)

// QueryReport re-exports the per-query scheduling outcome.
type QueryReport = core.QueryReport

// Query is any analytical query the OLAP engine can execute.
type Query = olap.Query

// DB is a loaded CH-benCHmark database.
type DB = ch.DB

// System is the assembled HTAP system.
type System struct {
	inner *core.System
	db    *ch.DB
}

// New builds a system from the configuration.
func New(cfg Config) (*System, error) {
	sysCfg := core.DefaultSystemConfig()
	if cfg.Sockets > 0 {
		sysCfg.Topology.Sockets = cfg.Sockets
	}
	if cfg.CoresPerSocket > 0 {
		sysCfg.Topology.CoresPerSocket = cfg.CoresPerSocket
	}
	if cfg.LocalBW > 0 {
		sysCfg.Topology.LocalBW = cfg.LocalBW
	}
	if cfg.InterconnectBW > 0 {
		sysCfg.Topology.InterconnectBW = cfg.InterconnectBW
	}
	sysCfg.Scheduler = core.DefaultConfig(sysCfg.Topology.Sockets, sysCfg.Topology.CoresPerSocket)
	if cfg.Alpha > 0 {
		sysCfg.Scheduler.Alpha = cfg.Alpha
	}
	sysCfg.Scheduler.Elasticity = cfg.Elasticity
	if cfg.PreferColocation {
		sysCfg.Scheduler.Mode = core.ModeColocation
	}
	if cfg.ElasticCores > 0 {
		sysCfg.Scheduler.ElasticCores = cfg.ElasticCores
	}
	if cfg.ByteScale > 0 {
		sysCfg.ByteScale = cfg.ByteScale
	}
	inner, err := core.NewSystem(sysCfg)
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

// Core exposes the underlying system for advanced use (experiments,
// custom workloads, direct engine access).
func (s *System) Core() *core.System { return s.inner }

// LoadCH generates and loads a CH-benCHmark database at the given scale
// factor with a deterministic seed, then synchronizes the OLAP replicas
// (freshness-rate 1).
func (s *System) LoadCH(scaleFactor float64, seed int64) *DB {
	s.db = ch.Load(s.inner.OLTPE, ch.SizingForScale(scaleFactor), seed)
	s.inner.PrimeReplicas()
	return s.db
}

// DB returns the loaded database, or nil.
func (s *System) DB() *DB { return s.db }

// StartWorkload installs the TPC-C transaction mix: paymentPct percent
// Payment, the rest NewOrder, one warehouse per worker (§5.1).
func (s *System) StartWorkload(paymentPct int) {
	s.inner.OLTPE.Workers().SetWorkload(ch.NewMix(s.db, paymentPct, 1))
}

// Run synchronously executes n transactions across the OLTP worker pool.
func (s *System) Run(n int) { s.inner.InjectTransactions(n) }

// Query schedules and executes an analytical query adaptively: the
// scheduler measures freshness, picks a state (Algorithm 2), migrates
// resources (Algorithm 1), optionally ETLs, and executes.
func (s *System) Query(q Query) (QueryReport, error) {
	rep, _, err := s.inner.RunQuery(q, core.QueryOptions{}, nil)
	return rep, err
}

// QueryInState executes the query with the system pinned to a state
// (static schedules, A/B comparisons).
func (s *System) QueryInState(q Query, st State) (QueryReport, error) {
	rep, _, err := s.inner.RunQuery(q, core.QueryOptions{ForceState: core.ForcedState(st)}, nil)
	return rep, err
}

// QueryBatch executes a batch of queries over one shared snapshot with a
// single ETL (the paper's query-batch class, §2.3/§4.2).
func (s *System) QueryBatch(qs []Query) ([]QueryReport, error) {
	var out []QueryReport
	var set *rde.SnapshotSet
	for _, q := range qs {
		opt := core.QueryOptions{Batch: true}
		if set != nil {
			opt.SkipSwitch = true
		}
		rep, next, err := s.inner.RunQuery(q, opt, set)
		if err != nil {
			return out, err
		}
		set = next
		out = append(out, rep)
	}
	return out, nil
}

// OLTPThroughput reports the modeled transactional throughput with the
// current placement and no analytical interference.
func (s *System) OLTPThroughput() float64 { return s.inner.OLTPThroughputNow() }

// CurrentState returns the scheduler's current state.
func (s *System) CurrentState() State { return s.inner.Sched.State() }

// Freshness reports the current freshness-rate metric (1 = replicas fully
// synchronized) and the outstanding fresh bytes.
func (s *System) Freshness() (rate float64, freshBytes int64) {
	f := s.inner.X.MeasureFreshness(s.inner.OLTPE.Tables(), ch.TOrderLine, 1)
	return f.Rate, f.Nft
}

// Q1, Q6 and Q19 build the paper's evaluation queries over a database.
func Q1(db *DB) Query  { return &ch.Q1{DB: db} }
func Q6(db *DB) Query  { return &ch.Q6{DB: db} }
func Q19(db *DB) Query { return &ch.Q19{DB: db} }

// WorkClasses re-exported for custom queries.
type WorkClass = costmodel.WorkClass

// Work classes for custom olap.Query implementations.
const (
	ScanReduce  = costmodel.ScanReduce
	ScanGroupBy = costmodel.ScanGroupBy
	JoinProbe   = costmodel.JoinProbe
)

// Checkpoint writes a consistent snapshot of the named table to w: the
// active instance is switched and the quiescent twin serialized while
// transactions continue (internal/checkpoint). Returns the rows written.
func (s *System) Checkpoint(w io.Writer, table string) (int64, error) {
	h := s.inner.OLTPE.Table(table)
	if h == nil {
		return 0, fmt.Errorf("elastichtap: unknown table %q", table)
	}
	set := s.inner.X.SwitchAndSync([]*oltp.TableHandle{h})
	snap := set.Snap(table)
	if err := checkpoint.Write(w, h.Table(), snap.Inst, snap.Rows); err != nil {
		return 0, err
	}
	return snap.Rows, nil
}

// RestoreTable reads a checkpoint produced by Checkpoint into a fresh
// standalone table (not registered with the running system).
func RestoreTable(r io.Reader) (*columnar.Table, error) {
	return checkpoint.Read(r)
}

// Metrics returns a system-wide observability snapshot.
func (s *System) Metrics() metrics.Snapshot { return s.inner.Metrics() }
