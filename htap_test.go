package elastichtap

import (
	"testing"
)

func newSystem(t *testing.T) (*System, *DB) {
	t.Helper()
	cfg := DefaultConfig()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := sys.LoadCH(0.005, 1)
	sys.StartWorkload(0)
	return sys, db
}

func TestFacadeQuickstartFlow(t *testing.T) {
	sys, db := newSystem(t)
	if sys.DB() != db {
		t.Fatal("DB accessor broken")
	}
	rate, fresh := sys.Freshness()
	if rate < 0.999 || fresh != 0 {
		t.Fatalf("after load: rate=%v fresh=%d", rate, fresh)
	}
	sys.Run(100)
	rate, fresh = sys.Freshness()
	if rate >= 1 || fresh == 0 {
		t.Fatalf("after txns: rate=%v fresh=%d", rate, fresh)
	}
	rep, err := sys.Query(Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Result.Rows) != 1 || rep.Result.Rows[0][1] <= 0 {
		t.Fatalf("Q6 result = %+v", rep.Result)
	}
	if sys.OLTPThroughput() <= 0 {
		t.Fatal("throughput model broken")
	}
}

func TestFacadeStaticStates(t *testing.T) {
	sys, db := newSystem(t)
	sys.Run(50)
	var counts []float64
	for _, st := range []State{S1, S2, S3IS, S3NI} {
		rep, err := sys.QueryInState(Q1(db), st)
		if err != nil {
			t.Fatal(err)
		}
		if rep.State != st {
			t.Fatalf("state = %v, want %v", rep.State, st)
		}
		var c float64
		for _, row := range rep.Result.Rows {
			c += row[5]
		}
		counts = append(counts, c)
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("states disagree: %v", counts)
		}
	}
	if sys.CurrentState() != S3NI {
		t.Fatalf("current state = %v", sys.CurrentState())
	}
}

func TestFacadeQueryBatch(t *testing.T) {
	sys, db := newSystem(t)
	sys.Run(50)
	reps, err := sys.QueryBatch([]Query{Q1(db), Q6(db), Q19(db)})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("reports = %d", len(reps))
	}
	// Batches go to S2 (Algorithm 2's QueryBatch branch).
	for _, rep := range reps {
		if rep.State != S2 {
			t.Fatalf("batch query state = %v, want S2", rep.State)
		}
	}
	// Only the first pays the switch+ETL; the rest reuse the snapshot.
	if reps[1].SyncSeconds != 0 || reps[2].SyncSeconds != 0 {
		t.Fatal("batch re-switched mid-flight")
	}
}

func TestFacadeConfigKnobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha = 0.9
	cfg.Elasticity = false
	cfg.ElasticCores = 2
	cfg.ByteScale = 1000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := sys.LoadCH(0.005, 2)
	sys.StartWorkload(0)
	sys.Run(30)
	rep, err := sys.Query(Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	// Elasticity off: the hybrid branch of Algorithm 2 must pick S3-IS.
	if rep.State != S3IS && rep.State != S2 {
		t.Fatalf("state = %v, want S3-IS (or S2 past threshold)", rep.State)
	}

	cfg = DefaultConfig()
	cfg.PreferColocation = true
	cfg.Alpha = 0.95
	sys2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2 := sys2.LoadCH(0.005, 2)
	sys2.StartWorkload(0)
	sys2.Run(30)
	rep2, err := sys2.Query(Q6(db2))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.State != S1 {
		t.Fatalf("co-location mode state = %v, want S1", rep2.State)
	}
}

func TestFacadeCoreAccess(t *testing.T) {
	sys, _ := newSystem(t)
	if sys.Core() == nil || sys.Core().Sched == nil {
		t.Fatal("core access broken")
	}
	m := sys.Core().Metrics()
	if m.Tables == 0 {
		t.Fatal("metrics through facade broken")
	}
}
