//lint:file-ignore SA1019 this file exercises the deprecated synchronous
// wrappers (Query, QueryInState, QueryBatch) and config shims on
// purpose, pinning their behaviour until removal.

package elastichtap

import (
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func newSystem(t *testing.T) (*System, *DB) {
	t.Helper()
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	db := sys.LoadCH(0.005, 1)
	if err := sys.StartWorkload(0); err != nil {
		t.Fatal(err)
	}
	return sys, db
}

func TestFacadeQuickstartFlow(t *testing.T) {
	sys, db := newSystem(t)
	if sys.DB() != db {
		t.Fatal("DB accessor broken")
	}
	rate, fresh := sys.Freshness()
	if rate < 0.999 || fresh != 0 {
		t.Fatalf("after load: rate=%v fresh=%d", rate, fresh)
	}
	sys.Run(100)
	rate, fresh = sys.Freshness()
	if rate >= 1 || fresh == 0 {
		t.Fatalf("after txns: rate=%v fresh=%d", rate, fresh)
	}
	rep, err := sys.Query(Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Result.Rows) != 1 || rep.Result.Rows[0][1] <= 0 {
		t.Fatalf("Q6 result = %+v", rep.Result)
	}
	if sys.OLTPThroughput() <= 0 {
		t.Fatal("throughput model broken")
	}
}

func TestFacadeStaticStates(t *testing.T) {
	sys, db := newSystem(t)
	sys.Run(50)
	var counts []float64
	for _, st := range []State{S1, S2, S3IS, S3NI} {
		rep, err := sys.QueryInState(Q1(db), st)
		if err != nil {
			t.Fatal(err)
		}
		if rep.State != st {
			t.Fatalf("state = %v, want %v", rep.State, st)
		}
		var c float64
		for _, row := range rep.Result.Rows {
			c += row[5]
		}
		counts = append(counts, c)
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("states disagree: %v", counts)
		}
	}
	if sys.CurrentState() != S3NI {
		t.Fatalf("current state = %v", sys.CurrentState())
	}
}

func TestFacadeQueryBatch(t *testing.T) {
	sys, db := newSystem(t)
	sys.Run(50)
	reps, err := sys.QueryBatch([]Query{Q1(db), Q6(db), Q19(db)})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("reports = %d", len(reps))
	}
	// Batches go to S2 (Algorithm 2's QueryBatch branch).
	for _, rep := range reps {
		if rep.State != S2 {
			t.Fatalf("batch query state = %v, want S2", rep.State)
		}
	}
	// Only the first pays the switch+ETL; the rest reuse the snapshot.
	if reps[1].SyncSeconds != 0 || reps[2].SyncSeconds != 0 {
		t.Fatal("batch re-switched mid-flight")
	}
}

func TestFacadeOptionKnobs(t *testing.T) {
	sys, err := New(
		WithAlpha(0.9),
		WithElasticity(false),
		WithElasticCores(2),
		WithByteScale(1000),
	)
	if err != nil {
		t.Fatal(err)
	}
	db := sys.LoadCH(0.005, 2)
	if err := sys.StartWorkload(0); err != nil {
		t.Fatal(err)
	}
	sys.Run(30)
	rep, err := sys.Query(Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	// Elasticity off: the hybrid branch of Algorithm 2 must pick S3-IS.
	if rep.State != S3IS && rep.State != S2 {
		t.Fatalf("state = %v, want S3-IS (or S2 past threshold)", rep.State)
	}

	sys2, err := New(WithColocationPreference(true), WithAlpha(0.95))
	if err != nil {
		t.Fatal(err)
	}
	db2 := sys2.LoadCH(0.005, 2)
	if err := sys2.StartWorkload(0); err != nil {
		t.Fatal(err)
	}
	sys2.Run(30)
	rep2, err := sys2.Query(Q6(db2))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.State != S1 {
		t.Fatalf("co-location mode state = %v, want S1", rep2.State)
	}
}

func TestFacadeAlphaZeroIsHonored(t *testing.T) {
	// The legacy Config API silently dropped Alpha=0; the options API must
	// honor it: with α=0 every non-batch query with any fresh data ETLs.
	sys, err := New(WithAlpha(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Core().Sched.Config().Alpha; got != 0 {
		t.Fatalf("WithAlpha(0) configured α=%v", got)
	}
	db := sys.LoadCH(0.005, 3)
	if err := sys.StartWorkload(0); err != nil {
		t.Fatal(err)
	}
	sys.Run(100)
	rep, err := sys.Query(Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != S2 {
		t.Fatalf("alpha=0 state = %v, want S2 (eager ETL)", rep.State)
	}
}

func TestFacadeOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
		want string
	}{
		{"alpha-high", WithAlpha(1.5), "WithAlpha"},
		{"alpha-negative", WithAlpha(-0.1), "WithAlpha"},
		{"topology", WithTopology(0, 14), "WithTopology"},
		{"bandwidth", WithBandwidth(-1, 1), "WithBandwidth"},
		{"elastic-cores", WithElasticCores(-1), "WithElasticCores"},
		{"byte-scale", WithByteScale(0), "byte scale"},
	}
	for _, tc := range cases {
		if _, err := New(tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestFacadeNewFromConfigShim(t *testing.T) {
	// Legacy zero-ignoring semantics: zero Alpha and ByteScale fall back
	// to the defaults instead of being applied literally.
	cfg := DefaultConfig()
	cfg.Alpha = 0
	cfg.ByteScale = 0
	cfg.ElasticCores = 2
	sys, err := NewFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := sys.Core().Sched.Config()
	if sc.Alpha != 0.5 {
		t.Fatalf("shim applied zero Alpha literally: α=%v", sc.Alpha)
	}
	if sc.ElasticCores != 2 {
		t.Fatalf("shim dropped ElasticCores: %d", sc.ElasticCores)
	}
	if bs := sys.Core().Cfg.ByteScale; bs != 1 {
		t.Fatalf("shim applied zero ByteScale literally: %v", bs)
	}
	// Half-set pairs override independently, like the old New did.
	sys3, err := NewFromConfig(Config{Sockets: 4, Elasticity: true})
	if err != nil {
		t.Fatal(err)
	}
	topo := sys3.Core().Cfg.Topology
	if topo.Sockets != 4 {
		t.Fatalf("shim dropped Sockets override: %+v", topo)
	}
	if topo.CoresPerSocket != DefaultConfig().CoresPerSocket {
		t.Fatalf("shim lost default CoresPerSocket: %+v", topo)
	}
	db := sys.LoadCH(0.005, 3)
	if err := sys.StartWorkload(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(Q6(db)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeNoDatabaseErrors(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StartWorkload(0); !errors.Is(err, ErrNoDatabase) {
		t.Fatalf("StartWorkload before LoadCH: err = %v", err)
	}
	if _, err := sys.Query(Q6(nil)); !errors.Is(err, ErrNoDatabase) {
		t.Fatalf("Query before LoadCH: err = %v", err)
	}
	if _, err := sys.QueryInState(Q1(nil), S2); !errors.Is(err, ErrNoDatabase) {
		t.Fatalf("QueryInState before LoadCH: err = %v", err)
	}
	if _, err := sys.QueryBatch([]Query{Q19(nil)}); !errors.Is(err, ErrNoDatabase) {
		t.Fatalf("QueryBatch before LoadCH: err = %v", err)
	}
	if _, err := sys.Build(nil); !errors.Is(err, ErrNoDatabase) {
		t.Fatalf("Build before LoadCH: err = %v", err)
	}

	// A query built from a nil DB must fail descriptively even on a loaded
	// system (the deferred-error path through olap.Invalid).
	sys.LoadCH(0.005, 1)
	if _, err := sys.Query(Q6(nil)); !errors.Is(err, ErrNoDatabase) {
		t.Fatalf("Query with nil-DB query: err = %v", err)
	}
}

func TestFacadeCoreAccess(t *testing.T) {
	sys, _ := newSystem(t)
	if sys.Core() == nil || sys.Core().Sched == nil {
		t.Fatal("core access broken")
	}
	m := sys.Core().Metrics()
	if m.Tables == 0 {
		t.Fatal("metrics through facade broken")
	}
}

// TestConcurrentQueriesCheckpointsAndPayments drives the update-heavy
// concurrency triangle under -race: Payment transactions update rows in
// place, analytical queries scan the (insert-only) fact table, and
// checkpoints serialize snapshots of an updated table — all at once. The
// RDE scan latches must keep the non-atomic block reads race-free while
// queries over the insert-only fact table stay un-serialized.
func TestConcurrentQueriesCheckpointsAndPayments(t *testing.T) {
	sys, db := newSystem(t)
	if err := sys.StartWorkload(60); err != nil { // 60% Payment: in-place updates
		t.Fatal(err)
	}
	sys.Run(200)

	stop := make(chan struct{})
	var bg sync.WaitGroup

	// In-place updates + inserts while everything else runs.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sys.Run(20)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Checkpoints of an updated table: serializes a snapshot instance a
	// concurrent switch would otherwise re-activate and overwrite.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := sys.Checkpoint(io.Discard, "district"); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := -1.0
			for i := 0; i < 5; i++ {
				rep, err := sys.Query(Q6(db))
				if err != nil {
					t.Error(err)
					return
				}
				if count := rep.Result.Rows[0][1]; count < prev {
					t.Errorf("Q6 count shrank: %v -> %v", prev, count)
					return
				} else {
					prev = count
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	bg.Wait()

	if sys.Metrics().Failed > 0 {
		t.Fatalf("abandoned transactions: %+v", sys.Metrics())
	}
}

// TestFacadeClose verifies Close drains the OLAP pool and later queries
// fail instead of hanging.
func TestFacadeClose(t *testing.T) {
	sys, db := newSystem(t)
	if _, err := sys.Query(Q6(db)); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	if sys.Metrics().OLAPPoolSize != 0 {
		t.Fatalf("pool size = %d after Close", sys.Metrics().OLAPPoolSize)
	}
	if _, err := sys.Query(Q6(db)); err == nil {
		t.Fatal("query after Close must fail")
	}
}
