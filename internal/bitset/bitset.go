// Package bitset provides a concurrency-safe, growable bitmap used for the
// per-record update-indication bits of the OLTP storage manager (§3.2).
// Bits are set by transaction workers at commit time and cleared by the RDE
// engine during instance synchronization, so all accesses use atomics.
package bitset

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const wordBits = 64

// Atomic is a bitmap whose Set/Clear/Test operations are safe for
// concurrent use. Growth takes a short exclusive lock; steady-state
// operations only take a read lock plus one atomic word access.
type Atomic struct {
	mu    sync.RWMutex
	words []uint64
	n     int // logical length in bits
}

// New returns a bitmap with capacity for n bits, all zero.
func New(n int) *Atomic {
	if n < 0 {
		n = 0
	}
	return &Atomic{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the logical size of the bitmap in bits.
func (b *Atomic) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n
}

// Grow extends the bitmap to hold at least n bits (new bits are zero).
func (b *Atomic) Grow(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= b.n {
		return
	}
	need := (n + wordBits - 1) / wordBits
	if need > len(b.words) {
		words := make([]uint64, need+need/2)
		copy(words, b.words)
		b.words = words
	}
	b.n = n
}

// Set sets bit i, growing the bitmap if needed. It reports whether the bit
// transitioned from 0 to 1.
func (b *Atomic) Set(i int) bool {
	if i < 0 {
		return false
	}
	b.mu.RLock()
	if i < b.n {
		old := orWord(&b.words[i/wordBits], uint64(1)<<(i%wordBits))
		b.mu.RUnlock()
		return old&(uint64(1)<<(i%wordBits)) == 0
	}
	b.mu.RUnlock()
	b.Grow(i + 1)
	return b.Set(i)
}

// Clear clears bit i. It reports whether the bit transitioned from 1 to 0.
func (b *Atomic) Clear(i int) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if i < 0 || i >= b.n {
		return false
	}
	mask := uint64(1) << (i % wordBits)
	old := andWord(&b.words[i/wordBits], ^mask)
	return old&mask != 0
}

// orWord and andWord are CAS-loop equivalents of atomic.{Or,And}Uint64,
// which the toolchain in use miscompiles (clobbered register across the
// intrinsic's internal retry loop).
func orWord(addr *uint64, mask uint64) (old uint64) {
	for {
		old = atomic.LoadUint64(addr)
		if old&mask == mask || atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return old
		}
	}
}

func andWord(addr *uint64, mask uint64) (old uint64) {
	for {
		old = atomic.LoadUint64(addr)
		if old == old&mask || atomic.CompareAndSwapUint64(addr, old, old&mask) {
			return old
		}
	}
}

// Test reports whether bit i is set.
func (b *Atomic) Test(i int) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if i < 0 || i >= b.n {
		return false
	}
	return atomic.LoadUint64(&b.words[i/wordBits])&(uint64(1)<<(i%wordBits)) != 0
}

// AnyInRange reports whether any bit in [lo, hi) is set. Like ForEachSet it
// sees a weakly consistent view under concurrent mutation; secondary-index
// morsel skipping only relies on it for bit ranges that are no longer being
// mutated.
func (b *Atomic) AnyInRange(lo, hi int) bool {
	b.mu.RLock()
	words, n := b.words, b.n
	b.mu.RUnlock()
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return false
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	for wi := loW; wi <= hiW; wi++ {
		w := atomic.LoadUint64(&words[wi])
		if wi == loW {
			w &= ^uint64(0) << (lo % wordBits)
		}
		if wi == hiW && (hi%wordBits) != 0 {
			w &= ^uint64(0) >> (wordBits - hi%wordBits)
		}
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (b *Atomic) Count() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c := 0
	for i := range b.words {
		c += bits.OnesCount64(atomic.LoadUint64(&b.words[i]))
	}
	return c
}

// ForEachSet calls fn for every set bit in ascending order. The iteration
// sees a weakly consistent view under concurrent mutation, which matches
// the RDE's needs: bits set after the scan started may or may not be seen.
func (b *Atomic) ForEachSet(fn func(i int)) {
	b.mu.RLock()
	words, n := b.words, b.n
	b.mu.RUnlock()
	for wi := range words {
		w := atomic.LoadUint64(&words[wi])
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			i := wi*wordBits + bit
			if i >= n {
				return
			}
			fn(i)
			w &^= 1 << bit
		}
	}
}

// DrainSet atomically claims and clears set bits, invoking fn once per
// claimed bit. It is the primitive behind the RDE's "copy the record, then
// clear the corresponding bit" sync loop (§3.4 S2): concurrent setters
// after the claim are preserved for the next sync.
func (b *Atomic) DrainSet(fn func(i int)) int {
	b.mu.RLock()
	words, n := b.words, b.n
	b.mu.RUnlock()
	drained := 0
	for wi := range words {
		w := atomic.SwapUint64(&words[wi], 0)
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			i := wi*wordBits + bit
			w &^= 1 << bit
			if i >= n {
				continue
			}
			fn(i)
			drained++
		}
	}
	return drained
}

// Reset clears all bits without shrinking.
func (b *Atomic) Reset() {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for i := range b.words {
		atomic.StoreUint64(&b.words[i], 0)
	}
}
