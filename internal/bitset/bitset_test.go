package bitset

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(100)
	if b.Test(5) {
		t.Fatal("fresh bitset has bit set")
	}
	if !b.Set(5) {
		t.Fatal("Set should report 0->1 transition")
	}
	if b.Set(5) {
		t.Fatal("second Set should report no transition")
	}
	if !b.Test(5) {
		t.Fatal("bit 5 should be set")
	}
	if !b.Clear(5) {
		t.Fatal("Clear should report 1->0 transition")
	}
	if b.Clear(5) {
		t.Fatal("second Clear should report no transition")
	}
	if b.Test(5) {
		t.Fatal("bit 5 should be clear")
	}
}

func TestGrowOnSet(t *testing.T) {
	b := New(0)
	if !b.Set(1_000_000) {
		t.Fatal("Set beyond capacity must grow and set")
	}
	if !b.Test(1_000_000) {
		t.Fatal("grown bit lost")
	}
	if b.Len() < 1_000_001 {
		t.Fatalf("Len %d < 1000001", b.Len())
	}
	if got := b.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestNegativeAndOutOfRange(t *testing.T) {
	b := New(10)
	if b.Set(-1) {
		t.Fatal("Set(-1) must be a no-op")
	}
	if b.Test(-1) || b.Test(10) || b.Test(11) {
		t.Fatal("out-of-range Test must be false")
	}
	if b.Clear(42) {
		t.Fatal("out-of-range Clear must be false")
	}
}

func TestForEachSetOrder(t *testing.T) {
	b := New(300)
	want := []int{0, 1, 63, 64, 65, 128, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestDrainSet(t *testing.T) {
	b := New(200)
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	before := b.Count()
	var drained []int
	n := b.DrainSet(func(i int) { drained = append(drained, i) })
	if n != before || len(drained) != before {
		t.Fatalf("drained %d, want %d", n, before)
	}
	if b.Count() != 0 {
		t.Fatalf("Count after drain = %d, want 0", b.Count())
	}
	// Draining an empty set is a no-op.
	if got := b.DrainSet(func(int) {}); got != 0 {
		t.Fatalf("second drain = %d, want 0", got)
	}
}

func TestReset(t *testing.T) {
	b := New(64)
	for i := 0; i < 64; i++ {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset must clear all bits")
	}
	if b.Len() != 64 {
		t.Fatal("Reset must not shrink")
	}
}

func TestConcurrentSetters(t *testing.T) {
	const n = 10000
	b := New(n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				b.Set(i)
			}
		}(g)
	}
	wg.Wait()
	if got := b.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
}

func TestConcurrentDrainAndSet(t *testing.T) {
	// Bits set during a drain must end up either drained or still set —
	// never lost. This is the RDE sync-loop contract.
	const n = 1 << 14
	b := New(n)
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	seen := make([]bool, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i += 2 {
			b.Set(i) // re-set even bits concurrently
		}
	}()
	b.DrainSet(func(i int) { seen[i] = true })
	wg.Wait()
	for i := 1; i < n; i += 2 {
		if !seen[i] {
			t.Fatalf("odd bit %d lost", i)
		}
	}
	for i := 0; i < n; i += 2 {
		if !seen[i] && !b.Test(i) {
			t.Fatalf("even bit %d neither drained nor set", i)
		}
	}
}

func TestQuickCountMatchesReference(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := New(1 << 16)
		ref := map[int]bool{}
		for _, u := range idxs {
			b.Set(int(u))
			ref[int(u)] = true
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := range ref {
			if !b.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetClearIdempotence(t *testing.T) {
	f := func(ops []int16) bool {
		b := New(1 << 15)
		ref := map[int]bool{}
		for _, op := range ops {
			i := int(op)
			if i < 0 {
				i = -i
				b.Clear(i)
				delete(ref, i)
			} else {
				b.Set(i)
				ref[i] = true
			}
		}
		return b.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
