package ch

import (
	"context"
	"math/rand"
	"testing"

	"elastichtap/internal/columnar"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
)

func loadTiny(t *testing.T) *DB {
	t.Helper()
	return Load(oltp.NewEngine(), TinySizing(), 1)
}

func TestLoadCounts(t *testing.T) {
	db := loadTiny(t)
	s := db.Sizing
	if got := db.Warehouse.Table().Rows(); got != int64(s.Warehouses) {
		t.Fatalf("warehouses = %d", got)
	}
	if got := db.District.Table().Rows(); got != int64(s.Warehouses*s.DistrictsPerWH) {
		t.Fatalf("districts = %d", got)
	}
	if got := db.Customer.Table().Rows(); got != s.Customers() {
		t.Fatalf("customers = %d", got)
	}
	if got := db.Orders.Table().Rows(); got != s.Orders() {
		t.Fatalf("orders = %d", got)
	}
	if got := db.OrderLine.Table().Rows(); got != s.OrderLines() {
		t.Fatalf("orderlines = %d", got)
	}
	if got := db.Stock.Table().Rows(); got != s.StockRows() {
		t.Fatalf("stock = %d", got)
	}
	if got := db.Item.Table().Rows(); got != int64(s.Items) {
		t.Fatalf("items = %d", got)
	}
}

func TestLoadDeterminism(t *testing.T) {
	a := Load(oltp.NewEngine(), TinySizing(), 7)
	b := Load(oltp.NewEngine(), TinySizing(), 7)
	ta, tb := a.OrderLine.Table(), b.OrderLine.Table()
	if ta.Rows() != tb.Rows() {
		t.Fatal("row counts differ")
	}
	for r := int64(0); r < ta.Rows(); r += 97 {
		for c := 0; c < len(ta.Schema().Columns); c++ {
			va, vb := ta.ReadActive(r, c), tb.ReadActive(r, c)
			if ta.Schema().Columns[c].Type == columnar.String {
				if ta.DecodeValue(c, va) != tb.DecodeValue(c, vb) {
					t.Fatalf("row %d col %d differs", r, c)
				}
				continue
			}
			if va != vb {
				t.Fatalf("row %d col %d differs: %d vs %d", r, c, va, vb)
			}
		}
	}
}

func TestIndexesResolveLoadedKeys(t *testing.T) {
	db := loadTiny(t)
	s := db.Sizing
	for w := 1; w <= s.Warehouses; w++ {
		for d := 1; d <= s.DistrictsPerWH; d++ {
			row, ok := db.District.Index.Get(DistrictKey(int64(w), int64(d)))
			if !ok {
				t.Fatalf("district (%d,%d) missing from index", w, d)
			}
			dt := db.District.Table()
			if dt.ReadActive(int64(row), DID) != int64(d) || dt.ReadActive(int64(row), DWID) != int64(w) {
				t.Fatalf("district index points to wrong row")
			}
		}
	}
	for i := 1; i <= s.Items; i += 7 {
		if _, ok := db.Item.Index.Get(ItemKey(int64(i))); !ok {
			t.Fatalf("item %d missing", i)
		}
	}
	for w := 1; w <= s.Warehouses; w++ {
		for i := 1; i <= s.Items; i += 11 {
			if _, ok := db.Stock.Index.Get(StockKey(int64(w), int64(i))); !ok {
				t.Fatalf("stock (%d,%d) missing", w, i)
			}
		}
	}
}

func TestNewOrderEffects(t *testing.T) {
	db := loadTiny(t)
	mgr := db.Engine.Manager()
	ordersBefore := db.Orders.Table().Rows()
	linesBefore := db.OrderLine.Table().Rows()

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		if _, err := mgr.RunWithRetry(10, db.NewOrder(rng, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Orders.Table().Rows() - ordersBefore; got != 20 {
		t.Fatalf("orders inserted = %d", got)
	}
	lines := db.OrderLine.Table().Rows() - linesBefore
	if lines < 20*5 || lines > 20*15 {
		t.Fatalf("order lines inserted = %d, want within [100,300]", lines)
	}
	// The district next-order-id advanced.
	row, _ := db.District.Index.Get(DistrictKey(1, 1))
	next := db.District.Table().ReadActive(int64(row), DNextOID)
	if next <= int64(db.Sizing.OrdersPerDistrict) {
		t.Fatalf("d_next_o_id = %d, never advanced", next)
	}
	// New orders are in the index.
	if _, ok := db.Orders.Index.Get(OrderKey(1, 1, int64(db.Sizing.OrdersPerDistrict)+1)); !ok {
		t.Fatal("inserted order missing from index")
	}
}

func TestPaymentEffects(t *testing.T) {
	db := loadTiny(t)
	mgr := db.Engine.Manager()
	wRow, _ := db.Warehouse.Index.Get(WarehouseKey(1))
	before := columnar.DecodeFloat(db.Warehouse.Table().ReadActive(int64(wRow), WYtd))
	histBefore := db.History.Table().Rows()

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		if _, err := mgr.RunWithRetry(10, db.Payment(rng, 1)); err != nil {
			t.Fatal(err)
		}
	}
	after := columnar.DecodeFloat(db.Warehouse.Table().ReadActive(int64(wRow), WYtd))
	if after <= before {
		t.Fatalf("warehouse YTD did not grow: %v -> %v", before, after)
	}
	if db.History.Table().Rows() != histBefore+10 {
		t.Fatal("history rows missing")
	}
	// Payments mark updated rows for freshness accounting.
	if db.Warehouse.Table().DirtyOLAP().Count() == 0 {
		t.Fatal("payment updates left no dirty-OLAP bits")
	}
}

func TestMixWorkload(t *testing.T) {
	db := loadTiny(t)
	mix := NewMix(db, 50, 9)
	db.Engine.Workers().SetWorkload(mix)
	db.Engine.Workers().SetPlacement(topology.Placement{PerSocket: []int{4}})
	db.Engine.Workers().ExecuteBatch(60)
	if got := db.Engine.Workers().Executed(); got != 60 {
		t.Fatalf("executed = %d", got)
	}
	if db.Engine.Manager().Commits() < 60 {
		t.Fatalf("commits = %d", db.Engine.Manager().Commits())
	}
}

func execOnActive(t *testing.T, db *DB, q olap.Query) olap.Result {
	t.Helper()
	e := olap.NewEngine(2)
	e.SetPlacement(topology.Placement{PerSocket: []int{0, 4}})
	tab := db.Handle(q.FactTable()).Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{
		{Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0},
	}}
	res, _, err := e.ExecuteContext(context.Background(), q, src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSizingForScale(t *testing.T) {
	s := SizingForScale(1)
	if got := s.OrderLines(); got < 5_800_000 || got > 6_100_000 {
		t.Fatalf("SF1 order lines = %d, want ~6M", got)
	}
	if s.Items != 100_000 {
		t.Fatalf("SF1 items = %d", s.Items)
	}
	small := SizingForScale(0.01)
	if small.Warehouses != 14 {
		t.Fatalf("SF0.01 warehouses = %d", small.Warehouses)
	}
	if small.OrderLines() < 50_000 || small.OrderLines() > 70_000 {
		t.Fatalf("SF0.01 order lines = %d", small.OrderLines())
	}
	if SizingForScale(0).OrderLines() <= 0 {
		t.Fatal("zero SF must clamp to positive sizing")
	}
	if SizingForScale(300).Warehouses != 300 {
		t.Fatal("SF300 warehouses")
	}
}

func TestQuerySet(t *testing.T) {
	db := loadTiny(t)
	qs := db.QuerySet()
	names := []string{"Q1", "Q6", "Q19", "Q3", "Q12", "Q18"}
	if len(qs) != len(names) {
		t.Fatalf("QuerySet len = %d, want %d", len(qs), len(names))
	}
	for i, q := range qs {
		if q.Name() != names[i] {
			t.Fatalf("query %d = %s, want %s", i, q.Name(), names[i])
		}
		if q.FactTable() != TOrderLine {
			t.Fatalf("query %s fact table = %s", q.Name(), q.FactTable())
		}
		// The builder-compiled members must have bound cleanly.
		if v, ok := q.(interface{ Err() error }); ok {
			if err := v.Err(); err != nil {
				t.Fatalf("query %s carries bind error: %v", q.Name(), err)
			}
		}
	}
}
