package ch

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"elastichtap/internal/oltp"
	"elastichtap/query"
)

// LoadDay is the logical date (epoch days) stamped on generated rows; the
// database's clock advances from here as transactions run.
const LoadDay = 18262 // 2020-01-01

// DB is a loaded CH-benCHmark database bound to an OLTP engine.
type DB struct {
	Engine *oltp.Engine
	Sizing Sizing

	Warehouse *oltp.TableHandle
	District  *oltp.TableHandle
	Customer  *oltp.TableHandle
	History   *oltp.TableHandle
	NewOrderT *oltp.TableHandle
	Orders    *oltp.TableHandle
	OrderLine *oltp.TableHandle
	Item      *oltp.TableHandle
	Stock     *oltp.TableHandle
	Supplier  *oltp.TableHandle
	Nation    *oltp.TableHandle
	Region    *oltp.TableHandle

	day atomic.Int64

	// prepared caches the bound form of the parameterized evaluation
	// plans (see PreparedPlan), one Bind per query per database.
	prepMu   sync.Mutex
	prepared map[string]*query.Compiled
}

// Day returns the database's current logical date.
func (db *DB) Day() int64 { return db.day.Load() }

// AdvanceDay moves the logical date forward by n days.
func (db *DB) AdvanceDay(n int64) { db.day.Add(n) }

// SetDay restores the logical date (recovery only).
func (db *DB) SetDay(d int64) { db.day.Store(d) }

// Tables returns every table handle, fact tables first.
func (db *DB) Tables() []*oltp.TableHandle {
	return []*oltp.TableHandle{
		db.OrderLine, db.Orders, db.NewOrderT, db.History, db.Stock,
		db.Customer, db.District, db.Warehouse, db.Item,
		db.Supplier, db.Nation, db.Region,
	}
}

// Handle returns a table handle by name, or nil.
func (db *DB) Handle(name string) *oltp.TableHandle {
	switch name {
	case TWarehouse:
		return db.Warehouse
	case TDistrict:
		return db.District
	case TCustomer:
		return db.Customer
	case THistory:
		return db.History
	case TNewOrder:
		return db.NewOrderT
	case TOrders:
		return db.Orders
	case TOrderLine:
		return db.OrderLine
	case TItem:
		return db.Item
	case TStock:
		return db.Stock
	case TSupplier:
		return db.Supplier
	case TNation:
		return db.Nation
	case TRegion:
		return db.Region
	default:
		return nil
	}
}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
	"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
	"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// Attach creates the CH-benCHmark tables (empty, with their index
// plumbing) in the engine and returns the database shell. Load fills it
// with generated data; recovery fills it from a checkpoint instead and
// then calls RebuildIndexes.
func Attach(e *oltp.Engine, s Sizing) *DB {
	db := &DB{Engine: e, Sizing: s}
	db.day.Store(LoadDay)

	schemas := Schemas()
	db.Warehouse = e.CreateTable(schemas[TWarehouse], int64(s.Warehouses), true)
	db.District = e.CreateTable(schemas[TDistrict], int64(s.Warehouses*s.DistrictsPerWH), true)
	db.Customer = e.CreateTable(schemas[TCustomer], s.Customers(), true)
	db.History = e.CreateTable(schemas[THistory], s.Customers(), false)
	db.NewOrderT = e.CreateTable(schemas[TNewOrder], s.Orders(), false)
	db.Orders = e.CreateTable(schemas[TOrders], s.Orders(), true)
	db.OrderLine = e.CreateTable(schemas[TOrderLine], s.OrderLines(), false)
	db.Item = e.CreateTable(schemas[TItem], int64(s.Items), true)
	db.Stock = e.CreateTable(schemas[TStock], s.StockRows(), true)
	db.Supplier = e.CreateTable(schemas[TSupplier], 100, true)
	db.Nation = e.CreateTable(schemas[TNation], int64(len(nationNames)), true)
	db.Region = e.CreateTable(schemas[TRegion], int64(len(regionNames)), true)
	return db
}

// Load generates and loads a deterministic CH-benCHmark database into the
// engine. Loaded rows carry commit timestamp 0 (visible to every
// snapshot); primary-key indexes are populated as rows land.
func Load(e *oltp.Engine, s Sizing, seed int64) *DB {
	rng := rand.New(rand.NewSource(seed))
	db := Attach(e, s)
	db.loadDimensions(rng)
	db.loadStockItems(rng)
	db.loadCustomers(rng)
	db.loadOrders(rng)
	return db
}

// RebuildIndexes repopulates every primary-key index from table contents
// — the recovery path after checkpoint restore and WAL replay, where rows
// land without going through the loader or the transaction bodies that
// normally maintain the indexes.
func (db *DB) RebuildIndexes() {
	type keyed struct {
		h   *oltp.TableHandle
		key func(read func(col int) int64) uint64
	}
	for _, k := range []keyed{
		{db.Warehouse, func(r func(int) int64) uint64 { return WarehouseKey(r(WID)) }},
		{db.District, func(r func(int) int64) uint64 { return DistrictKey(r(DWID), r(DID)) }},
		{db.Customer, func(r func(int) int64) uint64 { return CustomerKey(r(CWID), r(CDID), r(CID)) }},
		{db.Orders, func(r func(int) int64) uint64 { return OrderKey(r(OWID), r(ODID), r(OID)) }},
		{db.Item, func(r func(int) int64) uint64 { return ItemKey(r(IID)) }},
		{db.Stock, func(r func(int) int64) uint64 { return StockKey(r(SWID), r(SIID)) }},
		{db.Supplier, func(r func(int) int64) uint64 { return uint64(r(SuSuppkey)) }},
		{db.Nation, func(r func(int) int64) uint64 { return uint64(r(NNationkey)) }},
		{db.Region, func(r func(int) int64) uint64 { return uint64(r(RRegionkey)) }},
	} {
		t := k.h.Table()
		rows := t.Rows()
		for row := int64(0); row < rows; row++ {
			key := k.key(func(col int) int64 { return t.ReadActive(row, col) })
			k.h.Index.Put(key, uint64(row))
		}
	}
}

func (db *DB) loadDimensions(rng *rand.Rand) {
	s := db.Sizing
	wt := db.Warehouse.Table()
	var wrows [][]int64
	for w := 1; w <= s.Warehouses; w++ {
		wrows = append(wrows, wt.EncodeRow(
			w, fmt.Sprintf("WH-%03d", w), city(rng), state(rng),
			rng.Float64()*0.2, 300000.0,
		))
	}
	base := wt.AppendRows(wrows, 0)
	for i := range wrows {
		db.Warehouse.Index.Put(WarehouseKey(int64(i+1)), uint64(base+int64(i)))
	}

	dt := db.District.Table()
	var drows [][]int64
	var dkeys []uint64
	for w := 1; w <= s.Warehouses; w++ {
		for d := 1; d <= s.DistrictsPerWH; d++ {
			drows = append(drows, dt.EncodeRow(
				d, w, fmt.Sprintf("DIST-%d-%d", w, d), city(rng),
				rng.Float64()*0.2, 30000.0, int64(s.OrdersPerDistrict+1),
			))
			dkeys = append(dkeys, DistrictKey(int64(w), int64(d)))
		}
	}
	base = dt.AppendRows(drows, 0)
	for i, k := range dkeys {
		db.District.Index.Put(k, uint64(base+int64(i)))
	}

	rt := db.Region.Table()
	var rrows [][]int64
	for i, n := range regionNames {
		rrows = append(rrows, rt.EncodeRow(i, n))
	}
	base = rt.AppendRows(rrows, 0)
	for i := range rrows {
		db.Region.Index.Put(uint64(i), uint64(base+int64(i)))
	}

	nt := db.Nation.Table()
	var nrows [][]int64
	for i, n := range nationNames {
		nrows = append(nrows, nt.EncodeRow(i, n, i%len(regionNames)))
	}
	base = nt.AppendRows(nrows, 0)
	for i := range nrows {
		db.Nation.Index.Put(uint64(i), uint64(base+int64(i)))
	}

	st := db.Supplier.Table()
	var srows [][]int64
	for i := 0; i < 100; i++ {
		srows = append(srows, st.EncodeRow(
			i, fmt.Sprintf("Supplier#%09d", i), i%len(nationNames), rng.Float64()*10000,
		))
	}
	base = st.AppendRows(srows, 0)
	for i := range srows {
		db.Supplier.Index.Put(uint64(i), uint64(base+int64(i)))
	}
}

func (db *DB) loadStockItems(rng *rand.Rand) {
	s := db.Sizing
	it := db.Item.Table()
	var irows [][]int64
	for i := 1; i <= s.Items; i++ {
		irows = append(irows, it.EncodeRow(
			i, rng.Int63n(10000), fmt.Sprintf("item-%06d", i),
			1+rng.Float64()*99, itemData(rng),
		))
	}
	base := it.AppendRows(irows, 0)
	for i := range irows {
		db.Item.Index.Put(ItemKey(int64(i+1)), uint64(base+int64(i)))
	}

	st := db.Stock.Table()
	const batch = 1 << 14
	var rows [][]int64
	var keys []uint64
	flush := func() {
		if len(rows) == 0 {
			return
		}
		b := st.AppendRows(rows, 0)
		for i, k := range keys {
			db.Stock.Index.Put(k, uint64(b+int64(i)))
		}
		rows, keys = rows[:0], keys[:0]
	}
	for w := 1; w <= s.Warehouses; w++ {
		for i := 1; i <= s.Items; i++ {
			rows = append(rows, st.EncodeRow(
				i, w, 10+rng.Int63n(91), 0.0, int64(0), int64(0),
				distInfo(rng), itemData(rng), int64((w*i)%100),
			))
			keys = append(keys, StockKey(int64(w), int64(i)))
			if len(rows) >= batch {
				flush()
			}
		}
	}
	flush()
}

func (db *DB) loadCustomers(rng *rand.Rand) {
	s := db.Sizing
	ct := db.Customer.Table()
	const batch = 1 << 14
	var rows [][]int64
	var keys []uint64
	flush := func() {
		if len(rows) == 0 {
			return
		}
		b := ct.AppendRows(rows, 0)
		for i, k := range keys {
			db.Customer.Index.Put(k, uint64(b+int64(i)))
		}
		rows, keys = rows[:0], keys[:0]
	}
	for w := 1; w <= s.Warehouses; w++ {
		for d := 1; d <= s.DistrictsPerWH; d++ {
			for c := 1; c <= s.CustomersPerDistrict; c++ {
				credit := "GC"
				if rng.Intn(10) == 0 {
					credit = "BC"
				}
				rows = append(rows, ct.EncodeRow(
					c, d, w, firstName(rng), lastName(rng, c), credit,
					rng.Float64()*0.5, -10.0, 10.0, int64(1), LoadDay-rng.Int63n(1000),
					int64(((w*13+d*7+c)*17)%25),
				))
				keys = append(keys, CustomerKey(int64(w), int64(d), int64(c)))
				if len(rows) >= batch {
					flush()
				}
			}
		}
	}
	flush()
}

func (db *DB) loadOrders(rng *rand.Rand) {
	s := db.Sizing
	ot := db.Orders.Table()
	olt := db.OrderLine.Table()
	const batch = 1 << 12
	var orows, olrows [][]int64
	var okeys []uint64
	flushOrders := func() {
		if len(orows) == 0 {
			return
		}
		b := ot.AppendRows(orows, 0)
		for i, k := range okeys {
			db.Orders.Index.Put(k, uint64(b+int64(i)))
		}
		orows, okeys = orows[:0], okeys[:0]
	}
	flushLines := func() {
		if len(olrows) == 0 {
			return
		}
		olt.AppendRows(olrows, 0)
		olrows = olrows[:0]
	}
	for w := 1; w <= s.Warehouses; w++ {
		for d := 1; d <= s.DistrictsPerWH; d++ {
			for o := 1; o <= s.OrdersPerDistrict; o++ {
				c := 1 + rng.Intn(s.CustomersPerDistrict)
				entry := LoadDay - rng.Int63n(365)
				carrier := int64(1 + rng.Intn(10))
				orows = append(orows, ot.EncodeRow(
					o, d, w, c, entry, carrier, int64(s.OrderLinesPerOrder), int64(1),
				))
				okeys = append(okeys, OrderKey(int64(w), int64(d), int64(o)))
				for n := 1; n <= s.OrderLinesPerOrder; n++ {
					item := 1 + rng.Intn(s.Items)
					qty := int64(1 + rng.Intn(10))
					price := 1 + rng.Float64()*99
					olrows = append(olrows, olt.EncodeRow(
						o, d, w, n, item, w, entry+rng.Int63n(30),
						qty, float64(qty)*price, distInfo(rng),
					))
				}
				if len(orows) >= batch {
					flushOrders()
				}
				if len(olrows) >= batch {
					flushLines()
				}
			}
		}
	}
	flushOrders()
	flushLines()
}

var cities = []string{"Lausanne", "Geneva", "Zurich", "Bern", "Basel", "Lugano", "Sion", "Chur"}
var states = []string{"VD", "GE", "ZH", "BE", "BS", "TI", "VS", "GR"}
var firstNames = []string{"Ada", "Grace", "Edsger", "Alan", "Barbara", "Donald", "Leslie", "Tony"}
var lastSyllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

func city(rng *rand.Rand) string  { return cities[rng.Intn(len(cities))] }
func state(rng *rand.Rand) string { return states[rng.Intn(len(states))] }

func firstName(rng *rand.Rand) string { return firstNames[rng.Intn(len(firstNames))] }

// lastName follows the TPC-C syllable construction over the customer id.
func lastName(rng *rand.Rand, c int) string {
	n := c % 1000
	return lastSyllables[n/100] + lastSyllables[(n/10)%10] + lastSyllables[n%10]
}

func itemData(rng *rand.Rand) string {
	if rng.Intn(10) == 0 {
		return "ORIGINAL"
	}
	return fmt.Sprintf("data-%04d", rng.Intn(500))
}

func distInfo(rng *rand.Rand) string { return fmt.Sprintf("dist-%03d", rng.Intn(100)) }
