// Package golden holds the hand-coded reference executors for the
// CH-benCHmark queries that the declarative builder compiles (Q1, Q3,
// Q6, Q12, Q18, Q19). They are test-only oracles: builder_golden_test.go
// asserts the compiled plans reproduce their results and statistics
// exactly, and the root bench suite measures the builder kernels against
// them. Production code — QuerySet, the experiment harness, the serving
// examples — goes through the builder plans in package ch; nothing
// outside tests and benchmarks should import this package.
package golden

import (
	"elastichtap/internal/ch"
	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
)

// maxOrderLineNumber bounds the Q1 group domain: TPC-C order lines are
// numbered 1..15.
const maxOrderLineNumber = 15

// Q1 is CH-benCHmark query 1: scan-filter-groupby over OrderLine, grouping
// by ol_number with sum/avg/count aggregates. Golden twin of ch.Q1Plan.
type Q1 struct {
	DB *ch.DB
	// MinDeliveryD filters ol_delivery_d > MinDeliveryD; 0 keeps everything.
	MinDeliveryD int64
}

// Name implements olap.Query.
func (q *Q1) Name() string { return "Q1" }

// Class implements olap.Query.
func (q *Q1) Class() costmodel.WorkClass { return costmodel.ScanGroupBy }

// FactTable implements olap.Query.
func (q *Q1) FactTable() string { return ch.TOrderLine }

// Columns implements olap.Query.
func (q *Q1) Columns() []int {
	return []int{ch.OLNumber, ch.OLQuantity, ch.OLAmount, ch.OLDeliveryD}
}

// Prepare implements olap.Query.
func (q *Q1) Prepare() (olap.Exec, int64) { return &q1Exec{min: q.MinDeliveryD}, 0 }

type q1Group struct {
	sumQty, sumAmount float64
	count             int64
}

type q1Local struct {
	min    int64
	groups [maxOrderLineNumber + 1]q1Group
}

func (l *q1Local) Consume(b olap.Block) {
	nums, qtys, amounts, dates := b.Cols[0], b.Cols[1], b.Cols[2], b.Cols[3]
	for i := 0; i < b.N; i++ {
		if dates[i] <= l.min {
			continue
		}
		n := nums[i]
		if n < 0 || n > maxOrderLineNumber {
			continue
		}
		g := &l.groups[n]
		g.sumQty += float64(qtys[i])
		g.sumAmount += columnar.DecodeFloat(amounts[i])
		g.count++
	}
}

type q1Exec struct{ min int64 }

func (e *q1Exec) NewLocal() olap.Local { return &q1Local{min: e.min} }

func (e *q1Exec) Merge(locals []olap.Local) olap.Result {
	var total [maxOrderLineNumber + 1]q1Group
	for _, l := range locals {
		ql := l.(*q1Local)
		for n := range total {
			total[n].sumQty += ql.groups[n].sumQty
			total[n].sumAmount += ql.groups[n].sumAmount
			total[n].count += ql.groups[n].count
		}
	}
	res := olap.Result{Cols: []string{"ol_number", "sum_qty", "sum_amount", "avg_qty", "avg_amount", "count_order"}}
	for n := 1; n <= maxOrderLineNumber; n++ {
		g := total[n]
		if g.count == 0 {
			continue
		}
		res.Rows = append(res.Rows, []float64{
			float64(n), g.sumQty, g.sumAmount,
			g.sumQty / float64(g.count), g.sumAmount / float64(g.count), float64(g.count),
		})
	}
	return res
}

// Q6 is CH-benCHmark query 6: scan-filter-reduce over OrderLine summing
// ol_amount for rows within delivery-date and quantity brackets. Golden
// twin of ch.Q6Plan.
type Q6 struct {
	DB *ch.DB
	// Date bracket [DateLo, DateHi); zero values select everything.
	DateLo, DateHi int64
	// Quantity bracket [QtyLo, QtyHi]; zeros default to [1, 100000].
	QtyLo, QtyHi int64
}

// Name implements olap.Query.
func (q *Q6) Name() string { return "Q6" }

// Class implements olap.Query.
func (q *Q6) Class() costmodel.WorkClass { return costmodel.ScanReduce }

// FactTable implements olap.Query.
func (q *Q6) FactTable() string { return ch.TOrderLine }

// Columns implements olap.Query.
func (q *Q6) Columns() []int { return []int{ch.OLDeliveryD, ch.OLQuantity, ch.OLAmount} }

// Prepare implements olap.Query.
func (q *Q6) Prepare() (olap.Exec, int64) {
	e := &q6Exec{dateLo: q.DateLo, dateHi: q.DateHi, qtyLo: q.QtyLo, qtyHi: q.QtyHi}
	if e.dateHi == 0 {
		e.dateHi = 1 << 62
	}
	if e.qtyHi == 0 {
		e.qtyLo, e.qtyHi = 1, 100000
	}
	return e, 0
}

type q6Exec struct {
	dateLo, dateHi, qtyLo, qtyHi int64
}

type q6Local struct {
	*q6Exec
	revenue float64
	count   int64
}

func (e *q6Exec) NewLocal() olap.Local { return &q6Local{q6Exec: e} }

func (l *q6Local) Consume(b olap.Block) {
	dates, qtys, amounts := b.Cols[0], b.Cols[1], b.Cols[2]
	for i := 0; i < b.N; i++ {
		d, q := dates[i], qtys[i]
		if d >= l.dateLo && d < l.dateHi && q >= l.qtyLo && q <= l.qtyHi {
			l.revenue += columnar.DecodeFloat(amounts[i])
			l.count++
		}
	}
}

func (e *q6Exec) Merge(locals []olap.Local) olap.Result {
	var revenue float64
	var count int64
	for _, l := range locals {
		ql := l.(*q6Local)
		revenue += ql.revenue
		count += ql.count
	}
	return olap.Result{
		Cols: []string{"revenue", "count"},
		Rows: [][]float64{{revenue, float64(count)}},
	}
}

// Q19 is CH-benCHmark query 19 (LIKE removed, §5.3): a fact-dimension hash
// join of OrderLine with Item under price and quantity brackets, summing
// revenue. The build side (Item) is broadcast to every probe socket,
// which the cost model charges (§5.3: "the OLAP engine opts for
// broadcast-based join for CH-Q19"). Golden twin of ch.Q19Plan.
type Q19 struct {
	DB *ch.DB
	// Brackets; zero values default to (qty in [1,10], price in [1,100]).
	QtyLo, QtyHi     int64
	PriceLo, PriceHi float64
}

// Name implements olap.Query.
func (q *Q19) Name() string { return "Q19" }

// Class implements olap.Query.
func (q *Q19) Class() costmodel.WorkClass { return costmodel.JoinProbe }

// FactTable implements olap.Query.
func (q *Q19) FactTable() string { return ch.TOrderLine }

// Columns implements olap.Query.
func (q *Q19) Columns() []int { return []int{ch.OLIID, ch.OLQuantity, ch.OLAmount} }

// Prepare implements olap.Query: builds the item hash table from the item
// table's active instance (dimension tables are not updated by the
// transactional workload).
func (q *Q19) Prepare() (olap.Exec, int64) {
	qtyLo, qtyHi := q.QtyLo, q.QtyHi
	if qtyHi == 0 {
		qtyLo, qtyHi = 1, 10
	}
	priceLo, priceHi := q.PriceLo, q.PriceHi
	if priceHi == 0 {
		priceLo, priceHi = 1, 100
	}
	it := q.DB.Item.Table()
	rows := it.Rows()
	build := make(map[int64]float64, rows)
	for r := int64(0); r < rows; r++ {
		price := columnar.DecodeFloat(it.ReadActive(r, ch.IPrice))
		if price >= priceLo && price <= priceHi {
			build[it.ReadActive(r, ch.IID)] = price
		}
	}
	// Two 8-byte words per build row (key, price).
	buildBytes := rows * 2 * columnar.WordBytes
	return &q19Exec{build: build, qtyLo: qtyLo, qtyHi: qtyHi}, buildBytes
}

type q19Exec struct {
	build        map[int64]float64
	qtyLo, qtyHi int64
}

type q19Local struct {
	*q19Exec
	revenue float64
	matches int64
}

func (e *q19Exec) NewLocal() olap.Local { return &q19Local{q19Exec: e} }

func (l *q19Local) Consume(b olap.Block) {
	items, qtys, amounts := b.Cols[0], b.Cols[1], b.Cols[2]
	for i := 0; i < b.N; i++ {
		q := qtys[i]
		if q < l.qtyLo || q > l.qtyHi {
			continue
		}
		if _, ok := l.build[items[i]]; ok {
			l.revenue += columnar.DecodeFloat(amounts[i])
			l.matches++
		}
	}
}

func (e *q19Exec) Merge(locals []olap.Local) olap.Result {
	var revenue float64
	var matches int64
	for _, l := range locals {
		ql := l.(*q19Local)
		revenue += ql.revenue
		matches += ql.matches
	}
	return olap.Result{
		Cols: []string{"revenue", "matches"},
		Rows: [][]float64{{revenue, float64(matches)}},
	}
}
