package golden

import (
	"sort"

	"elastichtap/internal/ch"
	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
)

// Q3 is CH-benCHmark query 3 (simplified): revenue of undelivered orders —
// OrderLine inner-joined with Orders on the composite order key, with
// o_entry_d projected from the dimension into the group key — grouped per
// order, ordered by revenue descending, top-N. Output shape, broadcast
// accounting and float arithmetic mirror the builder plan ch.Q3Plan
// exactly; this hand-coded executor is its golden reference.
type Q3 struct {
	DB *ch.DB
	// State filters qualifying warehouses by w_state; empty keeps all of
	// them (the builder plan covers the empty-State form).
	State string
	// TopN bounds the result (default 10).
	TopN int
}

// Name implements olap.Query.
func (q *Q3) Name() string { return "Q3" }

// Class implements olap.Query: the join projects o_entry_d per matched
// row, so it is a payload join, not an existence probe.
func (q *Q3) Class() costmodel.WorkClass { return costmodel.JoinProject }

// FactTable implements olap.Query.
func (q *Q3) FactTable() string { return ch.TOrderLine }

// Columns implements olap.Query.
func (q *Q3) Columns() []int { return []int{ch.OLWID, ch.OLDID, ch.OLOID, ch.OLAmount} }

// Prepare implements olap.Query: builds the undelivered-order hash table
// (OrderKey → entry date) over the orders dimension.
func (q *Q3) Prepare() (olap.Exec, int64) {
	topN := q.TopN
	if topN <= 0 {
		topN = 10
	}
	// CH's Q3 qualifies customers by c_state; our schema stores state on
	// the warehouse, so a non-empty State qualifies warehouses instead.
	wOK := map[int64]bool{}
	wt := q.DB.Warehouse.Table()
	stateCol := wt.Schema().MustColumn("w_state")
	for r := int64(0); r < wt.Rows(); r++ {
		if q.State == "" || wt.DecodeValue(stateCol, wt.ReadActive(r, stateCol)) == q.State {
			wOK[wt.ReadActive(r, ch.WID)] = true
		}
	}
	// Undelivered orders from qualifying warehouses.
	ot := q.DB.Orders.Table()
	orders := make(map[uint64]int64, 1024) // OrderKey -> entry date
	for r := int64(0); r < ot.Rows(); r++ {
		if ot.ReadActive(r, ch.OCarrierID) != 0 {
			continue
		}
		w := ot.ReadActive(r, ch.OWID)
		if !wOK[w] {
			continue
		}
		k := ch.OrderKey(w, ot.ReadActive(r, ch.ODID), ot.ReadActive(r, ch.OID))
		orders[k] = ot.ReadActive(r, ch.OEntryD)
	}
	// Broadcast accounting mirrors the builder's join: every dimension row
	// read charges its touched columns — three keys, the carrier predicate
	// and the entry-date payload. Like the builder, a complete secondary
	// index over the never-updated carrier column narrows the read set to
	// the Eq postings, and the cost model is charged for the narrowed scan.
	buildBytes := narrowedScan(q.DB.Orders, ch.OCarrierID, 0) * 5 * columnar.WordBytes
	return &q3Exec{orders: orders, topN: topN}, buildBytes
}

type q3Exec struct {
	orders map[uint64]int64
	topN   int
}

type q3Local struct {
	*q3Exec
	revenue map[uint64]float64
}

func (e *q3Exec) NewLocal() olap.Local {
	return &q3Local{q3Exec: e, revenue: map[uint64]float64{}}
}

func (l *q3Local) Consume(b olap.Block) {
	wids, dids, oids, amounts := b.Cols[0], b.Cols[1], b.Cols[2], b.Cols[3]
	for i := 0; i < b.N; i++ {
		k := ch.OrderKey(wids[i], dids[i], oids[i])
		if _, ok := l.orders[k]; ok {
			l.revenue[k] += columnar.DecodeFloat(amounts[i])
		}
	}
}

// Merge combines per-morsel revenue partials in morsel order (bitwise
// deterministic, like the builder's merge), then applies the ordered
// top-k over the fully merged rows.
func (e *q3Exec) Merge(locals []olap.Local) olap.Result {
	total := map[uint64]float64{}
	for _, l := range locals {
		for k, v := range l.(*q3Local).revenue {
			total[k] += v
		}
	}
	rows := make([][]float64, 0, len(total))
	for k, rev := range total {
		// Unpack OrderKey(w, d, o) = (w*100+d)<<40 | o.
		o := int64(k & (1<<40 - 1))
		wd := int64(k >> 40)
		rows = append(rows, []float64{
			float64(wd / 100), float64(wd % 100), float64(o),
			float64(e.orders[k]), rev,
		})
	}
	res := olap.Result{
		Cols:       []string{"ol_w_id", "ol_d_id", "ol_o_id", "o_entry_d", "revenue"},
		SortedRows: int64(len(rows)),
	}
	res.Rows = olap.SortRows(rows, olap.Order{Col: 4, Desc: true}, e.topN)
	return res
}

// Q12 is CH-benCHmark query 12 (simplified): per order-line-count bucket,
// count delivered lines split into high/low priority by carrier — an
// OrderLine-Orders join projecting o_carrier_id and o_ol_cnt. Output
// shape, broadcast accounting and arithmetic mirror the builder plan
// ch.Q12Plan exactly; this hand-coded executor is its golden reference.
type Q12 struct {
	DB *ch.DB
	// DeliveredSince filters ol_delivery_d >= DeliveredSince.
	DeliveredSince int64
}

// Name implements olap.Query.
func (q *Q12) Name() string { return "Q12" }

// Class implements olap.Query: the join projects carrier and line-count
// payload per matched row.
func (q *Q12) Class() costmodel.WorkClass { return costmodel.JoinProject }

// FactTable implements olap.Query.
func (q *Q12) FactTable() string { return ch.TOrderLine }

// Columns implements olap.Query.
func (q *Q12) Columns() []int { return []int{ch.OLDeliveryD, ch.OLWID, ch.OLDID, ch.OLOID} }

// Prepare implements olap.Query.
func (q *Q12) Prepare() (olap.Exec, int64) {
	ot := q.DB.Orders.Table()
	carrier := make(map[uint64]int64, ot.Rows())
	cnt := make(map[uint64]int64, ot.Rows())
	for r := int64(0); r < ot.Rows(); r++ {
		k := ch.OrderKey(ot.ReadActive(r, ch.OWID), ot.ReadActive(r, ch.ODID), ot.ReadActive(r, ch.OID))
		carrier[k] = ot.ReadActive(r, ch.OCarrierID)
		cnt[k] = ot.ReadActive(r, ch.OOlCnt)
	}
	// Broadcast accounting mirrors the builder's join: three key columns
	// plus the carrier and line-count payloads per dimension row.
	buildBytes := ot.Rows() * 5 * columnar.WordBytes
	return &q12Exec{carrier: carrier, cnt: cnt, since: q.DeliveredSince}, buildBytes
}

type q12Exec struct {
	carrier, cnt map[uint64]int64
	since        int64
}

type q12Local struct {
	*q12Exec
	high, low map[int64]int64
}

func (e *q12Exec) NewLocal() olap.Local {
	return &q12Local{q12Exec: e, high: map[int64]int64{}, low: map[int64]int64{}}
}

func (l *q12Local) Consume(b olap.Block) {
	deliv, wids, dids, oids := b.Cols[0], b.Cols[1], b.Cols[2], b.Cols[3]
	for i := 0; i < b.N; i++ {
		if deliv[i] < l.since {
			continue
		}
		k := ch.OrderKey(wids[i], dids[i], oids[i])
		car, ok := l.carrier[k]
		if !ok {
			continue
		}
		bucket := l.cnt[k]
		// Carriers 1-2 are "high priority" in CH's simplification.
		if car == 1 || car == 2 {
			l.high[bucket]++
		} else {
			l.low[bucket]++
		}
	}
}

func (e *q12Exec) Merge(locals []olap.Local) olap.Result {
	high, low := map[int64]int64{}, map[int64]int64{}
	for _, l := range locals {
		ql := l.(*q12Local)
		for k, v := range ql.high {
			high[k] += v
		}
		for k, v := range ql.low {
			low[k] += v
		}
	}
	seen := map[int64]struct{}{}
	for k := range high {
		seen[k] = struct{}{}
	}
	for k := range low {
		seen[k] = struct{}{}
	}
	keys := make([]int64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	res := olap.Result{Cols: []string{"o_ol_cnt", "high_line_count", "low_line_count"}}
	for _, k := range keys {
		res.Rows = append(res.Rows, []float64{float64(k), float64(high[k]), float64(low[k])})
	}
	return res
}

// Q18 is CH-benCHmark query 18 (simplified): large-volume orders —
// OrderLine grouped by the composite order key with revenue and line
// counts, HAVING revenue above a threshold, ordered by revenue descending,
// top-N. Output shape and float arithmetic mirror the builder plan
// ch.Q18Plan exactly; this hand-coded executor is its golden reference.
type Q18 struct {
	DB *ch.DB
	// MinRevenue keeps orders with sum(ol_amount) strictly above it
	// (default 200, the CH threshold).
	MinRevenue float64
	// TopN bounds the result (default 100).
	TopN int
}

// Name implements olap.Query.
func (q *Q18) Name() string { return "Q18" }

// Class implements olap.Query.
func (q *Q18) Class() costmodel.WorkClass { return costmodel.ScanGroupBy }

// FactTable implements olap.Query.
func (q *Q18) FactTable() string { return ch.TOrderLine }

// Columns implements olap.Query.
func (q *Q18) Columns() []int { return []int{ch.OLWID, ch.OLDID, ch.OLOID, ch.OLAmount} }

// Prepare implements olap.Query: no build side — Q18 is a pure
// group-by/having/top-k over the fact table.
func (q *Q18) Prepare() (olap.Exec, int64) {
	minRev := q.MinRevenue
	if minRev <= 0 {
		minRev = 200
	}
	topN := q.TopN
	if topN <= 0 {
		topN = 100
	}
	return &q18Exec{minRev: minRev, topN: topN}, 0
}

type q18Exec struct {
	minRev float64
	topN   int
}

type q18Group struct {
	sum   float64
	lines int64
}

type q18Local struct {
	groups map[[3]int64]*q18Group
}

func (e *q18Exec) NewLocal() olap.Local {
	return &q18Local{groups: map[[3]int64]*q18Group{}}
}

func (l *q18Local) Consume(b olap.Block) {
	wids, dids, oids, amounts := b.Cols[0], b.Cols[1], b.Cols[2], b.Cols[3]
	for i := 0; i < b.N; i++ {
		k := [3]int64{wids[i], dids[i], oids[i]}
		g := l.groups[k]
		if g == nil {
			g = &q18Group{}
			l.groups[k] = g
		}
		g.sum += columnar.DecodeFloat(amounts[i])
		g.lines++
	}
}

// Merge combines per-morsel partials in morsel order — each group's
// revenue adds in the same sequence the builder's merge uses, so sums are
// bitwise identical — then filters on the HAVING threshold and applies
// the ordered top-k over fully merged rows.
func (e *q18Exec) Merge(locals []olap.Local) olap.Result {
	total := map[[3]int64]*q18Group{}
	for _, l := range locals {
		for k, g := range l.(*q18Local).groups {
			t := total[k]
			if t == nil {
				t = &q18Group{}
				total[k] = t
			}
			t.sum += g.sum
			t.lines += g.lines
		}
	}
	rows := make([][]float64, 0, len(total))
	for k, g := range total {
		if g.sum > e.minRev {
			rows = append(rows, []float64{
				float64(k[0]), float64(k[1]), float64(k[2]), g.sum, float64(g.lines),
			})
		}
	}
	res := olap.Result{
		Cols:       []string{"ol_w_id", "ol_d_id", "ol_o_id", "revenue", "lines"},
		SortedRows: int64(len(rows)),
	}
	res.Rows = olap.SortRows(rows, olap.Order{Col: 3, Desc: true}, e.topN)
	return res
}
