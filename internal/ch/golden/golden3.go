package golden

import (
	"sort"

	"elastichtap/internal/ch"
	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
)

// Golden twins of the graph-join plans in internal/ch/graphplans.go:
// Q2, Q5 and Q7 join three to five relations, so they pin down not just
// the builder's arithmetic but the greedy join ordering's invariant that
// plan order never changes results, build accounting, or output shape.

// narrowedScan mirrors the builder's build-side index prefilter
// accounting: an Eq predicate on a never-updated indexed dimension
// column narrows the build scan to the posting list, and the cost model
// is charged for the narrowed scan; otherwise the full row count is
// charged.
func narrowedScan(h *oltp.TableHandle, col int, v int64) int64 {
	t := h.Table()
	if t.ColumnUpdateCount(col) == 0 && h.Sec != nil {
		if post, wm, ok := h.Sec.Lookup(col, v); ok && wm == t.Rows() {
			return post.Count()
		}
	}
	return t.Rows()
}

// europeRegions resolves the region keys named "EUROPE" plus the
// build-bytes charge for scanning the region dimension (narrowed by the
// r_name index, two words per row: key and predicate column), mirroring
// the builder's region build in Q2Plan/Q5Plan.
func europeRegions(db *ch.DB) (map[int64]bool, int64) {
	rt := db.Region.Table()
	euro := map[int64]bool{}
	code, ok := rt.Dict(ch.RName).Lookup("EUROPE")
	if !ok {
		return euro, rt.Rows() * 2 * columnar.WordBytes
	}
	for r := int64(0); r < rt.Rows(); r++ {
		if rt.ReadActive(r, ch.RName) == code {
			euro[rt.ReadActive(r, ch.RRegionkey)] = true
		}
	}
	return euro, narrowedScan(db.Region, ch.RName, code) * 2 * columnar.WordBytes
}

// Q2 is CH-benCHmark query 2 (simplified): stock within a quantity
// bracket joined through supplier → nation → region restricted to
// EUROPE, grouped per supplier nation with count/min-quantity/
// avg-balance aggregates. Golden twin of ch.Q2Plan.
type Q2 struct {
	DB *ch.DB
	// QtyLo/QtyHi bracket s_quantity; QtyHi = 0 defaults to [10, 40].
	QtyLo, QtyHi int64
}

// Name implements olap.Query.
func (q *Q2) Name() string { return "Q2" }

// Class implements olap.Query: the supplier join projects nation key and
// balance payload per matched row.
func (q *Q2) Class() costmodel.WorkClass { return costmodel.JoinProject }

// FactTable implements olap.Query: Q2's fact is the stock table.
func (q *Q2) FactTable() string { return ch.TStock }

// Columns implements olap.Query.
func (q *Q2) Columns() []int { return []int{ch.SQuantity, ch.SSuSuppkey} }

type q2Supplier struct {
	nation int64
	acct   float64
}

// Prepare implements olap.Query: builds the supplier → nation → region
// chain as lookup maps, charging each dimension's touched columns like
// the builder's per-join broadcast accounting (supplier: key plus two
// payloads; nation: key plus region payload; region: key plus name
// predicate, narrowed by the r_name index).
func (q *Q2) Prepare() (olap.Exec, int64) {
	lo, hi := q.QtyLo, q.QtyHi
	if hi == 0 {
		lo, hi = 10, 40
	}
	euro, buildBytes := europeRegions(q.DB)
	nt := q.DB.Nation.Table()
	nations := make(map[int64]int64, nt.Rows())
	for r := int64(0); r < nt.Rows(); r++ {
		nations[nt.ReadActive(r, ch.NNationkey)] = nt.ReadActive(r, ch.NRegionkey)
	}
	st := q.DB.Supplier.Table()
	suppliers := make(map[int64]q2Supplier, st.Rows())
	for r := int64(0); r < st.Rows(); r++ {
		suppliers[st.ReadActive(r, ch.SuSuppkey)] = q2Supplier{
			nation: st.ReadActive(r, ch.SuNationkey),
			acct:   columnar.DecodeFloat(st.ReadActive(r, ch.SuAcctbal)),
		}
	}
	buildBytes += st.Rows()*3*columnar.WordBytes + nt.Rows()*2*columnar.WordBytes
	return &q2Exec{suppliers: suppliers, nations: nations, euro: euro, lo: lo, hi: hi}, buildBytes
}

type q2Exec struct {
	suppliers map[int64]q2Supplier
	nations   map[int64]int64
	euro      map[int64]bool
	lo, hi    int64
}

type q2Group struct {
	stocks int64
	minQty float64
	balSum float64
}

type q2Local struct {
	*q2Exec
	groups map[int64]*q2Group
}

func (e *q2Exec) NewLocal() olap.Local {
	return &q2Local{q2Exec: e, groups: map[int64]*q2Group{}}
}

func (l *q2Local) Consume(b olap.Block) {
	qty, suppkey := b.Cols[0], b.Cols[1]
	for i := 0; i < b.N; i++ {
		if qty[i] < l.lo || qty[i] > l.hi {
			continue
		}
		sp, ok := l.suppliers[suppkey[i]]
		if !ok {
			continue
		}
		rk, ok := l.nations[sp.nation]
		if !ok || !l.euro[rk] {
			continue
		}
		g := l.groups[sp.nation]
		if g == nil {
			g = &q2Group{minQty: float64(qty[i])}
			l.groups[sp.nation] = g
		} else if f := float64(qty[i]); f < g.minQty {
			g.minQty = f
		}
		g.stocks++
		g.balSum += sp.acct
	}
}

// Merge combines per-morsel partials in morsel order — balance sums add
// in the same sequence the builder's merge uses — and emits one row per
// nation in ascending key order; the average divides the merged sum by
// the merged row count, exactly like the builder's Avg.
func (e *q2Exec) Merge(locals []olap.Local) olap.Result {
	total := map[int64]*q2Group{}
	for _, l := range locals {
		for k, g := range l.(*q2Local).groups {
			t := total[k]
			if t == nil {
				t = &q2Group{minQty: g.minQty}
				total[k] = t
			} else if g.minQty < t.minQty {
				t.minQty = g.minQty
			}
			t.stocks += g.stocks
			t.balSum += g.balSum
		}
	}
	keys := make([]int64, 0, len(total))
	for k := range total {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	res := olap.Result{Cols: []string{"su_nationkey", "stocks", "min_qty", "avg_bal"}}
	for _, k := range keys {
		g := total[k]
		res.Rows = append(res.Rows, []float64{
			float64(k), float64(g.stocks), g.minQty, g.balSum / float64(g.stocks),
		})
	}
	return res
}

// Q5 is CH-benCHmark query 5 (simplified): order-line revenue per
// European supplier nation — OrderLine joined with stock, supplier,
// nation and region (EUROPE) and semi-joined with items at or above a
// price floor — ordered by revenue descending. Golden twin of ch.Q5Plan.
type Q5 struct {
	DB *ch.DB
	// MinPrice keeps items with i_price >= MinPrice (<= 0 defaults to 50).
	MinPrice float64
}

// Name implements olap.Query.
func (q *Q5) Name() string { return "Q5" }

// Class implements olap.Query.
func (q *Q5) Class() costmodel.WorkClass { return costmodel.JoinProject }

// FactTable implements olap.Query.
func (q *Q5) FactTable() string { return ch.TOrderLine }

// Columns implements olap.Query.
func (q *Q5) Columns() []int { return []int{ch.OLSupplyWID, ch.OLIID, ch.OLAmount} }

// Prepare implements olap.Query: builds the item semi-join set and the
// stock → supplier → nation → region chain, charging each dimension's
// touched columns like the builder's per-join accounting (item: key plus
// price predicate; stock: two keys plus supplier payload; supplier and
// nation: key plus one payload; region: key plus name predicate,
// narrowed by the r_name index).
func (q *Q5) Prepare() (olap.Exec, int64) {
	minPrice := q.MinPrice
	if minPrice <= 0 {
		minPrice = 50
	}
	it := q.DB.Item.Table()
	items := make(map[int64]struct{}, it.Rows())
	for r := int64(0); r < it.Rows(); r++ {
		if columnar.DecodeFloat(it.ReadActive(r, ch.IPrice)) >= minPrice {
			items[it.ReadActive(r, ch.IID)] = struct{}{}
		}
	}
	st := q.DB.Stock.Table()
	stock := make(map[uint64]int64, st.Rows())
	for r := int64(0); r < st.Rows(); r++ {
		k := ch.StockKey(st.ReadActive(r, ch.SWID), st.ReadActive(r, ch.SIID))
		stock[k] = st.ReadActive(r, ch.SSuSuppkey)
	}
	sup := q.DB.Supplier.Table()
	suppliers := make(map[int64]int64, sup.Rows())
	for r := int64(0); r < sup.Rows(); r++ {
		suppliers[sup.ReadActive(r, ch.SuSuppkey)] = sup.ReadActive(r, ch.SuNationkey)
	}
	nt := q.DB.Nation.Table()
	nations := make(map[int64]int64, nt.Rows())
	for r := int64(0); r < nt.Rows(); r++ {
		nations[nt.ReadActive(r, ch.NNationkey)] = nt.ReadActive(r, ch.NRegionkey)
	}
	euro, regionBytes := europeRegions(q.DB)
	buildBytes := it.Rows()*2*columnar.WordBytes +
		st.Rows()*3*columnar.WordBytes +
		sup.Rows()*2*columnar.WordBytes +
		nt.Rows()*2*columnar.WordBytes +
		regionBytes
	return &q5Exec{items: items, stock: stock, suppliers: suppliers, nations: nations, euro: euro}, buildBytes
}

type q5Exec struct {
	items     map[int64]struct{}
	stock     map[uint64]int64
	suppliers map[int64]int64
	nations   map[int64]int64
	euro      map[int64]bool
}

type q5Group struct {
	revenue float64
	lines   int64
}

type q5Local struct {
	*q5Exec
	groups map[int64]*q5Group
}

func (e *q5Exec) NewLocal() olap.Local {
	return &q5Local{q5Exec: e, groups: map[int64]*q5Group{}}
}

func (l *q5Local) Consume(b olap.Block) {
	sw, iid, amounts := b.Cols[0], b.Cols[1], b.Cols[2]
	for i := 0; i < b.N; i++ {
		if _, ok := l.items[iid[i]]; !ok {
			continue
		}
		sk, ok := l.stock[ch.StockKey(sw[i], iid[i])]
		if !ok {
			continue
		}
		nk, ok := l.suppliers[sk]
		if !ok {
			continue
		}
		rk, ok := l.nations[nk]
		if !ok || !l.euro[rk] {
			continue
		}
		g := l.groups[nk]
		if g == nil {
			g = &q5Group{}
			l.groups[nk] = g
		}
		g.revenue += columnar.DecodeFloat(amounts[i])
		g.lines++
	}
}

// Merge combines per-morsel partials in morsel order, emits one row per
// nation, then fully sorts by revenue descending like the builder's
// ordered (no-limit) output.
func (e *q5Exec) Merge(locals []olap.Local) olap.Result {
	total := map[int64]*q5Group{}
	for _, l := range locals {
		for k, g := range l.(*q5Local).groups {
			t := total[k]
			if t == nil {
				t = &q5Group{}
				total[k] = t
			}
			t.revenue += g.revenue
			t.lines += g.lines
		}
	}
	rows := make([][]float64, 0, len(total))
	for k, g := range total {
		rows = append(rows, []float64{float64(k), g.revenue, float64(g.lines)})
	}
	res := olap.Result{
		Cols:       []string{"su_nationkey", "revenue", "lines"},
		SortedRows: int64(len(rows)),
	}
	res.Rows = olap.SortRows(rows, olap.Order{Col: 1, Desc: true}, 0)
	return res
}

// Q7 is CH-benCHmark query 7 (simplified): shipping volume between
// supplier and customer nations — delivered order lines joined with
// orders, customer, stock and supplier, grouped by the two nation keys.
// Golden twin of ch.Q7Plan.
type Q7 struct {
	DB *ch.DB
	// Since filters ol_delivery_d >= Since (0 keeps everything).
	Since int64
}

// Name implements olap.Query.
func (q *Q7) Name() string { return "Q7" }

// Class implements olap.Query.
func (q *Q7) Class() costmodel.WorkClass { return costmodel.JoinProject }

// FactTable implements olap.Query.
func (q *Q7) FactTable() string { return ch.TOrderLine }

// Columns implements olap.Query.
func (q *Q7) Columns() []int {
	return []int{ch.OLDeliveryD, ch.OLWID, ch.OLDID, ch.OLOID, ch.OLSupplyWID, ch.OLIID, ch.OLAmount}
}

// Prepare implements olap.Query: builds the orders → customer and
// stock → supplier chains, charging each dimension's touched columns
// like the builder's per-join accounting (orders and customer: three
// keys plus one payload; stock: two keys plus one payload; supplier:
// key plus nation payload).
func (q *Q7) Prepare() (olap.Exec, int64) {
	ot := q.DB.Orders.Table()
	orders := make(map[uint64]int64, ot.Rows())
	for r := int64(0); r < ot.Rows(); r++ {
		k := ch.OrderKey(ot.ReadActive(r, ch.OWID), ot.ReadActive(r, ch.ODID), ot.ReadActive(r, ch.OID))
		orders[k] = ot.ReadActive(r, ch.OCID)
	}
	ct := q.DB.Customer.Table()
	customers := make(map[uint64]int64, ct.Rows())
	for r := int64(0); r < ct.Rows(); r++ {
		k := ch.CustomerKey(ct.ReadActive(r, ch.CWID), ct.ReadActive(r, ch.CDID), ct.ReadActive(r, ch.CID))
		customers[k] = ct.ReadActive(r, ch.CNationkey)
	}
	st := q.DB.Stock.Table()
	stock := make(map[uint64]int64, st.Rows())
	for r := int64(0); r < st.Rows(); r++ {
		k := ch.StockKey(st.ReadActive(r, ch.SWID), st.ReadActive(r, ch.SIID))
		stock[k] = st.ReadActive(r, ch.SSuSuppkey)
	}
	sup := q.DB.Supplier.Table()
	suppliers := make(map[int64]int64, sup.Rows())
	for r := int64(0); r < sup.Rows(); r++ {
		suppliers[sup.ReadActive(r, ch.SuSuppkey)] = sup.ReadActive(r, ch.SuNationkey)
	}
	buildBytes := ot.Rows()*4*columnar.WordBytes +
		ct.Rows()*4*columnar.WordBytes +
		st.Rows()*3*columnar.WordBytes +
		sup.Rows()*2*columnar.WordBytes
	return &q7Exec{
		orders: orders, customers: customers, stock: stock,
		suppliers: suppliers, since: q.Since,
	}, buildBytes
}

type q7Exec struct {
	orders    map[uint64]int64
	customers map[uint64]int64
	stock     map[uint64]int64
	suppliers map[int64]int64
	since     int64
}

type q7Local struct {
	*q7Exec
	groups map[[2]int64]*q5Group
}

func (e *q7Exec) NewLocal() olap.Local {
	return &q7Local{q7Exec: e, groups: map[[2]int64]*q5Group{}}
}

func (l *q7Local) Consume(b olap.Block) {
	deliv, wids, dids, oids := b.Cols[0], b.Cols[1], b.Cols[2], b.Cols[3]
	sw, iid, amounts := b.Cols[4], b.Cols[5], b.Cols[6]
	for i := 0; i < b.N; i++ {
		if deliv[i] < l.since {
			continue
		}
		cid, ok := l.orders[ch.OrderKey(wids[i], dids[i], oids[i])]
		if !ok {
			continue
		}
		cn, ok := l.customers[ch.CustomerKey(wids[i], dids[i], cid)]
		if !ok {
			continue
		}
		sk, ok := l.stock[ch.StockKey(sw[i], iid[i])]
		if !ok {
			continue
		}
		sn, ok := l.suppliers[sk]
		if !ok {
			continue
		}
		g := l.groups[[2]int64{sn, cn}]
		if g == nil {
			g = &q5Group{}
			l.groups[[2]int64{sn, cn}] = g
		}
		g.revenue += columnar.DecodeFloat(amounts[i])
		g.lines++
	}
}

// Merge combines per-morsel partials in morsel order and emits one row
// per (supplier nation, customer nation) pair in ascending key order.
func (e *q7Exec) Merge(locals []olap.Local) olap.Result {
	total := map[[2]int64]*q5Group{}
	for _, l := range locals {
		for k, g := range l.(*q7Local).groups {
			t := total[k]
			if t == nil {
				t = &q5Group{}
				total[k] = t
			}
			t.revenue += g.revenue
			t.lines += g.lines
		}
	}
	keys := make([][2]int64, 0, len(total))
	for k := range total {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	res := olap.Result{Cols: []string{"su_nationkey", "c_nationkey", "revenue", "lines"}}
	for _, k := range keys {
		g := total[k]
		res.Rows = append(res.Rows, []float64{float64(k[0]), float64(k[1]), g.revenue, float64(g.lines)})
	}
	return res
}
