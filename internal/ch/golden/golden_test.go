package golden

import (
	"context"
	"math/rand"
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/columnar"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
)

// The oracles themselves are verified here against brute-force scalar
// recomputation over the active instance; builder_golden_test.go (package
// elastichtap) then checks the compiled plans against the oracles. Two
// independent legs keep a shared bug from hiding in the comparison.

func loadTiny(t *testing.T) *ch.DB {
	t.Helper()
	return ch.Load(oltp.NewEngine(), ch.TinySizing(), 1)
}

func execOnActive(t *testing.T, db *ch.DB, q olap.Query) olap.Result {
	t.Helper()
	e := olap.NewEngine(2)
	e.SetPlacement(topology.Placement{PerSocket: []int{0, 4}})
	tab := db.Handle(q.FactTable()).Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{
		{Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0},
	}}
	res, _, err := e.ExecuteContext(context.Background(), q, src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// referenceQ6 computes Q6 by brute force over the active instance.
func referenceQ6(db *ch.DB) (revenue float64, count int64) {
	tab := db.OrderLine.Table()
	for r := int64(0); r < tab.Rows(); r++ {
		q := tab.ReadActive(r, ch.OLQuantity)
		if q >= 1 && q <= 100000 {
			revenue += columnar.DecodeFloat(tab.ReadActive(r, ch.OLAmount))
			count++
		}
	}
	return revenue, count
}

func TestQ6MatchesReference(t *testing.T) {
	db := loadTiny(t)
	res := execOnActive(t, db, &Q6{DB: db})
	wantRev, wantCount := referenceQ6(db)
	if got := res.Rows[0][1]; got != float64(wantCount) {
		t.Fatalf("count = %v, want %d", got, wantCount)
	}
	rev := res.Rows[0][0]
	if diff := rev - wantRev; diff > 1e-6*wantRev || diff < -1e-6*wantRev {
		t.Fatalf("revenue = %v, want %v", rev, wantRev)
	}
}

func TestQ1MatchesReference(t *testing.T) {
	db := loadTiny(t)
	res := execOnActive(t, db, &Q1{DB: db})
	ch.SortResult(&res)

	// Reference group-by.
	tab := db.OrderLine.Table()
	type grp struct {
		qty, amt float64
		cnt      int64
	}
	ref := map[int64]*grp{}
	for r := int64(0); r < tab.Rows(); r++ {
		n := tab.ReadActive(r, ch.OLNumber)
		g := ref[n]
		if g == nil {
			g = &grp{}
			ref[n] = g
		}
		g.qty += float64(tab.ReadActive(r, ch.OLQuantity))
		g.amt += columnar.DecodeFloat(tab.ReadActive(r, ch.OLAmount))
		g.cnt++
	}
	if len(res.Rows) != len(ref) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(ref))
	}
	for _, row := range res.Rows {
		g := ref[int64(row[0])]
		if g == nil {
			t.Fatalf("unexpected group %v", row[0])
		}
		if row[5] != float64(g.cnt) {
			t.Fatalf("group %v count = %v want %d", row[0], row[5], g.cnt)
		}
		if d := row[1] - g.qty; d > 1e-6 || d < -1e-6 {
			t.Fatalf("group %v sum_qty = %v want %v", row[0], row[1], g.qty)
		}
	}
}

func TestQ19MatchesReference(t *testing.T) {
	db := loadTiny(t)
	q := &Q19{DB: db}
	res := execOnActive(t, db, q)

	// Reference join.
	it := db.Item.Table()
	prices := map[int64]float64{}
	for r := int64(0); r < it.Rows(); r++ {
		p := columnar.DecodeFloat(it.ReadActive(r, ch.IPrice))
		if p >= 1 && p <= 100 {
			prices[it.ReadActive(r, ch.IID)] = p
		}
	}
	olt := db.OrderLine.Table()
	var wantRev float64
	var wantMatches int64
	for r := int64(0); r < olt.Rows(); r++ {
		qty := olt.ReadActive(r, ch.OLQuantity)
		if qty < 1 || qty > 10 {
			continue
		}
		if _, ok := prices[olt.ReadActive(r, ch.OLIID)]; ok {
			wantRev += columnar.DecodeFloat(olt.ReadActive(r, ch.OLAmount))
			wantMatches++
		}
	}
	if wantMatches == 0 {
		t.Fatal("reference found no matches; test data too small")
	}
	if got := res.Rows[0][1]; got != float64(wantMatches) {
		t.Fatalf("matches = %v, want %d", got, wantMatches)
	}
	if d := res.Rows[0][0] - wantRev; d > 1e-6*wantRev || d < -1e-6*wantRev {
		t.Fatalf("revenue = %v, want %v", res.Rows[0][0], wantRev)
	}
}

func TestQ3MatchesReference(t *testing.T) {
	db := loadTiny(t)
	// Create undelivered orders.
	mgr := db.Engine.Manager()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 10; i++ {
		if _, err := mgr.RunWithRetry(10, db.NewOrder(rng, 1+int64(i%2))); err != nil {
			t.Fatal(err)
		}
	}
	res := execOnActive(t, db, &Q3{DB: db, TopN: 5})

	// Reference: revenue per undelivered order.
	ot := db.Orders.Table()
	undelivered := map[uint64]bool{}
	for r := int64(0); r < ot.Rows(); r++ {
		if ot.ReadActive(r, ch.OCarrierID) == 0 {
			k := ch.OrderKey(ot.ReadActive(r, ch.OWID), ot.ReadActive(r, ch.ODID), ot.ReadActive(r, ch.OID))
			undelivered[k] = true
		}
	}
	olt := db.OrderLine.Table()
	rev := map[uint64]float64{}
	for r := int64(0); r < olt.Rows(); r++ {
		k := ch.OrderKey(olt.ReadActive(r, ch.OLWID), olt.ReadActive(r, ch.OLDID), olt.ReadActive(r, ch.OLOID))
		if undelivered[k] {
			rev[k] += columnar.DecodeFloat(olt.ReadActive(r, ch.OLAmount))
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("Q3 returned no rows despite undelivered orders")
	}
	if len(res.Rows) > 5 {
		t.Fatalf("TopN violated: %d rows", len(res.Rows))
	}
	// Rows carry (w, d, o, entry_d, revenue), sorted by revenue descending,
	// and must match the reference.
	prev := res.Rows[0][4]
	for _, row := range res.Rows {
		k := ch.OrderKey(int64(row[0]), int64(row[1]), int64(row[2]))
		got := row[4]
		want := rev[k]
		if d := got - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("order %d revenue = %v, want %v", k, got, want)
		}
		if !undelivered[k] {
			t.Fatalf("order %d is delivered but surfaced", k)
		}
		if got > prev {
			t.Fatal("rows not sorted by revenue")
		}
		prev = got
	}
}

func TestQ12MatchesReference(t *testing.T) {
	db := loadTiny(t)
	res := execOnActive(t, db, &Q12{DB: db})

	ot, olt := db.Orders.Table(), db.OrderLine.Table()
	carrier := map[uint64]int64{}
	cnt := map[uint64]int64{}
	for r := int64(0); r < ot.Rows(); r++ {
		k := ch.OrderKey(ot.ReadActive(r, ch.OWID), ot.ReadActive(r, ch.ODID), ot.ReadActive(r, ch.OID))
		carrier[k] = ot.ReadActive(r, ch.OCarrierID)
		cnt[k] = ot.ReadActive(r, ch.OOlCnt)
	}
	high, low := map[int64]int64{}, map[int64]int64{}
	for r := int64(0); r < olt.Rows(); r++ {
		k := ch.OrderKey(olt.ReadActive(r, ch.OLWID), olt.ReadActive(r, ch.OLDID), olt.ReadActive(r, ch.OLOID))
		car, ok := carrier[k]
		if !ok {
			continue
		}
		if car == 1 || car == 2 {
			high[cnt[k]]++
		} else {
			low[cnt[k]]++
		}
	}
	var wantHigh, wantLow, gotHigh, gotLow int64
	for _, v := range high {
		wantHigh += v
	}
	for _, v := range low {
		wantLow += v
	}
	for _, row := range res.Rows {
		gotHigh += int64(row[1])
		gotLow += int64(row[2])
	}
	if gotHigh != wantHigh || gotLow != wantLow {
		t.Fatalf("high/low = %d/%d, want %d/%d", gotHigh, gotLow, wantHigh, wantLow)
	}
}

func TestQ18MatchesReference(t *testing.T) {
	db := loadTiny(t)
	const minRev, topN = 500.0, 7
	res := execOnActive(t, db, &Q18{DB: db, MinRevenue: minRev, TopN: topN})

	// Reference: revenue and line count per order, thresholded.
	olt := db.OrderLine.Table()
	rev := map[uint64]float64{}
	lines := map[uint64]int64{}
	for r := int64(0); r < olt.Rows(); r++ {
		k := ch.OrderKey(olt.ReadActive(r, ch.OLWID), olt.ReadActive(r, ch.OLDID), olt.ReadActive(r, ch.OLOID))
		rev[k] += columnar.DecodeFloat(olt.ReadActive(r, ch.OLAmount))
		lines[k]++
	}
	qualifying := 0
	for _, v := range rev {
		if v > minRev {
			qualifying++
		}
	}
	wantRows := qualifying
	if wantRows > topN {
		wantRows = topN
	}
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d (qualifying %d)", len(res.Rows), wantRows, qualifying)
	}
	prev := res.Rows[0][3]
	for _, row := range res.Rows {
		k := ch.OrderKey(int64(row[0]), int64(row[1]), int64(row[2]))
		if d := row[3] - rev[k]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("order %d revenue = %v, want %v", k, row[3], rev[k])
		}
		if int64(row[4]) != lines[k] {
			t.Fatalf("order %d lines = %v, want %d", k, row[4], lines[k])
		}
		if row[3] <= minRev {
			t.Fatalf("order %d revenue %v below HAVING threshold", k, row[3])
		}
		if row[3] > prev {
			t.Fatal("rows not sorted by revenue")
		}
		prev = row[3]
	}
}
