package ch

import "elastichtap/query"

// CH-benCHmark queries expressed through the graph-shaped join surface
// (query.JoinGraph): Q2, Q5 and Q7 join three to five relations, so the
// planner's greedy join ordering — not the written edge order — decides
// the execution plan. Like the linear-join queries in plans.go, each
// exists as a literal constructor and a parameterized twin registered in
// the per-DB prepared cache.
//
// The TPC-H relations the CH schema grafts onto TPC-C are tiny compared
// to the facts (100 suppliers, 25 nations, 5 regions), so these queries
// stress exactly what the paper's zero-statistics setting needs: chains
// of dimension hops keyed off other dimensions' payloads, with one
// highly selective indexed relation (region = EUROPE) for the planner to
// hoist and for the build-side index prefilter to narrow.

// Q2Plan is CH-Q2 (simplified) as a logical plan: stock within a
// quantity bracket, joined through supplier → nation → region restricted
// to EUROPE, grouped per nation with count/min-quantity/avg-balance
// aggregates. qtyHi = 0 defaults the bracket to [10, 40].
func Q2Plan(qtyLo, qtyHi int64) *query.Plan {
	if qtyHi == 0 {
		qtyLo, qtyHi = 10, 40
	}
	stock := query.Rel(TStock)
	supp := query.Rel(TSupplier)
	nat := query.Rel(TNation)
	reg := query.Rel(TRegion).Filter(query.Eq("r_name", "EUROPE"))
	return query.Scan(TStock).
		Named("Q2").
		Filter(query.Between("s_quantity", qtyLo, qtyHi)).
		JoinGraph(
			query.JoinOn(stock, supp, "s_su_suppkey", "su_suppkey"),
			query.JoinOn(supp, nat, "su_nationkey", "n_nationkey"),
			query.JoinOn(nat, reg, "n_regionkey", "r_regionkey"),
		).
		GroupBy("su_nationkey").
		Agg(
			query.Count().As("stocks"),
			query.Min("s_quantity").As("min_qty"),
			query.Avg("su_acctbal").As("avg_bal"),
		)
}

// Q5Plan is CH-Q5 (simplified) as a logical plan: order-line revenue per
// European supplier nation — OrderLine joined with stock (composite
// warehouse/item key), supplier, nation and region (EUROPE), and
// semi-joined with items priced at or above minPrice, ordered by revenue
// descending. minPrice <= 0 defaults to 50.
//
// The item edge is written last on purpose: under OrderWritten the whole
// stock → supplier → nation → region chain probes before the selective
// item semi-join, while the greedy order hoists item first (its halved
// estimate undercuts the stock fact-sized build) — the clearest
// greedy-beats-written case in the evaluation set.
func Q5Plan(minPrice float64) *query.Plan {
	if minPrice <= 0 {
		minPrice = 50
	}
	fact := query.Rel(TOrderLine)
	stock := query.Rel(TStock)
	supp := query.Rel(TSupplier)
	nat := query.Rel(TNation)
	reg := query.Rel(TRegion).Filter(query.Eq("r_name", "EUROPE"))
	item := query.Rel(TItem).Filter(query.Ge("i_price", minPrice))
	return query.Scan(TOrderLine).
		Named("Q5").
		JoinGraph(
			query.JoinOn(fact, stock, "ol_supply_w_id", "s_w_id", "ol_i_id", "s_i_id"),
			query.JoinOn(stock, supp, "s_su_suppkey", "su_suppkey"),
			query.JoinOn(supp, nat, "su_nationkey", "n_nationkey"),
			query.JoinOn(nat, reg, "n_regionkey", "r_regionkey"),
			query.JoinOn(fact, item, "ol_i_id", "i_id"),
		).
		GroupBy("su_nationkey").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("lines")).
		OrderBy("revenue", true)
}

// Q7Plan is CH-Q7 (simplified) as a logical plan: shipping volume
// between supplier and customer nations — delivered order lines joined
// with orders (composite order key), customer (keyed partly by fact
// columns and partly by the orders join's o_c_id payload), stock and
// supplier, grouped by the two nation keys. since = 0 keeps every
// delivered line.
func Q7Plan(since int64) *query.Plan {
	fact := query.Rel(TOrderLine)
	ords := query.Rel(TOrders)
	cust := query.Rel(TCustomer)
	stock := query.Rel(TStock)
	supp := query.Rel(TSupplier)
	return query.Scan(TOrderLine).
		Named("Q7").
		Filter(query.Ge("ol_delivery_d", since)).
		JoinGraph(
			query.JoinOn(fact, ords, "ol_w_id", "o_w_id", "ol_d_id", "o_d_id", "ol_o_id", "o_id"),
			query.JoinOn(fact, cust, "ol_w_id", "c_w_id", "ol_d_id", "c_d_id"),
			query.JoinOn(ords, cust, "o_c_id", "c_id"),
			query.JoinOn(fact, stock, "ol_supply_w_id", "s_w_id", "ol_i_id", "s_i_id"),
			query.JoinOn(stock, supp, "s_su_suppkey", "su_suppkey"),
		).
		GroupBy("su_nationkey", "c_nationkey").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("lines"))
}

// --- parameterized (prepared) forms ---

// Q2PlanParam is Q2Plan with the quantity bracket as parameters; the
// EUROPE restriction is plan structure and stays fixed.
func Q2PlanParam() *query.Plan {
	stock := query.Rel(TStock)
	supp := query.Rel(TSupplier)
	nat := query.Rel(TNation)
	reg := query.Rel(TRegion).Filter(query.Eq("r_name", "EUROPE"))
	return query.Scan(TStock).
		Named("Q2").
		Filter(query.Between("s_quantity", query.Param("qty_lo"), query.Param("qty_hi"))).
		JoinGraph(
			query.JoinOn(stock, supp, "s_su_suppkey", "su_suppkey"),
			query.JoinOn(supp, nat, "su_nationkey", "n_nationkey"),
			query.JoinOn(nat, reg, "n_regionkey", "r_regionkey"),
		).
		GroupBy("su_nationkey").
		Agg(
			query.Count().As("stocks"),
			query.Min("s_quantity").As("min_qty"),
			query.Avg("su_acctbal").As("avg_bal"),
		)
}

// Q2Args carries Q2's parameter values; qtyHi = 0 defaults the bracket
// to [10, 40], exactly like Q2Plan.
func Q2Args(qtyLo, qtyHi int64) query.Args {
	if qtyHi == 0 {
		qtyLo, qtyHi = 10, 40
	}
	return query.Args{"qty_lo": qtyLo, "qty_hi": qtyHi}
}

// Q5PlanParam is Q5Plan with the item price floor as a parameter — a
// build-side join predicate, so stamping exercises the multi-join
// siteJoin path.
func Q5PlanParam() *query.Plan {
	fact := query.Rel(TOrderLine)
	stock := query.Rel(TStock)
	supp := query.Rel(TSupplier)
	nat := query.Rel(TNation)
	reg := query.Rel(TRegion).Filter(query.Eq("r_name", "EUROPE"))
	item := query.Rel(TItem).Filter(query.Ge("i_price", query.Param("min_price")))
	return query.Scan(TOrderLine).
		Named("Q5").
		JoinGraph(
			query.JoinOn(fact, stock, "ol_supply_w_id", "s_w_id", "ol_i_id", "s_i_id"),
			query.JoinOn(stock, supp, "s_su_suppkey", "su_suppkey"),
			query.JoinOn(supp, nat, "su_nationkey", "n_nationkey"),
			query.JoinOn(nat, reg, "n_regionkey", "r_regionkey"),
			query.JoinOn(fact, item, "ol_i_id", "i_id"),
		).
		GroupBy("su_nationkey").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("lines")).
		OrderBy("revenue", true)
}

// Q5Args carries Q5's parameter values; minPrice <= 0 defaults to 50,
// exactly like Q5Plan.
func Q5Args(minPrice float64) query.Args {
	if minPrice <= 0 {
		minPrice = 50
	}
	return query.Args{"min_price": minPrice}
}

// Q7PlanParam is Q7Plan with the delivery cutoff as a parameter.
func Q7PlanParam() *query.Plan {
	fact := query.Rel(TOrderLine)
	ords := query.Rel(TOrders)
	cust := query.Rel(TCustomer)
	stock := query.Rel(TStock)
	supp := query.Rel(TSupplier)
	return query.Scan(TOrderLine).
		Named("Q7").
		Filter(query.Ge("ol_delivery_d", query.Param("since"))).
		JoinGraph(
			query.JoinOn(fact, ords, "ol_w_id", "o_w_id", "ol_d_id", "o_d_id", "ol_o_id", "o_id"),
			query.JoinOn(fact, cust, "ol_w_id", "c_w_id", "ol_d_id", "c_d_id"),
			query.JoinOn(ords, cust, "o_c_id", "c_id"),
			query.JoinOn(fact, stock, "ol_supply_w_id", "s_w_id", "ol_i_id", "s_i_id"),
			query.JoinOn(stock, supp, "s_su_suppkey", "su_suppkey"),
		).
		GroupBy("su_nationkey", "c_nationkey").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("lines"))
}

// Q7Args carries Q7's parameter values; since = 0 keeps everything.
func Q7Args(since int64) query.Args {
	return query.Args{"since": since}
}
