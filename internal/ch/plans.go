package ch

import "elastichtap/query"

// This file re-expresses the paper's evaluation queries as logical plans
// for the declarative builder. The hand-coded executors in queries.go are
// kept as golden references: builder_golden_test.go (package elastichtap)
// asserts the compiled plans reproduce their results and statistics
// exactly.

// Q1Plan is CH-Q1 as a logical plan: scan-filter-groupby over OrderLine
// grouping by ol_number. minDeliveryD mirrors Q1.MinDeliveryD (rows with
// ol_delivery_d > minDeliveryD qualify; 0 keeps everything).
func Q1Plan(minDeliveryD int64) *query.Plan {
	return query.Scan(TOrderLine).
		Named("Q1").
		Filter(query.Gt("ol_delivery_d", minDeliveryD)).
		GroupBy("ol_number").
		Agg(
			query.Sum("ol_quantity").As("sum_qty"),
			query.Sum("ol_amount").As("sum_amount"),
			query.Avg("ol_quantity").As("avg_qty"),
			query.Avg("ol_amount").As("avg_amount"),
			query.Count().As("count_order"),
		)
}

// Q6Plan is CH-Q6 as a logical plan: scan-filter-reduce over OrderLine
// within delivery-date and quantity brackets. Zero values default exactly
// like Q6: dateHi=0 selects everything, qtyHi=0 selects qty in [1,100000].
func Q6Plan(dateLo, dateHi, qtyLo, qtyHi int64) *query.Plan {
	if dateHi == 0 {
		dateHi = 1 << 62
	}
	if qtyHi == 0 {
		qtyLo, qtyHi = 1, 100000
	}
	return query.Scan(TOrderLine).
		Named("Q6").
		Filter(
			query.Ge("ol_delivery_d", dateLo),
			query.Lt("ol_delivery_d", dateHi),
			query.Between("ol_quantity", qtyLo, qtyHi),
		).
		Agg(
			query.Sum("ol_amount").As("revenue"),
			query.Count().As("count"),
		)
}

// Q19Plan is CH-Q19 (LIKE removed, §5.3) as a logical plan: OrderLine
// semi-joined with Item under price and quantity brackets, summing
// revenue. Zero values default exactly like Q19: qty in [1,10], price in
// [1,100].
func Q19Plan(qtyLo, qtyHi int64, priceLo, priceHi float64) *query.Plan {
	if qtyHi == 0 {
		qtyLo, qtyHi = 1, 10
	}
	if priceHi == 0 {
		priceLo, priceHi = 1, 100
	}
	return query.Scan(TOrderLine).
		Named("Q19").
		Filter(query.Between("ol_quantity", qtyLo, qtyHi)).
		SemiJoin(TItem, "ol_i_id", "i_id",
			query.Between("i_price", priceLo, priceHi)).
		Agg(
			query.Sum("ol_amount").As("revenue"),
			query.Count().As("matches"),
		)
}
