package ch

import (
	"fmt"

	"elastichtap/query"
)

// This file re-expresses the paper's evaluation queries as logical plans
// for the declarative builder; these compiled forms are what production
// runs. The hand-coded executors are kept as test-only golden references
// in internal/ch/golden: builder_golden_test.go (package elastichtap)
// asserts the compiled plans reproduce their results and statistics
// exactly.
//
// Each query exists in two forms: the literal constructors (Q1Plan and
// friends) bake their values into the plan, while the parameterized
// constructors (Q1PlanParam and friends) carry query.Param placeholders
// in every value position a client would vary. The parameterized forms
// bind once per database (DB.PreparedPlan) and are stamped with QxArgs
// values per execution — the facade's Q1..Q19 constructors and QuerySet
// go through this cache, so the evaluation queries pay catalog lookup,
// predicate typing and kernel selection exactly once per DB.

// Q1Plan is CH-Q1 as a logical plan: scan-filter-groupby over OrderLine
// grouping by ol_number. minDeliveryD mirrors Q1.MinDeliveryD (rows with
// ol_delivery_d > minDeliveryD qualify; 0 keeps everything).
func Q1Plan(minDeliveryD int64) *query.Plan {
	return query.Scan(TOrderLine).
		Named("Q1").
		Filter(query.Gt("ol_delivery_d", minDeliveryD)).
		GroupBy("ol_number").
		Agg(
			query.Sum("ol_quantity").As("sum_qty"),
			query.Sum("ol_amount").As("sum_amount"),
			query.Avg("ol_quantity").As("avg_qty"),
			query.Avg("ol_amount").As("avg_amount"),
			query.Count().As("count_order"),
		)
}

// Q6Plan is CH-Q6 as a logical plan: scan-filter-reduce over OrderLine
// within delivery-date and quantity brackets. Zero values default exactly
// like Q6: dateHi=0 selects everything, qtyHi=0 selects qty in [1,100000].
func Q6Plan(dateLo, dateHi, qtyLo, qtyHi int64) *query.Plan {
	if dateHi == 0 {
		dateHi = 1 << 62
	}
	if qtyHi == 0 {
		qtyLo, qtyHi = 1, 100000
	}
	return query.Scan(TOrderLine).
		Named("Q6").
		Filter(
			query.Ge("ol_delivery_d", dateLo),
			query.Lt("ol_delivery_d", dateHi),
			query.Between("ol_quantity", qtyLo, qtyHi),
		).
		Agg(
			query.Sum("ol_amount").As("revenue"),
			query.Count().As("count"),
		)
}

// Q3Plan is CH-Q3 (simplified) as a logical plan: OrderLine inner-joined
// with Orders on the composite order key, keeping undelivered orders
// (o_carrier_id = 0), grouping per order with the dimension's o_entry_d
// projected into the group key, ordered by revenue descending, top-N.
// topN <= 0 defaults to 10, exactly like Q3.TopN.
func Q3Plan(topN int) *query.Plan {
	if topN <= 0 {
		topN = 10
	}
	ol := query.Rel(TOrderLine)
	orders := query.Rel(TOrders).Filter(query.Eq("o_carrier_id", 0))
	return query.Scan(TOrderLine).
		Named("Q3").
		JoinGraph(query.JoinOn(ol, orders,
			"ol_w_id", "o_w_id", "ol_d_id", "o_d_id", "ol_o_id", "o_id")).
		GroupBy("ol_w_id", "ol_d_id", "ol_o_id", "o_entry_d").
		Agg(query.Sum("ol_amount").As("revenue")).
		OrderBy("revenue", true).
		Limit(topN)
}

// Q12Plan is CH-Q12 (simplified) as a logical plan: delivered order lines
// joined with Orders, bucketed by the order's line count, split into
// high-priority (carriers 1-2) and low-priority counts with conditional
// aggregation. deliveredSince mirrors Q12.DeliveredSince.
func Q12Plan(deliveredSince int64) *query.Plan {
	highPriority := query.Between("o_carrier_id", 1, 2)
	ol := query.Rel(TOrderLine)
	orders := query.Rel(TOrders)
	return query.Scan(TOrderLine).
		Named("Q12").
		Filter(query.Ge("ol_delivery_d", deliveredSince)).
		JoinGraph(query.JoinOn(ol, orders,
			"ol_w_id", "o_w_id", "ol_d_id", "o_d_id", "ol_o_id", "o_id")).
		GroupBy("o_ol_cnt").
		Agg(
			query.CountIf(highPriority).As("high_line_count"),
			query.CountIf(query.Not(highPriority)).As("low_line_count"),
		)
}

// Q18Plan is CH-Q18 (simplified) as a logical plan: OrderLine grouped by
// the composite order key, keeping orders whose revenue exceeds
// minRevenue (HAVING), ordered by revenue descending, top-N. Zero values
// default exactly like Q18: minRevenue 200, topN 100.
func Q18Plan(minRevenue float64, topN int) *query.Plan {
	if minRevenue <= 0 {
		minRevenue = 200
	}
	if topN <= 0 {
		topN = 100
	}
	return query.Scan(TOrderLine).
		Named("Q18").
		GroupBy("ol_w_id", "ol_d_id", "ol_o_id").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("lines")).
		Having(query.Gt("revenue", minRevenue)).
		OrderBy("revenue", true).
		Limit(topN)
}

// Q19Plan is CH-Q19 (LIKE removed, §5.3) as a logical plan: OrderLine
// semi-joined with Item under price and quantity brackets, summing
// revenue. Zero values default exactly like Q19: qty in [1,10], price in
// [1,100].
func Q19Plan(qtyLo, qtyHi int64, priceLo, priceHi float64) *query.Plan {
	if qtyHi == 0 {
		qtyLo, qtyHi = 1, 10
	}
	if priceHi == 0 {
		priceLo, priceHi = 1, 100
	}
	ol := query.Rel(TOrderLine)
	item := query.Rel(TItem).Filter(query.Between("i_price", priceLo, priceHi))
	return query.Scan(TOrderLine).
		Named("Q19").
		Filter(query.Between("ol_quantity", qtyLo, qtyHi)).
		JoinGraph(query.JoinOn(ol, item, "ol_i_id", "i_id")).
		Agg(
			query.Sum("ol_amount").As("revenue"),
			query.Count().As("matches"),
		)
}

// --- parameterized (prepared) forms ---

// Q1PlanParam is Q1Plan with the delivery-date cutoff as a parameter.
func Q1PlanParam() *query.Plan {
	return query.Scan(TOrderLine).
		Named("Q1").
		Filter(query.Gt("ol_delivery_d", query.Param("min_delivery_d"))).
		GroupBy("ol_number").
		Agg(
			query.Sum("ol_quantity").As("sum_qty"),
			query.Sum("ol_amount").As("sum_amount"),
			query.Avg("ol_quantity").As("avg_qty"),
			query.Avg("ol_amount").As("avg_amount"),
			query.Count().As("count_order"),
		)
}

// Q1Args carries Q1's parameter values; zero defaults exactly like
// Q1Plan(0).
func Q1Args(minDeliveryD int64) query.Args {
	return query.Args{"min_delivery_d": minDeliveryD}
}

// Q6PlanParam is Q6Plan with the date and quantity brackets as
// parameters.
func Q6PlanParam() *query.Plan {
	return query.Scan(TOrderLine).
		Named("Q6").
		Filter(
			query.Ge("ol_delivery_d", query.Param("date_lo")),
			query.Lt("ol_delivery_d", query.Param("date_hi")),
			query.Between("ol_quantity", query.Param("qty_lo"), query.Param("qty_hi")),
		).
		Agg(
			query.Sum("ol_amount").As("revenue"),
			query.Count().As("count"),
		)
}

// Q6Args carries Q6's parameter values with the same zero-value defaults
// as Q6Plan: dateHi=0 selects everything, qtyHi=0 selects qty in
// [1,100000].
func Q6Args(dateLo, dateHi, qtyLo, qtyHi int64) query.Args {
	if dateHi == 0 {
		dateHi = 1 << 62
	}
	if qtyHi == 0 {
		qtyLo, qtyHi = 1, 100000
	}
	return query.Args{"date_lo": dateLo, "date_hi": dateHi, "qty_lo": qtyLo, "qty_hi": qtyHi}
}

// Q3PlanParam is Q3Plan with the carrier filter as a parameter; the
// top-N limit is plan structure and stays fixed at Q3's default of 10.
func Q3PlanParam() *query.Plan {
	ol := query.Rel(TOrderLine)
	orders := query.Rel(TOrders).Filter(query.Eq("o_carrier_id", query.Param("carrier")))
	return query.Scan(TOrderLine).
		Named("Q3").
		JoinGraph(query.JoinOn(ol, orders,
			"ol_w_id", "o_w_id", "ol_d_id", "o_d_id", "ol_o_id", "o_id")).
		GroupBy("ol_w_id", "ol_d_id", "ol_o_id", "o_entry_d").
		Agg(query.Sum("ol_amount").As("revenue")).
		OrderBy("revenue", true).
		Limit(10)
}

// Q3Args carries Q3's parameter values; carrier 0 keeps undelivered
// orders, Q3's default.
func Q3Args(carrier int64) query.Args {
	return query.Args{"carrier": carrier}
}

// Q12PlanParam is Q12Plan with the delivered-since cutoff as a
// parameter; the priority brackets are fixed by the benchmark.
func Q12PlanParam() *query.Plan {
	highPriority := query.Between("o_carrier_id", 1, 2)
	ol := query.Rel(TOrderLine)
	orders := query.Rel(TOrders)
	return query.Scan(TOrderLine).
		Named("Q12").
		Filter(query.Ge("ol_delivery_d", query.Param("delivered_since"))).
		JoinGraph(query.JoinOn(ol, orders,
			"ol_w_id", "o_w_id", "ol_d_id", "o_d_id", "ol_o_id", "o_id")).
		GroupBy("o_ol_cnt").
		Agg(
			query.CountIf(highPriority).As("high_line_count"),
			query.CountIf(query.Not(highPriority)).As("low_line_count"),
		)
}

// Q12Args carries Q12's parameter values.
func Q12Args(deliveredSince int64) query.Args {
	return query.Args{"delivered_since": deliveredSince}
}

// Q18PlanParam is Q18Plan with the revenue threshold as a parameter (a
// Having site, stamped in float space); top-N stays fixed at Q18's
// default of 100.
func Q18PlanParam() *query.Plan {
	return query.Scan(TOrderLine).
		Named("Q18").
		GroupBy("ol_w_id", "ol_d_id", "ol_o_id").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("lines")).
		Having(query.Gt("revenue", query.Param("min_revenue"))).
		OrderBy("revenue", true).
		Limit(100)
}

// Q18Args carries Q18's parameter values; minRevenue <= 0 defaults to
// 200, exactly like Q18Plan.
func Q18Args(minRevenue float64) query.Args {
	if minRevenue <= 0 {
		minRevenue = 200
	}
	return query.Args{"min_revenue": minRevenue}
}

// Q19PlanParam is Q19Plan with the quantity and price brackets as
// parameters (the price pair lands on the semi-join's build side).
func Q19PlanParam() *query.Plan {
	ol := query.Rel(TOrderLine)
	item := query.Rel(TItem).
		Filter(query.Between("i_price", query.Param("price_lo"), query.Param("price_hi")))
	return query.Scan(TOrderLine).
		Named("Q19").
		Filter(query.Between("ol_quantity", query.Param("qty_lo"), query.Param("qty_hi"))).
		JoinGraph(query.JoinOn(ol, item, "ol_i_id", "i_id")).
		Agg(
			query.Sum("ol_amount").As("revenue"),
			query.Count().As("matches"),
		)
}

// Q19Args carries Q19's parameter values with Q19Plan's zero defaults:
// qty in [1,10], price in [1,100].
func Q19Args(qtyLo, qtyHi int64, priceLo, priceHi float64) query.Args {
	if qtyHi == 0 {
		qtyLo, qtyHi = 1, 10
	}
	if priceHi == 0 {
		priceLo, priceHi = 1, 100
	}
	return query.Args{"qty_lo": qtyLo, "qty_hi": qtyHi, "price_lo": priceLo, "price_hi": priceHi}
}

// paramPlans names every parameterized evaluation plan for the per-DB
// prepared cache.
var paramPlans = map[string]func() *query.Plan{
	"Q1":  Q1PlanParam,
	"Q2":  Q2PlanParam,
	"Q3":  Q3PlanParam,
	"Q5":  Q5PlanParam,
	"Q6":  Q6PlanParam,
	"Q7":  Q7PlanParam,
	"Q12": Q12PlanParam,
	"Q18": Q18PlanParam,
	"Q19": Q19PlanParam,
}

// PreparedPlan returns the named evaluation query ("Q1".."Q19") compiled
// as a prepared statement, binding it against this database on first use
// and caching it for the DB's lifetime. Stamp the returned statement with
// query.Compiled.WithArgs (QxArgs builds the default argument sets);
// stamping clones, so concurrent callers may share the cache freely.
func (db *DB) PreparedPlan(name string) (*query.Compiled, error) {
	build, ok := paramPlans[name]
	if !ok {
		return nil, fmt.Errorf("ch: no parameterized plan %q", name)
	}
	db.prepMu.Lock()
	defer db.prepMu.Unlock()
	if c, ok := db.prepared[name]; ok {
		return c, nil
	}
	c, err := build().Bind(db)
	if err != nil {
		return nil, err
	}
	if db.prepared == nil {
		db.prepared = make(map[string]*query.Compiled)
	}
	db.prepared[name] = c
	return c, nil
}

// Q3PlanCarrier is Q3Plan with the default top-10 but an explicit
// carrier filter — the literal twin of Q3PlanParam, used by the golden
// tests to compare stamped executions against fresh binds.
func Q3PlanCarrier(carrier int64) *query.Plan {
	ol := query.Rel(TOrderLine)
	orders := query.Rel(TOrders).Filter(query.Eq("o_carrier_id", carrier))
	return query.Scan(TOrderLine).
		Named("Q3").
		JoinGraph(query.JoinOn(ol, orders,
			"ol_w_id", "o_w_id", "ol_d_id", "o_d_id", "ol_o_id", "o_id")).
		GroupBy("ol_w_id", "ol_d_id", "ol_o_id", "o_entry_d").
		Agg(query.Sum("ol_amount").As("revenue")).
		OrderBy("revenue", true).
		Limit(10)
}
