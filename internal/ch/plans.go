package ch

import "elastichtap/query"

// This file re-expresses the paper's evaluation queries as logical plans
// for the declarative builder. The hand-coded executors in queries.go are
// kept as golden references: builder_golden_test.go (package elastichtap)
// asserts the compiled plans reproduce their results and statistics
// exactly.

// Q1Plan is CH-Q1 as a logical plan: scan-filter-groupby over OrderLine
// grouping by ol_number. minDeliveryD mirrors Q1.MinDeliveryD (rows with
// ol_delivery_d > minDeliveryD qualify; 0 keeps everything).
func Q1Plan(minDeliveryD int64) *query.Plan {
	return query.Scan(TOrderLine).
		Named("Q1").
		Filter(query.Gt("ol_delivery_d", minDeliveryD)).
		GroupBy("ol_number").
		Agg(
			query.Sum("ol_quantity").As("sum_qty"),
			query.Sum("ol_amount").As("sum_amount"),
			query.Avg("ol_quantity").As("avg_qty"),
			query.Avg("ol_amount").As("avg_amount"),
			query.Count().As("count_order"),
		)
}

// Q6Plan is CH-Q6 as a logical plan: scan-filter-reduce over OrderLine
// within delivery-date and quantity brackets. Zero values default exactly
// like Q6: dateHi=0 selects everything, qtyHi=0 selects qty in [1,100000].
func Q6Plan(dateLo, dateHi, qtyLo, qtyHi int64) *query.Plan {
	if dateHi == 0 {
		dateHi = 1 << 62
	}
	if qtyHi == 0 {
		qtyLo, qtyHi = 1, 100000
	}
	return query.Scan(TOrderLine).
		Named("Q6").
		Filter(
			query.Ge("ol_delivery_d", dateLo),
			query.Lt("ol_delivery_d", dateHi),
			query.Between("ol_quantity", qtyLo, qtyHi),
		).
		Agg(
			query.Sum("ol_amount").As("revenue"),
			query.Count().As("count"),
		)
}

// Q3Plan is CH-Q3 (simplified) as a logical plan: OrderLine inner-joined
// with Orders on the composite order key, keeping undelivered orders
// (o_carrier_id = 0), grouping per order with the dimension's o_entry_d
// projected into the group key, ordered by revenue descending, top-N.
// topN <= 0 defaults to 10, exactly like Q3.TopN.
func Q3Plan(topN int) *query.Plan {
	if topN <= 0 {
		topN = 10
	}
	return query.Scan(TOrderLine).
		Named("Q3").
		Join(TOrders, "ol_w_id", "o_w_id", "o_entry_d").
		On("ol_d_id", "o_d_id").
		On("ol_o_id", "o_id").
		JoinFilter(query.Eq("o_carrier_id", 0)).
		GroupBy("ol_w_id", "ol_d_id", "ol_o_id", "o_entry_d").
		Agg(query.Sum("ol_amount").As("revenue")).
		OrderBy("revenue", true).
		Limit(topN)
}

// Q12Plan is CH-Q12 (simplified) as a logical plan: delivered order lines
// joined with Orders, bucketed by the order's line count, split into
// high-priority (carriers 1-2) and low-priority counts with conditional
// aggregation. deliveredSince mirrors Q12.DeliveredSince.
func Q12Plan(deliveredSince int64) *query.Plan {
	highPriority := query.Between("o_carrier_id", 1, 2)
	return query.Scan(TOrderLine).
		Named("Q12").
		Filter(query.Ge("ol_delivery_d", deliveredSince)).
		Join(TOrders, "ol_w_id", "o_w_id", "o_carrier_id", "o_ol_cnt").
		On("ol_d_id", "o_d_id").
		On("ol_o_id", "o_id").
		GroupBy("o_ol_cnt").
		Agg(
			query.CountIf(highPriority).As("high_line_count"),
			query.CountIf(query.Not(highPriority)).As("low_line_count"),
		)
}

// Q18Plan is CH-Q18 (simplified) as a logical plan: OrderLine grouped by
// the composite order key, keeping orders whose revenue exceeds
// minRevenue (HAVING), ordered by revenue descending, top-N. Zero values
// default exactly like Q18: minRevenue 200, topN 100.
func Q18Plan(minRevenue float64, topN int) *query.Plan {
	if minRevenue <= 0 {
		minRevenue = 200
	}
	if topN <= 0 {
		topN = 100
	}
	return query.Scan(TOrderLine).
		Named("Q18").
		GroupBy("ol_w_id", "ol_d_id", "ol_o_id").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count().As("lines")).
		Having(query.Gt("revenue", minRevenue)).
		OrderBy("revenue", true).
		Limit(topN)
}

// Q19Plan is CH-Q19 (LIKE removed, §5.3) as a logical plan: OrderLine
// semi-joined with Item under price and quantity brackets, summing
// revenue. Zero values default exactly like Q19: qty in [1,10], price in
// [1,100].
func Q19Plan(qtyLo, qtyHi int64, priceLo, priceHi float64) *query.Plan {
	if qtyHi == 0 {
		qtyLo, qtyHi = 1, 10
	}
	if priceHi == 0 {
		priceLo, priceHi = 1, 100
	}
	return query.Scan(TOrderLine).
		Named("Q19").
		Filter(query.Between("ol_quantity", qtyLo, qtyHi)).
		SemiJoin(TItem, "ol_i_id", "i_id",
			query.Between("i_price", priceLo, priceHi)).
		Agg(
			query.Sum("ol_amount").As("revenue"),
			query.Count().As("matches"),
		)
}
