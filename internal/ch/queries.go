package ch

import (
	"sort"

	"elastichtap/internal/olap"
	"elastichtap/query"
)

// The paper evaluates CH-Q1 and CH-Q6 (scan-heavy) and CH-Q19 (join-heavy)
// with 100% date selectivity — "the worst case for join and groupby
// operations" (§5.1) — and the LIKE predicate removed from Q19 (§5.3).
// All evaluation queries run as builder-compiled plans (plans.go); the
// hand-coded executors that used to live here are now test-only oracles
// in internal/ch/golden, kept solely so the golden and benchmark suites
// can measure the compiled kernels against them.

// QuerySet returns the analytical mix the scheduler sweeps: the paper's
// evaluation trio (§5.3) in execution order Q1, Q6, Q19, followed by Q3,
// Q12 and Q18 — a payload join with ordered top-k, a conditional-
// aggregation join, and a group-by/having/top-k — so experiments and
// cmd/chbench exercise every work class the cost model distinguishes.
// Every member is a builder-compiled prepared statement stamped with its
// default arguments.
func (db *DB) QuerySet() []olap.Query {
	return []olap.Query{
		db.Stamped("Q1", Q1Args(0)), db.Stamped("Q6", Q6Args(0, 0, 0, 0)), db.Stamped("Q19", Q19Args(0, 0, 0, 0)),
		db.Stamped("Q3", Q3Args(0)), db.Stamped("Q12", Q12Args(0)), db.Stamped("Q18", Q18Args(0)),
	}
}

// Stamped returns the named prepared evaluation query (bound once per DB,
// see PreparedPlan) stamped with args, deferring errors into the returned
// query (they surface when the runner checks Err), so constructor-style
// call sites stay infallible.
func (db *DB) Stamped(name string, args query.Args) olap.Query {
	c, err := db.PreparedPlan(name)
	if err != nil {
		return olap.Invalid{QueryName: name, Reason: err}
	}
	q, err := c.WithArgs(args)
	if err != nil {
		return olap.Invalid{QueryName: name, Reason: err}
	}
	return q
}

// SortResult orders result rows by their first column (test helper for
// comparing results whose group emission order differs by construction;
// the engine's own merge is deterministic — partials combine in morsel
// order regardless of worker interleaving).
func SortResult(r *olap.Result) {
	sort.Slice(r.Rows, func(i, j int) bool { return r.Rows[i][0] < r.Rows[j][0] })
}
