package ch

import (
	"sort"

	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
)

// Beyond the builder-compiled evaluation queries (plans.go), this file
// implements the CH-benCHmark queries the declarative builder cannot yet
// express: Q4 needs a row-dependent join predicate (delivery date vs the
// matched order's entry date) and Q14 a conditional numerator over a
// decoded string payload. They stay hand-coded until the builder grows
// those shapes.

// Q4 is CH-benCHmark query 4 (simplified): count orders by line count
// where at least one order line was delivered on/after the order's entry
// date — a semi-join of orders with orderline.
type Q4 struct{ DB *DB }

// Name implements olap.Query.
func (q *Q4) Name() string { return "Q4" }

// Class implements olap.Query.
func (q *Q4) Class() costmodel.WorkClass { return costmodel.JoinProbe }

// FactTable implements olap.Query.
func (q *Q4) FactTable() string { return TOrderLine }

// Columns implements olap.Query.
func (q *Q4) Columns() []int { return []int{OLOID, OLDID, OLWID, OLDeliveryD} }

// Prepare implements olap.Query.
func (q *Q4) Prepare() (olap.Exec, int64) {
	ot := q.DB.Orders.Table()
	entry := make(map[uint64]int64, ot.Rows())
	olcnt := make(map[uint64]int64, ot.Rows())
	for r := int64(0); r < ot.Rows(); r++ {
		k := OrderKey(ot.ReadActive(r, OWID), ot.ReadActive(r, ODID), ot.ReadActive(r, OID))
		entry[k] = ot.ReadActive(r, OEntryD)
		olcnt[k] = ot.ReadActive(r, OOlCnt)
	}
	buildBytes := int64(len(entry)) * 3 * columnar.WordBytes
	return &q4Exec{entry: entry, olcnt: olcnt}, buildBytes
}

type q4Exec struct {
	entry, olcnt map[uint64]int64
}

type q4Local struct {
	*q4Exec
	qualifies map[uint64]struct{}
}

func (e *q4Exec) NewLocal() olap.Local {
	return &q4Local{q4Exec: e, qualifies: map[uint64]struct{}{}}
}

func (l *q4Local) Consume(b olap.Block) {
	oids, dids, wids, deliv := b.Cols[0], b.Cols[1], b.Cols[2], b.Cols[3]
	for i := 0; i < b.N; i++ {
		k := OrderKey(wids[i], dids[i], oids[i])
		if ed, ok := l.entry[k]; ok && deliv[i] >= ed {
			l.qualifies[k] = struct{}{}
		}
	}
}

func (e *q4Exec) Merge(locals []olap.Local) olap.Result {
	all := map[uint64]struct{}{}
	for _, l := range locals {
		for k := range l.(*q4Local).qualifies {
			all[k] = struct{}{}
		}
	}
	counts := map[int64]int64{}
	for k := range all {
		counts[e.olcnt[k]]++
	}
	res := olap.Result{Cols: []string{"o_ol_cnt", "order_count"}}
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		res.Rows = append(res.Rows, []float64{float64(k), float64(counts[k])})
	}
	return res
}

// Q14 is CH-benCHmark query 14: the promotional-revenue share — 100 *
// sum(amount where item is promotional) / sum(amount), joining OrderLine
// with Item.
type Q14 struct {
	DB *DB
	// PromoPrefix marks promotional items by i_data prefix; the generator
	// writes "ORIGINAL" into ~10% of items (default "ORIGINAL").
	PromoPrefix string
}

// Name implements olap.Query.
func (q *Q14) Name() string { return "Q14" }

// Class implements olap.Query.
func (q *Q14) Class() costmodel.WorkClass { return costmodel.JoinProbe }

// FactTable implements olap.Query.
func (q *Q14) FactTable() string { return TOrderLine }

// Columns implements olap.Query.
func (q *Q14) Columns() []int { return []int{OLIID, OLAmount} }

// Prepare implements olap.Query.
func (q *Q14) Prepare() (olap.Exec, int64) {
	prefix := q.PromoPrefix
	if prefix == "" {
		prefix = "ORIGINAL"
	}
	it := q.DB.Item.Table()
	promo := make(map[int64]bool, it.Rows())
	for r := int64(0); r < it.Rows(); r++ {
		data, _ := it.DecodeValue(IData, it.ReadActive(r, IData)).(string)
		promo[it.ReadActive(r, IID)] = len(data) >= len(prefix) && data[:len(prefix)] == prefix
	}
	buildBytes := it.Rows() * 2 * columnar.WordBytes
	return &q14Exec{promo: promo}, buildBytes
}

type q14Exec struct{ promo map[int64]bool }

type q14Local struct {
	*q14Exec
	promoRev, totalRev float64
}

func (e *q14Exec) NewLocal() olap.Local { return &q14Local{q14Exec: e} }

func (l *q14Local) Consume(b olap.Block) {
	items, amounts := b.Cols[0], b.Cols[1]
	for i := 0; i < b.N; i++ {
		isPromo, ok := l.promo[items[i]]
		if !ok {
			continue
		}
		amt := columnar.DecodeFloat(amounts[i])
		l.totalRev += amt
		if isPromo {
			l.promoRev += amt
		}
	}
}

func (e *q14Exec) Merge(locals []olap.Local) olap.Result {
	var promo, total float64
	for _, l := range locals {
		ql := l.(*q14Local)
		promo += ql.promoRev
		total += ql.totalRev
	}
	share := 0.0
	if total > 0 {
		share = 100 * promo / total
	}
	return olap.Result{
		Cols: []string{"promo_revenue_pct", "promo_revenue", "total_revenue"},
		Rows: [][]float64{{share, promo, total}},
	}
}

// ExtendedQuerySet returns all implemented analytical queries: the six
// builder-compiled evaluation queries plus the hand-coded Q4 and Q14.
func (db *DB) ExtendedQuerySet() []olap.Query {
	return []olap.Query{
		db.Stamped("Q1", Q1Args(0)), db.Stamped("Q3", Q3Args(0)), &Q4{DB: db},
		db.Stamped("Q6", Q6Args(0, 0, 0, 0)), db.Stamped("Q12", Q12Args(0)), &Q14{DB: db},
		db.Stamped("Q18", Q18Args(0)), db.Stamped("Q19", Q19Args(0, 0, 0, 0)),
	}
}
