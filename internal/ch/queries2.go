package ch

import (
	"sort"

	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
)

// Beyond the paper's Q1/Q6/Q19, this file implements further CH-benCHmark
// queries expressible as a single fact-table scan with broadcast build
// sides, so downstream users have a representative analytical mix.

// Q3 is CH-benCHmark query 3 (simplified): revenue of undelivered orders —
// OrderLine inner-joined with Orders on the composite order key, with
// o_entry_d projected from the dimension into the group key — grouped per
// order, ordered by revenue descending, top-N. Output shape, broadcast
// accounting and float arithmetic mirror the builder plan Q3Plan exactly;
// this hand-coded executor is its golden reference.
type Q3 struct {
	DB *DB
	// State filters qualifying warehouses by w_state; empty keeps all of
	// them (the builder plan covers the empty-State form).
	State string
	// TopN bounds the result (default 10).
	TopN int
}

// Name implements olap.Query.
func (q *Q3) Name() string { return "Q3" }

// Class implements olap.Query: the join projects o_entry_d per matched
// row, so it is a payload join, not an existence probe.
func (q *Q3) Class() costmodel.WorkClass { return costmodel.JoinProject }

// FactTable implements olap.Query.
func (q *Q3) FactTable() string { return TOrderLine }

// Columns implements olap.Query.
func (q *Q3) Columns() []int { return []int{OLWID, OLDID, OLOID, OLAmount} }

// Prepare implements olap.Query: builds the undelivered-order hash table
// (OrderKey → entry date) over the orders dimension.
func (q *Q3) Prepare() (olap.Exec, int64) {
	topN := q.TopN
	if topN <= 0 {
		topN = 10
	}
	// CH's Q3 qualifies customers by c_state; our schema stores state on
	// the warehouse, so a non-empty State qualifies warehouses instead.
	wOK := map[int64]bool{}
	wt := q.DB.Warehouse.Table()
	stateCol := wt.Schema().MustColumn("w_state")
	for r := int64(0); r < wt.Rows(); r++ {
		if q.State == "" || wt.DecodeValue(stateCol, wt.ReadActive(r, stateCol)) == q.State {
			wOK[wt.ReadActive(r, WID)] = true
		}
	}
	// Undelivered orders from qualifying warehouses.
	ot := q.DB.Orders.Table()
	orders := make(map[uint64]int64, 1024) // OrderKey -> entry date
	for r := int64(0); r < ot.Rows(); r++ {
		if ot.ReadActive(r, OCarrierID) != 0 {
			continue
		}
		w := ot.ReadActive(r, OWID)
		if !wOK[w] {
			continue
		}
		k := OrderKey(w, ot.ReadActive(r, ODID), ot.ReadActive(r, OID))
		orders[k] = ot.ReadActive(r, OEntryD)
	}
	// Broadcast accounting mirrors the builder's join: every dimension row
	// charges its touched columns — three keys, the carrier predicate and
	// the entry-date payload.
	buildBytes := ot.Rows() * 5 * columnar.WordBytes
	return &q3Exec{orders: orders, topN: topN}, buildBytes
}

type q3Exec struct {
	orders map[uint64]int64
	topN   int
}

type q3Local struct {
	*q3Exec
	revenue map[uint64]float64
}

func (e *q3Exec) NewLocal() olap.Local {
	return &q3Local{q3Exec: e, revenue: map[uint64]float64{}}
}

func (l *q3Local) Consume(b olap.Block) {
	wids, dids, oids, amounts := b.Cols[0], b.Cols[1], b.Cols[2], b.Cols[3]
	for i := 0; i < b.N; i++ {
		k := OrderKey(wids[i], dids[i], oids[i])
		if _, ok := l.orders[k]; ok {
			l.revenue[k] += columnar.DecodeFloat(amounts[i])
		}
	}
}

// Merge combines per-morsel revenue partials in morsel order (bitwise
// deterministic, like the builder's merge), then applies the ordered
// top-k over the fully merged rows.
func (e *q3Exec) Merge(locals []olap.Local) olap.Result {
	total := map[uint64]float64{}
	for _, l := range locals {
		for k, v := range l.(*q3Local).revenue {
			total[k] += v
		}
	}
	rows := make([][]float64, 0, len(total))
	for k, rev := range total {
		// Unpack OrderKey(w, d, o) = (w*100+d)<<40 | o.
		o := int64(k & (1<<40 - 1))
		wd := int64(k >> 40)
		rows = append(rows, []float64{
			float64(wd / 100), float64(wd % 100), float64(o),
			float64(e.orders[k]), rev,
		})
	}
	res := olap.Result{
		Cols:       []string{"ol_w_id", "ol_d_id", "ol_o_id", "o_entry_d", "revenue"},
		SortedRows: int64(len(rows)),
	}
	res.Rows = olap.SortRows(rows, olap.Order{Col: 4, Desc: true}, e.topN)
	return res
}

// Q4 is CH-benCHmark query 4 (simplified): count orders by line count
// where at least one order line was delivered on/after the order's entry
// date — a semi-join of orders with orderline.
type Q4 struct{ DB *DB }

// Name implements olap.Query.
func (q *Q4) Name() string { return "Q4" }

// Class implements olap.Query.
func (q *Q4) Class() costmodel.WorkClass { return costmodel.JoinProbe }

// FactTable implements olap.Query.
func (q *Q4) FactTable() string { return TOrderLine }

// Columns implements olap.Query.
func (q *Q4) Columns() []int { return []int{OLOID, OLDID, OLWID, OLDeliveryD} }

// Prepare implements olap.Query.
func (q *Q4) Prepare() (olap.Exec, int64) {
	ot := q.DB.Orders.Table()
	entry := make(map[uint64]int64, ot.Rows())
	olcnt := make(map[uint64]int64, ot.Rows())
	for r := int64(0); r < ot.Rows(); r++ {
		k := OrderKey(ot.ReadActive(r, OWID), ot.ReadActive(r, ODID), ot.ReadActive(r, OID))
		entry[k] = ot.ReadActive(r, OEntryD)
		olcnt[k] = ot.ReadActive(r, OOlCnt)
	}
	buildBytes := int64(len(entry)) * 3 * columnar.WordBytes
	return &q4Exec{entry: entry, olcnt: olcnt}, buildBytes
}

type q4Exec struct {
	entry, olcnt map[uint64]int64
}

type q4Local struct {
	*q4Exec
	qualifies map[uint64]struct{}
}

func (e *q4Exec) NewLocal() olap.Local {
	return &q4Local{q4Exec: e, qualifies: map[uint64]struct{}{}}
}

func (l *q4Local) Consume(b olap.Block) {
	oids, dids, wids, deliv := b.Cols[0], b.Cols[1], b.Cols[2], b.Cols[3]
	for i := 0; i < b.N; i++ {
		k := OrderKey(wids[i], dids[i], oids[i])
		if ed, ok := l.entry[k]; ok && deliv[i] >= ed {
			l.qualifies[k] = struct{}{}
		}
	}
}

func (e *q4Exec) Merge(locals []olap.Local) olap.Result {
	all := map[uint64]struct{}{}
	for _, l := range locals {
		for k := range l.(*q4Local).qualifies {
			all[k] = struct{}{}
		}
	}
	counts := map[int64]int64{}
	for k := range all {
		counts[e.olcnt[k]]++
	}
	res := olap.Result{Cols: []string{"o_ol_cnt", "order_count"}}
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		res.Rows = append(res.Rows, []float64{float64(k), float64(counts[k])})
	}
	return res
}

// Q12 is CH-benCHmark query 12 (simplified): per order-line-count bucket,
// count delivered lines split into high/low priority by carrier — an
// OrderLine-Orders join projecting o_carrier_id and o_ol_cnt. Output
// shape, broadcast accounting and arithmetic mirror the builder plan
// Q12Plan exactly; this hand-coded executor is its golden reference.
type Q12 struct {
	DB *DB
	// DeliveredSince filters ol_delivery_d >= DeliveredSince.
	DeliveredSince int64
}

// Name implements olap.Query.
func (q *Q12) Name() string { return "Q12" }

// Class implements olap.Query: the join projects carrier and line-count
// payload per matched row.
func (q *Q12) Class() costmodel.WorkClass { return costmodel.JoinProject }

// FactTable implements olap.Query.
func (q *Q12) FactTable() string { return TOrderLine }

// Columns implements olap.Query.
func (q *Q12) Columns() []int { return []int{OLDeliveryD, OLWID, OLDID, OLOID} }

// Prepare implements olap.Query.
func (q *Q12) Prepare() (olap.Exec, int64) {
	ot := q.DB.Orders.Table()
	carrier := make(map[uint64]int64, ot.Rows())
	cnt := make(map[uint64]int64, ot.Rows())
	for r := int64(0); r < ot.Rows(); r++ {
		k := OrderKey(ot.ReadActive(r, OWID), ot.ReadActive(r, ODID), ot.ReadActive(r, OID))
		carrier[k] = ot.ReadActive(r, OCarrierID)
		cnt[k] = ot.ReadActive(r, OOlCnt)
	}
	// Broadcast accounting mirrors the builder's join: three key columns
	// plus the carrier and line-count payloads per dimension row.
	buildBytes := ot.Rows() * 5 * columnar.WordBytes
	return &q12Exec{carrier: carrier, cnt: cnt, since: q.DeliveredSince}, buildBytes
}

type q12Exec struct {
	carrier, cnt map[uint64]int64
	since        int64
}

type q12Local struct {
	*q12Exec
	high, low map[int64]int64
}

func (e *q12Exec) NewLocal() olap.Local {
	return &q12Local{q12Exec: e, high: map[int64]int64{}, low: map[int64]int64{}}
}

func (l *q12Local) Consume(b olap.Block) {
	deliv, wids, dids, oids := b.Cols[0], b.Cols[1], b.Cols[2], b.Cols[3]
	for i := 0; i < b.N; i++ {
		if deliv[i] < l.since {
			continue
		}
		k := OrderKey(wids[i], dids[i], oids[i])
		car, ok := l.carrier[k]
		if !ok {
			continue
		}
		bucket := l.cnt[k]
		// Carriers 1-2 are "high priority" in CH's simplification.
		if car == 1 || car == 2 {
			l.high[bucket]++
		} else {
			l.low[bucket]++
		}
	}
}

func (e *q12Exec) Merge(locals []olap.Local) olap.Result {
	high, low := map[int64]int64{}, map[int64]int64{}
	for _, l := range locals {
		ql := l.(*q12Local)
		for k, v := range ql.high {
			high[k] += v
		}
		for k, v := range ql.low {
			low[k] += v
		}
	}
	seen := map[int64]struct{}{}
	for k := range high {
		seen[k] = struct{}{}
	}
	for k := range low {
		seen[k] = struct{}{}
	}
	keys := make([]int64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	res := olap.Result{Cols: []string{"o_ol_cnt", "high_line_count", "low_line_count"}}
	for _, k := range keys {
		res.Rows = append(res.Rows, []float64{float64(k), float64(high[k]), float64(low[k])})
	}
	return res
}

// Q18 is CH-benCHmark query 18 (simplified): large-volume orders —
// OrderLine grouped by the composite order key with revenue and line
// counts, HAVING revenue above a threshold, ordered by revenue descending,
// top-N. Output shape and float arithmetic mirror the builder plan
// Q18Plan exactly; this hand-coded executor is its golden reference.
type Q18 struct {
	DB *DB
	// MinRevenue keeps orders with sum(ol_amount) strictly above it
	// (default 200, the CH threshold).
	MinRevenue float64
	// TopN bounds the result (default 100).
	TopN int
}

// Name implements olap.Query.
func (q *Q18) Name() string { return "Q18" }

// Class implements olap.Query.
func (q *Q18) Class() costmodel.WorkClass { return costmodel.ScanGroupBy }

// FactTable implements olap.Query.
func (q *Q18) FactTable() string { return TOrderLine }

// Columns implements olap.Query.
func (q *Q18) Columns() []int { return []int{OLWID, OLDID, OLOID, OLAmount} }

// Prepare implements olap.Query: no build side — Q18 is a pure
// group-by/having/top-k over the fact table.
func (q *Q18) Prepare() (olap.Exec, int64) {
	minRev := q.MinRevenue
	if minRev <= 0 {
		minRev = 200
	}
	topN := q.TopN
	if topN <= 0 {
		topN = 100
	}
	return &q18Exec{minRev: minRev, topN: topN}, 0
}

type q18Exec struct {
	minRev float64
	topN   int
}

type q18Group struct {
	sum   float64
	lines int64
}

type q18Local struct {
	groups map[[3]int64]*q18Group
}

func (e *q18Exec) NewLocal() olap.Local {
	return &q18Local{groups: map[[3]int64]*q18Group{}}
}

func (l *q18Local) Consume(b olap.Block) {
	wids, dids, oids, amounts := b.Cols[0], b.Cols[1], b.Cols[2], b.Cols[3]
	for i := 0; i < b.N; i++ {
		k := [3]int64{wids[i], dids[i], oids[i]}
		g := l.groups[k]
		if g == nil {
			g = &q18Group{}
			l.groups[k] = g
		}
		g.sum += columnar.DecodeFloat(amounts[i])
		g.lines++
	}
}

// Merge combines per-morsel partials in morsel order — each group's
// revenue adds in the same sequence the builder's merge uses, so sums are
// bitwise identical — then filters on the HAVING threshold and applies
// the ordered top-k over fully merged rows.
func (e *q18Exec) Merge(locals []olap.Local) olap.Result {
	total := map[[3]int64]*q18Group{}
	for _, l := range locals {
		for k, g := range l.(*q18Local).groups {
			t := total[k]
			if t == nil {
				t = &q18Group{}
				total[k] = t
			}
			t.sum += g.sum
			t.lines += g.lines
		}
	}
	rows := make([][]float64, 0, len(total))
	for k, g := range total {
		if g.sum > e.minRev {
			rows = append(rows, []float64{
				float64(k[0]), float64(k[1]), float64(k[2]), g.sum, float64(g.lines),
			})
		}
	}
	res := olap.Result{
		Cols:       []string{"ol_w_id", "ol_d_id", "ol_o_id", "revenue", "lines"},
		SortedRows: int64(len(rows)),
	}
	res.Rows = olap.SortRows(rows, olap.Order{Col: 3, Desc: true}, e.topN)
	return res
}

// Q14 is CH-benCHmark query 14: the promotional-revenue share — 100 *
// sum(amount where item is promotional) / sum(amount), joining OrderLine
// with Item.
type Q14 struct {
	DB *DB
	// PromoPrefix marks promotional items by i_data prefix; the generator
	// writes "ORIGINAL" into ~10% of items (default "ORIGINAL").
	PromoPrefix string
}

// Name implements olap.Query.
func (q *Q14) Name() string { return "Q14" }

// Class implements olap.Query.
func (q *Q14) Class() costmodel.WorkClass { return costmodel.JoinProbe }

// FactTable implements olap.Query.
func (q *Q14) FactTable() string { return TOrderLine }

// Columns implements olap.Query.
func (q *Q14) Columns() []int { return []int{OLIID, OLAmount} }

// Prepare implements olap.Query.
func (q *Q14) Prepare() (olap.Exec, int64) {
	prefix := q.PromoPrefix
	if prefix == "" {
		prefix = "ORIGINAL"
	}
	it := q.DB.Item.Table()
	promo := make(map[int64]bool, it.Rows())
	for r := int64(0); r < it.Rows(); r++ {
		data, _ := it.DecodeValue(IData, it.ReadActive(r, IData)).(string)
		promo[it.ReadActive(r, IID)] = len(data) >= len(prefix) && data[:len(prefix)] == prefix
	}
	buildBytes := it.Rows() * 2 * columnar.WordBytes
	return &q14Exec{promo: promo}, buildBytes
}

type q14Exec struct{ promo map[int64]bool }

type q14Local struct {
	*q14Exec
	promoRev, totalRev float64
}

func (e *q14Exec) NewLocal() olap.Local { return &q14Local{q14Exec: e} }

func (l *q14Local) Consume(b olap.Block) {
	items, amounts := b.Cols[0], b.Cols[1]
	for i := 0; i < b.N; i++ {
		isPromo, ok := l.promo[items[i]]
		if !ok {
			continue
		}
		amt := columnar.DecodeFloat(amounts[i])
		l.totalRev += amt
		if isPromo {
			l.promoRev += amt
		}
	}
}

func (e *q14Exec) Merge(locals []olap.Local) olap.Result {
	var promo, total float64
	for _, l := range locals {
		ql := l.(*q14Local)
		promo += ql.promoRev
		total += ql.totalRev
	}
	share := 0.0
	if total > 0 {
		share = 100 * promo / total
	}
	return olap.Result{
		Cols: []string{"promo_revenue_pct", "promo_revenue", "total_revenue"},
		Rows: [][]float64{{share, promo, total}},
	}
}

// ExtendedQuerySet returns all implemented hand-coded analytical queries.
func (db *DB) ExtendedQuerySet() []olap.Query {
	return []olap.Query{
		&Q1{DB: db}, &Q3{DB: db}, &Q4{DB: db}, &Q6{DB: db},
		&Q12{DB: db}, &Q14{DB: db}, &Q18{DB: db}, &Q19{DB: db},
	}
}
