package ch

import (
	"testing"

	"elastichtap/internal/columnar"
)

func TestQ4MatchesReference(t *testing.T) {
	db := loadTiny(t)
	res := execOnActive(t, db, &Q4{DB: db})

	ot, olt := db.Orders.Table(), db.OrderLine.Table()
	entry := map[uint64]int64{}
	cnt := map[uint64]int64{}
	for r := int64(0); r < ot.Rows(); r++ {
		k := OrderKey(ot.ReadActive(r, OWID), ot.ReadActive(r, ODID), ot.ReadActive(r, OID))
		entry[k] = ot.ReadActive(r, OEntryD)
		cnt[k] = ot.ReadActive(r, OOlCnt)
	}
	qual := map[uint64]bool{}
	for r := int64(0); r < olt.Rows(); r++ {
		k := OrderKey(olt.ReadActive(r, OLWID), olt.ReadActive(r, OLDID), olt.ReadActive(r, OLOID))
		if ed, ok := entry[k]; ok && olt.ReadActive(r, OLDeliveryD) >= ed {
			qual[k] = true
		}
	}
	want := map[int64]int64{}
	for k := range qual {
		want[cnt[k]]++
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("buckets = %d, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if int64(row[1]) != want[int64(row[0])] {
			t.Fatalf("bucket %v count = %v, want %d", row[0], row[1], want[int64(row[0])])
		}
	}
}

func TestQ14MatchesReference(t *testing.T) {
	db := loadTiny(t)
	res := execOnActive(t, db, &Q14{DB: db})

	it, olt := db.Item.Table(), db.OrderLine.Table()
	promo := map[int64]bool{}
	for r := int64(0); r < it.Rows(); r++ {
		data := it.DecodeValue(IData, it.ReadActive(r, IData)).(string)
		promo[it.ReadActive(r, IID)] = data == "ORIGINAL"
	}
	var wantPromo, wantTotal float64
	for r := int64(0); r < olt.Rows(); r++ {
		isP, ok := promo[olt.ReadActive(r, OLIID)]
		if !ok {
			continue
		}
		amt := columnar.DecodeFloat(olt.ReadActive(r, OLAmount))
		wantTotal += amt
		if isP {
			wantPromo += amt
		}
	}
	if d := res.Rows[0][1] - wantPromo; d > 1e-6 || d < -1e-6 {
		t.Fatalf("promo revenue = %v, want %v", res.Rows[0][1], wantPromo)
	}
	if d := res.Rows[0][2] - wantTotal; d > 1e-6 || d < -1e-6 {
		t.Fatalf("total revenue = %v, want %v", res.Rows[0][2], wantTotal)
	}
	wantShare := 100 * wantPromo / wantTotal
	if d := res.Rows[0][0] - wantShare; d > 1e-9 || d < -1e-9 {
		t.Fatalf("share = %v, want %v", res.Rows[0][0], wantShare)
	}
}

func TestExtendedQuerySetExecutes(t *testing.T) {
	db := loadTiny(t)
	for _, q := range db.ExtendedQuerySet() {
		res := execOnActive(t, db, q)
		if q.FactTable() != TOrderLine {
			t.Fatalf("%s fact table = %s", q.Name(), q.FactTable())
		}
		if len(res.Cols) == 0 {
			t.Fatalf("%s produced no columns", q.Name())
		}
	}
}
