package ch

import (
	"math/rand"
	"testing"

	"elastichtap/internal/columnar"
)

func TestQ3MatchesReference(t *testing.T) {
	db := loadTiny(t)
	// Create undelivered orders.
	mgr := db.Engine.Manager()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 10; i++ {
		if _, err := mgr.RunWithRetry(10, db.NewOrder(rng, 1+int64(i%2))); err != nil {
			t.Fatal(err)
		}
	}
	res := execOnActive(t, db, &Q3{DB: db, TopN: 5})

	// Reference: revenue per undelivered order.
	ot := db.Orders.Table()
	undelivered := map[uint64]bool{}
	for r := int64(0); r < ot.Rows(); r++ {
		if ot.ReadActive(r, OCarrierID) == 0 {
			k := OrderKey(ot.ReadActive(r, OWID), ot.ReadActive(r, ODID), ot.ReadActive(r, OID))
			undelivered[k] = true
		}
	}
	olt := db.OrderLine.Table()
	rev := map[uint64]float64{}
	for r := int64(0); r < olt.Rows(); r++ {
		k := OrderKey(olt.ReadActive(r, OLWID), olt.ReadActive(r, OLDID), olt.ReadActive(r, OLOID))
		if undelivered[k] {
			rev[k] += columnar.DecodeFloat(olt.ReadActive(r, OLAmount))
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("Q3 returned no rows despite undelivered orders")
	}
	if len(res.Rows) > 5 {
		t.Fatalf("TopN violated: %d rows", len(res.Rows))
	}
	// Rows carry (w, d, o, entry_d, revenue), sorted by revenue descending,
	// and must match the reference.
	prev := res.Rows[0][4]
	for _, row := range res.Rows {
		k := OrderKey(int64(row[0]), int64(row[1]), int64(row[2]))
		got := row[4]
		want := rev[k]
		if d := got - want; d > 1e-6 || d < -1e-6 {
			t.Fatalf("order %d revenue = %v, want %v", k, got, want)
		}
		if !undelivered[k] {
			t.Fatalf("order %d is delivered but surfaced", k)
		}
		if got > prev {
			t.Fatal("rows not sorted by revenue")
		}
		prev = got
	}
}

func TestQ4MatchesReference(t *testing.T) {
	db := loadTiny(t)
	res := execOnActive(t, db, &Q4{DB: db})

	ot, olt := db.Orders.Table(), db.OrderLine.Table()
	entry := map[uint64]int64{}
	cnt := map[uint64]int64{}
	for r := int64(0); r < ot.Rows(); r++ {
		k := OrderKey(ot.ReadActive(r, OWID), ot.ReadActive(r, ODID), ot.ReadActive(r, OID))
		entry[k] = ot.ReadActive(r, OEntryD)
		cnt[k] = ot.ReadActive(r, OOlCnt)
	}
	qual := map[uint64]bool{}
	for r := int64(0); r < olt.Rows(); r++ {
		k := OrderKey(olt.ReadActive(r, OLWID), olt.ReadActive(r, OLDID), olt.ReadActive(r, OLOID))
		if ed, ok := entry[k]; ok && olt.ReadActive(r, OLDeliveryD) >= ed {
			qual[k] = true
		}
	}
	want := map[int64]int64{}
	for k := range qual {
		want[cnt[k]]++
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("buckets = %d, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if int64(row[1]) != want[int64(row[0])] {
			t.Fatalf("bucket %v count = %v, want %d", row[0], row[1], want[int64(row[0])])
		}
	}
}

func TestQ12MatchesReference(t *testing.T) {
	db := loadTiny(t)
	res := execOnActive(t, db, &Q12{DB: db})

	ot, olt := db.Orders.Table(), db.OrderLine.Table()
	carrier := map[uint64]int64{}
	cnt := map[uint64]int64{}
	for r := int64(0); r < ot.Rows(); r++ {
		k := OrderKey(ot.ReadActive(r, OWID), ot.ReadActive(r, ODID), ot.ReadActive(r, OID))
		carrier[k] = ot.ReadActive(r, OCarrierID)
		cnt[k] = ot.ReadActive(r, OOlCnt)
	}
	high, low := map[int64]int64{}, map[int64]int64{}
	for r := int64(0); r < olt.Rows(); r++ {
		k := OrderKey(olt.ReadActive(r, OLWID), olt.ReadActive(r, OLDID), olt.ReadActive(r, OLOID))
		car, ok := carrier[k]
		if !ok {
			continue
		}
		if car == 1 || car == 2 {
			high[cnt[k]]++
		} else {
			low[cnt[k]]++
		}
	}
	var wantHigh, wantLow, gotHigh, gotLow int64
	for _, v := range high {
		wantHigh += v
	}
	for _, v := range low {
		wantLow += v
	}
	for _, row := range res.Rows {
		gotHigh += int64(row[1])
		gotLow += int64(row[2])
	}
	if gotHigh != wantHigh || gotLow != wantLow {
		t.Fatalf("high/low = %d/%d, want %d/%d", gotHigh, gotLow, wantHigh, wantLow)
	}
}

func TestQ14MatchesReference(t *testing.T) {
	db := loadTiny(t)
	res := execOnActive(t, db, &Q14{DB: db})

	it, olt := db.Item.Table(), db.OrderLine.Table()
	promo := map[int64]bool{}
	for r := int64(0); r < it.Rows(); r++ {
		data := it.DecodeValue(IData, it.ReadActive(r, IData)).(string)
		promo[it.ReadActive(r, IID)] = data == "ORIGINAL"
	}
	var wantPromo, wantTotal float64
	for r := int64(0); r < olt.Rows(); r++ {
		isP, ok := promo[olt.ReadActive(r, OLIID)]
		if !ok {
			continue
		}
		amt := columnar.DecodeFloat(olt.ReadActive(r, OLAmount))
		wantTotal += amt
		if isP {
			wantPromo += amt
		}
	}
	if d := res.Rows[0][1] - wantPromo; d > 1e-6 || d < -1e-6 {
		t.Fatalf("promo revenue = %v, want %v", res.Rows[0][1], wantPromo)
	}
	if d := res.Rows[0][2] - wantTotal; d > 1e-6 || d < -1e-6 {
		t.Fatalf("total revenue = %v, want %v", res.Rows[0][2], wantTotal)
	}
	wantShare := 100 * wantPromo / wantTotal
	if d := res.Rows[0][0] - wantShare; d > 1e-9 || d < -1e-9 {
		t.Fatalf("share = %v, want %v", res.Rows[0][0], wantShare)
	}
}

func TestQ18MatchesReference(t *testing.T) {
	db := loadTiny(t)
	const minRev, topN = 500.0, 7
	res := execOnActive(t, db, &Q18{DB: db, MinRevenue: minRev, TopN: topN})

	// Reference: revenue and line count per order, thresholded.
	olt := db.OrderLine.Table()
	rev := map[uint64]float64{}
	lines := map[uint64]int64{}
	for r := int64(0); r < olt.Rows(); r++ {
		k := OrderKey(olt.ReadActive(r, OLWID), olt.ReadActive(r, OLDID), olt.ReadActive(r, OLOID))
		rev[k] += columnar.DecodeFloat(olt.ReadActive(r, OLAmount))
		lines[k]++
	}
	qualifying := 0
	for _, v := range rev {
		if v > minRev {
			qualifying++
		}
	}
	wantRows := qualifying
	if wantRows > topN {
		wantRows = topN
	}
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d (qualifying %d)", len(res.Rows), wantRows, qualifying)
	}
	prev := res.Rows[0][3]
	for _, row := range res.Rows {
		k := OrderKey(int64(row[0]), int64(row[1]), int64(row[2]))
		if d := row[3] - rev[k]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("order %d revenue = %v, want %v", k, row[3], rev[k])
		}
		if int64(row[4]) != lines[k] {
			t.Fatalf("order %d lines = %v, want %d", k, row[4], lines[k])
		}
		if row[3] <= minRev {
			t.Fatalf("order %d revenue %v below HAVING threshold", k, row[3])
		}
		if row[3] > prev {
			t.Fatal("rows not sorted by revenue")
		}
		prev = row[3]
	}
}

func TestExtendedQuerySetExecutes(t *testing.T) {
	db := loadTiny(t)
	for _, q := range db.ExtendedQuerySet() {
		res := execOnActive(t, db, q)
		if q.FactTable() != TOrderLine {
			t.Fatalf("%s fact table = %s", q.Name(), q.FactTable())
		}
		if len(res.Cols) == 0 {
			t.Fatalf("%s produced no columns", q.Name())
		}
	}
}
