// Package ch implements the CH-benCHmark substrate (§5.1): the TPC-C
// schema plus the TPC-H Supplier, Nation and Region relations, a
// deterministic data generator scaled the TPC-H way (OrderLine =
// SF*6,001,215 with 15 order lines per order at load), the TPC-C NewOrder
// and Payment transactions, and the analytical queries Q1, Q6 and Q19 used
// in the paper's evaluation.
package ch

import "elastichtap/internal/columnar"

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "neworder"
	TOrders    = "orders"
	TOrderLine = "orderline"
	TItem      = "item"
	TStock     = "stock"
	TSupplier  = "supplier"
	TNation    = "nation"
	TRegion    = "region"
)

// Warehouse columns.
const (
	WID = iota
	WName
	WCity
	WState
	WTax
	WYtd
)

// District columns.
const (
	DID = iota
	DWID
	DName
	DCity
	DTax
	DYtd
	DNextOID
)

// Customer columns.
const (
	CID = iota
	CDID
	CWID
	CFirst
	CLast
	CCredit
	CDiscount
	CBalance
	CYtdPayment
	CPaymentCnt
	CSince
	CNationkey
)

// History columns.
const (
	HCID = iota
	HCDID
	HCWID
	HDID
	HWID
	HDate
	HAmount
)

// NewOrder columns.
const (
	NOOID = iota
	NODID
	NOWID
)

// Orders columns.
const (
	OID = iota
	ODID
	OWID
	OCID
	OEntryD
	OCarrierID
	OOlCnt
	OAllLocal
)

// OrderLine columns.
const (
	OLOID = iota
	OLDID
	OLWID
	OLNumber
	OLIID
	OLSupplyWID
	OLDeliveryD
	OLQuantity
	OLAmount
	OLDistInfo
)

// Item columns.
const (
	IID = iota
	IImID
	IName
	IPrice
	IData
)

// Stock columns.
const (
	SIID = iota
	SWID
	SQuantity
	SYtd
	SOrderCnt
	SRemoteCnt
	SDist
	SData
	SSuSuppkey
)

// Supplier columns.
const (
	SuSuppkey = iota
	SuName
	SuNationkey
	SuAcctbal
)

// Nation columns.
const (
	NNationkey = iota
	NName
	NRegionkey
)

// Region columns.
const (
	RRegionkey = iota
	RName
)

func ints(names ...string) []columnar.ColumnDef {
	out := make([]columnar.ColumnDef, len(names))
	for i, n := range names {
		out[i] = columnar.ColumnDef{Name: n, Type: columnar.Int64}
	}
	return out
}

func col(name string, t columnar.Type) columnar.ColumnDef {
	return columnar.ColumnDef{Name: name, Type: t}
}

// Schemas returns the full CH-benCHmark catalog keyed by table name.
func Schemas() map[string]columnar.Schema {
	f, s := columnar.Float64, columnar.String
	return map[string]columnar.Schema{
		TWarehouse: {Name: TWarehouse, Columns: []columnar.ColumnDef{
			col("w_id", columnar.Int64), col("w_name", s), col("w_city", s),
			col("w_state", s), col("w_tax", f), col("w_ytd", f),
		}},
		TDistrict: {Name: TDistrict, Columns: []columnar.ColumnDef{
			col("d_id", columnar.Int64), col("d_w_id", columnar.Int64), col("d_name", s),
			col("d_city", s), col("d_tax", f), col("d_ytd", f), col("d_next_o_id", columnar.Int64),
		}},
		TCustomer: {Name: TCustomer, Columns: []columnar.ColumnDef{
			col("c_id", columnar.Int64), col("c_d_id", columnar.Int64), col("c_w_id", columnar.Int64),
			col("c_first", s), col("c_last", s), col("c_credit", s), col("c_discount", f),
			col("c_balance", f), col("c_ytd_payment", f), col("c_payment_cnt", columnar.Int64),
			col("c_since", columnar.Int64), col("c_nationkey", columnar.Int64),
		}},
		THistory: {Name: THistory, Columns: append(
			ints("h_c_id", "h_c_d_id", "h_c_w_id", "h_d_id", "h_w_id", "h_date"),
			col("h_amount", f),
		)},
		TNewOrder: {Name: TNewOrder, Columns: ints("no_o_id", "no_d_id", "no_w_id")},
		TOrders: {Name: TOrders, Columns: ints(
			"o_id", "o_d_id", "o_w_id", "o_c_id", "o_entry_d", "o_carrier_id", "o_ol_cnt", "o_all_local",
		)},
		TOrderLine: {Name: TOrderLine, Columns: []columnar.ColumnDef{
			col("ol_o_id", columnar.Int64), col("ol_d_id", columnar.Int64), col("ol_w_id", columnar.Int64),
			col("ol_number", columnar.Int64), col("ol_i_id", columnar.Int64),
			col("ol_supply_w_id", columnar.Int64), col("ol_delivery_d", columnar.Int64),
			col("ol_quantity", columnar.Int64), col("ol_amount", f), col("ol_dist_info", s),
		}},
		TItem: {Name: TItem, Columns: []columnar.ColumnDef{
			col("i_id", columnar.Int64), col("i_im_id", columnar.Int64), col("i_name", s),
			col("i_price", f), col("i_data", s),
		}},
		TStock: {Name: TStock, Columns: []columnar.ColumnDef{
			col("s_i_id", columnar.Int64), col("s_w_id", columnar.Int64), col("s_quantity", columnar.Int64),
			col("s_ytd", f), col("s_order_cnt", columnar.Int64), col("s_remote_cnt", columnar.Int64),
			col("s_dist", s), col("s_data", s), col("s_su_suppkey", columnar.Int64),
		}},
		TSupplier: {Name: TSupplier, Columns: []columnar.ColumnDef{
			col("su_suppkey", columnar.Int64), col("su_name", s), col("su_nationkey", columnar.Int64),
			col("su_acctbal", f),
		}},
		TNation: {Name: TNation, Columns: []columnar.ColumnDef{
			col("n_nationkey", columnar.Int64), col("n_name", s), col("n_regionkey", columnar.Int64),
		}},
		TRegion: {Name: TRegion, Columns: []columnar.ColumnDef{
			col("r_regionkey", columnar.Int64), col("r_name", s),
		}},
	}
}

// Primary-key encodings: every indexable key packs into a uint64 so the
// cuckoo index can serve it directly.

// WarehouseKey encodes a warehouse primary key.
func WarehouseKey(w int64) uint64 { return uint64(w) }

// DistrictKey encodes a district primary key.
func DistrictKey(w, d int64) uint64 { return uint64(w)*100 + uint64(d) }

// CustomerKey encodes a customer primary key.
func CustomerKey(w, d, c int64) uint64 { return DistrictKey(w, d)*1_000_000 + uint64(c) }

// ItemKey encodes an item primary key.
func ItemKey(i int64) uint64 { return uint64(i) }

// StockKey encodes a stock primary key.
func StockKey(w, i int64) uint64 { return uint64(w)*1_000_000 + uint64(i) }

// OrderKey encodes an order primary key.
func OrderKey(w, d, o int64) uint64 { return DistrictKey(w, d)<<40 | uint64(o) }
