package ch

import "math"

// Sizing controls the generated database dimensions. The paper scales the
// TPC-H way: OrderLine = SF * 6,001,215 rows with exactly 15 order lines
// per order at load time (§5.1); TPC-C fixed ratios apply elsewhere.
type Sizing struct {
	Warehouses           int
	DistrictsPerWH       int
	CustomersPerDistrict int
	Items                int
	OrdersPerDistrict    int
	OrderLinesPerOrder   int
}

// SizingForScale derives dimensions from a TPC-H-style scale factor.
// Dimension tables shrink proportionally below SF 1 so that laptop-scale
// runs preserve the fact/dimension size ratios the queries exercise.
func SizingForScale(sf float64) Sizing {
	if sf <= 0 {
		sf = 0.001
	}
	olTotal := int64(math.Round(sf * 6_001_215))
	// One warehouse per worker thread is the paper's transactional setup
	// (§5.1); a 14-core socket therefore needs at least 14 warehouses even
	// at tiny scale factors, or the workers pile onto shared district rows
	// and wait-die retry storms dominate.
	w := int(math.Max(14, math.Round(sf)))
	s := Sizing{
		Warehouses:           w,
		DistrictsPerWH:       10,
		CustomersPerDistrict: clampInt(int(3000*sf), 30, 3000),
		Items:                clampInt(int(100_000*sf), 100, 100_000),
		OrderLinesPerOrder:   15,
	}
	orders := olTotal / int64(s.OrderLinesPerOrder)
	s.OrdersPerDistrict = int(orders / int64(w*s.DistrictsPerWH))
	if s.OrdersPerDistrict < 1 {
		s.OrdersPerDistrict = 1
	}
	return s
}

// TinySizing returns a minimal database for unit tests.
func TinySizing() Sizing {
	return Sizing{
		Warehouses:           2,
		DistrictsPerWH:       2,
		CustomersPerDistrict: 10,
		Items:                50,
		OrdersPerDistrict:    20,
		OrderLinesPerOrder:   15,
	}
}

// Orders returns the initial order count.
func (s Sizing) Orders() int64 {
	return int64(s.Warehouses) * int64(s.DistrictsPerWH) * int64(s.OrdersPerDistrict)
}

// OrderLines returns the initial order-line count.
func (s Sizing) OrderLines() int64 {
	return s.Orders() * int64(s.OrderLinesPerOrder)
}

// StockRows returns the initial stock count.
func (s Sizing) StockRows() int64 { return int64(s.Warehouses) * int64(s.Items) }

// Customers returns the initial customer count.
func (s Sizing) Customers() int64 {
	return int64(s.Warehouses) * int64(s.DistrictsPerWH) * int64(s.CustomersPerDistrict)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
