package ch

import (
	"fmt"
	"math/rand"
	"sync"

	"elastichtap/internal/columnar"
	"elastichtap/internal/oltp"
	"elastichtap/internal/txn"
)

// lookup resolves a primary key to a row ID via the cuckoo index.
func lookup(h *oltp.TableHandle, key uint64) (int64, error) {
	row, ok := h.Index.Get(key)
	if !ok {
		return 0, fmt.Errorf("ch: key %d not found in %s index", key, h.Table().Schema().Name)
	}
	return int64(row), nil
}

// NewOrder builds the TPC-C NewOrder transaction body for warehouse w:
// read the customer's district, claim the next order id, read item prices,
// decrement stock read-modify-write, and insert the order, its neworder
// marker and 5-15 order lines (per the TPC-C specification, §5.1).
func (db *DB) NewOrder(rng *rand.Rand, w int64) oltp.TxnFunc {
	s := db.Sizing
	d := 1 + rng.Int63n(int64(s.DistrictsPerWH))
	c := 1 + rng.Int63n(int64(s.CustomersPerDistrict))
	olCnt := 5 + rng.Intn(11)
	items := make([]int64, olCnt)
	qtys := make([]int64, olCnt)
	for i := range items {
		items[i] = 1 + rng.Int63n(int64(s.Items))
		qtys[i] = 1 + rng.Int63n(10)
	}
	day := db.Day()

	return func(t *txn.Txn) error {
		dRow, err := lookup(db.District, DistrictKey(w, d))
		if err != nil {
			return err
		}
		oID, ok := t.Read(db.District.Ref, dRow, DNextOID)
		if !ok {
			return fmt.Errorf("ch: district row %d invisible", dRow)
		}
		if err := t.Write(db.District.Ref, dRow, DNextOID, oID+1); err != nil {
			return err
		}

		ot := db.Orders.Table()
		orderRow := ot.EncodeRow(oID, d, w, c, day, int64(0), int64(olCnt), int64(1))
		if err := t.Insert(db.Orders.Ref, [][]int64{orderRow}, func(first int64) {
			db.Orders.Index.Put(OrderKey(w, d, oID), uint64(first))
		}); err != nil {
			return err
		}
		nt := db.NewOrderT.Table()
		if err := t.Insert(db.NewOrderT.Ref, [][]int64{nt.EncodeRow(oID, d, w)}, nil); err != nil {
			return err
		}

		olt := db.OrderLine.Table()
		lines := make([][]int64, 0, olCnt)
		for i := 0; i < olCnt; i++ {
			iRow, err := lookup(db.Item, ItemKey(items[i]))
			if err != nil {
				return err
			}
			priceW, ok := t.Read(db.Item.Ref, iRow, IPrice)
			if !ok {
				return fmt.Errorf("ch: item row %d invisible", iRow)
			}
			price := columnar.DecodeFloat(priceW)

			sRow, err := lookup(db.Stock, StockKey(w, items[i]))
			if err != nil {
				return err
			}
			qty := qtys[i]
			if err := t.WriteFunc(db.Stock.Ref, sRow, SQuantity, func(old int64) int64 {
				if old-qty >= 10 {
					return old - qty
				}
				return old - qty + 91
			}); err != nil {
				return err
			}
			if err := t.WriteFunc(db.Stock.Ref, sRow, SOrderCnt, func(old int64) int64 {
				return old + 1
			}); err != nil {
				return err
			}
			lines = append(lines, olt.EncodeRow(
				oID, d, w, int64(i+1), items[i], w, day,
				qty, float64(qty)*price, "dist-txn",
			))
		}
		return t.Insert(db.OrderLine.Ref, lines, nil)
	}
}

// Payment builds the TPC-C Payment transaction body: update warehouse and
// district year-to-date totals, update the customer's balance and payment
// counters, and insert a history record. It is the update-heavy complement
// to NewOrder used by the freshness experiments that need modified (not
// just inserted) tuples.
func (db *DB) Payment(rng *rand.Rand, w int64) oltp.TxnFunc {
	s := db.Sizing
	d := 1 + rng.Int63n(int64(s.DistrictsPerWH))
	c := 1 + rng.Int63n(int64(s.CustomersPerDistrict))
	amount := 1 + rng.Float64()*4999
	day := db.Day()

	return func(t *txn.Txn) error {
		wRow, err := lookup(db.Warehouse, WarehouseKey(w))
		if err != nil {
			return err
		}
		if err := t.WriteFunc(db.Warehouse.Ref, wRow, WYtd, addFloat(amount)); err != nil {
			return err
		}
		dRow, err := lookup(db.District, DistrictKey(w, d))
		if err != nil {
			return err
		}
		if err := t.WriteFunc(db.District.Ref, dRow, DYtd, addFloat(amount)); err != nil {
			return err
		}
		cRow, err := lookup(db.Customer, CustomerKey(w, d, c))
		if err != nil {
			return err
		}
		if err := t.WriteFunc(db.Customer.Ref, cRow, CBalance, addFloat(-amount)); err != nil {
			return err
		}
		if err := t.WriteFunc(db.Customer.Ref, cRow, CYtdPayment, addFloat(amount)); err != nil {
			return err
		}
		if err := t.WriteFunc(db.Customer.Ref, cRow, CPaymentCnt, func(old int64) int64 {
			return old + 1
		}); err != nil {
			return err
		}
		ht := db.History.Table()
		return t.Insert(db.History.Ref, [][]int64{
			ht.EncodeRow(c, d, w, d, w, day, amount),
		}, nil)
	}
}

func addFloat(delta float64) func(old int64) int64 {
	return func(old int64) int64 {
		return columnar.EncodeFloat(columnar.DecodeFloat(old) + delta)
	}
}

// Mix is an oltp.Workload generating NewOrder (and optionally Payment)
// transactions. Each worker owns one warehouse, the paper's configuration
// ("we assign one warehouse to every worker thread", §5.1), with its own
// deterministic RNG.
type Mix struct {
	DB *DB
	// PaymentPct is the percentage (0-100) of Payment transactions.
	PaymentPct int

	mu   sync.Mutex
	rngs map[int]*rand.Rand
	seed int64
}

// NewMix returns a workload mix with deterministic per-worker RNGs.
func NewMix(db *DB, paymentPct int, seed int64) *Mix {
	return &Mix{DB: db, PaymentPct: paymentPct, rngs: map[int]*rand.Rand{}, seed: seed}
}

func (m *Mix) rng(worker int) *rand.Rand {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.rngs[worker]
	if r == nil {
		r = rand.New(rand.NewSource(m.seed + int64(worker)*7919))
		m.rngs[worker] = r
	}
	return r
}

// Next implements oltp.Workload.
func (m *Mix) Next(worker int) oltp.TxnFunc {
	r := m.rng(worker)
	m.mu.Lock()
	w := int64(worker%m.DB.Sizing.Warehouses) + 1
	pct := m.PaymentPct
	m.mu.Unlock()
	if pct > 0 && r.Intn(100) < pct {
		return m.DB.Payment(r, w)
	}
	return m.DB.NewOrder(r, w)
}
