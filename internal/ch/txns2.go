package ch

import (
	"fmt"
	"math/rand"

	"elastichtap/internal/columnar"
	"elastichtap/internal/oltp"
	"elastichtap/internal/txn"
)

// Delivery builds the TPC-C Delivery transaction body for warehouse w: for
// each district, pick the oldest undelivered order, stamp its carrier and
// its order lines' delivery dates, and credit the customer's balance.
//
// Delivery is the one transaction that UPDATES OrderLine rows. Once a
// query's fact table has updated (not just inserted) fresh records, the
// split access method becomes unsound and the scheduler must fall back to
// full-remote reads or ETL (§5.2) — this transaction exercises that path.
func (db *DB) Delivery(rng *rand.Rand, w int64) oltp.TxnFunc {
	s := db.Sizing
	carrier := 1 + rng.Int63n(10)
	day := db.Day()

	return func(t *txn.Txn) error {
		for d := int64(1); d <= int64(s.DistrictsPerWH); d++ {
			// Find the oldest undelivered order: scan the order index range
			// from the district's delivered watermark. Without a dedicated
			// NewOrder index we probe ascending order IDs; the probe span is
			// bounded because delivery keeps up with insertion.
			dRow, err := lookup(db.District, DistrictKey(w, d))
			if err != nil {
				return err
			}
			nextOID, ok := t.Read(db.District.Ref, dRow, DNextOID)
			if !ok {
				return fmt.Errorf("ch: district (%d,%d) invisible", w, d)
			}
			var oRow int64 = -1
			var oID int64
			for oID = 1; oID < nextOID; oID++ {
				row, ok := db.Orders.Index.Get(OrderKey(w, d, oID))
				if !ok {
					continue
				}
				carrierSet, ok := t.Read(db.Orders.Ref, int64(row), OCarrierID)
				if !ok {
					continue
				}
				if carrierSet == 0 {
					oRow = int64(row)
					break
				}
			}
			if oRow < 0 {
				continue // district fully delivered
			}
			if err := t.Write(db.Orders.Ref, oRow, OCarrierID, carrier); err != nil {
				return err
			}
			cID, _ := t.Read(db.Orders.Ref, oRow, OCID)
			olCnt, _ := t.Read(db.Orders.Ref, oRow, OOlCnt)

			// Stamp the delivery date on the order's lines and total them.
			var total float64
			updated := 0
			olt := db.OrderLine.Table()
			for r := int64(0); r < olt.Rows() && updated < int(olCnt); r++ {
				// Order lines are clustered by insertion; scan from the end
				// backwards for recent orders, forwards otherwise. A real
				// system would keep an (o_id) index; the scan keeps the
				// substrate honest about update costs.
				ro, ok := t.Read(db.OrderLine.Ref, r, OLOID)
				if !ok || ro != oID {
					continue
				}
				rd, _ := t.Read(db.OrderLine.Ref, r, OLDID)
				rw, _ := t.Read(db.OrderLine.Ref, r, OLWID)
				if rd != d || rw != w {
					continue
				}
				if err := t.Write(db.OrderLine.Ref, r, OLDeliveryD, day); err != nil {
					return err
				}
				amt, _ := t.Read(db.OrderLine.Ref, r, OLAmount)
				total += columnar.DecodeFloat(amt)
				updated++
			}
			cRow, err := lookup(db.Customer, CustomerKey(w, d, cID))
			if err != nil {
				return err
			}
			if err := t.WriteFunc(db.Customer.Ref, cRow, CBalance, addFloat(total)); err != nil {
				return err
			}
		}
		return nil
	}
}

// OrderStatus builds the TPC-C OrderStatus transaction body: a read-only
// inquiry of a customer's most recent order and its lines.
func (db *DB) OrderStatus(rng *rand.Rand, w int64) oltp.TxnFunc {
	s := db.Sizing
	d := 1 + rng.Int63n(int64(s.DistrictsPerWH))
	c := 1 + rng.Int63n(int64(s.CustomersPerDistrict))

	return func(t *txn.Txn) error {
		cRow, err := lookup(db.Customer, CustomerKey(w, d, c))
		if err != nil {
			return err
		}
		if _, ok := t.Read(db.Customer.Ref, cRow, CBalance); !ok {
			return fmt.Errorf("ch: customer (%d,%d,%d) invisible", w, d, c)
		}
		// Most recent order for the customer: walk order IDs downward from
		// the district watermark until one matches the customer.
		dRow, err := lookup(db.District, DistrictKey(w, d))
		if err != nil {
			return err
		}
		nextOID, _ := t.Read(db.District.Ref, dRow, DNextOID)
		for oID := nextOID - 1; oID >= 1; oID-- {
			row, ok := db.Orders.Index.Get(OrderKey(w, d, oID))
			if !ok {
				continue
			}
			ocid, ok := t.Read(db.Orders.Ref, int64(row), OCID)
			if !ok {
				continue
			}
			if ocid == c {
				// Found: read entry date and carrier (the inquiry result).
				t.Read(db.Orders.Ref, int64(row), OEntryD)
				t.Read(db.Orders.Ref, int64(row), OCarrierID)
				return nil
			}
		}
		return nil // customer has no orders yet
	}
}

// StockLevel builds the TPC-C StockLevel transaction body: count recent
// order lines' items whose stock is below a threshold.
func (db *DB) StockLevel(rng *rand.Rand, w int64) oltp.TxnFunc {
	s := db.Sizing
	d := 1 + rng.Int63n(int64(s.DistrictsPerWH))
	threshold := 10 + rng.Int63n(11)

	return func(t *txn.Txn) error {
		dRow, err := lookup(db.District, DistrictKey(w, d))
		if err != nil {
			return err
		}
		nextOID, ok := t.Read(db.District.Ref, dRow, DNextOID)
		if !ok {
			return fmt.Errorf("ch: district (%d,%d) invisible", w, d)
		}
		lo := nextOID - 20
		if lo < 1 {
			lo = 1
		}
		seen := map[int64]struct{}{}
		low := 0
		olt := db.OrderLine.Table()
		// Recent order lines live near the table's tail.
		start := olt.Rows() - 4096
		if start < 0 {
			start = 0
		}
		for r := start; r < olt.Rows(); r++ {
			ro, ok := t.Read(db.OrderLine.Ref, r, OLOID)
			if !ok || ro < lo || ro >= nextOID {
				continue
			}
			rd, _ := t.Read(db.OrderLine.Ref, r, OLDID)
			rw, _ := t.Read(db.OrderLine.Ref, r, OLWID)
			if rd != d || rw != w {
				continue
			}
			item, _ := t.Read(db.OrderLine.Ref, r, OLIID)
			if _, dup := seen[item]; dup {
				continue
			}
			seen[item] = struct{}{}
			sRow, err := lookup(db.Stock, StockKey(w, item))
			if err != nil {
				continue
			}
			qty, ok := t.Read(db.Stock.Ref, sRow, SQuantity)
			if ok && qty < threshold {
				low++
			}
		}
		return nil
	}
}

// FullMix is the complete TPC-C transaction mix at the specification's
// ratios: 45% NewOrder, 43% Payment, 4% each of OrderStatus, Delivery and
// StockLevel. The paper's evaluation runs NewOrder only (§5.1); FullMix is
// provided for workloads that need OrderLine updates (Delivery) or
// read-only inquiries.
type FullMix struct {
	*Mix
}

// NewFullMix returns a full-mix workload with deterministic per-worker
// RNGs.
func NewFullMix(db *DB, seed int64) *FullMix {
	return &FullMix{Mix: NewMix(db, 0, seed)}
}

// Next implements oltp.Workload.
func (m *FullMix) Next(worker int) oltp.TxnFunc {
	r := m.rng(worker)
	w := int64(worker%m.DB.Sizing.Warehouses) + 1
	switch p := r.Intn(100); {
	case p < 45:
		return m.DB.NewOrder(r, w)
	case p < 88:
		return m.DB.Payment(r, w)
	case p < 92:
		return m.DB.OrderStatus(r, w)
	case p < 96:
		return m.DB.Delivery(r, w)
	default:
		return m.DB.StockLevel(r, w)
	}
}
