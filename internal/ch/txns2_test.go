package ch

import (
	"math/rand"
	"testing"

	"elastichtap/internal/columnar"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
)

func TestDeliveryStampsOrderLines(t *testing.T) {
	db := loadTiny(t)
	mgr := db.Engine.Manager()
	rng := rand.New(rand.NewSource(11))

	// Insert a fresh order (carrier 0 = undelivered), then pretend the OLAP
	// replica synchronized here: clear the freshness bits so only the
	// delivery's updates remain visible below the watermark.
	if _, err := mgr.RunWithRetry(10, db.NewOrder(rng, 1)); err != nil {
		t.Fatal(err)
	}
	db.OrderLine.Table().DirtyOLAP().Reset()
	updBefore := db.OrderLine.Table().Active().DirtyCount()

	if _, err := mgr.RunWithRetry(10, db.Delivery(rng, 1)); err != nil {
		t.Fatal(err)
	}
	// Delivery must have updated at least one order's carrier and lines.
	ot := db.Orders.Table()
	delivered := 0
	for r := int64(0); r < ot.Rows(); r++ {
		if ot.ReadActive(r, OCarrierID) != 0 && ot.ReadActive(r, OWID) == 1 {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("no orders delivered")
	}
	// OrderLine gained UPDATED fresh rows (not only inserted ones): this is
	// what invalidates split access (§5.2).
	if db.OrderLine.Table().Active().DirtyCount() <= updBefore {
		t.Fatal("delivery set no orderline update-indication bits")
	}
	if db.OrderLine.Table().FreshSince(db.OrderLine.Table().Rows()).UpdatedRows == 0 {
		t.Fatal("delivery updates invisible to freshness accounting")
	}
}

func TestDeliveryInvalidatesSplitAccess(t *testing.T) {
	// End-to-end: after Delivery updates OrderLine rows below the replica
	// watermark, the scheduler must not choose split access for Q6.
	db := loadTiny(t)
	mgr := db.Engine.Manager()
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 3; i++ {
		if _, err := mgr.RunWithRetry(10, db.NewOrder(rng, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the replica having synced everything BEFORE the delivery:
	// the updated rows below the watermark are what split cannot see.
	db.OrderLine.Table().DirtyOLAP().Reset()
	watermark := db.OrderLine.Table().Rows()
	if _, err := mgr.RunWithRetry(10, db.Delivery(rng, 1)); err != nil {
		t.Fatal(err)
	}
	fresh := db.OrderLine.Table().FreshSince(watermark)
	if fresh.UpdatedRows == 0 {
		t.Fatal("expected updated orderline rows below the watermark")
	}
}

func TestOrderStatusReadOnly(t *testing.T) {
	db := loadTiny(t)
	mgr := db.Engine.Manager()
	rng := rand.New(rand.NewSource(13))
	rowsBefore := db.Orders.Table().Rows()
	dirtyBefore := db.Customer.Table().DirtyOLAP().Count()
	for i := 0; i < 10; i++ {
		if _, err := mgr.RunWithRetry(10, db.OrderStatus(rng, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Orders.Table().Rows() != rowsBefore {
		t.Fatal("read-only transaction inserted rows")
	}
	if db.Customer.Table().DirtyOLAP().Count() != dirtyBefore {
		t.Fatal("read-only transaction dirtied rows")
	}
}

func TestStockLevelReadOnly(t *testing.T) {
	db := loadTiny(t)
	mgr := db.Engine.Manager()
	rng := rand.New(rand.NewSource(14))
	if _, err := mgr.RunWithRetry(10, db.NewOrder(rng, 2)); err != nil {
		t.Fatal(err)
	}
	dirtyBefore := db.Stock.Table().DirtyOLAP().Count()
	for i := 0; i < 5; i++ {
		if _, err := mgr.RunWithRetry(10, db.StockLevel(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stock.Table().DirtyOLAP().Count() != dirtyBefore {
		t.Fatal("stock-level dirtied stock rows")
	}
}

func TestFullMixRuns(t *testing.T) {
	e := oltp.NewEngine()
	db := Load(e, TinySizing(), 5)
	e.Workers().SetWorkload(NewFullMix(db, 5))
	e.Workers().SetPlacement(topology.Placement{PerSocket: []int{4}})
	e.Workers().ExecuteBatch(100)
	if got := e.Workers().Executed(); got != 100 {
		t.Fatalf("executed = %d (failed=%d)", got, e.Workers().Failed())
	}
	if e.Workers().Failed() != 0 {
		t.Fatalf("failed = %d", e.Workers().Failed())
	}
}

func TestDeliveryVisibleToSnapshotIsolation(t *testing.T) {
	// A long-running reader that began before a delivery must keep seeing
	// carrier 0 via the version chains.
	db := loadTiny(t)
	mgr := db.Engine.Manager()
	rng := rand.New(rand.NewSource(15))
	if _, err := mgr.RunWithRetry(10, db.NewOrder(rng, 1)); err != nil {
		t.Fatal(err)
	}
	// Find the undelivered order row.
	ot := db.Orders.Table()
	var target int64 = -1
	for r := int64(0); r < ot.Rows(); r++ {
		if ot.ReadActive(r, OCarrierID) == 0 {
			target = r
			break
		}
	}
	if target < 0 {
		t.Skip("no undelivered order in generated data")
	}
	reader := mgr.Begin()
	if _, err := mgr.RunWithRetry(10, db.Delivery(rng, 1)); err != nil {
		t.Fatal(err)
	}
	if v, ok := reader.Read(db.Orders.Ref, target, OCarrierID); !ok || v != 0 {
		t.Fatalf("snapshot reader sees carrier %d (ok=%v), want 0", v, ok)
	}
	reader.Abort()
	// A fresh reader sees the delivery.
	after := mgr.Begin()
	if v, _ := after.Read(db.Orders.Ref, target, OCarrierID); v == 0 {
		t.Fatal("delivery invisible to new snapshot")
	}
	after.Abort()

	_ = columnar.WordBytes
}
