// Package checkpoint serializes consistent table snapshots and, with the
// manifest, whole-database checkpoints. The twin-instance design descends
// from checkpointing schemes (Twin Blocks, Cao et al., cited in §3.2):
// after an instance switch, the inactive instance is a quiescent,
// consistent snapshot that can be written out while transactions continue
// on the active instance — checkpointing without a stop-the-world pause.
//
// Table format v2 (little-endian; v1 readable, identical minus the CRCs):
//
//	magic "EHCP" | version u32
//	header section: name, column count, per column (name, type), rows u64
//	  | u32 CRC32C of the section
//	per column: rows raw words | u32 CRC32C of the column bytes
//	per String column: dictionary (count, strings) | u32 CRC32C
//
// Every section checksum is CRC32C (Castagnoli), shared with the WAL
// framing, so a bit flip anywhere in a checkpoint file is detected at
// restore instead of silently corrupting the database.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"elastichtap/internal/columnar"
	"elastichtap/internal/wal"
)

const (
	magic      = "EHCP"
	version    = 2
	oldVersion = 1
)

// ErrCorrupt reports a checkpoint section whose checksum did not match.
var ErrCorrupt = fmt.Errorf("checkpoint: corrupt section")

// crcWriter accumulates a CRC32C over everything written since the last
// endSection, so each format section carries its own checksum.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	buf [8]byte
}

func (cw *crcWriter) write(p []byte) error {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, wal.Castagnoli, p[:n])
	return err
}

func (cw *crcWriter) writeU32(v uint32) error {
	binary.LittleEndian.PutUint32(cw.buf[:4], v)
	return cw.write(cw.buf[:4])
}

func (cw *crcWriter) writeU64(v uint64) error {
	binary.LittleEndian.PutUint64(cw.buf[:8], v)
	return cw.write(cw.buf[:8])
}

func (cw *crcWriter) writeStr(s string) error {
	if err := cw.writeU32(uint32(len(s))); err != nil {
		return err
	}
	return cw.write([]byte(s))
}

// endSection emits the accumulated checksum (not itself checksummed) and
// starts the next section.
func (cw *crcWriter) endSection() error {
	binary.LittleEndian.PutUint32(cw.buf[:4], cw.crc)
	_, err := cw.w.Write(cw.buf[:4])
	cw.crc = 0
	return err
}

// crcReader mirrors crcWriter: it accumulates a CRC32C over reads and
// verifies each section trailer. With verify false (format v1) the
// trailers are absent and endSection is a no-op.
type crcReader struct {
	r      *bufio.Reader
	crc    uint32
	verify bool
	buf    [8]byte
}

func (cr *crcReader) read(p []byte) error {
	if _, err := io.ReadFull(cr.r, p); err != nil {
		return err
	}
	cr.crc = crc32.Update(cr.crc, wal.Castagnoli, p)
	return nil
}

func (cr *crcReader) readU32() (uint32, error) {
	if err := cr.read(cr.buf[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(cr.buf[:4]), nil
}

func (cr *crcReader) readU64() (uint64, error) {
	if err := cr.read(cr.buf[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(cr.buf[:8]), nil
}

func (cr *crcReader) readStr() (string, error) {
	n, err := cr.readU32()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("checkpoint: implausible string length %d", n)
	}
	b := make([]byte, n)
	if err := cr.read(b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (cr *crcReader) endSection(what string) error {
	got := cr.crc
	cr.crc = 0
	if !cr.verify {
		return nil
	}
	if _, err := io.ReadFull(cr.r, cr.buf[:4]); err != nil {
		return fmt.Errorf("checkpoint: %s checksum: %w", what, err)
	}
	want := binary.LittleEndian.Uint32(cr.buf[:4])
	if got != want {
		return fmt.Errorf("%w: %s checksum %08x, want %08x", ErrCorrupt, what, got, want)
	}
	return nil
}

// Write serializes rows [0, rows) of the snapshot instance of a table.
// The instance must be quiescent below the watermark (an inactive
// instance after Switch, or any instance with no concurrent writers).
func Write(w io.Writer, t *columnar.Table, inst *columnar.Instance, rows int64) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var vbuf [4]byte
	binary.LittleEndian.PutUint32(vbuf[:], version)
	if _, err := bw.Write(vbuf[:]); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	schema := t.Schema()
	if err := cw.writeStr(schema.Name); err != nil {
		return err
	}
	if err := cw.writeU32(uint32(len(schema.Columns))); err != nil {
		return err
	}
	for _, c := range schema.Columns {
		if err := cw.writeStr(c.Name); err != nil {
			return err
		}
		if err := cw.write([]byte{byte(c.Type)}); err != nil {
			return err
		}
	}
	if err := cw.writeU64(uint64(rows)); err != nil {
		return err
	}
	if err := cw.endSection(); err != nil {
		return err
	}
	for c := range schema.Columns {
		var werr error
		inst.Col(c).Scan(0, rows, func(vals []int64, _ int64) {
			if werr != nil {
				return
			}
			for _, v := range vals {
				if err := cw.writeU64(uint64(v)); err != nil {
					werr = err
					return
				}
			}
		})
		if werr != nil {
			return werr
		}
		if err := cw.endSection(); err != nil {
			return err
		}
	}
	for c, def := range schema.Columns {
		if def.Type != columnar.String {
			continue
		}
		d := t.Dict(c)
		n := d.Len()
		if err := cw.writeU32(uint32(n)); err != nil {
			return err
		}
		for code := 0; code < n; code++ {
			if err := cw.writeStr(d.Str(int64(code))); err != nil {
				return err
			}
		}
		if err := cw.endSection(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// image is a decoded checkpoint file before any table is touched.
type image struct {
	schema columnar.Schema
	rows   uint64
	cols   [][]int64
	dicts  map[int][]string // column -> dictionary strings in code order
}

func decode(r io.Reader) (*image, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", head)
	}
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	ver := binary.LittleEndian.Uint32(head)
	if ver != version && ver != oldVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", ver)
	}
	cr := &crcReader{r: br, verify: ver >= 2}
	name, err := cr.readStr()
	if err != nil {
		return nil, err
	}
	ncols, err := cr.readU32()
	if err != nil {
		return nil, err
	}
	if ncols > 1<<10 {
		return nil, fmt.Errorf("checkpoint: implausible column count %d", ncols)
	}
	img := &image{schema: columnar.Schema{Name: name}, dicts: map[int][]string{}}
	for i := uint32(0); i < ncols; i++ {
		cname, err := cr.readStr()
		if err != nil {
			return nil, err
		}
		var tb [1]byte
		if err := cr.read(tb[:]); err != nil {
			return nil, err
		}
		img.schema.Columns = append(img.schema.Columns, columnar.ColumnDef{
			Name: cname, Type: columnar.Type(tb[0]),
		})
	}
	if img.rows, err = cr.readU64(); err != nil {
		return nil, err
	}
	if err := cr.endSection("header"); err != nil {
		return nil, err
	}
	img.cols = make([][]int64, ncols)
	for c := range img.cols {
		img.cols[c] = make([]int64, img.rows)
		for i := uint64(0); i < img.rows; i++ {
			v, err := cr.readU64()
			if err != nil {
				return nil, fmt.Errorf("checkpoint: column %d row %d: %w", c, i, err)
			}
			img.cols[c][i] = int64(v)
		}
		if err := cr.endSection(fmt.Sprintf("column %d", c)); err != nil {
			return nil, err
		}
	}
	for c, def := range img.schema.Columns {
		if def.Type != columnar.String {
			continue
		}
		n, err := cr.readU32()
		if err != nil {
			return nil, err
		}
		if uint64(n) > img.rows+1<<16 {
			return nil, fmt.Errorf("checkpoint: implausible dictionary size %d", n)
		}
		strs := make([]string, 0, n)
		for code := uint32(0); code < n; code++ {
			s, err := cr.readStr()
			if err != nil {
				return nil, err
			}
			strs = append(strs, s)
		}
		if err := cr.endSection(fmt.Sprintf("dictionary %d", c)); err != nil {
			return nil, err
		}
		img.dicts[c] = strs
	}
	return img, nil
}

// fill loads a decoded image into an empty table: dictionaries first (so
// raw codes stay valid — codes are assigned in order of first appearance,
// and the checkpoint stores them in code order), then rows in batches
// with commit timestamp 0.
func fill(t *columnar.Table, img *image) error {
	for c, strs := range img.dicts {
		d := t.Dict(c)
		for code, s := range strs {
			if got := d.Code(s); got != int64(code) {
				return fmt.Errorf("checkpoint: dictionary code drift: %q -> %d, want %d", s, got, code)
			}
		}
	}
	const batch = 1 << 13
	rowsBuf := make([][]int64, 0, batch)
	ncols := len(img.schema.Columns)
	for i := uint64(0); i < img.rows; i++ {
		row := make([]int64, ncols)
		for c := range img.cols {
			row[c] = img.cols[c][i]
		}
		rowsBuf = append(rowsBuf, row)
		if len(rowsBuf) == batch {
			t.AppendRows(rowsBuf, 0)
			rowsBuf = rowsBuf[:0]
		}
	}
	if len(rowsBuf) > 0 {
		t.AppendRows(rowsBuf, 0)
	}
	return nil
}

// Read restores a checkpoint into a fresh twin-instance table. Both
// instances receive the data (as a load would), with commit timestamp 0.
func Read(r io.Reader) (*columnar.Table, error) {
	img, err := decode(r)
	if err != nil {
		return nil, err
	}
	t := columnar.NewTable(img.schema, int64(img.rows))
	if err := fill(t, img); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadInto restores a checkpoint into an existing, empty table — the
// whole-database recovery path, where tables are created by the engine
// (with their index and replica plumbing) before being filled. The
// table's schema must match the checkpoint's exactly.
func ReadInto(r io.Reader, t *columnar.Table) error {
	img, err := decode(r)
	if err != nil {
		return err
	}
	if t.Rows() != 0 {
		return fmt.Errorf("checkpoint: table %q not empty (%d rows)", t.Schema().Name, t.Rows())
	}
	want := t.Schema()
	if want.Name != img.schema.Name || len(want.Columns) != len(img.schema.Columns) {
		return fmt.Errorf("checkpoint: schema mismatch: file %q/%d cols, table %q/%d cols",
			img.schema.Name, len(img.schema.Columns), want.Name, len(want.Columns))
	}
	for i, c := range want.Columns {
		fc := img.schema.Columns[i]
		if c.Name != fc.Name || c.Type != fc.Type {
			return fmt.Errorf("checkpoint: column %d mismatch: file %s/%d, table %s/%d",
				i, fc.Name, fc.Type, c.Name, c.Type)
		}
	}
	return fill(t, img)
}
