// Package checkpoint serializes consistent table snapshots. The twin-
// instance design descends from checkpointing schemes (Twin Blocks, Cao et
// al., cited in §3.2): after an instance switch, the inactive instance is
// a quiescent, consistent snapshot that can be written out while
// transactions continue on the active instance — checkpointing without a
// stop-the-world pause.
//
// Format (little-endian):
//
//	magic "EHCP" | version u32
//	schema: name, column count, per column (name, type)
//	rows u64
//	per column: rows raw words
//	per String column: dictionary (count, strings)
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"elastichtap/internal/columnar"
)

const (
	magic   = "EHCP"
	version = 1
)

// Write serializes rows [0, rows) of the snapshot instance of a table.
// The instance must be quiescent below the watermark (an inactive
// instance after Switch, or any instance with no concurrent writers).
func Write(w io.Writer, t *columnar.Table, inst *columnar.Instance, rows int64) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(version)); err != nil {
		return err
	}
	schema := t.Schema()
	if err := writeString(bw, schema.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(schema.Columns))); err != nil {
		return err
	}
	for _, c := range schema.Columns {
		if err := writeString(bw, c.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(c.Type)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(rows)); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for c := range schema.Columns {
		var werr error
		inst.Col(c).Scan(0, rows, func(vals []int64, _ int64) {
			if werr != nil {
				return
			}
			for _, v := range vals {
				binary.LittleEndian.PutUint64(buf, uint64(v))
				if _, err := bw.Write(buf); err != nil {
					werr = err
					return
				}
			}
		})
		if werr != nil {
			return werr
		}
	}
	for c, def := range schema.Columns {
		if def.Type != columnar.String {
			continue
		}
		d := t.Dict(c)
		n := d.Len()
		if err := binary.Write(bw, binary.LittleEndian, uint32(n)); err != nil {
			return err
		}
		for code := 0; code < n; code++ {
			if err := writeString(bw, d.Str(int64(code))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read restores a checkpoint into a fresh twin-instance table. Both
// instances receive the data (as a load would), with commit timestamp 0.
func Read(r io.Reader) (*columnar.Table, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", head)
	}
	var ver uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", ver)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var ncols uint32
	if err := binary.Read(br, binary.LittleEndian, &ncols); err != nil {
		return nil, err
	}
	schema := columnar.Schema{Name: name}
	for i := uint32(0); i < ncols; i++ {
		cname, err := readString(br)
		if err != nil {
			return nil, err
		}
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		schema.Columns = append(schema.Columns, columnar.ColumnDef{
			Name: cname, Type: columnar.Type(tb),
		})
	}
	var rows uint64
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	t := columnar.NewTable(schema, int64(rows))

	cols := make([][]int64, ncols)
	buf := make([]byte, 8)
	for c := range cols {
		cols[c] = make([]int64, rows)
		for i := uint64(0); i < rows; i++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("checkpoint: column %d row %d: %w", c, i, err)
			}
			cols[c][i] = int64(binary.LittleEndian.Uint64(buf))
		}
	}
	// Dictionaries must be rebuilt before rows are appended so that raw
	// codes remain valid: codes are assigned in order of first appearance,
	// and the checkpoint stores them in code order.
	for c, def := range schema.Columns {
		if def.Type != columnar.String {
			continue
		}
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		d := t.Dict(c)
		for code := uint32(0); code < n; code++ {
			s, err := readString(br)
			if err != nil {
				return nil, err
			}
			if got := d.Code(s); got != int64(code) {
				return nil, fmt.Errorf("checkpoint: dictionary code drift: %q -> %d, want %d", s, got, code)
			}
		}
	}
	const batch = 1 << 13
	rowsBuf := make([][]int64, 0, batch)
	for i := uint64(0); i < rows; i++ {
		row := make([]int64, ncols)
		for c := range cols {
			row[c] = cols[c][i]
		}
		rowsBuf = append(rowsBuf, row)
		if len(rowsBuf) == batch {
			t.AppendRows(rowsBuf, 0)
			rowsBuf = rowsBuf[:0]
		}
	}
	if len(rowsBuf) > 0 {
		t.AppendRows(rowsBuf, 0)
	}
	return t, nil
}

func writeString(w *bufio.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("checkpoint: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
