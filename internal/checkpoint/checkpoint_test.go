package checkpoint

import (
	"bytes"
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/columnar"
	"elastichtap/internal/oltp"
)

func TestRoundTrip(t *testing.T) {
	db := ch.Load(oltp.NewEngine(), ch.TinySizing(), 3)
	tab := db.OrderLine.Table()
	sw := tab.Switch()

	var buf bytes.Buffer
	if err := Write(&buf, tab, sw.Snapshot, sw.SnapshotRows); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Rows() != sw.SnapshotRows {
		t.Fatalf("rows = %d, want %d", restored.Rows(), sw.SnapshotRows)
	}
	if restored.Schema().Name != tab.Schema().Name {
		t.Fatalf("schema name = %q", restored.Schema().Name)
	}
	// Cell-for-cell equality including decoded strings.
	for r := int64(0); r < sw.SnapshotRows; r += 31 {
		for c := range tab.Schema().Columns {
			want := tab.DecodeValue(c, sw.Snapshot.Col(c).Load(r))
			got := restored.DecodeValue(c, restored.ReadActive(r, c))
			if want != got {
				t.Fatalf("row %d col %d: %v != %v", r, c, got, want)
			}
		}
	}
}

func TestCheckpointWhileTransactionsContinue(t *testing.T) {
	// The checkpoint reads the inactive instance while the active one
	// keeps mutating — no torn data, snapshot semantics hold.
	db := ch.Load(oltp.NewEngine(), ch.TinySizing(), 4)
	tab := db.District.Table()
	sw := tab.Switch()
	preSum := int64(0)
	for r := int64(0); r < sw.SnapshotRows; r++ {
		preSum += sw.Snapshot.Col(ch.DNextOID).Load(r)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			tab.UpdateCell(int64(i)%sw.SnapshotRows, ch.DNextOID, int64(1000+i), 5)
		}
	}()
	var buf bytes.Buffer
	if err := Write(&buf, tab, sw.Snapshot, sw.SnapshotRows); err != nil {
		t.Fatal(err)
	}
	<-done

	restored, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	postSum := int64(0)
	for r := int64(0); r < restored.Rows(); r++ {
		postSum += restored.ReadActive(r, ch.DNextOID)
	}
	if postSum != preSum {
		t.Fatalf("checkpoint saw concurrent updates: %d != %d", postSum, preSum)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	db := ch.Load(oltp.NewEngine(), ch.TinySizing(), 3)
	tab := db.Region.Table()
	sw := tab.Switch()
	var buf bytes.Buffer
	if err := Write(&buf, tab, sw.Snapshot, sw.SnapshotRows); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{4, 10, buf.Len() / 2, buf.Len() - 1} {
		if _, err := Read(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncated stream at %d accepted", cut)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tab := columnar.NewTable(columnar.Schema{
		Name:    "empty",
		Columns: []columnar.ColumnDef{{Name: "v", Type: columnar.Int64}},
	}, 0)
	sw := tab.Switch()
	var buf bytes.Buffer
	if err := Write(&buf, tab, sw.Snapshot, 0); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Rows() != 0 {
		t.Fatalf("rows = %d", restored.Rows())
	}
}
