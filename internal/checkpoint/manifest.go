package checkpoint

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"elastichtap/internal/wal"
)

// A whole-database checkpoint is a directory:
//
//	<dir>/wal.log            the commit log, shared by every checkpoint
//	<dir>/ckpt-<seq>/        one complete database image
//	    <table>.ehcp         per-table v2 checkpoint files
//	    MANIFEST             written last; a directory without a valid
//	                         manifest is torn and ignored
//
// Manifest format (little-endian):
//
//	magic "EHMF" | version u32
//	clock u64 | commits u64 | wal position u64
//	extras: u32 count, per entry (string key, u64 value), sorted by key
//	tables: u32 count, per table:
//	    name | rows u64 | replica rows u64
//	    dirty rows: u32 count, u64 row indices (OLAP-stale rows)
//	    file CRC32C u32 (whole <table>.ehcp file)
//	trailing u32 CRC32C of every preceding byte
//
// The manifest is the commit point of a checkpoint: table files are
// written and synced before it, so a crash mid-checkpoint leaves either a
// complete image or a manifest-less directory that recovery skips.

const (
	manifestMagic   = "EHMF"
	manifestVersion = 1
	// ManifestName is the file a checkpoint directory commits with.
	ManifestName = "MANIFEST"
)

// TableEntry records one table's identity and watermarks in a manifest.
type TableEntry struct {
	// Name is the table name; its checkpoint file is <Name>.ehcp.
	Name string
	// Rows is the row count captured, equal to the rows serialized.
	Rows int64
	// ReplicaRows is the OLAP replica's insert watermark at capture;
	// recovery re-copies rows [0, ReplicaRows) into the replica.
	ReplicaRows int64
	// Dirty lists the OLAP-stale row indices (updated but not yet
	// delta-ETL'd) at capture, so restored freshness metrics match the
	// live engine's exactly.
	Dirty []int64
	// FileCRC is the CRC32C of the entire table checkpoint file.
	FileCRC uint32
}

// Manifest is the metadata that makes a set of table files a consistent
// database image resumable from a WAL position.
type Manifest struct {
	// Clock is the transaction manager's timestamp clock at capture.
	Clock uint64
	// Commits is the lifetime commit count at capture.
	Commits uint64
	// WALPos is the commit log byte offset the image is consistent with:
	// replay starts there.
	WALPos int64
	// Extras carries engine-defined scalars (current day, sizing) that
	// must survive recovery. Serialized sorted by key.
	Extras map[string]int64
	// Tables lists every table in the image.
	Tables []TableEntry
}

// WriteManifest serializes m with a trailing whole-file checksum.
func WriteManifest(w io.Writer, m *Manifest) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw}
	if err := cw.write([]byte(manifestMagic)); err != nil {
		return err
	}
	if err := cw.writeU32(manifestVersion); err != nil {
		return err
	}
	if err := cw.writeU64(m.Clock); err != nil {
		return err
	}
	if err := cw.writeU64(m.Commits); err != nil {
		return err
	}
	if err := cw.writeU64(uint64(m.WALPos)); err != nil {
		return err
	}
	keys := make([]string, 0, len(m.Extras))
	for k := range m.Extras {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if err := cw.writeU32(uint32(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := cw.writeStr(k); err != nil {
			return err
		}
		if err := cw.writeU64(uint64(m.Extras[k])); err != nil {
			return err
		}
	}
	if err := cw.writeU32(uint32(len(m.Tables))); err != nil {
		return err
	}
	for _, te := range m.Tables {
		if err := cw.writeStr(te.Name); err != nil {
			return err
		}
		if err := cw.writeU64(uint64(te.Rows)); err != nil {
			return err
		}
		if err := cw.writeU64(uint64(te.ReplicaRows)); err != nil {
			return err
		}
		if err := cw.writeU32(uint32(len(te.Dirty))); err != nil {
			return err
		}
		for _, row := range te.Dirty {
			if err := cw.writeU64(uint64(row)); err != nil {
				return err
			}
		}
		if err := cw.writeU32(te.FileCRC); err != nil {
			return err
		}
	}
	if err := cw.endSection(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadManifest parses and checksum-verifies a manifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	cr := &crcReader{r: br, verify: true}
	head := make([]byte, 4)
	if err := cr.read(head); err != nil {
		return nil, fmt.Errorf("checkpoint: manifest magic: %w", err)
	}
	if string(head) != manifestMagic {
		return nil, fmt.Errorf("checkpoint: bad manifest magic %q", head)
	}
	ver, err := cr.readU32()
	if err != nil {
		return nil, err
	}
	if ver != manifestVersion {
		return nil, fmt.Errorf("checkpoint: unsupported manifest version %d", ver)
	}
	m := &Manifest{Extras: map[string]int64{}}
	if m.Clock, err = cr.readU64(); err != nil {
		return nil, err
	}
	if m.Commits, err = cr.readU64(); err != nil {
		return nil, err
	}
	pos, err := cr.readU64()
	if err != nil {
		return nil, err
	}
	m.WALPos = int64(pos)
	nex, err := cr.readU32()
	if err != nil {
		return nil, err
	}
	if nex > 1<<16 {
		return nil, fmt.Errorf("checkpoint: implausible extras count %d", nex)
	}
	for i := uint32(0); i < nex; i++ {
		k, err := cr.readStr()
		if err != nil {
			return nil, err
		}
		v, err := cr.readU64()
		if err != nil {
			return nil, err
		}
		m.Extras[k] = int64(v)
	}
	ntab, err := cr.readU32()
	if err != nil {
		return nil, err
	}
	if ntab > 1<<16 {
		return nil, fmt.Errorf("checkpoint: implausible table count %d", ntab)
	}
	for i := uint32(0); i < ntab; i++ {
		var te TableEntry
		if te.Name, err = cr.readStr(); err != nil {
			return nil, err
		}
		rows, err := cr.readU64()
		if err != nil {
			return nil, err
		}
		te.Rows = int64(rows)
		rep, err := cr.readU64()
		if err != nil {
			return nil, err
		}
		te.ReplicaRows = int64(rep)
		nd, err := cr.readU32()
		if err != nil {
			return nil, err
		}
		if int64(nd) > te.Rows {
			return nil, fmt.Errorf("checkpoint: table %q claims %d dirty of %d rows", te.Name, nd, te.Rows)
		}
		te.Dirty = make([]int64, 0, nd)
		for k := uint32(0); k < nd; k++ {
			row, err := cr.readU64()
			if err != nil {
				return nil, err
			}
			te.Dirty = append(te.Dirty, int64(row))
		}
		if te.FileCRC, err = cr.readU32(); err != nil {
			return nil, err
		}
		m.Tables = append(m.Tables, te)
	}
	if err := cr.endSection("manifest"); err != nil {
		return nil, err
	}
	return m, nil
}

// SeqDir names the directory of checkpoint sequence seq under dir.
func SeqDir(dir string, seq uint64) string {
	return fmt.Sprintf("%s/ckpt-%08d", dir, seq)
}

// parseSeq extracts the sequence from a ckpt-<seq> entry name.
func parseSeq(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "ckpt-%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Latest scans dir for the highest-sequence checkpoint with a valid
// manifest and returns its sequence and manifest. Directories without a
// readable manifest (torn checkpoints) are skipped. ok is false when no
// complete checkpoint exists.
func Latest(fs wal.FS, dir string) (seq uint64, m *Manifest, ok bool, err error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return 0, nil, false, nil // no directory: no checkpoints
	}
	var seqs []uint64
	for _, name := range names {
		if s, isCkpt := parseSeq(name); isCkpt {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, s := range seqs {
		f, err := fs.Open(SeqDir(dir, s) + "/" + ManifestName)
		if err != nil {
			continue // torn: the manifest never landed
		}
		m, merr := ReadManifest(f)
		f.Close()
		if merr != nil {
			continue // torn or corrupt manifest
		}
		return s, m, true, nil
	}
	return 0, nil, false, nil
}

// NextSeq returns the sequence number the next checkpoint should use:
// one above the highest existing ckpt-* entry (complete or torn).
func NextSeq(fs wal.FS, dir string) uint64 {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return 1
	}
	var max uint64
	for _, name := range names {
		if s, isCkpt := parseSeq(name); isCkpt && s > max {
			max = s
		}
	}
	return max + 1
}

// FileCRC computes the whole-file CRC32C of name.
func FileCRC(fs wal.FS, name string) (uint32, error) {
	f, err := fs.Open(name)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.New(wal.Castagnoli)
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}
