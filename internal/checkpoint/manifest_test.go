package checkpoint

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/columnar"
	"elastichtap/internal/oltp"
	"elastichtap/internal/wal"
)

func sampleManifest() *Manifest {
	return &Manifest{
		Clock:   1234,
		Commits: 567,
		WALPos:  8910,
		Extras:  map[string]int64{"day": 18262, "warehouses": 14},
		Tables: []TableEntry{
			{Name: "warehouse", Rows: 14, ReplicaRows: 14, Dirty: []int64{0, 3, 7}, FileCRC: 0xdeadbeef},
			{Name: "neworder", Rows: 0, ReplicaRows: 0, FileCRC: 1},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	want := sampleManifest()
	var buf bytes.Buffer
	if err := WriteManifest(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Extras, want.Extras) ||
		got.Clock != want.Clock || got.Commits != want.Commits || got.WALPos != want.WALPos {
		t.Fatalf("got %+v want %+v", got, want)
	}
	for i := range want.Tables {
		w, g := want.Tables[i], got.Tables[i]
		if g.Name != w.Name || g.Rows != w.Rows || g.ReplicaRows != w.ReplicaRows ||
			g.FileCRC != w.FileCRC || len(g.Dirty) != len(w.Dirty) {
			t.Fatalf("table %d: got %+v want %+v", i, g, w)
		}
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, at := range []int{9, len(raw) / 2, len(raw) - 5} {
		mut := append([]byte(nil), raw...)
		mut[at] ^= 0x08
		if _, err := ReadManifest(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at %d accepted", at)
		}
	}
	for _, cut := range []int{3, 17, len(raw) - 1} {
		if _, err := ReadManifest(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestCheckpointBitFlipDetected pins the v2 per-section checksums: any
// single flipped bit in a table checkpoint must fail the restore rather
// than silently corrupting data — the regression the version bump fixes.
func TestCheckpointBitFlipDetected(t *testing.T) {
	db := ch.Load(oltp.NewEngine(), ch.TinySizing(), 3)
	tab := db.District.Table()
	sw := tab.Switch()
	var buf bytes.Buffer
	if err := Write(&buf, tab, sw.Snapshot, sw.SnapshotRows); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a bit in the header, in column data, and near the dictionaries.
	for _, at := range []int{10, len(raw) / 3, len(raw) / 2, len(raw) - 20} {
		mut := append([]byte(nil), raw...)
		mut[at] ^= 0x01
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at offset %d restored without error", at)
		}
	}
}

// TestReadsVersion1 keeps backward compatibility: a v1 file (no section
// checksums) must still restore.
func TestReadsVersion1(t *testing.T) {
	tab := columnar.NewTable(columnar.Schema{
		Name:    "v1tab",
		Columns: []columnar.ColumnDef{{Name: "a", Type: columnar.Int64}, {Name: "b", Type: columnar.Int64}},
	}, 4)
	tab.AppendRows([][]int64{{1, 10}, {2, 20}, {3, 30}}, 0)

	// Hand-write the v1 format: identical to v2 minus every checksum.
	var buf bytes.Buffer
	le := binary.LittleEndian
	w32 := func(v uint32) { b := make([]byte, 4); le.PutUint32(b, v); buf.Write(b) }
	w64 := func(v uint64) { b := make([]byte, 8); le.PutUint64(b, v); buf.Write(b) }
	wstr := func(s string) { w32(uint32(len(s))); buf.WriteString(s) }
	buf.WriteString(magic)
	w32(oldVersion)
	wstr("v1tab")
	w32(2)
	wstr("a")
	buf.WriteByte(byte(columnar.Int64))
	wstr("b")
	buf.WriteByte(byte(columnar.Int64))
	w64(3)
	for _, v := range []int64{1, 2, 3, 10, 20, 30} {
		w64(uint64(v))
	}

	restored, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Rows() != 3 || restored.ReadActive(2, 1) != 30 {
		t.Fatalf("v1 restore: rows=%d cell=%d", restored.Rows(), restored.ReadActive(2, 1))
	}
}

func TestReadInto(t *testing.T) {
	src := columnar.NewTable(columnar.Schema{
		Name:    "t",
		Columns: []columnar.ColumnDef{{Name: "v", Type: columnar.Int64}},
	}, 4)
	src.AppendRows([][]int64{{5}, {6}}, 0)
	sw := src.Switch()
	var buf bytes.Buffer
	if err := Write(&buf, src, sw.Snapshot, sw.SnapshotRows); err != nil {
		t.Fatal(err)
	}

	dst := columnar.NewTable(src.Schema(), 4)
	if err := ReadInto(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	if dst.Rows() != 2 || dst.ReadActive(1, 0) != 6 {
		t.Fatalf("ReadInto: rows=%d cell=%d", dst.Rows(), dst.ReadActive(1, 0))
	}
	// Non-empty destination refused.
	if err := ReadInto(bytes.NewReader(buf.Bytes()), dst); err == nil {
		t.Fatal("ReadInto into non-empty table accepted")
	}
	// Schema mismatch refused.
	other := columnar.NewTable(columnar.Schema{
		Name:    "other",
		Columns: []columnar.ColumnDef{{Name: "v", Type: columnar.Int64}},
	}, 4)
	if err := ReadInto(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("ReadInto with mismatched schema accepted")
	}
}

func TestLatestSkipsTornCheckpoints(t *testing.T) {
	fs := wal.NewMemFS()
	writeCkpt := func(seq uint64, m *Manifest, withManifest bool) {
		dir := SeqDir("db", seq)
		if err := fs.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create(dir + "/warehouse.ehcp")
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("data"))
		f.Close()
		if !withManifest {
			return
		}
		mf, err := fs.Create(dir + "/" + ManifestName)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteManifest(mf, m); err != nil {
			t.Fatal(err)
		}
		mf.Close()
	}

	if _, _, ok, _ := Latest(fs, "db"); ok {
		t.Fatal("empty dir reported a checkpoint")
	}
	writeCkpt(1, &Manifest{Clock: 1}, true)
	writeCkpt(2, &Manifest{Clock: 2}, true)
	writeCkpt(3, nil, false) // torn: no manifest
	seq, m, ok, err := Latest(fs, "db")
	if err != nil || !ok || seq != 2 || m.Clock != 2 {
		t.Fatalf("Latest = seq %d clock %d ok %v err %v, want seq 2", seq, m.Clock, ok, err)
	}
	if next := NextSeq(fs, "db"); next != 4 {
		t.Fatalf("NextSeq = %d, want 4 (above the torn 3)", next)
	}

	// A corrupt manifest is torn too.
	mf, _ := fs.Create(SeqDir("db", 4) + "/" + ManifestName)
	mf.Write([]byte("EHMFgarbage"))
	mf.Close()
	seq, _, ok, _ = Latest(fs, "db")
	if !ok || seq != 2 {
		t.Fatalf("corrupt manifest not skipped: seq %d ok %v", seq, ok)
	}
}
