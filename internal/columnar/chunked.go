package columnar

import (
	"sync"
	"sync/atomic"
)

// ChunkSize is the number of rows per storage chunk. Chunked growth keeps
// already-handed-out slices stable while the table appends, so analytical
// scans can run concurrently with transactional inserts.
const ChunkSize = 1 << 14

// Words is a growable chunked array of raw 8-byte values. Cell writes use
// atomic stores so a concurrently appended-to chunk can be handed to
// readers without tearing; the chunk directory is guarded by a RWMutex
// taken once per ChunkSize rows.
type Words struct {
	mu     sync.RWMutex
	chunks [][]int64
}

func newWords(capHint int64) *Words {
	w := &Words{}
	w.ensure(capHint)
	return w
}

// ensure guarantees storage for rows [0, n).
func (w *Words) ensure(n int64) {
	need := int((n + ChunkSize - 1) / ChunkSize)
	w.mu.RLock()
	have := len(w.chunks)
	w.mu.RUnlock()
	if have >= need {
		return
	}
	w.mu.Lock()
	for len(w.chunks) < need {
		w.chunks = append(w.chunks, make([]int64, ChunkSize))
	}
	w.mu.Unlock()
}

func (w *Words) chunk(ci int) []int64 {
	w.mu.RLock()
	c := w.chunks[ci]
	w.mu.RUnlock()
	return c
}

// Store atomically writes the value at row i (storage must exist).
func (w *Words) Store(i int64, v int64) {
	c := w.chunk(int(i / ChunkSize))
	atomic.StoreInt64(&c[i%ChunkSize], v)
}

// Load atomically reads the value at row i.
func (w *Words) Load(i int64) int64 {
	c := w.chunk(int(i / ChunkSize))
	return atomic.LoadInt64(&c[i%ChunkSize])
}

// Scan iterates rows [lo, hi) in chunk-sized runs, invoking fn with the raw
// slice for each run and the absolute row number of its first element.
// The values are read without atomics: callers must only scan ranges that
// no writer mutates concurrently (e.g. an inactive instance snapshot).
func (w *Words) Scan(lo, hi int64, fn func(vals []int64, base int64)) {
	for i := lo; i < hi; {
		ci := int(i / ChunkSize)
		off := i % ChunkSize
		end := int64(ChunkSize)
		if rem := hi - (i - off); rem < end {
			end = rem
		}
		c := w.chunk(ci)
		fn(c[off:end], i)
		i += end - off
	}
}

// Slice returns the raw storage for rows [lo, hi), which must lie within a
// single chunk (hi-lo <= ChunkSize and no chunk boundary crossed). Like
// Scan, callers must not read ranges a writer mutates concurrently.
func (w *Words) Slice(lo, hi int64) []int64 {
	if lo/ChunkSize != (hi-1)/ChunkSize {
		panic("columnar: Slice range crosses a chunk boundary")
	}
	c := w.chunk(int(lo / ChunkSize))
	return c[lo%ChunkSize : (hi-1)%ChunkSize+1]
}

// CopyRange copies rows [lo, hi) from src into w at the same positions.
// Source cells are read atomically: the bulk ETL copy may run after a
// later exchange cycle re-activated the source instance (a batch reusing
// its snapshot set), where transactions update cells in place. Row-level
// consistency of concurrently updated rows is the caller's concern — the
// update-indication bits keep such rows fresh for the next ETL.
func (w *Words) CopyRange(src *Words, lo, hi int64) {
	w.ensure(hi)
	src.Scan(lo, hi, func(vals []int64, base int64) {
		dst := w.chunk(int(base / ChunkSize))
		off := base % ChunkSize
		for j := range vals {
			dst[off+int64(j)] = atomic.LoadInt64(&vals[j])
		}
	})
}
