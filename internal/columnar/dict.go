package columnar

import "sync"

// Dict is an order-of-arrival string dictionary shared by both instances of
// a String column. Codes are stable once assigned, so the twin instances
// and the OLAP replica can exchange raw code words without re-encoding.
type Dict struct {
	mu    sync.RWMutex
	codes map[string]int64
	strs  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]int64)}
}

// Code returns the code for s, assigning a new one if absent.
func (d *Dict) Code(s string) int64 {
	d.mu.RLock()
	c, ok := d.codes[s]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.codes[s]; ok {
		return c
	}
	c = int64(len(d.strs))
	d.codes[s] = c
	d.strs = append(d.strs, s)
	return c
}

// Lookup returns the code for s without assigning one.
func (d *Dict) Lookup(s string) (int64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.codes[s]
	return c, ok
}

// Str returns the string for a code; unknown codes yield "".
func (d *Dict) Str(code int64) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if code < 0 || code >= int64(len(d.strs)) {
		return ""
	}
	return d.strs[code]
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.strs)
}
