package columnar

import (
	"sync/atomic"
)

// Replica is the OLAP engine's private columnar copy of a table (the "OLAP
// instance" of Figure 2). Row IDs align with the OLTP instances, so the
// delta-ETL can copy updated rows in place and append inserted rows. The
// replica shares the table's string dictionaries, making raw words
// directly comparable across engines.
type Replica struct {
	table *Table
	cols  []*Words
	rows  atomic.Int64

	insertedBytes atomic.Int64 // lifetime ETL volume, diagnostics
}

// NewReplica returns an empty replica of the table.
func NewReplica(t *Table) *Replica {
	r := &Replica{table: t}
	r.cols = make([]*Words, len(t.schema.Columns))
	for i := range r.cols {
		r.cols[i] = newWords(0)
	}
	return r
}

// Table returns the source table.
func (r *Replica) Table() *Table { return r.table }

// Rows returns the replica's watermark: rows [0, Rows) are loaded.
func (r *Replica) Rows() int64 { return r.rows.Load() }

// Col exposes raw column storage for analytical scans.
func (r *Replica) Col(c int) *Words { return r.cols[c] }

// BytesCopied returns the lifetime ETL volume into this replica.
func (r *Replica) BytesCopied() int64 { return r.insertedBytes.Load() }

// CopyInserts bulk-copies rows [lo, hi) of every column from the snapshot
// instance and advances the watermark to hi. It returns the bytes copied.
func (r *Replica) CopyInserts(snap *Instance, lo, hi int64) int64 {
	if hi <= lo {
		return 0
	}
	for c := range r.cols {
		r.cols[c].CopyRange(snap.cols[c], lo, hi)
	}
	if hi > r.rows.Load() {
		r.rows.Store(hi)
	}
	b := (hi - lo) * r.table.schema.RowBytes()
	r.insertedBytes.Add(b)
	return b
}

// CopyRow copies a single (updated) row from the snapshot instance,
// returning the bytes copied. The row must be below the watermark.
func (r *Replica) CopyRow(snap *Instance, row int64) int64 {
	for c := range r.cols {
		r.cols[c].Store(row, snap.cols[c].Load(row))
	}
	b := r.table.schema.RowBytes()
	r.insertedBytes.Add(b)
	return b
}

// EqualRow reports whether the replica row matches the instance row
// byte-for-byte (test helper for the sync/ETL invariants).
func (r *Replica) EqualRow(in *Instance, row int64) bool {
	for c := range r.cols {
		if r.cols[c].Load(row) != in.cols[c].Load(row) {
			return false
		}
	}
	return true
}
