package columnar

import (
	"fmt"
	"sync"
	"sync/atomic"

	"elastichtap/internal/bitset"
)

// Instance is one of a table's two columnar copies. Rows above the visible
// watermark exist physically (inserts go to both instances) but belong to a
// later epoch and are exposed only after the instance becomes active again.
type Instance struct {
	cols    []*Words
	visible atomic.Int64 // rows exposed to readers of this instance
	// dirty marks rows whose newest committed value lives in this instance
	// and has not yet been propagated to the twin (the paper's
	// update-indication bits, §3.2).
	dirty *bitset.Atomic
	epoch atomic.Uint64 // epoch number of the last activation
}

// Visible returns the number of rows readable in this instance.
func (in *Instance) Visible() int64 { return in.visible.Load() }

// Epoch returns the instance's last activation epoch.
func (in *Instance) Epoch() uint64 { return in.epoch.Load() }

// DirtyCount returns the number of rows updated here since the last sync.
func (in *Instance) DirtyCount() int { return in.dirty.Count() }

// Col exposes raw column storage for scans. OLAP access paths scan the
// inactive instance only, which no writer updates below the watermark.
func (in *Instance) Col(c int) *Words { return in.cols[c] }

// ColumnStats are the per-column instance statistics the SM maintains:
// rows at the time of switch, an updated-tuples flag, and the epoch (§3.2).
type ColumnStats struct {
	RowsAtSwitch int64
	HasUpdates   bool
	Epoch        uint64
}

// Table is a twin-instance columnar table plus the shared metadata both
// copies use: string dictionaries, per-row commit timestamps, and the
// dirty-versus-OLAP bitset that feeds freshness accounting.
type Table struct {
	schema Schema
	dicts  []*Dict

	inst   [2]*Instance
	active atomic.Int32

	rowTS *Words       // commit timestamp of each row's newest version
	rows  atomic.Int64 // committed rows (visible in the active instance)

	// dirtyOLAP marks rows updated since the OLAP replica last synchronized;
	// it drives Nfq/Nft freshness accounting and delta-ETL.
	dirtyOLAP *bitset.Atomic

	// updates counts lifetime in-place cell updates. Insert-only tables
	// stay at zero, which lets the RDE skip scan/switch exclusion for
	// them: appends are chunk-stable and row-disjoint from any scan.
	updates atomic.Int64

	// colUpdates counts lifetime in-place updates per column. Secondary
	// indexes use it for staleness checks: a column whose counter has not
	// moved since the index was built can serve lookups from postings
	// alone, even while sibling columns of the same table churn.
	colUpdates []atomic.Int64

	epoch atomic.Uint64

	appendMu sync.Mutex // serializes row allocation across committing txns
	switchMu sync.Mutex // serializes instance switches
	// applyMu lets committing transactions pin the active instance for the
	// duration of their in-place write batch: a switch concurrent with a
	// multi-cell commit would otherwise split the row across instances
	// ("returns the starting address of the inactive instance when no
	// active OLTP worker thread is using it any more", §3.2).
	applyMu sync.RWMutex

	statsMu sync.Mutex
	stats   [2][]ColumnStats
}

// NewTable builds an empty twin-instance table.
func NewTable(schema Schema, capHint int64) *Table {
	if len(schema.Columns) == 0 {
		panic(fmt.Sprintf("columnar: table %q has no columns", schema.Name))
	}
	t := &Table{schema: schema}
	t.dicts = make([]*Dict, len(schema.Columns))
	for i, c := range schema.Columns {
		if c.Type == String {
			t.dicts[i] = NewDict()
		}
	}
	for k := 0; k < 2; k++ {
		in := &Instance{dirty: bitset.New(int(capHint))}
		in.cols = make([]*Words, len(schema.Columns))
		for i := range in.cols {
			in.cols[i] = newWords(capHint)
		}
		t.inst[k] = in
		t.stats[k] = make([]ColumnStats, len(schema.Columns))
	}
	t.rowTS = newWords(capHint)
	t.dirtyOLAP = bitset.New(int(capHint))
	t.colUpdates = make([]atomic.Int64, len(schema.Columns))
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Dict returns the dictionary of a String column (nil otherwise).
func (t *Table) Dict(col int) *Dict { return t.dicts[col] }

// Rows returns the committed row count (active-instance visibility).
func (t *Table) Rows() int64 { return t.rows.Load() }

// ActiveIndex returns which instance (0 or 1) is active.
func (t *Table) ActiveIndex() int { return int(t.active.Load()) }

// Active returns the active instance.
func (t *Table) Active() *Instance { return t.inst[t.active.Load()] }

// Inactive returns the inactive instance.
func (t *Table) Inactive() *Instance { return t.inst[1-t.active.Load()] }

// Instance returns instance k (0 or 1).
func (t *Table) Instance(k int) *Instance { return t.inst[k] }

// Epoch returns the current switch epoch.
func (t *Table) Epoch() uint64 { return t.epoch.Load() }

// DirtyOLAP exposes the updated-since-OLAP-sync bitset.
func (t *Table) DirtyOLAP() *bitset.Atomic { return t.dirtyOLAP }

// AppendRows allocates n new committed rows, writing each provided row to
// BOTH instances (§3.2: "inserts are pushed to both instances"), stamps
// them with commit timestamp ts, and returns the first row ID. rows[i]
// must have one raw word per column; use EncodeRow for friendly values.
func (t *Table) AppendRows(rows [][]int64, ts uint64) int64 {
	n := int64(len(rows))
	if n == 0 {
		return t.rows.Load()
	}
	t.appendMu.Lock()
	base := t.rows.Load()
	end := base + n
	for k := 0; k < 2; k++ {
		for _, c := range t.inst[k].cols {
			c.ensure(end)
		}
	}
	t.rowTS.ensure(end)
	for i, row := range rows {
		if len(row) != len(t.schema.Columns) {
			t.appendMu.Unlock()
			panic(fmt.Sprintf("columnar: row width %d != schema width %d for table %q",
				len(row), len(t.schema.Columns), t.schema.Name))
		}
		r := base + int64(i)
		for c, v := range row {
			t.inst[0].cols[c].Store(r, v)
			t.inst[1].cols[c].Store(r, v)
		}
		t.rowTS.Store(r, int64(ts))
		t.dirtyOLAP.Set(int(r))
	}
	// Publish: new rows become visible in the active instance only.
	t.rows.Store(end)
	t.inst[t.active.Load()].visible.Store(end)
	t.appendMu.Unlock()
	return base
}

// BeginApply pins the active instance for a batch of UpdateCell calls;
// EndApply releases it. Committing transactions bracket their per-table
// write batch so an instance switch cannot land mid-row.
func (t *Table) BeginApply() { t.applyMu.RLock() }

// EndApply releases the pin taken by BeginApply.
func (t *Table) EndApply() { t.applyMu.RUnlock() }

// UpdateCell writes one cell of a committed row in the active instance,
// marking the record's update-indication bits. Callers must hold the
// record's exclusive lock (MV2PL), hold BeginApply for multi-cell batches,
// and push the pre-image to the version store before calling.
func (t *Table) UpdateCell(row int64, col int, v int64, ts uint64) {
	a := t.active.Load()
	in := t.inst[a]
	in.cols[col].Store(row, v)
	in.dirty.Set(int(row))
	t.dirtyOLAP.Set(int(row))
	t.updates.Add(1)
	t.colUpdates[col].Add(1)
	t.rowTS.Store(row, int64(ts))
	t.statsMu.Lock()
	t.stats[a][col].HasUpdates = true
	t.statsMu.Unlock()
}

// ReadCell reads one cell of the given instance with atomic semantics,
// suitable for transactional point reads against the active instance.
func (t *Table) ReadCell(inst int, row int64, col int) int64 {
	return t.inst[inst].cols[col].Load(row)
}

// ReadActive reads one cell of the active instance.
func (t *Table) ReadActive(row int64, col int) int64 {
	return t.ReadCell(int(t.active.Load()), row, col)
}

// RowTS returns the commit timestamp of the row's newest version.
func (t *Table) RowTS(row int64) uint64 { return uint64(t.rowTS.Load(row)) }

// UpdateCount returns the lifetime number of in-place cell updates; zero
// means the table has only ever been appended to.
func (t *Table) UpdateCount() int64 { return t.updates.Load() }

// ColumnUpdateCount returns the lifetime number of in-place updates that
// hit column col (across both instances); zero means the column has only
// ever been written by appends, so all sources agree on its values.
func (t *Table) ColumnUpdateCount(col int) int64 { return t.colUpdates[col].Load() }

// SwitchResult describes the outcome of an active-instance switch.
type SwitchResult struct {
	// Snapshot is the now-inactive instance holding a consistent snapshot.
	Snapshot *Instance
	// SnapshotIndex is its instance number.
	SnapshotIndex int
	// SnapshotRows is the row count of the snapshot.
	SnapshotRows int64
	// DirtyRows is how many records must be propagated to the new active
	// instance by the RDE sync.
	DirtyRows int
	// Epoch is the new epoch number.
	Epoch uint64
}

// Switch makes the inactive instance active and returns the old active
// instance as the consistent snapshot (§3.2). The caller (the RDE engine)
// must follow up with SyncTo to propagate dirty records into the new
// active instance before transactions read stale values; see rde.Exchange.
func (t *Table) Switch() SwitchResult {
	t.switchMu.Lock()
	defer t.switchMu.Unlock()
	// Wait for in-flight commit batches: no worker may straddle the flip.
	t.applyMu.Lock()
	defer t.applyMu.Unlock()
	t.appendMu.Lock()
	oldA := t.active.Load()
	newA := 1 - oldA
	rows := t.rows.Load()
	epoch := t.epoch.Add(1)
	// The new active instance exposes everything committed so far,
	// including inserts that were hidden while it was inactive.
	for _, c := range t.inst[newA].cols {
		c.ensure(rows)
	}
	t.inst[newA].visible.Store(rows)
	t.inst[newA].epoch.Store(epoch)
	t.active.Store(newA)
	dirty := t.inst[oldA].DirtyCount()
	t.statsMu.Lock()
	for c := range t.stats[oldA] {
		t.stats[oldA][c].RowsAtSwitch = rows
		t.stats[oldA][c].Epoch = epoch
	}
	t.statsMu.Unlock()
	t.appendMu.Unlock()
	return SwitchResult{
		Snapshot:      t.inst[oldA],
		SnapshotIndex: int(oldA),
		SnapshotRows:  rows,
		DirtyRows:     dirty,
		Epoch:         epoch,
	}
}

// SyncTo drains the snapshot instance's dirty bits, copying each marked
// record into the now-active instance unless it has been re-updated there
// in the meantime ("in case they have not been updated there as well",
// §3.4). lock must acquire the record's exclusive lock and return its
// release function, so the copy cannot race a committing transaction.
// It returns the number of records copied.
func (t *Table) SyncTo(snapIdx int, lock func(row int64) func()) int {
	snap := t.inst[snapIdx]
	dst := t.inst[1-snapIdx]
	copied := 0
	snap.dirty.DrainSet(func(i int) {
		row := int64(i)
		unlock := lock(row)
		if !dst.dirty.Test(i) {
			for c := range snap.cols {
				dst.cols[c].Store(row, snap.cols[c].Load(row))
			}
			copied++
		}
		unlock()
	})
	return copied
}

// Stats returns a copy of the per-column stats of instance k.
func (t *Table) Stats(k int) []ColumnStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return append([]ColumnStats(nil), t.stats[k]...)
}

// EncodeRow converts friendly Go values into raw Words following the
// schema: int64/int for Int64, float64 for Float64, string for String.
func (t *Table) EncodeRow(vals ...any) []int64 {
	if len(vals) != len(t.schema.Columns) {
		panic(fmt.Sprintf("columnar: EncodeRow got %d values for %d columns of %q",
			len(vals), len(t.schema.Columns), t.schema.Name))
	}
	row := make([]int64, len(vals))
	for i, v := range vals {
		row[i] = t.EncodeValue(i, v)
	}
	return row
}

// EncodeValue converts one friendly value for column col into a raw word.
func (t *Table) EncodeValue(col int, v any) int64 {
	def := t.schema.Columns[col]
	switch def.Type {
	case Int64:
		switch x := v.(type) {
		case int64:
			return x
		case int:
			return int64(x)
		case uint64:
			return int64(x)
		}
	case Float64:
		if x, ok := v.(float64); ok {
			return EncodeFloat(x)
		}
	case String:
		if x, ok := v.(string); ok {
			return t.dicts[col].Code(x)
		}
	}
	panic(fmt.Sprintf("columnar: value %T not assignable to column %s %s of %q",
		v, def.Name, def.Type, t.schema.Name))
}

// DecodeValue converts a raw word of column col back to a friendly value.
func (t *Table) DecodeValue(col int, w int64) any {
	switch t.schema.Columns[col].Type {
	case Float64:
		return DecodeFloat(w)
	case String:
		return t.dicts[col].Str(w)
	default:
		return w
	}
}

// FreshStats summarizes data the OLAP replica has not yet absorbed.
type FreshStats struct {
	// Rows is the table's committed row count.
	Rows int64
	// UpdatedRows counts rows with dirtyOLAP bits set at or below the
	// OLAP watermark (rows the replica has but that changed since).
	UpdatedRows int64
	// InsertedRows counts rows beyond the OLAP watermark.
	InsertedRows int64
}

// FreshSince computes freshness statistics relative to an OLAP replica
// that has synced rows [0, olapRows) and cleared bits at its last ETL.
func (t *Table) FreshSince(olapRows int64) FreshStats {
	rows := t.rows.Load()
	var updated int64
	t.dirtyOLAP.ForEachSet(func(i int) {
		if int64(i) < olapRows {
			updated++
		}
	})
	inserted := rows - olapRows
	if inserted < 0 {
		inserted = 0
	}
	return FreshStats{Rows: rows, UpdatedRows: updated, InsertedRows: inserted}
}
