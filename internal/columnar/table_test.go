package columnar

import (
	"sync"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return Schema{Name: "t", Columns: []ColumnDef{
		{Name: "id", Type: Int64},
		{Name: "amt", Type: Float64},
		{Name: "tag", Type: String},
	}}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tab := NewTable(testSchema(), 8)
	row := tab.EncodeRow(42, 3.25, "hello")
	if got := row[0]; got != 42 {
		t.Fatalf("int encode = %d", got)
	}
	if got := tab.DecodeValue(1, row[1]); got != 3.25 {
		t.Fatalf("float decode = %v", got)
	}
	if got := tab.DecodeValue(2, row[2]); got != "hello" {
		t.Fatalf("string decode = %v", got)
	}
}

func TestAppendVisibility(t *testing.T) {
	tab := NewTable(testSchema(), 8)
	tab.AppendRows([][]int64{tab.EncodeRow(1, 1.0, "a")}, 1)
	if tab.Rows() != 1 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	if tab.Active().Visible() != 1 {
		t.Fatalf("active visible = %d", tab.Active().Visible())
	}
	// Inserts are physically in both instances but only visible in the
	// active one (§3.2).
	if tab.Inactive().Visible() != 0 {
		t.Fatalf("inactive visible = %d, want 0", tab.Inactive().Visible())
	}
	if got := tab.ReadCell(1-tab.ActiveIndex(), 0, 0); got != 1 {
		t.Fatalf("physical twin copy missing: %d", got)
	}
}

func TestSwitchExposesInserts(t *testing.T) {
	tab := NewTable(testSchema(), 8)
	tab.AppendRows([][]int64{tab.EncodeRow(1, 1.0, "a"), tab.EncodeRow(2, 2.0, "b")}, 1)
	sw := tab.Switch()
	if sw.SnapshotRows != 2 {
		t.Fatalf("snapshot rows = %d", sw.SnapshotRows)
	}
	if tab.Active().Visible() != 2 {
		t.Fatalf("new active visible = %d", tab.Active().Visible())
	}
	if sw.Epoch != 1 || tab.Epoch() != 1 {
		t.Fatalf("epoch = %d/%d", sw.Epoch, tab.Epoch())
	}
	// Snapshot sees both rows.
	if got := sw.Snapshot.Col(0).Load(1); got != 2 {
		t.Fatalf("snapshot row 1 col 0 = %d", got)
	}
}

func TestUpdateGoesToActiveOnly(t *testing.T) {
	tab := NewTable(testSchema(), 8)
	tab.AppendRows([][]int64{tab.EncodeRow(1, 1.0, "a")}, 1)
	tab.Switch() // both instances now hold row 0
	a := tab.ActiveIndex()
	tab.UpdateCell(0, 0, 99, 5)
	if got := tab.ReadCell(a, 0, 0); got != 99 {
		t.Fatalf("active = %d", got)
	}
	if got := tab.ReadCell(1-a, 0, 0); got != 1 {
		t.Fatalf("inactive mutated: %d", got)
	}
	if !tab.Instance(a).dirty.Test(0) {
		t.Fatal("update-indication bit not set")
	}
	if tab.RowTS(0) != 5 {
		t.Fatalf("rowTS = %d", tab.RowTS(0))
	}
	st := tab.Stats(a)
	if !st[0].HasUpdates {
		t.Fatal("column stats missing HasUpdates")
	}
}

func noLock(int64) func() { return func() {} }

func lockNothing(row int64) func() { return noLock(row) }

func TestSwitchSyncTwinInvariant(t *testing.T) {
	tab := NewTable(testSchema(), 8)
	var rows [][]int64
	for i := 0; i < 100; i++ {
		rows = append(rows, tab.EncodeRow(i, float64(i), "x"))
	}
	tab.AppendRows(rows, 1)
	tab.Switch()
	tab.SyncTo(1-tab.ActiveIndex(), lockNothing)

	// Update a few rows on the active instance.
	for _, r := range []int64{3, 50, 99} {
		tab.UpdateCell(r, 0, r*1000, 7)
	}
	sw := tab.Switch()
	copied := tab.SyncTo(sw.SnapshotIndex, lockNothing)
	if copied != 3 {
		t.Fatalf("copied = %d, want 3", copied)
	}
	// Twin invariant: both instances identical below the watermark.
	for r := int64(0); r < sw.SnapshotRows; r++ {
		for c := 0; c < 3; c++ {
			if tab.ReadCell(0, r, c) != tab.ReadCell(1, r, c) {
				t.Fatalf("instances diverge at row %d col %d", r, c)
			}
		}
	}
	if sw.Snapshot.DirtyCount() != 0 {
		t.Fatalf("dirty bits remain: %d", sw.Snapshot.DirtyCount())
	}
}

func TestSyncSkipsReupdatedRows(t *testing.T) {
	tab := NewTable(testSchema(), 8)
	tab.AppendRows([][]int64{tab.EncodeRow(1, 1.0, "a")}, 1)
	tab.Switch()
	tab.SyncTo(1-tab.ActiveIndex(), lockNothing)
	tab.UpdateCell(0, 0, 100, 2) // on active (epoch 1)
	sw := tab.Switch()           // snapshot holds 100
	// A "transaction" updates the row on the new active before sync.
	tab.UpdateCell(0, 0, 200, 3)
	tab.SyncTo(sw.SnapshotIndex, lockNothing)
	// The newer value must survive: "in case they have not been updated
	// there as well by that time" (§3.4).
	if got := tab.ReadActive(0, 0); got != 200 {
		t.Fatalf("sync overwrote newer value: %d", got)
	}
}

func TestFreshSince(t *testing.T) {
	tab := NewTable(testSchema(), 8)
	var rows [][]int64
	for i := 0; i < 10; i++ {
		rows = append(rows, tab.EncodeRow(i, 0.0, "x"))
	}
	tab.AppendRows(rows, 1)
	st := tab.FreshSince(0)
	if st.InsertedRows != 10 || st.UpdatedRows != 0 {
		t.Fatalf("fresh = %+v", st)
	}
	// Simulate an OLAP replica that has the first 10 rows and cleared bits.
	tab.DirtyOLAP().Reset()
	tab.UpdateCell(2, 0, 5, 2)
	tab.AppendRows([][]int64{tab.EncodeRow(10, 0.0, "y")}, 3)
	st = tab.FreshSince(10)
	if st.UpdatedRows != 1 {
		t.Fatalf("updated = %d, want 1", st.UpdatedRows)
	}
	if st.InsertedRows != 1 {
		t.Fatalf("inserted = %d, want 1", st.InsertedRows)
	}
}

func TestConcurrentAppendAndScan(t *testing.T) {
	tab := NewTable(testSchema(), 8)
	var rows [][]int64
	for i := 0; i < 1000; i++ {
		rows = append(rows, tab.EncodeRow(i, 0.0, "x"))
	}
	tab.AppendRows(rows, 1)
	sw := tab.Switch()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent appender (inserts beyond the watermark)
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tab.AppendRows([][]int64{tab.EncodeRow(1000+i, 0.0, "y")}, 2)
		}
	}()
	// Scan the snapshot below its watermark repeatedly.
	for rep := 0; rep < 20; rep++ {
		var sum int64
		sw.Snapshot.Col(0).Scan(0, sw.SnapshotRows, func(vals []int64, base int64) {
			for _, v := range vals {
				sum += v
			}
		})
		if want := int64(1000 * 999 / 2); sum != want {
			t.Fatalf("scan sum = %d, want %d", sum, want)
		}
	}
	wg.Wait()
}

func TestReplicaETLEquivalence(t *testing.T) {
	tab := NewTable(testSchema(), 8)
	var rows [][]int64
	for i := 0; i < 200; i++ {
		rows = append(rows, tab.EncodeRow(i, float64(i)/2, "x"))
	}
	tab.AppendRows(rows, 1)
	rep := NewReplica(tab)
	sw := tab.Switch()
	if b := rep.CopyInserts(sw.Snapshot, 0, sw.SnapshotRows); b != 200*tab.Schema().RowBytes() {
		t.Fatalf("bytes = %d", b)
	}
	if rep.Rows() != 200 {
		t.Fatalf("replica rows = %d", rep.Rows())
	}
	for r := int64(0); r < 200; r++ {
		if !rep.EqualRow(sw.Snapshot, r) {
			t.Fatalf("replica row %d differs", r)
		}
	}
	// Copy an updated row individually.
	tab.UpdateCell(7, 1, EncodeFloat(123.5), 3)
	sw2 := tab.Switch()
	rep.CopyRow(sw2.Snapshot, 7)
	if got := DecodeFloat(rep.Col(1).Load(7)); got != 123.5 {
		t.Fatalf("updated row copy = %v", got)
	}
}

func TestWordsSliceBoundaries(t *testing.T) {
	w := newWords(ChunkSize * 2)
	w.Store(ChunkSize-1, 7)
	w.Store(ChunkSize, 8)
	s := w.Slice(ChunkSize-1, ChunkSize)
	if len(s) != 1 || s[0] != 7 {
		t.Fatalf("slice = %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-chunk Slice must panic")
		}
	}()
	w.Slice(ChunkSize-1, ChunkSize+1)
}

func TestQuickAppendReadBack(t *testing.T) {
	f := func(vals []int64) bool {
		tab := NewTable(Schema{Name: "q", Columns: []ColumnDef{{Name: "v", Type: Int64}}}, 4)
		rows := make([][]int64, len(vals))
		for i, v := range vals {
			rows[i] = []int64{v}
		}
		tab.AppendRows(rows, 1)
		for i, v := range vals {
			if tab.ReadActive(int64(i), 0) != v {
				return false
			}
		}
		return tab.Rows() == int64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSwitchRoundTrips(t *testing.T) {
	// Property: after any number of update/switch/sync rounds, the active
	// instance holds the newest value of every row.
	f := func(updates []uint8) bool {
		tab := NewTable(Schema{Name: "q", Columns: []ColumnDef{{Name: "v", Type: Int64}}}, 4)
		const n = 16
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = []int64{0}
		}
		tab.AppendRows(rows, 1)
		tab.Switch()
		tab.SyncTo(1-tab.ActiveIndex(), lockNothing)
		want := make([]int64, n)
		ts := uint64(2)
		for step, u := range updates {
			r := int64(u % n)
			v := int64(step + 1)
			tab.UpdateCell(r, 0, v, ts)
			ts++
			want[r] = v
			if step%3 == 2 {
				sw := tab.Switch()
				tab.SyncTo(sw.SnapshotIndex, lockNothing)
			}
		}
		for r := int64(0); r < n; r++ {
			if tab.ReadActive(r, 0) != want[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
