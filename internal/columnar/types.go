// Package columnar implements the in-memory columnar storage manager of the
// paper's OLTP engine (§3.2): every table keeps two full columnar instances
// ("twin instances", after Twin Blocks / Twin Tuples), only one of which is
// active for transaction processing at any time. Updates land on the active
// instance and set a per-record update-indication bit; inserts are appended
// to both instances but become visible in the inactive one only after a
// switch. The Resource and Data Exchange engine switches the active
// instance to hand the OLAP engine a consistent snapshot without
// interfering with transaction execution.
package columnar

import (
	"fmt"
	"math"
)

// Type enumerates the supported column types. All values are stored as raw
// 8-byte words; Float64 uses IEEE bits, String uses dictionary codes.
type Type int8

const (
	// Int64 stores signed integers (also dates as epoch days, IDs, counts).
	Int64 Type = iota
	// Float64 stores IEEE-754 doubles (amounts, prices).
	Float64
	// String stores dictionary-encoded variable-length text.
	String
)

// String names the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", int8(t))
	}
}

// WordBytes is the storage width of every column value.
const WordBytes = 8

// ColumnDef describes one column of a schema.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema describes a table: its name and ordered column definitions.
type Schema struct {
	Name    string
	Columns []ColumnDef
}

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColumn returns the position of the named column or panics. Schemas
// are static program data, so a miss is a programming error.
func (s Schema) MustColumn(name string) int {
	i := s.ColumnIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("columnar: schema %q has no column %q", s.Name, name))
	}
	return i
}

// RowBytes returns the storage width of one row.
func (s Schema) RowBytes() int64 { return int64(len(s.Columns)) * WordBytes }

// EncodeFloat packs a float64 into the raw word representation.
func EncodeFloat(f float64) int64 { return int64(math.Float64bits(f)) }

// DecodeFloat unpacks a raw word into a float64.
func DecodeFloat(w int64) float64 { return math.Float64frombits(uint64(w)) }
