package core

import (
	"context"
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/rde"
	"elastichtap/internal/topology"
)

func newTestSystem(t *testing.T) (*System, *ch.DB) {
	t.Helper()
	cfg := DefaultSystemConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := ch.Load(sys.OLTPE, ch.TinySizing(), 1)
	sys.OLTPE.Workers().SetWorkload(ch.NewMix(db, 0, 1))
	sys.ApplyPlacements()
	return sys, db
}

func TestBootstrapIsS2(t *testing.T) {
	sys, _ := newTestSystem(t)
	if sys.Sched.State() != S2 {
		t.Fatalf("boot state = %v, want S2", sys.Sched.State())
	}
	// Each engine owns one full socket (§5.1).
	if got := sys.Ledger.Count(0, topology.OLTP); got != 14 {
		t.Fatalf("OLTP cores on socket 0 = %d", got)
	}
	if got := sys.Ledger.Count(1, topology.OLAP); got != 14 {
		t.Fatalf("OLAP cores on socket 1 = %d", got)
	}
}

func TestMigrationsConserveCoresAndRespectFloors(t *testing.T) {
	sys, _ := newTestSystem(t)
	total := sys.Cfg.Topology.TotalCores()
	for _, st := range []State{S1, S2, S3IS, S3NI, S1, S3NI, S2} {
		sys.Sched.MigrateTo(st)
		oltp := sys.Ledger.CountTotal(topology.OLTP)
		olap := sys.Ledger.CountTotal(topology.OLAP)
		if oltp+olap != total {
			t.Fatalf("state %v: %d+%d != %d cores", st, oltp, olap, total)
		}
		floor := sys.Sched.Config().OLTPCpuThres[0]
		switch st {
		case S1, S3NI:
			if got := sys.Ledger.Count(0, topology.OLTP); got < floor {
				t.Fatalf("state %v: OLTP below floor: %d < %d", st, got, floor)
			}
		case S2, S3IS:
			if got := sys.Ledger.Count(0, topology.OLTP); got != 14 {
				t.Fatalf("state %v: OLTP should own its socket, has %d", st, got)
			}
		}
	}
}

func TestMigrateS1TradesCores(t *testing.T) {
	sys, _ := newTestSystem(t)
	sys.Sched.MigrateTo(S1)
	k := sys.Sched.Config().ElasticCores
	if got := sys.Ledger.Count(0, topology.OLAP); got != k {
		t.Fatalf("OLAP cores on OLTP socket = %d, want %d", got, k)
	}
	if got := sys.Ledger.Count(1, topology.OLTP); got != k {
		t.Fatalf("OLTP cores on OLAP socket = %d, want %d (trade)", got, k)
	}
}

func TestMigrateS3NILendsWithoutTrading(t *testing.T) {
	sys, _ := newTestSystem(t)
	sys.Sched.MigrateTo(S3NI)
	k := sys.Sched.Config().ElasticCores
	if got := sys.Ledger.Count(0, topology.OLAP); got != k {
		t.Fatalf("borrowed cores = %d, want %d", got, k)
	}
	if got := sys.Ledger.Count(1, topology.OLTP); got != 0 {
		t.Fatalf("OLTP must not receive OLAP-socket cores in S3-NI, has %d", got)
	}
	if got := sys.Ledger.Count(1, topology.OLAP); got != 14 {
		t.Fatalf("OLAP socket cores = %d", got)
	}
}

func TestDecideAlgorithm2(t *testing.T) {
	sys, _ := newTestSystem(t)
	cfg := sys.Sched.Config()

	fLow := rde.Freshness{Nfq: 10, Nft: 1000} // Nfq << α·Nft
	fHigh := rde.Freshness{Nfq: 900, Nft: 1000}

	// Hybrid elasticity → S3-NI.
	if st := sys.Sched.Decide(fLow, false); st != S3NI {
		t.Fatalf("hybrid low-fresh = %v, want S3-NI", st)
	}
	// Batch always ETLs.
	if st := sys.Sched.Decide(fLow, true); st != S2 {
		t.Fatalf("batch = %v, want S2", st)
	}
	// High freshness share → S2.
	if st := sys.Sched.Decide(fHigh, false); st != S2 {
		t.Fatalf("high-fresh = %v, want S2", st)
	}
	// Elasticity off → S3-IS.
	cfg.Elasticity = false
	if err := sys.Sched.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	if st := sys.Sched.Decide(fLow, false); st != S3IS {
		t.Fatalf("no-elasticity = %v, want S3-IS", st)
	}
	// Co-location mode → S1.
	cfg.Elasticity = true
	cfg.Mode = ModeColocation
	if err := sys.Sched.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	if st := sys.Sched.Decide(fLow, false); st != S1 {
		t.Fatalf("co-location mode = %v, want S1", st)
	}
	// α = 0 always prefers S2 when any fresh data exists.
	cfg.Alpha = 0
	if err := sys.Sched.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	if st := sys.Sched.Decide(fLow, false); st != S2 {
		t.Fatalf("α=0 = %v, want S2", st)
	}
}

func TestPrimeReplicasSetsFreshnessRateOne(t *testing.T) {
	sys, _ := newTestSystem(t)
	res := sys.PrimeReplicas()
	if res.Bytes == 0 || res.InsertedRows == 0 {
		t.Fatalf("prime copied nothing: %+v", res)
	}
	f := sys.X.MeasureFreshness(sys.OLTPE.Tables(), ch.TOrderLine, 3)
	if f.Rate < 0.999 || f.Nft != 0 {
		t.Fatalf("after prime: rate=%v Nft=%d, want 1 and 0", f.Rate, f.Nft)
	}
}

func TestRunQueryAdaptive(t *testing.T) {
	sys, db := newTestSystem(t)
	sys.PrimeReplicas()
	q := db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0))

	// The tiny test database saturates its update working set instantly,
	// which drives Nfq/Nft high; raise α so the small delta still reads as
	// "not worth an ETL" and Algorithm 2 picks the hybrid state.
	cfgHi := sys.Sched.Config()
	cfgHi.Alpha = 0.95
	if err := sys.Sched.SetConfig(cfgHi); err != nil {
		t.Fatal(err)
	}

	// Small delta: hybrid state (S3-NI under the config), split access,
	// no ETL.
	sys.InjectTransactions(20)
	rep2, _, err := sys.RunQueryContext(context.Background(), q, QueryOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.State != S3NI {
		t.Fatalf("query state = %v, want S3-NI", rep2.State)
	}
	if rep2.ETLSeconds != 0 {
		t.Fatal("hybrid state must not ETL")
	}
	if rep2.Method != rde.ReadSplit {
		t.Fatalf("method = %v, want split", rep2.Method)
	}
	if rep2.ExecSeconds <= 0 || rep2.ResponseSeconds < rep2.ExecSeconds {
		t.Fatalf("timing wrong: %+v", rep2)
	}
	if rep2.Nfq <= 0 || rep2.Nft < rep2.Nfq {
		t.Fatalf("freshness accounting: Nfq=%d Nft=%d", rep2.Nfq, rep2.Nft)
	}

	// With α forced to 0 any fresh data triggers the ETL path (S2).
	cfg := sys.Sched.Config()
	cfg.Alpha = 0
	if err := sys.Sched.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	sys.InjectTransactions(10)
	rep3, _, err := sys.RunQueryContext(context.Background(), q, QueryOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.State != S2 {
		t.Fatalf("α=0 state = %v, want S2", rep3.State)
	}
	if rep3.ETLBytes == 0 || rep3.ETLSeconds <= 0 {
		t.Fatalf("S2 must pay an ETL: %+v", rep3)
	}
	// Results only grow with inserts.
	if rep3.Result.Rows[0][1] < rep2.Result.Rows[0][1] {
		t.Fatal("count shrank after inserts")
	}
}

func TestRunQueryForcedStates(t *testing.T) {
	sys, db := newTestSystem(t)
	sys.InjectTransactions(10)
	q := db.Stamped("Q1", ch.Q1Args(0))

	var counts []float64
	for _, st := range []State{S1, S2, S3IS, S3NI} {
		rep, _, err := sys.RunQueryContext(context.Background(), q, QueryOptions{ForceState: ForcedState(st)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.State != st {
			t.Fatalf("forced %v, got %v", st, rep.State)
		}
		var total float64
		for _, row := range rep.Result.Rows {
			total += row[5]
		}
		counts = append(counts, total)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("states disagree on result: %v", counts)
		}
	}
}

func TestRunQueryForcedMethodFullRemote(t *testing.T) {
	sys, db := newTestSystem(t)
	sys.InjectTransactions(5)
	q := db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0))
	rep, _, err := sys.RunQueryContext(context.Background(), q, QueryOptions{
		ForceState:  ForcedState(S3IS),
		ForceMethod: ForcedMethod(rde.ReadSnapshot),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != rde.ReadSnapshot {
		t.Fatalf("method = %v", rep.Method)
	}
	// Full remote: all payload bytes on the OLTP socket.
	if rep.Stats.BytesAt[0] == 0 || rep.Stats.BytesAt[1] != 0 {
		t.Fatalf("bytes = %v, want all on socket 0", rep.Stats.BytesAt)
	}
	if rep.CrossBytes == 0 {
		t.Fatal("remote read must cross the interconnect")
	}
}

func TestOLTPInterferenceReported(t *testing.T) {
	sys, db := newTestSystem(t)
	rep, _, err := sys.RunQueryContext(context.Background(), db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{ForceState: ForcedState(S1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OLTPDuringTPS >= rep.OLTPBaselineTPS {
		t.Fatalf("query must depress OLTP throughput: %v >= %v",
			rep.OLTPDuringTPS, rep.OLTPBaselineTPS)
	}
	if rep.OLTPBaselineTPS <= 0 {
		t.Fatal("baseline TPS must be positive")
	}
}

func TestBatchSkipSwitchReusesSnapshot(t *testing.T) {
	sys, db := newTestSystem(t)
	q := db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0))
	rep1, set, err := sys.RunQueryContext(context.Background(), q, QueryOptions{Batch: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.InjectTransactions(10)
	rep2, _, err := sys.RunQueryContext(context.Background(), q, QueryOptions{Batch: true, SkipSwitch: true}, set)
	if err != nil {
		t.Fatal(err)
	}
	// Same snapshot: same result despite new inserts.
	if rep1.Result.Rows[0][1] != rep2.Result.Rows[0][1] {
		t.Fatalf("batch snapshot drifted: %v vs %v",
			rep1.Result.Rows[0][1], rep2.Result.Rows[0][1])
	}
	if rep2.SyncSeconds != 0 {
		t.Fatal("skipped switch must not charge sync time")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(2, 14)
	cfg.Alpha = 1.5
	if cfg.Validate() == nil {
		t.Fatal("alpha > 1 accepted")
	}
	cfg = DefaultConfig(2, 14)
	cfg.ElasticCores = -1
	if cfg.Validate() == nil {
		t.Fatal("negative elastic cores accepted")
	}
}
