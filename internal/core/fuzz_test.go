package core

import (
	"context"
	"math/rand"
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/columnar"
	"elastichtap/internal/rde"
)

// TestFuzzRandomScheduleEquivalence interleaves random transaction bursts,
// random forced states, random access methods and random switches, and
// checks after every query that (a) the result matches a brute-force scan
// of the snapshot the query ran against is consistent with monotonic
// growth, (b) core accounting holds, and (c) ETL'd replicas match the
// snapshot byte-for-byte.
func TestFuzzRandomScheduleEquivalence(t *testing.T) {
	sys, db := newTestSystem(t)
	sys.PrimeReplicas()
	rng := rand.New(rand.NewSource(99))
	states := []State{S1, S2, S3IS, S3NI}

	var lastCount float64
	for step := 0; step < 40; step++ {
		sys.InjectTransactions(rng.Intn(30))

		st := states[rng.Intn(len(states))]
		opt := QueryOptions{ForceState: ForcedState(st)}
		if st == S3IS && rng.Intn(2) == 0 {
			opt.ForceMethod = ForcedMethod(rde.ReadSnapshot)
		}
		rep, _, err := sys.RunQueryContext(context.Background(), db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), opt, nil)
		if err != nil {
			t.Fatalf("step %d (%v): %v", step, st, err)
		}
		// Q6 counts all orderlines: monotone under insert-only workload.
		count := rep.Result.Rows[0][1]
		if count < lastCount {
			t.Fatalf("step %d (%v/%v): count shrank %v -> %v",
				step, st, rep.Method, lastCount, count)
		}
		lastCount = count

		total := sys.Cfg.Topology.TotalCores()
		if got := sys.Sched.OLTPPlacement().Total() + sys.Sched.OLAPPlacement().Total(); got != total {
			t.Fatalf("step %d: cores leaked: %d != %d", step, got, total)
		}
		if rep.ResponseSeconds < 0 || rep.ETLSeconds < 0 {
			t.Fatalf("step %d: negative timing %+v", step, rep)
		}
	}

	// Final full ETL: replica must equal the snapshot everywhere.
	set := sys.X.SwitchAndSync(sys.OLTPE.Tables())
	sys.X.ETL(set)
	snap := set.Snap(ch.TOrderLine)
	repca := sys.X.Replica(db.OrderLine)
	if repca.Rows() != snap.Rows {
		t.Fatalf("replica rows %d != snapshot %d", repca.Rows(), snap.Rows)
	}
	for r := int64(0); r < snap.Rows; r += 7 {
		if !repca.EqualRow(snap.Inst, r) {
			t.Fatalf("replica row %d diverges after fuzz", r)
		}
	}
}

// TestFuzzConcurrentQueriesAndTransactions runs the OLAP path while the
// worker pool is free-running, ensuring snapshots stay consistent under
// real concurrency (not just injected batches).
func TestFuzzConcurrentQueriesAndTransactions(t *testing.T) {
	sys, db := newTestSystem(t)
	sys.PrimeReplicas()
	sys.OLTPE.Workers().Start()
	defer sys.OLTPE.Workers().Stop()

	var last float64
	for i := 0; i < 6; i++ {
		rep, _, err := sys.RunQueryContext(context.Background(), db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		count := rep.Result.Rows[0][1]
		if count < last {
			t.Fatalf("query %d: snapshot went backwards: %v -> %v", i, last, count)
		}
		last = count
		// Revenue is finite and positive.
		if rev := rep.Result.Rows[0][0]; rev <= 0 || rev != rev {
			t.Fatalf("query %d: bad revenue %v", i, rev)
		}
	}
	sys.OLTPE.Workers().Stop()
	if sys.OLTPE.Workers().Failed() != 0 {
		t.Fatalf("free-running pool abandoned %d txns", sys.OLTPE.Workers().Failed())
	}

	// The twins agree after a final sync.
	set := sys.X.SwitchAndSync(sys.OLTPE.Tables())
	for name, snap := range set.Snaps {
		tab := snap.Handle.Table()
		for r := int64(0); r < snap.Rows; r += 13 {
			for c := range tab.Schema().Columns {
				if tab.ReadCell(0, r, c) != tab.ReadCell(1, r, c) {
					t.Fatalf("%s: twins diverge at row %d col %d", name, r, c)
				}
			}
		}
	}
	_ = columnar.WordBytes
}
