package core

import (
	"elastichtap/internal/metrics"
	"elastichtap/internal/topology"
)

// Metrics collects a consistent observability snapshot from every engine.
func (s *System) Metrics() metrics.Snapshot {
	snap := metrics.Snapshot{
		Commits:      s.OLTPE.Manager().Commits(),
		Aborts:       s.OLTPE.Manager().Aborts(),
		WorkerCount:  s.OLTPE.Workers().Placement().Total(),
		Retried:      s.OLTPE.Workers().Retried(),
		Failed:       s.OLTPE.Workers().Failed(),
		State:        s.Sched.State().String(),
		OLTPCores:    s.Ledger.CountTotal(topology.OLTP),
		OLAPCores:    s.Ledger.CountTotal(topology.OLAP),
		OLAPPoolSize: s.OLAPE.PoolSize(),
	}
	tables := s.OLTPE.Tables()
	snap.Tables = len(tables)
	for _, h := range tables {
		t := h.Table()
		snap.TotalRows += t.Rows()
		snap.DirtyRows += int64(t.Active().DirtyCount() + t.Inactive().DirtyCount())
		rep := s.X.Replica(h)
		fresh := t.FreshSince(rep.Rows())
		snap.FreshRows += fresh.UpdatedRows + fresh.InsertedRows
		snap.VersionRows += h.Ref.Versions.Len()
	}
	switches, synced, etl := s.X.Counters()
	snap.Switches = switches
	snap.SyncedRows = synced
	snap.ETLBytes = etl
	if snap.TotalRows > 0 {
		snap.FreshnessRate = float64(snap.TotalRows-snap.FreshRows) / float64(snap.TotalRows)
	} else {
		snap.FreshnessRate = 1
	}
	return snap
}
