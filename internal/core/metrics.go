package core

import (
	"sort"

	"elastichtap/internal/metrics"
	"elastichtap/internal/topology"
)

// Metrics collects a consistent observability snapshot from every engine.
func (s *System) Metrics() metrics.Snapshot {
	snap := metrics.Snapshot{
		Commits:      s.OLTPE.Manager().Commits(),
		Aborts:       s.OLTPE.Manager().Aborts(),
		WorkerCount:  s.OLTPE.Workers().Placement().Total(),
		Retried:      s.OLTPE.Workers().Retried(),
		Failed:       s.OLTPE.Workers().Failed(),
		State:        s.Sched.State().String(),
		OLTPCores:    s.Ledger.CountTotal(topology.OLTP),
		OLAPCores:    s.Ledger.CountTotal(topology.OLAP),
		OLAPPoolSize: s.OLAPE.PoolSize(),
	}
	tables := s.OLTPE.Tables()
	snap.Tables = len(tables)
	for _, h := range tables {
		t := h.Table()
		snap.TotalRows += t.Rows()
		snap.DirtyRows += int64(t.Active().DirtyCount() + t.Inactive().DirtyCount())
		rep := s.X.Replica(h)
		fresh := t.FreshSince(rep.Rows())
		snap.FreshRows += fresh.UpdatedRows + fresh.InsertedRows
		snap.VersionRows += h.Ref.Versions.Len()
	}
	switches, synced, etl := s.X.Counters()
	snap.Switches = switches
	snap.SyncedRows = synced
	snap.ETLBytes = etl
	// Join the workload manager's admission counters with the OLAP pool's
	// measured per-tenant morsel dispatch. Tenants the pool has seen but
	// the manager has not (direct engine submissions) still get a row.
	dispatch := s.OLAPE.TenantDispatch()
	for _, ts := range s.WM.Stats() {
		snap.Tenants = append(snap.Tenants, metrics.Tenant{
			Name:              ts.Name,
			Weight:            ts.Weight,
			Running:           ts.Running,
			Queued:            ts.Queued,
			Admitted:          ts.Admitted,
			Rejected:          ts.Rejected,
			AdmissionWait:     ts.AdmissionWait,
			MorselsDispatched: dispatch[ts.Name],
			BytesScanned:      ts.BytesScanned,
		})
		delete(dispatch, ts.Name)
	}
	for name, morsels := range dispatch {
		snap.Tenants = append(snap.Tenants, metrics.Tenant{Name: name, MorselsDispatched: morsels})
	}
	sort.Slice(snap.Tenants, func(i, j int) bool { return snap.Tenants[i].Name < snap.Tenants[j].Name })
	if snap.TotalRows > 0 {
		snap.FreshnessRate = float64(snap.TotalRows-snap.FreshRows) / float64(snap.TotalRows)
	} else {
		snap.FreshnessRate = 1
	}
	return snap
}
