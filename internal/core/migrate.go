package core

import (
	"elastichtap/internal/topology"
)

// Algorithm 1 — State Migration. Each function redistributes cores on the
// ledger; enforcement (resizing the engine worker pools) happens in the
// runner after migration. The administrator thresholds OLTPSockThres and
// OLTPCpuThres bound how much compute can be revoked from the OLTP engine.

// migrateS1 trades `elastic` cores between the sockets: the OLTP engine
// cedes that many data-local cores to OLAP and receives the same number on
// the OLAP socket, never dropping below the per-socket CPU floor.
//
//htap:locked mu
func (s *Scheduler) migrateS1(elastic int) {
	cfg := s.ledger.Config()
	oltpS, olapS := s.oltpSocket, s.olapSocket
	x := elastic
	if floor := s.cfg.cpuFloor(oltpS, cfg.CoresPerSocket); cfg.CoresPerSocket-x < floor {
		x = cfg.CoresPerSocket - floor
	}
	if x < 0 {
		x = 0
	}
	s.assignSplit(oltpS, cfg.CoresPerSocket-x, topology.OLTP, topology.OLAP)
	s.assignSplit(olapS, x, topology.OLTP, topology.OLAP)
	s.fillOtherSockets()
}

// migrateS2 gives each engine whole sockets per the administrator policy:
// the OLTP engine keeps OLTPSockThres sockets (at least its home socket),
// the OLAP engine receives the rest.
//
//htap:locked mu
func (s *Scheduler) migrateS2() {
	sockets := s.ledger.Config().Sockets
	granted := 0
	for d := 0; d < sockets; d++ {
		// Grant OLTP its home socket first, then ascending others.
		sock := (s.oltpSocket + d) % sockets
		if granted < s.cfg.OLTPSockThres {
			s.mustAssignSocket(sock, topology.OLTP)
			granted++
		} else {
			s.mustAssignSocket(sock, topology.OLAP)
		}
	}
}

// migrateS3 covers both hybrid variants: ISOLATED keeps the S2 core
// layout (socket-level isolation, remote/split reads); NON-ISOLATED lends
// `elastic` OLTP cores to the OLAP engine on the OLTP socket.
//
//htap:locked mu
func (s *Scheduler) migrateS3(isolated bool, elastic int) {
	if isolated {
		s.migrateS2()
		return
	}
	cfg := s.ledger.Config()
	k := elastic
	if floor := s.cfg.cpuFloor(s.oltpSocket, cfg.CoresPerSocket); cfg.CoresPerSocket-k < floor {
		k = cfg.CoresPerSocket - floor
	}
	if k < 0 {
		k = 0
	}
	s.assignSplit(s.oltpSocket, cfg.CoresPerSocket-k, topology.OLTP, topology.OLAP)
	s.mustAssignSocket(s.olapSocket, topology.OLAP)
	s.fillOtherSockets()
}

// assignSplit gives the first n cores of the socket to `first` and the
// rest to `second`.
//
//htap:locked mu
func (s *Scheduler) assignSplit(socket, n int, first, second topology.Engine) {
	cfg := s.ledger.Config()
	for i := 0; i < cfg.CoresPerSocket; i++ {
		owner := second
		if i < n {
			owner = first
		}
		if err := s.ledger.Assign(topology.CoreID{Socket: socket, Index: i}, owner); err != nil {
			panic(err)
		}
	}
}

//htap:locked mu
func (s *Scheduler) mustAssignSocket(socket int, e topology.Engine) {
	if err := s.ledger.AssignSocket(socket, e); err != nil {
		panic(err)
	}
}

// fillOtherSockets assigns sockets beyond the engine pair (4-socket
// machines) to the OLAP engine, matching Figure 1's setup where the two
// engines occupy two sockets and the rest idle under OLAP ownership.
//
//htap:locked mu
func (s *Scheduler) fillOtherSockets() {
	for sock := 0; sock < s.ledger.Config().Sockets; sock++ {
		if sock != s.oltpSocket && sock != s.olapSocket {
			s.mustAssignSocket(sock, topology.Free)
		}
	}
}

// cpuFloor returns the per-socket OLTP core floor.
func (c Config) cpuFloor(socket, coresPerSocket int) int {
	if socket < len(c.OLTPCpuThres) {
		f := c.OLTPCpuThres[socket]
		if f > coresPerSocket {
			return coresPerSocket
		}
		return f
	}
	return 0
}
