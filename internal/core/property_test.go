package core

import (
	"testing"
	"testing/quick"

	"elastichtap/internal/rde"
	"elastichtap/internal/topology"
)

// Property tests over the scheduler's pure logic: Algorithm 2's decision
// table and Algorithm 1's conservation/floor guarantees, for arbitrary
// inputs rather than the hand-picked cases in core_test.go.

func TestQuickDecideMatchesSpec(t *testing.T) {
	sys, _ := newTestSystem(t)
	f := func(nfq, nft uint32, alphaPct uint8, batch, elastic, colocate bool) bool {
		cfg := sys.Sched.Config()
		cfg.Alpha = float64(alphaPct%101) / 100
		cfg.Elasticity = elastic
		if colocate {
			cfg.Mode = ModeColocation
		} else {
			cfg.Mode = ModeHybrid
		}
		if err := sys.Sched.SetConfig(cfg); err != nil {
			return false
		}
		fresh := rde.Freshness{Nfq: int64(nfq), Nft: int64(nft)}
		got := sys.Sched.Decide(fresh, batch)

		// The specification, straight from Algorithm 2.
		var want State
		if float64(fresh.Nfq) < cfg.Alpha*float64(fresh.Nft) && !batch {
			switch {
			case !elastic:
				want = S3IS
			case !colocate:
				want = S3NI
			default:
				want = S1
			}
		} else {
			want = S2
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMigrationsConserveAndFloor(t *testing.T) {
	sys, _ := newTestSystem(t)
	total := sys.Cfg.Topology.TotalCores()
	states := []State{S1, S2, S3IS, S3NI}
	f := func(seq []uint8, elastic uint8, floor uint8) bool {
		cfg := sys.Sched.Config()
		cfg.ElasticCores = int(elastic % 15)
		fl := int(floor % 15)
		for i := range cfg.OLTPCpuThres {
			cfg.OLTPCpuThres[i] = fl
		}
		if err := sys.Sched.SetConfig(cfg); err != nil {
			return false
		}
		for _, b := range seq {
			st := states[int(b)%len(states)]
			sys.Sched.MigrateTo(st)
			oltp := sys.Ledger.CountTotal(topology.OLTP)
			olap := sys.Ledger.CountTotal(topology.OLAP)
			if oltp+olap != total {
				return false
			}
			// In co-located/lending states the per-socket floor holds.
			if st == S1 || st == S3NI {
				if sys.Ledger.Count(0, topology.OLTP) < fl {
					return false
				}
			}
			// The OLTP engine always keeps at least its floor or the whole
			// socket; the OLAP engine never ends up with zero cores.
			if olap == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFreshnessNeverNegative(t *testing.T) {
	sys, db := newTestSystem(t)
	sys.PrimeReplicas()
	f := func(txns uint8, doETL bool) bool {
		sys.InjectTransactions(int(txns % 16))
		fresh := sys.X.MeasureFreshness(sys.OLTPE.Tables(), "orderline", 3)
		if fresh.Nfq < 0 || fresh.Nft < 0 || fresh.Nfq > fresh.Nft {
			return false
		}
		if fresh.Rate < 0 || fresh.Rate > 1 {
			return false
		}
		if doETL {
			set := sys.X.SwitchAndSync(sys.OLTPE.Tables())
			sys.X.ETL(set)
			after := sys.X.MeasureFreshness(sys.OLTPE.Tables(), "orderline", 3)
			// ETL can only reduce outstanding fresh data.
			if after.Nft > fresh.Nft {
				return false
			}
		}
		_ = db
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
