package core

import (
	"fmt"

	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/rde"
	"elastichtap/internal/topology"
)

// SystemConfig assembles a complete HTAP system.
type SystemConfig struct {
	// Topology describes the machine; defaults to the paper's 2x14 server.
	Topology topology.Config
	// Params calibrate the cost model; defaults to DefaultParams.
	Params costmodel.Params
	// Scheduler parameterizes Algorithms 1 and 2.
	Scheduler Config
	// OLTPSocket / OLAPSocket are the engines' home sockets.
	OLTPSocket, OLAPSocket int
	// ByteScale multiplies measured byte counts before they reach the cost
	// model, letting a laptop-sized database emulate the paper's SF-300
	// timings: shapes depend on ratios, which ByteScale preserves
	// (DESIGN.md §2). 0 means 1.
	ByteScale float64
}

// DefaultSystemConfig returns the paper's evaluation setup.
func DefaultSystemConfig() SystemConfig {
	topo := topology.DefaultConfig()
	return SystemConfig{
		Topology:   topo,
		Params:     costmodel.DefaultParams(),
		Scheduler:  DefaultConfig(topo.Sockets, topo.CoresPerSocket),
		OLTPSocket: 0,
		OLAPSocket: 1,
		ByteScale:  1,
	}
}

// System is the assembled HTAP system: OLTP engine, OLAP engine, RDE
// exchange and the adaptive scheduler, over a modeled NUMA machine.
type System struct {
	Cfg    SystemConfig
	Ledger *topology.Ledger
	Model  *costmodel.Model
	OLTPE  *oltp.Engine
	OLAPE  *olap.Engine
	X      *rde.Exchange
	Sched  *Scheduler
}

// NewSystem bootstraps a system in state S2: each engine owns its socket,
// worker pools sized accordingly (§5.1).
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.ByteScale <= 0 {
		cfg.ByteScale = 1
	}
	ledger, err := topology.NewLedger(cfg.Topology)
	if err != nil {
		return nil, err
	}
	model := costmodel.New(cfg.Topology, cfg.Params)
	oltpE := oltp.NewEngine()
	olapE := olap.NewEngine(cfg.Topology.Sockets)
	sched, err := NewScheduler(cfg.Scheduler, ledger, cfg.OLTPSocket, cfg.OLAPSocket)
	if err != nil {
		return nil, err
	}
	s := &System{
		Cfg:    cfg,
		Ledger: ledger,
		Model:  model,
		OLTPE:  oltpE,
		OLAPE:  olapE,
		X:      rde.New(ledger, model, oltpE, olapE, cfg.OLTPSocket, cfg.OLAPSocket),
		Sched:  sched,
	}
	s.ApplyPlacements()
	return s, nil
}

// ApplyPlacements pushes the ledger's current core distribution into both
// engines' worker managers (the enforcement half of Algorithm 1).
func (s *System) ApplyPlacements() {
	s.OLTPE.Workers().SetPlacement(s.Sched.OLTPPlacement())
	s.OLAPE.SetPlacement(s.Sched.OLAPPlacement())
}

// scale applies the byte-scale emulation factor.
func (s *System) scale(b int64) int64 { return int64(float64(b) * s.Cfg.ByteScale) }

func (s *System) scaleAll(bs []int64) []int64 {
	out := make([]int64, len(bs))
	for i, b := range bs {
		out[i] = s.scale(b)
	}
	return out
}

// PrimeReplicas performs the initial synchronization of the OLAP replicas
// with the freshly loaded database, setting the freshness-rate to 1 before
// workload execution begins (§5.3: "we initialize the database ... before
// we synchronize the storage of both engines"). Call it once after loading
// and before running queries.
func (s *System) PrimeReplicas() rde.ETLResult {
	set := s.X.SwitchAndSync(s.OLTPE.Tables())
	return s.X.ETL(set)
}

// QueryOptions control one query's scheduling.
type QueryOptions struct {
	// ForceState pins the system state (static schedules in the figures);
	// nil lets Algorithm 2 decide.
	ForceState *State
	// ForceMethod pins the access method (Figure 4's full-remote series);
	// nil derives it from the state.
	ForceMethod *rde.AccessMethod
	// Batch marks the query as part of a batch (Algorithm 2's QueryBatch).
	Batch bool
	// SkipSwitch reuses the previous snapshot instead of switching the
	// active instance (subsequent queries of a batch).
	SkipSwitch bool
}

// ForcedState is a convenience for building QueryOptions.
func ForcedState(st State) *State { return &st }

// ForcedMethod is a convenience for building QueryOptions.
func ForcedMethod(m rde.AccessMethod) *rde.AccessMethod { return &m }

// QueryReport is the outcome of scheduling and executing one query.
type QueryReport struct {
	Query  string
	State  State
	Method rde.AccessMethod

	// Simulated durations (seconds) from the cost model.
	ExecSeconds     float64 // pipeline execution
	ETLSeconds      float64 // delta copy before execution (S2 only)
	SyncSeconds     float64 // twin-instance sync at the switch
	ResponseSeconds float64 // what the client observes

	// OLTPBaselineTPS is the modeled throughput of the OLTP engine with no
	// concurrent query; OLTPDuringTPS is under this query's interference.
	OLTPBaselineTPS float64
	OLTPDuringTPS   float64

	// Freshness at scheduling time.
	Nfq, Nft  int64
	FreshRate float64

	// Execution facts.
	Result     olap.Result
	Stats      olap.Stats
	CrossBytes int64
	ETLBytes   int64

	// ScanUsage is the query's modeled bandwidth footprint; experiment
	// drivers reuse it to evaluate OLTP variants (e.g. CoW overhead).
	ScanUsage costmodel.Usage
}

// RunQuery drives the full per-query protocol of §3.4: switch and sync the
// OLTP instances, measure freshness, decide and migrate state (Algorithms
// 1+2), optionally ETL, build the access path, execute for real, and
// charge simulated time for every phase.
func (s *System) RunQuery(q olap.Query, opt QueryOptions, snap *rde.SnapshotSet) (QueryReport, *rde.SnapshotSet, error) {
	if q == nil {
		return QueryReport{}, snap, fmt.Errorf("core: nil query")
	}
	// Queries can carry a deferred construction error (olap.Invalid, or any
	// query exposing Err); surface it before touching the system.
	if v, ok := q.(interface{ Err() error }); ok {
		if err := v.Err(); err != nil {
			return QueryReport{}, snap, err
		}
	}
	tables := s.OLTPE.Tables()

	set := snap
	var syncSeconds float64
	if set == nil || !opt.SkipSwitch {
		set = s.X.SwitchAndSync(tables)
		syncSeconds = set.SyncSeconds * s.Cfg.ByteScale
	}
	factSnap := set.Snap(q.FactTable())
	if factSnap == nil {
		return QueryReport{}, set, fmt.Errorf("core: no snapshot for fact table %q", q.FactTable())
	}

	fresh := s.X.MeasureFreshness(tables, q.FactTable(), len(q.Columns()))

	st := s.Sched.Decide(fresh, opt.Batch)
	if opt.ForceState != nil {
		st = *opt.ForceState
	}
	s.Sched.MigrateTo(st)
	s.ApplyPlacements()

	var etlSeconds float64
	var etlBytes int64
	if st == S2 {
		etl := s.X.ETL(set)
		etlBytes = etl.Bytes
		olapCores := s.Ledger.Count(s.Cfg.OLAPSocket, topology.OLAP)
		etlSeconds = s.Model.ETLTime(s.scale(etl.Bytes), olapCores)
	}

	method := s.chooseMethod(st, fresh)
	if opt.ForceMethod != nil {
		method = *opt.ForceMethod
	}
	src := s.X.SourceFor(method, factSnap)

	res, stats, err := s.OLAPE.Execute(q, src)
	if err != nil {
		return QueryReport{}, set, err
	}

	oltpPlace := s.Sched.OLTPPlacement()
	base := s.Model.OLTPThroughput(costmodel.OLTPLoad{
		Workers: oltpPlace, HomeSocket: s.Cfg.OLTPSocket,
	})
	// Broadcast build sides come from dimension tables, whose size is fixed
	// by the benchmark (items is 100k at every scale factor), so they are
	// not subject to the byte-scale emulation.
	scan := s.Model.OLAPScan(costmodel.ScanRequest{
		Class:          q.Class(),
		BytesAt:        s.scaleAll(stats.BytesAt),
		Workers:        s.Sched.OLAPPlacement(),
		Background:     base.Usage,
		BroadcastBytes: stats.BuildBytes,
	})
	during := s.Model.OLTPThroughput(costmodel.OLTPLoad{
		Workers: oltpPlace, HomeSocket: s.Cfg.OLTPSocket, Background: scan.Usage,
	})

	rep := QueryReport{
		Query:           q.Name(),
		State:           st,
		Method:          method,
		ExecSeconds:     scan.Seconds,
		ETLSeconds:      etlSeconds,
		SyncSeconds:     syncSeconds,
		OLTPBaselineTPS: base.TPS,
		OLTPDuringTPS:   during.TPS,
		Nfq:             fresh.Nfq,
		Nft:             fresh.Nft,
		FreshRate:       fresh.Rate,
		Result:          res,
		Stats:           stats,
		CrossBytes:      scan.CrossBytes,
		ETLBytes:        etlBytes,
		ScanUsage:       scan.Usage,
	}
	rep.ResponseSeconds = rep.ExecSeconds + rep.ETLSeconds
	if s.Sched.Config().ChargeSyncToQuery {
		rep.ResponseSeconds += syncSeconds
	}
	return rep, set, nil
}

// chooseMethod derives the access path from the state (§3.4): S2 reads the
// freshly loaded replica; S1 reads the snapshot in place; hybrid states
// use split access when the optimization is enabled, the fact table has no
// pending updated rows (split is only sound for insert-only access, §5.2),
// and the replica holds a useful prefix — otherwise full-remote.
func (s *System) chooseMethod(st State, fresh rde.Freshness) rde.AccessMethod {
	switch st {
	case S2:
		return rde.ReadReplica
	case S1:
		return rde.ReadSnapshot
	default:
		if s.Sched.Config().SplitAccess && fresh.QueryUpdatedRows == 0 {
			return rde.ReadSplit
		}
		return rde.ReadSnapshot
	}
}

// OLTPThroughputNow reports the modeled transactional throughput with the
// current placement and no analytical interference.
func (s *System) OLTPThroughputNow() float64 {
	res := s.Model.OLTPThroughput(costmodel.OLTPLoad{
		Workers:    s.Sched.OLTPPlacement(),
		HomeSocket: s.Cfg.OLTPSocket,
	})
	return res.TPS
}

// InjectTransactions synchronously executes n transactions from the
// installed workload across the OLTP worker pool. Experiment drivers call
// it to advance the transactional state by a deterministic amount that
// corresponds to a simulated interval.
func (s *System) InjectTransactions(n int) {
	s.OLTPE.Workers().ExecuteBatch(n)
}
