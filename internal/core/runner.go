package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"elastichtap/internal/checkpoint"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/rde"
	"elastichtap/internal/topology"
	"elastichtap/internal/wal"
	"elastichtap/internal/workload"
)

// SystemConfig assembles a complete HTAP system.
type SystemConfig struct {
	// Topology describes the machine; defaults to the paper's 2x14 server.
	Topology topology.Config
	// Params calibrate the cost model; defaults to DefaultParams.
	Params costmodel.Params
	// Scheduler parameterizes Algorithms 1 and 2.
	Scheduler Config
	// OLTPSocket / OLAPSocket are the engines' home sockets.
	OLTPSocket, OLAPSocket int
	// ByteScale multiplies measured byte counts before they reach the cost
	// model, letting a laptop-sized database emulate the paper's SF-300
	// timings: shapes depend on ratios, which ByteScale preserves
	// (DESIGN.md §2). 0 means 1.
	ByteScale float64
}

// DefaultSystemConfig returns the paper's evaluation setup.
func DefaultSystemConfig() SystemConfig {
	topo := topology.DefaultConfig()
	return SystemConfig{
		Topology:   topo,
		Params:     costmodel.DefaultParams(),
		Scheduler:  DefaultConfig(topo.Sockets, topo.CoresPerSocket),
		OLTPSocket: 0,
		OLAPSocket: 1,
		ByteScale:  1,
	}
}

// System is the assembled HTAP system: OLTP engine, OLAP engine, RDE
// exchange and the adaptive scheduler, over a modeled NUMA machine.
type System struct {
	Cfg    SystemConfig
	Ledger *topology.Ledger
	Model  *costmodel.Model
	OLTPE  *oltp.Engine
	OLAPE  *olap.Engine
	X      *rde.Exchange
	Sched  *Scheduler
	// WM is the multi-tenant workload manager: every query passes through
	// its tenant's admission queue (quotas, backpressure) before the
	// serialized scheduling protocol, and the tenant's weight drives the
	// OLAP pool's weighted-fair morsel dispatch. Untenanted contexts run
	// as the unlimited default tenant. Tests may swap in a manager with a
	// fake clock before issuing queries.
	WM *workload.Manager

	// admitMu serializes the per-query admission protocol — switch+sync,
	// freshness measurement, state migration, ETL and access-path build —
	// while executions proceed concurrently on the shared OLAP worker
	// pool once admitted.
	admitMu sync.Mutex

	// closed rejects new queries once Close has begun; closeOnce makes
	// Close idempotent and a barrier (concurrent callers all return only
	// after the pools are down).
	closed    atomic.Bool
	closeOnce sync.Once
}

// NewSystem bootstraps a system in state S2: each engine owns its socket,
// worker pools sized accordingly (§5.1).
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.ByteScale <= 0 {
		cfg.ByteScale = 1
	}
	ledger, err := topology.NewLedger(cfg.Topology)
	if err != nil {
		return nil, err
	}
	model := costmodel.New(cfg.Topology, cfg.Params)
	oltpE := oltp.NewEngine()
	olapE := olap.NewEngine(cfg.Topology.Sockets)
	sched, err := NewScheduler(cfg.Scheduler, ledger, cfg.OLTPSocket, cfg.OLAPSocket)
	if err != nil {
		return nil, err
	}
	s := &System{
		Cfg:    cfg,
		Ledger: ledger,
		Model:  model,
		OLTPE:  oltpE,
		OLAPE:  olapE,
		X:      rde.New(ledger, model, oltpE, olapE, cfg.OLTPSocket, cfg.OLAPSocket),
		Sched:  sched,
		WM:     workload.New(),
	}
	// Every migration — from RunQuery or anyone calling Sched.MigrateTo —
	// resizes both worker pools immediately, so the OLAP pool sheds or
	// gains workers while queries are still in flight. The callback
	// receives the migration's own placements (and runs under the
	// scheduler lock), so concurrent migrations apply in order.
	sched.OnMigrate(func(_ State, oltpP, olapP topology.Placement) {
		s.OLTPE.Workers().SetPlacement(oltpP)
		s.OLAPE.SetPlacement(olapP)
	})
	s.ApplyPlacements()
	return s, nil
}

// ApplyPlacements pushes the ledger's current core distribution into both
// engines' worker managers (the enforcement half of Algorithm 1), as one
// consistent snapshot.
func (s *System) ApplyPlacements() {
	oltpP, olapP := s.Sched.Placements()
	s.OLTPE.Workers().SetPlacement(oltpP)
	s.OLAPE.SetPlacement(olapP)
}

// scale applies the byte-scale emulation factor.
func (s *System) scale(b int64) int64 { return int64(float64(b) * s.Cfg.ByteScale) }

// sumBytes totals a per-socket byte attribution.
func sumBytes(bs []int64) int64 {
	var n int64
	for _, b := range bs {
		n += b
	}
	return n
}

func (s *System) scaleAll(bs []int64) []int64 {
	out := make([]int64, len(bs))
	for i, b := range bs {
		out[i] = s.scale(b)
	}
	return out
}

// PrimeReplicas performs the initial synchronization of the OLAP replicas
// with the freshly loaded database, setting the freshness-rate to 1 before
// workload execution begins (§5.3: "we initialize the database ... before
// we synchronize the storage of both engines"). Call it once after loading
// and before running queries.
func (s *System) PrimeReplicas() rde.ETLResult {
	set := s.X.SwitchAndSync(s.OLTPE.Tables())
	return s.X.ETL(set)
}

// QueryOptions control one query's scheduling.
type QueryOptions struct {
	// ForceState pins the system state (static schedules in the figures);
	// nil lets Algorithm 2 decide.
	ForceState *State
	// ForceMethod pins the access method (Figure 4's full-remote series);
	// nil derives it from the state.
	ForceMethod *rde.AccessMethod
	// Batch marks the query as part of a batch (Algorithm 2's QueryBatch).
	Batch bool
	// SkipSwitch reuses the previous snapshot instead of switching the
	// active instance (subsequent queries of a batch). A reused snapshot
	// outlives exchange cycles other queries run in the meantime, so a
	// SkipSwitch query must read the OLAP replica — the Batch flag's S2
	// path, which the facade's QueryBatch always takes. Combining
	// SkipSwitch with a forced snapshot-reading state (S1/S3) while other
	// queries run concurrently would scan an instance a later switch has
	// re-activated for transaction writes.
	SkipSwitch bool
}

// ForcedState is a convenience for building QueryOptions.
func ForcedState(st State) *State { return &st }

// ForcedMethod is a convenience for building QueryOptions.
func ForcedMethod(m rde.AccessMethod) *rde.AccessMethod { return &m }

// QueryReport is the outcome of scheduling and executing one query.
type QueryReport struct {
	Query  string
	State  State
	Method rde.AccessMethod
	// Tenant is the workload-manager tenant the query ran as ("default"
	// for untenanted callers).
	Tenant string

	// Simulated durations (seconds) from the cost model.
	ExecSeconds     float64 // pipeline execution
	ETLSeconds      float64 // delta copy before execution (S2 only)
	SyncSeconds     float64 // twin-instance sync at the switch
	ResponseSeconds float64 // what the client observes

	// OLTPBaselineTPS is the modeled throughput of the OLTP engine with no
	// concurrent query; OLTPDuringTPS is under this query's interference.
	OLTPBaselineTPS float64
	OLTPDuringTPS   float64

	// Freshness at scheduling time.
	Nfq, Nft  int64
	FreshRate float64

	// Execution facts.
	Result     olap.Result
	Stats      olap.Stats
	CrossBytes int64
	ETLBytes   int64

	// ScanUsage is the query's modeled bandwidth footprint; experiment
	// drivers reuse it to evaluate OLTP variants (e.g. CoW overhead).
	ScanUsage costmodel.Usage
}

// admission is the outcome of the serialized scheduling phase: everything
// a query needs to execute and be charged for.
type admission struct {
	set         *rde.SnapshotSet
	src         olap.Source
	state       State
	method      rde.AccessMethod
	fresh       rde.Freshness
	syncSeconds float64
	etlSeconds  float64
	etlBytes    int64
	oltpPlace   topology.Placement
	olapPlace   topology.Placement
	// release drops the fact table's scan pin; call it when the
	// execution finishes.
	release func()
}

// admitQuery runs the per-query protocol head under the admission lock:
// switch and sync the OLTP instances, measure freshness, decide and
// migrate state (Algorithms 1+2), optionally ETL, and build the access
// path. Placements are snapshotted under the same lock so the cost model
// charges the layout this query was admitted with, even when a concurrent
// query migrates the system afterwards. The context is observed between
// the protocol phases — after the queue wait, after switch+sync, and on
// either side of the ETL — so an expired deadline abandons admission at a
// consistent point: the exchange state left behind is exactly what the
// completed phases produced, and the next query proceeds from it.
func (s *System) admitQuery(ctx context.Context, q olap.Query, opt QueryOptions, snap *rde.SnapshotSet) (admission, error) {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()

	adm := admission{set: snap}
	if err := ctx.Err(); err != nil { // cancelled while queued for admission
		return adm, olap.CancelErr(err)
	}
	if s.closed.Load() {
		return adm, fmt.Errorf("core: admit %s: %w", q.Name(), olap.ErrClosed)
	}
	tables := s.OLTPE.Tables()
	if adm.set == nil || !opt.SkipSwitch {
		adm.set = s.X.SwitchAndSync(tables)
		adm.syncSeconds = adm.set.SyncSeconds * s.Cfg.ByteScale
	}
	factSnap := adm.set.Snap(q.FactTable())
	if factSnap == nil {
		return adm, fmt.Errorf("core: no snapshot for fact table %q", q.FactTable())
	}
	if err := ctx.Err(); err != nil { // expired during switch+sync
		return adm, olap.CancelErr(err)
	}

	adm.fresh = s.X.MeasureFreshness(tables, q.FactTable(), len(q.Columns()))

	adm.state = s.Sched.Decide(adm.fresh, opt.Batch)
	if opt.ForceState != nil {
		adm.state = *opt.ForceState
	}
	s.Sched.MigrateTo(adm.state) // OnMigrate resizes both worker pools
	// One consistent snapshot for all of this query's cost charging; a
	// concurrent migration can change the layout afterwards, but can
	// never hand the model a half-applied one.
	adm.oltpPlace, adm.olapPlace = s.Sched.Placements()

	if adm.state == S2 {
		if err := ctx.Err(); err != nil { // expired before the ETL copy
			return adm, olap.CancelErr(err)
		}
		etl := s.X.ETL(adm.set)
		adm.etlBytes = etl.Bytes
		adm.etlSeconds = s.Model.ETLTime(s.scale(etl.Bytes), adm.olapPlace.On(s.Cfg.OLAPSocket))
		if err := ctx.Err(); err != nil { // expired mid-ETL; replicas are consistent
			return adm, olap.CancelErr(err)
		}
	}

	adm.method = s.chooseMethod(adm.state, adm.fresh)
	if opt.ForceMethod != nil {
		adm.method = *opt.ForceMethod
	}
	adm.src = s.X.SourceFor(adm.method, factSnap)
	// Pin the fact table against snapshot re-activation and in-place ETL
	// before admission ends: every writer cycle (query admissions,
	// PinnedSnapshot) serializes on admitMu, so no switch can slip in
	// between this RLock and the execution it protects.
	adm.release = s.X.BeginScan(q.FactTable())
	return adm, nil
}

// RunQueryContext drives the full per-query protocol of §3.4: switch and
// sync the OLTP instances, measure freshness, decide and migrate state
// (Algorithms 1+2), optionally ETL, build the access path, execute for
// real, and charge simulated time for every phase. Admission is
// serialized; the execution itself runs as a task on the shared OLAP
// worker pool, so concurrent callers interleave their morsels on the same
// workers and scheduler migrations resize the pool mid-query.
//
// Cancellation is observed between admission phases and, during
// execution, at morsel boundaries: a cancelled query returns an error
// wrapping both olap.ErrCancelled and the context's cause within one
// morsel's work per active worker, its partial state is discarded, and
// the placement and pool remain consistent for subsequent queries.
func (s *System) RunQueryContext(ctx context.Context, q olap.Query, opt QueryOptions, snap *rde.SnapshotSet) (QueryReport, *rde.SnapshotSet, error) {
	if q == nil {
		return QueryReport{}, snap, fmt.Errorf("core: nil query")
	}
	if s.closed.Load() {
		return QueryReport{}, snap, fmt.Errorf("core: query %s: %w", q.Name(), olap.ErrClosed)
	}
	// Queries can carry a deferred construction error (olap.Invalid, or any
	// query exposing Err); surface it before touching the system.
	if v, ok := q.(interface{ Err() error }); ok {
		if err := v.Err(); err != nil {
			return QueryReport{}, snap, err
		}
	}

	// Workload-manager admission comes first: the tenant's concurrency
	// slot and quota check gate the serialized scheduling protocol, so an
	// overloaded tenant is rejected (typed ErrOverloaded, retry-after
	// metadata) before it can queue on admitMu, and a queued-but-unadmitted
	// query that is cancelled frees its slot without ever touching the
	// exchange. The grant is released with the scaled bytes the execution
	// actually scanned — the same emulated volume the cost model charges —
	// so per-tenant byte budgets account in cost-model units.
	tenant := workload.TenantFrom(ctx)
	grant, err := s.WM.Admit(ctx, tenant)
	if err != nil {
		// A context expiring while queued (or pre-cancelled) keeps the
		// session contract: the error wraps ErrCancelled and the cause.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			err = olap.CancelErr(err)
		}
		return QueryReport{}, snap, fmt.Errorf("core: query %s: %w", q.Name(), err)
	}

	adm, err := s.admitQuery(ctx, q, opt, snap)
	if err != nil {
		grant.Release(0)
		return QueryReport{}, adm.set, err
	}

	// The scan pin taken at admission holds through the execution:
	// switches and ETLs that would overwrite cells this scan reads wait
	// for release (no-op contention for insert-only fact tables).
	res, stats, err := s.OLAPE.ExecuteTenantContext(ctx, q, adm.src,
		olap.TenantInfo{Name: tenant, Weight: s.WM.Weight(tenant)})
	adm.release()
	if err != nil {
		grant.Release(0)
		return QueryReport{}, adm.set, err
	}
	grant.Release(s.scale(sumBytes(stats.BytesAt)))

	base := s.Model.OLTPThroughput(costmodel.OLTPLoad{
		Workers: adm.oltpPlace, HomeSocket: s.Cfg.OLTPSocket,
	})
	// Broadcast build sides come from dimension tables, whose size is fixed
	// by the benchmark (items is 100k at every scale factor), so they are
	// not subject to the byte-scale emulation. The measured stolen bytes
	// tell the model how much payload actually crossed sockets under work
	// stealing, replacing a purely modeled attribution.
	scan := s.Model.OLAPScan(costmodel.ScanRequest{
		Class:                 q.Class(),
		BytesAt:               s.scaleAll(stats.BytesAt),
		Workers:               adm.olapPlace,
		Background:            base.Usage,
		BroadcastBytes:        stats.BuildBytes,
		MeasuredRemoteBytesAt: s.scaleAll(stats.StolenBytesAt),
		// Merged group counts grow with the fact table (Q3/Q18 group per
		// order), so the sort volume scales with the emulated size like
		// the payload bytes do — unlike the dimension-sized broadcast.
		SortRows: s.scale(res.SortedRows),
	})
	during := s.Model.OLTPThroughput(costmodel.OLTPLoad{
		Workers: adm.oltpPlace, HomeSocket: s.Cfg.OLTPSocket, Background: scan.Usage,
	})

	rep := QueryReport{
		Query:           q.Name(),
		State:           adm.state,
		Method:          adm.method,
		Tenant:          tenant,
		ExecSeconds:     scan.Seconds,
		ETLSeconds:      adm.etlSeconds,
		SyncSeconds:     adm.syncSeconds,
		OLTPBaselineTPS: base.TPS,
		OLTPDuringTPS:   during.TPS,
		Nfq:             adm.fresh.Nfq,
		Nft:             adm.fresh.Nft,
		FreshRate:       adm.fresh.Rate,
		Result:          res,
		Stats:           stats,
		CrossBytes:      scan.CrossBytes,
		ETLBytes:        adm.etlBytes,
		ScanUsage:       scan.Usage,
	}
	rep.ResponseSeconds = rep.ExecSeconds + rep.ETLSeconds
	if s.Sched.Config().ChargeSyncToQuery {
		rep.ResponseSeconds += adm.syncSeconds
	}
	return rep, adm.set, nil
}

// chooseMethod derives the access path from the state (§3.4): S2 reads the
// freshly loaded replica; S1 reads the snapshot in place; hybrid states
// use split access when the optimization is enabled, the fact table has no
// pending updated rows (split is only sound for insert-only access, §5.2),
// and the replica holds a useful prefix — otherwise full-remote.
func (s *System) chooseMethod(st State, fresh rde.Freshness) rde.AccessMethod {
	switch st {
	case S2:
		return rde.ReadReplica
	case S1:
		return rde.ReadSnapshot
	default:
		if s.Sched.Config().SplitAccess && fresh.QueryUpdatedRows == 0 {
			return rde.ReadSplit
		}
		return rde.ReadSnapshot
	}
}

// OLTPThroughputNow reports the modeled transactional throughput with the
// current placement and no analytical interference. The placement is read
// under the scheduler lock so a concurrent migration can't hand the model
// a half-applied layout.
func (s *System) OLTPThroughputNow() float64 {
	oltpP, _ := s.Sched.Placements()
	res := s.Model.OLTPThroughput(costmodel.OLTPLoad{
		Workers:    oltpP,
		HomeSocket: s.Cfg.OLTPSocket,
	})
	return res.TPS
}

// InjectTransactions synchronously executes n transactions from the
// installed workload across the OLTP worker pool. Experiment drivers call
// it to advance the transactional state by a deterministic amount that
// corresponds to a simulated interval.
func (s *System) InjectTransactions(n int) {
	s.OLTPE.Workers().ExecuteBatch(n)
}

// Close shuts the system's worker pools down: the persistent OLAP pool's
// goroutines drain queued morsels and exit, and the OLTP pool stops if it
// was free-running. Close is idempotent and safe to call concurrently
// with in-flight queries — already-admitted tasks drain to completion
// (retiring workers act as caretakers), while new submissions fail with
// an error wrapping olap.ErrClosed. Concurrent Close calls all return
// only after the pools are down.
func (s *System) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		s.OLTPE.Workers().Stop()
		s.OLAPE.Close()
	})
}

// PinnedSnapshot switches and syncs the table under the same admission
// serialization queries use, and returns its consistent snapshot pinned
// against re-activation — no later switch or ETL can write into it until
// release is called. Serialization readers (Checkpoint) use this so their
// non-atomic scans can't race a concurrent query's exchange cycle.
func (s *System) PinnedSnapshot(h *oltp.TableHandle) (*rde.Snapshot, func()) {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	set := s.X.SwitchAndSync([]*oltp.TableHandle{h})
	name := h.Table().Schema().Name
	return set.Snap(name), s.X.BeginScan(name)
}

// CheckpointDB writes a whole-database checkpoint under dir on cfs and
// returns its sequence number. The capture runs under the admission lock
// and the transaction manager's commit barrier: no query exchange cycle
// and no commit sits between its WAL append and its in-memory
// application, so the captured (WAL position, clock, commit count, table
// watermarks, OLAP dirty bits) are one transaction-consistent cut. The
// quiesced switch then makes every inactive instance that cut's image.
//
// Streaming happens after the barrier releases — transactions and queries
// proceed while table files are written from the pinned snapshot
// instances (updates go to the re-activated twin; appends land beyond the
// captured row watermarks). The manifest is written last, after every
// table file is synced: a crash mid-checkpoint leaves a manifest-less
// directory that recovery ignores.
func (s *System) CheckpointDB(cfs wal.FS, dir string, extras map[string]int64) (uint64, error) {
	tables := s.OLTPE.Tables()
	mgr := s.OLTPE.Manager()

	type capture struct {
		h     *oltp.TableHandle
		snap  *rde.Snapshot
		entry checkpoint.TableEntry
		unpin func()
	}
	var caps []capture
	man := &checkpoint.Manifest{Extras: extras}

	s.admitMu.Lock()
	mgr.CommitBarrier(func() {
		set := s.X.SwitchAndSyncQuiesced(tables)
		if l := mgr.WAL(); l != nil {
			man.WALPos = l.Pos()
		}
		man.Clock = mgr.Now()
		man.Commits = mgr.Commits()
		for _, h := range tables {
			t := h.Table()
			name := t.Schema().Name
			snap := set.Snap(name)
			var dirty []int64
			t.DirtyOLAP().ForEachSet(func(i int) { dirty = append(dirty, int64(i)) })
			caps = append(caps, capture{
				h:    h,
				snap: snap,
				entry: checkpoint.TableEntry{
					Name:        name,
					Rows:        snap.Rows,
					ReplicaRows: s.X.Replica(h).Rows(),
					Dirty:       dirty,
				},
				unpin: s.X.BeginScan(name),
			})
		}
	})
	s.admitMu.Unlock()
	defer func() {
		for _, c := range caps {
			c.unpin()
		}
	}()

	seq := checkpoint.NextSeq(cfs, dir)
	seqDir := checkpoint.SeqDir(dir, seq)
	if err := cfs.MkdirAll(seqDir); err != nil {
		return 0, fmt.Errorf("core: checkpoint %s: %w", seqDir, err)
	}
	for i := range caps {
		c := &caps[i]
		path := seqDir + "/" + c.entry.Name + ".ehcp"
		f, err := cfs.Create(path)
		if err != nil {
			return 0, fmt.Errorf("core: checkpoint %s: %w", path, err)
		}
		err = checkpoint.Write(f, c.h.Table(), c.snap.Inst, c.entry.Rows)
		if err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return 0, fmt.Errorf("core: checkpoint %s: %w", path, err)
		}
		if c.entry.FileCRC, err = checkpoint.FileCRC(cfs, path); err != nil {
			return 0, fmt.Errorf("core: checkpoint %s: %w", path, err)
		}
		man.Tables = append(man.Tables, c.entry)
	}
	mpath := seqDir + "/" + checkpoint.ManifestName
	mf, err := cfs.Create(mpath)
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint %s: %w", mpath, err)
	}
	err = checkpoint.WriteManifest(mf, man)
	if err == nil {
		err = mf.Sync()
	}
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint %s: %w", mpath, err)
	}
	return seq, nil
}
