package core

import (
	"elastichtap/internal/rde"
	"elastichtap/internal/topology"
)

// Scheduler owns the state machine: it decides the target state per query
// (Algorithm 2) and enforces it on the core ledger (Algorithm 1).
type Scheduler struct {
	cfg    Config
	ledger *topology.Ledger

	oltpSocket, olapSocket int
	state                  State
}

// NewScheduler builds a scheduler over the ledger. The system boots in S2,
// full isolation, each engine owning one socket (§5.1).
func NewScheduler(cfg Config, ledger *topology.Ledger, oltpSocket, olapSocket int) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:        cfg,
		ledger:     ledger,
		oltpSocket: oltpSocket,
		olapSocket: olapSocket,
		state:      S2,
	}
	s.migrateS2()
	return s, nil
}

// Config returns the scheduler configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// SetConfig replaces the configuration (experiments sweep α and the
// elastic-core budget at runtime).
func (s *Scheduler) SetConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.cfg = cfg
	return nil
}

// State returns the current system state.
func (s *Scheduler) State() State { return s.state }

// Decide implements Algorithm 2 — freshness-driven resource scheduling.
// Given the measured freshness and whether the query belongs to a batch,
// it returns the state the system should migrate to:
//
//	if Nfq < α·Nft and not a batch:
//	    if elasticity unavailable:        S3-ISOLATED
//	    else if mode is HYBRID:           S3-NON-ISOLATED
//	    else:                             S1
//	else:                                 S2 (ETL)
func (s *Scheduler) Decide(f rde.Freshness, queryBatch bool) State {
	if float64(f.Nfq) < s.cfg.Alpha*float64(f.Nft) && !queryBatch {
		if !s.cfg.Elasticity {
			return S3IS
		}
		if s.cfg.Mode == ModeHybrid {
			return S3NI
		}
		return S1
	}
	return S2
}

// MigrateTo enforces the target state on the ledger (Algorithm 1) and
// records it. Migrating to the current state re-applies the layout, which
// is idempotent.
func (s *Scheduler) MigrateTo(st State) {
	switch st {
	case S1:
		s.migrateS1(s.cfg.ElasticCores)
	case S2:
		s.migrateS2()
	case S3IS:
		s.migrateS3(true, 0)
	case S3NI:
		s.migrateS3(false, s.cfg.ElasticCores)
	}
	s.state = st
}

// OLTPPlacement returns the OLTP engine's core allocation.
func (s *Scheduler) OLTPPlacement() topology.Placement {
	return s.ledger.PlacementOf(topology.OLTP)
}

// OLAPPlacement returns the OLAP engine's core allocation.
func (s *Scheduler) OLAPPlacement() topology.Placement {
	return s.ledger.PlacementOf(topology.OLAP)
}
