package core

import (
	"sync"

	"elastichtap/internal/rde"
	"elastichtap/internal/topology"
)

// Scheduler owns the state machine: it decides the target state per query
// (Algorithm 2) and enforces it on the core ledger (Algorithm 1). It is
// safe for concurrent use — queries admit and migrate from any goroutine.
type Scheduler struct {
	// ledger is the core-ownership ledger. Migrations mutate it
	// core-by-core, so reads outside mu can observe half-applied
	// layouts.
	//htap:guardedby mu
	ledger *topology.Ledger

	oltpSocket, olapSocket int

	mu        sync.Mutex
	cfg       Config                                              //htap:guardedby mu
	state     State                                               //htap:guardedby mu
	onMigrate func(State, topology.Placement, topology.Placement) //htap:guardedby mu
}

// NewScheduler builds a scheduler over the ledger. The system boots in S2,
// full isolation, each engine owning one socket (§5.1).
func NewScheduler(cfg Config, ledger *topology.Ledger, oltpSocket, olapSocket int) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Scheduler{
		cfg:        cfg,
		ledger:     ledger,
		oltpSocket: oltpSocket,
		olapSocket: olapSocket,
		state:      S2,
	}
	s.migrateS2()
	return s, nil
}

// Config returns the scheduler configuration.
func (s *Scheduler) Config() Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// SetConfig replaces the configuration (experiments sweep α and the
// elastic-core budget at runtime).
func (s *Scheduler) SetConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.cfg = cfg
	s.mu.Unlock()
	return nil
}

// State returns the current system state.
func (s *Scheduler) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// OnMigrate registers a callback invoked by every MigrateTo with the new
// state and the per-engine placements that migration produced — the hook
// through which the engines' worker pools learn of placement changes the
// moment they happen, mid-query included. The callback runs while the
// scheduler lock is held, so concurrent migrations apply their layouts in
// migration order and can never leave a pool sized for a stale state; it
// must not call back into the Scheduler.
func (s *Scheduler) OnMigrate(fn func(st State, oltp, olap topology.Placement)) {
	s.mu.Lock()
	s.onMigrate = fn
	s.mu.Unlock()
}

// Decide implements Algorithm 2 — freshness-driven resource scheduling.
// Given the measured freshness and whether the query belongs to a batch,
// it returns the state the system should migrate to:
//
//	if Nfq < α·Nft and not a batch:
//	    if elasticity unavailable:        S3-ISOLATED
//	    else if mode is HYBRID:           S3-NON-ISOLATED
//	    else:                             S1
//	else:                                 S2 (ETL)
func (s *Scheduler) Decide(f rde.Freshness, queryBatch bool) State {
	cfg := s.Config()
	if float64(f.Nfq) < cfg.Alpha*float64(f.Nft) && !queryBatch {
		if !cfg.Elasticity {
			return S3IS
		}
		if cfg.Mode == ModeHybrid {
			return S3NI
		}
		return S1
	}
	return S2
}

// MigrateTo enforces the target state on the ledger (Algorithm 1), records
// it, and notifies the OnMigrate listener so the engine worker pools
// resize immediately — running queries shed or gain workers mid-flight.
// Migrating to the current state re-applies the layout, which is
// idempotent.
func (s *Scheduler) MigrateTo(st State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch st {
	case S1:
		s.migrateS1(s.cfg.ElasticCores)
	case S2:
		s.migrateS2()
	case S3IS:
		s.migrateS3(true, 0)
	case S3NI:
		s.migrateS3(false, s.cfg.ElasticCores)
	}
	s.state = st
	if s.onMigrate != nil {
		// Still under s.mu: the layout this migration wrote is applied
		// before any later migration can overwrite it.
		s.onMigrate(st, s.ledger.PlacementOf(topology.OLTP), s.ledger.PlacementOf(topology.OLAP))
	}
}

// OLTPPlacement returns the OLTP engine's core allocation.
func (s *Scheduler) OLTPPlacement() topology.Placement {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.PlacementOf(topology.OLTP)
}

// OLAPPlacement returns the OLAP engine's core allocation.
func (s *Scheduler) OLAPPlacement() topology.Placement {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.PlacementOf(topology.OLAP)
}

// Placements returns both engines' allocations as one consistent
// snapshot: migrations mutate the ledger core-by-core while holding the
// scheduler lock, so reading under the same lock can never observe a
// half-applied layout (unlike two bare OLTPPlacement/OLAPPlacement calls
// racing a concurrent MigrateTo).
func (s *Scheduler) Placements() (oltp, olap topology.Placement) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.PlacementOf(topology.OLTP), s.ledger.PlacementOf(topology.OLAP)
}
