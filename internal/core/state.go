// Package core implements the paper's primary contribution: the adaptive
// HTAP scheduler (§4). It models the system as discrete states — S1
// (co-located), S2 (isolated + ETL), S3-IS (hybrid, socket-isolated) and
// S3-NI (hybrid, non-isolated) — migrates between them with Algorithm 1,
// and picks the state per query with the freshness-driven Algorithm 2.
package core

import "fmt"

// State is a point in the HTAP design spectrum (§3.4).
type State int8

const (
	// S1 co-locates OLTP and OLAP on every socket; OLAP reads the inactive
	// OLTP instance in place.
	S1 State = iota
	// S2 isolates the engines at socket granularity and ETLs the fresh
	// delta into the OLAP replica before query execution.
	S2
	// S3IS keeps socket isolation; OLAP reads fresh data remotely over the
	// interconnect (full-remote or split access).
	S3IS
	// S3NI lends OLAP some OLTP cores so fresh data is reduced with full
	// local memory bandwidth before crossing the interconnect.
	S3NI
)

// String names the state with the paper's labels.
func (s State) String() string {
	switch s {
	case S1:
		return "S1"
	case S2:
		return "S2"
	case S3IS:
		return "S3-IS"
	case S3NI:
		return "S3-NI"
	default:
		return fmt.Sprintf("state(%d)", int8(s))
	}
}

// ElasticityMode is Algorithm 2's Mel knob: which state to prefer when
// elastic resources are available.
type ElasticityMode int8

const (
	// ModeHybrid prefers S3-NI (borrow OLTP cores).
	ModeHybrid ElasticityMode = iota
	// ModeColocation prefers S1 (trade cores between sockets).
	ModeColocation
)

// String names the mode.
func (m ElasticityMode) String() string {
	if m == ModeColocation {
		return "co-location"
	}
	return "hybrid"
}

// Config parameterizes the scheduler. Zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Alpha is the ETL sensitivity α ∈ [0,1] (§4.2): the scheduler migrates
	// to S2 when Nfq >= Alpha*Nft. Smaller values ETL more eagerly.
	Alpha float64

	// Elasticity is Algorithm 2's Fel flag: whether engines may exchange
	// compute resources at all.
	Elasticity bool

	// Mode is Mel: S3-NI versus S1 when elasticity is available.
	Mode ElasticityMode

	// OLTPSockThres is the administrator floor on OLTP sockets (Alg. 1).
	OLTPSockThres int

	// OLTPCpuThres is the administrator floor on OLTP cores per socket in
	// co-located states (Alg. 1). Index by socket.
	OLTPCpuThres []int

	// ElasticCores is how many cores migrations S1/S3-NI move: S1 trades
	// this many cores between the sockets; S3-NI lends this many OLTP
	// cores to OLAP. Bounded below by OLTPCpuThres.
	ElasticCores int

	// SplitAccess enables the split access-path optimization in hybrid
	// states for insert-only fact tables (§5.2).
	SplitAccess bool

	// ChargeSyncToQuery adds the instance-switch sync time to the query
	// response time (off by default; the paper reports it as negligible).
	ChargeSyncToQuery bool
}

// DefaultConfig returns the paper's evaluation settings: α=0.5 (§5.3),
// elasticity on in hybrid mode with 4 elastic cores ("with 4-elastic
// cores", §5.3), split access enabled, and an administrator floor of half
// the cores per socket for OLTP.
func DefaultConfig(sockets, coresPerSocket int) Config {
	thres := make([]int, sockets)
	for i := range thres {
		thres[i] = coresPerSocket / 2
	}
	return Config{
		Alpha:         0.5,
		Elasticity:    true,
		Mode:          ModeHybrid,
		OLTPSockThres: 1,
		OLTPCpuThres:  thres,
		ElasticCores:  4,
		SplitAccess:   true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("core: Alpha %v outside [0,1]", c.Alpha)
	}
	if c.OLTPSockThres < 0 {
		return fmt.Errorf("core: negative OLTPSockThres")
	}
	if c.ElasticCores < 0 {
		return fmt.Errorf("core: negative ElasticCores")
	}
	return nil
}
