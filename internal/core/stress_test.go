package core

import (
	"sync"
	"testing"

	"elastichtap/internal/ch"
)

// TestStressContendedWorkers hammers the full stack — 14 free-running
// workers against adaptive queries — and requires zero abandoned
// transactions: wait-die with sticky priorities plus retry backoff must
// always make progress.
func TestStressContendedWorkers(t *testing.T) {
	sys, db := newTestSystem(t)
	sys.PrimeReplicas()
	mix := ch.NewMix(db, 0, 1)
	mgr := sys.OLTPE.Manager()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	for w := 0; w < 14; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := mgr.RunWithRetry(1<<20, mix.Next(w)); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			}
		}(w)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := sys.RunQuery(&ch.Q6{DB: db}, QueryOptions{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for i, e := range errs {
		if i > 4 {
			break
		}
		t.Logf("err: %v", e)
	}
	if len(errs) > 0 {
		t.Fatalf("%d errors", len(errs))
	}
}
