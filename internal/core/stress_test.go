package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"elastichtap/internal/ch"
)

// TestStressContendedWorkers hammers the full stack — 14 free-running
// workers against adaptive queries — and requires zero abandoned
// transactions: wait-die with sticky priorities plus retry backoff must
// always make progress.
func TestStressContendedWorkers(t *testing.T) {
	sys, db := newTestSystem(t)
	sys.PrimeReplicas()
	mix := ch.NewMix(db, 0, 1)
	mgr := sys.OLTPE.Manager()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	for w := 0; w < 14; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := mgr.RunWithRetry(1<<20, mix.Next(w)); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			}
		}(w)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := sys.RunQueryContext(context.Background(), db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for i, e := range errs {
		if i > 4 {
			break
		}
		t.Logf("err: %v", e)
	}
	if len(errs) > 0 {
		t.Fatalf("%d errors", len(errs))
	}
}

// TestStressQueriesRunAndMigrationsConcurrently is the elasticity torture
// test: analytical queries, transaction injection and repeated scheduler
// migrations all run at once. Admission is serialized, executions share
// the OLAP pool, and every MigrateTo resizes both pools mid-flight. The
// test requires no deadlock, no errors, and Q6 counts that never shrink
// (the NewOrder-only mix is insert-only).
func TestStressQueriesRunAndMigrationsConcurrently(t *testing.T) {
	sys, db := newTestSystem(t)
	sys.PrimeReplicas()

	stop := make(chan struct{})
	var bg sync.WaitGroup

	// Transaction injector, paced so ETL volume stays bounded.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sys.InjectTransactions(3)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Migration churn: cycle every state, including re-entering the
	// current one, from outside any query.
	bg.Add(1)
	go func() {
		defer bg.Done()
		states := []State{S1, S2, S3IS, S3NI, S2, S1}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sys.Sched.MigrateTo(states[i%len(states)])
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var qg sync.WaitGroup
	errCh := make(chan error, 32)
	for g := 0; g < 3; g++ {
		qg.Add(1)
		go func(g int) {
			defer qg.Done()
			prev := -1.0
			for i := 0; i < 6; i++ {
				opt := QueryOptions{}
				if i%2 == 1 {
					opt.ForceState = ForcedState([]State{S1, S2, S3IS, S3NI}[(g+i)%4])
				}
				rep, _, err := sys.RunQueryContext(context.Background(), db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), opt, nil)
				if err != nil {
					errCh <- err
					return
				}
				count := rep.Result.Rows[0][1]
				if count < prev {
					errCh <- fmt.Errorf("goroutine %d: Q6 count shrank %v -> %v", g, prev, count)
					return
				}
				prev = count
				if rep.Stats.Workers < 1 {
					errCh <- fmt.Errorf("goroutine %d: no workers participated: %+v", g, rep.Stats)
					return
				}
			}
		}(g)
	}
	qg.Wait()
	close(stop)
	bg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
