package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"elastichtap/internal/ch"
	"elastichtap/internal/workload"
)

// TestDefaultTenantImplicit: callers that never mention a tenant run
// through the implicit default tenant, unchanged — and show up in the
// per-tenant metrics.
func TestDefaultTenantImplicit(t *testing.T) {
	sys, db := newTestSystem(t)
	defer sys.Close()
	rep, _, err := sys.RunQueryContext(context.Background(), db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenant != workload.DefaultTenant {
		t.Fatalf("tenant = %q, want %q", rep.Tenant, workload.DefaultTenant)
	}
	snap := sys.Metrics()
	if len(snap.Tenants) != 1 || snap.Tenants[0].Name != workload.DefaultTenant {
		t.Fatalf("tenant rows = %+v", snap.Tenants)
	}
	row := snap.Tenants[0]
	if row.Admitted != 1 || row.Running != 0 || row.Rejected != 0 {
		t.Fatalf("default tenant row = %+v", row)
	}
	if row.MorselsDispatched == 0 || row.BytesScanned == 0 {
		t.Fatalf("dispatch/bytes not accounted: %+v", row)
	}
}

// TestZeroQuotaTenantOverloaded: a tenant registered with zero concurrency
// is rejected with the typed overload error — it never queues, never
// deadlocks, and the system stays usable for other tenants.
func TestZeroQuotaTenantOverloaded(t *testing.T) {
	sys, db := newTestSystem(t)
	defer sys.Close()
	if err := sys.WM.Register("blocked", workload.Config{MaxConcurrent: 0}); err != nil {
		t.Fatal(err)
	}
	ctx := workload.WithTenant(context.Background(), "blocked")
	_, _, err := sys.RunQueryContext(ctx, db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil)
	if !errors.Is(err, workload.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *workload.OverloadError
	if !errors.As(err, &oe) || oe.Tenant != "blocked" {
		t.Fatalf("overload metadata = %+v (err %v)", oe, err)
	}
	// The default tenant is unaffected.
	if _, _, err := sys.RunQueryContext(context.Background(), db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestUnknownTenantRejectedBeforeAdmission: naming a tenant that was never
// registered fails fast with ErrUnknownTenant.
func TestUnknownTenantRejectedBeforeAdmission(t *testing.T) {
	sys, db := newTestSystem(t)
	defer sys.Close()
	ctx := workload.WithTenant(context.Background(), "ghost")
	_, _, err := sys.RunQueryContext(ctx, db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil)
	if !errors.Is(err, workload.ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
}

// TestTenantBytesBudgetWindow: byte budgets are charged with the
// cost-model-scaled bytes a query actually scanned and refill on the
// injected monotonic clock, deterministically.
func TestTenantBytesBudgetWindow(t *testing.T) {
	sys, db := newTestSystem(t)
	defer sys.Close()
	var mu sync.Mutex
	now := time.Duration(0)
	clock := func() time.Duration { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now += d; mu.Unlock() }
	sys.WM = workload.NewWithClock(clock)
	if err := sys.WM.Register("metered", workload.Config{
		MaxConcurrent:  workload.Unlimited,
		BytesPerWindow: 1, // any successful scan exhausts the window
		Window:         time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	ctx := workload.WithTenant(context.Background(), "metered")
	if _, _, err := sys.RunQueryContext(ctx, db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil); err != nil {
		t.Fatalf("first query within budget: %v", err)
	}
	_, _, err := sys.RunQueryContext(ctx, db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil)
	var oe *workload.OverloadError
	if !errors.As(err, &oe) || oe.Reason != workload.BytesExhausted {
		t.Fatalf("err = %v, want BytesExhausted overload", err)
	}
	if oe.RetryAfter <= 0 || oe.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want within (0, 1s]", oe.RetryAfter)
	}
	advance(oe.RetryAfter)
	if _, _, err := sys.RunQueryContext(ctx, db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil); err != nil {
		t.Fatalf("post-refill query: %v", err)
	}
}

// TestQueuedQueryCancellationFreesSlot: cancelling a query that is queued
// behind its tenant's concurrency bound — admitted by neither the
// workload manager nor the scheduler — frees the queue slot and releases
// nothing it did not hold.
func TestQueuedQueryCancellationFreesSlot(t *testing.T) {
	sys, db := newTestSystem(t)
	defer sys.Close()
	if err := sys.WM.Register("narrow", workload.Config{MaxConcurrent: 1, MaxQueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	// Occupy the single slot directly so the query under test must queue.
	grant, err := sys.WM.Admit(context.Background(), "narrow")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(workload.WithTenant(context.Background(), "narrow"))
	errc := make(chan error, 1)
	go func() {
		_, _, err := sys.RunQueryContext(ctx, db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil)
		errc <- err
	}()
	waitFor(t, func() bool { ts, _ := sys.WM.Tenant("narrow"); return ts.Queued == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued query cancel: err = %v, want context.Canceled", err)
	}
	ts, _ := sys.WM.Tenant("narrow")
	if ts.Queued != 0 || ts.Running != 1 {
		t.Fatalf("occupancy after cancel = %+v", ts)
	}
	grant.Release(0)
	// The tenant is fully usable afterwards.
	if _, _, err := sys.RunQueryContext(workload.WithTenant(context.Background(), "narrow"),
		db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentTenantsAllProgress is the -race smoke at the system
// level: skewed weights submitting concurrently must all complete, and
// the per-tenant accounting must balance.
func TestConcurrentTenantsAllProgress(t *testing.T) {
	sys, db := newTestSystem(t)
	defer sys.Close()
	tenants := map[string]workload.Config{
		"gold":   {Weight: 4, MaxConcurrent: 4, MaxQueueDepth: 16},
		"silver": {Weight: 2, MaxConcurrent: 4, MaxQueueDepth: 16},
		"bronze": {Weight: 1, MaxConcurrent: 1, MaxQueueDepth: 16},
	}
	for name, cfg := range tenants {
		if err := sys.WM.Register(name, cfg); err != nil {
			t.Fatal(err)
		}
	}
	const perTenant = 6
	var wg sync.WaitGroup
	for name := range tenants {
		name := name
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx := workload.WithTenant(context.Background(), name)
				rep, _, err := sys.RunQueryContext(ctx, db.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)), QueryOptions{}, nil)
				if err != nil {
					t.Errorf("tenant %s: %v", name, err)
					return
				}
				if rep.Tenant != name {
					t.Errorf("report tenant = %q, want %q", rep.Tenant, name)
				}
			}()
		}
	}
	wg.Wait()
	for name := range tenants {
		ts, ok := sys.WM.Tenant(name)
		if !ok || ts.Admitted != perTenant || ts.Running != 0 || ts.Queued != 0 {
			t.Errorf("tenant %s final stats = %+v (ok=%v)", name, ts, ok)
		}
	}
	snap := sys.Metrics()
	if len(snap.Tenants) != 4 { // three registered + default
		t.Fatalf("tenant rows = %d, want 4", len(snap.Tenants))
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
