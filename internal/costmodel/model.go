package costmodel

import (
	"fmt"
	"math"

	"elastichtap/internal/topology"
)

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Model evaluates simulated durations on a fixed machine. It is stateless
// and safe for concurrent use; all contention inputs are explicit.
type Model struct {
	topo topology.Config
	p    Params
}

// New builds a model for the machine. It panics on invalid inputs because a
// misconfigured model poisons every downstream measurement.
func New(topo topology.Config, p Params) *Model {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Model{topo: topo, p: p}
}

// Topology returns the machine description.
func (m *Model) Topology() topology.Config { return m.topo }

// Params returns the calibration constants.
func (m *Model) Params() Params { return m.p }

// Usage reports the bandwidth a activity imposes on the machine while it
// runs, as utilization fractions in [0,1].
type Usage struct {
	// SocketBW[s] is the fraction of socket s's DRAM bandwidth consumed.
	SocketBW []float64
	// Interconnect is the fraction of one interconnect link consumed.
	Interconnect float64
}

// ZeroUsage returns an all-idle usage for the machine.
func (m *Model) ZeroUsage() Usage {
	return Usage{SocketBW: make([]float64, m.topo.Sockets)}
}

// Add returns the element-wise sum of two usages, clamped to 1.
func (u Usage) Add(v Usage) Usage {
	n := len(u.SocketBW)
	if len(v.SocketBW) > n {
		n = len(v.SocketBW)
	}
	out := Usage{SocketBW: make([]float64, n)}
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(u.SocketBW) {
			a = u.SocketBW[i]
		}
		if i < len(v.SocketBW) {
			b = v.SocketBW[i]
		}
		out.SocketBW[i] = clamp01(a + b)
	}
	out.Interconnect = clamp01(u.Interconnect + v.Interconnect)
	return out
}

// On returns the socket utilization (0 for out-of-range sockets).
func (u Usage) On(s int) float64 {
	if s < 0 || s >= len(u.SocketBW) {
		return 0
	}
	return u.SocketBW[s]
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ScanRequest describes one analytical pipeline execution for timing.
type ScanRequest struct {
	// Class selects the per-core processing rate.
	Class WorkClass
	// BytesAt[s] is the number of bytes homed on socket s that the pipeline
	// must read and process.
	BytesAt []int64
	// Workers is the OLAP core placement executing the pipeline.
	Workers topology.Placement
	// Background is bandwidth already consumed by other activity (OLTP).
	Background Usage
	// BroadcastBytes is extra data replicated over the interconnect to every
	// worker socket before probing (hash-join build side, Q19).
	BroadcastBytes int64
	// MeasuredRemoteBytesAt[s], when non-nil, is the measured payload homed
	// on socket s that remote workers actually consumed (the OLAP pool's
	// cross-socket work stealing). It informs the cross-traffic attribution
	// — CrossBytes reports at least the measured volume — while the
	// completion-time search stays on the modeled locality-aware routing,
	// keeping simulated durations deterministic.
	MeasuredRemoteBytesAt []int64
	// SortRows is the number of merged result rows an ordered (top-k)
	// query passes through its merge-side sort; zero for unordered
	// queries. Charged at Params.SortSecondsPerRow on top of the parallel
	// pipeline, since the ordered merge is single-threaded.
	SortRows int64
}

// MeasuredRemoteBytes returns the total measured cross-socket payload.
func (r ScanRequest) MeasuredRemoteBytes() int64 {
	var t int64
	for _, b := range r.MeasuredRemoteBytesAt {
		t += b
	}
	return t
}

// TotalBytes returns the payload size of the request.
func (r ScanRequest) TotalBytes() int64 {
	var t int64
	for _, b := range r.BytesAt {
		t += b
	}
	return t
}

// ScanResult is the outcome of timing one pipeline.
type ScanResult struct {
	// Seconds is the simulated pipeline duration.
	Seconds float64
	// Usage is the bandwidth footprint while the pipeline runs.
	Usage Usage
	// CrossBytes is how many payload bytes crossed the interconnect.
	CrossBytes int64
}

// OLAPScan times a pipeline with locality-and-load-aware block routing
// (§3.3): workers consume socket-local data first at up to their CPU rate,
// bounded by the socket's spare DRAM bandwidth; the remainder streams over
// the interconnect to remote workers. The duration is found by binary
// search on the smallest feasible completion time.
func (m *Model) OLAPScan(req ScanRequest) ScanResult {
	total := req.TotalBytes()
	if total == 0 && req.BroadcastBytes == 0 {
		return ScanResult{Usage: m.ZeroUsage()}
	}
	if req.Workers.Total() == 0 {
		return ScanResult{Seconds: math.Inf(1), Usage: m.ZeroUsage()}
	}
	rate := m.p.PerCoreRate[req.Class]

	// Broadcast phase: the build side travels once per remote worker socket.
	var bcast float64
	var bcastBytes int64
	if req.BroadcastBytes > 0 {
		remoteSockets := 0
		for s, c := range req.Workers.PerSocket {
			if c > 0 && int64OrZero(req.BytesAt, s) == 0 {
				remoteSockets++
			}
		}
		if remoteSockets == 0 {
			remoteSockets = maxInt(len(req.Workers.Sockets())-1, 0)
		}
		bcastBytes = req.BroadcastBytes * int64(float64(remoteSockets)*m.p.BroadcastBuildPenalty)
		if bcastBytes > 0 {
			bcast = float64(bcastBytes) / m.icBW()
		}
	}

	lo, hi := 0.0, 4*float64(total)/m.icBW()+float64(total)/(rate)+1e-9
	if hi <= lo {
		hi = 1e-6
	}
	var cross int64
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		ok, c := m.scanFeasible(req, rate, mid)
		if ok {
			hi = mid
			cross = c
		} else {
			lo = mid
		}
	}
	t := hi
	u := m.ZeroUsage()
	if t > 0 {
		for s := range u.SocketBW {
			u.SocketBW[s] = clamp01(float64(int64OrZero(req.BytesAt, s)) / t / m.topo.LocalBW)
		}
		u.Interconnect = clamp01(float64(cross) / t / m.icBW())
	}
	// Attribute at least the measured stolen volume to the interconnect:
	// work stealing may route more payload across sockets than the model's
	// optimal split would need.
	if measured := req.MeasuredRemoteBytes(); measured > cross {
		cross = measured
	}
	// The ordered merge sorts after the parallel pipeline drains, one row
	// at a time on the merging goroutine.
	sortSecs := float64(req.SortRows) * m.p.SortSecondsPerRow
	return ScanResult{Seconds: t + bcast + sortSecs, Usage: u, CrossBytes: cross + bcastBytes}
}

// scanFeasible reports whether all payload bytes can be drained within t
// seconds, and how many bytes must cross the interconnect to do so.
func (m *Model) scanFeasible(req ScanRequest, rate, t float64) (bool, int64) {
	n := m.topo.Sockets
	cpuCap := make([]float64, n) // bytes of CPU work each socket's workers can do
	memCap := make([]float64, n) // bytes readable from each socket's DRAM
	egress := make([]float64, n) // bytes each socket can ship out
	for s := 0; s < n; s++ {
		cpuCap[s] = float64(req.Workers.On(s)) * rate * t
		avail := m.topo.LocalBW * (1 - req.Background.On(s))
		if min := m.topo.LocalBW * m.p.MinAvailBWFraction; avail < min {
			avail = min
		}
		memCap[s] = avail * t
		icAvail := m.icBW() * (1 - req.Background.Interconnect)
		if min := m.icBW() * m.p.MinAvailBWFraction; icAvail < min {
			icAvail = min
		}
		egress[s] = icAvail * t
	}
	// First pass: every socket's workers consume their local data, so no
	// leftover can steal CPU a socket needs for its own payload.
	leftover := make([]float64, n)
	for s := 0; s < n; s++ {
		d := float64(int64OrZero(req.BytesAt, s))
		local := math.Min(d, math.Min(cpuCap[s], memCap[s]))
		cpuCap[s] -= local
		memCap[s] -= local
		leftover[s] = d - local
	}
	// Second pass: route leftovers over the interconnect to sockets with
	// spare CPU, bounded by the home socket's remaining DRAM bandwidth and
	// its egress capacity.
	var cross float64
	for s := 0; s < n; s++ {
		for w := 0; w < n && leftover[s] > 1e-9; w++ {
			if w == s {
				continue
			}
			y := math.Min(leftover[s], math.Min(cpuCap[w], math.Min(memCap[s], egress[s])))
			if y <= 0 {
				continue
			}
			leftover[s] -= y
			cpuCap[w] -= y
			memCap[s] -= y
			egress[s] -= y
			cross += y
		}
		if leftover[s] > 1e-6 {
			return false, 0
		}
	}
	return true, int64(cross)
}

func (m *Model) icBW() float64 { return m.topo.InterconnectBW }

func int64OrZero(xs []int64, i int) int64 {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// OLTPLoad describes the transactional engine's situation for timing.
type OLTPLoad struct {
	// Workers is the OLTP core placement.
	Workers topology.Placement
	// HomeSocket is where the OLTP instances and index live.
	HomeSocket int
	// Background is bandwidth consumed by concurrent OLAP activity.
	Background Usage
	// ExtraPerTxnSeconds adds per-transaction overhead (CoW page copies).
	ExtraPerTxnSeconds float64
}

// OLTPResult is the outcome of evaluating the transactional engine.
type OLTPResult struct {
	// TPS is transactions per second across all workers.
	TPS float64
	// Usage is the DRAM/interconnect footprint of running at TPS.
	Usage Usage
}

// OLTPThroughput evaluates the OLTP engine under the given placement and
// interference: per-core service time = CPU + dependent memory accesses at
// local or remote latency, inflated quadratically with the home socket's
// bus utilization, plus a concave cross-socket-atomics penalty when the
// worker pool spans sockets (§5.2 S1 discussion).
func (m *Model) OLTPThroughput(load OLTPLoad) OLTPResult {
	total := load.Workers.Total()
	if total == 0 {
		return OLTPResult{Usage: m.ZeroUsage()}
	}
	remote := 0
	for s, c := range load.Workers.PerSocket {
		if s != load.HomeSocket {
			remote += c
		}
	}
	remoteFrac := float64(remote) / float64(total)
	atomics := 1 + m.p.AtomicsPenalty*math.Sqrt(remoteFrac)

	homeUtil := load.Background.On(load.HomeSocket)
	icUtil := load.Background.Interconnect
	var tps float64
	for s, c := range load.Workers.PerSocket {
		if c == 0 {
			continue
		}
		var access float64
		if s == load.HomeSocket {
			access = m.p.LocalAccessSeconds * (1 + m.p.MemContentionK*homeUtil*homeUtil)
		} else {
			// Remote workers traverse the interconnect and the home DRAM.
			congestion := math.Max(homeUtil, icUtil)
			access = m.p.RemoteAccessSeconds * (1 + m.p.MemContentionK*congestion*congestion)
		}
		service := (m.p.TxnCPUSeconds+float64(m.p.TxnMemAccesses)*access)*atomics + load.ExtraPerTxnSeconds
		tps += float64(c) / service
	}
	u := m.ZeroUsage()
	bw := tps * float64(m.p.TxnMemAccesses) * m.p.TxnBytesPerAccess
	u.SocketBW[load.HomeSocket] = clamp01(bw / m.topo.LocalBW)
	if remoteFrac > 0 {
		u.Interconnect = clamp01(bw * remoteFrac / m.icBW())
	}
	return OLTPResult{TPS: tps, Usage: u}
}

// ETLTime returns the duration of copying `bytes` of fresh data from the
// OLTP socket into the OLAP instance using `cores` OLAP cores. The RDE uses
// OLAP compute for the copy because the query cannot start before the data
// lands (§3.4 S2); throughput is core-limited up to the interconnect cap.
func (m *Model) ETLTime(bytes int64, cores int) float64 {
	if bytes <= 0 {
		return 0
	}
	if cores <= 0 {
		cores = 1
	}
	rate := math.Min(float64(cores)*m.p.ETLCopyRatePerCore, m.icBW())
	return float64(bytes) / rate
}

// SyncTime returns the duration of the twin-instance synchronization after
// an active-instance switch: scan the update-indication bitmap for
// totalRows rows and copy modifiedRows tuples between the instances.
// Calibrated to ~10ms per million modified tuples (§3.4).
func (m *Model) SyncTime(modifiedRows, totalRows int64) float64 {
	bitmapBytes := float64(totalRows) / 8
	return float64(modifiedRows)/m.p.SyncRowsPerSec + bitmapBytes/m.p.SyncBitScanBytesPerSec
}

// CoWOverhead returns the per-transaction overhead when a CoW snapshot is
// live and each transaction dirties `pagesPerTxn` not-yet-copied pages.
func (m *Model) CoWOverhead(pagesPerTxn float64) float64 {
	if pagesPerTxn < 0 {
		pagesPerTxn = 0
	}
	return pagesPerTxn * m.p.CoWPageCopySeconds
}
