package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"elastichtap/internal/topology"
)

func testModel() *Model {
	return New(topology.DefaultConfig(), DefaultParams())
}

func place(perSocket ...int) topology.Placement {
	return topology.Placement{PerSocket: perSocket}
}

func TestOLTPBaselineNearTwoMTPS(t *testing.T) {
	// 14 local workers, no interference: ~2 MTPS (paper §1, Figure 1).
	m := testModel()
	res := m.OLTPThroughput(OLTPLoad{Workers: place(14, 0), HomeSocket: 0})
	if res.TPS < 1.5e6 || res.TPS > 2.5e6 {
		t.Fatalf("baseline TPS = %v, want ~2e6", res.TPS)
	}
	if res.Usage.On(0) <= 0 || res.Usage.On(0) > 0.3 {
		t.Fatalf("OLTP bandwidth usage = %v, want small fraction", res.Usage.On(0))
	}
}

func TestOLTPRemotePenalty(t *testing.T) {
	m := testModel()
	local := m.OLTPThroughput(OLTPLoad{Workers: place(14, 0), HomeSocket: 0})
	remote := m.OLTPThroughput(OLTPLoad{Workers: place(0, 14), HomeSocket: 0})
	drop := 1 - remote.TPS/local.TPS
	// Paper: ~37% drop when fully traded, no OLAP (§5.2 S1).
	if drop < 0.25 || drop > 0.55 {
		t.Fatalf("remote drop = %.0f%%, want 25-55%%", drop*100)
	}
}

func TestOLTPInterferenceHurts(t *testing.T) {
	m := testModel()
	bg := m.ZeroUsage()
	bg.SocketBW[0] = 0.9
	quiet := m.OLTPThroughput(OLTPLoad{Workers: place(14, 0), HomeSocket: 0})
	noisy := m.OLTPThroughput(OLTPLoad{Workers: place(14, 0), HomeSocket: 0, Background: bg})
	if noisy.TPS >= quiet.TPS {
		t.Fatal("bandwidth interference must reduce TPS")
	}
	drop := 1 - noisy.TPS/quiet.TPS
	if drop < 0.1 {
		t.Fatalf("drop under 90%% bus utilization = %.0f%%, too small", drop*100)
	}
}

func TestOLAPScanInterconnectBound(t *testing.T) {
	m := testModel()
	// All data on socket 0, all workers on socket 1: interconnect-bound.
	const bytes = 16e9
	res := m.OLAPScan(ScanRequest{
		Class:   ScanReduce,
		BytesAt: []int64{int64(bytes), 0},
		Workers: place(0, 14),
	})
	want := bytes / m.Topology().InterconnectBW
	if res.Seconds < want*0.95 || res.Seconds > want*1.3 {
		t.Fatalf("remote scan = %vs, want ~%vs", res.Seconds, want)
	}
	if res.CrossBytes < int64(bytes)*9/10 {
		t.Fatalf("cross bytes = %d, want ~%d", res.CrossBytes, int64(bytes))
	}
}

func TestOLAPScanLocalWorkersImprove(t *testing.T) {
	m := testModel()
	bytes := []int64{32e9, 0}
	remoteOnly := m.OLAPScan(ScanRequest{Class: ScanReduce, BytesAt: bytes, Workers: place(0, 14)})
	traded := m.OLAPScan(ScanRequest{Class: ScanReduce, BytesAt: bytes, Workers: place(4, 10)})
	if traded.Seconds >= remoteOnly.Seconds {
		t.Fatal("data-local workers must speed up the scan")
	}
	// Plateau: beyond saturation more local cores stop helping much (§5.2).
	six := m.OLAPScan(ScanRequest{Class: ScanReduce, BytesAt: bytes, Workers: place(6, 8)})
	twelve := m.OLAPScan(ScanRequest{Class: ScanReduce, BytesAt: bytes, Workers: place(12, 2)})
	gain := (six.Seconds - twelve.Seconds) / six.Seconds
	if gain > 0.15 {
		t.Fatalf("gain from 6 to 12 local cores = %.0f%%, expected plateau", gain*100)
	}
}

func TestOLAPScanNoWorkers(t *testing.T) {
	m := testModel()
	res := m.OLAPScan(ScanRequest{Class: ScanReduce, BytesAt: []int64{1e9, 0}, Workers: place(0, 0)})
	if !math.IsInf(res.Seconds, 1) {
		t.Fatalf("no workers should yield +Inf, got %v", res.Seconds)
	}
	empty := m.OLAPScan(ScanRequest{Class: ScanReduce, Workers: place(0, 1)})
	if empty.Seconds != 0 {
		t.Fatalf("empty scan = %v, want 0", empty.Seconds)
	}
}

func TestBroadcastChargesInterconnect(t *testing.T) {
	m := testModel()
	base := m.OLAPScan(ScanRequest{Class: JoinProbe, BytesAt: []int64{1e9, 0}, Workers: place(0, 14)})
	bc := m.OLAPScan(ScanRequest{
		Class: JoinProbe, BytesAt: []int64{1e9, 0}, Workers: place(0, 14),
		BroadcastBytes: 1e9,
	})
	if bc.Seconds <= base.Seconds {
		t.Fatal("broadcast must add time")
	}
}

func TestETLTime(t *testing.T) {
	m := testModel()
	one := m.ETLTime(12e9, 1)
	many := m.ETLTime(12e9, 14)
	// One core is copy-rate-limited and must be slower than many cores,
	// which saturate the interconnect.
	if one <= many {
		t.Fatalf("ETL with 1 core (%v) should be slower than with 14 (%v)", one, many)
	}
	// With many cores the copy is interconnect-bound.
	if want := 12e9 / m.Topology().InterconnectBW; many < want*0.99 {
		t.Fatalf("ETL faster than the interconnect: %v < %v", many, want)
	}
	if m.ETLTime(0, 4) != 0 {
		t.Fatal("zero bytes must be free")
	}
}

func TestSyncTimeMatchesPaperClaim(t *testing.T) {
	// "~10ms to sync around 1 million modified tuples in a database of
	// over 1.8 billion records" (§3.4).
	m := testModel()
	got := m.SyncTime(1_000_000, 1_800_000_000)
	if got < 0.008 || got > 0.030 {
		t.Fatalf("sync time = %vs, want ~0.01-0.02s", got)
	}
}

func TestCoWOverhead(t *testing.T) {
	m := testModel()
	if m.CoWOverhead(0) != 0 {
		t.Fatal("zero pages must be free")
	}
	if m.CoWOverhead(-1) != 0 {
		t.Fatal("negative pages must clamp to zero")
	}
	if m.CoWOverhead(10) <= m.CoWOverhead(1) {
		t.Fatal("more pages must cost more")
	}
}

func TestUsageAddClamps(t *testing.T) {
	u := Usage{SocketBW: []float64{0.7, 0.2}, Interconnect: 0.9}
	v := Usage{SocketBW: []float64{0.6}, Interconnect: 0.5}
	sum := u.Add(v)
	if sum.SocketBW[0] != 1 || sum.SocketBW[1] != 0.2 || sum.Interconnect != 1 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestQuickScanMonotoneInBytes(t *testing.T) {
	m := testModel()
	f := func(a, b uint32) bool {
		lo, hi := int64(a), int64(a)+int64(b)
		r1 := m.OLAPScan(ScanRequest{Class: ScanReduce, BytesAt: []int64{lo, 0}, Workers: place(2, 12)})
		r2 := m.OLAPScan(ScanRequest{Class: ScanReduce, BytesAt: []int64{hi, 0}, Workers: place(2, 12)})
		return r2.Seconds+1e-12 >= r1.Seconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScanMonotoneInWorkers(t *testing.T) {
	m := testModel()
	f := func(w uint8) bool {
		k := int(w%13) + 1
		fewer := m.OLAPScan(ScanRequest{Class: ScanGroupBy, BytesAt: []int64{8e9, 0}, Workers: place(k, 0)})
		more := m.OLAPScan(ScanRequest{Class: ScanGroupBy, BytesAt: []int64{8e9, 0}, Workers: place(k+1, 0)})
		return more.Seconds <= fewer.Seconds+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOLTPMonotoneInWorkers(t *testing.T) {
	m := testModel()
	f := func(w uint8) bool {
		k := int(w%13) + 1
		fewer := m.OLTPThroughput(OLTPLoad{Workers: place(k, 0), HomeSocket: 0})
		more := m.OLTPThroughput(OLTPLoad{Workers: place(k+1, 0), HomeSocket: 0})
		return more.TPS >= fewer.TPS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.RemoteAccessSeconds = bad.LocalAccessSeconds / 2
	if bad.Validate() == nil {
		t.Fatal("remote < local latency must fail")
	}
	bad = DefaultParams()
	bad.PerCoreRate = map[WorkClass]float64{}
	if bad.Validate() == nil {
		t.Fatal("missing rates must fail")
	}
}

func TestMeasuredStealingInformsCrossBytes(t *testing.T) {
	m := testModel()
	// All payload local to socket 0, workers co-located: the model routes
	// nothing across sockets on its own.
	req := ScanRequest{
		Class:   ScanReduce,
		BytesAt: []int64{1 << 30, 0},
		Workers: place(14, 0),
	}
	base := m.OLAPScan(req)
	if base.CrossBytes != 0 {
		t.Fatalf("co-located scan modeled cross bytes: %d", base.CrossBytes)
	}
	// The pool measured stolen morsels anyway (e.g. a mid-query resize
	// moved workers to socket 1): CrossBytes reports the measured volume,
	// while the simulated duration stays on the deterministic model.
	req.MeasuredRemoteBytesAt = []int64{128 << 20, 0}
	meas := m.OLAPScan(req)
	if meas.CrossBytes != 128<<20 {
		t.Fatalf("cross bytes = %d, want measured 128MiB", meas.CrossBytes)
	}
	if meas.Seconds != base.Seconds {
		t.Fatalf("measured attribution changed the duration: %v != %v",
			meas.Seconds, base.Seconds)
	}
	// When the model already routes more than was measured, the larger
	// modeled figure wins.
	req2 := ScanRequest{
		Class:                 ScanReduce,
		BytesAt:               []int64{1 << 30, 0},
		Workers:               place(0, 14),
		MeasuredRemoteBytesAt: []int64{1024, 0},
	}
	remote := m.OLAPScan(req2)
	if remote.CrossBytes <= 1024 {
		t.Fatalf("remote scan must cross the interconnect: %d", remote.CrossBytes)
	}
}

func TestJoinProjectHeavierThanProbe(t *testing.T) {
	m := testModel()
	req := ScanRequest{Class: JoinProbe, BytesAt: []int64{1 << 30, 0}, Workers: place(4, 0)}
	probe := m.OLAPScan(req)
	req.Class = JoinProject
	project := m.OLAPScan(req)
	// Payload projection pushes fewer bytes per core-second than the
	// existence probe, so the same scan takes longer.
	if project.Seconds <= probe.Seconds {
		t.Fatalf("join-project (%v) not slower than join-probe (%v)",
			project.Seconds, probe.Seconds)
	}
	if JoinProject.String() != "join-project" {
		t.Fatalf("String() = %q", JoinProject.String())
	}
}

func TestSortRowsChargedPerRow(t *testing.T) {
	m := testModel()
	req := ScanRequest{Class: ScanGroupBy, BytesAt: []int64{1 << 30, 0}, Workers: place(4, 0)}
	base := m.OLAPScan(req)
	req.SortRows = 2_000_000
	sorted := m.OLAPScan(req)
	want := base.Seconds + 2e6*m.Params().SortSecondsPerRow
	if d := sorted.Seconds - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("sorted scan = %v, want %v (base %v + sort charge)",
			sorted.Seconds, want, base.Seconds)
	}
	// The sort runs on the merging goroutine: more workers do not shrink it.
	req.Workers = place(14, 0)
	wide := m.OLAPScan(req)
	reqNoSort := req
	reqNoSort.SortRows = 0
	wideBase := m.OLAPScan(reqNoSort)
	if d := (wide.Seconds - wideBase.Seconds) - 2e6*m.Params().SortSecondsPerRow; d > 1e-9 || d < -1e-9 {
		t.Fatalf("sort charge varied with the placement: %v", wide.Seconds-wideBase.Seconds)
	}
}
