// Package costmodel charges simulated time for memory traffic and compute on
// the modeled NUMA machine (internal/topology). It replaces the hardware
// effects the paper measures directly — core pinning, per-socket DRAM
// bandwidth, interconnect saturation, cache-coherence penalties — which the
// Go runtime scheduler hides (see DESIGN.md §2).
//
// The engines execute real work on real data; they feed measured byte
// counts and placements into this model, which returns deterministic
// simulated durations and per-socket bandwidth usage. The usage in turn
// drives interference between the OLTP and the OLAP engine, which is the
// phenomenon the paper's scheduler manages.
package costmodel

// WorkClass describes the per-core CPU intensity of an analytical operator
// pipeline. Scan-dominated pipelines process more bytes per second per core
// than group-by or join pipelines (§5.3: Q6 vs Q1 vs Q19).
type WorkClass int

const (
	// ScanReduce is a scan-filter-reduce pipeline (CH-Q6).
	ScanReduce WorkClass = iota
	// ScanGroupBy is a scan-filter-groupby pipeline (CH-Q1).
	ScanGroupBy
	// JoinProbe is a fact-dimension hash join probe pipeline whose probe
	// only tests existence (CH-Q19's semi form).
	JoinProbe
	// JoinProject is a fact-dimension hash join that also projects
	// dimension payload columns into downstream grouping and aggregation
	// (CH-Q3, CH-Q12): every matched row materializes payload values, so
	// it pushes fewer bytes per core-second than the existence probe.
	JoinProject
)

// String names the work class.
func (w WorkClass) String() string {
	switch w {
	case ScanReduce:
		return "scan-reduce"
	case ScanGroupBy:
		return "scan-groupby"
	case JoinProbe:
		return "join-probe"
	case JoinProject:
		return "join-project"
	default:
		return "unknown"
	}
}

// Params holds every calibration constant of the model. All rates are
// bytes/second, all latencies seconds. Zero values are invalid; use
// DefaultParams and override selectively.
type Params struct {
	// PerCoreRate[w] is the bytes/s one core can push through a pipeline of
	// work class w when memory is not the bottleneck.
	PerCoreRate map[WorkClass]float64

	// ETLCopyRatePerCore is the effective bytes/s one core achieves copying
	// tuples from the OLTP socket into the OLAP instance (read remote +
	// transform + write local). The RDE performs ETL with OLAP cores (§3.4).
	ETLCopyRatePerCore float64

	// SyncRowsPerSec is the twin-instance synchronization rate in rows/s:
	// traversing set update-indication bits and copying the modified tuples
	// between the instances on the same socket. Calibrated to the paper's
	// "10ms to sync around 1 million modified tuples" (§3.4).
	SyncRowsPerSec float64

	// SyncBitScanBytesPerSec is the rate of scanning the update-indication
	// bitmap itself (sequential, cheap).
	SyncBitScanBytesPerSec float64

	// TxnCPUSeconds is the pure compute portion of one NewOrder-class
	// transaction on an uncontended local core.
	TxnCPUSeconds float64

	// TxnMemAccesses is the number of dependent (random) memory accesses a
	// transaction performs; each costs Local/RemoteAccessSeconds.
	TxnMemAccesses int

	// LocalAccessSeconds / RemoteAccessSeconds are per-access latencies for
	// socket-local and cross-socket memory.
	LocalAccessSeconds  float64
	RemoteAccessSeconds float64

	// TxnBytesPerAccess converts transaction accesses into DRAM traffic
	// (cacheline granularity) for the bandwidth ledger.
	TxnBytesPerAccess float64

	// MemContentionK scales OLTP memory-latency inflation with the square of
	// the bandwidth utilization of the socket it reads from: a saturated bus
	// queues random readers (§5.2 S1: "stress caused to the memory and the
	// interconnect bandwidth by the OLAP query").
	MemContentionK float64

	// AtomicsPenalty is the maximum relative service-time inflation from
	// cross-socket atomics when the OLTP worker pool spans sockets ([4] in
	// the paper). Applied as 1 + AtomicsPenalty*sqrt(remoteCoreFraction).
	AtomicsPenalty float64

	// CoWPageBytes and CoWPageCopySeconds model the hardware-supported
	// copy-on-write baseline of Figure 1: the first write to a page while a
	// snapshot is live copies the page.
	CoWPageBytes       int64
	CoWPageCopySeconds float64

	// BroadcastBuildPenalty is the extra interconnect traffic factor for
	// broadcast hash-join builds (Q19): the build side is replicated to
	// every socket that hosts probe workers.
	BroadcastBuildPenalty float64

	// SortSecondsPerRow charges the ordered (top-k) merge of sorted query
	// results: the merge runs single-threaded after the parallel pipeline,
	// so each merged row passing through the sort adds this much to the
	// pipeline duration regardless of the worker placement.
	SortSecondsPerRow float64

	// MinAvailBWFraction floors the local bandwidth available to a reader
	// class so the model never divides by zero under full contention.
	MinAvailBWFraction float64
}

// DefaultParams returns constants calibrated so that the paper's machine
// (topology.DefaultConfig) reproduces the published shapes:
//   - 14 OLTP workers, no OLAP: ~2 MTPS NewOrder (§1, Figure 1);
//   - OLAP scan saturates a socket with ~4-6 cores (Figures 3a, 3c);
//   - fully remote OLTP placement loses ~37% throughput (§5.2, S1);
//   - syncing 1M modified tuples ~10ms (§3.4).
func DefaultParams() Params {
	return Params{
		PerCoreRate: map[WorkClass]float64{
			ScanReduce:  14e9,
			ScanGroupBy: 6e9,
			JoinProbe:   5e9,
			JoinProject: 4e9,
		},
		ETLCopyRatePerCore:     1.2e9,
		SyncRowsPerSec:         1e8,
		SyncBitScanBytesPerSec: 60e9,
		TxnCPUSeconds:          4e-6,
		TxnMemAccesses:         40,
		LocalAccessSeconds:     80e-9,
		RemoteAccessSeconds:    130e-9,
		TxnBytesPerAccess:      64,
		MemContentionK:         2.0,
		AtomicsPenalty:         0.25,
		CoWPageBytes:           4096,
		CoWPageCopySeconds:     2.0e-6,
		BroadcastBuildPenalty:  1.0,
		SortSecondsPerRow:      50e-9,
		MinAvailBWFraction:     0.05,
	}
}

// Validate reports whether the parameter set is usable.
func (p Params) Validate() error {
	for _, w := range []WorkClass{ScanReduce, ScanGroupBy, JoinProbe, JoinProject} {
		if p.PerCoreRate[w] <= 0 {
			return errf("PerCoreRate[%v] must be positive", w)
		}
	}
	if p.SortSecondsPerRow < 0 {
		return errf("SortSecondsPerRow must be non-negative")
	}
	if p.ETLCopyRatePerCore <= 0 {
		return errf("ETLCopyRatePerCore must be positive")
	}
	if p.SyncRowsPerSec <= 0 {
		return errf("SyncRowsPerSec must be positive")
	}
	if p.TxnCPUSeconds <= 0 || p.TxnMemAccesses <= 0 {
		return errf("transaction cost constants must be positive")
	}
	if p.LocalAccessSeconds <= 0 || p.RemoteAccessSeconds < p.LocalAccessSeconds {
		return errf("access latencies must satisfy 0 < local <= remote")
	}
	if p.MinAvailBWFraction <= 0 || p.MinAvailBWFraction > 1 {
		return errf("MinAvailBWFraction must be in (0,1]")
	}
	return nil
}

type paramErr string

func (e paramErr) Error() string { return string(e) }

func errf(format string, args ...any) error {
	return paramErr("costmodel: " + sprintf(format, args...))
}
