package costmodel

import "math"

// TailLatency estimates per-transaction latency percentiles under the
// given load. The paper treats tail latency qualitatively (§5.2): "As OLAP
// stresses the memory bus, the OLTP engine is expected to experience
// higher tail latencies. In S3-IS and S2, this effect is expected to be
// smaller ... it becomes higher as the system migrates to S3-NI, and to S1
// which is the worst case."
//
// The model composes the mean service time with an M/M/1-style queueing
// inflation on the contended resources: the home memory bus (utilization
// from the concurrent scan) and the interconnect (for remote workers).
// P50 tracks the mean; P99 inflates with utilization hyperbolically.
type TailLatency struct {
	MeanSeconds float64
	P50Seconds  float64
	P99Seconds  float64
}

// OLTPTailLatency evaluates latency percentiles for the load.
func (m *Model) OLTPTailLatency(load OLTPLoad) TailLatency {
	res := m.OLTPThroughput(load)
	if res.TPS <= 0 {
		return TailLatency{}
	}
	// Mean service time across the pool.
	mean := float64(load.Workers.Total()) / res.TPS

	// Contention factor: the busier the home bus and interconnect, the
	// heavier the tail. Clamp utilization below 1 to keep the hyperbola
	// finite; the scheduler never plans for a saturated bus anyway.
	u := load.Background.On(load.HomeSocket)
	remote := 0
	for s, c := range load.Workers.PerSocket {
		if s != load.HomeSocket {
			remote += c
		}
	}
	if remote > 0 {
		u = math.Max(u, load.Background.Interconnect)
	}
	if u > 0.95 {
		u = 0.95
	}
	queue := u / (1 - u)
	return TailLatency{
		MeanSeconds: mean,
		P50Seconds:  mean * (1 + 0.3*queue),
		P99Seconds:  mean * (1 + 3.0*queue),
	}
}
