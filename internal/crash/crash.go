// Package crash is a randomized kill-point recovery harness: it drives a
// deterministic workload schedule (transaction batches, analytical
// queries, whole-database checkpoints) against a system running over a
// fault-injectable filesystem, kills the engine at a randomized point —
// mid-commit or mid-checkpoint via a byte budget that tears a write,
// mid-switch or mid-ETL via an exchange probe that panics — then restores
// from the surviving image and verifies the recovered system against a
// never-crashed twin: same commit count, same transaction clock, same
// per-table freshness, same query answers.
//
// Determinism is the load-bearing property. The schedule is derived from
// a seed, transactions run serially from a seeded mix, and the
// filesystem byte stream is identical between the measuring pass and the
// kill pass — so a byte budget chosen from the first pass lands at a
// known write in the second, and the twin can replay exactly the durable
// prefix the crashed run left behind.
package crash

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"

	elastichtap "elastichtap"
	"elastichtap/internal/ch"
	"elastichtap/internal/wal"
)

// KillPoint selects where the engine dies.
type KillPoint int

// Kill points. The byte-budget kills tear a durable write mid-frame; the
// probe kills panic inside the replica-data exchange.
const (
	// KillNone runs the schedule to completion and recovers from the
	// final image — the no-fault baseline.
	KillNone KillPoint = iota
	// KillMidCommit exhausts the write budget inside a transaction
	// batch, tearing a WAL frame.
	KillMidCommit
	// KillMidCheckpoint exhausts the write budget inside a checkpoint,
	// tearing a table file or the manifest.
	KillMidCheckpoint
	// KillMidSwitch panics at an instance switch.
	KillMidSwitch
	// KillMidETL panics between the delta-ETL's update and insert halves.
	KillMidETL
)

func (k KillPoint) String() string {
	switch k {
	case KillNone:
		return "none"
	case KillMidCommit:
		return "mid-commit"
	case KillMidCheckpoint:
		return "mid-checkpoint"
	case KillMidSwitch:
		return "mid-switch"
	case KillMidETL:
		return "mid-etl"
	}
	return fmt.Sprintf("KillPoint(%d)", int(k))
}

// killSentinel is the probe panic payload; anything else re-panics.
type killSentinel struct{}

type stepKind int

const (
	stepTxns stepKind = iota
	stepQuery
	stepCkpt
)

type step struct {
	kind  stepKind
	n     int               // stepTxns: batch size
	query int               // stepQuery: index into queryFns
	state elastichtap.State // stepQuery: forced execution state
}

// queryFns are the analytical queries a schedule draws from.
var queryFns = []func(*elastichtap.DB) elastichtap.Query{
	elastichtap.Q1, elastichtap.Q6, elastichtap.Q12, elastichtap.Q18,
}

// newSchedule derives a schedule from the seed: a fixed shape (so every
// kill point has somewhere to land — transaction batches for mid-commit,
// checkpoints for mid-checkpoint, S2 queries for mid-switch and mid-ETL)
// with randomized batch sizes and query choices.
func newSchedule(rng *rand.Rand) []step {
	txns := func() step { return step{kind: stepTxns, n: 20 + rng.Intn(40)} }
	query := func(st elastichtap.State) step {
		return step{kind: stepQuery, query: rng.Intn(len(queryFns)), state: st}
	}
	return []step{
		txns(),
		query(elastichtap.S2),
		txns(),
		{kind: stepCkpt},
		txns(),
		query(elastichtap.S2),
		txns(),
		{kind: stepCkpt},
		txns(),
		query(elastichtap.S3IS),
		txns(),
	}
}

const (
	dataDir  = "data"
	scale    = 0.005
	payPct   = 30
	loadSeed = 11
)

// runner is one system instance driving the schedule.
type runner struct {
	fs  *wal.MemFS
	sys *elastichtap.System
	db  *elastichtap.DB
	mix *ch.Mix

	// seqStep maps a completed checkpoint's sequence number to the
	// schedule step that took it; the bootstrap checkpoint maps to -1.
	seqStep map[uint64]int
}

// newRunner loads the database, attaches the WAL, and takes the
// bootstrap checkpoint — the durable floor every recovery can reach.
func newRunner(seed int64) (*runner, error) {
	r := &runner{fs: wal.NewMemFS(), seqStep: map[uint64]int{}}
	sys, err := elastichtap.New()
	if err != nil {
		return nil, err
	}
	r.sys = sys
	r.db = sys.LoadCH(scale, loadSeed)
	if err := sys.EnableWAL(r.fs, dataDir, elastichtap.SyncAlways, 0); err != nil {
		return nil, err
	}
	seq, err := sys.CheckpointDB(r.fs, dataDir)
	if err != nil {
		return nil, err
	}
	r.seqStep[seq] = -1
	r.mix = ch.NewMix(r.db, payPct, seed)
	return r, nil
}

func (r *runner) commits() uint64 { return r.sys.Core().OLTPE.Manager().Commits() }

func (r *runner) runTxn() error {
	_, err := r.sys.Core().OLTPE.Manager().RunWithRetry(3, r.mix.Next(0))
	return err
}

// runStep executes one schedule step. A returned error wrapping
// wal.ErrCrash means the write budget fired.
func (r *runner) runStep(ctx context.Context, i int, st step) error {
	switch st.kind {
	case stepTxns:
		for j := 0; j < st.n; j++ {
			if err := r.runTxn(); err != nil {
				return err
			}
		}
	case stepQuery:
		q := queryFns[st.query](r.db)
		if _, err := r.sys.QueryInStateContext(ctx, q, st.state); err != nil {
			return err
		}
	case stepCkpt:
		seq, err := r.sys.CheckpointDB(r.fs, dataDir)
		if err != nil {
			return err
		}
		r.seqStep[seq] = i
	}
	return nil
}

// runStepArmed runs a step with the kill armed: a probe panic or a
// budget-torn write reports crashed=true instead of an error.
func (r *runner) runStepArmed(ctx context.Context, i int, st step) (crashed bool, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(killSentinel); ok {
				crashed = true
				err = nil
				return
			}
			panic(rec)
		}
	}()
	err = r.runStep(ctx, i, st)
	if err != nil && errors.Is(err, wal.ErrCrash) {
		return true, nil
	}
	return false, err
}

// measure is the clean first pass: per-step filesystem write intervals
// and per-probe-point firing counts, both measured after the bootstrap
// checkpoint so budgets and countdowns target the schedule proper.
type measure struct {
	stepBytes  [][2]int64 // per step: [bytes before, bytes after]
	probeCount map[string]int
	totalTxns  int
}

func (h *Harness) measurePass(ctx context.Context, seed int64) (*measure, error) {
	r, err := newRunner(seed)
	if err != nil {
		return nil, err
	}
	defer r.sys.Close()
	m := &measure{probeCount: map[string]int{}}
	r.sys.Core().X.SetProbe(func(point, table string) { m.probeCount[point]++ })
	for i, st := range h.steps {
		m.stepBytes = append(m.stepBytes, [2]int64{r.fs.BytesWritten(), 0})
		if err := r.runStep(ctx, i, st); err != nil {
			return nil, fmt.Errorf("crash: clean pass step %d: %w", i, err)
		}
		m.stepBytes[i][1] = r.fs.BytesWritten()
		if st.kind == stepTxns {
			m.totalTxns += st.n
		}
	}
	return m, nil
}

// Harness is one seeded kill-and-recover scenario.
type Harness struct {
	Seed  int64
	Kill  KillPoint
	steps []step
	rng   *rand.Rand
}

// New builds the harness: the schedule and all later random choices
// derive from the seed.
func New(seed int64, kill KillPoint) *Harness {
	rng := rand.New(rand.NewSource(seed))
	return &Harness{Seed: seed, Kill: kill, steps: newSchedule(rng), rng: rng}
}

// Outcome is what one kill-and-recover run produced, for assertions.
type Outcome struct {
	// Crashed reports whether the kill fired (KillNone never crashes; a
	// byte budget landing on a frame boundary may fire a step later than
	// targeted, but always fires while writes remain).
	Crashed bool
	// CrashStep is the schedule step the kill fired in, -1 if none.
	CrashStep int
	// Info is the recovery's report.
	Info elastichtap.RecoveryInfo
	// RecoveredCommits and TwinCommits must agree.
	RecoveredCommits, TwinCommits uint64
}

// pickBudget chooses an absolute filesystem byte offset inside a step of
// the given kind — the kill pass crashes at the write covering it.
func (h *Harness) pickBudget(m *measure, kind stepKind) (int64, error) {
	var candidates []int
	for i, st := range h.steps {
		if st.kind == kind && m.stepBytes[i][1] > m.stepBytes[i][0] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return 0, fmt.Errorf("crash: no writing step of kind %d to kill", kind)
	}
	i := candidates[h.rng.Intn(len(candidates))]
	lo, hi := m.stepBytes[i][0], m.stepBytes[i][1]
	return lo + 1 + h.rng.Int63n(hi-lo), nil
}

// Run executes the full protocol: measure, kill, recover, verify against
// the twin. It returns the outcome; err is a harness failure, while
// verification failures come from the caller comparing the outcome.
func (h *Harness) Run(ctx context.Context) (*Outcome, error) {
	m, err := h.measurePass(ctx, h.Seed)
	if err != nil {
		return nil, err
	}

	// Kill pass: identical run with the fault armed.
	r, err := newRunner(h.Seed)
	if err != nil {
		return nil, err
	}
	switch h.Kill {
	case KillMidCommit:
		budget, err := h.pickBudget(m, stepTxns)
		if err != nil {
			return nil, err
		}
		r.fs.CrashAfterWrite(budget - r.fs.BytesWritten())
	case KillMidCheckpoint:
		budget, err := h.pickBudget(m, stepCkpt)
		if err != nil {
			return nil, err
		}
		r.fs.CrashAfterWrite(budget - r.fs.BytesWritten())
	case KillMidSwitch, KillMidETL:
		point := "switch"
		if h.Kill == KillMidETL {
			point = "etl"
		}
		n := m.probeCount[point]
		if n == 0 {
			return nil, fmt.Errorf("crash: probe %q never fired in clean pass", point)
		}
		countdown := 1 + h.rng.Intn(n)
		r.sys.Core().X.SetProbe(func(p, table string) {
			if p == point {
				countdown--
				if countdown == 0 {
					panic(killSentinel{})
				}
			}
		})
	}

	out := &Outcome{CrashStep: -1}
	for i, st := range h.steps {
		crashed, err := r.runStepArmed(ctx, i, st)
		if err != nil {
			return nil, fmt.Errorf("crash: kill pass step %d: %w", i, err)
		}
		if crashed {
			out.Crashed = true
			out.CrashStep = i
			break
		}
	}
	// The crashed system is abandoned as a real crash would: its locks
	// and pools are in whatever state the kill left them. Only its
	// filesystem survives — including any torn tail.
	img := r.fs.Crash(true)

	sysR, info, err := elastichtap.OpenFromDir(img, dataDir)
	if err != nil {
		return nil, fmt.Errorf("crash: recovery after %v at step %d: %w", h.Kill, out.CrashStep, err)
	}
	defer sysR.Close()
	out.Info = info
	out.RecoveredCommits = info.Commits

	ckptStep, ok := r.seqStep[info.Seq]
	if !ok {
		return nil, fmt.Errorf("crash: recovery restored seq %d, which the kill pass never completed (torn checkpoint used)", info.Seq)
	}

	twin, err := h.twin(ctx, ckptStep, info.Commits)
	if err != nil {
		return nil, err
	}
	defer twin.sys.Close()
	out.TwinCommits = twin.commits()

	if err := h.verify(ctx, sysR, twin); err != nil {
		return nil, fmt.Errorf("crash: %v at step %d (seq %d, %d replayed): %w",
			h.Kill, out.CrashStep, info.Seq, info.Replayed, err)
	}
	return out, nil
}

// twin builds the never-crashed reference: it replays the schedule
// through the checkpoint step recovery restored from — queries and
// checkpoints included, so ETL state and staleness bits evolve exactly
// as they did when that manifest was cut — then transactions only, one
// at a time, until the commit counts match. Post-checkpoint queries are
// skipped because their ETL effects were not durable: recovery
// reconstructs replica state as of the checkpoint plus replayed writes.
func (h *Harness) twin(ctx context.Context, ckptStep int, commits uint64) (*runner, error) {
	tw, err := newRunner(h.Seed)
	if err != nil {
		return nil, err
	}
	for i, st := range h.steps {
		if i <= ckptStep {
			if err := tw.runStep(ctx, i, st); err != nil {
				return nil, fmt.Errorf("crash: twin step %d: %w", i, err)
			}
			continue
		}
		if st.kind != stepTxns {
			continue
		}
		for j := 0; j < st.n && tw.commits() < commits; j++ {
			if err := tw.runTxn(); err != nil {
				return nil, fmt.Errorf("crash: twin txn in step %d: %w", i, err)
			}
		}
		if tw.commits() >= commits {
			break
		}
	}
	if got := tw.commits(); got != commits {
		return nil, fmt.Errorf("crash: twin ran out of schedule at %d commits, recovery has %d", got, commits)
	}
	return tw, nil
}

// verify compares the recovered system against the twin: transaction
// clock, per-table freshness (before any query disturbs it), then the
// full query set under a forced state.
func (h *Harness) verify(ctx context.Context, rec *elastichtap.System, twin *runner) error {
	mr := rec.Core().OLTPE.Manager()
	mt := twin.sys.Core().OLTPE.Manager()
	if mr.Commits() != mt.Commits() {
		return fmt.Errorf("commits: recovered %d, twin %d", mr.Commits(), mt.Commits())
	}
	if mr.Now() != mt.Now() {
		return fmt.Errorf("clock: recovered %d, twin %d", mr.Now(), mt.Now())
	}
	for _, ht := range twin.sys.Core().OLTPE.Tables() {
		name := ht.Table().Schema().Name
		hr := rec.Core().OLTPE.Table(name)
		if hr == nil {
			return fmt.Errorf("table %q missing after recovery", name)
		}
		fr := rec.Core().X.TableFreshness(hr)
		ft := twin.sys.Core().X.TableFreshness(ht)
		if !reflect.DeepEqual(fr, ft) {
			return fmt.Errorf("freshness of %q: recovered %+v, twin %+v", name, fr, ft)
		}
		if hr.Table().Rows() != ht.Table().Rows() {
			return fmt.Errorf("rows of %q: recovered %d, twin %d", name, hr.Table().Rows(), ht.Table().Rows())
		}
	}
	for qi, qf := range queryFns {
		qr, err := rec.QueryInStateContext(ctx, qf(rec.DB()), elastichtap.S2)
		if err != nil {
			return fmt.Errorf("query %d on recovered: %w", qi, err)
		}
		qt, err := twin.sys.QueryInStateContext(ctx, qf(twin.db), elastichtap.S2)
		if err != nil {
			return fmt.Errorf("query %d on twin: %w", qi, err)
		}
		if !reflect.DeepEqual(qr.Result.Rows, qt.Result.Rows) {
			return fmt.Errorf("query %d diverged:\nrecovered %v\ntwin      %v", qi, qr.Result.Rows, qt.Result.Rows)
		}
	}
	return nil
}
