package crash

import (
	"context"
	"flag"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	elastichtap "elastichtap"
)

// crashSeeds widens the kill matrix: CI's dedicated crash step passes a
// fixed list so failures reproduce, while the blanket `go test ./...`
// run stays fast on the single default seed.
var crashSeeds = flag.String("crashseeds", "1", "comma-separated harness seeds for the kill matrix")

func seedList(t *testing.T) []int64 {
	var seeds []int64
	for _, s := range strings.Split(*crashSeeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			t.Fatalf("bad -crashseeds entry %q: %v", s, err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// TestKillPointRecovery is the acceptance matrix: for every kill point
// and every seed, the engine dies at a randomized point and the
// recovered system must be indistinguishable — commits, clock, per-table
// freshness, query answers — from a twin that never crashed.
func TestKillPointRecovery(t *testing.T) {
	seeds := seedList(t)
	for _, kp := range []KillPoint{KillMidCommit, KillMidCheckpoint, KillMidSwitch, KillMidETL} {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%v/seed%d", kp, seed), func(t *testing.T) {
				out, err := New(seed, kp).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if !out.Crashed {
					// A budget can land exactly on the final write of the
					// run; the recovery still verified, so only log it.
					t.Logf("kill never fired (budget at end of stream); verified clean-image recovery")
				}
				if out.RecoveredCommits != out.TwinCommits {
					t.Fatalf("commits: recovered %d twin %d", out.RecoveredCommits, out.TwinCommits)
				}
				t.Logf("crashed at step %d, restored seq %d, replayed %d txns, %d commits",
					out.CrashStep, out.Info.Seq, out.Info.Replayed, out.Info.Commits)
			})
		}
	}
}

// TestNoKillBaseline pins the harness itself: with no fault armed the
// schedule completes and the final image recovers to the twin exactly.
func TestNoKillBaseline(t *testing.T) {
	out, err := New(4, KillNone).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed {
		t.Fatalf("baseline crashed at step %d", out.CrashStep)
	}
}

// TestRecoveryDeterminism opens the same crashed image repeatedly and
// demands identical state — the property that makes crash recovery
// debuggable. Run under -race in CI, it also shakes out unsynchronized
// recovery-path state.
func TestRecoveryDeterminism(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			h := New(seed, KillMidCommit)
			m, err := h.measurePass(context.Background(), h.Seed)
			if err != nil {
				t.Fatal(err)
			}
			r, err := newRunner(h.Seed)
			if err != nil {
				t.Fatal(err)
			}
			budget, err := h.pickBudget(m, stepTxns)
			if err != nil {
				t.Fatal(err)
			}
			r.fs.CrashAfterWrite(budget - r.fs.BytesWritten())
			for i, st := range h.steps {
				crashed, err := r.runStepArmed(context.Background(), i, st)
				if err != nil {
					t.Fatal(err)
				}
				if crashed {
					break
				}
			}
			img := r.fs.Crash(true)

			var commits []uint64
			var rows [][][]float64
			for i := 0; i < 2; i++ {
				sys, info, err := elastichtap.OpenFromDir(img, dataDir)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := sys.Query(elastichtap.Q6(sys.DB()))
				if err != nil {
					t.Fatal(err)
				}
				commits = append(commits, info.Commits)
				rows = append(rows, rep.Result.Rows)
				sys.Close()
			}
			if commits[0] != commits[1] || !reflect.DeepEqual(rows[0], rows[1]) {
				t.Fatalf("recovery not deterministic: commits %v", commits)
			}
		})
	}
}
