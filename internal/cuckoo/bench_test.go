package cuckoo

import (
	"math/rand"
	"sync"
	"testing"
)

// The cuckoo table is the OLTP primary index (§3.2); these benchmarks
// compare it against the obvious stdlib-map baseline (DESIGN.md §6).

const benchKeys = 1 << 18

func benchTable(b *testing.B) (*Table, []uint64) {
	b.Helper()
	t := New(benchKeys)
	keys := make([]uint64, benchKeys)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = rng.Uint64()
		t.Put(keys[i], uint64(i))
	}
	return t, keys
}

func BenchmarkCuckooGet(b *testing.B) {
	t, keys := benchTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Get(keys[i&(benchKeys-1)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkMapGetBaseline(b *testing.B) {
	m := make(map[uint64]uint64, benchKeys)
	keys := make([]uint64, benchKeys)
	rng := rand.New(rand.NewSource(1))
	var mu sync.RWMutex
	for i := range keys {
		keys[i] = rng.Uint64()
		m[keys[i]] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.RLock()
		_, ok := m[keys[i&(benchKeys-1)]]
		mu.RUnlock()
		if !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCuckooPut(b *testing.B) {
	t := New(b.N)
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, b.N)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Put(keys[i], uint64(i))
	}
}

func BenchmarkMapPutBaseline(b *testing.B) {
	m := make(map[uint64]uint64, b.N)
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, b.N)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		m[keys[i]] = uint64(i)
		mu.Unlock()
	}
}

func BenchmarkCuckooParallelGet(b *testing.B) {
	t, keys := benchTable(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			t.Get(keys[i&(benchKeys-1)])
			i++
		}
	})
}
