// Package cuckoo implements a bucketized cuckoo hash table (Pagh & Rodler)
// mapping uint64 keys to uint64 values. The OLTP engine uses it as the
// primary index: "the index always points to the last updated record in
// either of the two instances" (§3.2). Lookups probe at most two buckets;
// inserts displace entries along a bounded random walk and resize on
// failure.
package cuckoo

import (
	"errors"
	"sync"
)

const (
	bucketSlots  = 4
	maxKicks     = 500
	minBuckets   = 8
	maxLoadGrow  = 0.94 // resize eagerly past this load factor
	growthFactor = 2
)

// ErrNotFound is returned by Delete when the key is absent.
var ErrNotFound = errors.New("cuckoo: key not found")

type bucket struct {
	occupied [bucketSlots]bool
	keys     [bucketSlots]uint64
	vals     [bucketSlots]uint64
}

// Table is a cuckoo hash table. It is safe for concurrent use; a single
// RWMutex guards the structure, which matches the paper's engine where the
// index is read-mostly from transaction workers.
type Table struct {
	mu      sync.RWMutex
	buckets []bucket
	mask    uint64
	size    int
	seed1   uint64
	seed2   uint64
	kickSt  uint64 // deterministic displacement "random" walk state
}

// New returns an empty table with capacity for at least hint entries.
func New(hint int) *Table {
	n := minBuckets
	for n*bucketSlots < hint {
		n *= growthFactor
	}
	t := &Table{
		buckets: make([]bucket, n),
		mask:    uint64(n - 1),
		seed1:   0x9e3779b97f4a7c15,
		seed2:   0xc2b2ae3d27d4eb4f,
		kickSt:  0x853c49e6748fea9b,
	}
	return t
}

func mix(x, seed uint64) uint64 {
	x ^= seed
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (t *Table) h1(key uint64) uint64 { return mix(key, t.seed1) & t.mask }
func (t *Table) h2(key uint64) uint64 { return mix(key, t.seed2) & t.mask }

// Len returns the number of stored entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// LoadFactor returns size / capacity.
func (t *Table) LoadFactor() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return float64(t.size) / float64(len(t.buckets)*bucketSlots)
}

// Get returns the value stored for key.
func (t *Table) Get(key uint64) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.get(key)
}

func (t *Table) get(key uint64) (uint64, bool) {
	for _, h := range [2]uint64{t.h1(key), t.h2(key)} {
		b := &t.buckets[h]
		for i := 0; i < bucketSlots; i++ {
			if b.occupied[i] && b.keys[i] == key {
				return b.vals[i], true
			}
		}
	}
	return 0, false
}

// Put inserts or updates the value for key.
func (t *Table) Put(key, val uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.put(key, val)
}

func (t *Table) put(key, val uint64) {
	// Update in place if present.
	for _, h := range [2]uint64{t.h1(key), t.h2(key)} {
		b := &t.buckets[h]
		for i := 0; i < bucketSlots; i++ {
			if b.occupied[i] && b.keys[i] == key {
				b.vals[i] = val
				return
			}
		}
	}
	if float64(t.size+1) > maxLoadGrow*float64(len(t.buckets)*bucketSlots) {
		t.grow()
	}
	k, v := key, val
	for {
		ok, hk, hv := t.insertFresh(k, v)
		if ok {
			break
		}
		// The walk failed: the table holds every prior entry except the
		// final homeless victim (hk, hv). Grow, then place the victim.
		t.grow()
		k, v = hk, hv
	}
	t.size++
}

// insertFresh places a key known to be absent, displacing entries along a
// bounded walk. On failure (maxKicks displacements without finding a free
// slot) it returns the final homeless entry, which the caller must place
// after resizing — dropping it would lose a previously stored key.
func (t *Table) insertFresh(key, val uint64) (ok bool, homelessKey, homelessVal uint64) {
	h := t.h1(key)
	for kick := 0; kick < maxKicks; kick++ {
		b := &t.buckets[h]
		for i := 0; i < bucketSlots; i++ {
			if !b.occupied[i] {
				b.occupied[i] = true
				b.keys[i] = key
				b.vals[i] = val
				return true, 0, 0
			}
		}
		alt := t.h1(key)
		if alt == h {
			alt = t.h2(key)
		}
		b2 := &t.buckets[alt]
		for i := 0; i < bucketSlots; i++ {
			if !b2.occupied[i] {
				b2.occupied[i] = true
				b2.keys[i] = key
				b2.vals[i] = val
				return true, 0, 0
			}
		}
		// Both buckets full: evict a pseudo-random victim from h.
		t.kickSt = t.kickSt*6364136223846793005 + 1442695040888963407
		slot := int(t.kickSt>>59) % bucketSlots
		key, b.keys[slot] = b.keys[slot], key
		val, b.vals[slot] = b.vals[slot], val
		// Move the evicted key toward its other bucket.
		if t.h1(key) == h {
			h = t.h2(key)
		} else {
			h = t.h1(key)
		}
	}
	return false, key, val
}

func (t *Table) grow() {
	old := t.buckets
	n := len(old) * growthFactor
	for {
		t.buckets = make([]bucket, n)
		t.mask = uint64(n - 1)
		ok := true
	rehash:
		for bi := range old {
			b := &old[bi]
			for i := 0; i < bucketSlots; i++ {
				if !b.occupied[i] {
					continue
				}
				// A failed walk during rehash is harmless: the partially
				// filled new table is discarded and rebuilt bigger from the
				// untouched old buckets.
				if placed, _, _ := t.insertFresh(b.keys[i], b.vals[i]); !placed {
					ok = false
					break rehash
				}
			}
		}
		if ok {
			return
		}
		n *= growthFactor
	}
}

// Delete removes the key, returning ErrNotFound if absent.
func (t *Table) Delete(key uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range [2]uint64{t.h1(key), t.h2(key)} {
		b := &t.buckets[h]
		for i := 0; i < bucketSlots; i++ {
			if b.occupied[i] && b.keys[i] == key {
				b.occupied[i] = false
				t.size--
				return nil
			}
		}
	}
	return ErrNotFound
}

// Range calls fn for every entry until fn returns false. Iteration order is
// unspecified. The table lock is held for the duration.
func (t *Table) Range(fn func(key, val uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for bi := range t.buckets {
		b := &t.buckets[bi]
		for i := 0; i < bucketSlots; i++ {
			if b.occupied[i] && !fn(b.keys[i], b.vals[i]) {
				return
			}
		}
	}
}

// Capacity returns the number of slots currently allocated.
func (t *Table) Capacity() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.buckets) * bucketSlots
}

// Buckets returns the number of buckets (always a power of two).
func (t *Table) Buckets() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.buckets)
}
