package cuckoo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	tab := New(0)
	tab.Put(1, 100)
	tab.Put(2, 200)
	if v, ok := tab.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	if v, ok := tab.Get(2); !ok || v != 200 {
		t.Fatalf("Get(2) = %d,%v", v, ok)
	}
	if _, ok := tab.Get(3); ok {
		t.Fatal("Get(3) should miss")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestUpdateInPlace(t *testing.T) {
	tab := New(0)
	tab.Put(7, 1)
	tab.Put(7, 2)
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	if v, _ := tab.Get(7); v != 2 {
		t.Fatalf("Get(7) = %d, want 2", v)
	}
}

func TestDelete(t *testing.T) {
	tab := New(0)
	tab.Put(9, 90)
	if err := tab.Delete(9); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Get(9); ok {
		t.Fatal("deleted key still present")
	}
	if err := tab.Delete(9); err != ErrNotFound {
		t.Fatalf("second delete err = %v, want ErrNotFound", err)
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tab.Len())
	}
}

func TestGrowthManyKeys(t *testing.T) {
	const n = 200_000
	tab := New(16)
	for i := uint64(0); i < n; i++ {
		tab.Put(i, i*3)
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tab.Get(i); !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if lf := tab.LoadFactor(); lf > 0.95 || lf <= 0 {
		t.Fatalf("load factor %v out of bounds", lf)
	}
}

func TestAdversarialKeys(t *testing.T) {
	// Keys with identical low bits stress bucket collisions.
	tab := New(8)
	for i := uint64(0); i < 5000; i++ {
		tab.Put(i<<32, i)
	}
	for i := uint64(0); i < 5000; i++ {
		if v, ok := tab.Get(i << 32); !ok || v != i {
			t.Fatalf("Get(%d<<32) = %d,%v", i, v, ok)
		}
	}
}

func TestRange(t *testing.T) {
	tab := New(0)
	want := map[uint64]uint64{}
	for i := uint64(0); i < 1000; i++ {
		tab.Put(i, i+1)
		want[i] = i + 1
	}
	got := map[uint64]uint64{}
	tab.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early termination.
	count := 0
	tab.Range(func(k, v uint64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early-terminated Range visited %d, want 10", count)
	}
}

func TestConcurrentReaders(t *testing.T) {
	tab := New(0)
	for i := uint64(0); i < 10000; i++ {
		tab.Put(i, i)
	}
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func() {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 10000; i++ {
				k := uint64(rng.Intn(10000))
				if v, ok := tab.Get(k); !ok || v != k {
					t.Errorf("Get(%d) = %d,%v", k, v, ok)
					break
				}
			}
			done <- true
		}()
	}
	go func() {
		for i := uint64(10000); i < 12000; i++ {
			tab.Put(i, i)
		}
		done <- true
	}()
	for i := 0; i < 5; i++ {
		<-done
	}
}

func TestQuickMapEquivalence(t *testing.T) {
	f := func(keys []uint64, vals []uint64) bool {
		tab := New(0)
		ref := map[uint64]uint64{}
		for i, k := range keys {
			v := uint64(i)
			if i < len(vals) {
				v = vals[i]
			}
			tab.Put(k, v)
			ref[k] = v
		}
		if tab.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tab.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeleteEquivalence(t *testing.T) {
	f := func(keys []uint8) bool {
		tab := New(0)
		ref := map[uint64]uint64{}
		for i, k8 := range keys {
			k := uint64(k8)
			if i%3 == 2 {
				err := tab.Delete(k)
				_, had := ref[k]
				if had != (err == nil) {
					return false
				}
				delete(ref, k)
			} else {
				tab.Put(k, uint64(i))
				ref[k] = uint64(i)
			}
		}
		return tab.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
