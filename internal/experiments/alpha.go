package experiments

// AlphaRow is one point of the α-sensitivity ablation (DESIGN.md §6): how
// the ETL-sensitivity knob trades per-query latency against ETL frequency
// in the adaptive schedule.
type AlphaRow struct {
	Alpha float64
	// ETLs is the number of delta-ETL operations across the run.
	ETLs int
	// TotalSeconds is the cumulative sequence time.
	TotalSeconds float64
	// MaxSeqSeconds is the worst sequence (the tail a too-small α causes).
	MaxSeqSeconds float64
	// FinalOLTPMTPS is the transactional throughput at the end of the run.
	FinalOLTPMTPS float64
}

// AlphaSweep runs the adaptive S3-NI schedule over a range of α values:
// "Small values of α increase the sensitivity of the scheduler into
// performing an ETL ... Instead, big values of α are beneficial for
// workloads where every query is expected to access a small subset of the
// updated data" (§4.2); "Smaller values of α cause smaller tail latency,
// but at the cost of smaller benefit for the rest of the queries" (§5.3).
func AlphaSweep(opt Options, sequences int, alphas []float64) ([]AlphaRow, error) {
	if len(alphas) == 0 {
		alphas = []float64{0.1, 0.3, 0.5, 0.6, 0.7, 0.9}
	}
	if sequences <= 0 {
		sequences = 40
	}
	var rows []AlphaRow
	for _, a := range alphas {
		o := opt
		o.Alpha = a
		series, err := Figure5(o, sequences, []Schedule{SchedAdaptiveNI})
		if err != nil {
			return nil, err
		}
		row := AlphaRow{Alpha: a}
		for _, p := range series[0].Points {
			row.ETLs += p.ETLs
			row.TotalSeconds += p.Seconds
			if p.Seconds > row.MaxSeqSeconds {
				row.MaxSeqSeconds = p.Seconds
			}
		}
		row.FinalOLTPMTPS = series[0].Points[len(series[0].Points)-1].OLTPMTPS
		rows = append(rows, row)
	}
	return rows, nil
}
