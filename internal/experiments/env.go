// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each Figure* function returns structured rows; the
// chbench command renders them as text and bench_test.go wraps them in
// testing.B benchmarks. DESIGN.md §5 is the experiment index.
//
// Scale emulation: experiments load a laptop-sized database (Options.SF)
// and scale measured byte counts by EmulateSF/SF before they reach the
// cost model, so reported simulated times correspond to the paper's scale
// factors (300 for the sensitivity analysis, 30 for Figure 5). Injected
// transaction counts are scaled by SF/EmulateSF, which keeps the fresh
// fraction trajectory — the scheduler's input — aligned with the paper's
// 2-MTPS regime (see DESIGN.md §2).
package experiments

import (
	"fmt"

	"elastichtap/internal/ch"
	"elastichtap/internal/core"
	"elastichtap/internal/olap"
)

// Options configure an experiment environment.
type Options struct {
	// SF is the actual loaded scale factor (keep small: 0.01-0.1).
	SF float64
	// EmulateSF is the scale factor whose timings the cost model reports.
	EmulateSF float64
	// Seed drives the deterministic generator and workloads.
	Seed int64
	// Sockets overrides the machine's socket count (Figure 1 uses 4).
	Sockets int
	// PaymentPct adds update-heavy Payment transactions to the mix.
	PaymentPct int
	// Alpha overrides the scheduler's ETL sensitivity (0 keeps default).
	Alpha float64
	// ElasticCores overrides the elastic core budget (0 keeps default).
	ElasticCores int
	// Items overrides the item-table cardinality. TPC-C fixes items at
	// 100k regardless of warehouses; tests shrink it for speed, but
	// experiments that depend on the update working-set saturating slowly
	// (Figure 5's adaptive trigger) need it large enough.
	Items int
}

func (o Options) withDefaults() Options {
	if o.SF == 0 {
		o.SF = 0.01
	}
	if o.EmulateSF == 0 {
		o.EmulateSF = 300
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Env is a loaded, primed HTAP system ready to run an experiment.
type Env struct {
	Opt Options
	Sys *core.System
	DB  *ch.DB
}

// NewEnv builds the system, loads CH at the requested scale, installs the
// transaction mix, and primes the OLAP replicas (freshness-rate 1).
func NewEnv(opt Options) (*Env, error) {
	opt = opt.withDefaults()
	cfg := core.DefaultSystemConfig()
	if opt.Sockets > 0 {
		cfg.Topology.Sockets = opt.Sockets
		cfg.Scheduler = core.DefaultConfig(cfg.Topology.Sockets, cfg.Topology.CoresPerSocket)
	}
	cfg.ByteScale = opt.EmulateSF / opt.SF
	if opt.Alpha > 0 {
		cfg.Scheduler.Alpha = opt.Alpha
	}
	if opt.ElasticCores > 0 {
		cfg.Scheduler.ElasticCores = opt.ElasticCores
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sizing := ch.SizingForScale(opt.SF)
	if opt.Items > 0 {
		sizing.Items = opt.Items
	}
	db := ch.Load(sys.OLTPE, sizing, opt.Seed)
	sys.OLTPE.Workers().SetWorkload(ch.NewMix(db, opt.PaymentPct, opt.Seed))
	sys.PrimeReplicas()
	return &Env{Opt: opt, Sys: sys, DB: db}, nil
}

// Close releases the system's worker pools. Sweep drivers that build one
// Env per data point must call it, or each point leaks its parked OLAP
// pool goroutines for the life of the process.
func (e *Env) Close() { e.Sys.Close() }

// TxnScale converts emulated transaction counts into actually executed
// ones, preserving the fresh-fraction trajectory.
func (e *Env) TxnScale() float64 { return e.Opt.SF / e.Opt.EmulateSF }

// InjectFor executes the transactions that the modeled OLTP engine would
// commit during simSeconds at the given throughput, scaled to the loaded
// database size. It returns the number actually executed.
func (e *Env) InjectFor(simSeconds, tps float64) int {
	n := int(tps * simSeconds * e.TxnScale())
	if n > 0 {
		e.Sys.InjectTransactions(n)
	}
	return n
}

// Queries returns fresh instances of the analytical mix each sequence
// sweeps: the paper's Q1/Q6/Q19 trio plus the builder-compiled Q3, Q12
// and Q18 — payload joins, conditional aggregation and ordered top-k —
// so figures exercise every work class the cost model distinguishes.
func (e *Env) Queries() []olap.Query { return e.DB.QuerySet() }

// Q1, Q6, Q19 return single queries bound to this environment — the
// builder-compiled prepared statements stamped with default arguments,
// the same form QuerySet serves.
func (e *Env) Q1() olap.Query  { return e.DB.Stamped("Q1", ch.Q1Args(0)) }
func (e *Env) Q6() olap.Query  { return e.DB.Stamped("Q6", ch.Q6Args(0, 0, 0, 0)) }
func (e *Env) Q19() olap.Query { return e.DB.Stamped("Q19", ch.Q19Args(0, 0, 0, 0)) }

// setElasticCores rewrites the scheduler's elastic budget mid-experiment.
func (e *Env) setElasticCores(k int) error {
	cfg := e.Sys.Sched.Config()
	cfg.ElasticCores = k
	return e.Sys.Sched.SetConfig(cfg)
}

// cpuFloorForTrade lowers the OLTP per-socket floor so sensitivity sweeps
// can trade up to `max` cores.
func (e *Env) allowTrading(maxCores int) error {
	cfg := e.Sys.Sched.Config()
	for i := range cfg.OLTPCpuThres {
		cfg.OLTPCpuThres[i] = e.Sys.Cfg.Topology.CoresPerSocket - maxCores
	}
	return e.Sys.Sched.SetConfig(cfg)
}
