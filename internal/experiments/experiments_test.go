package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"elastichtap/internal/core"
)

// Experiments run at tiny scale here; the benches and chbench exercise the
// full parameterizations. These tests pin the figure SHAPES the paper
// reports — the claims DESIGN.md §5 enumerates.

func tinyOpt() Options {
	return Options{SF: 0.005, EmulateSF: 300, Seed: 1}
}

func TestNewEnvPrimesReplicas(t *testing.T) {
	env, err := NewEnv(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	f := env.Sys.X.MeasureFreshness(env.Sys.OLTPE.Tables(), "orderline", 3)
	if f.Rate < 0.999 {
		t.Fatalf("fresh rate after prime = %v", f.Rate)
	}
	if env.TxnScale() <= 0 || env.TxnScale() >= 1 {
		t.Fatalf("txn scale = %v", env.TxnScale())
	}
}

func TestFigure3bAmortization(t *testing.T) {
	rows, err := Figure3b(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Shape: total transfer time shrinks as the batch grows; OLTP is flat
	// (isolated at the socket boundary).
	first, last := rows[0], rows[len(rows)-1]
	if last.DataTransferSecs >= first.DataTransferSecs {
		t.Fatalf("no amortization: batch1=%v batch16=%v",
			first.DataTransferSecs, last.DataTransferSecs)
	}
	for _, r := range rows {
		if r.OLTPTputMTPS < first.OLTPTputMTPS*0.99 {
			t.Fatalf("OLTP throughput not flat in S2: %+v", r)
		}
	}
}

func TestFigure4Shapes(t *testing.T) {
	rows, err := Figure4(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Full remote is the worst strategy throughout.
		if r.FullRemoteSeconds < r.SplitSeconds || r.FullRemoteSeconds < r.S2Seconds {
			t.Fatalf("point %d: full remote not worst: %+v", i, r)
		}
		if i > 0 && r.FreshPct+1e-9 < rows[i-1].FreshPct {
			t.Fatalf("fresh %% not monotone at %d", i)
		}
	}
	// Split starts at or below S2 and crosses it as fresh data grows.
	if rows[0].SplitSeconds > rows[0].S2Seconds {
		t.Fatalf("split should start below S2: %+v", rows[0])
	}
	crossed := false
	for _, r := range rows {
		if r.SplitSeconds > r.S2Seconds {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("split never crossed S2 within the sweep")
	}
}

func TestFigure5AdaptiveBeatsStatic(t *testing.T) {
	opt := tinyOpt()
	opt.EmulateSF = 30
	series, err := Figure5(opt, 30, []Schedule{SchedS3IS, SchedAdaptiveIS})
	if err != nil {
		t.Fatal(err)
	}
	gap := Fig5Gap(series, SchedS3IS, SchedAdaptiveIS)
	if gap < -5 {
		t.Fatalf("adaptive much worse than static: gap %.1f%%", gap)
	}
	// Sequence times grow as data accumulates.
	pts := series[0].Points
	if pts[len(pts)-1].Seconds <= pts[0].Seconds {
		t.Fatal("static sequence time did not grow with inserts")
	}
}

func TestFigure5UnknownSchedule(t *testing.T) {
	if _, err := Figure5(tinyOpt(), 1, []Schedule{"bogus"}); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

func TestFigure1Shapes(t *testing.T) {
	rows, err := Figure1(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		etl, cow := rows[i], rows[i+1]
		if etl.Mode != "ETL" || cow.Mode != "CoW" {
			t.Fatalf("row order wrong at %d", i)
		}
		// CoW never transfers; ETL always does.
		if cow.DataTransferSeconds != 0 {
			t.Fatal("CoW charged a transfer")
		}
		if etl.DataTransferSeconds <= 0 {
			t.Fatal("ETL did not pay a transfer")
		}
		// CoW hurts the OLTP engine; ETL leaves it at full isolation.
		if cow.OLTPTputMTPS >= etl.OLTPTputMTPS {
			t.Fatalf("CoW OLTP should be below ETL OLTP: %+v vs %+v", cow, etl)
		}
	}
	// ETL's transfer amortizes with snapshot frequency.
	if rows[8].DataTransferSeconds >= rows[0].DataTransferSeconds {
		t.Fatalf("ETL transfer did not amortize: %v -> %v",
			rows[0].DataTransferSeconds, rows[8].DataTransferSeconds)
	}
}

func TestTailLatencyOrdering(t *testing.T) {
	rows, err := TailLatency(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	byState := map[string]TailRow{}
	for _, r := range rows {
		byState[r.State] = r
	}
	// §5.2: S2/S3-IS smallest, S1 the worst case.
	if byState["S1"].P99Micros <= byState["S2"].P99Micros {
		t.Fatalf("S1 tail (%v) not above S2 (%v)",
			byState["S1"].P99Micros, byState["S2"].P99Micros)
	}
	if byState["S1"].P99Micros <= byState["S3-IS"].P99Micros {
		t.Fatal("S1 tail not the worst")
	}
}

func TestSyncClaim(t *testing.T) {
	row := SyncClaim(100_000, 1_800_000_000)
	if row.CopiedRows != 100_000 {
		t.Fatalf("copied = %d", row.CopiedRows)
	}
	if row.ModelSeconds <= 0 || row.MeasuredSeconds <= 0 {
		t.Fatalf("non-positive timings: %+v", row)
	}
	// The paper-scale model claim: ~10ms per million modified tuples.
	full := SyncClaim(1_000_000, 1_800_000_000)
	if full.ModelSeconds < 0.005 || full.ModelSeconds > 0.05 {
		t.Fatalf("model sync = %v, want ~0.01", full.ModelSeconds)
	}
}

func TestTable1Rendering(t *testing.T) {
	if len(Table1()) != 6 {
		t.Fatalf("Table1 rows = %d", len(Table1()))
	}
	var buf bytes.Buffer
	RenderTable1(&buf)
	out := buf.String()
	for _, want := range []string{"HyPer", "BatchDB", "SAP HANA", "S2", "S3-IS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	RenderFig1(&buf, []Fig1Row{{Mode: "ETL", QueriesPerSeq: 1}})
	RenderFig3a(&buf, []Fig3aRow{{CPUsInterchanged: 2}}, "x")
	RenderFig3b(&buf, []Fig3bRow{{BatchSize: 4}})
	RenderFig4(&buf, []Fig4Row{{FreshPct: 1}})
	RenderFig5(&buf, []Fig5Series{{Schedule: SchedS1, Points: []Fig5Point{{Sequence: 1}}}}, 1)
	RenderSyncClaim(&buf, SyncClaimRow{ModifiedRows: 1, TotalRows: 2})
	RenderConvergence(&buf, []ConvergenceRow{{Sequence: 1}})
	RenderTail(&buf, []TailRow{{State: "S1"}})
	Banner(&buf, "x")
	if buf.Len() == 0 {
		t.Fatal("renderers produced nothing")
	}
}

// TestMultiTenantScenario checks the serving scenario's invariants at a
// smoke scale: the zero-quota tenant completes nothing and rejects
// everything it submitted, the weighted tenants complete everything they
// submitted, and the morsel shares sum to 1.
func TestMultiTenantScenario(t *testing.T) {
	rows, err := MultiTenant(tinyOpt(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("tenant rows = %d, want 4", len(rows))
	}
	var share float64
	var completed int
	for _, r := range rows {
		share += r.MorselShare
		completed += r.Completed
		if r.Tenant == "throttled" {
			if r.Completed != 0 || r.Rejected != r.Submitted {
				t.Fatalf("throttled tenant ran: %+v", r)
			}
			continue
		}
		if r.Completed != r.Submitted || r.Rejected != 0 {
			t.Fatalf("weighted tenant %s lost queries: %+v", r.Tenant, r)
		}
		if r.Completed > 0 && (r.P50Ms <= 0 || r.P99Ms < r.P50Ms) {
			t.Fatalf("tenant %s percentiles inconsistent: %+v", r.Tenant, r)
		}
	}
	if completed == 0 {
		t.Fatal("no queries completed")
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("morsel shares sum to %v, want 1", share)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	env, err := NewEnv(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	env.Sys.InjectTransactions(20)
	if _, _, err := env.Sys.RunQueryContext(context.Background(), env.Q6(), core.QueryOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	m := env.Sys.Metrics()
	if m.Commits < 20 {
		t.Fatalf("commits = %d", m.Commits)
	}
	if m.Tables != 12 {
		t.Fatalf("tables = %d", m.Tables)
	}
	if m.TotalRows == 0 || m.Switches == 0 {
		t.Fatalf("metrics empty: %+v", m)
	}
	if m.OLTPCores+m.OLAPCores != env.Sys.Cfg.Topology.TotalCores() {
		t.Fatalf("core accounting off: %d+%d", m.OLTPCores, m.OLAPCores)
	}
	if !strings.Contains(m.String(), "freshness rate") {
		t.Fatal("snapshot rendering incomplete")
	}
}
