package experiments

import (
	"time"

	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/topology"
)

// Table1Row is one line of Table 1: the HTAP design-space classification
// mapped to the system state that represents it.
type Table1Row struct {
	Storage   string
	System    string
	Mechanism string
	Tradeoff  string
	OurState  string
}

// Table1 returns the paper's design classification (Table 1) with the
// state of this system that represents each class (§3.4 "Related systems").
func Table1() []Table1Row {
	return []Table1Row{
		{"Unified", "HyPer-Fork, Caldera", "CoW", "OLTP (CoW page copies)", "S1 (CoW baseline in Fig. 1)"},
		{"Unified", "HyPer-MVOCC, MemSQL, IBM BLU", "MVCC", "OLAP (version traversal)", "S1"},
		{"Unified", "SAP HANA", "Delta-versioning", "OLAP (version traversal), OLTP (record chains)", "S1"},
		{"Decoupled", "BatchDB", "Batch-ETL", "OLAP (ETL latency)", "S2"},
		{"Decoupled", "Microsoft SQL Server", "MVCC-Delta", "OLAP (tail-records scan)", "S3-IS / S3-NI"},
		{"Decoupled", "Oracle Dual-format", "Txn Journal & ETL", "OLAP (tail-records scan)", "S3-IS / S3-NI"},
	}
}

// SyncClaimRow reports the §3.4 instance-synchronization claim.
type SyncClaimRow struct {
	ModifiedRows int64
	TotalRows    int64
	// ModelSeconds is the cost model's simulated sync duration at paper
	// scale ("around 10ms to sync around 1 million modified tuples in a
	// database of over 1.8 billion records").
	ModelSeconds float64
	// MeasuredSeconds is the wall-clock duration of actually draining the
	// update-indication bits and copying the rows on this machine.
	MeasuredSeconds float64
	// CopiedRows is the number of records the real sync propagated.
	CopiedRows int
}

// SyncClaim exercises the twin-instance synchronization path with a
// million modified tuples: the model reproduces the paper's ~10ms figure
// and the real copy is measured for reference.
func SyncClaim(modified, total int64) SyncClaimRow {
	if modified <= 0 {
		modified = 1_000_000
	}
	if total <= 0 {
		total = 1_800_000_000
	}
	model := costmodel.New(topology.DefaultConfig(), costmodel.DefaultParams())
	row := SyncClaimRow{
		ModifiedRows: modified,
		TotalRows:    total,
		ModelSeconds: model.SyncTime(modified, total),
	}

	// Real sync over an actually allocated table: size it to the modified
	// count (the bitmap scan over `total` rows is charged by the model).
	realRows := modified
	tab := columnar.NewTable(columnar.Schema{
		Name: "sync",
		Columns: []columnar.ColumnDef{
			{Name: "a", Type: columnar.Int64},
			{Name: "b", Type: columnar.Int64},
			{Name: "c", Type: columnar.Int64},
			{Name: "d", Type: columnar.Int64},
		},
	}, realRows)
	batch := make([][]int64, 0, 1<<14)
	for i := int64(0); i < realRows; i++ {
		batch = append(batch, []int64{i, i, i, i})
		if len(batch) == 1<<14 {
			tab.AppendRows(batch, 0)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		tab.AppendRows(batch, 0)
	}
	tab.Switch()
	tab.SyncTo(1-tab.ActiveIndex(), func(int64) func() { return func() {} })
	for r := int64(0); r < realRows; r++ {
		tab.UpdateCell(r, 1, r*2, 2)
	}
	sw := tab.Switch()
	start := time.Now()
	row.CopiedRows = tab.SyncTo(sw.SnapshotIndex, func(int64) func() { return func() {} })
	row.MeasuredSeconds = time.Since(start).Seconds()
	return row
}
