package experiments

import (
	"context"
	"math"

	"elastichtap/internal/ch"
	"elastichtap/internal/core"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/rde"
)

// Fig1Row is one bar group of Figure 1: the ETL-versus-CoW motivation
// experiment on a 4-socket server with the engines on two sockets.
type Fig1Row struct {
	Mode          string // "ETL" or "CoW"
	QueriesPerSeq int    // snapshot frequency: a new snapshot every N queries
	// Per-query averages over 16 aggregate query executions.
	QueryExecSeconds    float64
	DataTransferSeconds float64
	OLTPTputMTPS        float64
}

// Figure1 reproduces the motivation experiment (§1): the same aggregate
// query (Q6) runs 16 times; a fresh snapshot is taken every {1,2,4,8,16}
// queries. "ETL" transfers the fresh delta before executing; "CoW" lets
// queries run on a shared hardware-supported copy-on-write snapshot while
// the OLTP engine pays page-copy costs for every write to a not-yet-copied
// page. TPC-C NewOrder runs concurrently with one warehouse per worker.
func Figure1(opt Options) ([]Fig1Row, error) {
	if opt.Sockets == 0 {
		opt.Sockets = 4
	}
	var rows []Fig1Row
	for _, freq := range []int{1, 2, 4, 8, 16} {
		etl, err := figure1ETL(opt, freq)
		if err != nil {
			return nil, err
		}
		rows = append(rows, etl)
		cow, err := figure1CoW(opt, freq)
		if err != nil {
			return nil, err
		}
		rows = append(rows, cow)
	}
	return rows, nil
}

func figure1ETL(opt Options, freq int) (Fig1Row, error) {
	const totalQueries = 16
	env, err := NewEnv(opt)
	if err != nil {
		return Fig1Row{}, err
	}
	defer env.Close()
	env.InjectFor(1.0, env.Sys.OLTPThroughputNow())

	row := Fig1Row{Mode: "ETL", QueriesPerSeq: freq}
	var tputSum float64
	executed := 0
	for executed < totalQueries {
		var set *rde.SnapshotSet
		for i := 0; i < freq && executed < totalQueries; i++ {
			o := core.QueryOptions{ForceState: core.ForcedState(core.S2), Batch: true}
			if set != nil {
				o.SkipSwitch = true
			}
			rep, out, err := env.Sys.RunQueryContext(context.Background(), env.Q6(), o, set)
			if err != nil {
				return row, err
			}
			set = out
			row.QueryExecSeconds += rep.ExecSeconds
			row.DataTransferSeconds += rep.ETLSeconds
			tputSum += rep.OLTPDuringTPS
			executed++
			env.InjectFor(rep.ResponseSeconds, rep.OLTPDuringTPS)
		}
	}
	row.QueryExecSeconds /= totalQueries
	row.DataTransferSeconds /= totalQueries
	row.OLTPTputMTPS = tputSum / totalQueries / 1e6
	return row, nil
}

func figure1CoW(opt Options, freq int) (Fig1Row, error) {
	const totalQueries = 16
	env, err := NewEnv(opt)
	if err != nil {
		return Fig1Row{}, err
	}
	defer env.Close()
	env.InjectFor(1.0, env.Sys.OLTPThroughputNow())

	row := Fig1Row{Mode: "CoW", QueriesPerSeq: freq}
	var tputSum float64
	executed := 0
	for executed < totalQueries {
		// A new CoW snapshot (fork) every `freq` queries: queries read the
		// shared data in place with co-located compute — the paper maps
		// CoW systems to state S1 (§3.4) — and no transfer is charged.
		var set *rde.SnapshotSet
		for i := 0; i < freq && executed < totalQueries; i++ {
			o := core.QueryOptions{
				ForceState:  core.ForcedState(core.S1),
				ForceMethod: core.ForcedMethod(rde.ReadSnapshot),
				Batch:       true,
			}
			if set != nil {
				o.SkipSwitch = true
			}
			rep, out, err := env.Sys.RunQueryContext(context.Background(), env.Q6(), o, set)
			if err != nil {
				return row, err
			}
			set = out
			row.QueryExecSeconds += rep.ExecSeconds

			// CoW page-copy overhead: every write to a not-yet-copied page
			// duplicates it. With the snapshot freshly taken, the expected
			// pages touched follow the occupancy model over the updatable
			// working set (stock + district), at emulated scale.
			tps := cowThroughput(env, rep, freq)
			tputSum += tps
			executed++
			env.InjectFor(rep.ExecSeconds, tps)
		}
	}
	row.QueryExecSeconds /= totalQueries
	row.DataTransferSeconds = 0
	row.OLTPTputMTPS = tputSum / totalQueries / 1e6
	return row, nil
}

// cowThroughput solves the small fixed point between throughput and the
// per-transaction page-copy overhead: more transactions during the window
// touch more distinct pages until the whole working set is copied.
func cowThroughput(env *Env, rep core.QueryReport, freq int) float64 {
	m := env.Sys.Model
	p := m.Params()
	// Updatable working set at emulated scale: stock rows dominate.
	emuStockRows := float64(ch.SizingForScale(env.Opt.EmulateSF).StockRows())
	rowBytes := float64(env.DB.Stock.Table().Schema().RowBytes())
	rowsPerPage := math.Max(1, float64(p.CoWPageBytes)/rowBytes)
	pages := math.Max(1, emuStockRows/rowsPerPage)

	window := rep.ExecSeconds * float64(freq) // snapshot lifetime
	load := costmodel.OLTPLoad{
		Workers:    env.Sys.Sched.OLTPPlacement(),
		HomeSocket: env.Sys.Cfg.OLTPSocket,
		Background: rep.ScanUsage,
	}
	tps := m.OLTPThroughput(load).TPS
	const updatesPerTxn = 10 // stock rows written by one NewOrder
	for iter := 0; iter < 8; iter++ {
		txns := math.Max(1, tps*window)
		touches := txns * updatesPerTxn
		copied := pages * (1 - math.Pow(1-1/pages, touches))
		load.ExtraPerTxnSeconds = m.CoWOverhead(copied / txns)
		next := m.OLTPThroughput(load).TPS
		if math.Abs(next-tps) < 1e3 {
			tps = next
			break
		}
		tps = next
	}
	return tps
}
