package experiments

import (
	"context"
	"elastichtap/internal/core"
	"elastichtap/internal/olap"
	"elastichtap/internal/rde"
)

// Fig3aRow is one point of Figure 3(a): state S1 sensitivity to the number
// of CPUs interchanged between the sockets while Q6 runs over the OLTP
// snapshot.
type Fig3aRow struct {
	CPUsInterchanged int
	OLTPOnlyMTPS     float64 // striped bars: no concurrent OLAP
	OLTPWithOLAPMTPS float64 // filled bars: during query execution
	OLAPRespSeconds  float64 // line: average query response time
}

// Fig3cRow is one point of Figure 3(c): S3-NI sensitivity to the number of
// OLTP CPUs lent to the OLAP engine, running Q1 with split access.
type Fig3cRow = Fig3aRow

// Figure3a reproduces the S1 sensitivity analysis (§5.2): the engines
// start fully isolated and gradually trade CPUs; each configuration runs
// Q6 16 times on the freshest snapshot and reports averages.
func Figure3a(opt Options) ([]Fig3aRow, error) {
	return sensitivitySweep(opt, core.S1, 14, 2,
		func(e *Env) olap.Query { return e.Q6() })
}

// Figure3c reproduces the S3-NI sensitivity analysis (§5.2) with Q1 and
// the split access method. Fresh data accumulates for a while before the
// sweep (the paper measures after the OLTP engine has been inserting), so
// the borrowed data-local cores have fresh data to reduce; the sweep stops
// before the OLTP engine would be left without workers.
func Figure3c(opt Options) ([]Fig3cRow, error) {
	return sensitivitySweep(opt, core.S3NI, 12, 60,
		func(e *Env) olap.Query { return e.Q1() })
}

func sensitivitySweep(opt Options, st core.State, maxCPUs int, warmupSimSecs float64, pick func(*Env) olap.Query) ([]Fig3aRow, error) {
	var rows []Fig3aRow
	for x := 0; x <= maxCPUs; x += 2 {
		row, err := func() (Fig3aRow, error) {
			env, err := NewEnv(opt)
			if err != nil {
				return Fig3aRow{}, err
			}
			defer env.Close()
			if err := env.allowTrading(maxCPUs); err != nil {
				return Fig3aRow{}, err
			}
			if err := env.setElasticCores(x); err != nil {
				return Fig3aRow{}, err
			}
			if warmupSimSecs > 0 {
				env.InjectFor(warmupSimSecs, env.Sys.OLTPThroughputNow())
			}
			return sensitivityPoint(env, pick(env), st, 16)
		}()
		if err != nil {
			return nil, err
		}
		row.CPUsInterchanged = x
		rows = append(rows, row)
	}
	return rows, nil
}

// sensitivityPoint executes the query `reps` times in the forced state,
// injecting the transactions the modeled OLTP engine commits meanwhile,
// and averages the reported metrics.
func sensitivityPoint(env *Env, q olap.Query, st core.State, reps int) (Fig3aRow, error) {
	var row Fig3aRow
	var sumResp, sumBase, sumDuring float64
	for i := 0; i < reps; i++ {
		rep, _, err := env.Sys.RunQueryContext(context.Background(), q, core.QueryOptions{
			ForceState: core.ForcedState(st),
		}, nil)
		if err != nil {
			return row, err
		}
		sumResp += rep.ResponseSeconds
		sumBase += rep.OLTPBaselineTPS
		sumDuring += rep.OLTPDuringTPS
		env.InjectFor(rep.ResponseSeconds, rep.OLTPDuringTPS)
	}
	n := float64(reps)
	row.OLAPRespSeconds = sumResp / n
	row.OLTPOnlyMTPS = sumBase / n / 1e6
	row.OLTPWithOLAPMTPS = sumDuring / n / 1e6
	return row, nil
}

// Fig3bRow is one point of Figure 3(b): S2 sensitivity to the query batch
// size; 16 Q6 executions total, grouped into batches over one snapshot.
type Fig3bRow struct {
	BatchSize        int
	QueryExecSeconds float64 // solid bars: cumulative execution time
	DataTransferSecs float64 // striped bars: cumulative ETL time
	OLTPTputMTPS     float64
	BytesTransferred int64
}

// Figure3b reproduces the S2 batch-amortization analysis (§5.2). Batches
// arrive periodically (the reporting-workload pattern, §2.3), so a fixed
// fresh quantum accumulates before each batch regardless of its size; the
// per-batch copy is then amortized as the batch grows, while the OLTP
// engine stays isolated on its socket.
func Figure3b(opt Options) ([]Fig3bRow, error) {
	const totalQueries = 16
	const interBatchSimSecs = 1.0
	var rows []Fig3bRow
	for _, batch := range []int{1, 2, 4, 8, 16} {
		row, err := func() (Fig3bRow, error) {
			env, err := NewEnv(opt)
			if err != nil {
				return Fig3bRow{}, err
			}
			defer env.Close()
			row := Fig3bRow{BatchSize: batch}
			var tputSum float64
			var tputN int
			executed := 0
			for executed < totalQueries {
				// Fresh data accumulated since the previous batch arrived.
				env.InjectFor(interBatchSimSecs, env.Sys.OLTPThroughputNow())
				var set *rde.SnapshotSet
				for i := 0; i < batch && executed < totalQueries; i++ {
					o := core.QueryOptions{ForceState: core.ForcedState(core.S2), Batch: true}
					if set != nil {
						o.SkipSwitch = true
					}
					rep, out, err := env.Sys.RunQueryContext(context.Background(), env.Q6(), o, set)
					if err != nil {
						return Fig3bRow{}, err
					}
					set = out
					row.QueryExecSeconds += rep.ExecSeconds
					row.DataTransferSecs += rep.ETLSeconds
					row.BytesTransferred += rep.ETLBytes
					tputSum += rep.OLTPDuringTPS
					tputN++
					executed++
				}
			}
			row.OLTPTputMTPS = tputSum / float64(tputN) / 1e6
			return row, nil
		}()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
