package experiments

import (
	"context"
	"elastichtap/internal/core"
	"elastichtap/internal/rde"
)

// Fig4Row is one point of Figure 4: average Q1 response time as a function
// of the share of the database's fresh data the query touches.
type Fig4Row struct {
	// FreshPct is 100*Nfq/Nft at scheduling time.
	FreshPct float64
	// SplitSeconds is S3-IS with the split access method.
	SplitSeconds float64
	// S2Seconds is the replica-local execution after a real delta ETL,
	// with the copy amortized over a 16-query batch (the series' steady
	// state, §5.2: the S2 line "stabilizes").
	S2Seconds float64
	// FullRemoteSeconds is S3-IS reading everything over the interconnect.
	FullRemoteSeconds float64
}

// Figure4 reproduces the freshness sweep (§5.2): starting from a fully
// synchronized replica, transactions accumulate fresh data; at each point
// the three access strategies execute Q1 and report response time. Two
// environments advance in lockstep over identical transaction streams: the
// hybrid one never ETLs (so fresh data keeps accumulating), while the S2
// one pays a real delta ETL per point. The split-access series starts
// below S2 and crosses it as the fresh share grows; full-remote stays
// worst throughout.
func Figure4(opt Options) ([]Fig4Row, error) {
	hybrid, err := NewEnv(opt)
	if err != nil {
		return nil, err
	}
	defer hybrid.Close()
	s2env, err := NewEnv(opt)
	if err != nil {
		return nil, err
	}
	defer s2env.Close()
	var rows []Fig4Row
	const points = 12
	const stepSimSecs = 12.0
	for p := 0; p < points; p++ {
		// Grow fresh data identically in both environments.
		n := hybrid.InjectFor(stepSimSecs, hybrid.Sys.OLTPThroughputNow())
		s2env.Sys.InjectTransactions(n)

		split, _, err := hybrid.Sys.RunQueryContext(context.Background(), hybrid.Q1(), core.QueryOptions{
			ForceState:  core.ForcedState(core.S3IS),
			ForceMethod: core.ForcedMethod(rde.ReadSplit),
		}, nil)
		if err != nil {
			return nil, err
		}
		full, _, err := hybrid.Sys.RunQueryContext(context.Background(), hybrid.Q1(), core.QueryOptions{
			ForceState:  core.ForcedState(core.S3IS),
			ForceMethod: core.ForcedMethod(rde.ReadSnapshot),
		}, nil)
		if err != nil {
			return nil, err
		}
		s2, _, err := s2env.Sys.RunQueryContext(context.Background(), s2env.Q1(), core.QueryOptions{
			ForceState: core.ForcedState(core.S2),
		}, nil)
		if err != nil {
			return nil, err
		}

		// The x-axis is the touched fresh bytes (query columns only) over
		// all fresh bytes, the quantity Figure 4 plots.
		freshPct := 0.0
		if full.Nft > 0 {
			cols := int64(len(hybrid.Q1().Columns()))
			touched := full.Nfq / hybrid.DB.OrderLine.Table().Schema().RowBytes() * cols * 8
			freshPct = 100 * float64(touched) / float64(full.Nft)
		}
		rows = append(rows, Fig4Row{
			FreshPct:          freshPct,
			SplitSeconds:      split.ResponseSeconds,
			S2Seconds:         s2.ExecSeconds + s2.ETLSeconds/16,
			FullRemoteSeconds: full.ResponseSeconds,
		})
	}
	return rows, nil
}
