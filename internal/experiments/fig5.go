package experiments

import (
	"context"
	"fmt"

	"elastichtap/internal/core"
)

// Schedule names a Figure 5 configuration.
type Schedule string

// The six schedules of Figure 5.
const (
	SchedS1         Schedule = "S1"
	SchedS2         Schedule = "S2"
	SchedS3IS       Schedule = "S3-IS"
	SchedS3NI       Schedule = "S3-NI"
	SchedAdaptiveIS Schedule = "Adaptive-S3-IS"
	SchedAdaptiveNI Schedule = "Adaptive-S3-NI"
)

// AllSchedules lists Figure 5's configurations in plot order.
func AllSchedules() []Schedule {
	return []Schedule{SchedS1, SchedS2, SchedS3IS, SchedAdaptiveIS, SchedS3NI, SchedAdaptiveNI}
}

// Fig5Point is one sequence execution under one schedule.
type Fig5Point struct {
	Sequence int
	// Seconds is the total sequence execution time (Q1+Q6+Q19 including
	// any ETL), Figure 5(a).
	Seconds float64
	// OLTPMTPS is the transactional throughput during the sequence,
	// Figure 5(b).
	OLTPMTPS float64
	// ETLs counts delta-ETL operations triggered within the sequence.
	ETLs int
}

// Fig5Series is one schedule's trajectory.
type Fig5Series struct {
	Schedule Schedule
	Points   []Fig5Point
}

// Figure5 reproduces the adaptive-scheduling evaluation (§5.3): each
// schedule executes `sequences` repetitions of the {Q1, Q6, Q19} set while
// NewOrder transactions run concurrently; the database starts synchronized
// (freshness-rate 1, SF-30 emulation by default).
func Figure5(opt Options, sequences int, schedules []Schedule) ([]Fig5Series, error) {
	if opt.EmulateSF == 0 {
		opt.EmulateSF = 30
	}
	if opt.Items == 0 {
		// A realistic update working set: its slow saturation is what makes
		// Nfq/Nft grow toward 1 and lets Algorithm 2's ETL trigger fire
		// mid-run rather than immediately or never (§4.2).
		opt.Items = 30000
	}
	if opt.PaymentPct == 0 {
		opt.PaymentPct = 30
	}
	if opt.Alpha == 0 {
		// The paper sets α=0.5 under its freshness accounting; with this
		// reproduction's whole-row accounting the ratio's dynamic range is
		// ~[0.5, 0.8], so the equivalent operating point — ETL every few
		// tens of sequences, one query paying the latency (§5.3) — sits near
		// 0.6. EXPERIMENTS.md discusses the mapping.
		opt.Alpha = 0.6
	}
	if sequences <= 0 {
		sequences = 100
	}
	if len(schedules) == 0 {
		schedules = AllSchedules()
	}
	var out []Fig5Series
	for _, sched := range schedules {
		series, err := runSchedule(opt, sched, sequences)
		if err != nil {
			return nil, fmt.Errorf("experiments: schedule %s: %w", sched, err)
		}
		out = append(out, series)
	}
	return out, nil
}

func runSchedule(opt Options, sched Schedule, sequences int) (Fig5Series, error) {
	env, err := NewEnv(opt)
	if err != nil {
		return Fig5Series{}, err
	}
	defer env.Close()
	cfg := env.Sys.Sched.Config()
	var force *core.State
	switch sched {
	case SchedS1:
		force = core.ForcedState(core.S1)
	case SchedS2:
		force = core.ForcedState(core.S2)
	case SchedS3IS:
		force = core.ForcedState(core.S3IS)
	case SchedS3NI:
		force = core.ForcedState(core.S3NI)
	case SchedAdaptiveIS:
		cfg.Elasticity = false // Algorithm 2 alternates S3-IS and S2
	case SchedAdaptiveNI:
		cfg.Elasticity = true
		cfg.Mode = core.ModeHybrid // Algorithm 2 alternates S3-NI and S2
	default:
		return Fig5Series{}, fmt.Errorf("unknown schedule %q", sched)
	}
	if err := env.Sys.Sched.SetConfig(cfg); err != nil {
		return Fig5Series{}, err
	}

	// Sequences are dispatched on a fixed arrival period, so the fresh
	// data between sequences grows with the transactional throughput but
	// not with the analytical response time. Back-to-back dispatch at this
	// model's interconnect ratio couples response time to fresh volume in
	// a runaway loop the paper's testbed does not exhibit; the periodic
	// driver reproduces the paper's near-linear growth (DESIGN.md §2,
	// EXPERIMENTS.md F5).
	const arrivalPeriod = 1.5 // emulated seconds between sequence arrivals

	series := Fig5Series{Schedule: sched}
	for seq := 1; seq <= sequences; seq++ {
		var pt Fig5Point
		pt.Sequence = seq
		var tputSum float64
		queries := env.Queries()
		for _, q := range queries {
			rep, _, err := env.Sys.RunQueryContext(context.Background(), q, core.QueryOptions{ForceState: force}, nil)
			if err != nil {
				return series, err
			}
			pt.Seconds += rep.ResponseSeconds
			tputSum += rep.OLTPDuringTPS
			if rep.ETLSeconds > 0 {
				pt.ETLs++
			}
		}
		pt.OLTPMTPS = tputSum / float64(len(queries)) / 1e6
		env.InjectFor(arrivalPeriod, pt.OLTPMTPS*1e6)
		series.Points = append(series.Points, pt)
	}
	return series, nil
}

// ConvergenceRow reports the §5.3 convergence claim: the widening gap of
// Adaptive-S3-NI over static S3-NI at sequence checkpoints.
type ConvergenceRow struct {
	Sequence   int
	StaticSecs float64 // cumulative static S3-NI time
	AdaptSecs  float64 // cumulative adaptive time
	GapPct     float64 // 100*(static-adaptive)/static
}

// Convergence extends Figure 5 for the S3-NI pair ("11%, 22% and 26%
// performance gains at 100th, 200th and 250th sequence execution", §5.3).
func Convergence(opt Options, checkpoints []int) ([]ConvergenceRow, error) {
	if len(checkpoints) == 0 {
		checkpoints = []int{100, 200, 250, 300}
	}
	max := 0
	for _, c := range checkpoints {
		if c > max {
			max = c
		}
	}
	series, err := Figure5(opt, max, []Schedule{SchedS3NI, SchedAdaptiveNI})
	if err != nil {
		return nil, err
	}
	static, adaptive := series[0].Points, series[1].Points
	var rows []ConvergenceRow
	var sSum, aSum float64
	idx := 0
	for i := 0; i < max; i++ {
		sSum += static[i].Seconds
		aSum += adaptive[i].Seconds
		if idx < len(checkpoints) && i+1 == checkpoints[idx] {
			gap := 0.0
			if sSum > 0 {
				gap = 100 * (sSum - aSum) / sSum
			}
			rows = append(rows, ConvergenceRow{
				Sequence:   i + 1,
				StaticSecs: sSum,
				AdaptSecs:  aSum,
				GapPct:     gap,
			})
			idx++
		}
	}
	return rows, nil
}
