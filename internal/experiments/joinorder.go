package experiments

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"time"

	"elastichtap/internal/ch"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
	"elastichtap/query"
)

// JoinOrderRow is one query of the greedy-vs-written join-ordering sweep.
type JoinOrderRow struct {
	Query     string
	Relations int     // relations in the join graph, fact table included
	GreedyMs  float64 // median wall-clock execution under the greedy order
	WrittenMs float64 // median wall-clock execution under the written order
	Ratio     float64 // greedy / written; below 1 the greedy order won
	// BuildKB is the build-side volume broadcast to the probe workers.
	// It is identical under both orders — every relation hashes either
	// way — which is the point: greedy wins by probing the most selective
	// build first and rejecting fact rows early, not by building less.
	BuildKB int64
	Rows    int  // result rows (both orders return the same set)
	Match   bool // greedy rows byte-identical to the written order's
}

// joinOrderCase pairs a graph-join query with its relation count.
type joinOrderCase struct {
	name      string
	relations int
	plan      func() *query.Plan
}

// JoinOrderSweep measures the statistics-free greedy join ordering against
// the order the query was written in, on the three CH-benCHmark queries
// that exercise the n-way join graph. Both orderings of each query run
// reps times on the same loaded database and engine; the medians are
// reported together with the build-side volume each ordering broadcast
// and a byte-identity check on the result rows (ordering must never
// change the answer). Written order is the author's edge order — for Q5
// that order hashes the item semi-join last, which is exactly the plan
// the greedy stage rejects by hoisting the most selective build first.
func JoinOrderSweep(opt Options, reps int) ([]JoinOrderRow, error) {
	opt = opt.withDefaults()
	if reps <= 0 {
		reps = 5
	}
	e := oltp.NewEngine()
	db := ch.Load(e, ch.SizingForScale(opt.SF), opt.Seed)
	eng := olap.NewEngine(1)
	eng.SetPlacement(topology.Placement{PerSocket: []int{8}})
	defer eng.Close()

	cases := []joinOrderCase{
		{"Q2", 4, func() *query.Plan { return ch.Q2Plan(0, 0) }},
		{"Q5", 6, func() *query.Plan { return ch.Q5Plan(0) }},
		{"Q7", 5, func() *query.Plan { return ch.Q7Plan(0) }},
	}
	var rows []JoinOrderRow
	for _, c := range cases {
		greedy, err := c.plan().Bind(db)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s greedy: %w", c.name, err)
		}
		written, err := c.plan().OrderJoins(query.OrderWritten).Bind(db)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s written: %w", c.name, err)
		}
		tab := db.Handle(greedy.FactTable()).Table()
		src := olap.Source{Table: tab, Parts: []olap.Part{{
			Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "joinorder",
		}}}
		gRes, gStats, gMs, err := runOrdered(eng, greedy, src, reps)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s greedy: %w", c.name, err)
		}
		wRes, _, wMs, err := runOrdered(eng, written, src, reps)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s written: %w", c.name, err)
		}
		row := JoinOrderRow{
			Query:     c.name,
			Relations: c.relations,
			GreedyMs:  gMs,
			WrittenMs: wMs,
			BuildKB:   gStats.BuildBytes / 1024,
			Rows:      len(gRes.Rows),
			Match:     reflect.DeepEqual(gRes.Rows, wRes.Rows),
		}
		if wMs > 0 {
			row.Ratio = gMs / wMs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runOrdered executes q reps times and returns the last result and stats
// with the median wall-clock milliseconds.
func runOrdered(eng *olap.Engine, q olap.Query, src olap.Source, reps int) (olap.Result, olap.Stats, float64, error) {
	var res olap.Result
	var stats olap.Stats
	ms := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		r, st, err := eng.ExecuteContext(context.Background(), q, src)
		if err != nil {
			return olap.Result{}, olap.Stats{}, 0, err
		}
		ms = append(ms, float64(time.Since(start))/1e6)
		res, stats = r, st
	}
	sort.Float64s(ms)
	return res, stats, ms[len(ms)/2], nil
}
