package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// RenderFig1 writes Figure 1's rows as a text table.
func RenderFig1(w io.Writer, rows []Fig1Row) {
	tw := newTW(w)
	fmt.Fprintln(tw, "mode\tqueries/seq\tquery exec (s)\tdata transfer (s)\tOLTP (MTPS)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\n",
			r.Mode, r.QueriesPerSeq, r.QueryExecSeconds, r.DataTransferSeconds, r.OLTPTputMTPS)
	}
	tw.Flush()
}

// RenderFig3a writes Figure 3(a)/3(c) rows as a text table.
func RenderFig3a(w io.Writer, rows []Fig3aRow, xLabel string) {
	tw := newTW(w)
	fmt.Fprintf(tw, "%s\tOLTP only (MTPS)\tOLTP w/ OLAP (MTPS)\tOLAP resp (s)\n", xLabel)
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\n",
			r.CPUsInterchanged, r.OLTPOnlyMTPS, r.OLTPWithOLAPMTPS, r.OLAPRespSeconds)
	}
	tw.Flush()
}

// RenderFig3b writes Figure 3(b) rows as a text table.
func RenderFig3b(w io.Writer, rows []Fig3bRow) {
	tw := newTW(w)
	fmt.Fprintln(tw, "batch size\tquery exec (s)\tdata transfer (s)\tOLTP (MTPS)\tbytes moved")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\t%d\n",
			r.BatchSize, r.QueryExecSeconds, r.DataTransferSecs, r.OLTPTputMTPS, r.BytesTransferred)
	}
	tw.Flush()
}

// RenderFig4 writes Figure 4's rows as a text table.
func RenderFig4(w io.Writer, rows []Fig4Row) {
	tw := newTW(w)
	fmt.Fprintln(tw, "fresh %\tS3-IS split (s)\tS2 (s)\tS3-IS full remote (s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.3f\t%.3f\n",
			r.FreshPct, r.SplitSeconds, r.S2Seconds, r.FullRemoteSeconds)
	}
	tw.Flush()
}

// RenderFig5 writes Figure 5's series, sampling every `every` sequences.
func RenderFig5(w io.Writer, series []Fig5Series, every int) {
	if every <= 0 {
		every = 10
	}
	tw := newTW(w)
	fmt.Fprint(tw, "seq")
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s (s)\t%s (MTPS)", s.Schedule, s.Schedule)
	}
	fmt.Fprintln(tw)
	if len(series) == 0 || len(series[0].Points) == 0 {
		tw.Flush()
		return
	}
	n := len(series[0].Points)
	for i := 0; i < n; i++ {
		if (i+1)%every != 0 && i != 0 && i != n-1 {
			continue
		}
		fmt.Fprintf(tw, "%d", i+1)
		for _, s := range series {
			fmt.Fprintf(tw, "\t%.3f\t%.3f", s.Points[i].Seconds, s.Points[i].OLTPMTPS)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// RenderTable1 writes the design classification.
func RenderTable1(w io.Writer) {
	tw := newTW(w)
	fmt.Fprintln(tw, "storage\tsystem\tsnapshot mechanism\tfreshness-perf tradeoff\tour state")
	for _, r := range Table1() {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", r.Storage, r.System, r.Mechanism, r.Tradeoff, r.OurState)
	}
	tw.Flush()
}

// RenderSyncClaim writes the sync-claim comparison.
func RenderSyncClaim(w io.Writer, r SyncClaimRow) {
	fmt.Fprintf(w, "sync of %d modified tuples in a %d-row database:\n", r.ModifiedRows, r.TotalRows)
	fmt.Fprintf(w, "  model (paper scale): %.1f ms (paper claims ~10 ms)\n", r.ModelSeconds*1e3)
	fmt.Fprintf(w, "  measured real copy:  %.1f ms (%d rows copied on this host)\n",
		r.MeasuredSeconds*1e3, r.CopiedRows)
}

// RenderConvergence writes the §5.3 convergence checkpoints.
func RenderConvergence(w io.Writer, rows []ConvergenceRow) {
	tw := newTW(w)
	fmt.Fprintln(tw, "sequence\tstatic S3-NI cum (s)\tadaptive cum (s)\tgap %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.1f\n", r.Sequence, r.StaticSecs, r.AdaptSecs, r.GapPct)
	}
	tw.Flush()
}

// Summary line helpers shared by chbench and the benches.

// Fig5Gap returns the relative improvement of schedule b over a at the
// final sequence, in percent of a's cumulative time.
func Fig5Gap(series []Fig5Series, a, b Schedule) float64 {
	var ca, cb float64
	for _, s := range series {
		var cum float64
		for _, p := range s.Points {
			cum += p.Seconds
		}
		switch s.Schedule {
		case a:
			ca = cum
		case b:
			cb = cum
		}
	}
	if ca == 0 {
		return 0
	}
	return 100 * (ca - cb) / ca
}

func newTW(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Banner renders a section header.
func Banner(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// RenderTail writes the tail-latency comparison.
func RenderTail(w io.Writer, rows []TailRow) {
	tw := newTW(w)
	fmt.Fprintln(tw, "state\tmean (µs)\tP50 (µs)\tP99 (µs)\tOLTP (MTPS)\tbus util %\tIC util %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.3f\t%.0f\t%.0f\n",
			r.State, r.MeanMicros, r.P50Micros, r.P99Micros, r.OLTPMTPS, r.BusUtilPct, r.CrossTraffc)
	}
	tw.Flush()
}

// RenderTenants writes the multi-tenant serving scenario: per-tenant
// arrival/rejection counts, latency tails, and measured morsel share
// against the configured weight share.
func RenderTenants(w io.Writer, rows []TenantRow) {
	tw := newTW(w)
	fmt.Fprintln(tw, "tenant\tclass\tweight\tsubmitted\tcompleted\trejected\tP50 (ms)\tP99 (ms)\tP99.9 (ms)\tmorsel share\tweight share")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.3f\t%.3f\n",
			r.Tenant, r.Class, r.Weight, r.Submitted, r.Completed, r.Rejected,
			r.P50Ms, r.P99Ms, r.P999Ms, r.MorselShare, r.WeightShare)
	}
	tw.Flush()
}

// RenderJoinOrder writes the greedy-vs-written join-ordering sweep.
func RenderJoinOrder(w io.Writer, rows []JoinOrderRow) {
	tw := newTW(w)
	fmt.Fprintln(tw, "query\trelations\tgreedy (ms)\twritten (ms)\tratio\tbuild (KB)\trows\tidentical")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.3f\t%d\t%d\t%v\n",
			r.Query, r.Relations, r.GreedyMs, r.WrittenMs, r.Ratio,
			r.BuildKB, r.Rows, r.Match)
	}
	tw.Flush()
}

// RenderAlpha writes the α-sweep ablation.
func RenderAlpha(w io.Writer, rows []AlphaRow) {
	tw := newTW(w)
	fmt.Fprintln(tw, "alpha\tETLs\ttotal (s)\tworst seq (s)\tfinal OLTP (MTPS)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%d\t%.2f\t%.3f\t%.3f\n",
			r.Alpha, r.ETLs, r.TotalSeconds, r.MaxSeqSeconds, r.FinalOLTPMTPS)
	}
	tw.Flush()
}
