package experiments

import (
	"context"
	"elastichtap/internal/core"
	"elastichtap/internal/costmodel"
)

// TailRow reports OLTP latency percentiles in one system state while a Q6
// scan runs concurrently — the paper's qualitative tail-latency ordering
// (§5.2): S2 and S3-IS smallest, S3-NI higher, S1 worst.
type TailRow struct {
	State       string
	MeanMicros  float64
	P50Micros   float64
	P99Micros   float64
	OLTPMTPS    float64
	BusUtilPct  float64 // home-socket bus utilization during the scan
	CrossTraffc float64 // interconnect utilization
}

// TailLatency evaluates all four states on identical fresh state.
func TailLatency(opt Options) ([]TailRow, error) {
	var rows []TailRow
	for _, st := range []core.State{core.S2, core.S3IS, core.S3NI, core.S1} {
		row, err := func() (TailRow, error) {
			env, err := NewEnv(opt)
			if err != nil {
				return TailRow{}, err
			}
			defer env.Close()
			if err := env.allowTrading(14); err != nil {
				return TailRow{}, err
			}
			env.InjectFor(10, env.Sys.OLTPThroughputNow())
			rep, _, err := env.Sys.RunQueryContext(context.Background(), env.Q6(), core.QueryOptions{
				ForceState: core.ForcedState(st),
			}, nil)
			if err != nil {
				return TailRow{}, err
			}
			tail := env.Sys.Model.OLTPTailLatency(costmodel.OLTPLoad{
				Workers:    env.Sys.Sched.OLTPPlacement(),
				HomeSocket: env.Sys.Cfg.OLTPSocket,
				Background: rep.ScanUsage,
			})
			return TailRow{
				State:       st.String(),
				MeanMicros:  tail.MeanSeconds * 1e6,
				P50Micros:   tail.P50Seconds * 1e6,
				P99Micros:   tail.P99Seconds * 1e6,
				OLTPMTPS:    rep.OLTPDuringTPS / 1e6,
				BusUtilPct:  100 * rep.ScanUsage.On(env.Sys.Cfg.OLTPSocket),
				CrossTraffc: 100 * rep.ScanUsage.Interconnect,
			}, nil
		}()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
