package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"elastichtap/internal/ch"
	"elastichtap/internal/core"
	"elastichtap/internal/olap"
	"elastichtap/internal/workload"
)

// TenantRow summarizes one tenant of the multi-tenant serving scenario:
// its share of dispatched morsels against its configured weight share,
// and the wall-clock latency tail its queries observed.
type TenantRow struct {
	Tenant      string
	Weight      int
	Class       string // traffic class: the query this tenant submits
	Submitted   int
	Completed   int
	Rejected    int // ErrOverloaded admissions (quota/backpressure)
	P50Ms       float64
	P99Ms       float64
	P999Ms      float64
	MorselShare float64 // fraction of all morsels dispatched to this tenant
	WeightShare float64 // fraction of total weight among the weighted tenants
}

// tenantClass describes one traffic class of the scenario.
type tenantClass struct {
	name   string
	weight int
	class  string
	cfg    workload.Config
}

// MultiTenant drives the workload manager's serving scenario: an
// open-loop arrival process over Zipf-distributed tenants — a heavy
// ad-hoc tenant, a mid-weight dashboard tenant, a background ETL tenant
// (weights 4:2:1), and a zero-quota tenant whose every arrival must be
// rejected with ErrOverloaded rather than queued. Arrivals do not wait
// for completions (open loop): the backlog is what forces the DRR
// dispatcher to arbitrate, so under contention the per-tenant morsel
// shares should track the 4:2:1 weight shares.
func MultiTenant(opt Options, queries int) ([]TenantRow, error) {
	if queries <= 0 {
		queries = 240
	}
	env, err := NewEnv(opt)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	env.InjectFor(5, env.Sys.OLTPThroughputNow())

	classes := []tenantClass{
		{name: "adhoc", weight: 4, class: "Q6",
			cfg: workload.Config{Weight: 4, MaxConcurrent: 8, MaxQueueDepth: workload.Unlimited}},
		{name: "dashboard", weight: 2, class: "Q1",
			cfg: workload.Config{Weight: 2, MaxConcurrent: 8, MaxQueueDepth: workload.Unlimited}},
		{name: "etl", weight: 1, class: "Q18",
			cfg: workload.Config{Weight: 1, MaxConcurrent: 8, MaxQueueDepth: workload.Unlimited}},
		{name: "throttled", weight: 1, class: "Q6",
			cfg: workload.Config{Weight: 1, MaxConcurrent: 0}}, // zero quota: every arrival rejected
	}
	for _, tc := range classes {
		if err := env.Sys.WM.Register(tc.name, tc.cfg); err != nil {
			return nil, err
		}
	}
	q18, err := ch.Q18Plan(0, 10).Bind(env.DB)
	if err != nil {
		return nil, err
	}
	queryFor := map[string]func() olap.Query{
		"Q6":  env.Q6,
		"Q1":  env.Q1,
		"Q18": func() olap.Query { return q18 },
	}

	// Zipf over the three weighted tenants plus the throttled one: the
	// ad-hoc tenant dominates arrivals, the throttled tenant trickles.
	rng := rand.New(rand.NewSource(env.Opt.Seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(classes)-1))

	type outcome struct {
		tenant   string
		ms       float64
		rejected bool
		err      error
	}
	results := make(chan outcome, queries)
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		tc := classes[zipf.Uint64()]
		q := queryFor[tc.class]()
		ctx := workload.WithTenant(context.Background(), tc.name)
		wg.Add(1)
		// Open loop: the submitter never waits for completions; every
		// arrival is in flight at once and the queues absorb the burst.
		go func() {
			defer wg.Done()
			start := time.Now()
			_, _, err := env.Sys.RunQueryContext(ctx, q, core.QueryOptions{}, nil)
			o := outcome{tenant: tc.name, ms: float64(time.Since(start)) / 1e6}
			switch {
			case errors.Is(err, workload.ErrOverloaded):
				o.rejected = true
			case err != nil:
				o.err = err
			}
			results <- o
		}()
	}
	wg.Wait()
	close(results)

	lat := map[string][]float64{}
	submitted := map[string]int{}
	rejected := map[string]int{}
	for o := range results {
		if o.err != nil {
			return nil, fmt.Errorf("experiments: tenant %s: %w", o.tenant, o.err)
		}
		submitted[o.tenant]++
		if o.rejected {
			rejected[o.tenant]++
			continue
		}
		lat[o.tenant] = append(lat[o.tenant], o.ms)
	}

	dispatch := env.Sys.OLAPE.TenantDispatch()
	var totalMorsels, totalWeight int64
	for _, m := range dispatch {
		totalMorsels += m
	}
	for _, tc := range classes {
		if tc.cfg.MaxConcurrent != 0 {
			totalWeight += int64(tc.weight)
		}
	}
	var rows []TenantRow
	for _, tc := range classes {
		ls := lat[tc.name]
		sort.Float64s(ls)
		row := TenantRow{
			Tenant:    tc.name,
			Weight:    tc.weight,
			Class:     tc.class,
			Submitted: submitted[tc.name],
			Completed: len(ls),
			Rejected:  rejected[tc.name],
			P50Ms:     percentile(ls, 0.50),
			P99Ms:     percentile(ls, 0.99),
			P999Ms:    percentile(ls, 0.999),
		}
		if totalMorsels > 0 {
			row.MorselShare = float64(dispatch[tc.name]) / float64(totalMorsels)
		}
		if tc.cfg.MaxConcurrent != 0 && totalWeight > 0 {
			row.WeightShare = float64(tc.weight) / float64(totalWeight)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// percentile reads the p-quantile from an ascending sample set by the
// nearest-rank method; 0 for empty samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
