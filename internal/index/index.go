// Package index provides secondary indexes over twin-instance columnar
// tables: bitmap indexes (one bitset of row ids per distinct value) for
// dictionary-encoded columns, and hash indexes (value → ascending row-id
// postings) for int64 key columns. Indexes are built lazily on first
// lookup and maintained incrementally — the RDE engine calls Refresh at
// ETL batch boundaries and after instance switches, extending each built
// index from its row watermark without rescanning history.
//
// Because inserts are pushed to both columnar instances (§3.2), a column
// that has never seen an in-place update holds identical values in every
// instance and at every row below the watermark, so one index serves
// replica, snapshot, and split access paths alike. Columns that do see
// in-place updates are rebuilt from the active instance whenever their
// per-column update counter moves; callers that scan other instances must
// check Table.ColumnUpdateCount themselves before trusting postings.
package index

import (
	"sync"

	"elastichtap/internal/bitset"
	"elastichtap/internal/columnar"
)

// maxDistinct caps the number of distinct values an index will track.
// Columns beyond it (free-text dictionaries, near-unique measures) are
// marked unindexable and release their memory.
const maxDistinct = 1 << 14

// rebuildAttempts bounds the build-vs-concurrent-update retry loop; if a
// column is mutated faster than we can rebuild, the index stays marked
// stale and the lookup reports the column unindexed for now.
const rebuildAttempts = 4

// Postings is the set of row ids holding one value of an indexed column,
// in either bitmap or sorted-row-id form.
type Postings struct {
	bits *bitset.Atomic
	rows []int64
}

// Count returns the number of rows in the postings.
func (p Postings) Count() int64 {
	if p.bits != nil {
		return int64(p.bits.Count())
	}
	return int64(len(p.rows))
}

// Empty reports whether the postings hold no rows.
func (p Postings) Empty() bool {
	if p.bits != nil {
		return p.bits.Count() == 0
	}
	return len(p.rows) == 0
}

// ForEach calls fn for every row id in ascending order.
func (p Postings) ForEach(fn func(row int64)) {
	if p.bits != nil {
		p.bits.ForEachSet(func(i int) { fn(int64(i)) })
		return
	}
	for _, r := range p.rows {
		fn(r)
	}
}

// AnyInRange reports whether the postings contain a row in [lo, hi).
//
//htap:hotpath
func (p Postings) AnyInRange(lo, hi int64) bool {
	if lo >= hi {
		return false
	}
	if p.bits != nil {
		return p.bits.AnyInRange(int(lo), int(hi))
	}
	// Hand-rolled binary search: the morsel-skip path probes this per
	// block, and a sort.Search closure is a heap allocation there.
	i, j := 0, len(p.rows)
	for i < j {
		mid := int(uint(i+j) >> 1)
		if p.rows[mid] < lo {
			i = mid + 1
		} else {
			j = mid
		}
	}
	return i < len(p.rows) && p.rows[i] < hi
}

// colIndex is one column's index state.
type colIndex struct {
	dead      bool // unindexable: float column or distinct cap blown
	rows      int64
	updatesAt int64
	bitmap    map[int64]*bitset.Atomic // String (dictionary) columns
	hash      map[int64][]int64        // Int64 columns
}

// Set is the secondary-index set of one table. All methods are safe for
// concurrent use; builds and refreshes serialize on an internal mutex.
type Set struct {
	t  *columnar.Table
	mu sync.Mutex
	// cols is sized to the schema; entries are nil until first demanded.
	//htap:guardedby mu
	cols []*colIndex
}

// NewSet returns an empty index set over t. No index is built until a
// column is first looked up.
func NewSet(t *columnar.Table) *Set {
	return &Set{t: t, cols: make([]*colIndex, len(t.Schema().Columns))}
}

// Table returns the indexed table.
func (s *Set) Table() *columnar.Table { return s.t }

// Lookup returns the postings for raw value v (dictionary code for String
// columns) in column col, complete for rows [0, watermark). Rows at or
// beyond the watermark were appended after the last refresh and must be
// treated as potential matches. ok is false when the column cannot be
// indexed or the index could not be brought up to date.
func (s *Set) Lookup(col int, v int64) (p Postings, watermark int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ci := s.ensure(col)
	if ci.dead || !s.refresh(col, ci) {
		return Postings{}, 0, false
	}
	if ci.bitmap != nil {
		if b := ci.bitmap[v]; b != nil {
			p = Postings{bits: b}
		}
	} else if rows := ci.hash[v]; rows != nil {
		p = Postings{rows: rows}
	}
	return p, ci.rows, true
}

// CountEq returns the exact number of rows below the index watermark whose
// column equals v, for zero-statistics planner sizing. ok is false when
// the column is not indexed.
func (s *Set) CountEq(col int, v int64) (n int64, ok bool) {
	p, _, ok := s.Lookup(col, v)
	if !ok {
		return 0, false
	}
	return p.Count(), true
}

// Refresh brings every built index up to the table's current row count,
// rebuilding columns whose update counters moved. The RDE engine calls it
// after each ETL delta batch and after instance switches; it never builds
// an index that no lookup has demanded.
func (s *Set) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for col, ci := range s.cols {
		if ci == nil || ci.dead {
			continue
		}
		s.refresh(col, ci)
	}
}

// ensure returns column col's index state, allocating it on first demand.
//
//htap:locked mu
func (s *Set) ensure(col int) *colIndex {
	if ci := s.cols[col]; ci != nil {
		return ci
	}
	ci := &colIndex{}
	switch s.t.Schema().Columns[col].Type {
	case columnar.String:
		ci.bitmap = make(map[int64]*bitset.Atomic)
	case columnar.Int64:
		ci.hash = make(map[int64][]int64)
	default:
		ci.dead = true
	}
	s.cols[col] = ci
	return ci
}

// refresh brings one column index up to date under s.mu: a moved update
// counter forces a rebuild from row zero, otherwise the index extends
// incrementally from its watermark. It reports whether the index is
// usable afterwards.
//
//htap:locked mu
func (s *Set) refresh(col int, ci *colIndex) bool {
	for attempt := 0; ; attempt++ {
		cur := s.t.ColumnUpdateCount(col)
		rows := s.t.Rows()
		if cur == ci.updatesAt && rows == ci.rows {
			return true
		}
		if attempt == rebuildAttempts {
			// Mutating faster than we can rebuild; leave marked stale so
			// the next lookup tries again.
			ci.updatesAt = cur - 1
			return false
		}
		from := ci.rows
		if cur != ci.updatesAt {
			// In-place updates invalidate old postings wholesale: the old
			// value's row would need removal, so rebuild from scratch.
			if ci.bitmap != nil {
				ci.bitmap = make(map[int64]*bitset.Atomic)
			} else {
				ci.hash = make(map[int64][]int64)
			}
			from = 0
		}
		ci.updatesAt = cur
		for r := from; r < rows; r++ {
			v := s.t.ReadActive(r, col)
			if ci.bitmap != nil {
				b := ci.bitmap[v]
				if b == nil {
					if len(ci.bitmap) == maxDistinct {
						s.kill(ci)
						return false
					}
					b = bitset.New(0)
					ci.bitmap[v] = b
				}
				b.Set(int(r))
			} else {
				if _, seen := ci.hash[v]; !seen && len(ci.hash) == maxDistinct {
					s.kill(ci)
					return false
				}
				ci.hash[v] = append(ci.hash[v], r)
			}
		}
		ci.rows = rows
	}
}

// kill marks a column unindexable and releases its postings.
//
//htap:locked mu
func (s *Set) kill(ci *colIndex) {
	ci.dead = true
	ci.bitmap = nil
	ci.hash = nil
	ci.rows = 0
}
