package index_test

import (
	"math/rand"
	"sync"
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/rde"
	"elastichtap/internal/topology"
)

func newExchange(t *testing.T) (*rde.Exchange, *ch.DB) {
	t.Helper()
	topo := topology.DefaultConfig()
	ledger, err := topology.NewLedger(topo)
	if err != nil {
		t.Fatal(err)
	}
	ledger.AssignSocket(0, topology.OLTP)
	ledger.AssignSocket(1, topology.OLAP)
	model := costmodel.New(topo, costmodel.DefaultParams())
	engine := oltp.NewEngine()
	db := ch.Load(engine, ch.TinySizing(), 1)
	x := rde.New(ledger, model, engine, olap.NewEngine(topo.Sockets), 0, 1)
	return x, db
}

// probeCol is one (table, column) pair the property test checks.
type probeCol struct {
	name string
	h    *oltp.TableHandle
	col  int
}

func probes(db *ch.DB) []probeCol {
	return []probeCol{
		{"orderline.ol_i_id", db.OrderLine, ch.OLIID},        // insert-only, hash
		{"orderline.ol_number", db.OrderLine, ch.OLNumber},   // insert-only, low distinct
		{"stock.s_quantity", db.Stock, ch.SQuantity},         // updated in place: rebuild path
		{"stock.s_su_suppkey", db.Stock, ch.SSuSuppkey},      // sibling churns, this column never
		{"customer.c_nationkey", db.Customer, ch.CNationkey}, // sibling churns, this column never
		{"customer.c_credit", db.Customer, ch.CCredit},       // dictionary bitmap
		{"nation.n_name", db.Nation, ch.NName},               // static dictionary bitmap
	}
}

// scanPostings is the oracle: a full scan of the active instance.
func scanPostings(p probeCol) map[int64][]int64 {
	t := p.h.Table()
	out := map[int64][]int64{}
	for r := int64(0); r < t.Rows(); r++ {
		v := t.ReadActive(r, p.col)
		out[v] = append(out[v], r)
	}
	return out
}

// checkAgainstScan asserts that index lookups over every distinct value
// agree exactly with a full-column scan, including counts, membership
// order, range probes, and a definitive miss.
func checkAgainstScan(t *testing.T, p probeCol, rng *rand.Rand) {
	t.Helper()
	oracle := scanPostings(p)
	rows := p.h.Table().Rows()
	var miss int64 = -987654321
	for v, want := range oracle {
		post, watermark, ok := p.h.Sec.Lookup(p.col, v)
		if !ok {
			t.Fatalf("%s: value %d not served by index", p.name, v)
		}
		if watermark != rows {
			t.Fatalf("%s: watermark %d, want %d (quiescent lookup must be complete)", p.name, watermark, rows)
		}
		if got := post.Count(); got != int64(len(want)) {
			t.Fatalf("%s: value %d count %d, want %d", p.name, v, got, len(want))
		}
		i := 0
		post.ForEach(func(r int64) {
			if i < len(want) && want[i] != r {
				t.Fatalf("%s: value %d row %d = %d, want %d", p.name, v, i, r, want[i])
			}
			i++
		})
		// Random window: AnyInRange must agree with the scan.
		lo := rng.Int63n(rows + 1)
		hi := lo + rng.Int63n(rows-lo+1)
		wantAny := false
		for _, r := range want {
			if r >= lo && r < hi {
				wantAny = true
				break
			}
		}
		if post.AnyInRange(lo, hi) != wantAny {
			t.Fatalf("%s: value %d AnyInRange(%d,%d) = %v, want %v", p.name, v, lo, hi, !wantAny, wantAny)
		}
	}
	if post, _, ok := p.h.Sec.Lookup(p.col, miss); !ok || !post.Empty() {
		t.Fatalf("%s: absent value must yield empty postings (ok=%v)", p.name, ok)
	}
}

// TestIndexAgreesWithScansUnderChurn is the maintenance property test:
// randomized transaction batches interleaved with instance switches and
// delta-ETL (which Refresh the indexes at each boundary), with lookups
// racing the churn; after every boundary the indexes must agree exactly
// with full-column scans.
func TestIndexAgreesWithScansUnderChurn(t *testing.T) {
	x, db := newExchange(t)
	tables := db.Tables()
	x.ETL(x.SwitchAndSync(tables))
	rng := rand.New(rand.NewSource(99))
	mgr := db.Engine.Manager()
	pr := probes(db)

	// Warm every probed index so Refresh has something to maintain.
	for _, p := range pr {
		if _, _, ok := p.h.Sec.Lookup(p.col, 1); !ok {
			t.Fatalf("%s: initial lookup not served", p.name)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// Concurrent readers exercise lookup-vs-refresh races under -race;
		// values are only sanity-checked, exact agreement is asserted at
		// the quiescent boundaries below.
		defer wg.Done()
		lrng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := pr[lrng.Intn(len(pr))]
			if post, _, ok := p.h.Sec.Lookup(p.col, lrng.Int63n(30)); ok && post.Count() < 0 {
				panic("negative count")
			}
		}
	}()

	for round := 0; round < 4; round++ {
		for i := 0; i < 25; i++ {
			var body oltp.TxnFunc
			if rng.Intn(2) == 0 {
				body = db.NewOrder(rng, 1+rng.Int63n(int64(db.Sizing.Warehouses)))
			} else {
				body = db.Payment(rng, 1+rng.Int63n(int64(db.Sizing.Warehouses)))
			}
			if _, err := mgr.RunWithRetry(1000, body); err != nil {
				t.Fatal(err)
			}
		}
		// Batch boundary: switch + sync + ETL refresh the indexes.
		x.ETL(x.SwitchAndSync(tables))
		for _, p := range pr {
			checkAgainstScan(t, p, rng)
		}
	}
	close(stop)
	wg.Wait()

	// Columns that cannot be indexed must say so rather than lie.
	if _, _, ok := db.Warehouse.Sec.Lookup(ch.WYtd, 0); ok {
		t.Fatal("float column served by secondary index")
	}
}
