// Package ctxflow enforces the engine's cancellation contract in two
// rules. First, library code must not mint its own roots: calls to
// context.Background() or context.TODO() are errors outside package
// main, experiments and tests — a context must flow in from the caller
// or the work it scopes cannot be cancelled. Second, in the packages
// that make up the public blocking surface (the root API plus
// internal/core, internal/olap and internal/workload), an exported
// function or method that blocks directly — a channel operation, a
// select without default, a sync.Cond or sync.WaitGroup Wait — must
// accept a context.Context parameter.
//
// Exemptions keep the rule honest rather than noisy: functions marked
// Deprecated: may wrap Background for compatibility; Close methods
// block by convention during shutdown; and completion observers —
// methods that only receive from the receiver's own channel fields on a
// type that also offers Done() <-chan struct{} — already give callers a
// select-able escape hatch.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"elastichtap/internal/lint"
)

// Analyzer is the ctxflow check.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc:  "require context plumbing on blocking API and forbid context.Background in library code",
	Run:  run,
}

// blockingSurface lists the packages whose exported blocking functions
// must take a context. Packages outside the module (analyzer testdata)
// are always in scope.
var blockingSurface = map[string]bool{
	"elastichtap":                   true,
	"elastichtap/internal/core":     true,
	"elastichtap/internal/olap":     true,
	"elastichtap/internal/workload": true,
}

func run(pass *lint.Pass) error {
	path := pass.Pkg.Path()
	inModule := path == "elastichtap" || strings.HasPrefix(path, "elastichtap/")
	checkRoots := pass.Pkg.Name() != "main" && !strings.Contains(path, "/experiments")
	checkBlocking := blockingSurface[path] || !inModule

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || lint.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			deprecated := isDeprecated(fd.Doc)
			if checkRoots && !deprecated {
				checkNoRoots(pass, fd, fn)
			}
			if checkBlocking && !deprecated {
				checkBlockingFunc(pass, fd, fn)
			}
		}
	}
	return nil
}

// checkNoRoots flags context.Background()/context.TODO() calls.
func checkNoRoots(pass *lint.Pass, fd *ast.FuncDecl, fn *types.Func) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := lint.FuncFor(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
			return true
		}
		if name := callee.Name(); name == "Background" || name == "TODO" {
			pass.Reportf(call.Pos(), "%s calls context.%s; accept a context.Context from the caller instead", fn.Name(), name)
		}
		return true
	})
}

// checkBlockingFunc flags exported, directly-blocking functions that
// take no context.
func checkBlockingFunc(pass *lint.Pass, fd *ast.FuncDecl, fn *types.Func) {
	if !fd.Name.IsExported() || fd.Name.Name == "Close" || hasContextParam(fn) {
		return
	}
	if recv := lint.ReceiverType(fn); recv != nil && !recv.Exported() {
		return
	}
	sites := blockingSites(pass.TypesInfo, fd)
	if len(sites) == 0 {
		return
	}
	if completionObserver(pass, fd, fn, sites) {
		return
	}
	pass.Reportf(sites[0].pos, "exported %s blocks (%s) but has no context.Context parameter", fn.Name(), sites[0].what)
}

type site struct {
	pos  token.Pos
	what string
	// ownRecv is the receiver-field channel expression the site blocks
	// on, when the block is a pure receive from one; nil otherwise.
	ownRecv ast.Expr
}

// blockingSites collects the directly blocking constructs in a body.
// Function literals are skipped (a goroutine's blocking is its own),
// and channel operations in a select's case headers belong to the
// select — with a default case the whole statement is non-blocking.
func blockingSites(info *types.Info, fd *ast.FuncDecl) []site {
	var sites []site
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			sites = append(sites, site{n.Pos(), "channel send", nil})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				sites = append(sites, site{n.Pos(), "channel receive", ast.Unparen(n.X)})
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					sites = append(sites, site{n.Pos(), "range over channel", ast.Unparen(n.X)})
				}
			}
		case *ast.SelectStmt:
			blocking := true
			for _, c := range n.Body.List {
				if c.(*ast.CommClause).Comm == nil {
					blocking = false
				}
			}
			if blocking {
				sites = append(sites, site{n.Pos(), "select without default", nil})
			}
			for _, c := range n.Body.List {
				for _, stmt := range c.(*ast.CommClause).Body {
					ast.Inspect(stmt, walk)
				}
			}
			return false
		case *ast.CallExpr:
			if se, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && se.Sel.Name == "Wait" {
				if t := info.TypeOf(se.X); isSyncBlocker(t) {
					sites = append(sites, site{n.Pos(), "sync." + syncName(t) + ".Wait", nil})
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return sites
}

// completionObserver reports whether every blocking site is a receive
// from a field of the receiver and the receiver type offers
// Done() <-chan struct{}: the method is a convenience wrapper callers
// can always replace with their own select over Done().
func completionObserver(pass *lint.Pass, fd *ast.FuncDecl, fn *types.Func, sites []site) bool {
	recvName := receiverName(fd)
	if recvName == "" || !hasDoneMethod(fn) {
		return false
	}
	for _, s := range sites {
		se, ok := s.ownRecv.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		base, ok := ast.Unparen(se.X).(*ast.Ident)
		if !ok || base.Name != recvName {
			return false
		}
		if sel, ok := pass.TypesInfo.Selections[se]; !ok || sel.Kind() != types.FieldVal {
			return false
		}
	}
	return true
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// hasDoneMethod reports whether the receiver type has a method
// Done() <-chan struct{}.
func hasDoneMethod(fn *types.Func) bool {
	recv := lint.ReceiverType(fn)
	if recv == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(recv.Type()), true, fn.Pkg(), "Done")
	m, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := m.Type().(*types.Signature)
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	ch, ok := sig.Results().At(0).Type().Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	_, ok = ch.Elem().Underlying().(*types.Struct)
	return ok
}

func hasContextParam(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if named, ok := sig.Params().At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}

func isSyncBlocker(t types.Type) bool { return syncName(t) != "" }

// syncName returns "Cond" or "WaitGroup" when t is that sync type (or a
// pointer to it), else "".
func syncName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if n := obj.Name(); n == "Cond" || n == "WaitGroup" {
		return n
	}
	return ""
}

func isDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " "), "Deprecated:") {
			return true
		}
	}
	return false
}
