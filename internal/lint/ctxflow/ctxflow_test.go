package ctxflow_test

import (
	"testing"

	"elastichtap/internal/lint/ctxflow"
	"elastichtap/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, ".", ctxflow.Analyzer, "a")
}
