package a

import (
	"context"
	"sync"
)

func fetch() {
	ctx := context.Background() // want `fetch calls context.Background`
	_ = ctx
}

func todo() context.Context {
	return context.TODO() // want `todo calls context.TODO`
}

// Deprecated: use a Context-taking variant.
func FetchCompat() {
	_ = context.Background() // deprecated shim: no report
}

type Queue struct {
	ch   chan int
	done chan struct{}
	wg   sync.WaitGroup
}

func (q *Queue) Pop() int {
	return <-q.ch // want `exported Pop blocks \(channel receive\) but has no context.Context parameter`
}

func (q *Queue) PopContext(ctx context.Context) (int, bool) {
	select {
	case v := <-q.ch:
		return v, true
	case <-ctx.Done():
		return 0, false
	}
}

func (q *Queue) Flush() {
	q.wg.Wait() // want `exported Flush blocks \(sync.WaitGroup.Wait\)`
}

func (q *Queue) TryPop() (int, bool) {
	select { // has a default case: non-blocking, no report
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}

func (q *Queue) Close() {
	<-q.done // Close blocks by convention: no report
}

func (q *Queue) pop() int {
	return <-q.ch // unexported: no report
}

type Handle struct {
	done chan struct{}
}

func (h *Handle) Done() <-chan struct{} { return h.done }

func (h *Handle) Wait() {
	<-h.done // completion observer over own Done channel: no report
}
