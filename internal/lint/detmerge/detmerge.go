// Package detmerge keeps //htap:deterministic functions free of
// iteration-order and scheduling nondeterminism. The engine promises
// bitwise-stable query results regardless of worker count or morsel
// interleaving; the merge and result-assembly stages deliver that by
// iterating insertion-order slices and sorting explicit permutations.
// A map range, a select statement or a spawned goroutine inside one of
// those functions reintroduces run-to-run variance, so all three are
// errors here.
//
// The check is body-only: helpers a deterministic function calls are
// annotated (and checked) individually, which keeps the rule local and
// the failure message on the offending construct.
package detmerge

import (
	"go/ast"
	"go/types"

	"elastichtap/internal/lint"
)

// Analyzer is the detmerge check.
var Analyzer = &lint.Analyzer{
	Name: "detmerge",
	Doc:  "forbid map ranges, selects and goroutine spawns in //htap:deterministic functions",
	Run:  run,
}

func run(pass *lint.Pass) error {
	notes := pass.Annotations()
	if len(notes.Deterministic) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !notes.Deterministic[fn] {
				continue
			}
			checkBody(pass, fd, fn)
		}
	}
	return nil
}

func checkBody(pass *lint.Pass, fd *ast.FuncDecl, fn *types.Func) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				pass.Reportf(n.Pos(), "map iteration order is nondeterministic in //htap:deterministic %s", fn.Name())
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select chooses ready cases at random in //htap:deterministic %s", fn.Name())
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine interleaving is nondeterministic in //htap:deterministic %s", fn.Name())
		}
		return true
	})
}
