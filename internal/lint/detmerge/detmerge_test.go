package detmerge_test

import (
	"testing"

	"elastichtap/internal/lint/detmerge"
	"elastichtap/internal/lint/linttest"
)

func TestDetmerge(t *testing.T) {
	linttest.Run(t, ".", detmerge.Analyzer, "a")
}
