package a

//htap:deterministic
func mergeCounts(dst, src map[string]int64, keys []string) {
	for k, v := range src { // want `map iteration order is nondeterministic`
		dst[k] += v
	}
	for _, k := range keys { // slice order is stable: no report
		dst[k]++
	}
}

//htap:deterministic
func await(a, b chan int) int {
	select { // want `select chooses ready cases at random`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

//htap:deterministic
func spawn(f func()) {
	go f() // want `goroutine interleaving is nondeterministic`
}

func unannotated(m map[string]int) int {
	n := 0
	for range m { // not deterministic-annotated: no report
		n++
	}
	return n
}
