// Package guardedby checks that struct fields annotated
// //htap:guardedby <mu> are only touched by functions that hold the
// named mutex: scheduler placements, pool rings, tenant queues and the
// prepared-statement cache all carry the annotation, so a new code path
// reading them lock-free fails the build instead of racing.
//
// The analysis is flow-insensitive and keyed by lock identity rather
// than lock instance: a function "holds" (T, mu) if it calls
// <expr>.mu.Lock() or .RLock() on any expression of type T, or is
// annotated //htap:locked mu (callers then must hold the mutex at every
// call site). Accesses through a local built from a composite literal
// in the same function are exempt — no other goroutine can reach an
// object still under construction. Test files are skipped.
package guardedby

import (
	"go/ast"
	"go/types"

	"elastichtap/internal/lint"
)

// Analyzer is the guardedby check.
var Analyzer = &lint.Analyzer{
	Name: "guardedby",
	Doc:  "check //htap:guardedby fields are accessed only under their mutex",
	Run:  run,
}

// lockKey identifies a mutex by owner type and field name.
type lockKey struct {
	owner *types.TypeName
	field string
}

func key(ref lint.MutexRef) lockKey { return lockKey{ref.Type, ref.Field} }

func run(pass *lint.Pass) error {
	notes := pass.Annotations()
	if len(notes.GuardedBy) == 0 && len(notes.Locked) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || lint.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			checkFunc(pass, notes, fd, fn)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, notes *lint.Notes, fd *ast.FuncDecl, fn *types.Func) {
	info := pass.TypesInfo
	held := map[lockKey]bool{}
	for _, ref := range notes.Locked[fn] {
		held[key(ref)] = true
	}
	ctor := map[*types.Var]bool{}

	// Pass 1: lock acquisitions and constructor locals anywhere in the
	// body (flow-insensitive; defer Unlock keeps most functions honest).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if owner, field, ok := lockCall(info, n); ok {
				held[lockKey{owner, field}] = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || len(n.Lhs) != len(n.Rhs) {
					break
				}
				if !isCompositeLit(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if v, ok := info.Defs[id].(*types.Var); ok {
						ctor[v] = true
					} else if v, ok := info.Uses[id].(*types.Var); ok {
						ctor[v] = true
					}
				}
			}
		}
		return true
	})

	// Pass 2: guarded-field accesses and calls to locked functions.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			sel, ok := info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			fieldVar, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			ref, guarded := notes.GuardedBy[fieldVar]
			if !guarded || held[key(ref)] || underConstruction(info, ctor, n.X) {
				return true
			}
			pass.Reportf(n.Sel.Pos(), "%s accesses field %s (//htap:guardedby %s) without holding %s",
				fn.Name(), fieldVar.Name(), ref, ref)
		case *ast.CallExpr:
			callee := lint.FuncFor(info, n)
			if callee == nil {
				return true
			}
			refs, ok := notes.Locked[callee]
			if !ok {
				return true
			}
			var recv ast.Expr
			if se, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				recv = se.X
			}
			for _, ref := range refs {
				if held[key(ref)] {
					continue
				}
				if recv != nil && underConstruction(info, ctor, recv) {
					continue
				}
				pass.Reportf(n.Pos(), "%s calls %s (//htap:locked %s) without holding %s",
					fn.Name(), callee.Name(), ref, ref)
			}
		}
		return true
	})
}

// lockCall matches <expr>.<mu>.Lock() / .RLock() and resolves the mutex
// owner's named type and the mutex field name.
func lockCall(info *types.Info, call *ast.CallExpr) (*types.TypeName, string, bool) {
	method, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (method.Sel.Name != "Lock" && method.Sel.Name != "RLock") {
		return nil, "", false
	}
	mux, ok := ast.Unparen(method.X).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	owner := namedOf(info.TypeOf(mux.X))
	if owner == nil {
		return nil, "", false
	}
	return owner, mux.Sel.Name, true
}

// underConstruction reports whether the access base is (a chain rooted
// at) a local initialized from a composite literal in this function.
func underConstruction(info *types.Info, ctor map[*types.Var]bool, x ast.Expr) bool {
	x = ast.Unparen(x)
	if id, ok := x.(*ast.Ident); ok {
		v, ok := info.Uses[id].(*types.Var)
		return ok && ctor[v]
	}
	return false
}

func isCompositeLit(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}

func namedOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
