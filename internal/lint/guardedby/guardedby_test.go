package guardedby_test

import (
	"testing"

	"elastichtap/internal/lint/guardedby"
	"elastichtap/internal/lint/linttest"
)

func TestGuardedBy(t *testing.T) {
	linttest.Run(t, ".", guardedby.Analyzer, "a")
}
