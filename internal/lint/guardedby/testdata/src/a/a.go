package a

import "sync"

type Engine struct {
	mu sync.Mutex
	// queue holds pending work items.
	//htap:guardedby mu
	queue []int
	// closed is sticky once set.
	closed bool //htap:guardedby mu
}

func (e *Engine) Push(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queue = append(e.queue, v)
}

func (e *Engine) badLen() int {
	return len(e.queue) // want `accesses field queue \(//htap:guardedby Engine.mu\) without holding Engine.mu`
}

func (e *Engine) badClose() {
	e.closed = true // want `accesses field closed`
}

//htap:locked mu
func (e *Engine) drainLocked() {
	e.queue = e.queue[:0]
}

func (e *Engine) badDrain() {
	e.drainLocked() // want `calls drainLocked \(//htap:locked Engine.mu\) without holding Engine.mu`
}

func (e *Engine) goodDrain() {
	e.mu.Lock()
	e.drainLocked()
	e.mu.Unlock()
}

func NewEngine() *Engine {
	e := &Engine{}
	e.queue = make([]int, 0, 8) // under construction: no report
	return e
}

type worker struct {
	eng *Engine
}

//htap:locked Engine.mu
func (w *worker) stepLocked() {
	w.eng.queue = w.eng.queue[:0]
}

func (w *worker) badStep() {
	w.stepLocked() // want `calls stepLocked`
}

func (w *worker) goodStep() {
	w.eng.mu.Lock()
	w.stepLocked()
	w.eng.mu.Unlock()
}
