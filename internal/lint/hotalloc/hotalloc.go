// Package hotalloc reports heap allocations reachable from functions
// annotated //htap:hotpath: the per-morsel kernel loops, fused
// specializations, DRR dispatch and index probes whose steady state the
// runtime alloc-regression tests pin to zero. The analyzer walks the
// static same-package call graph from every hot root and flags
// allocation sites — make, new, append, map/slice/escaping composite
// literals, closures, goroutine spawns, string building and interface
// boxing of non-pointer values — in every function reached.
//
// //htap:coldpath stops the traversal: growth and setup work that
// amortizes to zero per morsel (table doubling, lazy dense arrays,
// scratch acquisition) lives behind cold helpers, keeping them out of
// the invariant without excusing the hot loop itself. Calls that cannot
// be resolved statically (interface dispatch, function values,
// cross-package calls) are not followed; cross-package hot callees are
// annotated and checked in their own package.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"elastichtap/internal/lint"
)

// Analyzer is the hotalloc check.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc:  "report heap allocations in //htap:hotpath functions and their static callees",
	Run:  run,
}

func run(pass *lint.Pass) error {
	notes := pass.Annotations()
	if len(notes.Hot) == 0 {
		return nil
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	checked := map[*types.Func]bool{}
	var visit func(fn *types.Func, root *types.Func)
	visit = func(fn, root *types.Func) {
		if checked[fn] || notes.Cold[fn] {
			return
		}
		checked[fn] = true
		decl := decls[fn]
		if decl == nil {
			return // declared in another file set (assembly, cross-package)
		}
		checkBody(pass, decl, fn, root)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lint.FuncFor(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			visit(callee, root)
			return true
		})
	}
	for fn := range notes.Hot {
		visit(fn, fn)
	}
	return nil
}

// checkBody reports every allocation site in one function body.
func checkBody(pass *lint.Pass, decl *ast.FuncDecl, fn, root *types.Func) {
	info := pass.TypesInfo
	suffix := ""
	if root != fn {
		suffix = " (reached from //htap:hotpath " + root.Name() + ")"
	}
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "heap allocation in hot path %s: %s%s", fn.Name(), what, suffix)
	}

	// Function expressions of calls don't themselves allocate (method
	// values used as call targets bind no closure).
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, report)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(lit.Pos(), "composite literal escapes via &")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal")
			case *types.Slice:
				report(n.Pos(), "slice literal")
			}
		case *ast.FuncLit:
			report(n.Pos(), "function literal (closure)")
		case *ast.GoStmt:
			report(n.Pos(), "go statement")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if b, ok := info.TypeOf(n).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					report(n.Pos(), "string concatenation")
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !callFuns[ast.Expr(n)] {
				report(n.Pos(), "method value (closure)")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && len(n.Rhs) == len(n.Lhs) {
					if t := info.TypeOf(n.Lhs[i]); boxes(info, t, rhs) {
						report(rhs.Pos(), "interface boxing on assignment")
					}
				}
			}
		case *ast.ReturnStmt:
			sig := fn.Type().(*types.Signature)
			if sig.Results().Len() == len(n.Results) {
				for i, r := range n.Results {
					if boxes(info, sig.Results().At(i).Type(), r) {
						report(r.Pos(), "interface boxing on return")
					}
				}
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, allocating conversions, and
// interface boxing of arguments.
func checkCall(pass *lint.Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			case "append":
				report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: string <-> []byte/[]rune copy, or boxing into an
		// interface type.
		dst := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			if isStringBytesConv(dst, src) {
				report(call.Pos(), "string conversion copies")
			}
			if boxes(info, dst, call.Args[0]) {
				report(call.Pos(), "interface boxing by conversion")
			}
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, pt, arg) {
			report(arg.Pos(), "interface boxing of argument")
		}
	}
}

// boxes reports whether assigning src to an interface-typed destination
// heap-allocates: the source is a concrete non-nil value that is not
// pointer-shaped (pointers, channels, maps and funcs store directly in
// the interface word).
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	st := tv.Type
	if types.IsInterface(st) {
		return false
	}
	switch u := st.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.Invalid {
			return false
		}
	}
	return true
}

func isStringBytesConv(dst, src types.Type) bool {
	return (isString(dst) && isByteSlice(src)) || (isByteSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
