package hotalloc_test

import (
	"testing"

	"elastichtap/internal/lint/hotalloc"
	"elastichtap/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, ".", hotalloc.Analyzer, "a")
}
