package a

type sink struct {
	vals []int64
	n    int
}

//htap:coldpath
func (s *sink) grow() {
	s.vals = append(s.vals, 0) // cold: amortized growth is allowed
}

func (s *sink) emit(v int64) {
	s.vals = append(s.vals, v) // want `append may grow its backing array`
}

//htap:hotpath
func (s *sink) push(v int64) {
	if len(s.vals) == cap(s.vals) {
		s.grow()
	}
	s.emit(v)
}

//htap:hotpath
func build(n int) []int64 {
	buf := make([]int64, n) // want `heap allocation in hot path build: make`
	for i := range buf {
		buf[i] = int64(i)
	}
	return buf
}

func take(x any)     {}
func varg(xs ...any) {}

//htap:hotpath
func boxArg(v int64, p *sink) {
	take(v) // want `interface boxing of argument`
	take(p) // pointer-shaped: stored directly, no report
	varg(v) // want `interface boxing of argument`
}

//htap:hotpath
func boxReturn(v int64) any {
	return v // want `interface boxing on return`
}

//htap:hotpath
func grabBag(a, b string, v int64) {
	_ = a + b              // want `string concatenation`
	_ = []int64{v}         // want `slice literal`
	_ = map[string]int64{} // want `map literal`
	p := &sink{}           // want `composite literal escapes via &`
	f := p.grow            // want `method value \(closure\)`
	f()
	g := func() {} // want `function literal \(closure\)`
	go g()         // want `go statement`
	var x any
	x = v      // want `interface boxing on assignment`
	x = any(v) // want `interface boxing by conversion`
	_ = x
	_ = []byte(a) // want `string conversion copies`
}

func colder() {
	_ = make([]int64, 8) // not reachable from a hot root: no report
}
