// Package lint is a minimal, dependency-free static-analysis framework
// in the shape of golang.org/x/tools/go/analysis, built on go/ast and
// go/types only (the module vendors nothing and CI builds offline). It
// exists to machine-check the invariants the engine's correctness rests
// on — zero-allocation hot paths, mutex-guarded state, deterministic
// merges, context plumbing, and the retirement of the deprecated linear
// join shims — via the htaplint multichecker (cmd/htaplint) and the
// per-analyzer unit tests (internal/lint/linttest).
//
// Analyzers see one package at a time: its parsed files, type
// information and the htap source annotations:
//
//	//htap:hotpath          function: it and its same-package callees
//	                        must not allocate (see hotalloc)
//	//htap:coldpath         function: amortized or setup work reachable
//	                        from a hot path; traversal stops here
//	//htap:guardedby <mu>   struct field: accessible only while holding
//	                        <mu> — a sibling mutex field ("mu") or a
//	                        qualified field of another struct in the
//	                        package ("Engine.mu")
//	//htap:locked <mu>      function: caller must hold <mu> on entry;
//	                        the body is checked as if holding it and
//	                        call sites are checked for it
//	//htap:deterministic    function: result-order-sensitive merge or
//	                        assembly code; no map ranges, selects or
//	                        goroutine spawns (see detmerge)
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's worth of inputs to an analyzer plus the
// Report sink for its findings.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. The driver wires it to output
	// collection; analyzers must not retain the Diagnostic.
	Report func(Diagnostic)

	notes *Notes
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// MutexRef names a mutex a field is guarded by or a function assumes
// held: the named struct type owning the mutex field, and the field's
// name. An unqualified annotation ("mu") resolves Type to the enclosing
// struct; a qualified one ("Engine.mu") names another type in the same
// package.
type MutexRef struct {
	Type  *types.TypeName
	Field string
}

func (m MutexRef) String() string {
	if m.Type == nil {
		return m.Field
	}
	return m.Type.Name() + "." + m.Field
}

// Notes is the package's parsed htap annotation set, keyed by the
// annotated objects.
type Notes struct {
	// Hot and Cold hold //htap:hotpath and //htap:coldpath functions.
	Hot  map[*types.Func]bool
	Cold map[*types.Func]bool
	// Deterministic holds //htap:deterministic functions.
	Deterministic map[*types.Func]bool
	// Locked maps a //htap:locked function to the mutexes its callers
	// must hold.
	Locked map[*types.Func][]MutexRef
	// GuardedBy maps a //htap:guardedby struct field to its mutex.
	GuardedBy map[*types.Var]MutexRef
}

// Annotations lazily parses and caches the package's htap directives.
func (p *Pass) Annotations() *Notes {
	if p.notes == nil {
		p.notes = collectNotes(p)
	}
	return p.notes
}

// directive extracts the argument of an //htap:<name> line in the
// comment group, reporting whether the directive is present at all.
func directive(cg *ast.CommentGroup, name string) (arg string, ok bool) {
	if cg == nil {
		return "", false
	}
	prefix := "//htap:" + name
	for _, c := range cg.List {
		rest, found := strings.CutPrefix(c.Text, prefix)
		if !found {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // longer directive name, e.g. hotpathx
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// resolveMutex parses a mutex reference against the package scope:
// "mu" names a field of owner (the annotated struct, or the method
// receiver's type); "Engine.mu" names a field of package type Engine.
func resolveMutex(p *Pass, spec string, owner *types.TypeName, at token.Pos) (MutexRef, bool) {
	typeName, field := owner, spec
	if dot := strings.IndexByte(spec, '.'); dot >= 0 {
		tn, f := spec[:dot], spec[dot+1:]
		obj := p.Pkg.Scope().Lookup(tn)
		named, ok := obj.(*types.TypeName)
		if !ok {
			p.Reportf(at, "htap annotation references unknown type %q", tn)
			return MutexRef{}, false
		}
		typeName, field = named, f
	}
	if typeName == nil {
		p.Reportf(at, "htap annotation %q needs a qualified Type.field mutex outside a struct", spec)
		return MutexRef{}, false
	}
	st, ok := typeName.Type().Underlying().(*types.Struct)
	if !ok || fieldByName(st, field) == nil {
		p.Reportf(at, "htap annotation references unknown mutex field %s.%s", typeName.Name(), field)
		return MutexRef{}, false
	}
	return MutexRef{Type: typeName, Field: field}, true
}

func fieldByName(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// ReceiverType returns the named type a method is declared on, or nil
// for plain functions.
func ReceiverType(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

func collectNotes(p *Pass) *Notes {
	n := &Notes{
		Hot:           map[*types.Func]bool{},
		Cold:          map[*types.Func]bool{},
		Deterministic: map[*types.Func]bool{},
		Locked:        map[*types.Func][]MutexRef{},
		GuardedBy:     map[*types.Var]MutexRef{},
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, ok := p.TypesInfo.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				if _, ok := directive(d.Doc, "hotpath"); ok {
					n.Hot[fn] = true
				}
				if _, ok := directive(d.Doc, "coldpath"); ok {
					n.Cold[fn] = true
				}
				if _, ok := directive(d.Doc, "deterministic"); ok {
					n.Deterministic[fn] = true
				}
				if arg, ok := directive(d.Doc, "locked"); ok {
					owner := ReceiverType(fn)
					for _, spec := range strings.Fields(arg) {
						if ref, ok := resolveMutex(p, spec, owner, d.Pos()); ok {
							n.Locked[fn] = append(n.Locked[fn], ref)
						}
					}
				}
			case *ast.GenDecl:
				collectFieldNotes(p, n, d)
			}
		}
	}
	return n
}

func collectFieldNotes(p *Pass, n *Notes, d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		owner, _ := p.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if owner == nil {
			continue
		}
		for _, field := range st.Fields.List {
			arg, ok := directive(field.Doc, "guardedby")
			if !ok {
				arg, ok = directive(field.Comment, "guardedby")
			}
			if !ok {
				continue
			}
			ref, ok := resolveMutex(p, arg, owner, field.Pos())
			if !ok {
				continue
			}
			for _, name := range field.Names {
				if v, ok := p.TypesInfo.Defs[name].(*types.Var); ok {
					n.GuardedBy[v] = ref
				}
			}
		}
	}
}

// FuncFor resolves a call expression to the static *types.Func it
// invokes, or nil for dynamic calls (interface methods, function
// values, builtins and conversions).
func FuncFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil // field call: dynamic
		}
		// Package-qualified call (pkg.Fn).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsTestFile reports whether the file a position belongs to is a _test.go
// file; analyzers skip those (tests synchronize their own way and may
// exercise deprecated surfaces on purpose).
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}
