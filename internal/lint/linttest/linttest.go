// Package linttest runs a lint.Analyzer over a testdata package and
// checks its diagnostics against // want "regexp" comments, in the
// shape of golang.org/x/tools/go/analysis/analysistest. A want comment
// expects one diagnostic on its own line whose message matches the
// quoted regular expression; several expectations may share a line:
//
//	buf := make([]int64, n) // want `heap allocation` `escapes`
//
// Diagnostics with no matching expectation, and expectations no
// diagnostic satisfied, both fail the test.
package linttest

import (
	"fmt"
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"elastichtap/internal/lint"
)

// wantRE captures the backquoted or double-quoted patterns of a want
// comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	met     bool
}

// Run analyzes testdata/src/<pkgpath> under dir with the analyzer and
// matches diagnostics against the package's want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkgpath string) {
	t.Helper()
	pkgdir := filepath.Join(dir, "testdata", "src", pkgpath)
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(pkgdir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", pkgdir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := lint.Check(fset, imp, pkgpath, pkgdir, files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	expects, err := collectWants(files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	findings, err := pkg.Run([]*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for _, f := range findings {
		if !claim(expects, f) {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// claim marks the first unmet expectation on the finding's line whose
// pattern matches, reporting whether one existed.
func claim(expects []*expectation, f lint.Finding) bool {
	base := filepath.Base(f.Pos.Filename)
	for _, e := range expects {
		if e.met || e.file != base || e.line != f.Pos.Line {
			continue
		}
		if e.pattern.MatchString(f.Message) {
			e.met = true
			return true
		}
	}
	return false
}

// collectWants scans the files for // want comments. It works on raw
// lines rather than the AST so expectations can sit on any line,
// including inside comment-only regions.
func collectWants(files []string) ([]*expectation, error) {
	var out []*expectation
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(path)
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			rest := line[idx+len("// want "):]
			matches := wantRE.FindAllStringSubmatch(rest, -1)
			if len(matches) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment", base, i+1)
			}
			for _, m := range matches {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", base, i+1, pat, err)
				}
				out = append(out, &expectation{file: base, line: i + 1, pattern: re})
			}
		}
	}
	return out, nil
}
