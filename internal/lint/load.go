package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Standard   bool
}

// Load resolves the patterns (e.g. "./...") with the go command and
// type-checks every non-test source file of each matched package. A
// single source-mode importer is shared across packages, so common
// dependencies type-check once.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errBuf.Bytes())
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := Check(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Check parses and type-checks one package from explicit file paths.
// linttest drives it directly over testdata trees the go command never
// sees.
func Check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: srcImporter{imp, dir}}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Pkg:        tpkg,
		TypesInfo:  info,
	}, nil
}

// srcImporter adapts the source-mode importer to resolve module-local
// import paths relative to the package under analysis (ImporterFrom
// needs a source directory; plain Import gives it none).
type srcImporter struct {
	imp types.Importer
	dir string
}

func (s srcImporter) Import(path string) (*types.Package, error) {
	if from, ok := s.imp.(types.ImporterFrom); ok {
		return from.ImportFrom(path, s.dir, 0)
	}
	return s.imp.Import(path)
}

// Run applies the analyzers to the package and returns the collected
// diagnostics in source order of reporting.
func (p *Package) Run(analyzers []*Analyzer) ([]Finding, error) {
	var found []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.TypesInfo,
		}
		pass.Report = func(d Diagnostic) {
			found = append(found, Finding{Analyzer: a.Name, Pos: p.Fset.Position(d.Pos), Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, p.ImportPath, err)
		}
	}
	return found, nil
}

// Finding is one diagnostic with its analyzer and resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}
