// Package noshims finishes the retirement of the linear join-chain
// API. Plan.Join, Plan.SemiJoin, Plan.On and Plan.JoinFilter are
// Deprecated: shims over the graph API (query.Rel / query.JoinOn /
// Plan.JoinGraph) and compile identically to a one-edge graph, so any
// remaining caller can migrate mechanically. This analyzer makes the
// migration one-way: calls to the shims are errors everywhere except
// the query package itself (which implements them) and _test.go files
// (which pin the shim-equals-graph equivalence on purpose).
//
// Matching is type-resolved, not textual: only methods of
// elastichtap/query.Plan are flagged, so unrelated methods that happen
// to be called On (topology placements, cost-model usage) stay quiet.
package noshims

import (
	"go/ast"

	"elastichtap/internal/lint"
)

// Analyzer is the noshims check.
var Analyzer = &lint.Analyzer{
	Name: "noshims",
	Doc:  "forbid the deprecated Plan.Join/SemiJoin/On/JoinFilter shims outside the query package and tests",
	Run:  run,
}

// shims are the deprecated methods of query.Plan.
var shims = map[string]bool{
	"Join":       true,
	"SemiJoin":   true,
	"On":         true,
	"JoinFilter": true,
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Path() == "elastichtap/query" {
		return nil
	}
	for _, f := range pass.Files {
		if lint.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.FuncFor(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "elastichtap/query" {
				return true
			}
			if !shims[fn.Name()] {
				return true
			}
			if recv := lint.ReceiverType(fn); recv == nil || recv.Name() != "Plan" {
				return true
			}
			// Anchor on the method name: in a builder chain the call
			// expression starts back at the head of the chain.
			pos := call.Pos()
			if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				pos = se.Sel.Pos()
			}
			pass.Reportf(pos, "call to deprecated query.Plan.%s; build the join as a graph with query.JoinOn and Plan.JoinGraph", fn.Name())
			return true
		})
	}
	return nil
}
