package noshims_test

import (
	"testing"

	"elastichtap/internal/lint/linttest"
	"elastichtap/internal/lint/noshims"
)

func TestNoshims(t *testing.T) {
	linttest.Run(t, ".", noshims.Analyzer, "a")
}
