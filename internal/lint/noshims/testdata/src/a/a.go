package a

import "elastichtap/query"

func linear() *query.Plan {
	return query.Scan("orders", "o_id", "o_carrier_id").
		Join("customer", "o_c_id", "c_id", "c_name"). // want `deprecated query.Plan.Join`
		On("o_w_id", "c_w_id").                       // want `deprecated query.Plan.On`
		JoinFilter(query.Eq("c_nation", int64(1))).   // want `deprecated query.Plan.JoinFilter`
		GroupBy("o_carrier_id").
		Agg(query.Count())
}

func semi() *query.Plan {
	return query.Scan("orderline", "ol_i_id", "ol_amount").
		SemiJoin("item", "ol_i_id", "i_id", query.Ge("i_price", int64(50))). // want `deprecated query.Plan.SemiJoin`
		Agg(query.Sum("ol_amount"))
}

// graph builds the same join shape through the supported API: no
// diagnostics.
func graph() *query.Plan {
	orders := query.Rel("orders")
	cust := query.Rel("customer")
	return query.Scan("orders", "o_id", "o_carrier_id").
		JoinGraph(query.JoinOn(orders, cust, "o_c_id", "c_id")).
		GroupBy("o_carrier_id").
		Agg(query.Count())
}

// filter is not a shim: no diagnostics.
func filtered() *query.Plan {
	return query.Scan("orders", "o_id").
		Filter(query.Eq("o_carrier_id", int64(0))).
		Agg(query.Count())
}
