// Package metrics aggregates observability counters from every engine into
// one snapshot, the basis for the operator-facing status report and for
// assertions in integration tests.
package metrics

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Tenant is one workload-manager tenant's observability row: admission
// occupancy and counters from the workload manager joined with the OLAP
// pool's measured morsel dispatch.
type Tenant struct {
	Name   string
	Weight int
	// Running and Queued are current admission-gate occupancy gauges.
	Running, Queued int
	// Admitted and Rejected count admissions; Rejected are the typed
	// ErrOverloaded backpressure rejections (queue depth or byte budget).
	Admitted, Rejected uint64
	// AdmissionWait is cumulative wall time spent queued for admission.
	AdmissionWait time.Duration
	// MorselsDispatched is the pool's measured dispatch counter — the
	// quantity weighted-fair shares are asserted on.
	MorselsDispatched int64
	// BytesScanned is the lifetime scanned-byte total charged against the
	// tenant's quota windows (cost-model-scaled units).
	BytesScanned int64
}

// Snapshot is a point-in-time view of the whole system.
type Snapshot struct {
	// Transactional engine.
	Commits     uint64
	Aborts      uint64
	WorkerCount int
	Retried     uint64
	Failed      uint64

	// Storage.
	Tables      int
	TotalRows   int64
	DirtyRows   int64 // update-indication bits pending instance sync
	FreshRows   int64 // rows the OLAP replicas lack
	VersionRows int   // live MVCC versions

	// Resource and data exchange.
	Switches   int64
	SyncedRows int64
	ETLBytes   int64

	// Scheduler.
	State         string
	OLTPCores     int
	OLAPCores     int
	OLAPPoolSize  int // live OLAP pool workers (tracks OLAPCores after resizes)
	FreshnessRate float64

	// Tenants are the workload manager's per-tenant rows, sorted by name.
	Tenants []Tenant
}

// WriteTo renders the snapshot as an aligned table.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	rows := []struct {
		k string
		v any
	}{
		{"state", s.State},
		{"oltp cores", s.OLTPCores},
		{"olap cores", s.OLAPCores},
		{"olap pool workers", s.OLAPPoolSize},
		{"commits", s.Commits},
		{"aborts", s.Aborts},
		{"txn retries", s.Retried},
		{"txn failures", s.Failed},
		{"tables", s.Tables},
		{"total rows", s.TotalRows},
		{"dirty rows (twin sync pending)", s.DirtyRows},
		{"fresh rows (replica lag)", s.FreshRows},
		{"mvcc versions", s.VersionRows},
		{"instance switches", s.Switches},
		{"synced rows", s.SyncedRows},
		{"etl bytes", s.ETLBytes},
		{"freshness rate", fmt.Sprintf("%.4f", s.FreshnessRate)},
	}
	var n int64
	for _, r := range rows {
		m, err := fmt.Fprintf(tw, "%s\t%v\n", r.k, r.v)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	if err := tw.Flush(); err != nil {
		return n, err
	}
	if len(s.Tenants) == 0 {
		return n, nil
	}
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	m, err := fmt.Fprintf(tw, "\ntenant\tweight\trunning\tqueued\tadmitted\trejected\twait\tmorsels\tbytes\n")
	n += int64(m)
	if err != nil {
		return n, err
	}
	for _, t := range s.Tenants {
		m, err := fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%v\t%d\t%d\n",
			t.Name, t.Weight, t.Running, t.Queued, t.Admitted, t.Rejected,
			t.AdmissionWait.Round(time.Millisecond), t.MorselsDispatched, t.BytesScanned)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, tw.Flush()
}

// String renders the snapshot (fmt.Stringer).
func (s Snapshot) String() string {
	var b strings.Builder
	_, _ = s.WriteTo(&b)
	return b.String()
}
