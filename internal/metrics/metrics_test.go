package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteToAndString(t *testing.T) {
	s := Snapshot{
		Commits:       42,
		Aborts:        3,
		State:         "S3-NI",
		OLTPCores:     10,
		OLAPCores:     18,
		Tables:        12,
		TotalRows:     1000,
		FreshRows:     50,
		FreshnessRate: 0.95,
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"S3-NI", "42", "0.9500", "commits", "freshness rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if s.String() != out {
		t.Fatal("String and WriteTo disagree")
	}
}

func TestZeroValueRenders(t *testing.T) {
	var s Snapshot
	if !strings.Contains(s.String(), "state") {
		t.Fatal("zero snapshot did not render")
	}
}
