package olap

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elastichtap/internal/costmodel"
	"elastichtap/internal/topology"
)

// cancelGateExec blocks every Consume until release is closed and counts the
// morsels that actually ran, so tests control exactly when workers sit
// mid-morsel.
type cancelGateExec struct {
	started  chan struct{} // one send per Consume entry
	release  chan struct{}
	consumed atomic.Int64
}

type cancelGateLocal struct{ e *cancelGateExec }

func (l *cancelGateLocal) Consume(b Block) {
	select {
	case l.e.started <- struct{}{}:
	default:
	}
	<-l.e.release
	l.e.consumed.Add(1)
}

func (e *cancelGateExec) NewLocal() Local { return &cancelGateLocal{e: e} }
func (e *cancelGateExec) Merge(locals []Local) Result {
	return Result{Cols: []string{"n"}, Rows: [][]float64{{float64(e.consumed.Load())}}}
}

// awaitCancelDelivery blocks until the task's cancellation (delivered
// asynchronously by context.AfterFunc) has marked the task, so tests can
// release gated morsels knowing no further queue work will be claimed.
func awaitCancelDelivery(t *testing.T, e *Engine, task *Task) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		e.mu.Lock()
		marked := task.err != nil
		e.mu.Unlock()
		if marked {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("cancellation never delivered")
}

type cancelGateQuery struct{ exec *cancelGateExec }

func (q *cancelGateQuery) Name() string               { return "gate" }
func (q *cancelGateQuery) Class() costmodel.WorkClass { return costmodel.ScanReduce }
func (q *cancelGateQuery) FactTable() string          { return "t" }
func (q *cancelGateQuery) Columns() []int             { return []int{0} }
func (q *cancelGateQuery) Prepare() (Exec, int64)     { return q.exec, 0 }

// TestCancelDiscardsUnclaimedMorsels holds two workers mid-morsel,
// cancels, and verifies the remaining queue is dropped: cancellation is
// observed within one morsel's work, the error wraps both ErrCancelled
// and the context cause, and the pool stays fully usable.
func TestCancelDiscardsUnclaimedMorsels(t *testing.T) {
	const n = 100_000 // 7 chunk-aligned morsels
	tab := buildTable(n)
	e := NewEngine(1)
	defer e.Close()
	e.SetPlacement(topology.Placement{PerSocket: []int{2}})
	src := Source{Table: tab, Parts: []Part{{Data: tab.Active(), Lo: 0, Hi: n, Socket: 0}}}

	exec := &cancelGateExec{started: make(chan struct{}, 16), release: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	task, err := e.Submit(&cancelGateQuery{exec: exec}, src)
	if err != nil {
		t.Fatal(err)
	}
	stats := make(chan Stats, 1)
	werr := make(chan error, 1)
	go func() {
		_, st, werr2 := task.WaitContext(ctx)
		stats <- st
		werr <- werr2
	}()
	<-exec.started // at least one worker is mid-morsel
	cancel()
	awaitCancelDelivery(t, e, task)
	close(exec.release)
	st, err := <-stats, <-werr
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	// At most one in-flight morsel per worker ran to completion; the rest
	// of the queue was discarded at the cancel.
	if got := exec.consumed.Load(); got > 2 {
		t.Fatalf("consumed %d morsels after cancel, want <= 2 (one per worker)", got)
	}
	if st.Morsels != 7 {
		t.Fatalf("morsels = %d, want 7", st.Morsels)
	}

	// The pool must be intact: a follow-up query on the same engine
	// computes the exact sum.
	res, _, err := e.ExecuteContext(context.Background(), &sumQuery{exec: &sumExec{}}, src)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(n) * (n - 1) / 2; res.Rows[0][0] != want {
		t.Fatalf("follow-up sum = %v, want %v", res.Rows[0][0], want)
	}
}

// TestCancelBeforeAnyWork cancels a context before submission: the
// execute call must fail without touching the pool.
func TestCancelBeforeAnyWork(t *testing.T) {
	tab := buildTable(1000)
	e := NewEngine(1)
	defer e.Close()
	e.SetPlacement(topology.Placement{PerSocket: []int{1}})
	src := Source{Table: tab, Parts: []Part{{Data: tab.Active(), Lo: 0, Hi: 1000, Socket: 0}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.ExecuteContext(ctx, &sumQuery{exec: &sumExec{}}, src)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
}

// TestCancelOnEmptyPoolInlineDrain cancels while the submitting goroutine
// is the only drainer (zero placement): the drain must stop at the next
// morsel boundary instead of finishing the scan.
func TestCancelOnEmptyPoolInlineDrain(t *testing.T) {
	const n = 100_000
	tab := buildTable(n)
	e := NewEngine(1) // pool stays empty: no SetPlacement
	defer e.Close()
	src := Source{Table: tab, Parts: []Part{{Data: tab.Active(), Lo: 0, Hi: n, Socket: 0}}}

	exec := &cancelGateExec{started: make(chan struct{}, 16), release: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	task, err := e.Submit(&cancelGateQuery{exec: exec}, src)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _, werr := task.WaitContext(ctx)
		done <- werr
	}()
	<-exec.started // inline drainer is mid-morsel
	cancel()
	awaitCancelDelivery(t, e, task)
	close(exec.release)
	if werr := <-done; !errors.Is(werr, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", werr)
	}
	if got := exec.consumed.Load(); got > 1 {
		t.Fatalf("inline drain consumed %d morsels after cancel, want <= 1", got)
	}
}

// TestCancelRacesResizeAndSecondQuery exercises cancel against work
// stealing, mid-query pool resizes and a concurrent uncancelled query
// under the race detector: the survivor must stay exact every round.
func TestCancelRacesResizeAndSecondQuery(t *testing.T) {
	const n = 200_000
	tab := buildTable(n)
	e := NewEngine(2)
	defer e.Close()
	e.SetPlacement(topology.Placement{PerSocket: []int{2, 2}})
	// Half the rows homed per socket so stealing has cross-socket work.
	src := Source{Table: tab, Parts: []Part{
		{Data: tab.Active(), Lo: 0, Hi: n / 2, Socket: 0},
		{Data: tab.Active(), Lo: n / 2, Hi: n, Socket: 1},
	}}
	want := float64(n) * (n - 1) / 2

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // elastic resize churn
		defer wg.Done()
		sizes := []topology.Placement{
			{PerSocket: []int{1, 3}},
			{PerSocket: []int{3, 1}},
			{PerSocket: []int{2, 2}},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.SetPlacement(sizes[i%len(sizes)])
		}
	}()
	for round := 0; round < 30; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		victim, err := e.Submit(&sumQuery{exec: &sumExec{}}, src)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cancel() // races claim/steal/finish on the victim
		}()
		res, _, err := e.ExecuteContext(context.Background(), &sumQuery{exec: &sumExec{}}, src)
		if err != nil {
			t.Fatalf("round %d: survivor: %v", round, err)
		}
		if res.Rows[0][0] != want {
			t.Fatalf("round %d: survivor sum = %v, want %v", round, res.Rows[0][0], want)
		}
		if _, _, err := victim.WaitContext(ctx); err != nil && !errors.Is(err, ErrCancelled) {
			t.Fatalf("round %d: victim err = %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
}
