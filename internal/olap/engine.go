package olap

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/topology"
)

// ErrClosed reports a submission to an engine whose pool has been
// retired by Close. The facade re-exports it as elastichtap.ErrClosed.
var ErrClosed = errors.New("engine closed")

// ErrCancelled reports a query abandoned before completion — a
// cancelled or expired context, or an explicit Handle.Cancel. Errors
// returned for cancelled work wrap both ErrCancelled and the context's
// own cause, so errors.Is distinguishes context.Canceled from
// context.DeadlineExceeded while errors.Is(err, ErrCancelled) catches
// either. The facade re-exports it as elastichtap.ErrCancelled.
var ErrCancelled = errors.New("query cancelled")

// CancelErr wraps a context cause into the engine's typed cancellation
// error; a nil cause yields ErrCancelled alone.
func CancelErr(cause error) error {
	if cause == nil {
		return ErrCancelled
	}
	return fmt.Errorf("%w: %w", ErrCancelled, cause)
}

// Block is one morsel of aligned column vectors handed to an executor.
// Cols[k] corresponds to the k-th requested column; all slices share
// length N and start at absolute row Base.
type Block struct {
	Base int64
	N    int
	Cols [][]int64
}

// Local is per-morsel executor state; Consume is called exactly once per
// Local, from a single goroutine, so implementations need no locking.
// Partial states merge in morsel order, which keeps results bitwise
// deterministic no matter which worker ran which morsel (see Exec.Merge).
type Local interface {
	Consume(b Block)
}

// Exec is a prepared query: it creates per-morsel state and merges it into
// a final result. Implementations live with the workload definitions
// (internal/ch) — the engine is query-agnostic, mirroring the paper's
// plugin design.
//
// NewLocal is called serially at task admission, once per morsel. Merge
// receives the locals in morsel order — ascending absolute row ranges —
// regardless of worker interleaving or cross-socket stealing, so a Merge
// that combines partials in slice order produces bit-identical float
// results across runs, placements and mid-query resizes.
type Exec interface {
	NewLocal() Local
	Merge(locals []Local) Result
}

// Query describes an analytical query to the engine and the scheduler.
type Query interface {
	// Name is the query's display name ("Q6").
	Name() string
	// Class is the CPU-intensity class for the cost model.
	Class() costmodel.WorkClass
	// FactTable names the scanned fact table.
	FactTable() string
	// Columns returns the fact-table column indexes the scan touches.
	Columns() []int
	// Prepare builds the executor, reading any dimension (build-side)
	// state; it returns the build-side bytes for broadcast costing.
	Prepare() (Exec, int64)
}

// Result is a small materialized result set.
type Result struct {
	Cols []string
	Rows [][]float64
	// SortedRows is how many merged rows passed through an ordered merge
	// (SortRows) — the sort volume the cost model charges per row. Zero
	// for unordered queries; for top-k queries it counts the rows sorted,
	// not the rows kept.
	SortedRows int64
}

// Stats reports what one execution actually touched.
type Stats struct {
	RowsScanned int64
	// BytesAt[s] is payload homed on socket s.
	BytesAt []int64
	// BuildBytes is broadcast build-side volume.
	BuildBytes int64
	// Workers is the number of distinct pool workers that consumed at
	// least one morsel — never more than the morsel count, and it grows or
	// shrinks when the RDE engine resizes the pool mid-query.
	Workers int
	// Morsels is the task's total morsel count.
	Morsels int
	// LocalMorsels / StolenMorsels count morsels consumed by a worker on
	// the morsel's home socket versus pulled across sockets by work
	// stealing. These are measured, not modeled.
	LocalMorsels, StolenMorsels int64
	// StolenBytesAt[s] is the measured payload homed on socket s that
	// remote workers consumed; it feeds the cost model's cross-socket
	// attribution in place of a purely modeled split.
	StolenBytesAt []int64
}

// Engine executes queries with a persistent worker pool whose size and
// placement the RDE engine adjusts while queries run (the OLAP Worker
// Manager, §3.3). One goroutine runs per allocated core; each socket has a
// FIFO morsel queue with socket-affine dispatch, and idle workers steal
// from other sockets' tails. Multiple Submit callers share the pool
// concurrently; SetPlacement resizes it incrementally and takes effect
// mid-query.
type Engine struct {
	sockets int

	mu   sync.Mutex
	cond *sync.Cond
	//htap:guardedby mu
	placement topology.Placement
	workers   [][]*worker //htap:guardedby mu
	//htap:guardedby mu
	stopping map[int]*worker // retired workers whose goroutines are still draining
	nlive    int             //htap:guardedby mu
	nextID   int             //htap:guardedby mu
	//htap:guardedby mu
	tasks []*Task // admission order, across all tenants
	// tenants/ring/cur are the weighted-fair dispatcher's state: one
	// runnable list per tenant, served deficit-round-robin (see grab in
	// tenant.go). A pool that only ever sees untenanted submissions has a
	// single "default" entry and dispatches exactly as before.
	tenants map[string]*tenantQueue //htap:guardedby mu
	ring    []*tenantQueue          //htap:guardedby mu
	cur     int                     //htap:guardedby mu
	closed  bool                    //htap:guardedby mu
}

// NewEngine returns an engine for a machine with the given socket count.
// The pool starts empty; SetPlacement populates it.
func NewEngine(sockets int) *Engine {
	if sockets < 1 {
		sockets = 1
	}
	e := &Engine{
		sockets:  sockets,
		workers:  make([][]*worker, sockets),
		stopping: map[int]*worker{},
		tenants:  map[string]*tenantQueue{},
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Sockets returns the engine's socket count.
func (e *Engine) Sockets() int { return e.sockets }

// SetPlacement resizes the worker pool to the given core allocation. The
// resize is incremental and takes effect immediately, mid-query: sockets
// gaining cores spawn workers that start stealing queued morsels at once;
// sockets losing cores retire their most recently granted workers, which
// finish their in-flight morsel and exit (a retiring worker stays on as
// caretaker while queued morsels remain and no active worker exists, so a
// shrink to zero can never strand a running task).
func (e *Engine) SetPlacement(p topology.Placement) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return // Close retired the pool for good; don't spawn orphans
	}
	if e.placement.Equal(p) {
		return // idempotent re-application (e.g. re-entering a state)
	}
	delta := e.placement.Diff(p)
	for s := 0; s < e.sockets && s < len(delta); s++ {
		switch {
		case delta[s] > 0:
			for i := 0; i < delta[s]; i++ {
				w := &worker{e: e, socket: s, id: e.nextID}
				e.nextID++
				e.workers[s] = append(e.workers[s], w)
				e.nlive++
				go w.run()
			}
		case delta[s] < 0:
			for i := 0; i < -delta[s] && len(e.workers[s]) > 0; i++ {
				last := len(e.workers[s]) - 1
				w := e.workers[s][last]
				e.workers[s] = e.workers[s][:last]
				w.stop = true
				e.stopping[w.id] = w
			}
		}
	}
	e.placement = p.Clone()
	e.cond.Broadcast()
}

// Placement returns the current allocation.
func (e *Engine) Placement() topology.Placement {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.placement.Clone()
}

// PoolSize returns the number of active (non-retiring) workers.
func (e *Engine) PoolSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.activeWorkers()
}

//htap:locked mu
func (e *Engine) activeWorkers() int {
	n := 0
	for _, ws := range e.workers {
		n += len(ws)
	}
	return n
}

// Close retires every worker and waits for their goroutines to exit after
// draining any queued morsels. Submitting to a closed engine fails.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	for s, ws := range e.workers {
		for _, w := range ws {
			w.stop = true
			e.stopping[w.id] = w
		}
		e.workers[s] = nil
	}
	e.placement = topology.Placement{PerSocket: make([]int, e.sockets)}
	e.cond.Broadcast()
	for e.nlive > 0 {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

type morsel struct {
	part   int
	lo, hi int64
	socket int
}

// ExecuteContext runs the query over the source on the shared worker
// pool and returns the materialized result plus scan statistics. It is
// Submit followed by WaitContext; concurrent callers interleave their
// morsels on the same workers. When ctx is cancelled or its deadline
// expires the task is cancelled at the next morsel boundary (see
// Task.Cancel) and the call returns an error wrapping ErrCancelled and
// the context's cause. The pool stays fully usable afterwards.
func (e *Engine) ExecuteContext(ctx context.Context, q Query, src Source) (Result, Stats, error) {
	return e.ExecuteTenantContext(ctx, q, src, TenantInfo{})
}

// ExecuteTenantContext is ExecuteContext on behalf of a tenant: the task
// joins the tenant's runnable list and competes for workers under the
// weighted-fair dispatcher. The zero TenantInfo is the default tenant.
func (e *Engine) ExecuteTenantContext(ctx context.Context, q Query, src Source, tn TenantInfo) (Result, Stats, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, Stats{}, CancelErr(err)
	}
	t, err := e.SubmitTenant(q, src, tn)
	if err != nil {
		return Result{}, Stats{}, err
	}
	return t.WaitContext(ctx)
}

// Submit admits a query to the pool: work splits into chunk-aligned
// morsels enqueued on their home socket's queue, one Local is created per
// morsel (never more — there is no state for workers that end up with
// nothing to do), and parked workers wake. When the pool is empty at
// admission the submitting goroutine drains the task itself during Wait,
// so a zero placement still makes progress. The task runs as the default
// tenant; SubmitTenant attributes it to a weighted tenant instead.
func (e *Engine) Submit(q Query, src Source) (*Task, error) {
	return e.SubmitTenant(q, src, TenantInfo{})
}

// SubmitTenant is Submit on behalf of a tenant: the task joins the
// tenant's runnable list, and the pool's deficit-round-robin dispatcher
// serves backlogged tenants in proportion to their weights (see grab).
func (e *Engine) SubmitTenant(q Query, src Source, tn TenantInfo) (*Task, error) {
	// Queries carrying a deferred construction error (olap.Invalid, an
	// unstamped prepared statement) must not reach Prepare.
	if v, ok := q.(interface{ Err() error }); ok {
		if err := v.Err(); err != nil {
			return nil, err
		}
	}
	if err := src.Validate(); err != nil {
		return nil, err
	}
	exec, buildBytes := q.Prepare()
	cols := q.Columns()

	t := &Task{
		e:     e,
		exec:  exec,
		cols:  cols,
		src:   src,
		seen:  map[int]struct{}{},
		queue: make([][]int, e.sockets),
		heads: make([]int, e.sockets),
		done:  make(chan struct{}),
	}
	for pi, p := range src.Parts {
		for lo := p.Lo; lo < p.Hi; {
			hi := (lo/columnar.ChunkSize + 1) * columnar.ChunkSize
			if hi > p.Hi {
				hi = p.Hi
			}
			sock := p.Socket
			if sock < 0 || sock >= e.sockets {
				sock = 0
			}
			t.morsels = append(t.morsels, morsel{part: pi, lo: lo, hi: hi, socket: sock})
			lo = hi
		}
	}
	t.locals = make([]Local, len(t.morsels))
	for i := range t.locals {
		t.locals[i] = exec.NewLocal()
	}
	t.unclaimed = len(t.morsels)
	t.remaining = len(t.morsels)
	t.stats = Stats{
		RowsScanned:   src.Rows(),
		BytesAt:       src.BytesAt(e.sockets, len(cols)),
		BuildBytes:    buildBytes,
		Morsels:       len(t.morsels),
		StolenBytesAt: make([]int64, e.sockets),
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("olap: Submit %s: %w", q.Name(), ErrClosed)
	}
	for i, m := range t.morsels {
		t.queue[m.socket] = append(t.queue[m.socket], i)
	}
	if t.remaining == 0 {
		close(t.done)
	} else {
		t.tq = e.tenantFor(tn)
		t.tq.tasks = append(t.tq.tasks, t)
		e.tasks = append(e.tasks, t)
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	return t, nil
}

// queuesEmpty reports whether any admitted task still has unclaimed
// morsels. Callers hold e.mu.
//
//htap:locked mu
func (e *Engine) queuesEmpty() bool {
	for _, t := range e.tasks {
		if t.unclaimed > 0 {
			return false
		}
	}
	return true
}

// removeTask drops a completed task from the admission list and its
// tenant's runnable list. Callers hold e.mu.
//
//htap:locked mu
func (e *Engine) removeTask(t *Task) {
	if t.tq != nil {
		t.tq.removeTask(t)
	}
	for i, x := range e.tasks {
		if x == t {
			e.tasks = append(e.tasks[:i], e.tasks[i+1:]...)
			return
		}
	}
}
