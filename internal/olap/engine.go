package olap

import (
	"sync"
	"sync/atomic"

	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/topology"
)

// Block is one morsel of aligned column vectors handed to an executor.
// Cols[k] corresponds to the k-th requested column; all slices share
// length N and start at absolute row Base.
type Block struct {
	Base int64
	N    int
	Cols [][]int64
}

// Local is per-worker executor state; Consume is called from exactly one
// goroutine per Local, so implementations need no locking.
type Local interface {
	Consume(b Block)
}

// Exec is a prepared query: it creates per-worker state and merges it into
// a final result. Implementations live with the workload definitions
// (internal/ch) — the engine is query-agnostic, mirroring the paper's
// plugin design.
type Exec interface {
	NewLocal() Local
	Merge(locals []Local) Result
}

// Query describes an analytical query to the engine and the scheduler.
type Query interface {
	// Name is the query's display name ("Q6").
	Name() string
	// Class is the CPU-intensity class for the cost model.
	Class() costmodel.WorkClass
	// FactTable names the scanned fact table.
	FactTable() string
	// Columns returns the fact-table column indexes the scan touches.
	Columns() []int
	// Prepare builds the executor, reading any dimension (build-side)
	// state; it returns the build-side bytes for broadcast costing.
	Prepare() (Exec, int64)
}

// Result is a small materialized result set.
type Result struct {
	Cols []string
	Rows [][]float64
}

// Stats reports what one execution actually touched.
type Stats struct {
	RowsScanned int64
	// BytesAt[s] is payload read from socket s.
	BytesAt []int64
	// BuildBytes is broadcast build-side volume.
	BuildBytes int64
	// Workers is the number of goroutines used.
	Workers int
}

// Engine executes queries with a worker pool whose size and placement the
// RDE engine adjusts (the OLAP Worker Manager, §3.3).
type Engine struct {
	mu        sync.Mutex
	placement topology.Placement
	sockets   int
}

// NewEngine returns an engine for a machine with the given socket count.
func NewEngine(sockets int) *Engine {
	return &Engine{sockets: sockets}
}

// SetPlacement installs the worker pool's core allocation.
func (e *Engine) SetPlacement(p topology.Placement) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.placement = p.Clone()
}

// Placement returns the current allocation.
func (e *Engine) Placement() topology.Placement {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.placement.Clone()
}

type morsel struct {
	part   int
	lo, hi int64
}

// Execute runs the query over the source with the current worker pool and
// returns the materialized result plus scan statistics. Work is split into
// chunk-aligned morsels consumed by one goroutine per allocated core with
// thread-local state, merged at the end — the paper's pipelined block
// routing, with the NUMA effects charged separately by the cost model.
func (e *Engine) Execute(q Query, src Source) (Result, Stats, error) {
	if err := src.Validate(); err != nil {
		return Result{}, Stats{}, err
	}
	exec, buildBytes := q.Prepare()
	cols := q.Columns()

	workers := e.Placement().Total()
	if workers < 1 {
		workers = 1
	}

	var morsels []morsel
	for pi, p := range src.Parts {
		for lo := p.Lo; lo < p.Hi; {
			hi := (lo/columnar.ChunkSize + 1) * columnar.ChunkSize
			if hi > p.Hi {
				hi = p.Hi
			}
			morsels = append(morsels, morsel{part: pi, lo: lo, hi: hi})
			lo = hi
		}
	}

	locals := make([]Local, workers)
	for i := range locals {
		locals[i] = exec.NewLocal()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := locals[w]
			blk := Block{Cols: make([][]int64, len(cols))}
			for {
				i := next.Add(1) - 1
				if i >= int64(len(morsels)) {
					return
				}
				m := morsels[i]
				p := src.Parts[m.part]
				for k, c := range cols {
					blk.Cols[k] = p.Data.Col(c).Slice(m.lo, m.hi)
				}
				blk.Base = m.lo
				blk.N = int(m.hi - m.lo)
				local.Consume(blk)
			}
		}(w)
	}
	wg.Wait()

	res := exec.Merge(locals)
	st := Stats{
		RowsScanned: src.Rows(),
		BytesAt:     src.BytesAt(e.sockets, len(cols)),
		BuildBytes:  buildBytes,
		Workers:     workers,
	}
	return res, st, nil
}
