package olap

import (
	"context"
	"testing"

	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/topology"
)

// sumExec sums column 0; a minimal Exec for engine tests.
type sumExec struct{}

type sumLocal struct{ sum int64 }

func (l *sumLocal) Consume(b Block) {
	for _, v := range b.Cols[0] {
		l.sum += v
	}
}

func (e *sumExec) NewLocal() Local { return &sumLocal{} }

func (e *sumExec) Merge(locals []Local) Result {
	var s int64
	for _, l := range locals {
		s += l.(*sumLocal).sum
	}
	return Result{Cols: []string{"sum"}, Rows: [][]float64{{float64(s)}}}
}

type sumQuery struct{ exec *sumExec }

func (q *sumQuery) Name() string               { return "sum" }
func (q *sumQuery) Class() costmodel.WorkClass { return costmodel.ScanReduce }
func (q *sumQuery) FactTable() string          { return "t" }
func (q *sumQuery) Columns() []int             { return []int{0} }
func (q *sumQuery) Prepare() (Exec, int64)     { return q.exec, 0 }

func buildTable(n int64) *columnar.Table {
	tab := columnar.NewTable(columnar.Schema{
		Name:    "t",
		Columns: []columnar.ColumnDef{{Name: "v", Type: columnar.Int64}},
	}, n)
	batch := make([][]int64, 0, 4096)
	for i := int64(0); i < n; i++ {
		batch = append(batch, []int64{i})
		if len(batch) == 4096 {
			tab.AppendRows(batch, 0)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		tab.AppendRows(batch, 0)
	}
	return tab
}

func TestExecuteSumSinglePart(t *testing.T) {
	const n = 100_000
	tab := buildTable(n)
	e := NewEngine(2)
	e.SetPlacement(topology.Placement{PerSocket: []int{0, 8}})
	src := Source{Table: tab, Parts: []Part{
		{Data: tab.Active(), Lo: 0, Hi: n, Socket: 0},
	}}
	res, st, err := e.ExecuteContext(context.Background(), &sumQuery{exec: &sumExec{}}, src)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * (n - 1) / 2
	if res.Rows[0][0] != want {
		t.Fatalf("sum = %v, want %v", res.Rows[0][0], want)
	}
	if st.RowsScanned != n {
		t.Fatalf("rows scanned = %d", st.RowsScanned)
	}
	if st.BytesAt[0] != n*8 || st.BytesAt[1] != 0 {
		t.Fatalf("bytes = %v", st.BytesAt)
	}
	// 100k rows split into ceil(100000/16384) = 7 chunk-aligned morsels;
	// participants are capped by the morsel count, not the 8-core pool.
	if st.Morsels != 7 {
		t.Fatalf("morsels = %d, want 7", st.Morsels)
	}
	if st.Workers < 1 || st.Workers > st.Morsels {
		t.Fatalf("workers = %d, want within [1,%d]", st.Workers, st.Morsels)
	}
	if st.LocalMorsels+st.StolenMorsels != int64(st.Morsels) {
		t.Fatalf("morsel accounting: local %d + stolen %d != %d",
			st.LocalMorsels, st.StolenMorsels, st.Morsels)
	}
}

func TestExecuteSplitPartsEquivalent(t *testing.T) {
	const n = 50_000
	tab := buildTable(n)
	e := NewEngine(2)
	e.SetPlacement(topology.Placement{PerSocket: []int{2, 2}})
	single := Source{Table: tab, Parts: []Part{
		{Data: tab.Active(), Lo: 0, Hi: n, Socket: 0},
	}}
	split := Source{Table: tab, Parts: []Part{
		{Data: tab.Active(), Lo: 0, Hi: n / 3, Socket: 1},
		{Data: tab.Active(), Lo: n / 3, Hi: n, Socket: 0},
	}}
	r1, _, err := e.ExecuteContext(context.Background(), &sumQuery{exec: &sumExec{}}, single)
	if err != nil {
		t.Fatal(err)
	}
	r2, st2, err := e.ExecuteContext(context.Background(), &sumQuery{exec: &sumExec{}}, split)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0] != r2.Rows[0][0] {
		t.Fatalf("split access changed the result: %v vs %v", r1.Rows[0][0], r2.Rows[0][0])
	}
	if st2.BytesAt[1] == 0 || st2.BytesAt[0] == 0 {
		t.Fatalf("split bytes not attributed per socket: %v", st2.BytesAt)
	}
}

func TestExecuteZeroWorkersFallsBackToOne(t *testing.T) {
	tab := buildTable(1000)
	e := NewEngine(2)
	e.SetPlacement(topology.Placement{PerSocket: []int{0, 0}})
	src := Source{Table: tab, Parts: []Part{{Data: tab.Active(), Lo: 0, Hi: 1000, Socket: 0}}}
	res, st, err := e.ExecuteContext(context.Background(), &sumQuery{exec: &sumExec{}}, src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 {
		t.Fatalf("workers = %d, want fallback 1", st.Workers)
	}
	if res.Rows[0][0] != float64(1000*999/2) {
		t.Fatal("wrong sum")
	}
}

func TestExecuteEmptySource(t *testing.T) {
	tab := buildTable(10)
	e := NewEngine(2)
	e.SetPlacement(topology.Placement{PerSocket: []int{1, 0}})
	src := Source{Table: tab, Parts: nil}
	res, st, err := e.ExecuteContext(context.Background(), &sumQuery{exec: &sumExec{}}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 0 || st.RowsScanned != 0 {
		t.Fatal("empty source must produce zero")
	}
}

func TestSourceValidate(t *testing.T) {
	tab := buildTable(10)
	bad := Source{Table: nil}
	if bad.Validate() == nil {
		t.Fatal("nil table must fail")
	}
	bad = Source{Table: tab, Parts: []Part{{Data: nil, Lo: 0, Hi: 5}}}
	if bad.Validate() == nil {
		t.Fatal("nil data must fail")
	}
	bad = Source{Table: tab, Parts: []Part{{Data: tab.Active(), Lo: 5, Hi: 1}}}
	if bad.Validate() == nil {
		t.Fatal("inverted range must fail")
	}
}

func TestPartRows(t *testing.T) {
	p := Part{Lo: 10, Hi: 25}
	if p.Rows() != 15 {
		t.Fatalf("Rows = %d", p.Rows())
	}
	if (Part{Lo: 5, Hi: 2}).Rows() != 0 {
		t.Fatal("inverted range must report 0 rows")
	}
}
