package olap

import (
	"context"
	"math"
	"sync"
	"testing"

	"elastichtap/internal/topology"
)

// TestDRRSharesMatchWeights drives the dispatcher synchronously — no
// workers, grab called directly under the engine lock — so the measured
// shares are fully deterministic: while every tenant stays backlogged,
// deficit-round-robin hands each tenant morsels in exact proportion to
// its weight, within one quantum per tenant.
func TestDRRSharesMatchWeights(t *testing.T) {
	const rows = 16384 * 16 // 16 morsels per task
	tab := buildTable(rows)
	e := NewEngine(1) // no placement: no workers compete with the test
	src := Source{Table: tab, Parts: []Part{{Data: tab.Active(), Lo: 0, Hi: rows, Socket: 0}}}

	weights := map[string]int{"gold": 4, "silver": 2, "bronze": 1}
	for name, w := range weights {
		// Two tasks per tenant: dispatch must also round-robin correctly
		// when a tenant's backlog spans tasks.
		for i := 0; i < 2; i++ {
			if _, err := e.SubmitTenant(&sumQuery{exec: &sumExec{}}, src, TenantInfo{Name: name, Weight: w}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Serve 7 full DRR rounds (4+2+1 = 7 morsels per round); every tenant
	// still has backlog afterwards (32 morsels each, gold spends 28), so
	// the measured shares are the steady-state contention shares.
	const serve = 7 * 7
	e.mu.Lock()
	for i := 0; i < serve; i++ {
		task, _, _ := e.grab(0)
		if task == nil {
			e.mu.Unlock()
			t.Fatalf("dispatcher ran dry after %d grabs", i)
		}
	}
	e.mu.Unlock()

	disp := e.TenantDispatch()
	var total int64
	for _, n := range disp {
		total += n
	}
	if total != serve {
		t.Fatalf("dispatched %d morsels, want %d", total, serve)
	}
	for name, w := range weights {
		wantShare := float64(w) / 7
		gotShare := float64(disp[name]) / float64(total)
		if math.Abs(gotShare-wantShare) > 0.01 {
			t.Errorf("tenant %s share = %.4f, want %.4f (dispatch %v)", name, gotShare, wantShare, disp)
		}
	}
}

// TestDRRIdleTenantYieldsPool: with only one tenant backlogged, it
// receives every morsel — weights bound contention shares, they never
// leave the pool idle.
func TestDRRIdleTenantYieldsPool(t *testing.T) {
	const rows = 16384 * 8
	tab := buildTable(rows)
	e := NewEngine(1)
	src := Source{Table: tab, Parts: []Part{{Data: tab.Active(), Lo: 0, Hi: rows, Socket: 0}}}

	// Register a heavyweight tenant by completing a task for it first, so
	// its (empty) queue sits in the ring ahead of the light tenant.
	heavy, err := e.SubmitTenant(&sumQuery{exec: &sumExec{}}, src, TenantInfo{Name: "heavy", Weight: 100})
	if err != nil {
		t.Fatal(err)
	}
	e.SetPlacement(topology.Placement{PerSocket: []int{2}})
	if _, _, err := heavy.WaitContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	e.SetPlacement(topology.Placement{PerSocket: []int{0}})

	light, err := e.SubmitTenant(&sumQuery{exec: &sumExec{}}, src, TenantInfo{Name: "light", Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sc Scratch
	e.mu.Lock()
	var served int
	for {
		task, mi, _ := e.grab(0)
		if task == nil {
			break
		}
		served++
		task.noteClaim(0, mi, true)
		e.mu.Unlock()
		task.runMorsel(mi, &sc)
		e.mu.Lock()
		task.finishMorsel(e)
	}
	e.mu.Unlock()
	if served != 8 {
		t.Fatalf("light tenant served %d morsels alone, want all 8", served)
	}
	if _, _, err := light.WaitContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestTenantNoStarvationUnderContention is the -race smoke for the
// tenant-aware pool: heavily skewed weights submitting concurrently on a
// small pool must all complete — DRR throttles, it never starves.
func TestTenantNoStarvationUnderContention(t *testing.T) {
	const rows = 16384 * 4
	tab := buildTable(rows)
	e := NewEngine(2)
	e.SetPlacement(topology.Placement{PerSocket: []int{1, 1}})
	defer e.Close()
	src := Source{Table: tab, Parts: []Part{
		{Data: tab.Active(), Lo: 0, Hi: rows / 2, Socket: 0},
		{Data: tab.Active(), Lo: rows / 2, Hi: rows, Socket: 1},
	}}

	tenants := []TenantInfo{
		{Name: "whale", Weight: 16},
		{Name: "minnow", Weight: 1},
		{Name: "shrimp", Weight: 1},
	}
	var wg sync.WaitGroup
	for _, tn := range tenants {
		tn := tn
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, _, err := e.ExecuteTenantContext(context.Background(), &sumQuery{exec: &sumExec{}}, src, tn)
				if err != nil {
					t.Errorf("tenant %s: %v", tn.Name, err)
					return
				}
				want := float64(rows) * (rows - 1) / 2
				if res.Rows[0][0] != want {
					t.Errorf("tenant %s: sum = %v, want %v", tn.Name, res.Rows[0][0], want)
				}
			}()
		}
	}
	wg.Wait()
	disp := e.TenantDispatch()
	perTask := int64((rows + 16383) / 16384)
	for _, tn := range tenants {
		if disp[tn.Name] != 4*perTask {
			t.Errorf("tenant %s dispatched %d morsels, want %d", tn.Name, disp[tn.Name], 4*perTask)
		}
	}
}
