package olap

import "elastichtap/internal/costmodel"

// Invalid is a Query placeholder carrying a construction error. Facades
// whose query constructors cannot return an error (Q1(db) and friends)
// hand it to the runner, which surfaces the error instead of executing.
// The runner recognizes it through the Err method, so any query type may
// opt into the same pre-flight check.
type Invalid struct {
	QueryName string
	Reason    error
}

// Name implements Query.
func (q Invalid) Name() string { return q.QueryName }

// Class implements Query.
func (q Invalid) Class() costmodel.WorkClass { return costmodel.ScanReduce }

// FactTable implements Query.
func (q Invalid) FactTable() string { return "" }

// Columns implements Query.
func (q Invalid) Columns() []int { return nil }

// Prepare implements Query; it is never reached because the runner checks
// Err first.
func (q Invalid) Prepare() (Exec, int64) { return nil, 0 }

// Err reports why the query is unusable.
func (q Invalid) Err() error { return q.Reason }
