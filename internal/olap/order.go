package olap

import "sort"

// Order is a deterministic total order over result rows: the order column
// compares first (descending when Desc), and ties break on the remaining
// columns ascending, left to right. Whenever rows are distinct — grouped
// results always are, their group keys differ — the order is total, so a
// sort under it is reproducible bit for bit regardless of the input
// permutation. That is what lets ordered and top-k queries stay
// deterministic under work stealing and mid-query pool resizes: the merge
// feeds rows in morsel order, and this order fixes the output.
type Order struct {
	Col  int
	Desc bool
}

// before reports whether row a ranks ahead of row b.
func (o Order) before(a, b []float64) bool {
	av, bv := a[o.Col], b[o.Col]
	if av != bv {
		if o.Desc {
			return av > bv
		}
		return av < bv
	}
	for i := range a {
		if i == o.Col {
			continue
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// SortRows orders rows under ord and keeps the first limit of them
// (limit <= 0 keeps everything). The ordering happens merge-side, after
// per-morsel partial aggregates combine — a top-k cannot run earlier,
// because partial sums are not comparable before they are complete. For a
// genuine top-k (0 < limit < len(rows)) a bounded heap of limit rows
// scans the input once in O(n log k); a full order falls back to sort.
// Rows is reordered in place; the returned slice aliases it.
//
//htap:deterministic
func SortRows(rows [][]float64, ord Order, limit int) [][]float64 {
	if limit <= 0 || limit >= len(rows) {
		sort.Slice(rows, func(i, j int) bool { return ord.before(rows[i], rows[j]) })
		if limit > 0 && limit < len(rows) {
			rows = rows[:limit]
		}
		return rows
	}
	// Bounded heap over the row prefix: h = rows[:k] arranged with the
	// lowest-ranked kept row at the root, so each candidate compares
	// against the current cutoff in O(1) and displaces it in O(log k).
	h := rows[:limit]
	for i := limit/2 - 1; i >= 0; i-- {
		siftDown(h, i, ord)
	}
	for _, r := range rows[limit:] {
		if ord.before(r, h[0]) {
			h[0] = r
			siftDown(h, 0, ord)
		}
	}
	sort.Slice(h, func(i, j int) bool { return ord.before(h[i], h[j]) })
	return h
}

// siftDown restores the heap property at index i: a parent must not rank
// ahead of either child (the root is the worst kept row).
func siftDown(h [][]float64, i int, ord Order) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && ord.before(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && ord.before(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
