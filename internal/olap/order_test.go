package olap

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func randomRows(rng *rand.Rand, n, cols, domain int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, cols)
		for c := range r {
			r[c] = float64(rng.Intn(domain))
		}
		rows[i] = r
	}
	return rows
}

// referenceSort is the obviously-correct full sort under the same total
// order.
func referenceSort(rows [][]float64, ord Order) [][]float64 {
	out := make([][]float64, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool { return ord.before(out[i], out[j]) })
	return out
}

func TestSortRowsMatchesReferenceAcrossLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		rows := randomRows(rng, n, 3, 6) // small domain forces ties
		ord := Order{Col: rng.Intn(3), Desc: rng.Intn(2) == 0}
		want := referenceSort(rows, ord)
		for _, limit := range []int{0, 1, 2, n / 2, n - 1, n, n + 5} {
			in := make([][]float64, n)
			copy(in, rows)
			got := SortRows(in, ord, limit)
			wantK := want
			if limit > 0 && limit < len(want) {
				wantK = want[:limit]
			}
			if !reflect.DeepEqual(got, wantK) {
				t.Fatalf("trial %d limit %d ord %+v:\n got %v\nwant %v", trial, limit, ord, got, wantK)
			}
		}
	}
}

// TestSortRowsDeterministicUnderPermutation pins the property the ordered
// merge relies on: any input permutation yields the identical output, so
// morsel interleaving can never show through a sorted result.
func TestSortRowsDeterministicUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := randomRows(rng, 30, 3, 4)
	// Deduplicate identical rows: the order is total only on distinct rows
	// (grouped results always are).
	seen := map[[3]float64]bool{}
	distinct := rows[:0]
	for _, r := range rows {
		k := [3]float64{r[0], r[1], r[2]}
		if !seen[k] {
			seen[k] = true
			distinct = append(distinct, r)
		}
	}
	ord := Order{Col: 1, Desc: true}
	base := make([][]float64, len(distinct))
	copy(base, distinct)
	want := SortRows(base, ord, 5)
	for trial := 0; trial < 20; trial++ {
		in := make([][]float64, len(distinct))
		copy(in, distinct)
		rng.Shuffle(len(in), func(i, j int) { in[i], in[j] = in[j], in[i] })
		got := SortRows(in, ord, 5)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permutation changed the top-k:\n got %v\nwant %v", trial, got, want)
		}
	}
}

func TestSortRowsEmptyAndSingle(t *testing.T) {
	if got := SortRows(nil, Order{}, 3); len(got) != 0 {
		t.Fatalf("nil rows sorted to %v", got)
	}
	one := [][]float64{{42, 1}}
	if got := SortRows(one, Order{Col: 0, Desc: true}, 1); !reflect.DeepEqual(got, one) {
		t.Fatalf("single row mangled: %v", got)
	}
}
