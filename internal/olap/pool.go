package olap

// worker is one pool goroutine pinned (logically) to a core on a socket.
// Its lifecycle is owned by the engine: spawned when SetPlacement grants
// the core, retired when a migration revokes it. All fields besides the
// identity are guarded by e.mu.
type worker struct {
	e      *Engine
	socket int
	id     int
	stop   bool //htap:guardedby Engine.mu

	// scratch is this worker's private reusable buffer space, touched
	// only from the worker goroutine itself (outside e.mu, between grab
	// and finish). It lives as long as the worker, so kernels reach
	// steady state after one morsel per worker and allocate nothing
	// after that.
	scratch Scratch
}

// run is the worker loop: grab a morsel (own socket first, then steal),
// consume it outside the engine lock, repeat; park on the condition
// variable when no work is queued. A retire request is honored between
// morsels — never mid-consume — and a retiring worker keeps draining as
// caretaker while queued morsels remain with no active worker to take
// them, so elasticity can never strand a task. Task cancellation needs
// no cooperation here: Cancel empties the cancelled task's queues under
// e.mu, so workers simply never see its remaining morsels — the one they
// are mid-consume on finishes, bounding cancellation latency to a single
// morsel per worker.
func (w *worker) run() {
	e := w.e
	e.mu.Lock()
	for {
		if w.stop && e.mayExit(w) {
			delete(e.stopping, w.id)
			e.nlive--
			e.cond.Broadcast() // wake Close waiters and co-retiring workers
			e.mu.Unlock()
			return
		}
		t, mi, local := e.grab(w.socket)
		if t == nil {
			e.cond.Wait()
			continue
		}
		t.noteClaim(w.id, mi, local)
		e.mu.Unlock()
		t.runMorsel(mi, &w.scratch)
		e.mu.Lock()
		t.finishMorsel(e)
	}
}

// mayExit reports whether a retiring worker can leave now. Callers hold
// e.mu. It may leave when no unclaimed morsels remain, or when an active
// worker exists to take them, or when another retiring worker with a
// smaller id is designated caretaker. The lowest-id retiring worker stays
// until the queues drain, guaranteeing liveness under a shrink to zero.
//
//htap:locked mu
func (e *Engine) mayExit(w *worker) bool {
	if e.queuesEmpty() {
		return true
	}
	if e.activeWorkers() > 0 {
		return true
	}
	for id := range e.stopping {
		if id < w.id {
			return true
		}
	}
	return false
}
