package olap

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elastichtap/internal/costmodel"
	"elastichtap/internal/topology"
)

// fsumExec sums col0 scaled by 0.1 — a float accumulation whose bit
// pattern is sensitive to summation order, so equality checks prove the
// engine's morsel-ordered merge really is deterministic.
type fsumExec struct{}

type fsumLocal struct{ sum float64 }

func (l *fsumLocal) Consume(b Block) {
	for _, v := range b.Cols[0] {
		l.sum += float64(v) * 0.1
	}
}

func (e *fsumExec) NewLocal() Local { return &fsumLocal{} }

func (e *fsumExec) Merge(locals []Local) Result {
	var s float64
	for _, l := range locals {
		s += l.(*fsumLocal).sum
	}
	return Result{Cols: []string{"fsum"}, Rows: [][]float64{{s}}}
}

// gateExec blocks every Consume on a shared gate after counting entry,
// letting tests hold morsels in flight while they resize the pool.
type gateExec struct {
	entered atomic.Int64
	release chan struct{}
}

type gateLocal struct {
	g   *gateExec
	sum float64
}

func (l *gateLocal) Consume(b Block) {
	l.g.entered.Add(1)
	<-l.g.release
	for _, v := range b.Cols[0] {
		l.sum += float64(v) * 0.1
	}
}

func (g *gateExec) NewLocal() Local { return &gateLocal{g: g} }

func (g *gateExec) Merge(locals []Local) Result {
	var s float64
	for _, l := range locals {
		s += l.(*gateLocal).sum
	}
	return Result{Cols: []string{"fsum"}, Rows: [][]float64{{s}}}
}

// poolQuery adapts a prepared Exec into a Query for pool tests.
type poolQuery struct{ exec Exec }

func (q *poolQuery) Name() string               { return "pool" }
func (q *poolQuery) Class() costmodel.WorkClass { return costmodel.ScanReduce }
func (q *poolQuery) FactTable() string          { return "t" }
func (q *poolQuery) Columns() []int             { return []int{0} }
func (q *poolQuery) Prepare() (Exec, int64)     { return q.exec, 0 }

// nineMorselSource builds a table spanning nine chunk-aligned morsels.
func nineMorselSource(t testing.TB) Source {
	t.Helper()
	const n = 8*16384 + 1000
	tab := buildTable(n)
	return Source{Table: tab, Parts: []Part{
		{Data: tab.Active(), Lo: 0, Hi: n, Socket: 0},
	}}
}

// referenceResult executes the query single-worker on a fresh engine.
func referenceResult(t testing.TB, exec func() Exec, src Source) Result {
	t.Helper()
	e := NewEngine(2)
	defer e.Close()
	e.SetPlacement(topology.Placement{PerSocket: []int{1, 0}})
	res, _, err := e.ExecuteContext(context.Background(), &poolQuery{exec: exec()}, src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func waitEntered(t testing.TB, g *gateExec, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.entered.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers entered", g.entered.Load(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestMidQueryGrow demonstrates mid-query elasticity: growing the OLAP
// placement while a scan is in flight raises the worker count Stats
// observes, and the result stays byte-identical to the single-worker
// reference.
func TestMidQueryGrow(t *testing.T) {
	src := nineMorselSource(t)
	want := referenceResult(t, func() Exec { return &fsumExec{} }, src)

	e := NewEngine(2)
	defer e.Close()
	e.SetPlacement(topology.Placement{PerSocket: []int{1, 0}})
	g := &gateExec{release: make(chan struct{})}
	task, err := e.Submit(&poolQuery{exec: g}, src)
	if err != nil {
		t.Fatal(err)
	}
	waitEntered(t, g, 1) // the lone worker holds the first morsel

	e.SetPlacement(topology.Placement{PerSocket: []int{8, 0}})
	waitEntered(t, g, 8) // seven newcomers each claimed a queued morsel
	close(g.release)

	res, st, err := task.WaitContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 8 {
		t.Fatalf("workers = %d, want 8 after mid-query grow", st.Workers)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("grown result diverged: %v != %v", res.Rows, want.Rows)
	}
}

// TestMidQueryShrink retires workers while their morsels are in flight:
// they finish the morsel, exit, and the survivor drains the rest.
func TestMidQueryShrink(t *testing.T) {
	src := nineMorselSource(t)
	want := referenceResult(t, func() Exec { return &fsumExec{} }, src)

	e := NewEngine(2)
	defer e.Close()
	e.SetPlacement(topology.Placement{PerSocket: []int{4, 0}})
	g := &gateExec{release: make(chan struct{})}
	task, err := e.Submit(&poolQuery{exec: g}, src)
	if err != nil {
		t.Fatal(err)
	}
	waitEntered(t, g, 4)

	e.SetPlacement(topology.Placement{PerSocket: []int{1, 0}})
	if got := e.PoolSize(); got != 1 {
		t.Fatalf("pool size = %d, want 1 right after shrink", got)
	}
	close(g.release)

	res, st, err := task.WaitContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 {
		t.Fatalf("workers = %d, want the 4 that participated", st.Workers)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("shrunk result diverged: %v != %v", res.Rows, want.Rows)
	}
}

// TestShrinkToZeroStillCompletes revokes every core mid-query: the
// lowest-id retiring worker stays on as caretaker until the queues drain.
func TestShrinkToZeroStillCompletes(t *testing.T) {
	src := nineMorselSource(t)
	want := referenceResult(t, func() Exec { return &fsumExec{} }, src)

	e := NewEngine(2)
	defer e.Close()
	e.SetPlacement(topology.Placement{PerSocket: []int{2, 0}})
	g := &gateExec{release: make(chan struct{})}
	task, err := e.Submit(&poolQuery{exec: g}, src)
	if err != nil {
		t.Fatal(err)
	}
	waitEntered(t, g, 2)

	e.SetPlacement(topology.Placement{PerSocket: []int{0, 0}})
	if got := e.PoolSize(); got != 0 {
		t.Fatalf("pool size = %d, want 0", got)
	}
	close(g.release)

	res, st, err := task.WaitContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 {
		t.Fatalf("workers = %d, want 2", st.Workers)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("result diverged after shrink to zero: %v != %v", res.Rows, want.Rows)
	}
}

// TestStealAccounting homes all data on socket 0 with workers only on
// socket 1: every morsel must be stolen and the measured stolen bytes
// must cover the whole payload.
func TestStealAccounting(t *testing.T) {
	src := nineMorselSource(t)
	e := NewEngine(2)
	defer e.Close()
	e.SetPlacement(topology.Placement{PerSocket: []int{0, 4}})
	_, st, err := e.ExecuteContext(context.Background(), &poolQuery{exec: &fsumExec{}}, src)
	if err != nil {
		t.Fatal(err)
	}
	if st.StolenMorsels != int64(st.Morsels) || st.LocalMorsels != 0 {
		t.Fatalf("stealing not measured: %+v", st)
	}
	if st.StolenBytesAt[0] != st.BytesAt[0] || st.StolenBytesAt[1] != 0 {
		t.Fatalf("stolen bytes %v, payload %v", st.StolenBytesAt, st.BytesAt)
	}

	// Workers co-located with the data steal nothing.
	e.SetPlacement(topology.Placement{PerSocket: []int{4, 0}})
	_, st, err = e.ExecuteContext(context.Background(), &poolQuery{exec: &fsumExec{}}, src)
	if err != nil {
		t.Fatal(err)
	}
	if st.StolenMorsels != 0 || st.LocalMorsels != int64(st.Morsels) {
		t.Fatalf("affine dispatch should not steal: %+v", st)
	}
}

// TestConcurrentTasksSharePool submits queries from many goroutines while
// a resizer thrashes the placement; every result must be byte-identical
// to the single-worker reference (run with -race).
func TestConcurrentTasksSharePool(t *testing.T) {
	src := nineMorselSource(t)
	want := referenceResult(t, func() Exec { return &fsumExec{} }, src)

	e := NewEngine(2)
	defer e.Close()
	e.SetPlacement(topology.Placement{PerSocket: []int{2, 2}})

	stop := make(chan struct{})
	var resizer sync.WaitGroup
	resizer.Add(1)
	go func() {
		defer resizer.Done()
		shapes := []topology.Placement{
			{PerSocket: []int{1, 0}},
			{PerSocket: []int{8, 8}},
			{PerSocket: []int{0, 3}},
			{PerSocket: []int{4, 4}},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.SetPlacement(shapes[i%len(shapes)])
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, st, err := e.ExecuteContext(context.Background(), &poolQuery{exec: &fsumExec{}}, src)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res, want) {
					t.Errorf("concurrent result diverged: %v != %v", res.Rows, want.Rows)
					return
				}
				if st.Workers < 1 || st.Workers > st.Morsels {
					t.Errorf("workers = %d outside [1,%d]", st.Workers, st.Morsels)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	resizer.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCloseDrainsAndRefuses verifies Close waits for queued work and that
// later submissions fail cleanly.
func TestCloseDrainsAndRefuses(t *testing.T) {
	src := nineMorselSource(t)
	e := NewEngine(2)
	e.SetPlacement(topology.Placement{PerSocket: []int{2, 0}})
	task, err := e.Submit(&poolQuery{exec: &fsumExec{}}, src)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, _, err := task.WaitContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(&poolQuery{exec: &fsumExec{}}, src); err == nil {
		t.Fatal("submit after Close must fail")
	}
	if e.PoolSize() != 0 {
		t.Fatalf("pool size = %d after Close", e.PoolSize())
	}
}
