package olap

// Scratch is per-worker reusable buffer space. Each long-lived pool
// worker owns exactly one Scratch for its whole lifetime, and every
// inline drainer owns one for the duration of its drain, so the buffers
// are only ever touched by a single goroutine at a time and steady-state
// execution allocates nothing per morsel: the engine's column-slice
// header array and any kernel-owned scratch (selection vectors,
// accumulator rows, payload buffers) are taken from here instead of a
// shared sync.Pool that bounces between cores.
type Scratch struct {
	cols [][]int64

	// Kernel is an opaque slot for executor-owned scratch. A kernel that
	// implements ScratchConsumer stores whatever buffer struct it needs
	// here on first use and finds it again on every later morsel the
	// same worker runs — across morsels, queries, and plans. Ownership
	// follows the Scratch: single-goroutine, no locking.
	Kernel any
}

// colSlices returns a reusable [][]int64 of length n for the block's
// column-slice headers. The returned slice is valid until the next call
// on the same Scratch.
func (s *Scratch) colSlices(n int) [][]int64 {
	if cap(s.cols) < n {
		s.cols = make([][]int64, n)
	}
	s.cols = s.cols[:n]
	return s.cols
}

// ScratchConsumer is implemented by Locals that want per-worker scratch.
// The engine calls ConsumeScratch instead of Consume, passing the
// claiming worker's (or inline drainer's) Scratch. Implementations must
// not retain the Scratch or the Block's column slices beyond the call,
// except via sc.Kernel which they own.
type ScratchConsumer interface {
	Local
	ConsumeScratch(b Block, sc *Scratch)
}
