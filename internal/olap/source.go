// Package olap implements the paper's analytical engine (§3.3): a
// NUMA-aware, block-at-a-time parallel query executor over columnar data
// with pluggable access paths. The Storage Manager "accepts as input a
// pointer to the memory areas where the data are stored at execution time";
// here a Source lists those areas as Parts — contiguous row ranges of a
// physical column store with a home socket — which is exactly the
// contiguous-versus-partitioned plugin pair the paper describes: one Part
// for a single memory area, several Parts when fresh data is read from the
// OLTP instance and cold data from the OLAP instance (split access).
package olap

import (
	"fmt"

	"elastichtap/internal/columnar"
)

// ColumnSource is any physical columnar store the engine can scan: the
// OLTP instances (*columnar.Instance) and the OLAP replica
// (*columnar.Replica) both qualify.
type ColumnSource interface {
	Col(c int) *columnar.Words
}

// Part is one contiguous memory area: rows [Lo, Hi) of a physical store,
// homed on a NUMA socket.
type Part struct {
	Data   ColumnSource
	Lo, Hi int64
	Socket int
	// Label describes the part for diagnostics ("olap-replica",
	// "oltp-snapshot").
	Label string
}

// Rows returns the part's row count.
func (p Part) Rows() int64 {
	if p.Hi < p.Lo {
		return 0
	}
	return p.Hi - p.Lo
}

// Source is an access path: the table (for schema and dictionaries) plus
// the memory areas to scan. A single Part is the paper's contiguous access
// method; multiple Parts are the partitioned (split) method.
type Source struct {
	Table *columnar.Table
	Parts []Part
}

// Rows returns the total rows across parts.
func (s Source) Rows() int64 {
	var n int64
	for _, p := range s.Parts {
		n += p.Rows()
	}
	return n
}

// BytesAt returns per-socket payload bytes for scanning ncols columns.
func (s Source) BytesAt(sockets int, ncols int) []int64 {
	out := make([]int64, sockets)
	for _, p := range s.Parts {
		if p.Socket >= 0 && p.Socket < sockets {
			out[p.Socket] += p.Rows() * int64(ncols) * columnar.WordBytes
		}
	}
	return out
}

// Validate checks part ranges.
func (s Source) Validate() error {
	if s.Table == nil {
		return fmt.Errorf("olap: source has no table")
	}
	for i, p := range s.Parts {
		if p.Data == nil {
			return fmt.Errorf("olap: part %d has no data", i)
		}
		if p.Lo < 0 || p.Hi < p.Lo {
			return fmt.Errorf("olap: part %d has invalid range [%d,%d)", i, p.Lo, p.Hi)
		}
	}
	return nil
}
