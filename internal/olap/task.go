package olap

import "context"

// Task is one admitted query execution sharing the engine's worker pool.
// Submit returns it immediately; Wait blocks until every morsel is
// consumed and merges the per-morsel partials in morsel order. Cancel
// abandons the task at the next morsel boundary.
type Task struct {
	e    *Engine
	exec Exec
	cols []int
	src  Source

	morsels []morsel
	locals  []Local

	//htap:guardedby Engine.mu
	tq *tenantQueue // owning tenant's dispatch queue; nil for empty tasks
	//htap:guardedby Engine.mu
	queue [][]int // per-socket FIFO of morsel indexes
	//htap:guardedby Engine.mu
	heads     []int            // next FIFO position per socket (owner pops head)
	unclaimed int              //htap:guardedby Engine.mu
	remaining int              //htap:guardedby Engine.mu
	seen      map[int]struct{} //htap:guardedby Engine.mu
	inline    int              //htap:guardedby Engine.mu
	stats     Stats
	err       error // cancellation cause; set before done closes
	done      chan struct{}
}

// pop takes the head of the socket's own queue. Callers hold e.mu.
//
//htap:locked Engine.mu
func (t *Task) pop(socket int) (int, bool) {
	if socket < 0 || socket >= len(t.queue) {
		return 0, false
	}
	q := t.queue[socket]
	if t.heads[socket] >= len(q) {
		return 0, false
	}
	mi := q[t.heads[socket]]
	t.heads[socket]++
	t.unclaimed--
	return mi, true
}

// steal takes the tail of the fullest other socket's queue — the classic
// deque split that keeps thieves away from the owner's sequential front.
// Callers hold e.mu.
//
//htap:locked Engine.mu
func (t *Task) steal(thief int) (int, bool) {
	victim, best := -1, 0
	for s := range t.queue {
		if s == thief {
			continue
		}
		if r := len(t.queue[s]) - t.heads[s]; r > best {
			victim, best = s, r
		}
	}
	if victim < 0 {
		return 0, false
	}
	q := t.queue[victim]
	mi := q[len(q)-1]
	t.queue[victim] = q[:len(q)-1]
	t.unclaimed--
	return mi, true
}

// popAny takes the head of any socket queue, for inline drainers with no
// home socket. The grab bypasses the weighted-fair dispatcher — an inline
// drainer only ever consumes its own task — but still counts toward the
// tenant's measured dispatch. Callers hold e.mu.
//
//htap:locked Engine.mu
func (t *Task) popAny() (int, bool) {
	for s := range t.queue {
		if mi, ok := t.pop(s); ok {
			if t.tq != nil {
				t.tq.dispatched++
			}
			return mi, true
		}
	}
	return 0, false
}

// noteClaim records who consumed a morsel and whether the grab was
// socket-local, feeding the measured locality statistics. A negative
// workerSocket (inline drainer) counts as local: with no placement there
// is no interconnect to charge. Callers hold e.mu.
//
//htap:locked Engine.mu
func (t *Task) noteClaim(workerID, mi int, local bool) {
	t.seen[workerID] = struct{}{}
	m := t.morsels[mi]
	if local {
		t.stats.LocalMorsels++
	} else {
		t.stats.StolenMorsels++
		t.stats.StolenBytesAt[m.socket] += m.bytes(len(t.cols))
	}
}

// bytes is the morsel's payload volume across the scanned columns.
func (m morsel) bytes(ncols int) int64 {
	return (m.hi - m.lo) * int64(ncols) * 8
}

// runMorsel consumes one morsel into its dedicated Local. Called without
// e.mu; the morsel index was claimed exclusively, so no other goroutine
// touches locals[mi]. sc is the claiming worker's (or inline drainer's)
// scratch: the block's column-slice headers come from it, and Locals
// that implement ScratchConsumer get it for kernel-owned buffers, so a
// warmed worker runs a morsel with zero allocations.
func (t *Task) runMorsel(mi int, sc *Scratch) {
	m := t.morsels[mi]
	p := t.src.Parts[m.part]
	blk := Block{Base: m.lo, N: int(m.hi - m.lo), Cols: sc.colSlices(len(t.cols))}
	for k, c := range t.cols {
		blk.Cols[k] = p.Data.Col(c).Slice(m.lo, m.hi)
	}
	if lc, ok := t.locals[mi].(ScratchConsumer); ok {
		lc.ConsumeScratch(blk, sc)
		return
	}
	t.locals[mi].Consume(blk)
}

// finishMorsel retires one consumed morsel; the last one completes the
// task. Callers hold e.mu.
//
//htap:locked Engine.mu
func (t *Task) finishMorsel(e *Engine) {
	t.remaining--
	if t.remaining == 0 {
		t.stats.Workers = len(t.seen)
		e.removeTask(t)
		close(t.done)
	}
}

// Cancel abandons the task: every unclaimed morsel is discarded, so the
// only remaining work is the in-flight morsels workers are mid-consume on
// — cancellation is observed at morsel boundaries, never inside a kernel,
// exactly where the scheduler's elasticity already intervenes. When the
// last in-flight morsel retires the task completes with an error wrapping
// ErrCancelled and cause; partial locals are never merged, and the pool
// and queues are left fully consistent for subsequent tasks. Cancelling a
// completed (or already cancelled) task is a no-op, so a cancel racing
// normal completion keeps the successful result.
func (t *Task) Cancel(cause error) {
	e := t.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if t.err != nil || t.remaining == 0 {
		return
	}
	t.err = CancelErr(cause)
	discarded := 0
	for s := range t.queue {
		discarded += len(t.queue[s]) - t.heads[s]
		t.heads[s] = len(t.queue[s])
	}
	t.unclaimed -= discarded
	t.remaining -= discarded
	if t.remaining == 0 {
		// No morsel in flight: the task retires here. Otherwise the last
		// finishMorsel completes it, bounding cancellation latency by one
		// morsel's work per active worker.
		t.stats.Workers = len(t.seen)
		e.removeTask(t)
		close(t.done)
	}
}

// drain runs queued morsels of this task on the submitting goroutine —
// the fallback worker when the pool is empty at admission. Morsels
// claimed by pool workers that appeared mid-drain are left to them; a
// cancelled context stops the drain at the next morsel boundary (the
// caller's wait then cancels the task).
func (t *Task) drain(ctx context.Context) {
	e := t.e
	var sc Scratch // one scratch per draining goroutine
	e.mu.Lock()
	t.inline++
	id := -t.inline // one pseudo-worker id per draining goroutine
	for ctx.Err() == nil {
		mi, ok := t.popAny()
		if !ok {
			break
		}
		t.noteClaim(id, mi, true)
		e.mu.Unlock()
		t.runMorsel(mi, &sc)
		e.mu.Lock()
		t.finishMorsel(e)
	}
	e.mu.Unlock()
}

// WaitContext blocks until the task completes and returns the merged
// result and measured statistics. The merge passes locals in morsel
// order, so results are bitwise deterministic regardless of worker
// interleaving, stealing, or mid-query pool resizes. When ctx ends
// before the task does, the task is cancelled (unclaimed morsels
// discarded, in-flight morsels allowed to finish) and the error wraps
// ErrCancelled together with the context's cause, so errors.Is sees
// both context.Canceled / context.DeadlineExceeded and ErrCancelled.
func (t *Task) WaitContext(ctx context.Context) (Result, Stats, error) {
	e := t.e
	if ctx.Done() != nil {
		// Deliver cancellation the moment the context ends, not when this
		// goroutine happens to wake: a cancel that arrives while the last
		// morsel is in flight must still beat its completion.
		stop := context.AfterFunc(ctx, func() { t.Cancel(ctx.Err()) })
		defer stop()
	}
	e.mu.Lock()
	// Help drain only when no pool goroutine is alive to do it: a pool
	// that merely shrank to zero mid-query still has a caretaker (see
	// Engine.mayExit), and a later SetPlacement can always add workers.
	inline := t.unclaimed > 0 && e.nlive == 0
	e.mu.Unlock()
	if inline {
		t.drain(ctx)
	}
	<-t.done
	// t.err and t.stats are written before done closes; the channel close
	// orders those writes before these reads.
	if t.err != nil {
		return Result{}, t.stats, t.err
	}
	return t.exec.Merge(t.locals), t.stats, nil
}
