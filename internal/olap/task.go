package olap

// Task is one admitted query execution sharing the engine's worker pool.
// Submit returns it immediately; Wait blocks until every morsel is
// consumed and merges the per-morsel partials in morsel order.
type Task struct {
	e    *Engine
	exec Exec
	cols []int
	src  Source

	morsels []morsel
	locals  []Local

	// All fields below are guarded by e.mu.
	queue     [][]int // per-socket FIFO of morsel indexes
	heads     []int   // next FIFO position per socket (owner pops head)
	unclaimed int     // morsels still queued
	remaining int     // morsels not yet consumed
	seen      map[int]struct{}
	inline    int // pseudo-worker ids handed to inline drainers
	stats     Stats
	done      chan struct{}
}

// pop takes the head of the socket's own queue. Callers hold e.mu.
func (t *Task) pop(socket int) (int, bool) {
	if socket < 0 || socket >= len(t.queue) {
		return 0, false
	}
	q := t.queue[socket]
	if t.heads[socket] >= len(q) {
		return 0, false
	}
	mi := q[t.heads[socket]]
	t.heads[socket]++
	t.unclaimed--
	return mi, true
}

// steal takes the tail of the fullest other socket's queue — the classic
// deque split that keeps thieves away from the owner's sequential front.
// Callers hold e.mu.
func (t *Task) steal(thief int) (int, bool) {
	victim, best := -1, 0
	for s := range t.queue {
		if s == thief {
			continue
		}
		if r := len(t.queue[s]) - t.heads[s]; r > best {
			victim, best = s, r
		}
	}
	if victim < 0 {
		return 0, false
	}
	q := t.queue[victim]
	mi := q[len(q)-1]
	t.queue[victim] = q[:len(q)-1]
	t.unclaimed--
	return mi, true
}

// popAny takes the head of any socket queue, for inline drainers with no
// home socket. Callers hold e.mu.
func (t *Task) popAny() (int, bool) {
	for s := range t.queue {
		if mi, ok := t.pop(s); ok {
			return mi, true
		}
	}
	return 0, false
}

// noteClaim records who consumed a morsel and whether the grab was
// socket-local, feeding the measured locality statistics. A negative
// workerSocket (inline drainer) counts as local: with no placement there
// is no interconnect to charge. Callers hold e.mu.
func (t *Task) noteClaim(workerID, mi int, local bool) {
	t.seen[workerID] = struct{}{}
	m := t.morsels[mi]
	if local {
		t.stats.LocalMorsels++
	} else {
		t.stats.StolenMorsels++
		t.stats.StolenBytesAt[m.socket] += m.bytes(len(t.cols))
	}
}

// bytes is the morsel's payload volume across the scanned columns.
func (m morsel) bytes(ncols int) int64 {
	return (m.hi - m.lo) * int64(ncols) * 8
}

// runMorsel consumes one morsel into its dedicated Local. Called without
// e.mu; the morsel index was claimed exclusively, so no other goroutine
// touches locals[mi].
func (t *Task) runMorsel(mi int) {
	m := t.morsels[mi]
	p := t.src.Parts[m.part]
	blk := Block{Base: m.lo, N: int(m.hi - m.lo), Cols: make([][]int64, len(t.cols))}
	for k, c := range t.cols {
		blk.Cols[k] = p.Data.Col(c).Slice(m.lo, m.hi)
	}
	t.locals[mi].Consume(blk)
}

// finishMorsel retires one consumed morsel; the last one completes the
// task. Callers hold e.mu.
func (t *Task) finishMorsel(e *Engine) {
	t.remaining--
	if t.remaining == 0 {
		t.stats.Workers = len(t.seen)
		e.removeTask(t)
		close(t.done)
	}
}

// drain runs queued morsels of this task on the submitting goroutine —
// the fallback worker when the pool is empty at admission. Morsels
// claimed by pool workers that appeared mid-drain are left to them.
func (t *Task) drain() {
	e := t.e
	e.mu.Lock()
	t.inline++
	id := -t.inline // one pseudo-worker id per draining goroutine
	for {
		mi, ok := t.popAny()
		if !ok {
			break
		}
		t.noteClaim(id, mi, true)
		e.mu.Unlock()
		t.runMorsel(mi)
		e.mu.Lock()
		t.finishMorsel(e)
	}
	e.mu.Unlock()
}

// Wait blocks until the task completes and returns the merged result and
// measured statistics. The merge passes locals in morsel order, so
// results are bitwise deterministic regardless of worker interleaving,
// stealing, or mid-query pool resizes.
func (t *Task) Wait() (Result, Stats, error) {
	e := t.e
	e.mu.Lock()
	// Help drain only when no pool goroutine is alive to do it: a pool
	// that merely shrank to zero mid-query still has a caretaker (see
	// Engine.mayExit), and a later SetPlacement can always add workers.
	inline := t.unclaimed > 0 && e.nlive == 0
	e.mu.Unlock()
	if inline {
		t.drain()
	}
	<-t.done
	return t.exec.Merge(t.locals), t.stats, nil
}
