package olap

// TenantInfo identifies the submitting tenant for weighted-fair dispatch.
// The zero value is the default tenant at weight 1, which is what the
// untenanted Submit path uses — a pool with a single tenant dispatches
// exactly as it did before tenancy existed (admission-order FIFO with
// socket-affine pops and cross-socket steals).
type TenantInfo struct {
	// Name keys the engine's per-tenant runnable list; empty means
	// "default".
	Name string
	// Weight is the tenant's deficit-round-robin quantum in morsels per
	// round; values below 1 normalize to 1.
	Weight int
}

// tenantQueue is one tenant's dispatch state: its runnable tasks in
// admission order plus the deficit-round-robin bookkeeping. All fields are
// guarded by the engine's mutex.
type tenantQueue struct {
	name   string
	weight int //htap:guardedby Engine.mu
	// deficit is the tenant's remaining service this DRR round, in
	// morsels. It refills by weight when the dispatcher's turn pointer
	// reaches a backlogged tenant with no credit, and resets to zero when
	// the tenant runs out of work — per textbook DRR, an idle queue must
	// not hoard credit for later.
	deficit int //htap:guardedby Engine.mu
	// tasks is the tenant's runnable list in admission order; dispatch
	// within a tenant is unchanged from the engine's original policy.
	tasks []*Task //htap:guardedby Engine.mu
	// dispatched counts morsels handed to workers (or inline drainers)
	// for this tenant over the engine's lifetime — the measured quantity
	// fairness assertions and per-tenant metrics read.
	dispatched int64 //htap:guardedby Engine.mu
}

// runnable reports whether the tenant has unclaimed morsels. Callers hold
// e.mu.
//
//htap:locked Engine.mu
func (tq *tenantQueue) runnable() bool {
	for _, t := range tq.tasks {
		if t.unclaimed > 0 {
			return true
		}
	}
	return false
}

// take claims one morsel for a worker on the given socket, keeping the
// engine's original within-tenant policy: oldest task first, own-socket
// FIFO head before stealing from another socket's tail. The returned bool
// pair is (socket-local, ok). Callers hold e.mu.
//
//htap:locked Engine.mu
func (tq *tenantQueue) take(socket int) (*Task, int, bool, bool) {
	for _, t := range tq.tasks {
		if mi, ok := t.pop(socket); ok {
			return t, mi, true, true
		}
	}
	for _, t := range tq.tasks {
		if mi, ok := t.steal(socket); ok {
			return t, mi, false, true
		}
	}
	return nil, 0, false, false
}

// removeTask drops a completed task from the tenant's runnable list.
// Callers hold e.mu.
//
//htap:locked Engine.mu
func (tq *tenantQueue) removeTask(t *Task) {
	for i, x := range tq.tasks {
		if x == t {
			tq.tasks = append(tq.tasks[:i], tq.tasks[i+1:]...)
			return
		}
	}
}

// tenantFor returns the tenant's dispatch queue, creating and ring-linking
// it on first submission; a later submission with a different weight
// re-weights the queue in place. Callers hold e.mu.
//
//htap:locked mu
func (e *Engine) tenantFor(tn TenantInfo) *tenantQueue {
	name := tn.Name
	if name == "" {
		name = "default"
	}
	weight := tn.Weight
	if weight < 1 {
		weight = 1
	}
	tq, ok := e.tenants[name]
	if !ok {
		tq = &tenantQueue{name: name, weight: weight}
		e.tenants[name] = tq
		e.ring = append(e.ring, tq)
		return tq
	}
	tq.weight = weight
	return tq
}

// grab pops the next morsel for a worker on the given socket under
// deficit-round-robin across tenants: the dispatcher serves the current
// tenant until its deficit (refilled by its weight per round) is spent or
// its backlog drains, then advances the turn pointer. While several
// tenants stay backlogged, each receives morsels in proportion to its
// weight — weighted-fair morsel throughput — while within a tenant the
// original policy is preserved: oldest task first, own-socket FIFO head
// before stealing another socket's tail. Callers hold e.mu. The returned
// bool reports a socket-local grab.
//
//htap:locked mu
func (e *Engine) grab(socket int) (*Task, int, bool) {
	n := len(e.ring)
	// Two sweeps bound the scan: the first may spend turn advances on
	// tenants whose deficit just refilled; by the second, any tenant with
	// runnable work has positive credit.
	for scanned := 0; scanned < 2*n; scanned++ {
		if e.cur >= n {
			e.cur = 0
		}
		tq := e.ring[e.cur]
		if !tq.runnable() {
			// An idle tenant must not bank credit across its idle period;
			// it re-earns a fresh quantum when work arrives.
			tq.deficit = 0
			e.cur = (e.cur + 1) % n
			continue
		}
		if tq.deficit <= 0 {
			tq.deficit += tq.weight
		}
		if t, mi, local, ok := tq.take(socket); ok {
			tq.deficit--
			tq.dispatched++
			if tq.deficit <= 0 {
				e.cur = (e.cur + 1) % n
			}
			return t, mi, local
		}
		e.cur = (e.cur + 1) % n
	}
	return nil, 0, false
}

// TenantDispatch snapshots the measured per-tenant morsel dispatch
// counters — the denominator-free fairness signal: under saturation the
// counter deltas converge to the tenants' weight ratios.
func (e *Engine) TenantDispatch() map[string]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int64, len(e.tenants))
	for name, tq := range e.tenants {
		out[name] = tq.dispatched
	}
	return out
}
