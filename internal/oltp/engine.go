// Package oltp assembles the paper's OLTP engine (§3.2): the twin-instance
// columnar Storage Manager (internal/columnar), the MV2PL Transaction
// Manager (internal/txn), cuckoo-hash primary indexes (internal/cuckoo)
// and an elastic Worker pool Manager whose size and placement the RDE
// engine adjusts at runtime.
package oltp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"elastichtap/internal/columnar"
	"elastichtap/internal/cuckoo"
	"elastichtap/internal/index"
	"elastichtap/internal/topology"
	"elastichtap/internal/txn"
)

// TableHandle bundles a table with its transactional metadata.
type TableHandle struct {
	Ref   *txn.TableRef
	Index *cuckoo.Table // primary-key index; may be nil for index-less tables
	Sec   *index.Set    // lazily-built secondary indexes (bitmap/hash)
}

// Table returns the underlying columnar table.
func (h *TableHandle) Table() *columnar.Table { return h.Ref.Table }

// Engine is the transactional engine.
type Engine struct {
	mgr *txn.Manager

	mu     sync.RWMutex
	tables map[string]*TableHandle

	wm *WorkerManager
}

// NewEngine returns an engine with an empty catalog.
func NewEngine() *Engine {
	e := &Engine{
		mgr:    txn.NewManager(),
		tables: map[string]*TableHandle{},
	}
	e.wm = newWorkerManager(e)
	return e
}

// Manager exposes the transaction manager (the RDE engine shares its lock
// table for instance synchronization).
func (e *Engine) Manager() *txn.Manager { return e.mgr }

// Workers exposes the worker pool manager.
func (e *Engine) Workers() *WorkerManager { return e.wm }

// CreateTable registers a new twin-instance table with an optional
// primary-key index.
func (e *Engine) CreateTable(schema columnar.Schema, capHint int64, withIndex bool) *TableHandle {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[schema.Name]; dup {
		panic(fmt.Sprintf("oltp: table %q already exists", schema.Name))
	}
	t := columnar.NewTable(schema, capHint)
	h := &TableHandle{Ref: e.mgr.Register(t), Sec: index.NewSet(t)}
	if withIndex {
		h.Index = cuckoo.New(int(capHint))
	}
	e.tables[schema.Name] = h
	return h
}

// Table returns the handle for a table name, or nil.
func (e *Engine) Table(name string) *TableHandle {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tables[name]
}

// Tables returns all handles (stable order not guaranteed).
func (e *Engine) Tables() []*TableHandle {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*TableHandle, 0, len(e.tables))
	for _, h := range e.tables {
		out = append(out, h)
	}
	return out
}

// TxnFunc is one transaction's logic; it runs against a snapshot-isolated
// txn.Txn and is retried by the worker on wait-die or write conflicts.
type TxnFunc func(t *txn.Txn) error

// Workload produces transaction bodies for a worker. Implementations must
// be safe for concurrent use across workers.
type Workload interface {
	// Next returns the next transaction body for the given worker.
	Next(worker int) TxnFunc
}

// WorkerManager is the elastic worker pool (§3.2): "The WM exposes an API
// to set the number of active worker threads and their CPU affinities".
// Each worker simulates a full transaction queue: generate, execute,
// repeat. Placement is bookkeeping for the cost model; execution itself
// uses goroutines.
type WorkerManager struct {
	e *Engine

	mu        sync.Mutex
	placement topology.Placement
	workload  Workload
	cancel    chan struct{}
	wg        sync.WaitGroup
	running   bool

	executed atomic.Uint64
	retried  atomic.Uint64
	failed   atomic.Uint64
}

func newWorkerManager(e *Engine) *WorkerManager {
	return &WorkerManager{e: e}
}

// SetWorkload installs the transaction generator.
func (wm *WorkerManager) SetWorkload(w Workload) {
	wm.mu.Lock()
	defer wm.mu.Unlock()
	wm.workload = w
}

// SetPlacement records the worker pool's core allocation. When the pool is
// running, it is restarted with the new size.
func (wm *WorkerManager) SetPlacement(p topology.Placement) {
	wm.mu.Lock()
	if wm.placement.Equal(p) {
		wm.mu.Unlock()
		return // unchanged allocation: don't restart a running pool
	}
	running := wm.running
	wm.mu.Unlock()
	if running {
		wm.Stop()
		wm.mu.Lock()
		wm.placement = p.Clone()
		wm.mu.Unlock()
		wm.Start()
		return
	}
	wm.mu.Lock()
	wm.placement = p.Clone()
	wm.mu.Unlock()
}

// Placement returns the current core allocation.
func (wm *WorkerManager) Placement() topology.Placement {
	wm.mu.Lock()
	defer wm.mu.Unlock()
	return wm.placement.Clone()
}

// Executed returns the number of committed transactions processed by the
// pool (batch and free-running combined).
func (wm *WorkerManager) Executed() uint64 { return wm.executed.Load() }

// Retried returns the number of aborted-and-retried attempts.
func (wm *WorkerManager) Retried() uint64 { return wm.retried.Load() }

// Failed returns the number of transactions abandoned after exhausting
// retries or hitting non-retryable errors.
func (wm *WorkerManager) Failed() uint64 { return wm.failed.Load() }

// Start launches one goroutine per allocated core, each generating and
// executing transactions until Stop.
func (wm *WorkerManager) Start() {
	wm.mu.Lock()
	defer wm.mu.Unlock()
	if wm.running || wm.workload == nil {
		return
	}
	wm.cancel = make(chan struct{})
	n := wm.placement.Total()
	for i := 0; i < n; i++ {
		wm.wg.Add(1)
		go wm.run(i, wm.cancel)
	}
	wm.running = true
}

// Stop halts the pool and waits for workers to drain.
func (wm *WorkerManager) Stop() {
	wm.mu.Lock()
	if !wm.running {
		wm.mu.Unlock()
		return
	}
	close(wm.cancel)
	wm.running = false
	wm.mu.Unlock()
	wm.wg.Wait()
}

func (wm *WorkerManager) run(worker int, cancel <-chan struct{}) {
	defer wm.wg.Done()
	for {
		select {
		case <-cancel:
			return
		default:
		}
		wm.execOne(worker)
	}
}

func (wm *WorkerManager) execOne(worker int) {
	body := wm.workload.Next(worker)
	// Wait-die with sticky priorities guarantees progress; the cap only
	// bounds pathological workloads. Dropping transactions silently would
	// make injected workload volumes nondeterministic.
	retries, err := wm.e.mgr.RunWithRetry(1<<20, body)
	wm.retried.Add(uint64(retries))
	if err == nil {
		wm.executed.Add(1)
	} else {
		wm.failed.Add(1)
	}
}

// ExecuteBatch synchronously executes n transactions spread across the
// allocated workers and returns when all have committed. Experiment
// drivers use it to inject a deterministic amount of transactional work
// "during" a simulated interval.
func (wm *WorkerManager) ExecuteBatch(n int) {
	wm.mu.Lock()
	workload := wm.workload
	workers := wm.placement.Total()
	wm.mu.Unlock()
	if workload == nil || n <= 0 {
		return
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	per := n / workers
	extra := n % workers
	for w := 0; w < workers; w++ {
		count := per
		if w < extra {
			count++
		}
		if count == 0 {
			continue
		}
		wg.Add(1)
		go func(worker, count int) {
			defer wg.Done()
			for i := 0; i < count; i++ {
				wm.execOne(worker)
			}
		}(w, count)
	}
	wg.Wait()
}
