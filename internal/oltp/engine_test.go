package oltp

import (
	"sync/atomic"
	"testing"
	"time"

	"elastichtap/internal/columnar"
	"elastichtap/internal/topology"
	"elastichtap/internal/txn"
)

func testSchema() columnar.Schema {
	return columnar.Schema{Name: "t", Columns: []columnar.ColumnDef{
		{Name: "k", Type: columnar.Int64},
		{Name: "v", Type: columnar.Int64},
	}}
}

// counterWorkload increments a single row per transaction.
type counterWorkload struct {
	ref   *txn.TableRef
	calls atomic.Int64
}

func (w *counterWorkload) Next(worker int) TxnFunc {
	w.calls.Add(1)
	return func(t *txn.Txn) error {
		return t.WriteFunc(w.ref, 0, 1, func(old int64) int64 { return old + 1 })
	}
}

func TestCreateTableAndLookup(t *testing.T) {
	e := NewEngine()
	h := e.CreateTable(testSchema(), 8, true)
	if h.Index == nil {
		t.Fatal("index requested but nil")
	}
	if e.Table("t") != h {
		t.Fatal("lookup by name failed")
	}
	if e.Table("missing") != nil {
		t.Fatal("missing table should be nil")
	}
	if len(e.Tables()) != 1 {
		t.Fatal("Tables() wrong")
	}
	h2 := e.CreateTable(columnar.Schema{Name: "u", Columns: testSchema().Columns}, 8, false)
	if h2.Index != nil {
		t.Fatal("index not requested but present")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate table name must panic")
		}
	}()
	e.CreateTable(testSchema(), 8, true)
}

func TestExecuteBatchCounts(t *testing.T) {
	e := NewEngine()
	h := e.CreateTable(testSchema(), 8, false)
	h.Table().AppendRows([][]int64{{0, 0}}, 0)
	w := &counterWorkload{ref: h.Ref}
	e.Workers().SetWorkload(w)
	e.Workers().SetPlacement(topology.Placement{PerSocket: []int{4}})
	e.Workers().ExecuteBatch(100)
	if got := e.Workers().Executed(); got != 100 {
		t.Fatalf("executed = %d", got)
	}
	if got := h.Table().ReadActive(0, 1); got != 100 {
		t.Fatalf("counter = %d (lost updates)", got)
	}
	if e.Workers().Failed() != 0 {
		t.Fatalf("failed = %d", e.Workers().Failed())
	}
}

func TestExecuteBatchZeroAndNoWorkload(t *testing.T) {
	e := NewEngine()
	e.Workers().ExecuteBatch(10) // no workload: must be a no-op
	if e.Workers().Executed() != 0 {
		t.Fatal("executed without workload")
	}
	h := e.CreateTable(testSchema(), 8, false)
	h.Table().AppendRows([][]int64{{0, 0}}, 0)
	e.Workers().SetWorkload(&counterWorkload{ref: h.Ref})
	e.Workers().ExecuteBatch(0)
	if e.Workers().Executed() != 0 {
		t.Fatal("executed zero-sized batch")
	}
	// Zero workers falls back to one.
	e.Workers().SetPlacement(topology.Placement{PerSocket: []int{0}})
	e.Workers().ExecuteBatch(5)
	if e.Workers().Executed() != 5 {
		t.Fatalf("executed = %d", e.Workers().Executed())
	}
}

func TestStartStopFreeRunning(t *testing.T) {
	e := NewEngine()
	h := e.CreateTable(testSchema(), 8, false)
	h.Table().AppendRows([][]int64{{0, 0}}, 0)
	e.Workers().SetWorkload(&counterWorkload{ref: h.Ref})
	e.Workers().SetPlacement(topology.Placement{PerSocket: []int{2}})
	e.Workers().Start()
	defer e.Workers().Stop()
	deadline := time.Now().Add(2 * time.Second)
	for e.Workers().Executed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("free-running pool executed nothing")
		}
		time.Sleep(time.Millisecond)
	}
	e.Workers().Stop()
	after := e.Workers().Executed()
	time.Sleep(10 * time.Millisecond)
	if e.Workers().Executed() != after {
		t.Fatal("pool kept running after Stop")
	}
	// Stop is idempotent; Start works again.
	e.Workers().Stop()
	e.Workers().Start()
	e.Workers().Stop()
}

func TestSetPlacementWhileRunningRestarts(t *testing.T) {
	e := NewEngine()
	h := e.CreateTable(testSchema(), 8, false)
	h.Table().AppendRows([][]int64{{0, 0}}, 0)
	e.Workers().SetWorkload(&counterWorkload{ref: h.Ref})
	e.Workers().SetPlacement(topology.Placement{PerSocket: []int{2}})
	e.Workers().Start()
	e.Workers().SetPlacement(topology.Placement{PerSocket: []int{1, 3}})
	got := e.Workers().Placement()
	if got.Total() != 4 {
		t.Fatalf("placement total = %d", got.Total())
	}
	e.Workers().Stop()
}

func TestPlacementClone(t *testing.T) {
	e := NewEngine()
	p := topology.Placement{PerSocket: []int{3}}
	e.Workers().SetPlacement(p)
	p.PerSocket[0] = 99
	if e.Workers().Placement().Total() != 3 {
		t.Fatal("placement aliases caller storage")
	}
}
