package oltp

import (
	"sync"
	"time"
)

// GCDaemon periodically truncates MVCC version chains that no active
// transaction can read. The OLTP engine's delta storage otherwise grows
// without bound under update-heavy workloads; the paper's engine performs
// the equivalent maintenance inside its storage manager.
type GCDaemon struct {
	e        *Engine
	interval time.Duration

	mu      sync.Mutex
	cancel  chan struct{}
	done    chan struct{}
	running bool

	reclaimed uint64
	passes    uint64
}

// NewGCDaemon returns a stopped daemon; interval <= 0 defaults to 50ms.
func NewGCDaemon(e *Engine, interval time.Duration) *GCDaemon {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	return &GCDaemon{e: e, interval: interval}
}

// Start launches the background collector. Idempotent.
func (g *GCDaemon) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.running {
		return
	}
	g.cancel = make(chan struct{})
	g.done = make(chan struct{})
	g.running = true
	go g.run(g.cancel, g.done)
}

// Stop halts the collector and waits for the in-flight pass. Idempotent.
func (g *GCDaemon) Stop() {
	g.mu.Lock()
	if !g.running {
		g.mu.Unlock()
		return
	}
	close(g.cancel)
	done := g.done
	g.running = false
	g.mu.Unlock()
	<-done
}

// Stats returns lifetime reclaimed-version and pass counters.
func (g *GCDaemon) Stats() (reclaimed, passes uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reclaimed, g.passes
}

func (g *GCDaemon) run(cancel <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(g.interval)
	defer ticker.Stop()
	for {
		select {
		case <-cancel:
			return
		case <-ticker.C:
			n := g.e.Manager().GC()
			g.mu.Lock()
			g.reclaimed += uint64(n)
			g.passes++
			g.mu.Unlock()
		}
	}
}
