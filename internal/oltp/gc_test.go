package oltp

import (
	"testing"
	"time"

	"elastichtap/internal/txn"
)

func TestGCDaemonReclaims(t *testing.T) {
	e := NewEngine()
	h := e.CreateTable(testSchema(), 8, false)
	h.Table().AppendRows([][]int64{{0, 0}}, 0)

	// Build up version chains.
	for i := 0; i < 100; i++ {
		if _, err := e.Manager().RunWithRetry(0, func(tx *txn.Txn) error {
			return tx.Write(h.Ref, 0, 1, int64(i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if h.Ref.Versions.ChainLen(0) != 100 {
		t.Fatalf("chain = %d", h.Ref.Versions.ChainLen(0))
	}
	g := NewGCDaemon(e, time.Millisecond)
	g.Start()
	defer g.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if reclaimed, passes := g.Stats(); reclaimed > 0 && passes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon reclaimed nothing")
		}
		time.Sleep(time.Millisecond)
	}
	g.Stop()
	if h.Ref.Versions.ChainLen(0) > 1 {
		t.Fatalf("chain after GC = %d", h.Ref.Versions.ChainLen(0))
	}
	// Idempotent start/stop.
	g.Stop()
	g.Start()
	g.Stop()
}

func TestGCDaemonRespectsActiveReaders(t *testing.T) {
	e := NewEngine()
	h := e.CreateTable(testSchema(), 8, false)
	h.Table().AppendRows([][]int64{{0, 42}}, 0)

	reader := e.Manager().Begin() // pins the pre-update snapshot
	for i := 0; i < 20; i++ {
		if _, err := e.Manager().RunWithRetry(0, func(tx *txn.Txn) error {
			return tx.Write(h.Ref, 0, 1, int64(i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	g := NewGCDaemon(e, time.Millisecond)
	g.Start()
	time.Sleep(20 * time.Millisecond)
	// The reader's snapshot must still resolve.
	if v, ok := reader.Read(h.Ref, 0, 1); !ok || v != 42 {
		t.Fatalf("pinned snapshot lost: %d,%v", v, ok)
	}
	reader.Abort()
	g.Stop()
}
