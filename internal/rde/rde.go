// Package rde implements the Resource and Data Exchange engine (§3.4): the
// integration layer that owns memory and CPU resources, switches the OLTP
// active instance, synchronizes the twin instances through the
// update-indication bits, performs delta-ETL into the OLAP replicas, and
// builds the access paths (olap.Source) each system state prescribes.
package rde

import (
	"fmt"
	"sync"
	"sync/atomic"

	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
	"elastichtap/internal/txn"
)

// Exchange is the RDE engine.
type Exchange struct {
	Ledger *topology.Ledger
	Model  *costmodel.Model
	OLTP   *oltp.Engine
	OLAP   *olap.Engine

	// OLTPSocket hosts the twin instances and index; OLAPSocket hosts the
	// OLAP replicas. At bootstrap each engine gets one full socket (§5.1).
	OLTPSocket, OLAPSocket int

	mu         sync.Mutex
	exchangeMu sync.Mutex                   // serializes switch+sync/ETL cycles
	replicas   map[string]*columnar.Replica //htap:guardedby mu

	// latches order in-flight analytical scans (readers) against writers
	// that mutate cells a scan could be reading without atomics: the
	// twin-instance sync after a switch re-activates the instance a prior
	// query snapshotted, and the delta-ETL overwrites updated replica
	// rows in place. Writers take a table's latch exclusively only when
	// the table has in-place updates (Table.UpdateCount > 0) — for
	// insert-only tables every write lands on rows beyond any scan's
	// watermark, so their scans are never waited on.
	latchMu sync.Mutex
	latches map[string]*sync.RWMutex //htap:guardedby latchMu

	// probe, when set, fires at named internal points: "switch" after a
	// table's instance switch but before the twin sync, "etl" between a
	// table's update copy and its insert copy. The crash harness injects
	// a panicking probe to model process death mid-exchange; production
	// leaves it nil.
	probe atomic.Pointer[func(point, table string)]

	// lifetime counters (diagnostics and tests)
	switches   int64 //htap:guardedby mu
	syncedRows int64 //htap:guardedby mu
	etlBytes   int64 //htap:guardedby mu
}

// SetProbe installs (or, with nil, removes) the internal fault probe.
func (x *Exchange) SetProbe(fn func(point, table string)) {
	if fn == nil {
		x.probe.Store(nil)
		return
	}
	x.probe.Store(&fn)
}

// fireProbe invokes the installed probe, if any.
func (x *Exchange) fireProbe(point, table string) {
	if fn := x.probe.Load(); fn != nil {
		(*fn)(point, table)
	}
}

// New wires an exchange over the two engines. The OLTP engine keeps socket
// oltpSocket, the OLAP engine olapSocket.
func New(ledger *topology.Ledger, model *costmodel.Model, ol *oltp.Engine, oa *olap.Engine, oltpSocket, olapSocket int) *Exchange {
	return &Exchange{
		Ledger:     ledger,
		Model:      model,
		OLTP:       ol,
		OLAP:       oa,
		OLTPSocket: oltpSocket,
		OLAPSocket: olapSocket,
		replicas:   map[string]*columnar.Replica{},
		latches:    map[string]*sync.RWMutex{},
	}
}

// latch returns (creating on first use) the table's scan latch.
func (x *Exchange) latch(table string) *sync.RWMutex {
	x.latchMu.Lock()
	defer x.latchMu.Unlock()
	l := x.latches[table]
	if l == nil {
		l = new(sync.RWMutex)
		x.latches[table] = l
	}
	return l
}

// BeginScan registers an in-flight analytical scan over the table's
// snapshot instance and replica, and returns the release function. While
// held, the table's instance cannot be re-activated-and-synced and its
// replica's updated rows cannot be overwritten by ETL, so the scan's
// non-atomic block reads stay race-free even for update workloads.
func (x *Exchange) BeginScan(table string) func() {
	l := x.latch(table)
	l.RLock()
	return l.RUnlock
}

// Replica returns (creating on first use) the OLAP instance of a table.
func (x *Exchange) Replica(h *oltp.TableHandle) *columnar.Replica {
	name := h.Table().Schema().Name
	x.mu.Lock()
	defer x.mu.Unlock()
	r := x.replicas[name]
	if r == nil {
		r = columnar.NewReplica(h.Table())
		x.replicas[name] = r
	}
	return r
}

// Snapshot is one table's consistent snapshot after an instance switch.
type Snapshot struct {
	Handle *oltp.TableHandle
	Inst   *columnar.Instance
	// InstIndex is the snapshot's instance number (0 or 1).
	InstIndex int
	// Rows is the snapshot row count.
	Rows int64
	// SwitchTS is the transaction-manager clock at the switch; rows with a
	// newer commit timestamp postdate the snapshot.
	SwitchTS uint64
}

// SnapshotSet is the outcome of switching every requested table.
type SnapshotSet struct {
	Snaps map[string]*Snapshot
	// CopiedRows is how many records the twin-instance sync propagated.
	CopiedRows int64
	// SyncSeconds is the modeled duration of the sync ("negligible ...
	// around 10ms to sync around 1 million modified tuples", §3.4).
	SyncSeconds float64
}

// Snap returns the snapshot for a table name, or nil.
func (s *SnapshotSet) Snap(name string) *Snapshot {
	if s == nil {
		return nil
	}
	return s.Snaps[name]
}

// SwitchAndSync instructs the OLTP engine to switch the active instance of
// every table and immediately propagates divergent records to the new
// active instance, taking per-record locks through the shared lock table
// so copies never race committing transactions (§3.4).
func (x *Exchange) SwitchAndSync(tables []*oltp.TableHandle) *SnapshotSet {
	return x.switchAndSync(tables, true)
}

// SwitchAndSyncQuiesced is SwitchAndSync for callers that have excluded
// commit application (txn.Manager.CommitBarrier): no commit is mid-apply,
// so cells are stable and the twin sync skips the per-record locks —
// which would deadlock against a committer already holding record locks
// while blocked on the barrier.
func (x *Exchange) SwitchAndSyncQuiesced(tables []*oltp.TableHandle) *SnapshotSet {
	return x.switchAndSync(tables, false)
}

func (x *Exchange) switchAndSync(tables []*oltp.TableHandle, recordLocks bool) *SnapshotSet {
	// One exchange at a time: concurrent switch+sync cycles would hand out
	// overlapping snapshots and race the twin synchronization.
	x.exchangeMu.Lock()
	defer x.exchangeMu.Unlock()
	set := &SnapshotSet{Snaps: make(map[string]*Snapshot, len(tables))}
	locks := x.OLTP.Manager().Locks()
	for _, h := range tables {
		func() {
			t := h.Table()
			// Updated tables: the switch re-activates the instance a
			// prior query may still be scanning, after which transactions
			// and the sync below write into it — wait for those scans to
			// drain. Insert-only tables switch without waiting.
			if t.UpdateCount() > 0 {
				lat := x.latch(t.Schema().Name)
				lat.Lock()
				defer lat.Unlock()
			}
			ts := x.OLTP.Manager().Now()
			sw := t.Switch()
			x.fireProbe("switch", t.Schema().Name)
			tabID := h.Ref.ID
			lock := func(row int64) func() {
				k := txn.LockKey{Tab: tabID, Row: row}
				locks.AcquireSync(k)
				return func() { locks.Release(k) }
			}
			if !recordLocks {
				lock = func(int64) func() { return func() {} }
			}
			copied := t.SyncTo(sw.SnapshotIndex, lock)
			set.CopiedRows += int64(copied)
			set.SyncSeconds += x.Model.SyncTime(int64(copied), sw.SnapshotRows)
			if h.Sec != nil {
				// Bring secondary indexes up to the switch boundary while
				// the exclusive latch still fences analytical scans.
				h.Sec.Refresh()
			}
			set.Snaps[t.Schema().Name] = &Snapshot{
				Handle:    h,
				Inst:      sw.Snapshot,
				InstIndex: sw.SnapshotIndex,
				Rows:      sw.SnapshotRows,
				SwitchTS:  ts,
			}
		}()
	}
	x.mu.Lock()
	x.switches++
	x.syncedRows += set.CopiedRows
	x.mu.Unlock()
	return set
}

// ETLResult summarizes one delta-ETL.
type ETLResult struct {
	Bytes        int64
	UpdatedRows  int64
	InsertedRows int64
	// Seconds is the modeled copy duration using the OLAP engine's cores
	// over the interconnect (§3.4 S2).
	Seconds float64
}

// ETL copies the fresh delta of every snapshotted table into its OLAP
// replica: updated rows individually (guided by the update-indication
// bits), inserted rows in bulk, then advances the replica watermark.
// Bits for records updated after the snapshot are preserved for the next
// ETL rather than lost.
func (x *Exchange) ETL(set *SnapshotSet) ETLResult {
	var res ETLResult
	for _, snap := range set.Snaps {
		t := snap.Handle.Table()
		rep := x.Replica(snap.Handle)
		repRows := rep.Rows()
		if t.UpdateCount() > 0 {
			// CopyRow overwrites replica rows below the watermark that a
			// concurrent replica scan may be reading; wait those scans
			// out. Insert-only tables only append past every scan's
			// watermark and need no exclusion.
			func() {
				lat := x.latch(t.Schema().Name)
				lat.Lock()
				defer lat.Unlock()
				res.addUpdates(snap, t, rep, repRows)
			}()
		} else {
			res.addUpdates(snap, t, rep, repRows)
		}
		x.fireProbe("etl", t.Schema().Name)
		if snap.Rows > repRows {
			res.Bytes += rep.CopyInserts(snap.Inst, repRows, snap.Rows)
			res.InsertedRows += snap.Rows - repRows
		}
		if snap.Handle.Sec != nil {
			// ETL batch boundary: extend built secondary indexes over the
			// rows the replica just absorbed.
			snap.Handle.Sec.Refresh()
		}
	}
	res.Seconds = x.Model.ETLTime(res.Bytes, x.Ledger.Count(x.OLAPSocket, topology.OLAP))
	x.mu.Lock()
	x.etlBytes += res.Bytes
	x.mu.Unlock()
	return res
}

// addUpdates drains the table's update-indication bits, copying eligible
// updated rows into the replica (the in-place half of the delta-ETL).
func (res *ETLResult) addUpdates(snap *Snapshot, t *columnar.Table, rep *columnar.Replica, repRows int64) {
	bits := t.DirtyOLAP()
	bits.ForEachSet(func(i int) {
		row := int64(i)
		if row >= snap.Rows {
			return // postdates the snapshot; keep for next time
		}
		bits.Clear(i)
		if t.RowTS(row) > snap.SwitchTS {
			// Re-updated after the snapshot: keep the record fresh for
			// the next ETL; copying the (older) snapshot value now
			// would only waste interconnect bandwidth.
			bits.Set(i)
			return
		}
		if row < repRows {
			res.Bytes += rep.CopyRow(snap.Inst, row)
			res.UpdatedRows++
		}
	})
}

// Freshness is the scheduler's driving metric (§4.2).
type Freshness struct {
	// Nfq is the fresh data the OLAP engine must obtain to satisfy the
	// current query with freshness-rate 1: the full-row bytes of the fact
	// table's fresh records (the ETL granularity is whole records). As
	// inserts accumulate while the bounded update working-set saturates,
	// Nfq/Nft approaches 1 and Algorithm 2 migrates to S2 (§4.2).
	Nfq int64
	// NfqColumns is the same measure restricted to the columns the query
	// scans — the fresh bytes actually crossing the interconnect under
	// split access (Figure 4's x-axis).
	NfqColumns int64
	// Nft is the fresh bytes needed to update the whole OLAP instance.
	Nft int64
	// QueryFreshRows / QueryUpdatedRows describe the query's fact table.
	QueryFreshRows   int64
	QueryUpdatedRows int64
	// Rate is the freshness-rate metric: identical tuples over total
	// tuples between the OLAP replicas and the active OLTP instances.
	Rate float64
}

// MeasureFreshness computes Nfq for a query over factTable touching nCols
// columns, and Nft and Rate across all tables, relative to the OLAP
// replicas. An empty factTable measures the system-wide quantities only
// (Nfq and the per-query fields stay zero) — the facade's Freshness probe
// with no query in hand.
func (x *Exchange) MeasureFreshness(tables []*oltp.TableHandle, factTable string, nCols int) Freshness {
	var f Freshness
	var totalRows, freshRows int64
	for _, h := range tables {
		fresh, rows, updated := x.tableFresh(h)
		f.Nft += fresh * h.Table().Schema().RowBytes()
		totalRows += rows
		freshRows += fresh
		if h.Table().Schema().Name == factTable {
			f.QueryFreshRows = fresh
			f.QueryUpdatedRows = updated
			f.Nfq = fresh * h.Table().Schema().RowBytes()
			f.NfqColumns = fresh * int64(nCols) * columnar.WordBytes
		}
	}
	f.Rate = freshRate(freshRows, totalRows)
	return f
}

// tableFresh measures one table against its replica: the fresh rows
// (updated + inserted since the replica watermark), the table's total
// rows, and the updated subset — the shared ingredient of every
// freshness probe, so the system-wide and per-table measures can never
// drift apart.
func (x *Exchange) tableFresh(h *oltp.TableHandle) (fresh, rows, updated int64) {
	st := h.Table().FreshSince(x.Replica(h).Rows())
	return st.UpdatedRows + st.InsertedRows, st.Rows, st.UpdatedRows
}

// freshRate is the freshness-rate metric over a row population: the
// share of replica-identical tuples, 1 for an empty population.
func freshRate(fresh, rows int64) float64 {
	if rows > 0 {
		return float64(rows-fresh) / float64(rows)
	}
	return 1
}

// TableFreshness measures one table's freshness in isolation: the rate
// of replica-identical tuples over the table's total tuples, and the
// full-row fresh bytes an ETL of just this table would copy. Workloads
// that never touch orderline (payment-only mixes, custom fact tables)
// read their real staleness here instead of a system-wide blend.
func (x *Exchange) TableFreshness(h *oltp.TableHandle) Freshness {
	fresh, rows, updated := x.tableFresh(h)
	bytes := fresh * h.Table().Schema().RowBytes()
	return Freshness{
		Nfq:              bytes,
		Nft:              bytes,
		QueryFreshRows:   fresh,
		QueryUpdatedRows: updated,
		Rate:             freshRate(fresh, rows),
	}
}

// AccessMethod selects how a query reads its fact table.
type AccessMethod int8

const (
	// ReadReplica scans the OLAP replica only (after ETL; state S2).
	ReadReplica AccessMethod = iota
	// ReadSnapshot scans the whole OLTP snapshot instance (states S1,
	// S3-NI without split, S3-IS full-remote).
	ReadSnapshot
	// ReadSplit scans the OLAP replica for cold rows and the OLTP snapshot
	// for fresh rows (the split-access optimization, §5.2, valid only for
	// insert-only tables).
	ReadSplit
)

// String names the access method.
func (m AccessMethod) String() string {
	switch m {
	case ReadReplica:
		return "replica"
	case ReadSnapshot:
		return "snapshot"
	case ReadSplit:
		return "split"
	default:
		return fmt.Sprintf("method(%d)", int8(m))
	}
}

// SourceFor builds the olap.Source realizing the access method for the
// query's fact table. Data homed on the OLTP socket stays there even when
// memory ownership moves between engines, matching the paper's S1 where
// both engines access memory allocated by the OLTP engine.
func (x *Exchange) SourceFor(method AccessMethod, snap *Snapshot) olap.Source {
	t := snap.Handle.Table()
	rep := x.Replica(snap.Handle)
	switch method {
	case ReadReplica:
		return olap.Source{Table: t, Parts: []olap.Part{
			{Data: rep, Lo: 0, Hi: rep.Rows(), Socket: x.OLAPSocket, Label: "olap-replica"},
		}}
	case ReadSnapshot:
		return olap.Source{Table: t, Parts: []olap.Part{
			{Data: snap.Inst, Lo: 0, Hi: snap.Rows, Socket: x.OLTPSocket, Label: "oltp-snapshot"},
		}}
	case ReadSplit:
		repRows := rep.Rows()
		if repRows > snap.Rows {
			repRows = snap.Rows
		}
		src := olap.Source{Table: t}
		if repRows > 0 {
			src.Parts = append(src.Parts, olap.Part{
				Data: rep, Lo: 0, Hi: repRows, Socket: x.OLAPSocket, Label: "olap-replica",
			})
		}
		if snap.Rows > repRows {
			src.Parts = append(src.Parts, olap.Part{
				Data: snap.Inst, Lo: repRows, Hi: snap.Rows, Socket: x.OLTPSocket, Label: "oltp-snapshot",
			})
		}
		return src
	default:
		panic(fmt.Sprintf("rde: unknown access method %d", method))
	}
}

// Counters reports lifetime statistics.
func (x *Exchange) Counters() (switches, syncedRows, etlBytes int64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.switches, x.syncedRows, x.etlBytes
}
