package rde

import (
	"math/rand"
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
)

func newExchange(t *testing.T) (*Exchange, *ch.DB) {
	t.Helper()
	topo := topology.DefaultConfig()
	ledger, err := topology.NewLedger(topo)
	if err != nil {
		t.Fatal(err)
	}
	ledger.AssignSocket(0, topology.OLTP)
	ledger.AssignSocket(1, topology.OLAP)
	model := costmodel.New(topo, costmodel.DefaultParams())
	engine := oltp.NewEngine()
	db := ch.Load(engine, ch.TinySizing(), 1)
	x := New(ledger, model, engine, olap.NewEngine(topo.Sockets), 0, 1)
	return x, db
}

func TestSwitchAndSyncProducesConsistentSnapshot(t *testing.T) {
	x, db := newExchange(t)
	tables := db.Tables()
	set := x.SwitchAndSync(tables)
	if len(set.Snaps) != len(tables) {
		t.Fatalf("snaps = %d", len(set.Snaps))
	}
	snap := set.Snap(ch.TOrderLine)
	if snap == nil || snap.Rows != db.OrderLine.Table().Rows() {
		t.Fatalf("orderline snapshot = %+v", snap)
	}
	// Run updates, then switch again; the sync must make the twins equal.
	rng := rand.New(rand.NewSource(5))
	mgr := db.Engine.Manager()
	for i := 0; i < 30; i++ {
		if _, err := mgr.RunWithRetry(100, db.Payment(rng, 1)); err != nil {
			t.Fatal(err)
		}
	}
	set2 := x.SwitchAndSync(tables)
	if set2.CopiedRows == 0 {
		t.Fatal("payments produced no dirty records to sync")
	}
	wt := db.Warehouse.Table()
	for r := int64(0); r < wt.Rows(); r++ {
		for c := range wt.Schema().Columns {
			if wt.ReadCell(0, r, c) != wt.ReadCell(1, r, c) {
				t.Fatalf("warehouse twin divergence row %d col %d", r, c)
			}
		}
	}
	if set2.SyncSeconds <= 0 {
		t.Fatal("sync must cost simulated time")
	}
}

func TestETLMakesReplicaFresh(t *testing.T) {
	x, db := newExchange(t)
	tables := db.Tables()
	set := x.SwitchAndSync(tables)
	res := x.ETL(set)
	if res.Bytes == 0 || res.InsertedRows == 0 {
		t.Fatalf("initial ETL copied nothing: %+v", res)
	}
	rep := x.Replica(db.OrderLine)
	if rep.Rows() != db.OrderLine.Table().Rows() {
		t.Fatalf("replica rows = %d, want %d", rep.Rows(), db.OrderLine.Table().Rows())
	}
	// Content equivalence against the snapshot.
	snap := set.Snap(ch.TOrderLine)
	for r := int64(0); r < snap.Rows; r += 101 {
		if !rep.EqualRow(snap.Inst, r) {
			t.Fatalf("replica row %d differs from snapshot", r)
		}
	}
	// Freshness collapses to ~0 after ETL.
	f := x.MeasureFreshness(tables, ch.TOrderLine, 3)
	if f.Nfq != 0 {
		t.Fatalf("Nfq after ETL = %d, want 0", f.Nfq)
	}
	if f.Rate < 0.999 {
		t.Fatalf("freshness rate = %v, want ~1", f.Rate)
	}
}

func TestETLPropagatesUpdates(t *testing.T) {
	x, db := newExchange(t)
	tables := db.Tables()
	x.ETL(x.SwitchAndSync(tables)) // baseline replica

	rng := rand.New(rand.NewSource(6))
	mgr := db.Engine.Manager()
	for i := 0; i < 20; i++ {
		if _, err := mgr.RunWithRetry(100, db.Payment(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	set := x.SwitchAndSync(tables)
	res := x.ETL(set)
	if res.UpdatedRows == 0 {
		t.Fatal("ETL propagated no updated rows")
	}
	// The warehouse replica now matches the snapshot for row 1 (w=2).
	rep := x.Replica(db.Warehouse)
	snap := set.Snap(ch.TWarehouse)
	for r := int64(0); r < snap.Rows; r++ {
		if !rep.EqualRow(snap.Inst, r) {
			t.Fatalf("warehouse replica row %d stale after ETL", r)
		}
	}
}

func TestFreshnessCountsInsertsAndUpdates(t *testing.T) {
	x, db := newExchange(t)
	tables := db.Tables()
	x.ETL(x.SwitchAndSync(tables))

	rng := rand.New(rand.NewSource(7))
	mgr := db.Engine.Manager()
	for i := 0; i < 10; i++ {
		if _, err := mgr.RunWithRetry(100, db.NewOrder(rng, 1)); err != nil {
			t.Fatal(err)
		}
	}
	f := x.MeasureFreshness(tables, ch.TOrderLine, 3)
	if f.QueryFreshRows < 50 {
		t.Fatalf("fresh fact rows = %d, want >= 50", f.QueryFreshRows)
	}
	if f.QueryUpdatedRows != 0 {
		t.Fatalf("orderline is insert-only; updated = %d", f.QueryUpdatedRows)
	}
	wantNfq := f.QueryFreshRows * db.OrderLine.Table().Schema().RowBytes()
	if f.Nfq != wantNfq {
		t.Fatalf("Nfq = %d, want %d (whole-row accounting)", f.Nfq, wantNfq)
	}
	wantCols := f.QueryFreshRows * 3 * columnar.WordBytes
	if f.NfqColumns != wantCols {
		t.Fatalf("NfqColumns = %d, want %d", f.NfqColumns, wantCols)
	}
	if f.Nft <= f.Nfq {
		t.Fatalf("Nft = %d must exceed Nfq = %d (stock updates, orders...)", f.Nft, f.Nfq)
	}
	if f.Rate >= 1 {
		t.Fatalf("rate = %v, want < 1 with fresh data", f.Rate)
	}
}

func TestSourceForMethods(t *testing.T) {
	x, db := newExchange(t)
	tables := db.Tables()
	set := x.SwitchAndSync(tables)
	x.ETL(set)

	// Grow the table so split has a fresh suffix.
	rng := rand.New(rand.NewSource(8))
	mgr := db.Engine.Manager()
	for i := 0; i < 5; i++ {
		if _, err := mgr.RunWithRetry(100, db.NewOrder(rng, 1)); err != nil {
			t.Fatal(err)
		}
	}
	set = x.SwitchAndSync(tables)
	snap := set.Snap(ch.TOrderLine)
	repRows := x.Replica(db.OrderLine).Rows()

	replica := x.SourceFor(ReadReplica, snap)
	if len(replica.Parts) != 1 || replica.Parts[0].Socket != 1 || replica.Parts[0].Hi != repRows {
		t.Fatalf("replica source = %+v", replica.Parts)
	}
	full := x.SourceFor(ReadSnapshot, snap)
	if len(full.Parts) != 1 || full.Parts[0].Socket != 0 || full.Parts[0].Hi != snap.Rows {
		t.Fatalf("snapshot source = %+v", full.Parts)
	}
	split := x.SourceFor(ReadSplit, snap)
	if len(split.Parts) != 2 {
		t.Fatalf("split parts = %d", len(split.Parts))
	}
	if split.Parts[0].Hi != repRows || split.Parts[1].Lo != repRows || split.Parts[1].Hi != snap.Rows {
		t.Fatalf("split ranges wrong: %+v", split.Parts)
	}
	if split.Rows() != snap.Rows {
		t.Fatalf("split covers %d rows, want %d", split.Rows(), snap.Rows)
	}
}

func TestETLPreservesPostSnapshotBits(t *testing.T) {
	x, db := newExchange(t)
	tables := []*oltp.TableHandle{db.Warehouse}
	x.ETL(x.SwitchAndSync(tables))

	// Update after taking the next snapshot: the bit must survive the ETL.
	set := x.SwitchAndSync(tables)
	wt := db.Warehouse.Table()
	wt.UpdateCell(0, ch.WYtd, columnar.EncodeFloat(777), db.Engine.Manager().Now()+100)
	x.ETL(set)
	st := wt.FreshSince(x.Replica(db.Warehouse).Rows())
	if st.UpdatedRows != 1 {
		t.Fatalf("post-snapshot update lost: fresh updated = %d", st.UpdatedRows)
	}
}

func TestCounters(t *testing.T) {
	x, db := newExchange(t)
	x.ETL(x.SwitchAndSync(db.Tables()))
	switches, _, etlBytes := x.Counters()
	if switches != 1 {
		t.Fatalf("switches = %d, want 1 per SwitchAndSync call", switches)
	}
	if etlBytes == 0 {
		t.Fatal("etl bytes not counted")
	}
}
