// Package topology models the scale-up server the HTAP system runs on:
// CPU sockets, cores per socket, per-socket memory bandwidth and the
// cross-socket interconnect. It also provides the core-ownership Ledger the
// RDE engine uses to hand compute resources to the OLTP and OLAP engines.
//
// The paper runs on a 2x14-core Xeon with real thread pinning. The Go
// runtime hides core pinning, so placement is represented explicitly here
// and its performance consequences are charged by internal/costmodel.
package topology

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Engine identifies the owner of a compute resource.
type Engine int8

const (
	// Free marks a core owned by no engine (held by the RDE).
	Free Engine = iota
	// OLTP marks a core owned by the transactional engine.
	OLTP
	// OLAP marks a core owned by the analytical engine.
	OLAP
)

// String returns the conventional short name of the engine.
func (e Engine) String() string {
	switch e {
	case Free:
		return "free"
	case OLTP:
		return "oltp"
	case OLAP:
		return "olap"
	default:
		return fmt.Sprintf("engine(%d)", int8(e))
	}
}

// CoreID names a hardware thread as (socket, index-within-socket).
type CoreID struct {
	Socket int
	Index  int
}

// String formats the core as "sN.cM".
func (c CoreID) String() string { return fmt.Sprintf("s%d.c%d", c.Socket, c.Index) }

// Config describes the machine. Bandwidths are bytes/second.
type Config struct {
	Sockets        int     // number of CPU sockets
	CoresPerSocket int     // hardware threads per socket
	LocalBW        float64 // per-socket DRAM bandwidth, bytes/s
	InterconnectBW float64 // per-link cross-socket bandwidth, bytes/s (one direction)
	MemPerSocket   int64   // bytes of DRAM attached to each socket
}

// DefaultConfig returns the paper's evaluation machine: 2 sockets x 14
// cores. The interconnect figure is the *effective* cross-socket scan
// bandwidth with prefetch overlapped onto execution (§3.3); it stays a
// few times below the local memory bandwidth (§3.4).
func DefaultConfig() Config {
	return Config{
		Sockets:        2,
		CoresPerSocket: 14,
		LocalBW:        80e9,
		InterconnectBW: 16e9,
		MemPerSocket:   768 << 30,
	}
}

// FourSocketConfig returns the 4-socket server used for Figure 1, where the
// two engines occupy two of the four sockets.
func FourSocketConfig() Config {
	c := DefaultConfig()
	c.Sockets = 4
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Sockets <= 0:
		return errors.New("topology: Sockets must be positive")
	case c.CoresPerSocket <= 0:
		return errors.New("topology: CoresPerSocket must be positive")
	case c.LocalBW <= 0:
		return errors.New("topology: LocalBW must be positive")
	case c.InterconnectBW <= 0:
		return errors.New("topology: InterconnectBW must be positive")
	case c.InterconnectBW > c.LocalBW:
		return errors.New("topology: interconnect faster than local memory is not a scale-up server")
	}
	return nil
}

// TotalCores returns the number of hardware threads on the machine.
func (c Config) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// Ledger tracks which engine owns each core. It is the single source of
// truth for compute placement; the RDE engine is its only writer during
// state migrations, but reads may come from any goroutine.
type Ledger struct {
	cfg Config

	mu    sync.RWMutex
	owner [][]Engine // [socket][core]
}

// NewLedger builds a ledger with every core free.
func NewLedger(cfg Config) (*Ledger, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	owner := make([][]Engine, cfg.Sockets)
	for s := range owner {
		owner[s] = make([]Engine, cfg.CoresPerSocket)
	}
	return &Ledger{cfg: cfg, owner: owner}, nil
}

// Config returns the machine description the ledger was built with.
func (l *Ledger) Config() Config { return l.cfg }

// Owner returns the engine owning the given core.
func (l *Ledger) Owner(c CoreID) (Engine, error) {
	if err := l.check(c); err != nil {
		return Free, err
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.owner[c.Socket][c.Index], nil
}

func (l *Ledger) check(c CoreID) error {
	if c.Socket < 0 || c.Socket >= l.cfg.Sockets || c.Index < 0 || c.Index >= l.cfg.CoresPerSocket {
		return fmt.Errorf("topology: core %v out of range for %dx%d machine", c, l.cfg.Sockets, l.cfg.CoresPerSocket)
	}
	return nil
}

// Assign transfers ownership of the core to the engine, regardless of the
// previous owner. Use Free to return the core to the RDE.
func (l *Ledger) Assign(c CoreID, e Engine) error {
	if err := l.check(c); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.owner[c.Socket][c.Index] = e
	return nil
}

// AssignSocket gives every core of the socket to the engine.
func (l *Ledger) AssignSocket(socket int, e Engine) error {
	if socket < 0 || socket >= l.cfg.Sockets {
		return fmt.Errorf("topology: socket %d out of range", socket)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.owner[socket] {
		l.owner[socket][i] = e
	}
	return nil
}

// NextFree returns the lowest-index free core on the socket, if any.
func (l *Ledger) NextFree(socket int) (CoreID, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if socket < 0 || socket >= l.cfg.Sockets {
		return CoreID{}, false
	}
	for i, e := range l.owner[socket] {
		if e == Free {
			return CoreID{Socket: socket, Index: i}, true
		}
	}
	return CoreID{}, false
}

// NextOwned returns the highest-index core on the socket owned by the
// engine, if any. Migrations revoke the most recently granted cores first.
func (l *Ledger) NextOwned(socket int, e Engine) (CoreID, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if socket < 0 || socket >= l.cfg.Sockets {
		return CoreID{}, false
	}
	for i := l.cfg.CoresPerSocket - 1; i >= 0; i-- {
		if l.owner[socket][i] == e {
			return CoreID{Socket: socket, Index: i}, true
		}
	}
	return CoreID{}, false
}

// Count returns the number of cores the engine owns on the socket.
func (l *Ledger) Count(socket int, e Engine) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if socket < 0 || socket >= l.cfg.Sockets {
		return 0
	}
	n := 0
	for _, o := range l.owner[socket] {
		if o == e {
			n++
		}
	}
	return n
}

// CountTotal returns the number of cores the engine owns machine-wide.
func (l *Ledger) CountTotal(e Engine) int {
	n := 0
	for s := 0; s < l.cfg.Sockets; s++ {
		n += l.Count(s, e)
	}
	return n
}

// SocketsOwned returns the sockets where the engine owns every core.
func (l *Ledger) SocketsOwned(e Engine) []int {
	var out []int
	for s := 0; s < l.cfg.Sockets; s++ {
		if l.Count(s, e) == l.cfg.CoresPerSocket {
			out = append(out, s)
		}
	}
	return out
}

// Placement summarizes an engine's core allocation per socket.
type Placement struct {
	// PerSocket[s] is the number of cores the engine owns on socket s.
	PerSocket []int
}

// Total returns the machine-wide number of cores in the placement.
func (p Placement) Total() int {
	n := 0
	for _, c := range p.PerSocket {
		n += c
	}
	return n
}

// Sockets returns the sockets (ascending) where the placement has cores.
func (p Placement) Sockets() []int {
	var out []int
	for s, c := range p.PerSocket {
		if c > 0 {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// On returns the core count on socket s (0 if out of range).
func (p Placement) On(s int) int {
	if s < 0 || s >= len(p.PerSocket) {
		return 0
	}
	return p.PerSocket[s]
}

// Equal reports whether two placements allocate the same cores per socket
// (missing sockets count as zero).
func (p Placement) Equal(q Placement) bool {
	n := len(p.PerSocket)
	if len(q.PerSocket) > n {
		n = len(q.PerSocket)
	}
	for s := 0; s < n; s++ {
		if p.On(s) != q.On(s) {
			return false
		}
	}
	return true
}

// Diff returns the per-socket core deltas migrating from p to q: out[s] =
// q.On(s) - p.On(s), over the longer of the two socket lists. Positive
// entries are cores the engine gains, negative entries cores it must cede
// — the worker-pool resize an RDE migration enforces.
func (p Placement) Diff(q Placement) []int {
	n := len(p.PerSocket)
	if len(q.PerSocket) > n {
		n = len(q.PerSocket)
	}
	out := make([]int, n)
	for s := 0; s < n; s++ {
		out[s] = q.On(s) - p.On(s)
	}
	return out
}

// Clone returns a deep copy of the placement.
func (p Placement) Clone() Placement {
	out := Placement{PerSocket: make([]int, len(p.PerSocket))}
	copy(out.PerSocket, p.PerSocket)
	return out
}

// PlacementOf snapshots the engine's current core allocation.
func (l *Ledger) PlacementOf(e Engine) Placement {
	p := Placement{PerSocket: make([]int, l.cfg.Sockets)}
	for s := 0; s < l.cfg.Sockets; s++ {
		p.PerSocket[s] = l.Count(s, e)
	}
	return p
}

// Snapshot returns a copy of the full ownership table, for diagnostics.
func (l *Ledger) Snapshot() [][]Engine {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([][]Engine, len(l.owner))
	for s := range l.owner {
		out[s] = append([]Engine(nil), l.owner[s]...)
	}
	return out
}

// String renders the ownership table, one socket per line.
func (l *Ledger) String() string {
	snap := l.Snapshot()
	s := ""
	for i, row := range snap {
		s += fmt.Sprintf("socket %d:", i)
		for _, e := range row {
			switch e {
			case OLTP:
				s += " T"
			case OLAP:
				s += " A"
			default:
				s += " ."
			}
		}
		s += "\n"
	}
	return s
}
