package topology

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Sockets = 0
	if bad.Validate() == nil {
		t.Fatal("zero sockets must fail")
	}
	bad = DefaultConfig()
	bad.InterconnectBW = bad.LocalBW * 2
	if bad.Validate() == nil {
		t.Fatal("interconnect faster than DRAM must fail")
	}
}

func TestLedgerAssignAndCount(t *testing.T) {
	l, err := NewLedger(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := l.CountTotal(Free); got != 28 {
		t.Fatalf("free cores = %d", got)
	}
	if err := l.AssignSocket(0, OLTP); err != nil {
		t.Fatal(err)
	}
	if err := l.AssignSocket(1, OLAP); err != nil {
		t.Fatal(err)
	}
	if l.Count(0, OLTP) != 14 || l.Count(1, OLAP) != 14 {
		t.Fatalf("counts wrong: %d %d", l.Count(0, OLTP), l.Count(1, OLAP))
	}
	if err := l.Assign(CoreID{Socket: 0, Index: 13}, OLAP); err != nil {
		t.Fatal(err)
	}
	if l.Count(0, OLTP) != 13 || l.Count(0, OLAP) != 1 {
		t.Fatal("single-core transfer not reflected")
	}
	owner, err := l.Owner(CoreID{Socket: 0, Index: 13})
	if err != nil || owner != OLAP {
		t.Fatalf("owner = %v, %v", owner, err)
	}
}

func TestLedgerBoundsChecks(t *testing.T) {
	l, _ := NewLedger(DefaultConfig())
	if err := l.Assign(CoreID{Socket: 5, Index: 0}, OLTP); err == nil {
		t.Fatal("out-of-range socket accepted")
	}
	if err := l.AssignSocket(-1, OLAP); err == nil {
		t.Fatal("negative socket accepted")
	}
	if _, err := l.Owner(CoreID{Socket: 0, Index: 99}); err == nil {
		t.Fatal("out-of-range core accepted")
	}
}

func TestNextFreeAndNextOwned(t *testing.T) {
	l, _ := NewLedger(DefaultConfig())
	c, ok := l.NextFree(0)
	if !ok || c != (CoreID{Socket: 0, Index: 0}) {
		t.Fatalf("NextFree = %v, %v", c, ok)
	}
	l.Assign(CoreID{Socket: 0, Index: 0}, OLTP)
	l.Assign(CoreID{Socket: 0, Index: 3}, OLTP)
	c, ok = l.NextOwned(0, OLTP)
	if !ok || c.Index != 3 {
		t.Fatalf("NextOwned = %v, %v (want highest index)", c, ok)
	}
	if _, ok := l.NextOwned(1, OLTP); ok {
		t.Fatal("NextOwned on empty socket should miss")
	}
}

func TestSocketsOwned(t *testing.T) {
	l, _ := NewLedger(DefaultConfig())
	l.AssignSocket(1, OLAP)
	if got := l.SocketsOwned(OLAP); len(got) != 1 || got[0] != 1 {
		t.Fatalf("SocketsOwned = %v", got)
	}
	l.Assign(CoreID{Socket: 1, Index: 0}, OLTP)
	if got := l.SocketsOwned(OLAP); len(got) != 0 {
		t.Fatalf("partial socket reported as owned: %v", got)
	}
}

func TestPlacement(t *testing.T) {
	p := Placement{PerSocket: []int{3, 0, 5}}
	if p.Total() != 8 {
		t.Fatalf("Total = %d", p.Total())
	}
	if s := p.Sockets(); len(s) != 2 || s[0] != 0 || s[1] != 2 {
		t.Fatalf("Sockets = %v", s)
	}
	if p.On(1) != 0 || p.On(2) != 5 || p.On(9) != 0 {
		t.Fatal("On values wrong")
	}
	c := p.Clone()
	c.PerSocket[0] = 99
	if p.PerSocket[0] != 3 {
		t.Fatal("Clone aliases storage")
	}
}

func TestQuickCoreConservation(t *testing.T) {
	// Property: any assignment sequence conserves total cores across owners.
	cfg := DefaultConfig()
	f := func(moves []uint16) bool {
		l, _ := NewLedger(cfg)
		for _, m := range moves {
			s := int(m) % cfg.Sockets
			i := int(m>>2) % cfg.CoresPerSocket
			e := Engine(int(m>>9) % 3)
			_ = l.Assign(CoreID{Socket: s, Index: i}, e)
		}
		total := l.CountTotal(Free) + l.CountTotal(OLTP) + l.CountTotal(OLAP)
		return total == cfg.TotalCores()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementDiffAndEqual(t *testing.T) {
	a := Placement{PerSocket: []int{4, 14}}
	b := Placement{PerSocket: []int{10, 8}}
	d := a.Diff(b)
	if len(d) != 2 || d[0] != 6 || d[1] != -6 {
		t.Fatalf("diff = %v, want [6 -6]", d)
	}
	if got := b.Diff(a); got[0] != -6 || got[1] != 6 {
		t.Fatalf("reverse diff = %v", got)
	}
	// Mismatched lengths: missing sockets count as zero.
	short := Placement{PerSocket: []int{3}}
	d = short.Diff(a)
	if len(d) != 2 || d[0] != 1 || d[1] != 14 {
		t.Fatalf("short diff = %v, want [1 14]", d)
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone must be equal")
	}
	if a.Equal(b) {
		t.Fatal("distinct placements reported equal")
	}
	if !(Placement{PerSocket: []int{2}}).Equal(Placement{PerSocket: []int{2, 0, 0}}) {
		t.Fatal("trailing zero sockets must compare equal")
	}
	// A diff of all zeros is exactly Equal.
	for _, v := range a.Diff(a) {
		if v != 0 {
			t.Fatalf("self diff nonzero: %v", a.Diff(a))
		}
	}
}
