// Package txn implements the OLTP engine's Transaction Manager (§3.2):
// multi-version two-phase locking (MV2PL) with wait-die deadlock avoidance
// and snapshot-isolation visibility over the twin-instance columnar
// storage and the vm delta store.
package txn

import (
	"errors"
	"sync"
)

// ErrDie is returned by the lock table when a younger transaction requests
// a lock held by an older one: under wait-die the requester must abort and
// restart rather than wait, which makes deadlock impossible.
var ErrDie = errors.New("txn: wait-die abort (younger requester)")

// syncPriority is the priority of RDE instance-synchronization lockers: it
// is younger than every transaction, so transactions never die because of
// a sync, and the sync itself always waits instead of dying.
const syncPriority = ^uint64(0)

// LockKey names a lockable record.
type LockKey struct {
	Tab uint32
	Row int64
}

type lockState struct {
	holder  uint64 // priority (begin TS) of the holder; 0 = free
	waiters int
	cond    *sync.Cond
}

const lockShards = 256

type lockShard struct {
	mu    sync.Mutex
	locks map[LockKey]*lockState
}

// LockTable is a sharded exclusive-lock manager for record locks. Both the
// transaction manager and the RDE's instance synchronization use it, so a
// record copy can never race a committing transaction (§3.4).
type LockTable struct {
	shards [lockShards]lockShard
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	lt := &LockTable{}
	for i := range lt.shards {
		lt.shards[i].locks = make(map[LockKey]*lockState)
	}
	return lt
}

func (lt *LockTable) shardOf(k LockKey) *lockShard {
	h := uint64(k.Tab)*0x9e3779b97f4a7c15 ^ uint64(k.Row)*0xc2b2ae3d27d4eb4f
	return &lt.shards[h%lockShards]
}

// Acquire takes the exclusive lock on k with the given priority (a begin
// timestamp; smaller = older = higher priority). Under wait-die, if the
// current holder is older than the requester, Acquire fails with ErrDie;
// otherwise the requester waits. Re-acquiring with the holder's own
// priority succeeds immediately (reentrant within one transaction).
func (lt *LockTable) Acquire(k LockKey, priority uint64) error {
	if priority == 0 {
		panic("txn: priority 0 is reserved for the free state")
	}
	sh := lt.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.locks[k]
	if st == nil {
		st = &lockState{cond: sync.NewCond(&sh.mu)}
		sh.locks[k] = st
	}
	for {
		switch {
		case st.holder == 0:
			st.holder = priority
			return nil
		case st.holder == priority:
			return nil // reentrant
		case priority > st.holder:
			// Requester is younger: die.
			return ErrDie
		default:
			// Requester is older: wait for the younger holder to finish.
			st.waiters++
			st.cond.Wait()
			st.waiters--
		}
	}
}

// TryAcquire takes the lock if free (or reentrantly held) and otherwise
// fails immediately with ErrDie — the no-wait conflict policy.
func (lt *LockTable) TryAcquire(k LockKey, priority uint64) error {
	if priority == 0 {
		panic("txn: priority 0 is reserved for the free state")
	}
	sh := lt.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.locks[k]
	if st == nil {
		st = &lockState{cond: sync.NewCond(&sh.mu)}
		sh.locks[k] = st
	}
	switch st.holder {
	case 0:
		st.holder = priority
		return nil
	case priority:
		return nil // reentrant
	default:
		return ErrDie
	}
}

// AcquireSync takes the lock with the lowest possible priority, always
// waiting and never dying. The RDE engine uses it for one-row-at-a-time
// instance synchronization; holding a single lock at a time keeps it out
// of any deadlock cycle.
func (lt *LockTable) AcquireSync(k LockKey) {
	sh := lt.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.locks[k]
	if st == nil {
		st = &lockState{cond: sync.NewCond(&sh.mu)}
		sh.locks[k] = st
	}
	for st.holder != 0 {
		st.waiters++
		st.cond.Wait()
		st.waiters--
	}
	st.holder = syncPriority
}

// Release frees the lock on k. The caller must be the holder.
func (lt *LockTable) Release(k LockKey) {
	sh := lt.shardOf(k)
	sh.mu.Lock()
	st := sh.locks[k]
	if st == nil || st.holder == 0 {
		sh.mu.Unlock()
		panic("txn: release of unheld lock")
	}
	st.holder = 0
	if st.waiters > 0 {
		st.cond.Broadcast()
	} else {
		delete(sh.locks, k) // bound the table: no waiters, no state to keep
	}
	sh.mu.Unlock()
}

// Held reports whether the lock is currently held (diagnostics).
func (lt *LockTable) Held(k LockKey) bool {
	sh := lt.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.locks[k]
	return st != nil && st.holder != 0
}
