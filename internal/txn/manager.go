package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"elastichtap/internal/columnar"
	"elastichtap/internal/vm"
	"elastichtap/internal/wal"
)

// ErrConflict is returned when first-updater-wins validation fails: the
// record was committed by another transaction after this one began, so
// writing it would violate snapshot isolation.
var ErrConflict = errors.New("txn: write-write conflict (first updater wins)")

// ErrAborted is returned from operations on a transaction that has already
// aborted or committed.
var ErrAborted = errors.New("txn: transaction is not active")

// TableRef couples a registered table with its version store and lock
// namespace. Obtain one from Manager.Register.
type TableRef struct {
	ID       uint32
	Table    *columnar.Table
	Versions *vm.Store
}

// ConflictPolicy selects how lock conflicts resolve.
type ConflictPolicy int8

const (
	// WaitDie (default): older requesters wait, younger ones abort, and
	// restarts keep their original priority — deadlock-free and
	// starvation-free. The paper's deadlock-avoidance choice (§3.2).
	WaitDie ConflictPolicy = iota
	// NoWait: any conflict aborts the requester immediately. Simpler and
	// lower-latency under low contention, but abort-heavy under skew; the
	// ablation benchmarks compare the two.
	NoWait
)

// Manager issues timestamps, tracks active transactions for garbage
// collection, and owns the record lock table.
type Manager struct {
	clock atomic.Uint64
	locks *LockTable

	mu     sync.Mutex
	tables []*TableRef
	active map[uint64]struct{}
	policy ConflictPolicy

	// log, when set, receives every committed write set before it is
	// applied (write-ahead). gate lets a checkpoint exclude the window
	// between a commit's log append and its in-memory application, so a
	// captured (WAL position, table state) pair is always transaction
	// consistent: committers hold it shared, CommitBarrier exclusive.
	log  atomic.Pointer[wal.Log]
	gate sync.RWMutex

	commits atomic.Uint64
	aborts  atomic.Uint64
}

// NewManager returns an empty transaction manager.
func NewManager() *Manager {
	return &Manager{
		locks:  NewLockTable(),
		active: map[uint64]struct{}{},
	}
}

// Register assigns a lock/GC namespace to a table.
func (m *Manager) Register(t *columnar.Table) *TableRef {
	m.mu.Lock()
	defer m.mu.Unlock()
	ref := &TableRef{ID: uint32(len(m.tables) + 1), Table: t, Versions: vm.NewStore()}
	m.tables = append(m.tables, ref)
	return ref
}

// Locks exposes the record lock table (the RDE engine shares it for
// instance synchronization).
func (m *Manager) Locks() *LockTable { return m.locks }

// SetPolicy selects the conflict policy for subsequent lock requests.
func (m *Manager) SetPolicy(p ConflictPolicy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policy = p
}

// Policy returns the current conflict policy.
func (m *Manager) Policy() ConflictPolicy {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.policy
}

// Now returns the current timestamp without advancing the clock.
func (m *Manager) Now() uint64 { return m.clock.Load() }

// SetWAL attaches a commit log: every later commit appends its write set
// (and commit timestamp) to l before applying it in memory. Attach the
// log before the workload starts; pass nil to detach.
func (m *Manager) SetWAL(l *wal.Log) { m.log.Store(l) }

// WAL returns the attached commit log, or nil.
func (m *Manager) WAL() *wal.Log { return m.log.Load() }

// CommitBarrier runs fn while no commit sits between its log append and
// its in-memory application. A checkpoint captures its WAL position,
// clock and table watermarks inside fn, making the checkpoint image plus
// WAL-suffix replay exactly equal to the live state.
func (m *Manager) CommitBarrier(fn func()) {
	m.gate.Lock()
	defer m.gate.Unlock()
	fn()
}

// RestoreState seeds the timestamp clock and commit counter after a
// recovery, so restored and never-crashed engines agree on both.
func (m *Manager) RestoreState(clock, commits uint64) {
	m.clock.Store(clock)
	m.commits.Store(commits)
}

// Commits and Aborts report lifetime counters.
func (m *Manager) Commits() uint64 { return m.commits.Load() }

// Aborts reports the number of aborted transactions.
func (m *Manager) Aborts() uint64 { return m.aborts.Load() }

// Begin starts a snapshot-isolated transaction whose wait-die priority is
// its begin timestamp.
func (m *Manager) Begin() *Txn {
	ts := m.clock.Add(1)
	m.mu.Lock()
	m.active[ts] = struct{}{}
	m.mu.Unlock()
	return &Txn{m: m, begin: ts, priority: ts, status: statusActive}
}

// BeginWithPriority starts a transaction that reads a fresh snapshot but
// keeps an earlier wait-die priority. Restarted transactions reuse their
// original timestamp so they age and cannot starve — the standard wait-die
// restart rule.
func (m *Manager) BeginWithPriority(priority uint64) *Txn {
	t := m.Begin()
	if priority != 0 && priority < t.priority {
		t.priority = priority
	}
	return t
}

func (m *Manager) finish(t *Txn) {
	m.mu.Lock()
	delete(m.active, t.begin)
	m.mu.Unlock()
}

// MinActive returns the begin timestamp of the oldest active transaction,
// or the current clock when none are active. The vm garbage collector uses
// it as its reclamation watermark.
func (m *Manager) MinActive() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	min := m.clock.Load()
	for ts := range m.active {
		if ts < min {
			min = ts
		}
	}
	return min
}

// GC truncates version chains no active transaction can read and returns
// the number of versions reclaimed.
func (m *Manager) GC() int {
	watermark := m.MinActive()
	m.mu.Lock()
	tables := append([]*TableRef(nil), m.tables...)
	m.mu.Unlock()
	n := 0
	for _, ref := range tables {
		n += ref.Versions.GC(watermark)
	}
	return n
}

type txnStatus int8

const (
	statusActive txnStatus = iota
	statusCommitted
	statusAborted
)

type writeOp struct {
	ref *TableRef
	row int64
	col int
	val int64
}

type insertOp struct {
	ref      *TableRef
	rows     [][]int64
	onCommit func(firstRow int64)
}

// Txn is a snapshot-isolated MV2PL transaction. Reads see the database as
// of the begin timestamp (plus the transaction's own writes); writes take
// exclusive record locks immediately (growing phase) and are applied to
// the active instance at commit.
type Txn struct {
	m        *Manager
	begin    uint64
	priority uint64 // wait-die priority; begin of the first attempt
	status   txnStatus

	held    []LockKey
	holding map[LockKey]struct{}
	writes  []writeOp
	wIndex  map[LockKey]map[int]int // lock key -> col -> writes index
	inserts []insertOp
}

// Begin returns the transaction's begin (snapshot) timestamp.
func (t *Txn) Begin() uint64 { return t.begin }

// Priority returns the wait-die priority (smaller = older = wins).
func (t *Txn) Priority() uint64 { return t.priority }

func (t *Txn) lockKey(ref *TableRef, row int64) LockKey {
	return LockKey{Tab: ref.ID, Row: row}
}

// Read returns the visible value of (row, col): the transaction's own
// uncommitted write if present, the current in-place value if its newest
// version is within the snapshot, or the version-chain image otherwise.
// ok is false when the row is invisible (inserted after the snapshot).
func (t *Txn) Read(ref *TableRef, row int64, col int) (int64, bool) {
	if t.status != statusActive {
		return 0, false
	}
	k := t.lockKey(ref, row)
	if cols, ok := t.wIndex[k]; ok {
		if wi, ok := cols[col]; ok {
			return t.writes[wi].val, true
		}
	}
	if _, mine := t.holding[k]; mine {
		// We hold the record lock (validated rowTS <= begin at acquire),
		// so the in-place cells are stable and visible.
		if row >= ref.Table.Rows() {
			return 0, false
		}
		return ref.Table.ReadActive(row, col), true
	}
	return readCommitted(t.m.locks, ref, row, col, t.begin)
}

// readCommitted resolves a snapshot read against storage. The active
// instance is read optimistically: load the row timestamp, the cell, then
// the timestamp again. A row whose record lock is held is mid-commit —
// its cells may be half-written even when the row timestamp looks stable
// — so locked or unstable rows fall back to the version chain, where the
// committer pushed the full-row pre-image before mutating anything.
func readCommitted(locks *LockTable, ref *TableRef, row int64, col int, asOf uint64) (int64, bool) {
	if row >= ref.Table.Rows() {
		return 0, false
	}
	k := LockKey{Tab: ref.ID, Row: row}
	for attempt := 0; attempt < 3; attempt++ {
		ts1 := ref.Table.RowTS(row)
		if ts1 > asOf {
			break
		}
		if locks.Held(k) {
			continue
		}
		v := ref.Table.ReadActive(row, col)
		ts2 := ref.Table.RowTS(row)
		if ts1 == ts2 && !locks.Held(k) {
			return v, true
		}
	}
	img, ok := ref.Versions.ReadAsOf(row, asOf)
	if !ok {
		return 0, false
	}
	return img[col], true
}

// Write buffers a cell write after taking the record's exclusive lock and
// validating first-updater-wins. Returns ErrDie (caller should abort and
// retry) or ErrConflict (snapshot-isolation write conflict).
func (t *Txn) Write(ref *TableRef, row int64, col int, val int64) error {
	if t.status != statusActive {
		return ErrAborted
	}
	k := t.lockKey(ref, row)
	if _, mine := t.holding[k]; !mine {
		var err error
		if t.m.Policy() == NoWait {
			err = t.m.locks.TryAcquire(k, t.priority)
		} else {
			err = t.m.locks.Acquire(k, t.priority)
		}
		if err != nil {
			return err
		}
		if t.holding == nil {
			t.holding = map[LockKey]struct{}{}
		}
		t.holding[k] = struct{}{}
		t.held = append(t.held, k)
		// First-updater-wins: a version committed after our snapshot means
		// a concurrent writer already won.
		if ref.Table.RowTS(row) > t.begin {
			return ErrConflict
		}
		// Push the full-row pre-image NOW, not at commit: concurrent
		// snapshot readers treat locked rows as mid-commit and resolve
		// through the version chain, so the chain must already hold the
		// pre-lock image. If this transaction aborts, the pushed version
		// duplicates the live row (same timestamp, same values) — harmless
		// until garbage collection reclaims it.
		width := len(ref.Table.Schema().Columns)
		img := make([]int64, width)
		for c := 0; c < width; c++ {
			img[c] = ref.Table.ReadActive(row, c)
		}
		ref.Versions.Push(row, ref.Table.RowTS(row), img)
	}
	if t.wIndex == nil {
		t.wIndex = map[LockKey]map[int]int{}
	}
	cols := t.wIndex[k]
	if cols == nil {
		cols = map[int]int{}
		t.wIndex[k] = cols
	}
	if wi, ok := cols[col]; ok {
		t.writes[wi].val = val
		return nil
	}
	cols[col] = len(t.writes)
	t.writes = append(t.writes, writeOp{ref: ref, row: row, col: col, val: val})
	return nil
}

// WriteFunc applies fn to the visible value and writes the result, a
// convenience for read-modify-write cells (stock levels, order counters).
func (t *Txn) WriteFunc(ref *TableRef, row int64, col int, fn func(old int64) int64) error {
	v, ok := t.Read(ref, row, col)
	if !ok {
		return fmt.Errorf("txn: row %d of table %q invisible to snapshot %d",
			row, ref.Table.Schema().Name, t.begin)
	}
	return t.Write(ref, row, col, fn(v))
}

// Insert buffers whole-row inserts; rows are appended to both instances at
// commit and onCommit (may be nil) receives the first assigned row ID so
// the caller can maintain primary-key indexes.
func (t *Txn) Insert(ref *TableRef, rows [][]int64, onCommit func(firstRow int64)) error {
	if t.status != statusActive {
		return ErrAborted
	}
	t.inserts = append(t.inserts, insertOp{ref: ref, rows: rows, onCommit: onCommit})
	return nil
}

// Commit applies the write set to the active instances, pushing full-row
// pre-images to the delta store first (newest-to-oldest chains), appends
// inserts to both instances, and releases all locks. With a WAL attached
// (Manager.SetWAL) the write set is appended to the log first; the
// in-memory application runs under the log's lock, so log order equals
// apply order and insert replay reassigns identical row IDs.
//
// A nil return means committed and durable per the log's sync policy. An
// error satisfying wal.IsSyncFailure means the commit DID apply in
// memory — reads will see it — but the fsync failed, so it may not
// survive a crash; the log refuses further appends. Any other log error
// means the commit never applied and the transaction aborted.
func (t *Txn) Commit() error {
	if t.status != statusActive {
		return ErrAborted
	}
	t.m.gate.RLock()
	commitTS := t.m.clock.Add(1)

	// Apply the write set in place, pinning each table's active instance
	// for ALL of this transaction's writes to it, so a concurrent instance
	// switch cannot split a row's (or a table's) cells across the twins.
	// Pre-images were pushed at lock time, so snapshot readers can already
	// resolve around these rows.
	var order []*TableRef
	perTable := map[*TableRef][]writeOp{}
	for _, w := range t.writes {
		if _, seen := perTable[w.ref]; !seen {
			order = append(order, w.ref)
		}
		perTable[w.ref] = append(perTable[w.ref], w)
	}
	apply := func() {
		for _, ref := range order {
			ref.Table.BeginApply()
			for _, w := range perTable[ref] {
				ref.Table.UpdateCell(w.row, w.col, w.val, commitTS)
			}
			ref.Table.EndApply()
		}
		for _, ins := range t.inserts {
			first := ins.ref.Table.AppendRows(ins.rows, commitTS)
			if ins.onCommit != nil {
				ins.onCommit(first)
			}
		}
	}

	var syncErr error
	if log := t.m.log.Load(); log != nil {
		// Read-only transactions log a zero-op record too: recovery then
		// reconstructs the exact clock and commit count, not just state.
		if _, err := log.Append(t.record(commitTS), apply); err != nil {
			if !wal.IsSyncFailure(err) {
				// The record never reached the log and apply did not run:
				// nothing committed. Abort.
				t.m.gate.RUnlock()
				t.releaseAll()
				t.status = statusAborted
				t.m.finish(t)
				t.m.aborts.Add(1)
				return fmt.Errorf("txn: commit log append: %w", err)
			}
			syncErr = err
		}
	} else {
		apply()
	}
	t.m.gate.RUnlock()
	t.releaseAll()
	t.status = statusCommitted
	t.m.finish(t)
	t.m.commits.Add(1)
	return syncErr
}

// record builds the WAL record for this transaction's write set.
func (t *Txn) record(commitTS uint64) *wal.Record {
	rec := &wal.Record{TxnID: t.begin, CommitTS: commitTS}
	rec.Ops = make([]wal.Op, 0, len(t.writes)+len(t.inserts))
	for _, w := range t.writes {
		rec.Ops = append(rec.Ops, wal.Op{
			Kind:  wal.OpUpdate,
			Table: w.ref.Table.Schema().Name,
			Row:   w.row,
			Col:   uint32(w.col),
			Val:   w.val,
		})
	}
	for _, ins := range t.inserts {
		if len(ins.rows) == 0 {
			continue
		}
		width := len(ins.rows[0])
		vals := make([]int64, 0, len(ins.rows)*width)
		for _, r := range ins.rows {
			vals = append(vals, r...)
		}
		rec.Ops = append(rec.Ops, wal.Op{
			Kind:  wal.OpInsert,
			Table: ins.ref.Table.Schema().Name,
			NRows: len(ins.rows),
			Width: width,
			Vals:  vals,
		})
	}
	return rec
}

// Abort drops buffered work and releases all locks.
func (t *Txn) Abort() {
	if t.status != statusActive {
		return
	}
	t.releaseAll()
	t.status = statusAborted
	t.m.finish(t)
	t.m.aborts.Add(1)
}

func (t *Txn) releaseAll() {
	for _, k := range t.held {
		t.m.locks.Release(k)
	}
	t.held = nil
	t.holding = nil
}

// RunWithRetry executes body in a fresh transaction, retrying on wait-die
// and first-updater conflicts up to maxRetries times. body must be
// idempotent across attempts. Restarts keep their first attempt's
// priority (the wait-die anti-starvation rule) and back off exponentially
// after repeated aborts, so a young transaction spins instead of burning
// its retry budget while an older holder drains a wait cascade. It
// returns the number of aborts observed.
func (m *Manager) RunWithRetry(maxRetries int, body func(t *Txn) error) (retries int, err error) {
	var priority uint64
	for attempt := 0; ; attempt++ {
		t := m.BeginWithPriority(priority)
		if attempt == 0 {
			priority = t.Priority()
		}
		err = body(t)
		if err == nil {
			err = t.Commit()
		}
		if err == nil {
			return attempt, nil
		}
		t.Abort()
		if !errors.Is(err, ErrDie) && !errors.Is(err, ErrConflict) {
			return attempt, err
		}
		if attempt >= maxRetries {
			return attempt, fmt.Errorf("txn: giving up after %d retries: %w", attempt, err)
		}
		if attempt >= 8 {
			shift := attempt - 8
			if shift > 10 {
				shift = 10
			}
			time.Sleep(time.Microsecond << shift)
		}
	}
}
