package txn

import (
	"errors"
	"sync"
	"testing"

	"elastichtap/internal/columnar"
)

func newTestTable(t *testing.T, rows int) (*Manager, *TableRef) {
	t.Helper()
	m := NewManager()
	tab := columnar.NewTable(columnar.Schema{
		Name: "acct",
		Columns: []columnar.ColumnDef{
			{Name: "id", Type: columnar.Int64},
			{Name: "bal", Type: columnar.Int64},
		},
	}, int64(rows))
	var rs [][]int64
	for i := 0; i < rows; i++ {
		rs = append(rs, []int64{int64(i), 100})
	}
	tab.AppendRows(rs, 0)
	return m, m.Register(tab)
}

func TestReadCommittedSnapshot(t *testing.T) {
	m, ref := newTestTable(t, 2)

	t1 := m.Begin()
	t2 := m.Begin()
	if err := t1.Write(ref, 0, 1, 250); err != nil {
		t.Fatal(err)
	}
	// t2 must not see t1's uncommitted write.
	if v, ok := t2.Read(ref, 0, 1); !ok || v != 100 {
		t.Fatalf("t2 sees %d,%v", v, ok)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Still invisible: t2's snapshot predates the commit.
	if v, _ := t2.Read(ref, 0, 1); v != 100 {
		t.Fatalf("snapshot violated: t2 sees %d", v)
	}
	t2.Abort()
	// A new transaction sees the committed value.
	t3 := m.Begin()
	if v, _ := t3.Read(ref, 0, 1); v != 250 {
		t.Fatalf("t3 sees %d", v)
	}
	t3.Abort()
}

func TestReadYourOwnWrites(t *testing.T) {
	m, ref := newTestTable(t, 1)
	tx := m.Begin()
	if err := tx.Write(ref, 0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := tx.Read(ref, 0, 1); !ok || v != 7 {
		t.Fatalf("own write invisible: %d,%v", v, ok)
	}
	tx.Abort()
	// Aborted: nothing changed.
	t2 := m.Begin()
	if v, _ := t2.Read(ref, 0, 1); v != 100 {
		t.Fatalf("abort leaked: %d", v)
	}
	t2.Abort()
}

func TestFirstUpdaterWins(t *testing.T) {
	m, ref := newTestTable(t, 1)
	t1 := m.Begin()
	t2 := m.Begin()
	if err := t1.Write(ref, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// t2's snapshot predates t1's commit: writing the same record must
	// fail with a write-write conflict.
	err := t2.Write(ref, 0, 1, 2)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	t2.Abort()
}

func TestWaitDieYoungerDies(t *testing.T) {
	m, ref := newTestTable(t, 1)
	older := m.Begin()
	younger := m.Begin()
	if err := older.Write(ref, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Younger requester must die, not wait.
	if err := younger.Write(ref, 0, 1, 2); !errors.Is(err, ErrDie) {
		t.Fatalf("err = %v, want ErrDie", err)
	}
	younger.Abort()
	older.Abort()
}

func TestOlderWaitsForYounger(t *testing.T) {
	m, ref := newTestTable(t, 1)
	older := m.Begin()
	younger := m.Begin()
	if err := younger.Write(ref, 0, 1, 5); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Older requester waits for the younger holder.
		done <- older.Write(ref, 0, 1, 6)
	}()
	if err := younger.Commit(); err != nil {
		t.Fatal(err)
	}
	err := <-done
	// After the younger commits, the older acquires the lock but then
	// fails first-updater-wins validation.
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict after wait", err)
	}
	older.Abort()
}

func TestVersionChainReadForOldSnapshot(t *testing.T) {
	m, ref := newTestTable(t, 1)
	reader := m.Begin() // snapshot before updates
	for i := 0; i < 5; i++ {
		tx := m.Begin()
		if err := tx.Write(ref, 0, 1, int64(200+i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := reader.Read(ref, 0, 1); !ok || v != 100 {
		t.Fatalf("old snapshot reads %d,%v want 100", v, ok)
	}
	reader.Abort()
}

func TestInsertVisibility(t *testing.T) {
	m, ref := newTestTable(t, 1)
	before := m.Begin()
	tx := m.Begin()
	var firstRow int64 = -1
	if err := tx.Insert(ref, [][]int64{{9, 900}}, func(first int64) { firstRow = first }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if firstRow != 1 {
		t.Fatalf("assigned row = %d", firstRow)
	}
	// Inserted row invisible to the earlier snapshot.
	if _, ok := before.Read(ref, firstRow, 1); ok {
		t.Fatal("insert visible to older snapshot")
	}
	before.Abort()
	after := m.Begin()
	if v, ok := after.Read(ref, firstRow, 1); !ok || v != 900 {
		t.Fatalf("insert invisible to new snapshot: %d,%v", v, ok)
	}
	after.Abort()
}

func TestRunWithRetry(t *testing.T) {
	m, ref := newTestTable(t, 1)
	attempts := 0
	retries, err := m.RunWithRetry(10, func(tx *Txn) error {
		attempts++
		if attempts < 3 {
			return ErrDie // simulated wait-die aborts
		}
		return tx.Write(ref, 0, 1, 42)
	})
	if err != nil {
		t.Fatal(err)
	}
	if retries != 2 {
		t.Fatalf("retries = %d", retries)
	}
	if m.Aborts() != 2 || m.Commits() != 1 {
		t.Fatalf("commits=%d aborts=%d", m.Commits(), m.Aborts())
	}
}

func TestGCReclaimsOldVersions(t *testing.T) {
	m, ref := newTestTable(t, 1)
	for i := 0; i < 10; i++ {
		if _, err := m.RunWithRetry(0, func(tx *Txn) error {
			return tx.Write(ref, 0, 1, int64(i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if ref.Versions.ChainLen(0) != 10 {
		t.Fatalf("chain = %d", ref.Versions.ChainLen(0))
	}
	reclaimed := m.GC()
	if reclaimed == 0 {
		t.Fatal("GC reclaimed nothing with no active transactions")
	}
	// The newest committed value must survive.
	tx := m.Begin()
	if v, _ := tx.Read(ref, 0, 1); v != 9 {
		t.Fatalf("after GC value = %d", v)
	}
	tx.Abort()
}

func TestConcurrentTransfersConserveMoney(t *testing.T) {
	// Bank-transfer invariant under concurrency: total balance constant.
	const accounts = 20
	const workers = 8
	const transfers = 200
	m, ref := newTestTable(t, accounts)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := int64((w + i) % accounts)
				to := int64((w + i + 7) % accounts)
				if from == to {
					continue
				}
				_, err := m.RunWithRetry(1000, func(tx *Txn) error {
					if err := tx.WriteFunc(ref, from, 1, func(v int64) int64 { return v - 1 }); err != nil {
						return err
					}
					return tx.WriteFunc(ref, to, 1, func(v int64) int64 { return v + 1 })
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	tx := m.Begin()
	var total int64
	for r := int64(0); r < accounts; r++ {
		v, ok := tx.Read(ref, r, 1)
		if !ok {
			t.Fatalf("row %d invisible", r)
		}
		total += v
	}
	tx.Abort()
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d (money not conserved)", total, accounts*100)
	}
}

func TestLockTableSyncNeverDies(t *testing.T) {
	lt := NewLockTable()
	k := LockKey{Tab: 1, Row: 5}
	if err := lt.Acquire(k, 10); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		lt.AcquireSync(k) // must wait, not die
		lt.Release(k)
		close(done)
	}()
	lt.Release(k)
	<-done
	if lt.Held(k) {
		t.Fatal("lock leaked")
	}
}

func TestLockReentrant(t *testing.T) {
	lt := NewLockTable()
	k := LockKey{Tab: 1, Row: 1}
	if err := lt.Acquire(k, 5); err != nil {
		t.Fatal(err)
	}
	if err := lt.Acquire(k, 5); err != nil {
		t.Fatalf("reentrant acquire: %v", err)
	}
	lt.Release(k)
}

func TestNoWaitPolicyAbortsImmediately(t *testing.T) {
	m, ref := newTestTable(t, 1)
	m.SetPolicy(NoWait)
	if m.Policy() != NoWait {
		t.Fatal("policy not set")
	}
	older := m.Begin()
	younger := m.Begin()
	if err := younger.Write(ref, 0, 1, 5); err != nil {
		t.Fatal(err)
	}
	// Under no-wait even the OLDER requester aborts instead of waiting.
	if err := older.Write(ref, 0, 1, 6); !errors.Is(err, ErrDie) {
		t.Fatalf("err = %v, want immediate ErrDie under no-wait", err)
	}
	older.Abort()
	if err := younger.Commit(); err != nil {
		t.Fatal(err)
	}
	// Back to wait-die: older waits again.
	m.SetPolicy(WaitDie)
	if m.Policy() != WaitDie {
		t.Fatal("policy not restored")
	}
}

func TestTryAcquireReentrant(t *testing.T) {
	lt := NewLockTable()
	k := LockKey{Tab: 9, Row: 9}
	if err := lt.TryAcquire(k, 5); err != nil {
		t.Fatal(err)
	}
	if err := lt.TryAcquire(k, 5); err != nil {
		t.Fatalf("reentrant try-acquire: %v", err)
	}
	if err := lt.TryAcquire(k, 6); !errors.Is(err, ErrDie) {
		t.Fatalf("conflicting try-acquire: %v", err)
	}
	lt.Release(k)
}
