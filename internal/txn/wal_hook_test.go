package txn

import (
	"testing"

	"elastichtap/internal/wal"
)

// TestCommitWritesAhead verifies the WAL hook: every commit (including a
// read-only one) lands a record carrying the commit timestamp and full
// write set before the commit returns, and a failed append aborts the
// transaction instead of half-applying it.
func TestCommitWritesAhead(t *testing.T) {
	m, ref := newTestTable(t, 2)
	fs := wal.NewMemFS()
	l, err := wal.Open(fs, "wal.log", wal.SyncAlways, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWAL(l)

	// Update + insert in one transaction.
	tx := m.Begin()
	if err := tx.Write(ref, 0, 1, 777); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(ref, [][]int64{{9, 900}, {10, 1000}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Read-only transaction: still logged, so recovery reproduces the
	// exact clock and commit count.
	ro := m.Begin()
	if _, ok := ro.Read(ref, 0, 1); !ok {
		t.Fatal("read failed")
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := fs.Open("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []*wal.Record
	st, err := wal.Replay(f, 0, func(_ int64, rec *wal.Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil || st.Truncated || len(recs) != 2 {
		t.Fatalf("replay: err=%v stats=%+v records=%d", err, st, len(recs))
	}
	first := recs[0]
	if first.CommitTS == 0 || len(first.Ops) != 2 {
		t.Fatalf("first record %+v", first)
	}
	up, ins := first.Ops[0], first.Ops[1]
	if up.Kind != wal.OpUpdate || up.Table != "acct" || up.Row != 0 || up.Col != 1 || up.Val != 777 {
		t.Fatalf("update op %+v", up)
	}
	if ins.Kind != wal.OpInsert || ins.NRows != 2 || ins.Width != 2 ||
		ins.Vals[0] != 9 || ins.Vals[3] != 1000 {
		t.Fatalf("insert op %+v", ins)
	}
	if got := recs[1]; len(got.Ops) != 0 || got.CommitTS <= first.CommitTS {
		t.Fatalf("read-only record %+v", got)
	}
}

func TestCommitAbortsWhenAppendFails(t *testing.T) {
	m, ref := newTestTable(t, 2)
	fs := wal.NewMemFS()
	l, err := wal.Open(fs, "wal.log", wal.SyncAlways, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWAL(l)
	fs.CrashAfterWrite(0)

	tx := m.Begin()
	if err := tx.Write(ref, 0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil || wal.IsSyncFailure(err) {
		t.Fatalf("commit with dead log = %v, want hard append failure", err)
	}
	if m.Commits() != 0 || m.Aborts() != 1 {
		t.Fatalf("commits=%d aborts=%d", m.Commits(), m.Aborts())
	}
	// The write must not have applied, and the lock must be free.
	check := m.Begin()
	defer check.Abort()
	if v, _ := check.Read(ref, 0, 1); v != 100 {
		t.Fatalf("aborted commit leaked value %d", v)
	}
	if err := check.Write(ref, 0, 1, 6); err != nil {
		t.Fatalf("lock not released: %v", err)
	}
}

func TestCommitSyncFailureStillApplies(t *testing.T) {
	m, ref := newTestTable(t, 2)
	fs := wal.NewMemFS()
	l, err := wal.Open(fs, "wal.log", wal.SyncAlways, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWAL(l)
	fs.FailSyncs(0)

	tx := m.Begin()
	if err := tx.Write(ref, 0, 1, 5); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if !wal.IsSyncFailure(err) {
		t.Fatalf("commit err = %v, want sync failure", err)
	}
	if m.Commits() != 1 {
		t.Fatalf("commits=%d, want 1: the commit applied", m.Commits())
	}
	check := m.Begin()
	defer check.Abort()
	if v, _ := check.Read(ref, 0, 1); v != 5 {
		t.Fatalf("sync-failed commit not visible: %d", v)
	}
}
