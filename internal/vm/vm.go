// Package vm implements the OLTP engine's multi-versioned delta storage
// (§3.2): per-record version chains in newest-to-oldest order, following
// the MVCC survey of Wu et al. Updates push full-row pre-images before
// overwriting the active instance in place, so snapshot-isolated readers
// can traverse to the version visible at their begin timestamp.
package vm

import "sync"

const shardCount = 128

// Version is one entry of a newest-to-oldest chain.
type Version struct {
	// TS is the commit timestamp at which this image became current.
	TS uint64
	// Image is the full row pre-image (raw column words).
	Image []int64
	// Older points to the next (older) version.
	Older *Version
}

type shard struct {
	mu     sync.RWMutex
	chains map[int64]*Version
}

// Store holds version chains for one table, sharded by row ID.
type Store struct {
	shards [shardCount]shard
}

// NewStore returns an empty version store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].chains = make(map[int64]*Version)
	}
	return s
}

func (s *Store) shardOf(row int64) *shard {
	return &s.shards[uint64(row)%shardCount]
}

// Push prepends a pre-image that was current as of commit timestamp ts.
// Callers must hold the record's exclusive lock, so pushes for one row are
// serialized; reads may proceed concurrently.
func (s *Store) Push(row int64, ts uint64, image []int64) {
	sh := s.shardOf(row)
	sh.mu.Lock()
	sh.chains[row] = &Version{TS: ts, Image: image, Older: sh.chains[row]}
	sh.mu.Unlock()
}

// ReadAsOf returns the newest image of the row with TS <= ts, traversing
// newest-to-oldest. ok is false when no version old enough exists (the row
// was created after ts, or its history was garbage collected).
func (s *Store) ReadAsOf(row int64, ts uint64) (image []int64, ok bool) {
	sh := s.shardOf(row)
	sh.mu.RLock()
	v := sh.chains[row]
	sh.mu.RUnlock()
	for ; v != nil; v = v.Older {
		if v.TS <= ts {
			return v.Image, true
		}
	}
	return nil, false
}

// ChainLen returns the length of the row's chain (diagnostics, tests).
func (s *Store) ChainLen(row int64) int {
	sh := s.shardOf(row)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	n := 0
	for v := sh.chains[row]; v != nil; v = v.Older {
		n++
	}
	return n
}

// Len returns the total number of stored versions.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, v := range sh.chains {
			for ; v != nil; v = v.Older {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// GC truncates every chain after the newest version with TS <= minActive:
// that version may still be read by the oldest active transaction, anything
// older cannot. Rows whose entire chain is reclaimable are removed. It
// returns the number of versions dropped.
func (s *Store) GC(minActive uint64) int {
	dropped := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for row, v := range sh.chains {
			if v.TS <= minActive {
				// The head already satisfies every active reader; the whole
				// tail (and, if nothing can read even the head... keep head).
				dropped += chainLenLocked(v.Older)
				v.Older = nil
				continue
			}
			for cur := v; cur != nil; cur = cur.Older {
				if cur.Older != nil && cur.Older.TS <= minActive {
					dropped += chainLenLocked(cur.Older.Older)
					cur.Older.Older = nil
					break
				}
			}
			_ = row
		}
		sh.mu.Unlock()
	}
	return dropped
}

func chainLenLocked(v *Version) int {
	n := 0
	for ; v != nil; v = v.Older {
		n++
	}
	return n
}
