package vm

import (
	"testing"
	"testing/quick"
)

func TestPushReadAsOf(t *testing.T) {
	s := NewStore()
	s.Push(1, 10, []int64{100})
	s.Push(1, 20, []int64{200})
	s.Push(1, 30, []int64{300})

	cases := []struct {
		ts   uint64
		want int64
		ok   bool
	}{
		{5, 0, false},
		{10, 100, true},
		{15, 100, true},
		{20, 200, true},
		{29, 200, true},
		{30, 300, true},
		{1000, 300, true},
	}
	for _, c := range cases {
		img, ok := s.ReadAsOf(1, c.ts)
		if ok != c.ok {
			t.Fatalf("ReadAsOf(%d) ok=%v want %v", c.ts, ok, c.ok)
		}
		if ok && img[0] != c.want {
			t.Fatalf("ReadAsOf(%d) = %d want %d", c.ts, img[0], c.want)
		}
	}
}

func TestNewestToOldestOrder(t *testing.T) {
	s := NewStore()
	for ts := uint64(1); ts <= 5; ts++ {
		s.Push(7, ts, []int64{int64(ts)})
	}
	if s.ChainLen(7) != 5 {
		t.Fatalf("chain len = %d", s.ChainLen(7))
	}
	// The newest version must be found without full traversal semantics:
	// ReadAsOf(max) returns TS=5.
	img, _ := s.ReadAsOf(7, 100)
	if img[0] != 5 {
		t.Fatalf("newest = %d", img[0])
	}
}

func TestMissingRow(t *testing.T) {
	s := NewStore()
	if _, ok := s.ReadAsOf(9, 100); ok {
		t.Fatal("missing row must not resolve")
	}
}

func TestGC(t *testing.T) {
	s := NewStore()
	for ts := uint64(10); ts <= 50; ts += 10 {
		s.Push(1, ts, []int64{int64(ts)})
	}
	// Oldest active reader at 35: versions 10 and 20 are unreachable
	// (30 is the newest visible at 35, and must stay).
	dropped := s.GC(35)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if img, ok := s.ReadAsOf(1, 35); !ok || img[0] != 30 {
		t.Fatalf("visible at 35 after GC: %v %v", img, ok)
	}
	if _, ok := s.ReadAsOf(1, 15); ok {
		t.Fatal("reclaimed version still readable")
	}
}

func TestGCHeadOnly(t *testing.T) {
	s := NewStore()
	s.Push(1, 10, []int64{1})
	if dropped := s.GC(100); dropped != 0 {
		t.Fatalf("head must survive, dropped %d", dropped)
	}
	if img, ok := s.ReadAsOf(1, 100); !ok || img[0] != 1 {
		t.Fatal("head lost")
	}
}

func TestLen(t *testing.T) {
	s := NewStore()
	s.Push(1, 1, []int64{1})
	s.Push(1, 2, []int64{2})
	s.Push(200, 1, []int64{3})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestQuickVisibilityMatchesReference(t *testing.T) {
	// Property: ReadAsOf returns exactly the newest version with TS <= ts.
	f := func(tss []uint8, probe uint8) bool {
		s := NewStore()
		var sorted []uint64
		seen := map[uint64]bool{}
		for _, x := range tss {
			ts := uint64(x) + 1
			if seen[ts] {
				continue
			}
			seen[ts] = true
			sorted = append(sorted, ts)
		}
		// Push in increasing TS order (commit order).
		for i := 0; i < len(sorted); i++ {
			min := i
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[min] {
					min = j
				}
			}
			sorted[i], sorted[min] = sorted[min], sorted[i]
		}
		for _, ts := range sorted {
			s.Push(3, ts, []int64{int64(ts)})
		}
		var want uint64
		for _, ts := range sorted {
			if ts <= uint64(probe) {
				want = ts
			}
		}
		img, ok := s.ReadAsOf(3, uint64(probe))
		if want == 0 {
			return !ok
		}
		return ok && img[0] == int64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
