package wal

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the steady-state append path (encode +
// in-memory write, SyncNever so fsync cost doesn't drown the encoder).
// The hot path must stay allocation-free per record once the encode
// buffer has warmed — see alloc_regression_test.go at the repo root.
func BenchmarkWALAppend(b *testing.B) {
	for _, ops := range []int{1, 8} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			fs := NewMemFS()
			l, err := Open(fs, "bench/wal.log", SyncNever, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			rec := &Record{TxnID: 1, CommitTS: 2}
			for i := 0; i < ops; i++ {
				rec.Ops = append(rec.Ops, Op{
					Kind: OpUpdate, Table: "stock", Row: int64(i), Col: 3, Val: int64(i),
				})
			}
			sz := int64(frameHeader + payloadSize(rec))
			b.SetBytes(sz)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(rec, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALReplay measures the recovery scan in rows per second over a
// log of insert-heavy records, the shape recovery actually replays.
func BenchmarkWALReplay(b *testing.B) {
	fs := NewMemFS()
	l, err := Open(fs, "bench/wal.log", SyncNever, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	const recs, rows, width = 2000, 4, 8
	ins := &Record{TxnID: 1, CommitTS: 2, Ops: []Op{{
		Kind: OpInsert, Table: "orderline", NRows: rows, Width: width,
		Vals: make([]int64, rows*width),
	}}}
	for i := 0; i < recs; i++ {
		if _, err := l.Append(ins, nil); err != nil {
			b.Fatal(err)
		}
	}
	logBytes := l.Pos()
	b.SetBytes(logBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fs.Open("bench/wal.log")
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		st, err := Replay(f, 0, func(_ int64, rec *Record) error {
			n += rec.Ops[0].NRows
			return nil
		})
		f.Close()
		if err != nil || st.Records != recs || n != recs*rows {
			b.Fatalf("replay: %v, %d records, %d rows", err, st.Records, n)
		}
	}
	b.ReportMetric(float64(recs*rows), "rows/replay")
}
