// Package wal implements the commit write-ahead log of the durability
// layer: length-prefixed, CRC32C-checksummed records carrying each
// committed transaction's write set, appended under a group-commit lock
// and replayed idempotently above a checkpoint watermark at recovery.
//
// The log talks to storage through the FS interface so tests (and the
// crash harness) can substitute an in-memory filesystem that simulates
// fsync failures, torn tail writes and process death that discards
// unsynced bytes.
package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCrash is returned by fault-injecting filesystems when a simulated
// crash point is reached mid-write. Engines treat it like any other I/O
// error; the harness recognizes it to stop driving the schedule.
var ErrCrash = errors.New("wal: simulated crash")

// FS is the filesystem surface the durability layer needs. Paths use
// forward slashes regardless of platform.
type FS interface {
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// Append opens a file for appending, creating it if absent.
	Append(name string) (File, error)
	// Open opens a file for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists the entry names directly under dir, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Truncate cuts the named file to size bytes (recovery truncates the
	// log at the first corrupt record before resuming appends).
	Truncate(name string, size int64) error
}

// File is a writable log or checkpoint stream.
type File interface {
	io.Writer
	// Sync makes previously written bytes durable.
	Sync() error
	Close() error
}

// OSFS is the real filesystem rooted at the host's path separator rules.
type OSFS struct{}

func (OSFS) Create(name string) (File, error) {
	return os.Create(filepath.FromSlash(name))
}

func (OSFS) Append(name string) (File, error) {
	return os.OpenFile(filepath.FromSlash(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(filepath.FromSlash(name))
}

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(filepath.FromSlash(dir))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) MkdirAll(dir string) error {
	return os.MkdirAll(filepath.FromSlash(dir), 0o755)
}

func (OSFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.FromSlash(name), size)
}

// memFile is one MemFS file: data holds every written byte, synced the
// durable prefix length.
type memFile struct {
	data   []byte
	synced int
}

// MemFS is an in-memory FS with explicit durability semantics: writes
// land in memory, Sync marks the current length durable, and Crash
// produces the filesystem image a process death would leave behind.
// Fault injection covers fsync failure (FailSyncs) and torn writes
// (CrashAfterWrite).
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile //htap:guardedby mu
	dirs  map[string]bool     //htap:guardedby mu

	budget    int64 // remaining write bytes before ErrCrash; -1 unlimited //htap:guardedby mu
	failSyncs int   // Syncs fail once this countdown reaches zero; -1 off //htap:guardedby mu
	written   int64 // lifetime bytes accepted //htap:guardedby mu
}

// NewMemFS returns an empty in-memory filesystem with no faults armed.
func NewMemFS() *MemFS {
	return &MemFS{
		files:     map[string]*memFile{},
		dirs:      map[string]bool{"": true, ".": true},
		budget:    -1,
		failSyncs: -1,
	}
}

// CrashAfterWrite arms a torn-write fault: the filesystem accepts n more
// written bytes, then every write returns ErrCrash — the last write that
// crosses the budget lands partially, producing a torn tail.
func (m *MemFS) CrashAfterWrite(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = n
}

// FailSyncs makes Sync calls fail after n more successful ones.
func (m *MemFS) FailSyncs(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failSyncs = n
}

// BytesWritten reports the lifetime bytes this filesystem accepted.
func (m *MemFS) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// Crash returns the filesystem image a process death would leave behind.
// With keepUnsynced, every written byte survives (the OS flushed its page
// cache before the crash — the model that preserves torn tail writes);
// without it, each file truncates to its last Sync. The original
// filesystem is left untouched, so one crashed image can be recovered
// from repeatedly and deterministically.
func (m *MemFS) Crash(keepUnsynced bool) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := NewMemFS()
	for name, f := range m.files {
		n := f.synced
		if keepUnsynced {
			n = len(f.data)
		}
		img.files[name] = &memFile{data: append([]byte(nil), f.data[:n]...), synced: n}
	}
	for d := range m.dirs {
		img.dirs[d] = true
	}
	return img
}

func (m *MemFS) open(name string, truncate bool) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil || truncate {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) Create(name string) (File, error) { return m.open(name, true) }
func (m *MemFS) Append(name string) (File, error) { return m.open(name, false) }

func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil, fmt.Errorf("wal: open %s: %w", name, os.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), f.data...))), nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	seen := map[string]bool{}
	for name := range m.files {
		if strings.HasPrefix(name, prefix) {
			rest := name[len(prefix):]
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				rest = rest[:i]
			}
			seen[rest] = true
		}
	}
	for d := range m.dirs {
		if strings.HasPrefix(d, prefix) {
			rest := d[len(prefix):]
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				rest = rest[:i]
			}
			seen[rest] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for dir != "" && dir != "." && dir != "/" {
		m.dirs[strings.TrimSuffix(dir, "/")] = true
		i := strings.LastIndexByte(dir, '/')
		if i < 0 {
			break
		}
		dir = dir[:i]
	}
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return fmt.Errorf("wal: truncate %s: %w", name, os.ErrNotExist)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("wal: truncate %s to %d outside [0, %d]", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// memHandle is an open MemFS file.
type memHandle struct {
	fs *MemFS
	f  *memFile
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	n := len(p)
	if h.fs.budget >= 0 {
		if h.fs.budget == 0 {
			return 0, ErrCrash
		}
		if int64(n) > h.fs.budget {
			n = int(h.fs.budget)
		}
		h.fs.budget -= int64(n)
	}
	h.f.data = append(h.f.data, p[:n]...)
	h.fs.written += int64(n)
	if n < len(p) {
		return n, ErrCrash
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.failSyncs >= 0 {
		if h.fs.failSyncs == 0 {
			return errors.New("wal: simulated fsync failure")
		}
		h.fs.failSyncs--
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error { return nil }
