package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes through both the payload decoder
// and the full replay scan. Neither may panic, over-read, or allocate
// proportionally to a claimed (rather than actual) length, no matter how
// the input is truncated, bit-flipped or fabricated.
func FuzzWALDecode(f *testing.F) {
	// Seed with well-formed frames so mutation explores near-valid inputs.
	seed := func(rec *Record) []byte {
		buf := make([]byte, frameHeader+payloadSize(rec))
		encodeFrame(buf, rec)
		return buf
	}
	f.Add(seed(&Record{TxnID: 1, CommitTS: 2, Ops: []Op{
		{Kind: OpUpdate, Table: "stock", Row: 9, Col: 3, Val: -4},
	}}))
	f.Add(seed(&Record{TxnID: 7, CommitTS: 8, Ops: []Op{
		{Kind: OpInsert, Table: "orders", NRows: 2, Width: 3, Vals: []int64{1, 2, 3, 4, 5, 6}},
		{Kind: OpUpdate, Table: "district", Row: 0, Col: 0, Val: 0},
	}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	// A frame whose CRC is valid but whose payload claims a giant insert.
	hostile := make([]byte, frameHeader+headerBytes+3+8)
	le := binary.LittleEndian
	le.PutUint32(hostile[frameHeader+16:], 1) // one op
	hostile[frameHeader+headerBytes] = byte(OpInsert)
	le.PutUint32(hostile[frameHeader+headerBytes+3:], 1<<31-1) // absurd NRows
	le.PutUint32(hostile[0:], uint32(len(hostile)-frameHeader))
	le.PutUint32(hostile[4:], crc32.Checksum(hostile[frameHeader:], Castagnoli))
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw payload decoding.
		if rec, err := DecodeRecord(data); err == nil {
			// A successful decode must re-encode to the identical payload.
			buf := make([]byte, frameHeader+payloadSize(rec))
			n := encodeFrame(buf, rec)
			if !bytes.Equal(buf[frameHeader:n], data) {
				t.Fatalf("decode/encode mismatch: %x -> %x", data, buf[frameHeader:n])
			}
		}
		// Full replay scan: must terminate without error or panic, and
		// ValidPos can never exceed the input length.
		st, err := Replay(bytes.NewReader(data), 0, func(pos int64, rec *Record) error {
			if rec == nil || pos < 0 {
				t.Fatal("replay surfaced a nil record or negative position")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay over fuzz input returned error: %v", err)
		}
		if st.ValidPos > int64(len(data)) {
			t.Fatalf("ValidPos %d beyond input length %d", st.ValidPos, len(data))
		}
	})
}
