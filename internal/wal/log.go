package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects when appended records are made durable.
type SyncPolicy int8

const (
	// SyncAlways fsyncs before every commit acknowledges. Concurrent
	// committers group-commit: one fsync covers every record written
	// before it, and committers whose record the fsync already covered
	// return without issuing their own.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when at least Interval has elapsed since the
	// last fsync; a crash loses at most one interval of commits.
	SyncInterval
	// SyncNever leaves fsync to Sync/Close callers; a crash loses every
	// unsynced commit. The write path still orders records correctly.
	SyncNever
)

// String names the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int8(p))
	}
}

// errSync wraps fsync failures so callers can distinguish "the record is
// written and applied but not durable" from "the record never landed".
type errSync struct{ err error }

func (e *errSync) Error() string { return "wal: fsync failed: " + e.err.Error() }
func (e *errSync) Unwrap() error { return e.err }

// IsSyncFailure reports whether err is a durability (fsync) failure that
// happened after the record was written and its apply function ran: the
// in-memory state advanced, only persistence is in doubt.
func IsSyncFailure(err error) bool {
	var se *errSync
	return errors.As(err, &se)
}

// Log is an append-only commit log over one file. Appends serialize on an
// internal mutex that also runs the caller's apply function, so log order
// equals apply order — the property insert replay relies on to reassign
// identical row IDs. After any write or sync error the log is broken:
// every later append fails with the sticky error, because a half-written
// tail makes further appends unreadable anyway.
type Log struct {
	policy   SyncPolicy
	interval time.Duration

	mu     sync.Mutex
	f      File
	buf    []byte //htap:guardedby mu
	broken error  //htap:guardedby mu
	pos    atomic.Int64

	syncMu   sync.Mutex
	synced   int64     //htap:guardedby syncMu
	lastSync time.Time //htap:guardedby syncMu

	appends atomic.Int64
	syncs   atomic.Int64
	grouped atomic.Int64 // appends whose fsync another committer's covered
}

// Open opens (appending) or creates the log file at name. start is the
// byte offset existing contents end at — pass the validPos a Replay
// reported, after truncating the file to it.
func Open(fs FS, name string, policy SyncPolicy, interval time.Duration, start int64) (*Log, error) {
	f, err := fs.Append(name)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", name, err)
	}
	l := &Log{policy: policy, interval: interval, f: f}
	l.pos.Store(start)
	l.synced = start
	return l, nil
}

// Pos returns the record-aligned byte offset of the log's end: every
// record below it has been written and applied.
func (l *Log) Pos() int64 { return l.pos.Load() }

// Synced returns the byte offset known durable.
func (l *Log) Synced() int64 {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.synced
}

// Stats reports lifetime append, fsync and group-commit counts.
func (l *Log) Stats() (appends, syncs, grouped int64) {
	return l.appends.Load(), l.syncs.Load(), l.grouped.Load()
}

// Append encodes rec, writes it to the log, runs apply (the caller's
// in-memory application of the same write set) while still holding the
// log lock, and then makes the record durable per the sync policy.
//
// Running apply under the lock guarantees log order == apply order, so
// insert replay reassigns exactly the row IDs the live run assigned. The
// record is fully encoded before apply runs — the write set is logged
// before any cell is touched — and the fsync (when the policy wants one)
// happens after, covering this record and any later ones other
// committers wrote in the meantime (group commit).
//
// On a write error apply has NOT run and the log is broken; on a sync
// error apply HAS run and the error satisfies IsSyncFailure.
//
//htap:hotpath
func (l *Log) Append(rec *Record, apply func()) (int64, error) {
	n := frameHeader + payloadSize(rec)
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return 0, err
	}
	if cap(l.buf) < n {
		l.grow(n)
	}
	buf := l.buf[:n]
	encodeFrame(buf, rec)
	if _, err := l.f.Write(buf); err != nil {
		werr := l.fail(err)
		l.mu.Unlock()
		return 0, werr
	}
	end := l.pos.Load() + int64(n)
	l.pos.Store(end)
	if apply != nil {
		apply()
	}
	l.mu.Unlock()
	l.appends.Add(1)
	switch l.policy {
	case SyncAlways:
		return end, l.syncTo(end)
	case SyncInterval:
		return end, l.maybeSync(end)
	}
	return end, nil
}

// grow resizes the encode buffer (amortized; off the steady-state path).
//
//htap:coldpath
//htap:locked mu
func (l *Log) grow(n int) {
	l.buf = make([]byte, n+n/2)
}

// fail marks the log broken and returns the wrapped cause.
//
//htap:coldpath
//htap:locked mu
func (l *Log) fail(err error) error {
	l.broken = fmt.Errorf("wal: log broken: %w", err)
	return l.broken
}

// syncTo makes bytes up to at least end durable, group-committing: if a
// concurrent committer's fsync already covered end, return immediately.
func (l *Log) syncTo(end int64) error {
	l.syncMu.Lock()
	if l.synced >= end {
		l.syncMu.Unlock()
		l.grouped.Add(1)
		return nil
	}
	covered := l.pos.Load()
	err := l.f.Sync()
	if err == nil {
		l.synced = covered
		l.lastSync = time.Now()
		l.syncMu.Unlock()
		l.syncs.Add(1)
		return nil
	}
	l.syncMu.Unlock()
	return l.failSync(err)
}

// failSync marks the log broken after a durability failure and wraps the
// cause so IsSyncFailure recognizes it.
//
//htap:coldpath
func (l *Log) failSync(err error) error {
	se := &errSync{err: err}
	l.mu.Lock()
	if l.broken == nil {
		l.broken = se
	}
	l.mu.Unlock()
	return se
}

// maybeSync fsyncs when the policy interval has elapsed.
func (l *Log) maybeSync(end int64) error {
	l.syncMu.Lock()
	due := time.Since(l.lastSync) >= l.interval
	l.syncMu.Unlock()
	if !due {
		return nil
	}
	return l.syncTo(end)
}

// Sync forces an fsync of everything written so far.
func (l *Log) Sync() error {
	return l.syncTo(l.pos.Load())
}

// Close syncs and closes the log file. The log is unusable afterwards.
func (l *Log) Close() error {
	err := l.Sync()
	l.mu.Lock()
	if l.broken == nil {
		l.broken = errors.New("wal: log closed")
	}
	cerr := l.f.Close()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	return cerr
}
