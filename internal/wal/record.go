package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Records frame as
//
//	u32 payload length | u32 CRC32C(payload) | payload
//
// with a little-endian payload of
//
//	u64 txn id | u64 commit timestamp | u32 op count
//	per op: u8 kind | u16 table name length | table name
//	        update: u64 row | u32 col | u64 value
//	        insert: u32 row count | u32 width | rows*width u64 words
//
// CRC32C is the Castagnoli polynomial (hardware-accelerated on amd64 and
// arm64), the same checksum the checkpoint format uses.

// OpKind distinguishes write-set operations.
type OpKind uint8

const (
	// OpUpdate is one in-place cell write of a committed row.
	OpUpdate OpKind = 1
	// OpInsert appends whole rows; replay reassigns the same row IDs
	// because append order equals log order (see Log.Append).
	OpInsert OpKind = 2
)

// Op is one operation of a committed write set.
type Op struct {
	Kind  OpKind
	Table string

	// Update fields.
	Row int64
	Col uint32
	Val int64

	// Insert fields: NRows rows of Width raw words each, row-major.
	NRows int
	Width int
	Vals  []int64
}

// Record is one committed transaction's write set.
type Record struct {
	TxnID    uint64
	CommitTS uint64
	Ops      []Op
}

const (
	frameHeader = 8         // u32 len + u32 crc
	headerBytes = 8 + 8 + 4 // txn id + commit ts + op count
	// maxPayload caps a claimed record length so a corrupt or hostile
	// header can never trigger a huge allocation or over-read.
	maxPayload = 1 << 26
	// maxTableName bounds decoded table names.
	maxTableName = 1 << 12
)

// Castagnoli is the CRC32C table shared by WAL and checkpoint framing.
var Castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed framing, checksum or payload
// validation. Replay treats it as the end of the usable log.
var ErrCorrupt = errors.New("wal: corrupt record")

// payloadSize returns the encoded payload byte count of rec.
//
//htap:hotpath
func payloadSize(rec *Record) int {
	n := headerBytes
	for i := range rec.Ops {
		op := &rec.Ops[i]
		n += 1 + 2 + len(op.Table)
		if op.Kind == OpUpdate {
			n += 8 + 4 + 8
		} else {
			n += 4 + 4 + 8*len(op.Vals)
		}
	}
	return n
}

// encodeFrame writes the framed record into buf, which must hold exactly
// frameHeader+payloadSize(rec) bytes, and returns the bytes written.
//
//htap:hotpath
func encodeFrame(buf []byte, rec *Record) int {
	le := binary.LittleEndian
	p := frameHeader
	le.PutUint64(buf[p:], rec.TxnID)
	le.PutUint64(buf[p+8:], rec.CommitTS)
	le.PutUint32(buf[p+16:], uint32(len(rec.Ops)))
	p += headerBytes
	for i := range rec.Ops {
		op := &rec.Ops[i]
		buf[p] = byte(op.Kind)
		le.PutUint16(buf[p+1:], uint16(len(op.Table)))
		p += 3
		copy(buf[p:], op.Table)
		p += len(op.Table)
		if op.Kind == OpUpdate {
			le.PutUint64(buf[p:], uint64(op.Row))
			le.PutUint32(buf[p+8:], op.Col)
			le.PutUint64(buf[p+12:], uint64(op.Val))
			p += 20
		} else {
			le.PutUint32(buf[p:], uint32(op.NRows))
			le.PutUint32(buf[p+4:], uint32(op.Width))
			p += 8
			for _, v := range op.Vals {
				le.PutUint64(buf[p:], uint64(v))
				p += 8
			}
		}
	}
	le.PutUint32(buf[0:], uint32(p-frameHeader))
	le.PutUint32(buf[4:], crc32.Checksum(buf[frameHeader:p], Castagnoli))
	return p
}

// DecodeRecord parses one record payload (the bytes after the 8-byte
// frame header, already CRC-verified by the caller or not). It is
// defensive against truncated, bit-flipped and hostile inputs: every
// claimed count is validated against the remaining bytes before any
// allocation, so malformed payloads return ErrCorrupt instead of
// panicking or over-allocating.
func DecodeRecord(payload []byte) (*Record, error) {
	le := binary.LittleEndian
	if len(payload) < headerBytes || len(payload) > maxPayload {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrCorrupt, len(payload))
	}
	rec := &Record{
		TxnID:    le.Uint64(payload),
		CommitTS: le.Uint64(payload[8:]),
	}
	nops := int(le.Uint32(payload[16:]))
	p := headerBytes
	// Each op takes at least 3 bytes; reject counts the payload can't hold.
	if nops < 0 || nops > (len(payload)-p)/3 {
		return nil, fmt.Errorf("%w: %d ops in %d bytes", ErrCorrupt, nops, len(payload))
	}
	rec.Ops = make([]Op, 0, nops)
	for i := 0; i < nops; i++ {
		if len(payload)-p < 3 {
			return nil, fmt.Errorf("%w: truncated op header", ErrCorrupt)
		}
		kind := OpKind(payload[p])
		nameLen := int(le.Uint16(payload[p+1:]))
		p += 3
		if nameLen > maxTableName || len(payload)-p < nameLen {
			return nil, fmt.Errorf("%w: table name %d bytes", ErrCorrupt, nameLen)
		}
		op := Op{Kind: kind, Table: string(payload[p : p+nameLen])}
		p += nameLen
		switch kind {
		case OpUpdate:
			if len(payload)-p < 20 {
				return nil, fmt.Errorf("%w: truncated update", ErrCorrupt)
			}
			op.Row = int64(le.Uint64(payload[p:]))
			op.Col = le.Uint32(payload[p+8:])
			op.Val = int64(le.Uint64(payload[p+12:]))
			p += 20
		case OpInsert:
			if len(payload)-p < 8 {
				return nil, fmt.Errorf("%w: truncated insert header", ErrCorrupt)
			}
			op.NRows = int(le.Uint32(payload[p:]))
			op.Width = int(le.Uint32(payload[p+4:]))
			p += 8
			if op.NRows < 0 || op.Width <= 0 {
				return nil, fmt.Errorf("%w: insert shape %dx%d", ErrCorrupt, op.NRows, op.Width)
			}
			words := op.NRows * op.Width
			if op.NRows > maxPayload/8 || op.Width > maxPayload/8 ||
				words > (len(payload)-p)/8 {
				return nil, fmt.Errorf("%w: insert %dx%d exceeds payload", ErrCorrupt, op.NRows, op.Width)
			}
			op.Vals = make([]int64, words)
			for k := range op.Vals {
				op.Vals[k] = int64(le.Uint64(payload[p:]))
				p += 8
			}
		default:
			return nil, fmt.Errorf("%w: op kind %d", ErrCorrupt, kind)
		}
		rec.Ops = append(rec.Ops, op)
	}
	if p != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-p)
	}
	return rec, nil
}
