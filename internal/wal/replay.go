package wal

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
)

// ReplayStats summarizes one recovery scan of the log.
type ReplayStats struct {
	// ValidPos is the byte offset after the last intact record: the
	// truncation point for resuming appends. Everything beyond it is a
	// torn tail or corruption.
	ValidPos int64
	// Records counts intact records seen (from offset zero).
	Records int
	// Replayed counts records at or above the requested watermark whose
	// callback ran.
	Replayed int
	// Truncated reports whether the scan stopped at a corrupt or torn
	// record rather than a clean end of file.
	Truncated bool
}

// Replay scans the log from the beginning, verifying every record's
// framing and checksum, and invokes fn for each intact record whose start
// offset is at or above from — the checkpoint watermark; records below it
// are already reflected in the checkpoint image and are skipped without
// decoding. The scan stops at the first corrupt, torn or truncated
// record: that is the recovery contract ("truncate at the first corrupt
// record"), not an error. A non-nil error from fn aborts the scan and is
// returned.
func Replay(r io.Reader, from int64, fn func(pos int64, rec *Record) error) (ReplayStats, error) {
	var st ReplayStats
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, frameHeader)
	var payload []byte
	pos := int64(0)
	for {
		if _, err := io.ReadFull(br, head); err != nil {
			// Clean EOF ends the log; a partial header is a torn tail.
			st.Truncated = err != io.EOF
			return st, nil
		}
		length := int(binary.LittleEndian.Uint32(head))
		want := binary.LittleEndian.Uint32(head[4:])
		if length < headerBytes || length > maxPayload {
			st.Truncated = true
			return st, nil
		}
		if cap(payload) < length {
			payload = make([]byte, length+length/2)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			st.Truncated = true
			return st, nil
		}
		if crc32.Checksum(payload, Castagnoli) != want {
			st.Truncated = true
			return st, nil
		}
		recPos := pos
		pos += int64(frameHeader + length)
		if recPos >= from {
			rec, err := DecodeRecord(payload)
			if err != nil {
				// The frame checksum passed but the payload is malformed:
				// an encoder bug or a collision — stop, like corruption.
				st.Truncated = true
				return st, nil
			}
			if fn != nil {
				if err := fn(recPos, rec); err != nil {
					return st, err
				}
			}
			st.Replayed++
		}
		st.Records++
		st.ValidPos = pos
	}
}
