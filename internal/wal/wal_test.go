package wal

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func updateRec(id uint64, table string, row int64, col uint32, val int64) *Record {
	return &Record{TxnID: id, CommitTS: id + 1, Ops: []Op{
		{Kind: OpUpdate, Table: table, Row: row, Col: col, Val: val},
	}}
}

func insertRec(id uint64, table string, rows, width int) *Record {
	vals := make([]int64, rows*width)
	for i := range vals {
		vals[i] = int64(id)*1000 + int64(i)
	}
	return &Record{TxnID: id, CommitTS: id + 1, Ops: []Op{
		{Kind: OpInsert, Table: table, NRows: rows, Width: width, Vals: vals},
	}}
}

func openLog(t *testing.T, fs FS, policy SyncPolicy) *Log {
	t.Helper()
	l, err := Open(fs, "db/wal.log", policy, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func replayAll(t *testing.T, fs FS, from int64) ([]*Record, ReplayStats) {
	t.Helper()
	f, err := fs.Open("db/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []*Record
	st, err := Replay(f, from, func(_ int64, rec *Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l := openLog(t, fs, SyncAlways)
	want := []*Record{
		updateRec(1, "stock", 42, 2, 7),
		insertRec(3, "orderline", 4, 10),
		{TxnID: 5, CommitTS: 6, Ops: []Op{
			{Kind: OpUpdate, Table: "district", Row: 1, Col: 6, Val: 99},
			{Kind: OpInsert, Table: "orders", NRows: 1, Width: 8, Vals: make([]int64, 8)},
		}},
	}
	var mid int64
	for i, rec := range want {
		pos, err := l.Append(rec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			mid = pos
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, st := replayAll(t, fs, 0)
	if st.Truncated || st.Records != len(want) || st.Replayed != len(want) {
		t.Fatalf("stats %+v, want %d clean records", st, len(want))
	}
	if st.ValidPos != l.Pos() {
		t.Fatalf("valid pos %d, log pos %d", st.ValidPos, l.Pos())
	}
	for i := range want {
		if got[i].TxnID != want[i].TxnID || got[i].CommitTS != want[i].CommitTS ||
			len(got[i].Ops) != len(want[i].Ops) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
		for k := range want[i].Ops {
			w, g := want[i].Ops[k], got[i].Ops[k]
			if g.Kind != w.Kind || g.Table != w.Table || g.Row != w.Row ||
				g.Col != w.Col || g.Val != w.Val || g.NRows != w.NRows || g.Width != w.Width {
				t.Fatalf("record %d op %d: got %+v want %+v", i, k, g, w)
			}
			for x := range w.Vals {
				if g.Vals[x] != w.Vals[x] {
					t.Fatalf("record %d op %d val %d: got %d want %d", i, k, x, g.Vals[x], w.Vals[x])
				}
			}
		}
	}

	// Replaying above a watermark skips the records below it.
	above, st2 := replayAll(t, fs, mid)
	if st2.Records != len(want) || st2.Replayed != len(want)-1 || len(above) != len(want)-1 {
		t.Fatalf("watermark replay: stats %+v, %d records", st2, len(above))
	}
	if above[0].TxnID != want[1].TxnID {
		t.Fatalf("watermark replay starts at txn %d, want %d", above[0].TxnID, want[1].TxnID)
	}
}

func TestTornTailRecoversToLastValidRecord(t *testing.T) {
	fs := NewMemFS()
	l := openLog(t, fs, SyncAlways)
	for i := uint64(1); i <= 5; i++ {
		if _, err := l.Append(insertRec(i, "orders", 2, 8), nil); err != nil {
			t.Fatal(err)
		}
	}
	goodPos := l.Pos()

	// Tear the next record partway through its write.
	fs.CrashAfterWrite(10)
	applied := false
	if _, err := l.Append(insertRec(6, "orders", 2, 8), func() { applied = true }); !errors.Is(err, ErrCrash) {
		t.Fatalf("torn append error = %v, want ErrCrash", err)
	}
	if applied {
		t.Fatal("apply ran despite torn write")
	}
	if _, err := l.Append(updateRec(7, "stock", 1, 1, 1), nil); err == nil {
		t.Fatal("log accepted an append after breaking")
	}

	img := fs.Crash(true)
	recs, st := replayAll(t, img, 0)
	if !st.Truncated || st.ValidPos != goodPos || len(recs) != 5 {
		t.Fatalf("recovery stats %+v (%d records), want truncated at %d with 5 records", st, len(recs), goodPos)
	}

	// Resuming: truncate the tear, append, and replay sees the new record.
	if err := img.Truncate("db/wal.log", st.ValidPos); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(img, "db/wal.log", SyncAlways, 0, st.ValidPos)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(updateRec(8, "stock", 3, 2, 4), nil); err != nil {
		t.Fatal(err)
	}
	recs, st = replayAll(t, img, 0)
	if st.Truncated || len(recs) != 6 || recs[5].TxnID != 8 {
		t.Fatalf("post-resume replay: stats %+v, %d records", st, len(recs))
	}
}

func TestBitFlipDetected(t *testing.T) {
	fs := NewMemFS()
	l := openLog(t, fs, SyncAlways)
	var positions []int64
	for i := uint64(1); i <= 4; i++ {
		pos, err := l.Append(updateRec(i, "warehouse", int64(i), 5, int64(i)*10), nil)
		if err != nil {
			t.Fatal(err)
		}
		positions = append(positions, pos)
	}
	f, _ := fs.Open("db/wal.log")
	data, _ := io.ReadAll(f)
	f.Close()

	// Flip one bit inside the third record's payload.
	data[positions[1]+frameHeader+2] ^= 0x40
	var recs []*Record
	st, err := Replay(bytes.NewReader(data), 0, func(_ int64, rec *Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.ValidPos != positions[1] || len(recs) != 2 {
		t.Fatalf("bit flip: stats %+v, %d records, want truncation at %d", st, len(recs), positions[1])
	}
}

func TestFsyncFailureBreaksLog(t *testing.T) {
	fs := NewMemFS()
	l := openLog(t, fs, SyncAlways)
	if _, err := l.Append(updateRec(1, "stock", 1, 1, 1), nil); err != nil {
		t.Fatal(err)
	}
	fs.FailSyncs(0)
	applied := false
	_, err := l.Append(updateRec(2, "stock", 2, 2, 2), func() { applied = true })
	if !IsSyncFailure(err) {
		t.Fatalf("append with failing fsync = %v, want sync failure", err)
	}
	if !applied {
		t.Fatal("apply must run before the fsync: the record was written")
	}
	if _, err := l.Append(updateRec(3, "stock", 3, 3, 3), nil); err == nil {
		t.Fatal("log accepted an append after a durability failure")
	}
}

func TestSyncNeverLosesUnsyncedOnCrash(t *testing.T) {
	fs := NewMemFS()
	l := openLog(t, fs, SyncNever)
	for i := uint64(1); i <= 3; i++ {
		if _, err := l.Append(updateRec(i, "item", int64(i), 0, 1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(4); i <= 6; i++ {
		if _, err := l.Append(updateRec(i, "item", int64(i), 0, 1), nil); err != nil {
			t.Fatal(err)
		}
	}
	// A crash that drops unsynced bytes keeps only the synced prefix.
	recs, st := replayAll(t, fs.Crash(false), 0)
	if st.Truncated || len(recs) != 3 {
		t.Fatalf("crash(false) kept %d records (stats %+v), want the 3 synced", len(recs), st)
	}
	// One that keeps page cache contents keeps everything.
	recs, _ = replayAll(t, fs.Crash(true), 0)
	if len(recs) != 6 {
		t.Fatalf("crash(true) kept %d records, want 6", len(recs))
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(fs, "db/wal.log", SyncInterval, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	// First append syncs (lastSync zero value is long past); later ones
	// within the hour do not.
	if _, err := l.Append(updateRec(1, "item", 1, 0, 1), nil); err != nil {
		t.Fatal(err)
	}
	after1 := l.Synced()
	if after1 != l.Pos() {
		t.Fatalf("first interval append left synced=%d pos=%d", after1, l.Pos())
	}
	if _, err := l.Append(updateRec(2, "item", 2, 0, 1), nil); err != nil {
		t.Fatal(err)
	}
	if l.Synced() != after1 {
		t.Fatal("second append within the interval should not fsync")
	}
}

// TestConcurrentAppendOrderMatchesReplay pins the ordering contract:
// apply functions run in log order, so replay reproduces exactly the
// sequence of applies — the property insert row-ID reassignment needs.
func TestConcurrentAppendOrderMatchesReplay(t *testing.T) {
	fs := NewMemFS()
	l := openLog(t, fs, SyncAlways)
	const workers, per = 8, 50
	var mu sync.Mutex
	var applied []uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(w*per + i + 1)
				rec := updateRec(id, "stock", int64(id), 1, int64(id))
				if _, err := l.Append(rec, func() {
					mu.Lock()
					applied = append(applied, id)
					mu.Unlock()
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st := replayAll(t, fs, 0)
	if st.Truncated || len(recs) != workers*per {
		t.Fatalf("replayed %d records (stats %+v), want %d", len(recs), st, workers*per)
	}
	for i, rec := range recs {
		if rec.TxnID != applied[i] {
			t.Fatalf("replay order diverges at %d: log has txn %d, apply order has %d", i, rec.TxnID, applied[i])
		}
	}
	appends, syncs, grouped := l.Stats()
	if appends != workers*per || syncs+grouped < appends {
		t.Fatalf("stats appends=%d syncs=%d grouped=%d", appends, syncs, grouped)
	}
}
