// Package workload is the multi-tenant workload manager: the arbitration
// layer between client sessions and the elastic OLAP pool. Tenants
// register with a dispatch weight and resource quotas; every query passes
// through its tenant's admission queue before it may touch the system, and
// a weighted-fair dispatcher (internal/olap) divides morsel throughput
// between contending tenants in proportion to their weights.
//
// The paper's scheduler arbitrates OLTP-vs-OLAP resources for a single
// client on one box; this package generalizes that single-knob story to
// many concurrent tenants with different priorities competing for the same
// elastic pool:
//
//   - Admission control. A tenant runs at most MaxConcurrent queries; the
//     next MaxQueueDepth admissions wait in a FIFO queue, and beyond that
//     Admit fails fast with a typed *OverloadError (errors.Is-able against
//     ErrOverloaded) carrying retry-after metadata — backpressure instead
//     of unbounded queueing.
//   - Resource quotas. BytesPerWindow bounds the bytes a tenant may scan
//     per quota window. Windows refill on a monotonic clock injectable in
//     tests, so quota behavior is deterministic under a fake clock.
//   - Fair dispatch. Weight feeds the OLAP engine's deficit-round-robin
//     dispatcher; under contention each backlogged tenant's morsel
//     throughput converges to its weight share.
//
// Callers that never mention a tenant run through the implicit
// DefaultTenant, which is registered unlimited — existing single-tenant
// code is unchanged.
package workload

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// DefaultTenant is the implicit tenant for untenanted callers. It is
// registered by New with weight 1 and no quotas, so code written before
// the workload manager existed behaves exactly as it used to.
const DefaultTenant = "default"

// ErrOverloaded is the sentinel every admission rejection matches:
//
//	errors.Is(err, workload.ErrOverloaded)
//
// The concrete error is a *OverloadError carrying the tenant, the reason
// and retry-after metadata; unwrap it with errors.As.
var ErrOverloaded = errors.New("workload: tenant overloaded")

// ErrUnknownTenant reports an admission naming a tenant that was never
// registered. The default tenant always exists.
var ErrUnknownTenant = errors.New("workload: unknown tenant")

// Reason classifies why an admission was rejected.
type Reason int8

const (
	// QueueFull: the tenant is at MaxConcurrent and its admission queue is
	// at MaxQueueDepth. Retry when a running query finishes.
	QueueFull Reason = iota
	// BytesExhausted: the tenant spent its BytesPerWindow budget; the
	// OverloadError's RetryAfter is the time until the window refills.
	BytesExhausted
)

// String renders the reason for error messages and operator output.
func (r Reason) String() string {
	switch r {
	case QueueFull:
		return "queue full"
	case BytesExhausted:
		return "bytes budget exhausted"
	default:
		return fmt.Sprintf("Reason(%d)", r)
	}
}

// OverloadError is the typed admission rejection: which tenant, why, and
// when a retry has a chance. It matches ErrOverloaded under errors.Is.
type OverloadError struct {
	// Tenant is the rejected tenant's name.
	Tenant string
	// Reason classifies the rejection.
	Reason Reason
	// RetryAfter estimates how long until the constraint clears: the
	// remainder of the quota window for BytesExhausted, zero for QueueFull
	// (retry when a slot frees — there is no modeled completion time).
	RetryAfter time.Duration
	// Running and Queued snapshot the tenant's occupancy at rejection.
	Running, Queued int
}

// Error implements error.
func (e *OverloadError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("workload: tenant %q overloaded: %v (retry after %v)",
			e.Tenant, e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("workload: tenant %q overloaded: %v", e.Tenant, e.Reason)
}

// Is matches the ErrOverloaded sentinel.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Config describes one tenant's dispatch priority and quotas.
//
// Quota semantics are explicit: a zero MaxConcurrent really is a zero
// quota — every admission is rejected — and a zero MaxQueueDepth really
// means no waiting. Unlimited is spelled Unlimited (any negative value).
type Config struct {
	// Weight is the tenant's share of morsel throughput under contention,
	// relative to other backlogged tenants (4:2:1 weights converge to
	// 4:2:1 shares). Zero normalizes to 1; negative is invalid.
	Weight int
	// MaxConcurrent bounds the tenant's running queries. 0 rejects every
	// admission (a zero-quota tenant); Unlimited removes the bound.
	MaxConcurrent int
	// MaxQueueDepth bounds admissions waiting behind MaxConcurrent. 0
	// means no queueing — reject as soon as the tenant is at its
	// concurrency bound; Unlimited is accepted but defeats backpressure.
	MaxQueueDepth int
	// BytesPerWindow bounds the bytes the tenant's queries may scan per
	// Window; 0 or negative means unmetered. The budget is charged at
	// release with the bytes actually scanned, so one query may overshoot
	// the line — the next admission pays for it.
	BytesPerWindow int64
	// Window is the refill period for BytesPerWindow; zero defaults to
	// DefaultWindow.
	Window time.Duration
}

// Unlimited removes a concurrency or queue-depth bound.
const Unlimited = -1

// DefaultWindow is the quota window applied when Config.Window is zero.
const DefaultWindow = time.Second

// Grant is one admitted query's slot; Release returns it, charging the
// bytes the query actually scanned against the tenant's window budget.
// Release is idempotent.
type Grant struct {
	m    *Manager
	t    *tenant
	done bool
}

// TenantStats is one tenant's observability snapshot.
type TenantStats struct {
	Name   string
	Weight int
	// Running and Queued are current occupancy gauges.
	Running, Queued int
	// Admitted and Rejected count admissions over the manager's lifetime.
	Admitted, Rejected uint64
	// BytesScanned is the lifetime scanned-bytes total; WindowBytes is
	// the spend inside the current quota window.
	BytesScanned, WindowBytes int64
	// AdmissionWait is cumulative time admissions spent queued.
	AdmissionWait time.Duration
}

// waiter is one queued admission. The manager grants it by setting ok and
// closing ready; a cancelled waiter that was granted in the race returns
// its slot itself.
type waiter struct {
	ready chan struct{}
	ok    bool //htap:guardedby Manager.mu
}

// tenant is the manager's per-tenant state; all fields are guarded by the
// manager's mutex.
type tenant struct {
	name string
	cfg  Config //htap:guardedby Manager.mu

	running int       //htap:guardedby Manager.mu
	queue   []*waiter //htap:guardedby Manager.mu

	// windowStart is the monotonic instant the current quota window
	// began; windowBytes the spend inside it.
	windowStart time.Duration //htap:guardedby Manager.mu
	windowBytes int64         //htap:guardedby Manager.mu

	admitted, rejected uint64        //htap:guardedby Manager.mu
	bytesTotal         int64         //htap:guardedby Manager.mu
	waitTotal          time.Duration //htap:guardedby Manager.mu
}

// Manager is the tenant registry and admission gate. It is safe for
// concurrent use by any number of goroutines.
type Manager struct {
	mu      sync.Mutex
	now     func() time.Duration // monotonic clock
	tenants map[string]*tenant   //htap:guardedby mu
}

// New returns a manager on the real monotonic clock, with DefaultTenant
// registered unlimited at weight 1.
func New() *Manager {
	start := time.Now()
	return NewWithClock(func() time.Duration { return time.Since(start) })
}

// NewWithClock is New with an injected monotonic clock — time.Duration
// elapsed since an arbitrary origin, never decreasing. Tests drive quota
// windows deterministically with a fake.
func NewWithClock(now func() time.Duration) *Manager {
	m := &Manager{now: now, tenants: map[string]*tenant{}}
	m.tenants[DefaultTenant] = &tenant{
		name: DefaultTenant,
		cfg: Config{
			Weight:        1,
			MaxConcurrent: Unlimited,
			MaxQueueDepth: Unlimited,
			Window:        DefaultWindow,
		},
	}
	return m
}

// Register creates or reconfigures a tenant. Reconfiguring takes effect
// for subsequent admissions; running queries and queued waiters are
// untouched. Registering DefaultTenant adjusts the implicit tenant.
func (m *Manager) Register(name string, cfg Config) error {
	if name == "" {
		return fmt.Errorf("workload: Register: empty tenant name")
	}
	if cfg.Weight < 0 {
		return fmt.Errorf("workload: Register %q: negative weight %d", name, cfg.Weight)
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.tenants[name]; ok {
		t.cfg = cfg
		return nil
	}
	m.tenants[name] = &tenant{name: name, cfg: cfg, windowStart: m.windowOrigin(cfg.Window)}
	return nil
}

// windowOrigin aligns a new tenant's first window to the clock so refill
// instants are predictable under a fake clock. Callers hold m.mu.
//
//htap:locked mu
func (m *Manager) windowOrigin(w time.Duration) time.Duration {
	now := m.now()
	return now - now%w
}

// Weight returns the tenant's dispatch weight; unknown tenants report 1,
// so the OLAP dispatcher never sees a zero share.
func (m *Manager) Weight(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.tenants[m.resolve(name)]; ok {
		return t.cfg.Weight
	}
	return 1
}

// resolve maps the empty name to the default tenant.
func (m *Manager) resolve(name string) string {
	if name == "" {
		return DefaultTenant
	}
	return name
}

// refill rolls the tenant's quota window forward to the one containing
// now, zeroing the spend. Lazy: called on every admission and release, so
// no timer goroutine is needed and a fake clock fully determines when
// budgets refill. Callers hold m.mu.
//
//htap:locked Manager.mu
func (t *tenant) refill(now time.Duration) {
	if t.cfg.BytesPerWindow <= 0 {
		return
	}
	if elapsed := now - t.windowStart; elapsed >= t.cfg.Window {
		t.windowStart = now - now%t.cfg.Window
		t.windowBytes = 0
	}
}

// Admit blocks until the named tenant may run one more query, then
// returns the slot's Grant. The empty name means DefaultTenant; a name
// never registered fails with ErrUnknownTenant.
//
// Admit fails fast with a *OverloadError — never queueing — when the
// tenant's scanned-bytes budget for the current window is spent, or when
// the admission queue is at MaxQueueDepth. Otherwise, a tenant at
// MaxConcurrent queues the admission FIFO; cancelling ctx while queued
// removes the waiter and frees its queue slot immediately (a grant that
// raced the cancellation is passed on to the next waiter).
func (m *Manager) Admit(ctx context.Context, name string) (*Grant, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	t, ok := m.tenants[m.resolve(name)]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q (Register it, or use the default tenant)", ErrUnknownTenant, name)
	}
	now := m.now()
	t.refill(now)
	if t.cfg.BytesPerWindow > 0 && t.windowBytes >= t.cfg.BytesPerWindow {
		err := m.reject(t, BytesExhausted, t.windowStart+t.cfg.Window-now)
		m.mu.Unlock()
		return nil, err
	}
	if t.cfg.MaxConcurrent < 0 || t.running < t.cfg.MaxConcurrent {
		t.running++
		t.admitted++
		m.mu.Unlock()
		return &Grant{m: m, t: t}, nil
	}
	if t.cfg.MaxQueueDepth >= 0 && len(t.queue) >= t.cfg.MaxQueueDepth {
		err := m.reject(t, QueueFull, 0)
		m.mu.Unlock()
		return nil, err
	}
	w := &waiter{ready: make(chan struct{})}
	t.queue = append(t.queue, w)
	m.mu.Unlock()

	select {
	case <-w.ready:
		m.mu.Lock()
		t.waitTotal += m.now() - now
		t.admitted++
		m.mu.Unlock()
		return &Grant{m: m, t: t}, nil
	case <-ctx.Done():
		m.mu.Lock()
		granted := m.dequeue(t, w)
		m.mu.Unlock()
		if granted {
			// The grant raced the cancellation: hand the slot back, which
			// wakes the next waiter or decrements running.
			g := &Grant{m: m, t: t}
			g.Release(0)
		}
		return nil, ctx.Err()
	}
}

// reject records a rejection and builds its error. Callers hold m.mu.
//
//htap:locked mu
func (m *Manager) reject(t *tenant, r Reason, retry time.Duration) error {
	t.rejected++
	return &OverloadError{
		Tenant:     t.name,
		Reason:     r,
		RetryAfter: retry,
		Running:    t.running,
		Queued:     len(t.queue),
	}
}

// dequeue removes a cancelled waiter from the tenant's queue, reporting
// whether it had already been granted. Callers hold m.mu.
//
//htap:locked mu
func (m *Manager) dequeue(t *tenant, w *waiter) bool {
	for i, x := range t.queue {
		if x == w {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			return false
		}
	}
	return w.ok // no longer queued: granted unless the queue was reconfigured away
}

// Release returns the grant's concurrency slot and charges the bytes the
// query actually scanned against the tenant's current window. The slot
// passes to the head of the admission queue if one is waiting. Idempotent:
// a second Release is a no-op.
func (g *Grant) Release(bytesScanned int64) {
	if g == nil || g.done {
		return
	}
	g.done = true
	m, t := g.m, g.t
	m.mu.Lock()
	defer m.mu.Unlock()
	t.refill(m.now())
	if bytesScanned > 0 {
		t.windowBytes += bytesScanned
		t.bytesTotal += bytesScanned
	}
	// Hand the slot to the oldest waiter; running stays constant across
	// the transfer. With no waiter the slot simply frees.
	if len(t.queue) > 0 {
		w := t.queue[0]
		t.queue = t.queue[1:]
		w.ok = true
		close(w.ready)
		return
	}
	t.running--
}

// Tenant returns one tenant's stats; ok is false for unknown names.
func (m *Manager) Tenant(name string) (TenantStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[m.resolve(name)]
	if !ok {
		return TenantStats{}, false
	}
	return m.statsLocked(t), true
}

// Stats snapshots every registered tenant, sorted by name.
func (m *Manager) Stats() []TenantStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TenantStats, 0, len(m.tenants))
	for _, t := range m.tenants {
		out = append(out, m.statsLocked(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// statsLocked builds one tenant's snapshot. Callers hold m.mu.
//
//htap:locked mu
func (m *Manager) statsLocked(t *tenant) TenantStats {
	t.refill(m.now())
	return TenantStats{
		Name:          t.name,
		Weight:        t.cfg.Weight,
		Running:       t.running,
		Queued:        len(t.queue),
		Admitted:      t.admitted,
		Rejected:      t.rejected,
		BytesScanned:  t.bytesTotal,
		WindowBytes:   t.windowBytes,
		AdmissionWait: t.waitTotal,
	}
}

// tenantKey is the context key carrying the tenant name.
type tenantKey struct{}

// WithTenant returns a context whose queries run as the named tenant.
// Sessions thread it through QueryContext / Submit; the empty name keeps
// the default tenant.
func WithTenant(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, tenantKey{}, name)
}

// TenantFrom extracts the tenant name from a context; contexts without
// one report DefaultTenant.
func TenantFrom(ctx context.Context) string {
	if name, ok := ctx.Value(tenantKey{}).(string); ok && name != "" {
		return name
	}
	return DefaultTenant
}
