package workload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a deterministic monotonic clock for quota-window tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestDefaultTenantUnlimited(t *testing.T) {
	m := New()
	ctx := context.Background()
	var grants []*Grant
	for i := 0; i < 100; i++ {
		g, err := m.Admit(ctx, "")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		grants = append(grants, g)
	}
	st, ok := m.Tenant(DefaultTenant)
	if !ok || st.Running != 100 || st.Admitted != 100 {
		t.Fatalf("default stats = %+v, ok=%v", st, ok)
	}
	for _, g := range grants {
		g.Release(10)
	}
	st, _ = m.Tenant("")
	if st.Running != 0 || st.BytesScanned != 1000 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestUnknownTenantRejected(t *testing.T) {
	m := New()
	_, err := m.Admit(context.Background(), "nobody")
	if !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
}

func TestQueueHandoffFIFO(t *testing.T) {
	m := New()
	if err := m.Register("a", Config{MaxConcurrent: 1, MaxQueueDepth: 4}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g1, err := m.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Two queued admissions must be granted in FIFO order as slots free.
	order := make(chan int, 2)
	var wg sync.WaitGroup
	admitted := make(chan struct{}, 2)
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := m.Admit(ctx, "a")
			if err != nil {
				t.Error(err)
				return
			}
			order <- i
			admitted <- struct{}{}
			g.Release(0)
		}()
		// Ensure goroutine i queues before i+1 (FIFO determinism).
		waitForQueued(t, m, "a", i)
	}
	g1.Release(0)
	wg.Wait()
	if first := <-order; first != 1 {
		t.Fatalf("first granted waiter = %d, want 1", first)
	}
	<-admitted
	<-admitted
	st, _ := m.Tenant("a")
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("occupancy after drain: %+v", st)
	}
}

func waitForQueued(t *testing.T, m *Manager, name string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := m.Tenant(name); st.Queued == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := m.Tenant(name)
	t.Fatalf("queue depth never reached %d: %+v", want, st)
}

func TestQueueFullOverload(t *testing.T) {
	m := New()
	if err := m.Register("a", Config{MaxConcurrent: 1, MaxQueueDepth: 0}); err != nil {
		t.Fatal(err)
	}
	g, err := m.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Admit(context.Background(), "a")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err %T is not *OverloadError", err)
	}
	if oe.Tenant != "a" || oe.Reason != QueueFull || oe.Running != 1 {
		t.Fatalf("metadata = %+v", oe)
	}
	g.Release(0)
	if _, err := m.Admit(context.Background(), "a"); err != nil {
		t.Fatalf("post-release admit: %v", err)
	}
	st, _ := m.Tenant("a")
	if st.Rejected != 1 || st.Admitted != 2 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestZeroQuotaTenantAlwaysOverloaded(t *testing.T) {
	m := New()
	if err := m.Register("blocked", Config{MaxConcurrent: 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, err := m.Admit(context.Background(), "blocked")
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("admit %d: err = %v, want ErrOverloaded", i, err)
		}
	}
}

func TestBytesBudgetWindowRefill(t *testing.T) {
	clk := &fakeClock{}
	m := NewWithClock(clk.Now)
	if err := m.Register("a", Config{
		MaxConcurrent:  Unlimited,
		BytesPerWindow: 1000,
		Window:         time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	g, err := m.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	g.Release(1500) // overshoot; next admission pays
	clk.Advance(400 * time.Millisecond)
	_, err = m.Admit(context.Background(), "a")
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != BytesExhausted {
		t.Fatalf("err = %v, want BytesExhausted overload", err)
	}
	if oe.RetryAfter != 600*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 600ms", oe.RetryAfter)
	}
	// The window refills exactly at the boundary; afterwards admissions
	// proceed with a clean budget.
	clk.Advance(600 * time.Millisecond)
	g, err = m.Admit(context.Background(), "a")
	if err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
	g.Release(100)
	st, _ := m.Tenant("a")
	if st.WindowBytes != 100 || st.BytesScanned != 1600 {
		t.Fatalf("window accounting: %+v", st)
	}
}

func TestCancelQueuedAdmissionFreesSlot(t *testing.T) {
	m := New()
	if err := m.Register("a", Config{MaxConcurrent: 1, MaxQueueDepth: 1}); err != nil {
		t.Fatal(err)
	}
	g, err := m.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := m.Admit(ctx, "a")
		errc <- err
	}()
	waitForQueued(t, m, "a", 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled admit: %v, want context.Canceled", err)
	}
	// The queue slot freed: another waiter fits, and releasing the running
	// grant hands the slot to it — not to the cancelled waiter.
	st, _ := m.Tenant("a")
	if st.Queued != 0 {
		t.Fatalf("queued = %d after cancel, want 0", st.Queued)
	}
	done := make(chan *Grant, 1)
	go func() {
		g2, err := m.Admit(context.Background(), "a")
		if err != nil {
			t.Error(err)
		}
		done <- g2
	}()
	waitForQueued(t, m, "a", 1)
	g.Release(0)
	g2 := <-done
	g2.Release(0)
	st, _ = m.Tenant("a")
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("occupancy after drain: %+v", st)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	m := New()
	if err := m.Register("a", Config{MaxConcurrent: 2, MaxQueueDepth: 0}); err != nil {
		t.Fatal(err)
	}
	g, err := m.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	g.Release(5)
	g.Release(5) // no-op: must not double-free or double-charge
	st, _ := m.Tenant("a")
	if st.Running != 0 || st.BytesScanned != 5 {
		t.Fatalf("after double release: %+v", st)
	}
	var nilGrant *Grant
	nilGrant.Release(1) // nil-safe
}

func TestReconfigureTenant(t *testing.T) {
	m := New()
	if err := m.Register("a", Config{Weight: 2, MaxConcurrent: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Admit(context.Background(), "a"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("zero quota must reject, got %v", err)
	}
	if err := m.Register("a", Config{Weight: 4, MaxConcurrent: 1}); err != nil {
		t.Fatal(err)
	}
	if m.Weight("a") != 4 {
		t.Fatalf("weight = %d, want 4", m.Weight("a"))
	}
	g, err := m.Admit(context.Background(), "a")
	if err != nil {
		t.Fatalf("post-reconfigure admit: %v", err)
	}
	g.Release(0)
}

func TestRegisterValidation(t *testing.T) {
	m := New()
	if err := m.Register("", Config{}); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := m.Register("a", Config{Weight: -1}); err == nil {
		t.Fatal("negative weight must fail")
	}
	if err := m.Register("a", Config{}); err != nil {
		t.Fatal(err)
	}
	if m.Weight("a") != 1 {
		t.Fatalf("zero weight must normalize to 1, got %d", m.Weight("a"))
	}
}

func TestTenantFromContext(t *testing.T) {
	ctx := context.Background()
	if got := TenantFrom(ctx); got != DefaultTenant {
		t.Fatalf("bare context tenant = %q", got)
	}
	if got := TenantFrom(WithTenant(ctx, "analytics")); got != "analytics" {
		t.Fatalf("tenant = %q", got)
	}
	if got := TenantFrom(WithTenant(ctx, "")); got != DefaultTenant {
		t.Fatalf("empty tenant = %q, want default", got)
	}
}

// TestConcurrentAdmitRelease is the -race smoke: admissions, cancellations
// and releases from many goroutines must leave occupancy at zero.
func TestConcurrentAdmitRelease(t *testing.T) {
	m := New()
	if err := m.Register("a", Config{MaxConcurrent: 4, MaxQueueDepth: Unlimited}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var admitted atomic.Int64
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx := context.Background()
				if (i+j)%5 == 0 {
					// Some admissions race a cancellation.
					c, cancel := context.WithCancel(ctx)
					cancel()
					ctx = c
				}
				g, err := m.Admit(ctx, "a")
				if err != nil {
					if !errors.Is(err, context.Canceled) {
						t.Errorf("admit: %v", err)
					}
					continue
				}
				admitted.Add(1)
				g.Release(1)
			}
		}()
	}
	wg.Wait()
	st, _ := m.Tenant("a")
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("leaked occupancy: %+v", st)
	}
	if st.BytesScanned != admitted.Load() {
		t.Fatalf("bytes %d != admitted %d", st.BytesScanned, admitted.Load())
	}
}
