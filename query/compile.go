package query

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"

	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
)

// ErrPredType reports a predicate literal whose Go type cannot compare
// against the bound column: a string against an int64 column, a float
// with a fractional part against an integer column, an int against a
// string column. Bind wraps it with the offending column and value, so
// errors.Is(err, ErrPredType) distinguishes literal-type mistakes from
// unknown-name errors.
var ErrPredType = errors.New("predicate literal type mismatch")

// Catalog resolves table names to storage handles. *ch.DB (re-exported as
// elastichtap.DB) satisfies it.
type Catalog interface {
	Handle(name string) *oltp.TableHandle
}

// fkind selects a filter evaluation strategy. Ordered predicates compile
// to canonical inclusive ranges (Gt v becomes [v+1, max] for integers and
// [nextafter(v), +inf] for floats), so block filtering runs as tight
// range loops with no per-row calls.
type fkind int8

const (
	fIntRange fkind = iota // also string dictionary codes
	fIntNe
	fIntNotRange
	fFloatRange
	fFloatNe
	fFloatNotRange
	fNever // statically unsatisfiable
)

// ftest is a compiled predicate test over raw column words.
type ftest struct {
	kind     fkind
	ilo, ihi int64
	flo, fhi float64
}

// match evaluates the test row-at-a-time (dimension builds; the fact-side
// block path uses the vectorized loops in filterAll/filterSel instead).
func (t *ftest) match(w int64) bool {
	switch t.kind {
	case fIntRange:
		return w >= t.ilo && w <= t.ihi
	case fIntNe:
		return w != t.ilo
	case fIntNotRange:
		return w < t.ilo || w > t.ihi
	case fFloatRange:
		d := columnar.DecodeFloat(w)
		return d >= t.flo && d <= t.fhi
	case fFloatNe:
		return columnar.DecodeFloat(w) != t.flo
	case fFloatNotRange:
		d := columnar.DecodeFloat(w)
		return d < t.flo || d > t.fhi
	default:
		return false
	}
}

// fmatch evaluates the test against an already-decoded float64 — the cell
// type of emitted result rows (Having predicates).
func (t *ftest) fmatch(v float64) bool {
	switch t.kind {
	case fFloatRange:
		return v >= t.flo && v <= t.fhi
	case fFloatNe:
		return v != t.flo
	case fFloatNotRange:
		return v < t.flo || v > t.fhi
	default:
		return false
	}
}

// filter is a compiled predicate over one scanned column slot.
type filter struct {
	slot int
	ftest
}

// dimFilter is a compiled predicate over a dimension table's physical
// column (evaluated row-at-a-time during build).
type dimFilter struct {
	col int
	ftest
}

// aggPlan is one compiled aggregate: its kind, the column slot it reads
// (-1 for Count/CountIf; fact scan slots first, join payload slots after)
// and whether the raw word needs IEEE decoding. CountIf carries the
// compiled condition and the slot it tests.
type aggPlan struct {
	kind     aggKind
	slot     int
	decode   bool
	cond     *ftest
	condSlot int
}

// jkey is a composite join key (unused trailing slots stay zero; the key
// width is fixed per plan so they never collide).
type jkey [maxJoinCols]int64

// joinPlan is a compiled hash join: where to probe on the fact side and
// how to build the key→payload table from the dimension.
type joinPlan struct {
	dim        *oltp.TableHandle
	probeSlots []int // global slots of the key columns (fact scan, or an earlier join's payload)
	keyCols    []int // dimension physical columns of the keys
	payCols    []int // dimension physical columns of the projected payload
	preds      []dimFilter
	// payBase is the join's first global payload index: payload column i
	// occupies slot nscan+payBase+i, shared by every execution path.
	payBase int
	// words is the per-row broadcast width in 8-byte words — the distinct
	// dimension columns touched (keys, payload, predicate columns) —
	// charged to the cost model as build bytes.
	words int
}

// Compiled is a bound, executable plan. It implements olap.Query, so it
// runs through the engine and the adaptive scheduler exactly like the
// hand-written workload queries. A plan built with Param placeholders
// compiles to a prepared statement: Bind resolves names, types and
// kernels once, and WithArgs stamps values per execution (see params.go).
type Compiled struct {
	name    string
	class   costmodel.WorkClass
	fact    string
	factH   *oltp.TableHandle // fact handle; its secondary indexes drive morsel skipping
	cols    []int
	filters []filter
	// joins holds the compiled hash joins in execution order (greedy by
	// default; see order.go). Each probes the fact side — or an earlier
	// join's payload — against its dimension build table.
	joins []*joinPlan
	// npayTotal is the total projected payload width across all joins;
	// payload columns occupy global slots nscan..nscan+npayTotal-1.
	npayTotal int
	groups    []int // slots of the group-key columns (fact or payload)
	aggs      []aggPlan
	outCols   []string
	having    []havingFilter
	order     olap.Order
	ordered   bool
	limit     int
	// params are the predicate sites awaiting WithArgs values, names the
	// cached distinct placeholder names; stamped marks a statement
	// produced by WithArgs as executable.
	params  []paramSite
	names   []string
	stamped bool
	// cache memoizes the last WithArgs stamping. It is a shared pointer:
	// WithArgs copies the Compiled by value, and every copy must consult
	// (and feed) the same cache as the statement it was stamped from. Nil
	// for parameterless plans.
	cache *stmtCache
	// fuse is the Bind-time fusion decision (see kernel.go). It is shared
	// by every WithArgs clone: the shape is value-independent, and each
	// Prepare specializes a concrete kernel from the clone's stamped
	// predicate values.
	fuse *fuseShape
}

// havingFilter is a compiled post-aggregation predicate over one output
// column (by index into the emitted row).
type havingFilter struct {
	col int
	ftest
}

// Name implements olap.Query.
func (c *Compiled) Name() string { return c.name }

// Class implements olap.Query.
func (c *Compiled) Class() costmodel.WorkClass { return c.class }

// FactTable implements olap.Query.
func (c *Compiled) FactTable() string { return c.fact }

// Columns implements olap.Query.
func (c *Compiled) Columns() []int { return c.cols }

// Prepare implements olap.Query. Plans whose shape the fused compiler
// covers (see kernel.go) specialize into a single-pass kernel from the
// statement's current predicate values; the rest run the staged path
// below, which builds each join's key→payload table from the dimension's
// active instance (dimensions are static under the transactional
// workload) and reports its broadcast volume. Single-column keys hash
// raw int64 words; composite keys hash a fixed-width array. Payload
// rows share one slab so a large build side costs one allocation per
// growth, not one per key.
func (c *Compiled) Prepare() (olap.Exec, int64) {
	if c.fuse != nil && c.fuse.ok && !disableFusion.Load() {
		return c.prepareFused()
	}
	e := &exec{c: c}
	var buildBytes int64
	for _, j := range c.joins {
		bld, scanned := buildStaged(j)
		e.builds = append(e.builds, bld)
		buildBytes += scanned * int64(j.words) * columnar.WordBytes
	}
	return e, buildBytes
}

// indexedDimRows narrows one join's build-side scan through the
// dimension's secondary index: when an Eq predicate (an intact
// single-word range after stamping) is served by a complete index, the
// ascending posting rows replace the full scan. The remaining
// predicates still run per row — postings only shrink the candidate
// set, so the build side is identical to a full scan. Columns that have
// ever been updated in place are left alone: their postings can lag a
// concurrent writer, while a full ReadActive scan cannot.
func indexedDimRows(j *joinPlan) ([]int64, bool) {
	dh := j.dim
	if dh.Sec == nil {
		return nil, false
	}
	dt := dh.Table()
	for i := range j.preds {
		f := &j.preds[i]
		if f.kind != fIntRange || f.ilo != f.ihi {
			continue
		}
		if dt.ColumnUpdateCount(f.col) != 0 {
			continue
		}
		post, wm, ok := dh.Sec.Lookup(f.col, f.ilo)
		if !ok || wm != dt.Rows() {
			continue
		}
		rows := make([]int64, 0, post.Count())
		post.ForEach(func(r int64) { rows = append(rows, r) })
		return rows, true
	}
	return nil, false
}

// buildStaged loads one join's map-backed build side, pre-filtered
// through the dimension's secondary index when an Eq predicate allows
// it. Returns the build and the number of dimension rows actually read
// (the broadcast volume the cost model is charged).
func buildStaged(j *joinPlan) (stagedBuild, int64) {
	dt := j.dim.Table()
	rows := dt.Rows()
	npay := len(j.payCols)
	single := len(j.keyCols) == 1
	var bld stagedBuild
	if single {
		bld.m1 = make(map[int64][]int64)
	} else {
		bld.mK = make(map[jkey][]int64)
	}
	cands, narrowed := indexedDimRows(j)
	scanned := rows
	if narrowed {
		scanned = int64(len(cands))
	}
	var slab []int64
	add := func(r int64) {
		for i := range j.preds {
			f := &j.preds[i]
			if !f.match(dt.ReadActive(r, f.col)) {
				return
			}
		}
		var pay []int64
		if npay > 0 {
			start := len(slab)
			for _, pc := range j.payCols {
				slab = append(slab, dt.ReadActive(r, pc))
			}
			pay = slab[start:len(slab):len(slab)]
		}
		if single {
			bld.m1[dt.ReadActive(r, j.keyCols[0])] = pay
		} else {
			var k jkey
			for d, kc := range j.keyCols {
				k[d] = dt.ReadActive(r, kc)
			}
			bld.mK[k] = pay
		}
	}
	if narrowed {
		for _, r := range cands {
			add(r)
		}
	} else {
		for r := int64(0); r < rows; r++ {
			add(r)
		}
	}
	return bld, scanned
}

// Bind compiles the plan against a catalog: table and column names resolve
// to physical indexes, predicates specialize to the column types, and the
// work class is fixed from the plan shape. Join payload columns resolve
// against the dimension's schema and occupy virtual slots after the fact
// scan list, so downstream group-by and aggregation address them exactly
// like scanned columns. The returned query is reusable across executions;
// the join build side is re-read at each Prepare.
func (p *Plan) Bind(cat Catalog) (*Compiled, error) {
	if p == nil {
		return nil, fmt.Errorf("query: nil plan")
	}
	if p.err != nil {
		return nil, p.err
	}
	if isNilCatalog(cat) {
		return nil, fmt.Errorf("query: nil catalog binding %q (no database loaded?)", p.Name())
	}
	h := cat.Handle(p.table)
	if h == nil {
		return nil, fmt.Errorf("query: unknown table %q", p.table)
	}
	tab := h.Table()
	schema := tab.Schema()
	if len(p.aggs) == 0 {
		return nil, fmt.Errorf("query: plan %q has no aggregates; add Agg(query.Count()) at minimum", p.Name())
	}

	// Resolve the joins first — graph edges or the deprecated shims — so
	// payload names are settled (explicit or inferred) before the fact
	// scan list forms, and the execution order is fixed (order.go).
	written, ordered, factPreds, err := p.resolveJoins(cat, schema)
	if err != nil {
		return nil, err
	}
	preds := p.preds
	if len(factPreds) > 0 {
		preds = append(append([]Pred(nil), p.preds...), factPreds...)
	}
	isPayload := map[string]bool{}
	payType := map[string]columnar.Type{}
	payOwner := map[string]*rjoin{}
	for _, rj := range written {
		for _, pc := range rj.spec.payload {
			idx := rj.schema.ColumnIndex(pc)
			if idx < 0 {
				return nil, fmt.Errorf("query: dimension %q has no column %q", rj.spec.dim, pc)
			}
			if rj.schema.Columns[idx].Type == columnar.String {
				return nil, fmt.Errorf("query: join payload column %q is a string; only int64 and float64 payloads project", pc)
			}
			if schema.ColumnIndex(pc) >= 0 {
				return nil, fmt.Errorf("%w: join payload column %q is ambiguous: fact table %q has a column of the same name",
					ErrAmbiguousColumn, pc, p.table)
			}
			if other, dup := payOwner[pc]; dup && other != rj {
				return nil, fmt.Errorf("%w: %q is reachable from relations %q and %q",
					ErrAmbiguousColumn, pc, other.spec.dim, rj.spec.dim)
			}
			isPayload[pc] = true
			payType[pc] = rj.schema.Columns[idx].Type
			payOwner[pc] = rj
		}
	}

	// Assemble the scan list: explicit projection order, or reference
	// order (filters, probe keys, group keys, aggregate inputs) over the
	// joins in written order — both ordering modes bind to an identical
	// scan layout. Join payload columns never scan — the probe
	// materializes them.
	var refs []string
	seen := map[string]bool{}
	addRef := func(col string) {
		if col != "" && !seen[col] && !isPayload[col] {
			seen[col] = true
			refs = append(refs, col)
		}
	}
	for _, pr := range preds {
		if isPayload[pr.col] {
			return nil, fmt.Errorf("query: Filter on join payload column %q; use JoinFilter (build side) or Having (after aggregation)", pr.col)
		}
		addRef(pr.col)
	}
	for _, rj := range written {
		for i, fk := range rj.spec.factKeys {
			if rj.keySrc[i] != "" {
				continue // sourced from another relation's payload
			}
			if len(p.graph) == 0 && isPayload[fk] {
				return nil, fmt.Errorf("query: join fact key %q is itself a payload column", fk)
			}
			addRef(fk)
		}
	}
	for _, g := range p.groups {
		addRef(g)
	}
	for _, a := range p.aggs {
		addRef(a.col)
	}
	scan := p.scanCols
	if len(scan) == 0 {
		scan = refs
	} else {
		listed := map[string]bool{}
		for _, c := range scan {
			listed[c] = true
		}
		for _, r := range refs {
			if !listed[r] {
				return nil, fmt.Errorf("query: plan %q references column %q missing from Scan's projection", p.Name(), r)
			}
		}
	}
	if len(scan) == 0 {
		return nil, fmt.Errorf("query: plan %q scans no columns", p.Name())
	}

	c := &Compiled{
		name:  p.Name(),
		fact:  p.table,
		factH: h,
		cols:  make([]int, len(scan)),
	}
	slots := map[string]int{}
	for i, name := range scan {
		idx := schema.ColumnIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("query: table %q has no column %q", p.table, name)
		}
		c.cols[i] = idx
		slots[name] = i
	}
	// Payload columns take virtual slots after the scanned fact columns,
	// assigned in execution order so a later join can probe an earlier
	// join's payload; the probes fill their vectors per block.
	for _, rj := range ordered {
		rj.payBase = c.npayTotal
		for _, pc := range rj.spec.payload {
			slots[pc] = len(scan) + c.npayTotal
			c.npayTotal++
		}
	}

	for _, pr := range preds {
		if len(predParams(pr)) > 0 {
			idx := schema.ColumnIndex(pr.col) // resolved by the scan-list loop above
			if err := c.noteParams(pr, schema.Columns[idx].Type, tab.Dict(idx), siteFilter, len(c.filters), 0); err != nil {
				return nil, err
			}
			c.filters = append(c.filters, filter{slot: slots[pr.col], ftest: ftest{kind: fNever}})
			continue
		}
		test, err := compileTest(tab, schema, pr)
		if err != nil {
			return nil, err
		}
		c.filters = append(c.filters, filter{slot: slots[pr.col], ftest: test})
	}

	for ji, rj := range ordered {
		jp, err := compileJoin(c, rj, ji, schema, slots, payType)
		if err != nil {
			return nil, err
		}
		jp.payBase = rj.payBase
		c.joins = append(c.joins, jp)
	}
	switch {
	case c.npayTotal > 0:
		c.class = costmodel.JoinProject
	case len(c.joins) > 0:
		c.class = costmodel.JoinProbe
	case len(p.groups) > 0:
		c.class = costmodel.ScanGroupBy
	default:
		c.class = costmodel.ScanReduce
	}

	colType := func(name string) columnar.Type {
		if t, ok := payType[name]; ok {
			return t
		}
		return schema.Columns[c.cols[slots[name]]].Type
	}

	for _, g := range p.groups {
		idx, ok := slots[g]
		if !ok {
			return nil, fmt.Errorf("query: group column %q missing from the scan list", g)
		}
		if colType(g) != columnar.Int64 {
			return nil, fmt.Errorf("query: group column %q is %v; only int64 keys are supported", g, colType(g))
		}
		c.groups = append(c.groups, idx)
	}

	for _, g := range p.groups {
		c.outCols = append(c.outCols, g)
	}
	for _, a := range p.aggs {
		ap := aggPlan{kind: a.kind, slot: -1, condSlot: -1}
		switch a.kind {
		case aggCount:
		case aggCountIf:
			slot, ok := slots[a.cond.col]
			if !ok {
				return nil, fmt.Errorf("query: CountIf over unknown column %q", a.cond.col)
			}
			ctab, cschema := tab, schema
			if owner := payOwner[a.cond.col]; owner != nil {
				ctab, cschema = owner.dh.Table(), owner.schema
			}
			if len(predParams(*a.cond)) > 0 {
				idx := cschema.ColumnIndex(a.cond.col)
				if err := c.noteParams(*a.cond, cschema.Columns[idx].Type, ctab.Dict(idx), siteCond, len(c.aggs), 0); err != nil {
					return nil, err
				}
				ap.cond, ap.condSlot = &ftest{kind: fNever}, slot
				break
			}
			test, err := compileTest(ctab, cschema, *a.cond)
			if err != nil {
				return nil, err
			}
			ap.cond, ap.condSlot = &test, slot
		default:
			slot, ok := slots[a.col]
			if !ok {
				return nil, fmt.Errorf("query: aggregate %v over unknown column %q", a.kind, a.col)
			}
			switch colType(a.col) {
			case columnar.Int64:
			case columnar.Float64:
				ap.decode = true
			default:
				return nil, fmt.Errorf("query: cannot %v string column %q", a.kind, a.col)
			}
			ap.slot = slot
		}
		c.aggs = append(c.aggs, ap)
		c.outCols = append(c.outCols, a.outName())
	}

	outIndex := func(name string) int {
		for i, n := range c.outCols {
			if n == name {
				return i
			}
		}
		return -1
	}
	for _, pr := range p.having {
		col := outIndex(pr.col)
		if col < 0 {
			return nil, fmt.Errorf("query: Having column %q is not an output column (have %v)", pr.col, c.outCols)
		}
		if len(predParams(pr)) > 0 {
			if err := c.noteParams(pr, columnar.Float64, nil, siteHaving, len(c.having), 0); err != nil {
				return nil, err
			}
			c.having = append(c.having, havingFilter{col: col, ftest: ftest{kind: fNever}})
			continue
		}
		test, err := makeFloatTest(pr)
		if err != nil {
			return nil, err
		}
		c.having = append(c.having, havingFilter{col: col, ftest: test})
	}
	c.names = paramNames(c.params)
	if p.orderCol != "" {
		col := outIndex(p.orderCol)
		if col < 0 {
			return nil, fmt.Errorf("query: OrderBy column %q is not an output column (have %v)", p.orderCol, c.outCols)
		}
		c.ordered = true
		c.order = olap.Order{Col: col, Desc: p.orderDesc}
		c.limit = p.limit
	} else if p.limit > 0 {
		return nil, fmt.Errorf("query: Limit without OrderBy would be non-deterministic; add OrderBy")
	}
	if len(c.params) > 0 {
		c.cache = &stmtCache{}
	}
	c.fuse = buildFuseShape(c)
	if !c.fuse.ok {
		logFallback(c.name, c.fuse.reason)
	}
	return c, nil
}

// compileJoin resolves one join's dimension side: key columns (int64 on
// both sides — the fact side may be a fact scan column or an earlier
// join's payload), payload columns and build-side predicates.
// Parameterized build-side predicates record their stamping sites on c,
// keyed by the join's execution index.
func compileJoin(c *Compiled, rj *rjoin, jidx int, schema columnar.Schema, slots map[string]int, payType map[string]columnar.Type) (*joinPlan, error) {
	j := rj.spec
	dh := rj.dh
	dt := dh.Table()
	dschema := rj.schema
	jp := &joinPlan{dim: dh}
	touched := map[int]bool{}
	for i, fk := range j.factKeys {
		slot, ok := slots[fk]
		if !ok {
			return nil, fmt.Errorf("query: join fact key %q missing from the scan list", fk)
		}
		ftype, isPay := payType[fk]
		if !isPay {
			ftype = schema.Columns[schema.ColumnIndex(fk)].Type
		}
		if ftype != columnar.Int64 {
			return nil, fmt.Errorf("query: join fact key %q is not int64", fk)
		}
		kc := dschema.ColumnIndex(j.dimKeys[i])
		if kc < 0 {
			return nil, fmt.Errorf("query: dimension %q has no column %q", j.dim, j.dimKeys[i])
		}
		if dschema.Columns[kc].Type != columnar.Int64 {
			return nil, fmt.Errorf("query: join dimension key %q is not int64", j.dimKeys[i])
		}
		jp.probeSlots = append(jp.probeSlots, slot)
		jp.keyCols = append(jp.keyCols, kc)
		touched[kc] = true
	}
	for _, pc := range j.payload {
		col := dschema.ColumnIndex(pc) // validated in Bind
		jp.payCols = append(jp.payCols, col)
		touched[col] = true
	}
	for _, pr := range j.preds {
		col := dschema.ColumnIndex(pr.col)
		if col < 0 {
			return nil, fmt.Errorf("query: dimension %q has no column %q", j.dim, pr.col)
		}
		if len(predParams(pr)) > 0 {
			if err := c.noteParams(pr, dschema.Columns[col].Type, dt.Dict(col), siteJoin, len(jp.preds), jidx); err != nil {
				return nil, err
			}
			jp.preds = append(jp.preds, dimFilter{col: col, ftest: ftest{kind: fNever}})
			touched[col] = true
			continue
		}
		test, err := compileTest(dt, dschema, pr)
		if err != nil {
			return nil, err
		}
		jp.preds = append(jp.preds, dimFilter{col: col, ftest: test})
		touched[col] = true
	}
	jp.words = len(touched)
	return jp, nil
}

// compileTest specializes a predicate to the column's storage type: int64
// columns compare raw words, float64 columns compare decoded IEEE values,
// and string columns compare dictionary codes (equality only). Ordered
// comparisons canonicalize to inclusive ranges so the block path needs no
// per-row calls.
func compileTest(tab *columnar.Table, schema columnar.Schema, pr Pred) (ftest, error) {
	idx := schema.ColumnIndex(pr.col)
	if idx < 0 {
		return ftest{}, fmt.Errorf("query: table %q has no column %q", schema.Name, pr.col)
	}
	switch schema.Columns[idx].Type {
	case columnar.Int64:
		return makeIntTest(pr)
	case columnar.Float64:
		return makeFloatTest(pr)
	case columnar.String:
		return makeStringTest(tab.Dict(idx), pr)
	}
	return ftest{}, fmt.Errorf("query: unsupported predicate %v on column %q", pr.op, pr.col)
}

// makeIntTest canonicalizes a predicate over an int64 column into a raw
// word test. WithArgs re-runs only this step when stamping parameters, so
// stamped tests are identical to freshly compiled ones.
func makeIntTest(pr Pred) (ftest, error) {
	lo, err := toInt64(pr.col, pr.lo)
	if err != nil {
		return ftest{}, err
	}
	t := ftest{kind: fIntRange, ilo: math.MinInt64, ihi: math.MaxInt64}
	switch pr.op {
	case opEq:
		t.ilo, t.ihi = lo, lo
	case opNe:
		return ftest{kind: fIntNe, ilo: lo}, nil
	case opGt:
		if lo == math.MaxInt64 {
			return ftest{kind: fNever}, nil
		}
		t.ilo = lo + 1
	case opGe:
		t.ilo = lo
	case opLt:
		if lo == math.MinInt64 {
			return ftest{kind: fNever}, nil
		}
		t.ihi = lo - 1
	case opLe:
		t.ihi = lo
	case opBetween:
		hi, err := toInt64(pr.col, pr.hi)
		if err != nil {
			return ftest{}, err
		}
		t.ilo, t.ihi = lo, hi
	case opNotBetween:
		hi, err := toInt64(pr.col, pr.hi)
		if err != nil {
			return ftest{}, err
		}
		return ftest{kind: fIntNotRange, ilo: lo, ihi: hi}, nil
	}
	return t, nil
}

// makeFloatTest canonicalizes a predicate in IEEE float space — float64
// columns, and the Having path where every emitted cell (group keys
// included) is already a decoded float64.
func makeFloatTest(pr Pred) (ftest, error) {
	lo, err := toFloat64(pr.col, pr.lo)
	if err != nil {
		return ftest{}, err
	}
	t := ftest{kind: fFloatRange, flo: math.Inf(-1), fhi: math.Inf(1)}
	switch pr.op {
	case opEq:
		t.flo, t.fhi = lo, lo
	case opNe:
		return ftest{kind: fFloatNe, flo: lo}, nil
	case opGt:
		t.flo = math.Nextafter(lo, math.Inf(1))
	case opGe:
		t.flo = lo
	case opLt:
		t.fhi = math.Nextafter(lo, math.Inf(-1))
	case opLe:
		t.fhi = lo
	case opBetween, opNotBetween:
		hi, err := toFloat64(pr.col, pr.hi)
		if err != nil {
			return ftest{}, err
		}
		if pr.op == opNotBetween {
			return ftest{kind: fFloatNotRange, flo: lo, fhi: hi}, nil
		}
		t.flo, t.fhi = lo, hi
	}
	return t, nil
}

// makeStringTest resolves a string literal through the column's
// dictionary: equality against a known code, never-match for unknown
// strings (inequality then matches everything).
func makeStringTest(dict *columnar.Dict, pr Pred) (ftest, error) {
	s, ok := pr.lo.(string)
	if !ok {
		return ftest{}, fmt.Errorf("query: string column %q compared with %v (%T): %w", pr.col, pr.lo, pr.lo, ErrPredType)
	}
	if pr.op != opEq && pr.op != opNe {
		return ftest{}, fmt.Errorf("query: string column %q supports only Eq/Ne, got %v", pr.col, pr.op)
	}
	code, known := dict.Lookup(s)
	if pr.op == opEq {
		if !known {
			return ftest{kind: fNever}, nil
		}
		return ftest{kind: fIntRange, ilo: code, ihi: code}, nil
	}
	if !known {
		return ftest{kind: fIntRange, ilo: math.MinInt64, ihi: math.MaxInt64}, nil
	}
	return ftest{kind: fIntNe, ilo: code}, nil
}

func toInt64(col string, v any) (int64, error) {
	switch x := v.(type) {
	case int:
		return int64(x), nil
	case int8:
		return int64(x), nil
	case int16:
		return int64(x), nil
	case int32:
		return int64(x), nil
	case int64:
		return x, nil
	case uint8:
		return int64(x), nil
	case uint16:
		return int64(x), nil
	case uint32:
		return int64(x), nil
	case float64:
		if x != float64(int64(x)) {
			return 0, fmt.Errorf("query: non-integral value %v for int64 column %q: %w", x, col, ErrPredType)
		}
		return int64(x), nil
	default:
		return 0, fmt.Errorf("query: value %v (%T) unusable for int64 column %q: %w", v, v, col, ErrPredType)
	}
}

func toFloat64(col string, v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("query: value %v (%T) unusable for float64 column %q: %w", v, v, col, ErrPredType)
	}
}

// isNilCatalog also catches a typed-nil *ch.DB stored in the interface.
func isNilCatalog(cat Catalog) bool {
	if cat == nil {
		return true
	}
	v := reflect.ValueOf(cat)
	return v.Kind() == reflect.Pointer && v.IsNil()
}

// --- execution kernels ---

// gkey is a composite group key (unused trailing slots stay zero; the key
// width is fixed per plan so they never collide).
type gkey [maxGroupCols]int64

// denseLen bounds the dense fast path for single-column group keys: keys
// in [0, denseLen) index a flat accumulator array instead of a hash map
// (warehouse ids, line numbers, small dictionary codes); larger keys
// spill to the map.
const denseLen = 1024

// acc is one aggregate's partial state. Sum and Avg use sum+count, Min/Max
// use ext+seen, Count uses count alone.
type acc struct {
	sum   float64
	ext   float64
	count int64
	seen  bool
}

// stagedBuild is one join's build side: single-column keys hash raw
// words (m1), composite keys hash fixed-width arrays (mK). Values are
// the projected payload words (nil for semi-joins).
type stagedBuild struct {
	m1 map[int64][]int64
	mK map[jkey][]int64
}

type exec struct {
	c *Compiled
	// builds holds one build side per compiled join, in execution order.
	builds []stagedBuild
	// scratch pools selection-vector, payload-vector and accumulator-row
	// buffers across the task's morsels and workers: locals are per-morsel
	// (for the engine's deterministic ordered merge), so reusable scratch
	// must live with the exec, not the local.
	scratch sync.Pool
}

// scratchBufs is transient per-block working memory; contents never
// outlive one Consume call, so pooling cannot affect results.
type scratchBufs struct {
	sel  []int32
	rows [][]acc
	pay  [][]int64
	cols [][]int64
}

func (e *exec) getScratch() *scratchBufs {
	if s, ok := e.scratch.Get().(*scratchBufs); ok {
		return s
	}
	return &scratchBufs{}
}

// payloadVecs returns npay vectors of length n for the probe to fill at
// surviving row indexes; downstream kernels index them like block columns.
func (s *scratchBufs) payloadVecs(npay, n int) [][]int64 {
	if cap(s.pay) < npay {
		s.pay = make([][]int64, npay)
	}
	s.pay = s.pay[:npay]
	for k := range s.pay {
		if cap(s.pay[k]) < n {
			s.pay[k] = make([]int64, n)
		}
		s.pay[k] = s.pay[k][:n]
	}
	return s.pay
}

type local struct {
	e       *exec
	global  []acc          // ungrouped accumulators
	flat    []acc          // single-key fast path: flat[key*naggs+j]
	present []bool         // flat occupancy, indexed by key
	dense   bool           // single-key plan: flat path enabled
	groups  map[gkey][]acc // grouped accumulators (spill / composite keys)

	// spillKeys records groups insertion order so Merge can walk the
	// spilled keys deterministically instead of ranging the map.
	spillKeys []gkey
}

// NewLocal implements olap.Exec. Locals are per-morsel (the engine merges
// them in morsel order for deterministic results), so group state
// allocates lazily, sized to the key domain each morsel actually touches.
func (e *exec) NewLocal() olap.Local {
	l := &local{e: e, dense: len(e.c.groups) == 1}
	if len(e.c.groups) == 0 {
		l.global = make([]acc, len(e.c.aggs))
	}
	return l
}

// ensureDense grows the flat accumulator array to cover key k. Growth
// doubles, so a morsel touching only small keys (Q1's 15 line numbers, a
// handful of warehouse ids) pays for a few dozen slots, not denseLen.
func (l *local) ensureDense(k int64, nagg int) {
	if int(k) < len(l.present) {
		return
	}
	n := 16
	for n <= int(k) {
		n *= 2
	}
	if n > denseLen {
		n = denseLen
	}
	flat := make([]acc, n*nagg)
	copy(flat, l.flat)
	present := make([]bool, n)
	copy(present, l.present)
	l.flat, l.present = flat, present
}

// Consume implements olap.Local with exec-pooled scratch — the path for
// callers that drive Locals directly, without an engine worker.
func (l *local) Consume(b olap.Block) {
	sc := l.e.getScratch()
	l.consume(b, sc)
	l.e.scratch.Put(sc)
}

// ConsumeScratch implements olap.ScratchConsumer: scratch comes from the
// claiming pool worker (or inline drainer), which owns it for its whole
// lifetime — so concurrent morsels never bounce scratch between cores
// and a warmed worker allocates nothing here.
func (l *local) ConsumeScratch(b olap.Block, ws *olap.Scratch) {
	sc, ok := ws.Kernel.(*scratchBufs)
	if !ok {
		sc = &scratchBufs{}
		ws.Kernel = sc
	}
	l.consume(b, sc)
}

// consume is the staged pipeline: each filter runs as a tight range loop
// producing/compacting a selection vector, the hash join probes the
// surviving rows (materializing payload vectors for full joins), and
// each aggregate then updates in its own pass — so per-row work never
// dispatches through interfaces or closures (the pushdown the builder
// promises).
func (l *local) consume(b olap.Block, sc *scratchBufs) {
	c := l.e.c
	sel := sc.sel[:0]
	if len(c.filters) == 0 {
		for i := 0; i < b.N; i++ {
			sel = append(sel, int32(i))
		}
	} else {
		for fi := range c.filters {
			f := &c.filters[fi]
			vec := b.Cols[f.slot]
			if fi == 0 {
				sel = filterAll(&f.ftest, vec, b.N, sel)
			} else {
				sel = filterSel(&f.ftest, vec, sel)
			}
		}
	}
	if len(sel) == 0 {
		sc.sel = sel // retain scratch capacity
		return
	}
	cols := b.Cols
	if len(c.joins) > 0 {
		// Assemble the full column view (fact scan + every payload vector)
		// up front: a later join may probe an earlier join's payload slot,
		// so all virtual slots must be addressable before the first probe.
		var pay [][]int64
		if c.npayTotal > 0 {
			pay = sc.payloadVecs(c.npayTotal, b.N)
			cols = append(sc.cols[:0], b.Cols...)
			cols = append(cols, pay...)
			sc.cols = cols[:0]
		}
		for ji := range c.joins {
			j := c.joins[ji]
			bld := &l.e.builds[ji]
			npay := len(j.payCols)
			out := sel[:0]
			if len(j.probeSlots) == 1 {
				vec := cols[j.probeSlots[0]]
				for _, i := range sel {
					v, ok := bld.m1[vec[i]]
					if !ok {
						continue
					}
					for k := 0; k < npay; k++ {
						pay[j.payBase+k][i] = v[k]
					}
					out = append(out, i)
				}
			} else {
				for _, i := range sel {
					var k jkey
					for d, s := range j.probeSlots {
						k[d] = cols[s][i]
					}
					v, ok := bld.mK[k]
					if !ok {
						continue
					}
					for pi := 0; pi < npay; pi++ {
						pay[j.payBase+pi][i] = v[pi]
					}
					out = append(out, i)
				}
			}
			sel = out
			if len(sel) == 0 {
				break
			}
		}
	}
	sc.sel = sel // retain scratch capacity
	if len(sel) == 0 {
		return
	}

	if l.global != nil {
		l.updateAccs(cols, sel, nil)
		return
	}
	if l.dense {
		l.updateDense(cols, sel)
		return
	}
	// Composite keys: resolve each selected row's accumulator row once,
	// then update aggregate-by-aggregate.
	rows := sc.rows[:0]
	for _, i := range sel {
		var k gkey
		for j, s := range c.groups {
			k[j] = cols[s][i]
		}
		rows = append(rows, l.lookupSpill(k))
	}
	sc.rows = rows
	l.updateAccs(cols, sel, rows)
}

// denseAt returns the j-th accumulator of key k: flat-array for keys the
// occupancy pass covered, spill map otherwise.
func (l *local) denseAt(k int64, j, nagg int) *acc {
	if uint64(k) < uint64(len(l.present)) {
		return &l.flat[int(k)*nagg+j]
	}
	return &l.lookupSpill(gkey{k})[j]
}

// updateDense is the single-key group path: accumulators live in one flat
// array indexed by key*naggs, out-of-range keys spill to the map. The
// aggregate kind dispatch is hoisted out of the row loops.
func (l *local) updateDense(cols [][]int64, sel []int32) {
	c := l.e.c
	nagg := len(c.aggs)
	kvec := cols[c.groups[0]]
	maxk := int64(-1)
	for _, i := range sel {
		if k := kvec[i]; uint64(k) < denseLen && k > maxk {
			maxk = k
		}
	}
	if maxk >= 0 {
		l.ensureDense(maxk, nagg)
	}
	for _, i := range sel {
		if k := kvec[i]; uint64(k) < uint64(len(l.present)) {
			l.present[k] = true
		}
	}
	for j := range c.aggs {
		a := &c.aggs[j]
		switch {
		case a.kind == aggCount:
			for _, i := range sel {
				l.denseAt(kvec[i], j, nagg).count++
			}
		case a.kind == aggCountIf:
			cvec := cols[a.condSlot]
			for _, i := range sel {
				// Touch the accumulator unconditionally: a spill-range
				// group whose rows all fail the condition must still
				// exist (and emit 0), exactly like a dense-range one.
				st := l.denseAt(kvec[i], j, nagg)
				if a.cond.match(cvec[i]) {
					st.count++
				}
			}
		case a.kind == aggSum || a.kind == aggAvg:
			vec := cols[a.slot]
			if a.decode {
				for _, i := range sel {
					st := l.denseAt(kvec[i], j, nagg)
					st.sum += columnar.DecodeFloat(vec[i])
					st.count++
				}
			} else {
				for _, i := range sel {
					st := l.denseAt(kvec[i], j, nagg)
					st.sum += float64(vec[i])
					st.count++
				}
			}
		default: // aggMin, aggMax
			vec := cols[a.slot]
			isMin := a.kind == aggMin
			for _, i := range sel {
				st := l.denseAt(kvec[i], j, nagg)
				v := float64(vec[i])
				if a.decode {
					v = columnar.DecodeFloat(vec[i])
				}
				if !st.seen || (isMin && v < st.ext) || (!isMin && v > st.ext) {
					st.ext = v
					st.seen = true
				}
			}
		}
	}
}

func (l *local) lookupSpill(k gkey) []acc {
	if l.groups == nil {
		l.groups = make(map[gkey][]acc)
	}
	accs := l.groups[k]
	if accs == nil {
		accs = make([]acc, len(l.e.c.aggs))
		l.groups[k] = accs
		l.spillKeys = append(l.spillKeys, k)
	}
	return accs
}

// updateAccs applies every aggregate over the selected rows. rows[ri] is
// the accumulator row for sel[ri]; nil rows means the ungrouped global
// accumulators. Each accumulator sees its updates in row order, so totals
// are bit-identical to a row-at-a-time evaluation.
func (l *local) updateAccs(cols [][]int64, sel []int32, rows [][]acc) {
	c := l.e.c
	for j := range c.aggs {
		a := &c.aggs[j]
		if rows == nil {
			l.updateGlobal(cols, sel, j)
			continue
		}
		if a.kind == aggCount {
			for ri := range sel {
				rows[ri][j].count++
			}
			continue
		}
		if a.kind == aggCountIf {
			cvec := cols[a.condSlot]
			for ri, i := range sel {
				if a.cond.match(cvec[i]) {
					rows[ri][j].count++
				}
			}
			continue
		}
		vec := cols[a.slot]
		for ri, i := range sel {
			st := &rows[ri][j]
			v := float64(vec[i])
			if a.decode {
				v = columnar.DecodeFloat(vec[i])
			}
			switch a.kind {
			case aggSum, aggAvg:
				st.sum += v
				st.count++
			case aggMin:
				if !st.seen || v < st.ext {
					st.ext = v
					st.seen = true
				}
			case aggMax:
				if !st.seen || v > st.ext {
					st.ext = v
					st.seen = true
				}
			}
		}
	}
}

// updateGlobal streams one ungrouped aggregate over the selection with
// register accumulation (the hot path for ScanReduce plans like Q6).
func (l *local) updateGlobal(cols [][]int64, sel []int32, j int) {
	a := &l.e.c.aggs[j]
	st := &l.global[j]
	switch a.kind {
	case aggCount:
		st.count += int64(len(sel))
	case aggCountIf:
		cvec := cols[a.condSlot]
		for _, i := range sel {
			if a.cond.match(cvec[i]) {
				st.count++
			}
		}
	case aggSum, aggAvg:
		vec := cols[a.slot]
		s := st.sum
		if a.decode {
			for _, i := range sel {
				s += columnar.DecodeFloat(vec[i])
			}
		} else {
			for _, i := range sel {
				s += float64(vec[i])
			}
		}
		st.sum = s
		st.count += int64(len(sel))
	case aggMin:
		vec := cols[a.slot]
		for _, i := range sel {
			v := float64(vec[i])
			if a.decode {
				v = columnar.DecodeFloat(vec[i])
			}
			if !st.seen || v < st.ext {
				st.ext = v
				st.seen = true
			}
		}
	case aggMax:
		vec := cols[a.slot]
		for _, i := range sel {
			v := float64(vec[i])
			if a.decode {
				v = columnar.DecodeFloat(vec[i])
			}
			if !st.seen || v > st.ext {
				st.ext = v
				st.seen = true
			}
		}
	}
}

// filterAll scans the whole block through one test, appending survivors.
func filterAll(t *ftest, vec []int64, n int, sel []int32) []int32 {
	switch t.kind {
	case fIntRange:
		lo, hi := t.ilo, t.ihi
		for i := 0; i < n; i++ {
			if w := vec[i]; w >= lo && w <= hi {
				sel = append(sel, int32(i))
			}
		}
	case fIntNe:
		v := t.ilo
		for i := 0; i < n; i++ {
			if vec[i] != v {
				sel = append(sel, int32(i))
			}
		}
	case fIntNotRange:
		lo, hi := t.ilo, t.ihi
		for i := 0; i < n; i++ {
			if w := vec[i]; w < lo || w > hi {
				sel = append(sel, int32(i))
			}
		}
	case fFloatRange:
		lo, hi := t.flo, t.fhi
		for i := 0; i < n; i++ {
			if d := columnar.DecodeFloat(vec[i]); d >= lo && d <= hi {
				sel = append(sel, int32(i))
			}
		}
	case fFloatNe:
		v := t.flo
		for i := 0; i < n; i++ {
			if columnar.DecodeFloat(vec[i]) != v {
				sel = append(sel, int32(i))
			}
		}
	case fFloatNotRange:
		lo, hi := t.flo, t.fhi
		for i := 0; i < n; i++ {
			if d := columnar.DecodeFloat(vec[i]); d < lo || d > hi {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}

// filterSel compacts an existing selection in place through one test.
func filterSel(t *ftest, vec []int64, sel []int32) []int32 {
	out := sel[:0]
	switch t.kind {
	case fIntRange:
		lo, hi := t.ilo, t.ihi
		for _, i := range sel {
			if w := vec[i]; w >= lo && w <= hi {
				out = append(out, i)
			}
		}
	case fIntNe:
		v := t.ilo
		for _, i := range sel {
			if vec[i] != v {
				out = append(out, i)
			}
		}
	case fIntNotRange:
		lo, hi := t.ilo, t.ihi
		for _, i := range sel {
			if w := vec[i]; w < lo || w > hi {
				out = append(out, i)
			}
		}
	case fFloatRange:
		lo, hi := t.flo, t.fhi
		for _, i := range sel {
			if d := columnar.DecodeFloat(vec[i]); d >= lo && d <= hi {
				out = append(out, i)
			}
		}
	case fFloatNe:
		v := t.flo
		for _, i := range sel {
			if columnar.DecodeFloat(vec[i]) != v {
				out = append(out, i)
			}
		}
	case fFloatNotRange:
		lo, hi := t.flo, t.fhi
		for _, i := range sel {
			if d := columnar.DecodeFloat(vec[i]); d < lo || d > hi {
				out = append(out, i)
			}
		}
	}
	return out
}

// Merge implements olap.Exec: the engine passes per-morsel partials in
// morsel order, so combining them in slice order yields bit-identical
// float totals across runs, worker counts and work stealing; grouped
// rows emit sorted ascending by key for a stable output order. Having
// predicates then drop rows, and an OrderBy re-sorts the survivors under
// the plan's total order (bounded-heap top-k when Limit is set) — both
// over fully merged, deterministic values, so ordered results stay
// bitwise reproducible too.
//
//htap:deterministic
func (e *exec) Merge(locals []olap.Local) olap.Result {
	c := e.c
	res := olap.Result{Cols: c.outCols}
	if len(c.groups) == 0 {
		total := make([]acc, len(c.aggs))
		for _, li := range locals {
			mergeAccs(total, li.(*local).global, c.aggs)
		}
		res.Rows = [][]float64{emitRow(c, gkey{}, total)}
		return finishRes(c, res)
	}
	total := make(map[gkey][]acc)
	var keys []gkey
	merge := func(k gkey, accs []acc) {
		t := total[k]
		if t == nil {
			t = make([]acc, len(c.aggs))
			total[k] = t
			keys = append(keys, k)
		}
		mergeAccs(t, accs, c.aggs)
	}
	for _, li := range locals {
		ll := li.(*local)
		if ll.flat != nil {
			nagg := len(c.aggs)
			for kv, on := range ll.present {
				if on {
					merge(gkey{int64(kv)}, ll.flat[kv*nagg:(kv+1)*nagg])
				}
			}
		}
		for _, k := range ll.spillKeys {
			merge(k, ll.groups[k])
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		for d := 0; d < len(c.groups); d++ {
			if keys[i][d] != keys[j][d] {
				return keys[i][d] < keys[j][d]
			}
		}
		return false
	})
	for _, k := range keys {
		res.Rows = append(res.Rows, emitRow(c, k, total[k]))
	}
	return finishRes(c, res)
}

// finishRes applies the post-aggregation stages shared by the staged and
// fused paths: Having over emitted rows, then the ordered (top-k) merge.
//
//htap:deterministic
func finishRes(c *Compiled, res olap.Result) olap.Result {
	if len(c.having) > 0 {
		kept := res.Rows[:0]
	rows:
		for _, row := range res.Rows {
			for i := range c.having {
				h := &c.having[i]
				if !h.fmatch(row[h.col]) {
					continue rows
				}
			}
			kept = append(kept, row)
		}
		res.Rows = kept
	}
	if c.ordered {
		res.SortedRows = int64(len(res.Rows))
		res.Rows = olap.SortRows(res.Rows, c.order, c.limit)
	}
	return res
}

//htap:deterministic
func mergeAccs(dst, src []acc, aggs []aggPlan) {
	for j := range aggs {
		switch aggs[j].kind {
		case aggCount, aggCountIf:
			dst[j].count += src[j].count
		case aggSum, aggAvg:
			dst[j].sum += src[j].sum
			dst[j].count += src[j].count
		case aggMin:
			if src[j].seen && (!dst[j].seen || src[j].ext < dst[j].ext) {
				dst[j].ext = src[j].ext
				dst[j].seen = true
			}
		case aggMax:
			if src[j].seen && (!dst[j].seen || src[j].ext > dst[j].ext) {
				dst[j].ext = src[j].ext
				dst[j].seen = true
			}
		}
	}
}

//htap:deterministic
func emitRow(c *Compiled, k gkey, accs []acc) []float64 {
	row := make([]float64, 0, len(c.groups)+len(c.aggs))
	for d := range c.groups {
		row = append(row, float64(k[d]))
	}
	for j, a := range c.aggs {
		st := accs[j]
		switch a.kind {
		case aggCount, aggCountIf:
			row = append(row, float64(st.count))
		case aggSum:
			row = append(row, st.sum)
		case aggAvg:
			if st.count == 0 {
				row = append(row, 0)
			} else {
				row = append(row, st.sum/float64(st.count))
			}
		case aggMin, aggMax:
			row = append(row, st.ext)
		}
	}
	return row
}
