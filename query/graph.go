package query

// Graph-shaped join surface. Where the deprecated Join/SemiJoin shims
// describe a single linear fact→dimension step, JoinGraph accepts an
// arbitrary n-way join graph: named relation nodes (Rel) composed with
// directed equi-join edges (JoinOn), where an edge's source columns may
// live on the fact table or on any other joined relation. The written
// edge order carries no semantic weight — Bind orders the joins itself
// (greedily by default, smallest indexed/filtered relation first,
// subject to connectivity; see order.go) and results are identical
// under every valid order, because each join is a lookup against a
// unique dimension key.
//
//	fact := query.Rel("orderline")
//	stock := query.Rel("stock")
//	supp := query.Rel("supplier")
//	p := query.Scan("orderline").
//		JoinGraph(
//			query.JoinOn(fact, stock, "ol_supply_w_id", "s_w_id", "ol_i_id", "s_i_id"),
//			query.JoinOn(stock, supp, "s_su_suppkey", "su_suppkey"),
//		).
//		GroupBy("su_nationkey").
//		Agg(query.Sum("ol_amount").As("revenue"))
//
// Payload projection is inferred: a relation column demanded downstream
// (GroupBy, aggregates, CountIf conditions, or a later edge's source
// side) is projected automatically; a relation with no demanded columns
// degenerates to an existence-only semi-join. Relation predicates
// (Relation.Filter) restrict the relation's build side, like JoinFilter.

import (
	"errors"
	"fmt"
)

// ErrDisconnectedJoinGraph reports a join graph with a relation that no
// chain of edges connects back to the fact table — including cycles of
// relations that only reference each other. Surfaced by JoinGraph
// eagerly (pure graph shape) and by Bind (after schema resolution), and
// retrievable early via Plan.Err.
var ErrDisconnectedJoinGraph = errors.New("query: join graph is disconnected from the fact table")

// ErrAmbiguousColumn reports a column name reachable from two relations
// of the plan (or from a relation and the fact table), so a downstream
// reference to it cannot be resolved. Qualify the plan by renaming the
// column in the schema or restructuring the graph. Surfaced at Bind.
var ErrAmbiguousColumn = errors.New("query: ambiguous column")

// maxJoins bounds the number of joined relations in one plan.
const maxJoins = 8

// Relation is a named node of a join graph: a table plus optional
// build-side predicates. The same *Relation value is shared across the
// edges that mention it; two Rel calls with the same name denote the
// same underlying table (self-joins are not supported).
type Relation struct {
	name  string
	preds []Pred
}

// Rel names a relation for composing JoinOn edges.
func Rel(name string) *Relation { return &Relation{name: name} }

// Name returns the relation's table name.
func (r *Relation) Name() string { return r.name }

// Filter appends build-side predicates: only relation rows passing all
// of them participate in the join (the graph form of JoinFilter). For
// the fact relation the predicates push into the scan instead, exactly
// like Plan.Filter.
func (r *Relation) Filter(preds ...Pred) *Relation {
	r.preds = append(r.preds, preds...)
	return r
}

// JoinEdge is one equi-join edge of a join graph; build with JoinOn and
// install with Plan.JoinGraph.
type JoinEdge struct {
	from, to *Relation
	fromCols []string
	toCols   []string
	err      error
}

// JoinOn builds a directed equi-join edge: rows of to are looked up by
// matching its toCols against from's fromCols, listed as alternating
// from-column, to-column pairs:
//
//	JoinOn(stock, supplier, "s_su_suppkey", "su_suppkey")
//
// from may be the fact relation or any other joined relation (whose
// matched columns are then projected automatically). to must not be the
// fact table — the fact side is always the probe side. All edges
// pointing at one relation merge into a single composite join key, so a
// relation keyed partly by fact columns and partly by another
// relation's columns takes two edges.
func JoinOn(from, to *Relation, on ...string) JoinEdge {
	e := JoinEdge{from: from, to: to}
	switch {
	case from == nil || to == nil:
		e.err = fmt.Errorf("query: JoinOn with nil relation")
	case len(on) == 0 || len(on)%2 != 0:
		e.err = fmt.Errorf("query: JoinOn(%s, %s) takes alternating from/to column pairs, got %d names",
			from.name, to.name, len(on))
	case from.name == to.name:
		e.err = fmt.Errorf("query: JoinOn(%s, %s) joins a relation to itself; self-joins are not supported",
			from.name, to.name)
	case from.name == "" || to.name == "":
		e.err = fmt.Errorf("query: JoinOn with empty relation name")
	}
	if e.err != nil {
		return e
	}
	for i := 0; i < len(on); i += 2 {
		if on[i] == "" || on[i+1] == "" {
			e.err = fmt.Errorf("query: JoinOn(%s, %s) with empty key column name", from.name, to.name)
			return e
		}
		e.fromCols = append(e.fromCols, on[i])
		e.toCols = append(e.toCols, on[i+1])
	}
	return e
}

// JoinGraph installs the plan's join graph. Edges may arrive in any
// order; Bind chooses the execution order (see OrderJoins). The graph's
// shape is validated eagerly — malformed edges, a fact-targeting edge,
// or a relation not connected to the fact table fail the plan here, so
// Plan.Err reports ErrDisconnectedJoinGraph before Bind runs. Cannot be
// combined with the deprecated Join/SemiJoin shims.
func (p *Plan) JoinGraph(edges ...JoinEdge) *Plan {
	if len(p.joins) > 0 {
		p.fail(fmt.Errorf("query: JoinGraph cannot be mixed with Join/SemiJoin"))
		return p
	}
	if len(p.graph) > 0 {
		p.fail(fmt.Errorf("query: JoinGraph called twice"))
		return p
	}
	if len(edges) == 0 {
		p.fail(fmt.Errorf("query: JoinGraph with no edges"))
		return p
	}
	for _, e := range edges {
		if e.err != nil {
			p.fail(e.err)
			return p
		}
		if e.to.name == p.table {
			p.fail(fmt.Errorf("query: JoinOn(%s, %s): the fact table cannot be a join target", e.from.name, e.to.name))
			return p
		}
	}
	p.graph = append(p.graph, edges...)
	if err := checkConnected(p.table, p.graph); err != nil {
		p.fail(err)
	}
	return p
}

// checkConnected verifies every relation of the graph is placeable: a
// relation can join once all its in-edge sources are placed (they
// provide its probe columns), starting from the fact table. Anything
// left over — an island, a cycle, or a source relation that is never
// itself joined — is disconnected.
func checkConnected(fact string, edges []JoinEdge) error {
	placed := map[string]bool{fact: true}
	pendingIn := map[string]int{} // relation → unplaced in-edge sources
	var rels []string
	note := func(name string) {
		if _, ok := pendingIn[name]; !ok && name != fact {
			pendingIn[name] = 0
			rels = append(rels, name)
		}
	}
	for _, e := range edges {
		note(e.from.name)
		note(e.to.name)
	}
	for progress := true; progress; {
		progress = false
		for _, r := range rels {
			if placed[r] {
				continue
			}
			ready := true
			for _, e := range edges {
				if e.to.name == r && !placed[e.from.name] {
					ready = false
					break
				}
			}
			// A relation with no in-edges at all is only a source; it never
			// joins, so it can never provide its columns.
			hasIn := false
			for _, e := range edges {
				if e.to.name == r {
					hasIn = true
					break
				}
			}
			if ready && hasIn {
				placed[r] = true
				progress = true
			}
		}
	}
	for _, r := range rels {
		if !placed[r] {
			return fmt.Errorf("%w: relation %q has no join path from fact table", ErrDisconnectedJoinGraph, r)
		}
	}
	if len(rels) > maxJoins {
		return fmt.Errorf("query: join graph has %d relations, max %d", len(rels), maxJoins)
	}
	return nil
}

// JoinOrder selects how Bind orders a plan's joins.
type JoinOrder int8

const (
	// OrderGreedy (the default) places the smallest placeable relation
	// first: exact index counts for Eq-filtered relations, raw row counts
	// otherwise, with no statistics kept anywhere (see order.go).
	OrderGreedy JoinOrder = iota
	// OrderWritten places relations in first-mention order, subject to
	// connectivity — the order the query author wrote. Results are
	// identical to OrderGreedy; only the work differs.
	OrderWritten
)

// OrderJoins overrides the plan's join ordering mode (OrderGreedy by
// default). Exposed chiefly for the greedy-vs-written experiment sweep
// and for pinning plans in benchmarks.
func (p *Plan) OrderJoins(m JoinOrder) *Plan {
	p.joinOrder = m
	return p
}
