package query

import (
	"errors"
	"reflect"
	"testing"

	"elastichtap/internal/columnar"
	"elastichtap/internal/oltp"
)

// graphFixture loads a three-table chain for dimension-hop joins:
//
//	gfact(day, pid, amount)        — the fact
//	gprod(pid, mid, grade)         — joined on pid, provides mid
//	gmaker(mid, region, grade)     — joined on gprod's mid payload
//
// gprod and gmaker deliberately share the "grade" column name so
// downstream demand for it is ambiguous.
func graphFixture(t *testing.T) (Catalog, *oltp.Engine) {
	t.Helper()
	e := oltp.NewEngine()
	fact := e.CreateTable(columnar.Schema{Name: "gfact", Columns: []columnar.ColumnDef{
		{Name: "day", Type: columnar.Int64},
		{Name: "pid", Type: columnar.Int64},
		{Name: "amount", Type: columnar.Float64},
	}}, 16, false)
	ft := fact.Table()
	ft.AppendRows([][]int64{
		ft.EncodeRow(1, 1, 10.0),
		ft.EncodeRow(1, 2, 20.0),
		ft.EncodeRow(2, 1, 30.0),
		ft.EncodeRow(2, 2, 40.0),
		ft.EncodeRow(3, 3, 50.0),
	}, 0)

	prod := e.CreateTable(columnar.Schema{Name: "gprod", Columns: []columnar.ColumnDef{
		{Name: "pid", Type: columnar.Int64},
		{Name: "mid", Type: columnar.Int64},
		{Name: "grade", Type: columnar.Int64},
	}}, 4, false)
	pt := prod.Table()
	pt.AppendRows([][]int64{
		pt.EncodeRow(1, 100, 7),
		pt.EncodeRow(2, 200, 8),
		pt.EncodeRow(3, 100, 9),
	}, 0)

	maker := e.CreateTable(columnar.Schema{Name: "gmaker", Columns: []columnar.ColumnDef{
		{Name: "mid", Type: columnar.Int64},
		{Name: "region", Type: columnar.Int64},
		{Name: "grade", Type: columnar.Int64},
	}}, 4, false)
	mt := maker.Table()
	mt.AppendRows([][]int64{
		mt.EncodeRow(100, 1, 1),
		mt.EncodeRow(200, 2, 2),
	}, 0)
	return testCatalog{e}, e
}

// TestJoinGraphDimensionHop drives a fact → gprod → gmaker chain where
// the second join's probe key comes entirely from the first join's
// payload, grouping by a column two hops away, and checks both join
// ordering modes produce the exact same rows.
func TestJoinGraphDimensionHop(t *testing.T) {
	cat, e := graphFixture(t)
	build := func() *Plan {
		return Scan("gfact").
			JoinGraph(
				JoinOn(Rel("gfact"), Rel("gprod"), "pid", "pid"),
				JoinOn(Rel("gprod"), Rel("gmaker"), "mid", "mid"),
			).
			GroupBy("region").
			Agg(Sum("amount").As("rev"), Count())
	}
	q, err := build().Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	wantCols := []string{"region", "rev", "count"}
	if !reflect.DeepEqual(res.Cols, wantCols) {
		t.Fatalf("cols = %v, want %v", res.Cols, wantCols)
	}
	// pid 1 and 3 → mid 100 → region 1; pid 2 → mid 200 → region 2.
	want := [][]float64{
		{1, 90, 3},
		{2, 60, 2},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}

	written, err := build().OrderJoins(OrderWritten).Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Columns(), written.Columns()) {
		t.Fatalf("scan columns differ across orders: %v vs %v", q.Columns(), written.Columns())
	}
	if got := run(t, e, written); !reflect.DeepEqual(got, res) {
		t.Fatalf("written order diverges: %+v vs %+v", got, res)
	}
}

// TestJoinGraphFilteredRelation restricts the far end of the chain with
// a relation predicate; only rows reaching a surviving maker remain.
func TestJoinGraphFilteredRelation(t *testing.T) {
	cat, e := graphFixture(t)
	q, err := Scan("gfact").
		JoinGraph(
			JoinOn(Rel("gfact"), Rel("gprod"), "pid", "pid"),
			JoinOn(Rel("gprod"), Rel("gmaker").Filter(Eq("grade", 1)), "mid", "mid"),
		).
		GroupBy("region").
		Agg(Sum("amount").As("rev"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{1, 90, 3}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

// TestJoinGraphDisconnectedIsland covers the eager shape check: an edge
// set that never touches the fact table fails at JoinGraph time, before
// Bind, with the typed error.
func TestJoinGraphDisconnectedIsland(t *testing.T) {
	cat, _ := newFixture(t)
	p := Scan("sales").
		JoinGraph(JoinOn(Rel("product"), Rel("daily"), "pid", "pid")).
		Agg(Count())
	if err := p.Err(); !errors.Is(err, ErrDisconnectedJoinGraph) {
		t.Fatalf("Plan.Err() = %v, want ErrDisconnectedJoinGraph", err)
	}
	if _, err := p.Bind(cat); !errors.Is(err, ErrDisconnectedJoinGraph) {
		t.Fatalf("Bind = %v, want ErrDisconnectedJoinGraph", err)
	}
}

// TestJoinGraphDisconnectedCycle: relations that only reference each
// other in a cycle are unplaceable even though every node has in-edges.
func TestJoinGraphDisconnectedCycle(t *testing.T) {
	cat, _ := graphFixture(t)
	a, b := Rel("gprod"), Rel("gmaker")
	p := Scan("gfact").
		JoinGraph(
			JoinOn(a, b, "mid", "mid"),
			JoinOn(b, a, "grade", "grade"),
		).
		Agg(Count())
	if err := p.Err(); !errors.Is(err, ErrDisconnectedJoinGraph) {
		t.Fatalf("Plan.Err() = %v, want ErrDisconnectedJoinGraph", err)
	}
	if _, err := p.Bind(cat); !errors.Is(err, ErrDisconnectedJoinGraph) {
		t.Fatalf("Bind = %v, want ErrDisconnectedJoinGraph", err)
	}
}

// TestJoinGraphAmbiguousFactColumn: a group column present on both the
// fact table and a joined relation cannot be resolved. The ambiguity
// needs schemas, so it surfaces at Bind, not eagerly.
func TestJoinGraphAmbiguousFactColumn(t *testing.T) {
	cat, _ := newFixture(t)
	p := Scan("sales").
		JoinGraph(JoinOn(Rel("sales"), Rel("daily"), "day", "day", "pid", "pid")).
		GroupBy("pid").
		Agg(Count())
	if err := p.Err(); err != nil {
		t.Fatalf("eager Plan.Err() = %v, want nil (ambiguity is schema-dependent)", err)
	}
	if _, err := p.Bind(cat); !errors.Is(err, ErrAmbiguousColumn) {
		t.Fatalf("Bind = %v, want ErrAmbiguousColumn", err)
	}
}

// TestJoinGraphAmbiguousRelationColumn: a demanded column owned by two
// joined relations is equally unresolvable.
func TestJoinGraphAmbiguousRelationColumn(t *testing.T) {
	cat, _ := graphFixture(t)
	p := Scan("gfact").
		JoinGraph(
			JoinOn(Rel("gfact"), Rel("gprod"), "pid", "pid"),
			JoinOn(Rel("gprod"), Rel("gmaker"), "mid", "mid"),
		).
		GroupBy("grade").
		Agg(Count())
	if _, err := p.Bind(cat); !errors.Is(err, ErrAmbiguousColumn) {
		t.Fatalf("Bind = %v, want ErrAmbiguousColumn", err)
	}
}

// TestIndexSkipMatchesFullScan pins the morsel-skip fast path: an Eq
// filter over an indexed, never-updated fact column lets whole morsels
// be skipped via the bitmap index, and the result must be bitwise
// identical to the full scan with skipping disabled. k1 = 99999 matches
// exactly one of the 128Ki bench rows, so most morsels skip.
func TestIndexSkipMatchesFullScan(t *testing.T) {
	cat, e := newBenchCatalog(t)
	q, err := Scan("bfact").
		Filter(Eq("k1", 99999)).
		GroupBy("gid").
		Agg(Sum("amount").As("rev"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	skipped := run(t, e, q)
	if len(skipped.Rows) == 0 {
		t.Fatal("no rows matched; the test exercises nothing")
	}
	disableIndexSkip.Store(true)
	defer disableIndexSkip.Store(false)
	full := run(t, e, q)
	if !reflect.DeepEqual(skipped, full) {
		t.Fatalf("index-skip result diverges from full scan:\nskip: %+v\nfull: %+v", skipped, full)
	}
}
