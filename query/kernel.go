package query

// Fused single-pass kernels. Where the staged path in compile.go runs
// each operator as its own vectorized pass over a materialized selection
// vector (filter → selection, probe → payload vectors, one pass per
// aggregate), the fused path compiles the whole plan into one loop over
// the block: every row is filtered, probed, group-resolved and
// accumulated before the next row is touched, with no intermediate
// selection or payload materialization at all.
//
// The split between Bind and Prepare matters for prepared statements:
// WithArgs stamping may change a predicate's evaluation kind (a range
// can become fNever, an Eq can become a dictionary code), so everything
// value-dependent is specialized at Prepare time, while Bind fixes only
// the value-independent *shape* — which accumulators exist (deduplicated:
// Sum/Avg over the same column share one sum+count, Count piggybacks on
// any sum), and how output columns map onto them.
//
// Results are bitwise identical to the staged path: each (group,
// accumulator) pair sees its float updates in ascending row order in
// both, and the morsel-ordered merge is shared, so DeepEqual-exactness
// against the hand-coded oracles holds under stealing and resizes.

import (
	"log"
	"sync/atomic"

	"elastichtap/internal/columnar"
	"elastichtap/internal/index"
	"elastichtap/internal/olap"
)

// disableFusion is a test knob forcing the staged fallback path so its
// exactness stays covered even while fusion handles every shape.
var disableFusion atomic.Bool

// disableIndexSkip is a test knob forcing every morsel through the row
// loop, so index-skipped executions can be checked bit-identical against
// unskipped ones.
var disableIndexSkip atomic.Bool

// fAccKind is a physical accumulator kind after deduplication.
type fAccKind uint8

const (
	facSum     fAccKind = iota // sum+count; feeds Sum, Avg and Count emits
	facCount                   // bare row counter (no sum acc to piggyback on)
	facCountIf                 // conditional counter (cond read at Prepare)
	facMin
	facMax
)

// accSpec is one deduplicated accumulator in the kernel's group state.
type accSpec struct {
	kind    fAccKind
	slot    int // column slot read (fact scan or payload); -1 for facCount
	decode  bool
	aggIdx  int  // for facCountIf: index into c.aggs holding the condition
	noCount bool // facSum past the first: count lives on the shared carrier
}

// emitSpec maps one output aggregate column onto its accumulator. cnt is
// the accumulator whose count field feeds Avg and Count emits — always
// the first sum accumulator, since every fused accumulator sees the same
// selected rows and only the first pays for counting them.
type emitSpec struct {
	kind aggKind
	acc  int
	cnt  int
}

// fuseShape is the Bind-time fusion decision: whether the plan fuses,
// and the value-independent accumulator/emit layout shared by every
// stamping of a prepared statement.
type fuseShape struct {
	ok     bool
	reason string
	accs   []accSpec
	emits  []emitSpec
}

// maxFusedFilters and maxFusedAccs bound the fused compiler; plans past
// them fall back to the staged path (selected automatically, logged).
const (
	maxFusedFilters = 8
	maxFusedAccs    = 32
)

// buildFuseShape decides fusibility and lays out deduplicated
// accumulators. Sum/Avg over the same (slot, decode) share one
// accumulator — its count field counts selected rows, exactly what
// Count emits — so Q1's five output aggregates run on two physical
// accumulators, matching the hand-coded kernel.
func buildFuseShape(c *Compiled) *fuseShape {
	s := &fuseShape{ok: true}
	if len(c.filters) > maxFusedFilters {
		s.ok, s.reason = false, "more than 8 filters"
		return s
	}
	type dk struct {
		kind   fAccKind
		slot   int
		decode bool
	}
	idx := map[dk]int{}
	// countAcc is the shared selected-row counter: the first sum
	// accumulator (it increments count unconditionally per row; later
	// sums skip counting — every accumulator sees the same rows).
	countAcc := -1
	addAcc := func(spec accSpec, dedup bool) int {
		if dedup {
			k := dk{spec.kind, spec.slot, spec.decode}
			if i, ok := idx[k]; ok {
				return i
			}
			idx[k] = len(s.accs)
		}
		if spec.kind == facSum {
			if countAcc < 0 {
				countAcc = len(s.accs)
			} else {
				spec.noCount = true
			}
		}
		s.accs = append(s.accs, spec)
		return len(s.accs) - 1
	}
	for j := range c.aggs {
		a := &c.aggs[j]
		switch a.kind {
		case aggSum, aggAvg:
			i := addAcc(accSpec{kind: facSum, slot: a.slot, decode: a.decode}, true)
			s.emits = append(s.emits, emitSpec{a.kind, i, countAcc})
		case aggCount:
			s.emits = append(s.emits, emitSpec{aggCount, -1, -1}) // resolved below
		case aggCountIf:
			i := addAcc(accSpec{kind: facCountIf, slot: a.condSlot, aggIdx: j}, false)
			s.emits = append(s.emits, emitSpec{aggCountIf, i, i})
		case aggMin:
			i := addAcc(accSpec{kind: facMin, slot: a.slot, decode: a.decode}, true)
			s.emits = append(s.emits, emitSpec{aggMin, i, i})
		case aggMax:
			i := addAcc(accSpec{kind: facMax, slot: a.slot, decode: a.decode}, true)
			s.emits = append(s.emits, emitSpec{aggMax, i, i})
		}
	}
	// Count emits read the shared counter; only a plan with no sums pays
	// for a dedicated one.
	for ei := range s.emits {
		if s.emits[ei].kind == aggCount && s.emits[ei].acc < 0 {
			if countAcc < 0 {
				countAcc = addAcc(accSpec{kind: facCount, slot: -1}, true)
			}
			s.emits[ei].acc, s.emits[ei].cnt = countAcc, countAcc
		}
	}
	if len(s.accs) > maxFusedAccs {
		s.ok, s.reason = false, "more than 32 accumulators"
	}
	return s
}

// logFallback announces a staged-path selection once per Bind.
func logFallback(name, reason string) {
	log.Printf("query: %s: fused kernel unavailable (%s); using staged fallback", name, reason)
}

// Fused reports whether this plan compiles to the fused single-pass
// kernel; when it does not, reason says why the staged fallback runs.
func (c *Compiled) Fused() (bool, string) {
	if c.fuse == nil {
		return false, "not bound"
	}
	return c.fuse.ok, c.fuse.reason
}

// --- Prepare-time specialization ---

// aggOp is one specialized per-row accumulator update. The op code is
// fixed per (aggregate kind, column type, condition shape) at Prepare
// time, so the row loop dispatches through a dense predictable switch —
// no per-row interface calls, no per-row kind re-derivation.
type aggOp struct {
	op     uint8
	pay    bool  // read the probed payload row instead of a block column
	slot   int32 // block slot, or payload index when pay
	acc    int32
	lo, hi int64  // opCountIfRange bounds
	test   *ftest // opCountIfGen condition
}

const (
	opSumInt uint8 = iota
	opSumFloat
	opSumIntNC   // sum only: the first sum accumulator carries the count
	opSumFloatNC //
	opCount
	opCountIfRange
	opCountIfGen
	opMinInt
	opMinFloat
	opMaxInt
	opMaxFloat
)

// frange is a specialized inclusive int64-word range filter — the
// canonical form of every ordered int predicate and every dictionary
// equality, merged per slot so stacked ranges on one column test once.
type frange struct {
	slot   int
	lo, hi int64
}

// ffrange is the float64 analogue (decode then compare).
type ffrange struct {
	slot   int
	lo, hi float64
}

const (
	jNone  uint8 = iota
	jOne         // one join, single-column key
	jMany        // one join, composite key
	jMulti       // two or more joins, probed in execution order
)

const (
	gNone uint8 = iota
	gDense
	gSpill
)

// gsrc locates one group-key column: a fact block slot or a probed
// payload index.
type gsrc struct {
	pay bool
	idx int
}

// fexec is a fully specialized fused kernel, instantiated per execution
// at Prepare time from the statement's current (stamped) predicate
// values. It implements olap.Exec.
type fexec struct {
	c  *Compiled
	sh *fuseShape

	nacc   int
	nscan  int
	ngroup int

	// filters, classified from stamped kinds
	never   bool
	ranges  []frange
	franges []ffrange
	gens    []filter

	// join
	jkind      uint8
	probeSlot  int   // jOne
	probeSlots []int // jMany
	nkey       int
	npay       int
	j1         joinTab1
	jK         joinTabK
	// jMulti: one fjoin per compiled join, execution order; payload
	// columns land in a flat per-local buffer of npayTotal words.
	joins     []fjoin
	npayTotal int

	// skips are the morsel-skip probes (see buildSkips).
	skips []fskip

	// grouping
	gkind uint8
	gslot int  // gDense: block slot or payload index
	gpay  bool // gDense: key comes from the payload
	gsrc  []gsrc

	ops  []aggOp
	spec uint8 // monomorphic fast-loop selection (kernel_fast.go)
}

// srcOf splits a logical slot into (index, isPayload): payload columns
// occupy virtual slots after the fact scan list.
func (e *fexec) srcOf(slot int) (int, bool) {
	if slot >= e.nscan {
		return slot - e.nscan, true
	}
	return slot, false
}

// addRange appends an int range filter, intersecting with an existing
// range on the same slot so stacked bounds (Ge+Lt) test once per row.
func (e *fexec) addRange(slot int, lo, hi int64) {
	for i := range e.ranges {
		if e.ranges[i].slot == slot {
			if lo > e.ranges[i].lo {
				e.ranges[i].lo = lo
			}
			if hi < e.ranges[i].hi {
				e.ranges[i].hi = hi
			}
			if e.ranges[i].lo > e.ranges[i].hi {
				e.never = true
			}
			return
		}
	}
	e.ranges = append(e.ranges, frange{slot: slot, lo: lo, hi: hi})
}

// prepareFused builds the specialized kernel for one execution: filters
// classify into range/generic forms from their stamped kinds, CountIf
// conditions specialize, group keys resolve their sources, and the join
// build side loads into an open-addressed table (cheaper to build and
// probe than a Go map, and sized by matching rows, not dimension rows).
func (c *Compiled) prepareFused() (olap.Exec, int64) {
	e := &fexec{
		c: c, sh: c.fuse,
		nacc:   len(c.fuse.accs),
		nscan:  len(c.cols),
		ngroup: len(c.groups),
	}
	for i := range c.filters {
		f := &c.filters[i]
		switch f.kind {
		case fIntRange:
			e.addRange(f.slot, f.ilo, f.ihi)
		case fFloatRange:
			e.franges = append(e.franges, ffrange{slot: f.slot, lo: f.flo, hi: f.fhi})
		case fNever:
			e.never = true
		default:
			e.gens = append(e.gens, *f)
		}
	}
	switch {
	case e.ngroup == 0:
		e.gkind = gNone
	case e.ngroup == 1:
		e.gkind = gDense
		e.gslot, e.gpay = e.srcOf(c.groups[0])
	default:
		e.gkind = gSpill
		for _, s := range c.groups {
			idx, pay := e.srcOf(s)
			e.gsrc = append(e.gsrc, gsrc{pay: pay, idx: idx})
		}
	}
	for ai := range c.fuse.accs {
		as := &c.fuse.accs[ai]
		op := aggOp{acc: int32(ai)}
		slot := as.slot
		switch as.kind {
		case facSum:
			switch {
			case as.decode && as.noCount:
				op.op = opSumFloatNC
			case as.decode:
				op.op = opSumFloat
			case as.noCount:
				op.op = opSumIntNC
			default:
				op.op = opSumInt
			}
		case facCount:
			op.op = opCount
			slot = 0 // fetched, ignored
		case facCountIf:
			cond := c.aggs[as.aggIdx].cond
			if cond.kind == fIntRange {
				op.op, op.lo, op.hi = opCountIfRange, cond.ilo, cond.ihi
			} else {
				op.op, op.test = opCountIfGen, cond
			}
		case facMin:
			if as.decode {
				op.op = opMinFloat
			} else {
				op.op = opMinInt
			}
		case facMax:
			if as.decode {
				op.op = opMaxFloat
			} else {
				op.op = opMaxInt
			}
		}
		if idx, pay := e.srcOf(slot); pay {
			op.pay, op.slot = true, int32(idx)
		} else {
			op.slot = int32(idx)
		}
		e.ops = append(e.ops, op)
	}
	var buildBytes int64
	switch len(c.joins) {
	case 0:
	case 1:
		j := c.joins[0]
		e.npay = len(j.payCols)
		e.npayTotal = e.npay
		var scanned int64
		if len(j.keyCols) == 1 {
			e.jkind = jOne
			e.probeSlot = j.probeSlots[0]
			scanned = e.j1.build(j)
		} else {
			e.jkind = jMany
			e.probeSlots = j.probeSlots
			e.nkey = len(j.keyCols)
			scanned = e.jK.build(j)
		}
		buildBytes = scanned * int64(j.words) * columnar.WordBytes
	default:
		e.jkind = jMulti
		e.npayTotal = c.npayTotal
		for _, j := range c.joins {
			fj := fjoin{
				one:        len(j.keyCols) == 1,
				probeSlots: j.probeSlots,
				nkey:       len(j.keyCols),
				npay:       len(j.payCols),
				payBase:    j.payBase,
			}
			var scanned int64
			if fj.one {
				scanned = fj.j1.build(j)
			} else {
				scanned = fj.jK.build(j)
			}
			buildBytes += scanned * int64(j.words) * columnar.WordBytes
			e.joins = append(e.joins, fj)
		}
	}
	e.buildSkips()
	e.spec = e.pickSpec()
	return e, buildBytes
}

// fjoin is one of a jMulti kernel's joins: its probe sources (fact scan
// slots or earlier joins' payload slots), its build table, and where its
// payload lands in the per-local payload buffer.
type fjoin struct {
	one        bool  // single-column key: probe j1, else jK
	probeSlots []int // global slots of the key columns
	nkey       int
	npay       int
	payBase    int // first index into the payload buffer
	j1         joinTab1
	jK         joinTabK
}

// fskip is one morsel-skip probe: an Eq filter over a never-updated,
// indexed fact column. A block lying wholly under the index watermark
// whose posting set has no row inside the block's range cannot produce a
// match, so Consume returns without touching any column data. Updated-in-
// place or post-refresh rows are never skipped — blocks past the
// watermark always scan.
type fskip struct {
	post index.Postings
	wm   int64
}

// buildSkips collects the skip probes from the stamped filters. Runs per
// Prepare, so parameterized Eq filters skip just like literal ones.
func (e *fexec) buildSkips() {
	h := e.c.factH
	if h == nil || h.Sec == nil {
		return
	}
	t := h.Table()
	for i := range e.c.filters {
		f := &e.c.filters[i]
		if f.kind != fIntRange || f.ilo != f.ihi || f.slot >= e.nscan {
			continue
		}
		col := e.c.cols[f.slot]
		if t.ColumnUpdateCount(col) != 0 {
			continue
		}
		post, wm, ok := h.Sec.Lookup(col, f.ilo)
		if !ok {
			continue
		}
		e.skips = append(e.skips, fskip{post: post, wm: wm})
	}
}
