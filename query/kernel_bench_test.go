package query

import (
	"context"
	"testing"

	"elastichtap/internal/columnar"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
)

// Micro-benchmarks for the fused kernel stages in isolation — filter
// only, filter+probe, filter+probe+aggregate — across the column shapes
// the specializer distinguishes (int64 ranges, float64 ranges, dict-coded
// equality). Each fixes one plan shape so a regression in a single loop
// (or a spec that silently stops matching its shape) shows up as a
// per-row cost change in that benchmark alone, instead of being averaged
// into the end-to-end CH query numbers in the root bench suite.

const benchRows = 1 << 17

// newBenchCatalog loads a synthetic fact table and two dimension tables
// sized so every kernel stage has work: ~20% of fact rows survive the
// semi-join, the composite join matches every row, and the dense group
// domain stays well inside the flat fast path.
func newBenchCatalog(tb testing.TB) (Catalog, *oltp.Engine) {
	tb.Helper()
	e := oltp.NewEngine()
	fact := e.CreateTable(columnar.Schema{Name: "bfact", Columns: []columnar.ColumnDef{
		{Name: "k1", Type: columnar.Int64},
		{Name: "jk", Type: columnar.Int64},
		{Name: "k2", Type: columnar.Int64},
		{Name: "gid", Type: columnar.Int64},
		{Name: "qty", Type: columnar.Int64},
		{Name: "amount", Type: columnar.Float64},
		{Name: "tag", Type: columnar.String},
	}}, 16, false)
	ft := fact.Table()
	tags := []string{"web", "store", "phone"}
	rows := make([][]int64, 0, benchRows)
	for i := 0; i < benchRows; i++ {
		rows = append(rows, ft.EncodeRow(
			int64(i%100000),    // k1: semi-join key, sparse dim coverage
			int64(i%100),       // jk: composite join key 1, full coverage
			int64(i%50),        // k2: composite join key 2, full coverage
			int64(i%64),        // gid: dense group domain
			int64(i%50+1),      // qty
			float64(i%997)/7.0, // amount
			tags[i%len(tags)],  // tag: dict-coded
		))
	}
	ft.AppendRows(rows, 0)

	// dim1 covers every fifth k1 value, so the semi-join keeps ~20%.
	dim1 := e.CreateTable(columnar.Schema{Name: "bdim1", Columns: []columnar.ColumnDef{
		{Name: "id", Type: columnar.Int64},
		{Name: "w", Type: columnar.Float64},
	}}, 16, false)
	dt := dim1.Table()
	drows := make([][]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		drows = append(drows, dt.EncodeRow(int64(i*5), float64(i%90)+1))
	}
	dt.AppendRows(drows, 0)

	// dimc covers the full (jk, k2) cross product with an integer payload.
	dimc := e.CreateTable(columnar.Schema{Name: "bdimc", Columns: []columnar.ColumnDef{
		{Name: "jk", Type: columnar.Int64},
		{Name: "k2", Type: columnar.Int64},
		{Name: "pay", Type: columnar.Int64},
	}}, 16, false)
	ct := dimc.Table()
	crows := make([][]int64, 0, 100*50)
	for a := 0; a < 100; a++ {
		for c := 0; c < 50; c++ {
			crows = append(crows, ct.EncodeRow(int64(a), int64(c), int64((a+c)%32)))
		}
	}
	ct.AppendRows(crows, 0)
	return testCatalog{e}, e
}

// runKernelBench binds the plan once, then measures end-to-end morsel
// execution on a single worker so per-row kernel cost is the only
// variable.
func runKernelBench(b *testing.B, p *Plan, touched int64) {
	b.Helper()
	cat, e := newBenchCatalog(b)
	q, err := p.Bind(cat)
	if err != nil {
		b.Fatal(err)
	}
	tab := e.Table(q.FactTable()).Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "bench",
	}}}
	eng := olap.NewEngine(1)
	eng.SetPlacement(topology.Placement{PerSocket: []int{1}})
	defer eng.Close()
	b.SetBytes(benchRows * touched * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.ExecuteContext(context.Background(), q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelFilterCountInt64: two int64 range brackets feeding a
// bare count — the branchless integer filter loop with no probe or
// per-group work.
func BenchmarkKernelFilterCountInt64(b *testing.B) {
	runKernelBench(b, Scan("bfact").
		Filter(Between("qty", 10, 40), Ge("gid", 8)).
		Agg(Count()), 2)
}

// BenchmarkKernelFilterCountFloat64: a float64 range bracket — the
// decode-compare filter loop (floats never take the branchless raw-word
// path).
func BenchmarkKernelFilterCountFloat64(b *testing.B) {
	runKernelBench(b, Scan("bfact").
		Filter(Between("amount", 20.0, 100.0)).
		Agg(Count()), 1)
}

// BenchmarkKernelFilterCountDict: dict-coded string equality — the
// predicate resolves to a code compare at bind time.
func BenchmarkKernelFilterCountDict(b *testing.B) {
	runKernelBench(b, Scan("bfact").
		Filter(Eq("tag", "web")).
		Agg(Count()), 1)
}

// BenchmarkKernelFilterProbeSum: one int64 bracket plus a single-key
// existence probe into the selective dimension, summing a float — the
// specGlobalSemiSumF shape (inlined open-addressed probe).
func BenchmarkKernelFilterProbeSum(b *testing.B) {
	runKernelBench(b, Scan("bfact").
		Filter(Between("qty", 5, 45)).
		SemiJoin("bdim1", "k1", "id", Between("w", 1, 60)).
		Agg(Sum("amount").As("rev")), 3)
}

// BenchmarkKernelFilterProbeGroupSum: filter, composite-key payload
// probe, then grouping on the projected payload — the generic fused
// join+group loop (the fact-side filter keeps specSpillSumF out).
func BenchmarkKernelFilterProbeGroupSum(b *testing.B) {
	runKernelBench(b, Scan("bfact").
		Filter(Between("qty", 5, 45)).
		Join("bdimc", "jk", "jk", "pay").
		On("k2", "k2").
		GroupBy("pay").
		Agg(Sum("amount").As("rev")), 4)
}

// BenchmarkKernelProbeGroupSumSpill: unfiltered composite-key payload
// probe with composite grouping — the specSpillSumF shape (unrolled key
// gather, inlined hash chain, open-addressed group table).
func BenchmarkKernelProbeGroupSumSpill(b *testing.B) {
	runKernelBench(b, Scan("bfact").
		Join("bdimc", "jk", "jk", "pay").
		On("k2", "k2").
		GroupBy("jk", "pay").
		Agg(Sum("amount").As("rev")), 4)
}

// BenchmarkKernelDenseGroupSumIntFloat: one bracket and a dense
// single-key group with int-sum + float-sum — the specDenseSumIF shape
// (one 24-byte cell update per qualifying row).
func BenchmarkKernelDenseGroupSumIntFloat(b *testing.B) {
	runKernelBench(b, Scan("bfact").
		Filter(Between("qty", 5, 45)).
		GroupBy("gid").
		Agg(Sum("qty").As("sq"), Sum("amount").As("sa")), 4)
}
