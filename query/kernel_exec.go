package query

// Execution side of the fused kernels: open-addressed hash tables for
// the join build side and spill grouping, the per-morsel single-pass
// loops, and the morsel-ordered merge.

import (
	"sort"

	"elastichtap/internal/columnar"
	"elastichtap/internal/olap"
)

// fibMul is the 64-bit golden-ratio constant. Single-key tables index
// with one multiply and take the TOP bits (Fibonacci hashing): dense or
// sequential keys spread uniformly, and the per-probe cost is a single
// imul — cheaper than any avalanche mix and cheaper than Go's map hash.
const fibMul = 0x9e3779b97f4a7c15

// hash1 is the single-word table index: multiply, keep the top bits.
func hash1(k int64, shift uint8) uint64 {
	return uint64(k) * fibMul >> shift
}

// hashJK folds composite keys with one xor-multiply per word; the final
// multiply smears every input bit into the top bits, which the tables
// index by (low bits are weak for this chain and are shifted away).
func hashJK(k *jkey, n int) uint64 {
	h := uint64(fibMul)
	for d := 0; d < n; d++ {
		h = (h ^ uint64(k[d])) * fibMul
	}
	return h
}

func hashGK(k *gkey, n int) uint64 {
	h := uint64(fibMul)
	for d := 0; d < n; d++ {
		h = (h ^ uint64(k[d])) * fibMul
	}
	return h
}

// joinTab1 is the single-key join build table: linear-probed slots keyed
// by the raw int64 word, payload rows packed in one slab at fixed
// stride. build presizes it from the dimension's row count — like the
// map build it replaces — so loading never rehashes.
type joinTab1 struct {
	mask  uint64
	shift uint8
	slots []j1slot
	slab  []int64
	npay  int
}

type j1slot struct {
	key  int64
	off  int32
	used bool
}

// sizeFor picks the power-of-two slot count holding n entries under 3/4
// load, returning (nslots, shift).
func sizeFor(n int) (int, uint8) {
	nslots, shift := 64, uint8(58)
	for nslots*3 < n*4 {
		nslots, shift = nslots*2, shift-1
	}
	return nslots, shift
}

func (t *joinTab1) grow() {
	old := t.slots
	t.slots = make([]j1slot, len(old)*2)
	t.mask = uint64(len(t.slots) - 1)
	t.shift--
	for i := range old {
		s := old[i]
		if !s.used {
			continue
		}
		h := hash1(s.key, t.shift)
		for t.slots[h].used {
			h = (h + 1) & t.mask
		}
		t.slots[h] = s
	}
}

// build loads the dimension's predicate-passing rows, narrowed through
// the dimension's secondary index when an Eq predicate allows it (see
// indexedDimRows). Duplicate keys keep the last row's payload, matching
// the map build it replaces — posting rows iterate ascending, so the
// narrowed build resolves duplicates identically. Returns the number of
// dimension rows read (the cost model's broadcast volume).
func (t *joinTab1) build(j *joinPlan) int64 {
	dt := j.dim.Table()
	rows := dt.Rows()
	t.npay = len(j.payCols)
	cands, narrowed := indexedDimRows(j)
	scanned := rows
	// Presize for the rows that will actually be visited; a predicated
	// un-narrowed build stays small and grows to its matches, keeping
	// selective tables cache-resident.
	n0 := int(rows)
	if len(j.preds) > 0 {
		n0 = 0
	}
	if narrowed {
		scanned = int64(len(cands))
		n0 = len(cands)
	}
	nslots, shift := sizeFor(n0)
	t.slots = make([]j1slot, nslots)
	t.mask, t.shift = uint64(nslots-1), shift
	if t.npay > 0 && n0 > 0 {
		t.slab = make([]int64, 0, n0*t.npay)
	}
	kc := j.keyCols[0]
	n := 0
	add := func(r int64) {
		for i := range j.preds {
			f := &j.preds[i]
			if !f.match(dt.ReadActive(r, f.col)) {
				return
			}
		}
		off := int32(len(t.slab))
		for _, pc := range j.payCols {
			t.slab = append(t.slab, dt.ReadActive(r, pc))
		}
		if (n+1)*4 > len(t.slots)*3 {
			t.grow()
		}
		k := dt.ReadActive(r, kc)
		h := hash1(k, t.shift)
		for {
			s := &t.slots[h]
			if !s.used {
				s.key, s.off, s.used = k, off, true
				n++
				break
			}
			if s.key == k {
				s.off = off // last row wins, like the map build
				break
			}
			h = (h + 1) & t.mask
		}
	}
	if narrowed {
		for _, r := range cands {
			add(r)
		}
	} else {
		for r := int64(0); r < rows; r++ {
			add(r)
		}
	}
	return scanned
}

// joinTabK is the composite-key variant over fixed-width jkey arrays.
type joinTabK struct {
	mask  uint64
	shift uint8
	slots []jKslot
	slab  []int64
	npay  int
	nkey  int
}

type jKslot struct {
	key  jkey
	off  int32
	used bool
}

func (t *joinTabK) grow() {
	old := t.slots
	t.slots = make([]jKslot, len(old)*2)
	t.mask = uint64(len(t.slots) - 1)
	t.shift--
	for i := range old {
		s := old[i]
		if !s.used {
			continue
		}
		h := hashJK(&s.key, t.nkey) >> t.shift
		for t.slots[h].used {
			h = (h + 1) & t.mask
		}
		t.slots[h] = s
	}
}

func (t *joinTabK) build(j *joinPlan) int64 {
	dt := j.dim.Table()
	rows := dt.Rows()
	t.npay = len(j.payCols)
	t.nkey = len(j.keyCols)
	cands, narrowed := indexedDimRows(j)
	scanned := rows
	n0 := int(rows)
	if len(j.preds) > 0 {
		n0 = 0
	}
	if narrowed {
		scanned = int64(len(cands))
		n0 = len(cands)
	}
	nslots, shift := sizeFor(n0)
	t.slots = make([]jKslot, nslots)
	t.mask, t.shift = uint64(nslots-1), shift
	if t.npay > 0 && n0 > 0 {
		t.slab = make([]int64, 0, n0*t.npay)
	}
	n := 0
	add := func(r int64) {
		for i := range j.preds {
			f := &j.preds[i]
			if !f.match(dt.ReadActive(r, f.col)) {
				return
			}
		}
		off := int32(len(t.slab))
		for _, pc := range j.payCols {
			t.slab = append(t.slab, dt.ReadActive(r, pc))
		}
		if (n+1)*4 > len(t.slots)*3 {
			t.grow()
		}
		var k jkey
		for d, kc := range j.keyCols {
			k[d] = dt.ReadActive(r, kc)
		}
		h := hashJK(&k, t.nkey) >> t.shift
		for {
			s := &t.slots[h]
			if !s.used {
				s.key, s.off, s.used = k, off, true
				n++
				break
			}
			if s.key == k {
				s.off = off
				break
			}
			h = (h + 1) & t.mask
		}
	}
	if narrowed {
		for _, r := range cands {
			add(r)
		}
	} else {
		for r := int64(0); r < rows; r++ {
			add(r)
		}
	}
	return scanned
}

// groupTab is per-local spill group state: an open-addressed index over
// insertion-ordered keys, with all accumulator rows packed in one arena
// at stride nacc — one growable allocation each instead of one map entry
// plus one []acc per group.
type groupTab struct {
	mask  uint64
	shift uint8
	slots []int32 // index+1 into keys; 0 = empty
	keys  []gkey
	arena []acc
	nacc  int
	nkey  int
}

var zeroAccRow [maxFusedAccs]acc

func newGroupTab(nacc, nkey int) *groupTab {
	return &groupTab{mask: 63, shift: 58, slots: make([]int32, 64), nacc: nacc, nkey: nkey}
}

func (t *groupTab) grow() {
	n := len(t.slots) * 2
	slots := make([]int32, n)
	mask := uint64(n - 1)
	t.shift--
	for i := range t.keys {
		h := hashGK(&t.keys[i], t.nkey) >> t.shift
		for slots[h] != 0 {
			h = (h + 1) & mask
		}
		slots[h] = int32(i + 1)
	}
	t.slots, t.mask = slots, mask
}

// lookup returns key k's accumulator row, creating it zeroed on first
// touch (CountIf semantics require groups to exist even when every
// condition fails). Growth amortizes to zero per morsel once the table
// has seen the key domain.
//
//htap:coldpath
func (t *groupTab) lookup(k *gkey) []acc {
	h := hashGK(k, t.nkey) >> t.shift
	for {
		s := t.slots[h]
		if s == 0 {
			break
		}
		if t.keys[s-1] == *k {
			off := int(s-1) * t.nacc
			return t.arena[off : off+t.nacc]
		}
		h = (h + 1) & t.mask
	}
	if (len(t.keys)+1)*4 > len(t.slots)*3 {
		t.grow()
		h = hashGK(k, t.nkey) >> t.shift
		for t.slots[h] != 0 {
			h = (h + 1) & t.mask
		}
	}
	idx := len(t.keys)
	t.keys = append(t.keys, *k)
	t.arena = append(t.arena, zeroAccRow[:t.nacc]...)
	t.slots[h] = int32(idx + 1)
	off := idx * t.nacc
	return t.arena[off : off+t.nacc]
}

// sumIF is specDenseSumIF's dense group cell: int-sum, float-sum and
// the shared count packed into 24 bytes — the same layout a hand-written
// sum/sum/count kernel uses, one address computation per row.
type sumIF struct {
	qty, amt float64
	cnt      int64
}

// flocal is per-morsel fused state. Group storage allocates lazily and
// grows with the keys the morsel actually touches; a warmed local
// consuming a same-shaped block allocates nothing.
type flocal struct {
	e         *fexec
	globalBuf [4]acc
	global    []acc   // gNone
	flat      []acc   // gDense: flat[key*nacc+j]
	present   []bool  // gDense occupancy
	flatIF    []sumIF // specDenseSumIF: dense cells, cnt>0 = present
	tab       *groupTab
	payBuf    []int64 // jMulti: the current row's gathered payload words
}

// NewLocal implements olap.Exec.
func (e *fexec) NewLocal() olap.Local {
	l := &flocal{e: e}
	if e.gkind == gNone {
		if e.nacc <= len(l.globalBuf) {
			l.global = l.globalBuf[:e.nacc]
		} else {
			l.global = make([]acc, e.nacc)
		}
	}
	if e.gkind == gSpill {
		// Spill plans always hash: building the table here keeps the
		// per-block consume paths allocation-free (//htap:hotpath).
		l.tab = newGroupTab(e.nacc, max(e.ngroup, 1))
	}
	if e.jkind == jMulti {
		l.payBuf = make([]int64, e.npayTotal)
	}
	return l
}

// growDense doubles the flat array to cover key k (capped at denseLen),
// the same policy as the staged path so flat contents stay identical.
//
//htap:coldpath
func (l *flocal) growDense(k int64) {
	n := 16
	for n <= int(k) {
		n *= 2
	}
	if n > denseLen {
		n = denseLen
	}
	flat := make([]acc, n*l.e.nacc)
	copy(flat, l.flat)
	present := make([]bool, n)
	copy(present, l.present)
	l.flat, l.present = flat, present
}

// growIF doubles the specDenseSumIF cell array to cover key k, the same
// doubling-from-16 policy as growDense.
//
//htap:coldpath
func (l *flocal) growIF(k int64) {
	n := 16
	for n <= int(k) {
		n *= 2
	}
	if n > denseLen {
		n = denseLen
	}
	flat := make([]sumIF, n)
	copy(flat, l.flatIF)
	l.flatIF = flat
}

// lookupTab resolves a spilled key through the open-addressed table,
// creating the table on a dense plan's first overflow key.
//
//htap:coldpath
func (l *flocal) lookupTab(k gkey) []acc {
	if l.tab == nil {
		l.tab = newGroupTab(l.e.nacc, max(l.e.ngroup, 1))
	}
	return l.tab.lookup(&k)
}

// Consume implements olap.Local: one pass over the block, filter →
// probe → group → accumulate per row. The loop splits per grouping kind
// so the group-resolve branch is hoisted; filter ranges, the probe and
// the op switch run inline with no per-row calls. A warmed local
// consuming a same-shaped block must not allocate (the runtime half of
// this contract is alloc_regression_test.go).
//
//htap:hotpath
func (l *flocal) Consume(b olap.Block) {
	e := l.e
	if e.never || b.N == 0 {
		return
	}
	// Morsel skipping: an Eq filter over a never-updated indexed fact
	// column whose postings have no row in this block's range cannot
	// match; blocks past the index watermark always scan.
	if len(e.skips) > 0 && !disableIndexSkip.Load() {
		end := b.Base + int64(b.N)
		for i := range e.skips {
			sk := &e.skips[i]
			if end <= sk.wm && !sk.post.AnyInRange(b.Base, end) {
				return
			}
		}
	}
	switch e.spec {
	case specGlobalSumF2:
		l.runGlobalSumF2(b)
	case specGlobalSemiSumF:
		l.runGlobalSemiSumF(b)
	case specDenseSumIF:
		l.runDenseSumIF(b)
	case specSpillSumF:
		l.runSpillSumF(b)
	default:
		switch e.gkind {
		case gNone:
			l.consumeGlobal(b)
		case gDense:
			l.consumeDense(b)
		default:
			l.consumeSpill(b)
		}
	}
}

// probe resolves the join for row i: reports whether it matched and
// leaves the payload row in *pay. Small enough to inline into the
// consume loops' row bodies.
func (e *fexec) probe(cols [][]int64, i int, pay *[]int64) bool {
	switch e.jkind {
	case jOne:
		k := cols[e.probeSlot][i]
		h := hash1(k, e.j1.shift)
		for {
			s := &e.j1.slots[h]
			if !s.used {
				return false
			}
			if s.key == k {
				if e.npay > 0 {
					*pay = e.j1.slab[s.off : int(s.off)+e.npay]
				}
				return true
			}
			h = (h + 1) & e.j1.mask
		}
	case jMany:
		var k jkey
		for d, s := range e.probeSlots {
			k[d] = cols[s][i]
		}
		h := hashJK(&k, e.nkey) >> e.jK.shift
		for {
			s := &e.jK.slots[h]
			if !s.used {
				return false
			}
			if s.key == k {
				if e.npay > 0 {
					*pay = e.jK.slab[s.off : int(s.off)+e.npay]
				}
				return true
			}
			h = (h + 1) & e.jK.mask
		}
	}
	return true
}

// probeMulti resolves a jMulti kernel's joins for row i in execution
// order: each key gathers from fact block columns or from an earlier
// join's words already landed in payBuf, and each match copies its
// payload slab into payBuf at the join's payBase. Reports whether every
// join matched.
func (e *fexec) probeMulti(cols [][]int64, i int, payBuf []int64) bool {
	for ji := range e.joins {
		j := &e.joins[ji]
		if j.one {
			var k int64
			if s := j.probeSlots[0]; s >= e.nscan {
				k = payBuf[s-e.nscan]
			} else {
				k = cols[s][i]
			}
			h := hash1(k, j.j1.shift)
			for {
				sl := &j.j1.slots[h]
				if !sl.used {
					return false
				}
				if sl.key == k {
					// Single-word payloads (the common case) skip memmove.
					if j.npay == 1 {
						payBuf[j.payBase] = j.j1.slab[sl.off]
					} else if j.npay > 0 {
						copy(payBuf[j.payBase:j.payBase+j.npay], j.j1.slab[sl.off:int(sl.off)+j.npay])
					}
					break
				}
				h = (h + 1) & j.j1.mask
			}
			continue
		}
		var k jkey
		for d, s := range j.probeSlots {
			if s >= e.nscan {
				k[d] = payBuf[s-e.nscan]
			} else {
				k[d] = cols[s][i]
			}
		}
		h := hashJK(&k, j.nkey) >> j.jK.shift
		for {
			sl := &j.jK.slots[h]
			if !sl.used {
				return false
			}
			if sl.key == k {
				if j.npay == 1 {
					payBuf[j.payBase] = j.jK.slab[sl.off]
				} else if j.npay > 0 {
					copy(payBuf[j.payBase:j.payBase+j.npay], j.jK.slab[sl.off:int(sl.off)+j.npay])
				}
				break
			}
			h = (h + 1) & j.jK.mask
		}
	}
	return true
}

// filterRow evaluates the specialized range filters then any generic
// tests for row i.
func (e *fexec) filterRow(cols [][]int64, i int) bool {
	for r := range e.ranges {
		rg := &e.ranges[r]
		// One branch per range: w ∈ [lo,hi] iff w-lo ≤ hi-lo unsigned
		// (the subtraction rotates [lo,hi] onto [0,hi-lo]).
		if uint64(cols[rg.slot][i]-rg.lo) > uint64(rg.hi-rg.lo) {
			return false
		}
	}
	for r := range e.franges {
		rg := &e.franges[r]
		if d := columnar.DecodeFloat(cols[rg.slot][i]); d < rg.lo || d > rg.hi {
			return false
		}
	}
	for g := range e.gens {
		f := &e.gens[g]
		if !f.match(cols[f.slot][i]) {
			return false
		}
	}
	return true
}

// update applies every specialized op to row i's accumulator row. Update
// order is ascending row order per accumulator — the same order as the
// staged per-aggregate passes — so float totals are bit-identical.
func (e *fexec) update(accs []acc, cols [][]int64, pay []int64, i int) {
	for o := range e.ops {
		op := &e.ops[o]
		st := &accs[op.acc]
		var w int64
		if op.pay {
			w = pay[op.slot]
		} else {
			w = cols[op.slot][i]
		}
		switch op.op {
		case opSumInt:
			st.sum += float64(w)
			st.count++
		case opSumFloat:
			st.sum += columnar.DecodeFloat(w)
			st.count++
		case opSumIntNC:
			st.sum += float64(w)
		case opSumFloatNC:
			st.sum += columnar.DecodeFloat(w)
		case opCount:
			st.count++
		case opCountIfRange:
			if w >= op.lo && w <= op.hi {
				st.count++
			}
		case opCountIfGen:
			if op.test.match(w) {
				st.count++
			}
		case opMinInt:
			if v := float64(w); !st.seen || v < st.ext {
				st.ext, st.seen = v, true
			}
		case opMinFloat:
			if v := columnar.DecodeFloat(w); !st.seen || v < st.ext {
				st.ext, st.seen = v, true
			}
		case opMaxInt:
			if v := float64(w); !st.seen || v > st.ext {
				st.ext, st.seen = v, true
			}
		case opMaxFloat:
			if v := columnar.DecodeFloat(w); !st.seen || v > st.ext {
				st.ext, st.seen = v, true
			}
		}
	}
}

func (l *flocal) consumeGlobal(b olap.Block) {
	e := l.e
	cols := b.Cols
	accs := l.global
	var pay []int64
	if e.jkind == jMulti {
		pay = l.payBuf
	}
	for i := 0; i < b.N; i++ {
		if !e.filterRow(cols, i) {
			continue
		}
		if e.jkind == jMulti {
			if !e.probeMulti(cols, i, l.payBuf) {
				continue
			}
		} else if e.jkind != jNone && !e.probe(cols, i, &pay) {
			continue
		}
		e.update(accs, cols, pay, i)
	}
}

func (l *flocal) consumeDense(b olap.Block) {
	e := l.e
	cols := b.Cols
	nacc := e.nacc
	var kvec []int64
	if !e.gpay {
		kvec = cols[e.gslot]
	}
	var pay []int64
	if e.jkind == jMulti {
		pay = l.payBuf
	}
	for i := 0; i < b.N; i++ {
		if !e.filterRow(cols, i) {
			continue
		}
		if e.jkind == jMulti {
			if !e.probeMulti(cols, i, l.payBuf) {
				continue
			}
		} else if e.jkind != jNone && !e.probe(cols, i, &pay) {
			continue
		}
		var k int64
		if e.gpay {
			k = pay[e.gslot]
		} else {
			k = kvec[i]
		}
		var accs []acc
		if uint64(k) < denseLen {
			if int(k) >= len(l.present) {
				l.growDense(k)
			}
			l.present[k] = true
			accs = l.flat[int(k)*nacc:]
		} else {
			accs = l.lookupTab(gkey{k})
		}
		e.update(accs, cols, pay, i)
	}
}

func (l *flocal) consumeSpill(b olap.Block) {
	e := l.e
	cols := b.Cols
	var pay []int64
	if e.jkind == jMulti {
		pay = l.payBuf
	}
	for i := 0; i < b.N; i++ {
		if !e.filterRow(cols, i) {
			continue
		}
		if e.jkind == jMulti {
			if !e.probeMulti(cols, i, l.payBuf) {
				continue
			}
		} else if e.jkind != jNone && !e.probe(cols, i, &pay) {
			continue
		}
		var k gkey
		for d := range e.gsrc {
			g := &e.gsrc[d]
			if g.pay {
				k[d] = pay[g.idx]
			} else {
				k[d] = cols[g.idx][i]
			}
		}
		e.update(l.lookupTab(k), cols, pay, i)
	}
}

// --- merge ---

// mergeInto folds one local's accumulator row into the running total,
// per physical accumulator kind.
//
//htap:deterministic
func (e *fexec) mergeInto(dst, src []acc) {
	for i := range e.sh.accs {
		switch e.sh.accs[i].kind {
		case facSum:
			dst[i].sum += src[i].sum
			dst[i].count += src[i].count
		case facCount, facCountIf:
			dst[i].count += src[i].count
		case facMin:
			if src[i].seen && (!dst[i].seen || src[i].ext < dst[i].ext) {
				dst[i].ext, dst[i].seen = src[i].ext, true
			}
		case facMax:
			if src[i].seen && (!dst[i].seen || src[i].ext > dst[i].ext) {
				dst[i].ext, dst[i].seen = src[i].ext, true
			}
		}
	}
}

// emitRow renders one output row from a merged accumulator row through
// the shape's emit mapping.
//
//htap:deterministic
func (e *fexec) emitRow(k gkey, accs []acc) []float64 {
	row := make([]float64, 0, e.ngroup+len(e.sh.emits))
	for d := 0; d < e.ngroup; d++ {
		row = append(row, float64(k[d]))
	}
	for _, em := range e.sh.emits {
		st := &accs[em.acc]
		switch em.kind {
		case aggCount, aggCountIf:
			row = append(row, float64(st.count))
		case aggSum:
			row = append(row, st.sum)
		case aggAvg:
			// The count lives on the shared carrier accumulator; noCount
			// sums only track their own total.
			if cnt := accs[em.cnt].count; cnt == 0 {
				row = append(row, 0)
			} else {
				row = append(row, st.sum/float64(cnt))
			}
		default: // aggMin, aggMax
			row = append(row, st.ext)
		}
	}
	return row
}

// Merge implements olap.Exec. The engine passes locals in morsel order;
// totals accumulate in that order and grouped rows emit sorted by key,
// exactly like the staged merge, so fused results are bitwise identical
// under any stealing or resize interleaving.
//
//htap:deterministic
func (e *fexec) Merge(locals []olap.Local) olap.Result {
	c := e.c
	res := olap.Result{Cols: c.outCols}
	if e.gkind == gNone {
		total := make([]acc, e.nacc)
		for _, li := range locals {
			e.mergeInto(total, li.(*flocal).global)
		}
		res.Rows = [][]float64{e.emitRow(gkey{}, total)}
		return finishRes(c, res)
	}
	// Totals accumulate in another open-addressed table: one growable
	// arena instead of a map entry plus an []acc per group. Locals are
	// visited in morsel order and each group's accumulator row merges in
	// that order, so float totals stay bitwise deterministic.
	total := newGroupTab(e.nacc, max(e.ngroup, 1))
	for _, li := range locals {
		ll := li.(*flocal)
		// specDenseSumIF keeps its dense cells in 24-byte sumIF form with
		// no occupancy stores: the shared count is unconditional, so
		// cnt>0 is exactly the staged path's present bit, and the fold
		// below adds the same values in the same ascending-key order.
		for kv := range ll.flatIF {
			g := &ll.flatIF[kv]
			if g.cnt > 0 {
				accs := total.lookup(&gkey{int64(kv)})
				accs[0].sum += g.qty
				accs[0].count += g.cnt
				accs[1].sum += g.amt
			}
		}
		if ll.flat != nil {
			for kv, on := range ll.present {
				if on {
					e.mergeInto(total.lookup(&gkey{int64(kv)}), ll.flat[kv*e.nacc:(kv+1)*e.nacc])
				}
			}
		}
		if ll.tab != nil {
			for i := range ll.tab.keys {
				e.mergeInto(total.lookup(&ll.tab.keys[i]), ll.tab.arena[i*e.nacc:(i+1)*e.nacc])
			}
		}
	}
	order := make([]int32, len(total.keys))
	for i := range order {
		order[i] = int32(i)
	}
	keys := total.keys
	sort.Slice(order, func(i, j int) bool {
		a, b := &keys[order[i]], &keys[order[j]]
		for d := 0; d < e.ngroup; d++ {
			if a[d] != b[d] {
				return a[d] < b[d]
			}
		}
		return false
	})
	for _, oi := range order {
		off := int(oi) * e.nacc
		res.Rows = append(res.Rows, e.emitRow(keys[oi], total.arena[off:off+e.nacc]))
	}
	return finishRes(c, res)
}
