package query

// Monomorphic fast loops for the hottest fused shapes. The generic
// loops in kernel_exec.go dispatch per row through small method calls
// and an op switch; these variants are fully inlined — filter bounds,
// column vectors and accumulator registers live in locals, the probe is
// written out, and the op sequence is fixed — so the compiled code
// matches what a hand-written kernel for the same query would be.
//
// A spec only applies when the Prepare-time shape matches exactly
// (grouping kind, join kind, op sequence, range-filter count); anything
// else runs the generic fused loops. Both orders accumulator updates in
// ascending row order, so results are bit-identical either way.

import (
	"elastichtap/internal/columnar"
	"elastichtap/internal/olap"
)

const (
	specGeneric uint8 = iota
	// specGlobalSumF2: ungrouped, no join, exactly two int range filters,
	// one float-sum accumulator (CH-Q6's shape).
	specGlobalSumF2
	// specGlobalSemiSumF: ungrouped, single-key semi join, one int range
	// filter, one float-sum accumulator (CH-Q19's shape).
	specGlobalSemiSumF
	// specDenseSumIF: dense single-key grouping on a scanned column, no
	// join, one int range filter, int-sum + float-sum accumulators
	// (CH-Q1's shape).
	specDenseSumIF
	// specSpillSumF: composite-key (spill) grouping, unfiltered fact
	// side, no join or composite-key payload join, one float-sum
	// accumulator (CH-Q18 and CH-Q3's shapes).
	specSpillSumF
)

// pickSpec matches the specialized kernels against the Prepare-time
// shape; filters must already be classified.
func (e *fexec) pickSpec() uint8 {
	if len(e.franges) > 0 || len(e.gens) > 0 {
		return specGeneric
	}
	ops := e.ops
	blockSumF := len(ops) == 1 && ops[0].op == opSumFloat && !ops[0].pay
	switch e.gkind {
	case gNone:
		if blockSumF && e.jkind == jNone && len(e.ranges) == 2 {
			return specGlobalSumF2
		}
		if blockSumF && e.jkind == jOne && e.npay == 0 && len(e.ranges) == 1 {
			return specGlobalSemiSumF
		}
	case gDense:
		if e.jkind == jNone && !e.gpay && len(e.ranges) == 1 &&
			len(ops) == 2 && ops[0].op == opSumInt && !ops[0].pay &&
			ops[1].op == opSumFloatNC && !ops[1].pay {
			return specDenseSumIF
		}
	case gSpill:
		if blockSumF && len(e.ranges) == 0 &&
			(e.jkind == jNone || e.jkind == jMany) {
			return specSpillSumF
		}
	}
	return specGeneric
}

// runGlobalSumF2 is Q6's loop: two range brackets, register-accumulated
// float sum and row count.
func (l *flocal) runGlobalSumF2(b olap.Block) {
	e := l.e
	cols := b.Cols
	v0, lo0, span0 := cols[e.ranges[0].slot], e.ranges[0].lo, uint64(e.ranges[0].hi-e.ranges[0].lo)
	v1, lo1, span1 := cols[e.ranges[1].slot], e.ranges[1].lo, uint64(e.ranges[1].hi-e.ranges[1].lo)
	av := cols[e.ops[0].slot]
	st := &l.global[0]
	sum, cnt := st.sum, st.count
	for i := 0; i < b.N; i++ {
		if uint64(v0[i]-lo0) > span0 {
			continue
		}
		if uint64(v1[i]-lo1) > span1 {
			continue
		}
		sum += columnar.DecodeFloat(av[i])
		cnt++
	}
	st.sum, st.count = sum, cnt
}

// runGlobalSemiSumF is Q19's loop: one range bracket, an inlined
// open-addressed existence probe, register-accumulated float sum.
func (l *flocal) runGlobalSemiSumF(b olap.Block) {
	e := l.e
	cols := b.Cols
	v0, lo0, span0 := cols[e.ranges[0].slot], e.ranges[0].lo, uint64(e.ranges[0].hi-e.ranges[0].lo)
	kv := cols[e.probeSlot]
	av := cols[e.ops[0].slot]
	slots, mask, shift := e.j1.slots, e.j1.mask, e.j1.shift
	st := &l.global[0]
	sum, cnt := st.sum, st.count
row:
	for i := 0; i < b.N; i++ {
		if uint64(v0[i]-lo0) > span0 {
			continue
		}
		k := kv[i]
		h := uint64(k) * fibMul >> shift
		for {
			s := &slots[h]
			if !s.used {
				continue row
			}
			if s.key == k {
				break
			}
			h = (h + 1) & mask
		}
		sum += columnar.DecodeFloat(av[i])
		cnt++
	}
	st.sum, st.count = sum, cnt
}

// runDenseSumIF is Q1's loop: one range bracket, dense single-key
// grouping, int-sum + float-sum + shared count packed into one 24-byte
// cell per group (every accumulator sees the same rows, so one count
// serves both; Merge treats cnt>0 as present for this spec). The hot
// path per row is one compare, one bounds check and one cell update —
// the same work as the hand-written kernel.
func (l *flocal) runDenseSumIF(b olap.Block) {
	e := l.e
	cols := b.Cols
	v0, lo0, span0 := cols[e.ranges[0].slot], e.ranges[0].lo, uint64(e.ranges[0].hi-e.ranges[0].lo)
	kv := cols[e.gslot]
	qv := cols[e.ops[0].slot]
	av := cols[e.ops[1].slot]
	flat := l.flatIF
	for i := 0; i < b.N; i++ {
		if uint64(v0[i]-lo0) > span0 {
			continue
		}
		k := kv[i]
		if uint64(k) < uint64(len(flat)) {
			g := &flat[k]
			g.qty += float64(qv[i])
			g.amt += columnar.DecodeFloat(av[i])
			g.cnt++
		} else if uint64(k) < denseLen {
			l.growIF(k)
			flat = l.flatIF
			g := &flat[k]
			g.qty += float64(qv[i])
			g.amt += columnar.DecodeFloat(av[i])
			g.cnt++
		} else {
			accs := l.lookupTab(gkey{k})
			accs[0].sum += float64(qv[i])
			accs[0].count++
			accs[1].sum += columnar.DecodeFloat(av[i])
		}
	}
}

// runSpillSumF is Q18's and Q3's loop: no fact-side filters, optional
// composite-key payload join, composite group keys resolved straight
// into the open-addressed group table, one float-sum accumulator.
func (l *flocal) runSpillSumF(b olap.Block) {
	e := l.e
	cols := b.Cols
	av := cols[e.ops[0].slot]
	ng := e.ngroup
	// Group-key sources, unrolled: gNv is dim N's fact column, or nil
	// when the dim reads payload index gNi. The nil guards below branch
	// identically every row, so the hot loop carries no bounded loops or
	// indirect slice loads — the same code a kernel hand-written for the
	// plan's exact key widths would run.
	var g0v, g1v, g2v, g3v []int64
	var g0i, g1i, g2i, g3i int
	for d := range e.gsrc {
		g := &e.gsrc[d]
		v, idx := []int64(nil), g.idx
		if !g.pay {
			v, idx = cols[g.idx], 0
		}
		switch d {
		case 0:
			g0v, g0i = v, idx
		case 1:
			g1v, g1i = v, idx
		case 2:
			g2v, g2i = v, idx
		case 3:
			g3v, g3i = v, idx
		}
	}
	join := e.jkind == jMany
	var pv0, pv1, pv2 []int64
	var slots []jKslot
	var mask uint64
	var shift uint8
	npay := e.npay
	if join {
		pv0 = cols[e.probeSlots[0]]
		if e.nkey > 1 {
			pv1 = cols[e.probeSlots[1]]
		}
		if e.nkey > 2 {
			pv2 = cols[e.probeSlots[2]]
		}
		slots, mask, shift = e.jK.slots, e.jK.mask, e.jK.shift
	}
	slab := e.jK.slab
	tab := l.tab // pre-sized by NewLocal for gSpill plans
	var pay []int64
row:
	for i := 0; i < b.N; i++ {
		if join {
			// hashJK inlined over the unrolled key words.
			var jk jkey
			jk[0] = pv0[i]
			h := (fibMul ^ uint64(jk[0])) * fibMul
			if pv1 != nil {
				jk[1] = pv1[i]
				h = (h ^ uint64(jk[1])) * fibMul
			}
			if pv2 != nil {
				jk[2] = pv2[i]
				h = (h ^ uint64(jk[2])) * fibMul
			}
			h >>= shift
			for {
				s := &slots[h]
				if !s.used {
					continue row
				}
				if s.key == jk {
					if npay > 0 {
						pay = slab[s.off : int(s.off)+npay]
					}
					break
				}
				h = (h + 1) & mask
			}
		}
		var k gkey
		if g0v != nil {
			k[0] = g0v[i]
		} else {
			k[0] = pay[g0i]
		}
		if ng > 1 {
			if g1v != nil {
				k[1] = g1v[i]
			} else {
				k[1] = pay[g1i]
			}
		}
		if ng > 2 {
			if g2v != nil {
				k[2] = g2v[i]
			} else {
				k[2] = pay[g2i]
			}
		}
		if ng > 3 {
			if g3v != nil {
				k[3] = g3v[i]
			} else {
				k[3] = pay[g3i]
			}
		}
		st := &tab.lookup(&k)[0]
		st.sum += columnar.DecodeFloat(av[i])
		st.count++
	}
}
