package query

import (
	"reflect"
	"testing"
)

// TestFusedMatchesStagedExactly pins the staged fallback's contract: for
// every kernel shape — each specialized loop, the generic fused loops,
// and the post-aggregation stages (avg, having, ordered top-k) — forcing
// the staged path must reproduce the fused result bitwise (DeepEqual on
// float64 rows is bitwise equality). The staged path only runs in
// production for shapes the fuser rejects, so without this test a drift
// in its arithmetic order would go unnoticed until such a shape appears.
func TestFusedMatchesStagedExactly(t *testing.T) {
	cat, e := newBenchCatalog(t)
	cases := []struct {
		name string
		plan *Plan
	}{
		{"filter-count-int64", Scan("bfact").
			Filter(Between("qty", 10, 40), Ge("gid", 8)).
			Agg(Count())},
		{"filter-count-float64", Scan("bfact").
			Filter(Between("amount", 20.0, 100.0)).
			Agg(Count())},
		{"filter-count-dict", Scan("bfact").
			Filter(Eq("tag", "web")).
			Agg(Count())},
		{"filter-probe-sum", Scan("bfact").
			Filter(Between("qty", 5, 45)).
			SemiJoin("bdim1", "k1", "id", Between("w", 1, 60)).
			Agg(Sum("amount").As("rev"))},
		{"filter-probe-group-sum", Scan("bfact").
			Filter(Between("qty", 5, 45)).
			Join("bdimc", "jk", "jk", "pay").
			On("k2", "k2").
			GroupBy("pay").
			Agg(Sum("amount").As("rev"))},
		{"probe-group-sum-spill", Scan("bfact").
			Join("bdimc", "jk", "jk", "pay").
			On("k2", "k2").
			GroupBy("jk", "pay").
			Agg(Sum("amount").As("rev"))},
		{"dense-group-sum-int-float", Scan("bfact").
			Filter(Between("qty", 5, 45)).
			GroupBy("gid").
			Agg(Sum("qty").As("sq"), Sum("amount").As("sa"))},
		{"avg-having-topk", Scan("bfact").
			Filter(Ge("qty", 3)).
			GroupBy("gid").
			Agg(Sum("amount").As("rev"), Avg("amount").As("avg_amt"), Count().As("n")).
			Having(Gt("rev", 100)).
			OrderBy("rev", true).
			Limit(20)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := tc.plan.Bind(cat)
			if err != nil {
				t.Fatal(err)
			}
			fused := run(t, e, q)
			disableFusion.Store(true)
			defer disableFusion.Store(false)
			staged := run(t, e, q)
			if !reflect.DeepEqual(fused, staged) {
				t.Fatalf("staged result diverges from fused:\nfused:  %+v\nstaged: %+v", fused, staged)
			}
		})
	}
}
